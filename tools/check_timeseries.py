#!/usr/bin/env python3
"""Validate a telemetry time-series JSONL file produced by --timeseries-out.

One JSON object per line, "kind":"telemetry", schema_version 4 (older
versions are rejected — the telemetry export never existed before v4;
newer versions are rejected so schema drift fails loudly). Checks per
record: the required field tree (latency/sojourn windows, rank, pool,
rates, counters, gauges), strictly increasing seq and t_ns (the sampler
guarantees strict monotonicity), positive interval_ns, and no NaN/Infinity
leakage anywhere (unavailable rates must be null, not NaN — Python's json
accepts NaN by default, so the parser is pinned strict).

Usage: tools/check_timeseries.py SERIES.jsonl [--min-records N]
       tools/check_timeseries.py --self-test
Exit codes: 0 = valid, 1 = invalid, 2 = bad invocation / unreadable file.
"""

import argparse
import json
import math
import sys

SCHEMA_VERSION = 4

WINDOW_KEYS = ("count", "p50_ns", "p99_ns", "max_ns")
RANK_KEYS = ("samples", "p50", "p90", "max", "violations")
POOL_KEYS = ("fresh", "reused", "recycled", "oversize")
RATE_KEYS = ("delivered_per_s", "submitted_per_s", "shed_pct", "reject_pct")
TOP_KEYS = ("schema_version", "kind", "seq", "t_ns", "interval_ns",
            "latency", "sojourn", "rank", "pool", "rates", "slo_breached",
            "counters", "gauges")


def fail(msg):
    print(f"check_timeseries: {msg}", file=sys.stderr)
    return 1


def _reject_constant(token):
    raise ValueError(f"non-standard JSON constant: {token}")


def _is_uint(value):
    return isinstance(value, int) and not isinstance(value, bool) and \
        value >= 0


def _is_number(value):
    # Finite int/float; bool is a JSON bool, not a number. json.loads with
    # parse_constant strict never yields non-finite floats, but records
    # built in self-test can.
    return isinstance(value, (int, float)) and not isinstance(value, bool) \
        and math.isfinite(value)


def check_record(record, where):
    if not isinstance(record, dict):
        return f"{where}: not an object"
    for key in TOP_KEYS:
        if key not in record:
            return f"{where}: missing '{key}'"
    if record["schema_version"] != SCHEMA_VERSION:
        return (f"{where}: schema_version {record['schema_version']!r}, "
                f"expected {SCHEMA_VERSION}")
    if record["kind"] != "telemetry":
        return f"{where}: kind {record['kind']!r}, expected 'telemetry'"
    for key in ("seq", "t_ns", "interval_ns", "slo_breached"):
        if not _is_uint(record[key]):
            return f"{where}: '{key}' must be a non-negative integer"
    if record["interval_ns"] == 0:
        return f"{where}: interval_ns must be positive"
    for window in ("latency", "sojourn"):
        obj = record[window]
        if not isinstance(obj, dict):
            return f"{where}: '{window}' must be an object"
        for key in WINDOW_KEYS:
            if not _is_uint(obj.get(key)):
                return f"{where}: {window}.{key} must be a " \
                       f"non-negative integer"
    rank = record["rank"]
    if not isinstance(rank, dict):
        return f"{where}: 'rank' must be an object"
    for key in RANK_KEYS:
        if key not in rank:
            return f"{where}: rank.{key} missing"
    for key in ("samples", "max", "violations"):
        if not _is_uint(rank[key]):
            return f"{where}: rank.{key} must be a non-negative integer"
    for key in ("p50", "p90"):
        if rank[key] is not None and not _is_number(rank[key]):
            return f"{where}: rank.{key} must be a finite number or null"
    pool = record["pool"]
    if not isinstance(pool, dict):
        return f"{where}: 'pool' must be an object"
    for key in POOL_KEYS:
        if not _is_uint(pool.get(key)):
            return f"{where}: pool.{key} must be a non-negative integer"
    rates = record["rates"]
    if not isinstance(rates, dict):
        return f"{where}: 'rates' must be an object"
    for key in RATE_KEYS:
        if key not in rates:
            return f"{where}: rates.{key} missing"
        value = rates[key]
        if value is not None and not _is_number(value):
            return f"{where}: rates.{key} must be a finite number or null"
    counters = record["counters"]
    if not isinstance(counters, dict) or not counters:
        return f"{where}: 'counters' must be a non-empty object"
    for name, value in counters.items():
        if not _is_uint(value):
            return f"{where}: counters.{name} must be a " \
                   f"non-negative integer"
    gauges = record["gauges"]
    if not isinstance(gauges, dict):
        return f"{where}: 'gauges' must be an object"
    for name, value in gauges.items():
        if value is not None and not _is_number(value):
            return f"{where}: gauges.{name} must be a finite number or null"
    return None


def validate_lines(lines, min_records):
    records = 0
    prev_seq = None
    prev_t = None
    for lineno, line in enumerate(lines, start=1):
        line = line.strip()
        if not line:
            continue
        where = f"line {lineno}"
        try:
            record = json.loads(line, parse_constant=_reject_constant)
        except (json.JSONDecodeError, ValueError) as err:
            return fail(f"{where}: not valid strict JSON: {err}")
        err = check_record(record, where)
        if err:
            return fail(err)
        if prev_seq is not None and record["seq"] <= prev_seq:
            return fail(f"{where}: seq {record['seq']} not strictly "
                        f"increasing (previous {prev_seq})")
        if prev_t is not None and record["t_ns"] <= prev_t:
            return fail(f"{where}: t_ns {record['t_ns']} not strictly "
                        f"increasing (previous {prev_t})")
        prev_seq = record["seq"]
        prev_t = record["t_ns"]
        records += 1
    if records < min_records:
        return fail(f"only {records} record(s), expected at least "
                    f"{min_records}")
    print(f"check_timeseries: OK — {records} telemetry record(s)")
    return 0


def _record(seq=0, t_ns=1000, **overrides):
    base = {
        "schema_version": SCHEMA_VERSION,
        "kind": "telemetry",
        "seq": seq,
        "t_ns": t_ns,
        "interval_ns": 1000,
        "latency": {"count": 2, "p50_ns": 100, "p99_ns": 200, "max_ns": 300},
        "sojourn": {"count": 0, "p50_ns": 0, "p99_ns": 0, "max_ns": 0},
        "rank": {"samples": 0, "p50": None, "p90": None, "max": 0,
                 "violations": 0},
        "pool": {"fresh": 0, "reused": 0, "recycled": 0, "oversize": 0},
        "rates": {"delivered_per_s": 10.0, "submitted_per_s": None,
                  "shed_pct": 0.0, "reject_pct": None},
        "slo_breached": 0,
        "counters": {"cas_retry": 3},
        "gauges": {"in_flight": 4.0},
    }
    base.update(overrides)
    return base


def self_test():
    """Deterministic checks of the validator itself on synthetic series."""
    def lines(*records):
        return [json.dumps(r) for r in records]

    good = lines(_record(seq=0, t_ns=1000), _record(seq=1, t_ns=2000))
    checks = [
        ("valid series passes", validate_lines(good, 2), 0),
        ("min-records enforced", validate_lines(good, 3), 1),
        ("empty series passes with min 0", validate_lines([], 0), 0),
        ("blank lines tolerated",
         validate_lines([""] + good + [" "], 2), 0),
        ("non-monotonic seq rejected",
         validate_lines(lines(_record(seq=1, t_ns=1000),
                              _record(seq=1, t_ns=2000)), 0), 1),
        ("non-monotonic t_ns rejected",
         validate_lines(lines(_record(seq=0, t_ns=2000),
                              _record(seq=1, t_ns=2000)), 0), 1),
        ("future schema rejected",
         validate_lines(lines(_record(schema_version=SCHEMA_VERSION + 1)),
                        0), 1),
        ("old schema rejected",
         validate_lines(lines(_record(schema_version=3)), 0), 1),
        ("wrong kind rejected",
         validate_lines(lines(_record(kind="bench")), 0), 1),
        ("missing rates key rejected",
         validate_lines(lines(_record(rates={"delivered_per_s": 1.0})), 0),
         1),
        ("NaN literal rejected",
         validate_lines(['{"schema_version":4,"kind":"telemetry","seq":0,'
                         '"t_ns":1,"interval_ns":1,"x":NaN}'], 0), 1),
        ("NaN rate rejected",
         validate_lines(lines(_record(rates={
             "delivered_per_s": float("nan"), "submitted_per_s": None,
             "shed_pct": 0.0, "reject_pct": None})), 0), 1),
        ("zero interval rejected",
         validate_lines(lines(_record(interval_ns=0)), 0), 1),
        ("negative counter rejected",
         validate_lines(lines(_record(counters={"cas_retry": -1})), 0), 1),
        ("bool gauge rejected",
         validate_lines(lines(_record(gauges={"in_flight": True})), 0), 1),
    ]
    failed = [name for name, got, want in checks if got != want]
    for name in failed:
        print(f"self-test FAILED: {name}", file=sys.stderr)
    if not failed:
        print(f"check_timeseries: self-test OK ({len(checks)} checks)")
    return 1 if failed else 0


def main(argv):
    parser = argparse.ArgumentParser(
        description="Validate --timeseries-out telemetry JSON Lines.")
    parser.add_argument("series", nargs="?", help="time-series JSONL file")
    parser.add_argument("--min-records", type=int, default=0,
                        help="fail unless at least N records")
    parser.add_argument("--self-test", action="store_true",
                        help="run built-in validator checks and exit")
    args = parser.parse_args(argv)

    if args.self_test:
        return self_test()
    if args.series is None:
        parser.error("series file required unless --self-test")

    try:
        with open(args.series, "r", encoding="utf-8") as handle:
            lines = handle.readlines()
    except OSError as err:
        print(f"check_timeseries: {err}", file=sys.stderr)
        return 2
    return validate_lines(lines, args.min_records)


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
