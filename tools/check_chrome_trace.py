#!/usr/bin/env python3
"""Validate a Chrome trace-event JSON file produced by --trace-out.

Checks the structural contract that chrome://tracing and Perfetto rely on
(JSON Object Format): a top-level object with a "traceEvents" array whose
entries carry name/ph/pid/tid, instant events carry a numeric non-negative
"ts" and a scope "s", metadata events carry an "args" object, and counter
events (ph "C", the telemetry plane's Perfetto counter tracks) carry a
finite numeric args.value. Used by CI after a short --trace-out run and
available to developers as a local sanity check.

Usage: tools/check_chrome_trace.py TRACE.json [--min-events N]
                                   [--min-counter-events N]
       tools/check_chrome_trace.py --self-test
Exit codes: 0 = valid, 1 = invalid, 2 = bad invocation / unreadable file.
"""

import argparse
import json
import math
import sys

KNOWN_PHASES = {"B", "E", "X", "i", "I", "M", "C", "b", "e", "n", "s", "t",
                "f"}


def fail(msg):
    print(f"check_chrome_trace: {msg}", file=sys.stderr)
    return 1


def _reject_constant(token):
    # Perfetto's JSON parser rejects NaN/Infinity literals; make json.load
    # do the same instead of silently accepting Python's extension.
    raise ValueError(f"non-standard JSON constant: {token}")


def validate(doc, min_events, min_counter_events=0):
    if not isinstance(doc, dict):
        return fail("top level must be an object (JSON Object Format)")
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return fail('missing or non-array "traceEvents"')

    op_events = 0
    counter_events = 0
    counter_tracks = set()
    for i, event in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(event, dict):
            return fail(f"{where}: not an object")
        for key in ("name", "ph", "pid", "tid"):
            if key not in event:
                return fail(f"{where}: missing '{key}'")
        ph = event["ph"]
        if ph not in KNOWN_PHASES:
            return fail(f"{where}: unknown phase {ph!r}")
        if ph == "M":
            if not isinstance(event.get("args"), dict):
                return fail(f"{where}: metadata event without args object")
            continue
        ts = event.get("ts")
        if not isinstance(ts, (int, float)) or isinstance(ts, bool) or ts < 0:
            return fail(f"{where}: bad or missing 'ts': {ts!r}")
        if ph == "C":
            args = event.get("args")
            if not isinstance(args, dict):
                return fail(f"{where}: counter event without args object")
            value = args.get("value")
            if (not isinstance(value, (int, float)) or
                    isinstance(value, bool) or not math.isfinite(value)):
                return fail(f"{where}: counter event args.value must be a "
                            f"finite number, got {value!r}")
            counter_events += 1
            counter_tracks.add(event["name"])
            continue
        if ph in ("i", "I") and event.get("s") not in ("g", "p", "t"):
            return fail(f"{where}: instant event scope 's' must be g/p/t")
        op_events += 1

    if op_events < min_events:
        return fail(f"only {op_events} operation event(s), "
                    f"expected at least {min_events}")
    if counter_events < min_counter_events:
        return fail(f"only {counter_events} counter event(s), "
                    f"expected at least {min_counter_events}")
    print(f"check_chrome_trace: OK — {op_events} operation event(s), "
          f"{counter_events} counter event(s) on {len(counter_tracks)} "
          f"track(s), "
          f"{len(events) - op_events - counter_events} metadata event(s)")
    return 0


def self_test():
    """Deterministic checks of the validator itself on synthetic documents."""
    meta = {"name": "thread_name", "ph": "M", "pid": 1, "tid": 1,
            "args": {"name": "bench worker slice 0"}}
    insert = {"name": "insert", "ph": "i", "s": "t", "pid": 1, "tid": 1,
              "ts": 0.0, "args": {"key": 42, "sample_period": 64}}
    counter = {"name": "delivered_per_s", "ph": "C", "pid": 1, "tid": 0,
               "ts": 10.5, "args": {"value": 12345.6}}
    good = {"traceEvents": [meta, insert, counter], "displayTimeUnit": "ns"}
    checks = [
        ("valid doc passes", validate(good, 1), 0),
        ("min-events enforced", validate(good, 2), 1),
        ("empty doc passes with min 0", validate({"traceEvents": []}, 0), 0),
        ("top-level array rejected", validate([insert], 0), 1),
        ("missing tid rejected",
         validate({"traceEvents": [{"name": "x", "ph": "i", "pid": 1,
                                    "s": "t", "ts": 1}]}, 0), 1),
        ("negative ts rejected",
         validate({"traceEvents": [dict(insert, ts=-1.0)]}, 0), 1),
        ("bad instant scope rejected",
         validate({"traceEvents": [dict(insert, s="q")]}, 0), 1),
        ("metadata without args rejected",
         validate({"traceEvents": [{"name": "thread_name", "ph": "M",
                                    "pid": 1, "tid": 1}]}, 0), 1),
        ("counter event counted", validate(good, 0, 1), 0),
        ("min-counter-events enforced", validate(good, 0, 2), 1),
        ("counter without args rejected",
         validate({"traceEvents": [{"name": "c", "ph": "C", "pid": 1,
                                    "tid": 0, "ts": 1}]}, 0), 1),
        ("counter with string value rejected",
         validate({"traceEvents": [dict(counter,
                                        args={"value": "12"})]}, 0), 1),
        ("counter with NaN value rejected",
         validate({"traceEvents": [dict(counter,
                                        args={"value": float('nan')})]},
                  0), 1),
        ("counter with bool value rejected",
         validate({"traceEvents": [dict(counter,
                                        args={"value": True})]}, 0), 1),
        ("counter with negative ts rejected",
         validate({"traceEvents": [dict(counter, ts=-2.0)]}, 0), 1),
    ]
    failed = [name for name, got, want in checks if got != want]
    for name in failed:
        print(f"self-test FAILED: {name}", file=sys.stderr)
    if not failed:
        print(f"check_chrome_trace: self-test OK ({len(checks)} checks)")
    return 1 if failed else 0


def main(argv):
    parser = argparse.ArgumentParser(
        description="Validate --trace-out Chrome trace-event JSON.")
    parser.add_argument("trace", nargs="?", help="trace JSON file")
    parser.add_argument("--min-events", type=int, default=0,
                        help="fail unless at least N operation events")
    parser.add_argument("--min-counter-events", type=int, default=0,
                        help="fail unless at least N ph:'C' counter events")
    parser.add_argument("--self-test", action="store_true",
                        help="run built-in validator checks and exit")
    args = parser.parse_args(argv)

    if args.self_test:
        return self_test()
    if args.trace is None:
        parser.error("trace file required unless --self-test")

    try:
        with open(args.trace, "r", encoding="utf-8") as handle:
            doc = json.load(handle, parse_constant=_reject_constant)
    except OSError as err:
        print(f"check_chrome_trace: {err}", file=sys.stderr)
        return 2
    except (json.JSONDecodeError, ValueError) as err:
        return fail(f"{args.trace}: not valid JSON: {err}")
    return validate(doc, args.min_events, args.min_counter_events)


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
