#!/usr/bin/env python3
"""Validate a Chrome trace-event JSON file produced by --trace-out.

Checks the structural contract that chrome://tracing and Perfetto rely on
(JSON Object Format): a top-level object with a "traceEvents" array whose
entries carry name/ph/pid/tid, instant events carry a numeric non-negative
"ts" and a scope "s", and metadata events carry an "args" object. Used by
CI after a short --trace-out run and available to developers as a local
sanity check.

Usage: tools/check_chrome_trace.py TRACE.json [--min-events N]
       tools/check_chrome_trace.py --self-test
Exit codes: 0 = valid, 1 = invalid, 2 = bad invocation / unreadable file.
"""

import argparse
import json
import sys

KNOWN_PHASES = {"B", "E", "X", "i", "I", "M", "C", "b", "e", "n", "s", "t",
                "f"}


def fail(msg):
    print(f"check_chrome_trace: {msg}", file=sys.stderr)
    return 1


def validate(doc, min_events):
    if not isinstance(doc, dict):
        return fail("top level must be an object (JSON Object Format)")
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return fail('missing or non-array "traceEvents"')

    op_events = 0
    for i, event in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(event, dict):
            return fail(f"{where}: not an object")
        for key in ("name", "ph", "pid", "tid"):
            if key not in event:
                return fail(f"{where}: missing '{key}'")
        ph = event["ph"]
        if ph not in KNOWN_PHASES:
            return fail(f"{where}: unknown phase {ph!r}")
        if ph == "M":
            if not isinstance(event.get("args"), dict):
                return fail(f"{where}: metadata event without args object")
            continue
        ts = event.get("ts")
        if not isinstance(ts, (int, float)) or isinstance(ts, bool) or ts < 0:
            return fail(f"{where}: bad or missing 'ts': {ts!r}")
        if ph in ("i", "I") and event.get("s") not in ("g", "p", "t"):
            return fail(f"{where}: instant event scope 's' must be g/p/t")
        op_events += 1

    if op_events < min_events:
        return fail(f"only {op_events} operation event(s), "
                    f"expected at least {min_events}")
    print(f"check_chrome_trace: OK — {op_events} operation event(s), "
          f"{len(events) - op_events} metadata event(s)")
    return 0


def self_test():
    """Deterministic checks of the validator itself on synthetic documents."""
    meta = {"name": "thread_name", "ph": "M", "pid": 1, "tid": 1,
            "args": {"name": "bench worker slice 0"}}
    insert = {"name": "insert", "ph": "i", "s": "t", "pid": 1, "tid": 1,
              "ts": 0.0, "args": {"key": 42, "sample_period": 64}}
    good = {"traceEvents": [meta, insert], "displayTimeUnit": "ns"}
    checks = [
        ("valid doc passes", validate(good, 1), 0),
        ("min-events enforced", validate(good, 2), 1),
        ("empty doc passes with min 0", validate({"traceEvents": []}, 0), 0),
        ("top-level array rejected", validate([insert], 0), 1),
        ("missing tid rejected",
         validate({"traceEvents": [{"name": "x", "ph": "i", "pid": 1,
                                    "s": "t", "ts": 1}]}, 0), 1),
        ("negative ts rejected",
         validate({"traceEvents": [dict(insert, ts=-1.0)]}, 0), 1),
        ("bad instant scope rejected",
         validate({"traceEvents": [dict(insert, s="q")]}, 0), 1),
        ("metadata without args rejected",
         validate({"traceEvents": [{"name": "thread_name", "ph": "M",
                                    "pid": 1, "tid": 1}]}, 0), 1),
    ]
    failed = [name for name, got, want in checks if got != want]
    for name in failed:
        print(f"self-test FAILED: {name}", file=sys.stderr)
    if not failed:
        print(f"check_chrome_trace: self-test OK ({len(checks)} checks)")
    return 1 if failed else 0


def main(argv):
    parser = argparse.ArgumentParser(
        description="Validate --trace-out Chrome trace-event JSON.")
    parser.add_argument("trace", nargs="?", help="trace JSON file")
    parser.add_argument("--min-events", type=int, default=0,
                        help="fail unless at least N operation events")
    parser.add_argument("--self-test", action="store_true",
                        help="run built-in validator checks and exit")
    args = parser.parse_args(argv)

    if args.self_test:
        return self_test()
    if args.trace is None:
        parser.error("trace file required unless --self-test")

    try:
        with open(args.trace, "r", encoding="utf-8") as handle:
            doc = json.load(handle)
    except OSError as err:
        print(f"check_chrome_trace: {err}", file=sys.stderr)
        return 2
    except json.JSONDecodeError as err:
        return fail(f"{args.trace}: not valid JSON: {err}")
    return validate(doc, args.min_events)


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
