#!/usr/bin/env python3
"""Compare a benchmark JSON Lines run against a committed baseline.

Usage:
    tools/bench_compare.py BASELINE.json CURRENT.json [options]
    tools/bench_compare.py --self-test

Both files hold the cpq JSON Lines cell records emitted via CPQ_JSON /
--json (one object per line; see src/bench_framework/json_out.hpp).
Cells are matched on (experiment, queue, metric, threads) and compared
with noise-aware thresholds:

  * a relative guard band (--threshold, default 20%), plus
  * the wider of the two runs' 95% confidence intervals, when recorded.

Only metric families with a known "better" direction are compared
(throughput up, latency down, bound violations down); counters,
rank-error estimates, and per-op hardware-counter rates are
machine/config-dependent and are reported informationally only. The
layout_* family (layout-sensitivity spread from interleaved runs) and
the burst_* family (open-loop MMPP arrival diagnostics) are explicitly
informational: spread and burst shape characterize the measurement
environment, not the queue, so they never fail a comparison. The slo_*
(SLO burn/breach accounting) and ts_* (telemetry sampler totals)
families emitted by the telemetry plane are likewise informational —
they describe observability bookkeeping, not queue performance. Cells
missing from either side are reported but are not failures: baselines
are allowed to trail the benchmark matrix.

Exit codes: 0 = no regression, 1 = regression detected, 2 = bad
invocation or unparseable input. --report-only prints the comparison but
always exits 0/2 (for CI steps that compare against a baseline recorded
on different hardware).
"""

import argparse
import json
import sys

# metric-name prefix -> direction ("up" = bigger is better)
COMPARED_METRICS = {
    "throughput_mops": "up",
    "raw_tasks_per_s": "up",
    "service_tasks_per_s": "up",
    "latency_delete_p50_ns": "down",
    "latency_delete_p99_ns": "down",
    "latency_insert_p99_ns": "down",
    "service_delete_p50_ns": "down",
    "service_delete_p99_ns": "down",
    "rank_bound_violations": "down",
}

# metric-name prefixes that are always informational, never compared --
# they describe the measurement environment (layout sensitivity, arrival
# burstiness), not the queue under test.
INFORMATIONAL_PREFIXES = ("layout_", "burst_", "counter_", "rank_est_",
                          "perf_", "slo_", "ts_")

REQUIRED_KEYS = {"experiment", "queue", "metric", "threads", "mean", "ci95",
                 "reps"}
MAX_SCHEMA_VERSION = 4


class ParseError(Exception):
    pass


def load_records(path):
    """Parse a JSON Lines file into {cell_key: record}."""
    records = {}
    with open(path, "r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                obj = json.loads(line)
            except json.JSONDecodeError as err:
                raise ParseError(f"{path}:{lineno}: not JSON: {err}") from err
            if not isinstance(obj, dict):
                raise ParseError(f"{path}:{lineno}: not an object")
            missing = REQUIRED_KEYS - obj.keys()
            if missing:
                raise ParseError(
                    f"{path}:{lineno}: missing keys: {sorted(missing)}")
            version = obj.get("schema_version", 1)
            if not isinstance(version, int) or not (
                    1 <= version <= MAX_SCHEMA_VERSION):
                raise ParseError(
                    f"{path}:{lineno}: unsupported schema_version {version!r}")
            key = (obj["experiment"], obj["queue"], obj["metric"],
                   obj["threads"])
            # Re-runs append: the last record for a cell wins.
            records[key] = obj
    return records


def compare(baseline, current, threshold):
    """Return (regressions, improvements, skipped, missing, seeding) lists.

    `seeding` holds cells present in the current run but absent from the
    baseline — newly added queues/metrics that the baseline has not been
    regenerated for yet. They are informational (never failures): a growing
    benchmark matrix seeds its baseline, it does not regress against it.
    """
    regressions = []
    improvements = []
    skipped = []
    missing = []
    seeding = [key for key in sorted(current) if key not in baseline]

    for key, base in sorted(baseline.items()):
        metric = key[2]
        # Informational families take precedence over any direction entry:
        # layout_/burst_ cells can double without meaning the queue got
        # worse, only that the environment is layout-sensitive or bursty.
        if metric.startswith(INFORMATIONAL_PREFIXES):
            direction = None
        else:
            direction = COMPARED_METRICS.get(metric)
        cur = current.get(key)
        if cur is None:
            missing.append(key)
            continue
        if direction is None:
            skipped.append(key)
            continue
        if base.get("status") == "failed" or cur.get("status") == "failed":
            # A cell failing now where it passed before IS a regression.
            if base.get("status") != "failed" and cur.get("status") == "failed":
                regressions.append((key, base, cur, "cell failed"))
            continue
        if base["mean"] is None or cur["mean"] is None:
            skipped.append(key)  # metric unavailable in one environment
            continue

        base_mean = float(base["mean"])
        cur_mean = float(cur["mean"])
        noise = max(float(base.get("ci95") or 0.0),
                    float(cur.get("ci95") or 0.0))
        band = abs(base_mean) * threshold + noise
        if direction == "up":
            delta = cur_mean - base_mean
        else:
            delta = base_mean - cur_mean
        if delta < -band:
            pct = 100.0 * delta / base_mean if base_mean else float("inf")
            regressions.append((key, base, cur, f"{pct:+.1f}%"))
        elif delta > band:
            improvements.append((key, base, cur))
    return regressions, improvements, skipped, missing, seeding


def describe(key):
    experiment, queue, metric, threads = key
    return f"{experiment} / {queue} / {metric} @ t={threads}"


def run_compare(args):
    try:
        baseline = load_records(args.baseline)
        current = load_records(args.current)
    except (OSError, ParseError) as err:
        print(f"bench_compare: {err}", file=sys.stderr)
        return 2
    if not baseline:
        print(f"bench_compare: {args.baseline}: no records", file=sys.stderr)
        return 2

    regressions, improvements, skipped, missing, seeding = compare(
        baseline, current, args.threshold)

    print(f"bench_compare: {len(baseline)} baseline cells, "
          f"{len(current)} current cells, threshold {args.threshold:.0%}")
    for key, base, cur, why in regressions:
        print(f"  REGRESSION {describe(key)}: "
              f"{base['mean']} -> {cur['mean']} ({why})")
    for key, base, cur in improvements:
        print(f"  improved   {describe(key)}: {base['mean']} -> {cur['mean']}")
    if missing:
        print(f"  {len(missing)} baseline cell(s) missing from current run")
    if seeding:
        print(f"  {len(seeding)} new cell(s) not in baseline "
              f"(baseline-seeding, not failures):")
        for key in seeding:
            print(f"    new        {describe(key)}")
    if skipped:
        print(f"  {len(skipped)} cell(s) informational-only (not compared)")
    if regressions:
        print(f"bench_compare: {len(regressions)} regression(s) detected")
        return 0 if args.report_only else 1
    print("bench_compare: no regressions")
    return 0


def self_test():
    """Prove the detector on synthetic data: an identical re-run passes and
    a 30% throughput regression fails, deterministically."""
    def cell(metric, mean, ci95=0.0, status="ok"):
        return {"schema_version": 2, "experiment": "fig1", "queue": "mq",
                "metric": metric, "threads": 4, "mean": mean, "ci95": ci95,
                "reps": 3, "status": status}

    base = {("fig1", "mq", "throughput_mops", 4):
            cell("throughput_mops", 10.0, 0.4),
            ("fig1", "mq", "latency_delete_p99_ns", 4):
            cell("latency_delete_p99_ns", 900.0, 25.0),
            ("fig1", "mq", "counter_cas_retry", 4):
            cell("counter_cas_retry", 123456.0)}

    # 1. Identical re-run: must pass.
    r, _, skipped, _, _ = compare(base, dict(base), 0.20)
    assert not r, f"identical re-run flagged: {r}"
    assert len(skipped) == 1, "counter cell should be informational-only"

    # 2. 30% throughput drop: must be detected at the default threshold.
    worse = {k: dict(v) for k, v in base.items()}
    worse[("fig1", "mq", "throughput_mops", 4)]["mean"] = 7.0
    r, _, _, _, _ = compare(base, worse, 0.20)
    assert len(r) == 1 and r[0][0][2] == "throughput_mops", \
        f"30% regression not detected: {r}"

    # 3. Same drop inside a huge CI is noise, not a regression.
    noisy = {k: dict(v) for k, v in base.items()}
    noisy[("fig1", "mq", "throughput_mops", 4)]["ci95"] = 5.0
    r, _, _, _, _ = compare(noisy, worse, 0.20)
    assert not r, f"noise-band violation: {r}"

    # 4. Latency direction: 30% slower p99 is a regression.
    slower = {k: dict(v) for k, v in base.items()}
    slower[("fig1", "mq", "latency_delete_p99_ns", 4)]["mean"] = 1200.0
    r, _, _, _, _ = compare(base, slower, 0.20)
    assert len(r) == 1 and r[0][0][2] == "latency_delete_p99_ns", \
        f"latency regression not detected: {r}"

    # 5. A previously-ok cell that now reports status=failed regresses.
    failed = {k: dict(v) for k, v in base.items()}
    failed[("fig1", "mq", "throughput_mops", 4)]["status"] = "failed"
    r, _, _, _, _ = compare(base, failed, 0.20)
    assert len(r) == 1 and r[0][3] == "cell failed", f"failed cell missed: {r}"

    # 6. "mean": null (schema v2) is skipped, not compared as zero.
    nullled = {k: dict(v) for k, v in base.items()}
    nullled[("fig1", "mq", "throughput_mops", 4)]["mean"] = None
    r, _, skipped, _, _ = compare(base, nullled, 0.20)
    assert not r and len(skipped) == 2, f"null mean mishandled: {r} {skipped}"

    # 7. A cell only present in the current run seeds the baseline; it is
    #    reported informationally and is never a regression.
    grown = {k: dict(v) for k, v in base.items()}
    new_key = ("fig1", "mq-eng", "throughput_mops", 4)
    grown[new_key] = dict(cell("throughput_mops", 25.0, 0.5), queue="mq-eng")
    r, _, _, _, seeding = compare(base, grown, 0.20)
    assert not r, f"baseline-seeding cell flagged as regression: {r}"
    assert seeding == [new_key], f"seeding cell not reported: {seeding}"

    # 8. layout_*/burst_* cells are informational: a doubled layout spread
    #    or burst count must never register as a regression.
    layout_base = dict(base)
    layout_base[("fig1", "mq", "layout_spread_pct", 4)] = \
        cell("layout_spread_pct", 4.0)
    layout_base[("fig1", "mq", "burst_count", 4)] = cell("burst_count", 40.0)
    layout_worse = {k: dict(v) for k, v in layout_base.items()}
    layout_worse[("fig1", "mq", "layout_spread_pct", 4)]["mean"] = 8.0
    layout_worse[("fig1", "mq", "burst_count", 4)]["mean"] = 80.0
    r, _, skipped, _, _ = compare(layout_base, layout_worse, 0.20)
    assert not r, f"informational layout_/burst_ cell flagged: {r}"
    assert len(skipped) == 3, \
        f"layout_/burst_ cells should be informational-only: {skipped}"

    # 9. slo_*/ts_* telemetry-plane cells are informational: a longer
    #    breach or more samples must never register as a regression.
    slo_base = dict(base)
    slo_base[("fig1", "telemetry", "slo_breach_ms:p99_sojourn_us<500", 0)] = \
        cell("slo_breach_ms:p99_sojourn_us<500", 12.0)
    slo_base[("fig1", "telemetry", "ts_samples", 0)] = cell("ts_samples", 50.0)
    slo_worse = {k: dict(v) for k, v in slo_base.items()}
    slo_worse[("fig1", "telemetry",
               "slo_breach_ms:p99_sojourn_us<500", 0)]["mean"] = 480.0
    slo_worse[("fig1", "telemetry", "ts_samples", 0)]["mean"] = 500.0
    r, _, skipped, _, _ = compare(slo_base, slo_worse, 0.20)
    assert not r, f"informational slo_/ts_ cell flagged: {r}"
    assert len(skipped) == 3, \
        f"slo_/ts_ cells should be informational-only: {skipped}"

    print("bench_compare: self-test passed")
    return 0


def main(argv):
    parser = argparse.ArgumentParser(
        description="Compare cpq bench JSON Lines output against a baseline.")
    parser.add_argument("baseline", nargs="?", help="baseline JSON Lines file")
    parser.add_argument("current", nargs="?", help="current JSON Lines file")
    parser.add_argument("--threshold", type=float, default=0.20,
                        help="relative regression guard band (default 0.20)")
    parser.add_argument("--report-only", action="store_true",
                        help="print the comparison but never exit 1")
    parser.add_argument("--self-test", action="store_true",
                        help="run the built-in detector self-test and exit")
    args = parser.parse_args(argv)

    if args.self_test:
        return self_test()
    if not args.baseline or not args.current:
        parser.print_usage(sys.stderr)
        return 2
    if not (0.0 <= args.threshold < 1.0):
        print("bench_compare: --threshold must be in [0, 1)", file=sys.stderr)
        return 2
    return run_compare(args)


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
