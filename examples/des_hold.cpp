// Parallel discrete event simulation — the "hold model" (Jones 1986).
//
// The paper's configurable benchmark explicitly maps to this workload
// (§F: "an operation batch size of one with an insert following delete
// with dependent keys … would correspond to the hold model proposed in
// [Jones]"). A DES event loop holds the queue at a steady size: pop the
// earliest event, execute it, schedule a follow-up event at
// (popped time + random increment).
//
// With a relaxed queue, events can execute out of timestamp order; whether
// that is tolerable is application-specific (optimistic simulators roll
// back, PHOLD-style models tolerate bounded skew). This example runs the
// hold loop over several queues and reports:
//   * event throughput,
//   * causality violations: events whose timestamp precedes the maximum
//     timestamp already executed by the same worker (the local time warp),
//   * the maximum observed warp magnitude.

#include <atomic>
#include <cstdio>
#include <cstdint>
#include <memory>
#include <vector>

#include "platform/cache.hpp"
#include "platform/rng.hpp"
#include "platform/thread_util.hpp"
#include "platform/timing.hpp"
#include "queues/globallock.hpp"
#include "queues/klsm/klsm.hpp"
#include "queues/multiqueue.hpp"
#include "service/priority_service.hpp"

namespace {

constexpr unsigned kThreads = 4;
constexpr std::uint64_t kPopulation = 100000;  // events held in the queue
constexpr std::uint64_t kEventsPerThread = 200000;
constexpr std::uint64_t kMeanHold = 16;  // mean timestamp increment

template <typename Queue>
void run_hold_model(const char* name, Queue& queue) {
  {
    auto handle = queue.get_handle(0);
    cpq::Xoroshiro128 rng(7);
    for (std::uint64_t i = 0; i < kPopulation; ++i) {
      handle.insert(rng.next_below(kPopulation * kMeanHold), i);
    }
  }
  std::vector<cpq::CacheAligned<std::uint64_t>> violations(kThreads);
  std::vector<cpq::CacheAligned<std::uint64_t>> max_warp(kThreads);
  cpq::Stopwatch watch;
  cpq::run_team(kThreads, [&](unsigned tid) {
    auto handle = queue.get_handle(tid);
    cpq::Xoroshiro128 rng(tid + 100);
    std::uint64_t now = 0;  // this worker's local virtual clock
    for (std::uint64_t e = 0; e < kEventsPerThread; ++e) {
      std::uint64_t time, payload;
      if (!handle.delete_min(time, payload)) continue;
      if (time < now) {
        ++violations[tid].value;
        const std::uint64_t warp = now - time;
        if (warp > max_warp[tid].value) max_warp[tid].value = warp;
      } else {
        now = time;
      }
      // Hold model: the follow-up event depends on the popped timestamp.
      handle.insert(time + 1 + rng.next_below(2 * kMeanHold - 1), payload);
    }
  });
  const double seconds = watch.elapsed_seconds();
  std::uint64_t total_violations = 0;
  std::uint64_t warp = 0;
  for (unsigned t = 0; t < kThreads; ++t) {
    total_violations += violations[t].value;
    if (max_warp[t].value > warp) warp = max_warp[t].value;
  }
  const double events = static_cast<double>(kThreads) * kEventsPerThread;
  std::printf(
      "%-10s %8.2f kEvents/s   causality violations: %8llu (%.3f%%)   max "
      "warp: %llu\n",
      name, events / seconds / 1e3,
      static_cast<unsigned long long>(total_violations),
      100.0 * total_violations / events,
      static_cast<unsigned long long>(warp));
}

}  // namespace

int main() {
  std::printf("hold-model DES: %u workers, population %llu, %llu events each\n",
              kThreads, static_cast<unsigned long long>(kPopulation),
              static_cast<unsigned long long>(kEventsPerThread));
  {
    cpq::GlobalLockQueue<std::uint64_t, std::uint64_t> q(kThreads);
    run_hold_model("glock", q);
  }
  {
    cpq::MultiQueue<std::uint64_t, std::uint64_t> q(kThreads, 4);
    run_hold_model("mq", q);
  }
  {
    cpq::KLsmQueue<std::uint64_t, std::uint64_t> q(kThreads, 256);
    run_hold_model("klsm256", q);
  }
  {
    cpq::KLsmQueue<std::uint64_t, std::uint64_t> q(kThreads, 4096);
    run_hold_model("klsm4096", q);
  }
  // The same event loop through the PriorityService dispatch layer: the
  // service satisfies the queue-handle concept, so run_hold_model is
  // oblivious to the sharding/batching underneath. Batching adds relaxation
  // (more causality violations) in exchange for amortized synchronization —
  // the trade the service makes visible.
  {
    using Inner = cpq::MultiQueue<std::uint64_t, std::uint64_t>;
    cpq::service::ServiceConfig cfg;
    cfg.shards = 2;
    cfg.insert_batch = 8;
    cfg.delete_batch = 8;
    cpq::service::PriorityService<Inner> q(kThreads, cfg, [](unsigned shard) {
      return std::make_unique<Inner>(kThreads, 4, shard + 1);
    });
    run_hold_model("mq+svc", q);
  }
  {
    using Inner = cpq::GlobalLockQueue<std::uint64_t, std::uint64_t>;
    cpq::service::ServiceConfig cfg;
    cfg.shards = kThreads;
    cfg.insert_batch = 8;
    cfg.delete_batch = 8;
    cpq::service::PriorityService<Inner> q(kThreads, cfg, [](unsigned) {
      return std::make_unique<Inner>(kThreads);
    });
    run_hold_model("glock+svc", q);
  }
  return 0;
}
