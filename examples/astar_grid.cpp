// A* grid pathfinding with a relaxed priority queue.
//
// A* is shortest-path search with a heuristic — the priority queue holds
// open nodes keyed by f = g + h. Like SSSP (examples/sssp.cpp), A* tolerates
// a relaxed queue: expanding a node with a non-minimal f only wastes work,
// because a node re-opened later with a smaller g is simply expanded again.
// With an *admissible* heuristic and re-expansion allowed, the returned
// path is still optimal.
//
// The example carves a random obstacle grid, finds a path with (a)
// sequential A* (binary heap) and (b) parallel A* over the MultiQueue and
// the k-LSM, and verifies all three find paths of identical cost.

#include <atomic>
#include <cstdio>
#include <cstdint>
#include <limits>
#include <vector>

#include "platform/rng.hpp"
#include "platform/thread_util.hpp"
#include "platform/timing.hpp"
#include "queues/klsm/klsm.hpp"
#include "queues/multiqueue.hpp"
#include "seq/binary_heap.hpp"

namespace {

constexpr int kSide = 1200;           // kSide x kSide cells
constexpr std::uint64_t kStraight = 10;  // axis move cost

struct Grid {
  std::vector<std::uint8_t> blocked;

  static Grid random(double obstacle_fraction, std::uint64_t seed) {
    Grid grid;
    grid.blocked.assign(static_cast<std::size_t>(kSide) * kSide, 0);
    cpq::Xoroshiro128 rng(seed);
    for (auto& cell : grid.blocked) {
      cell = rng.next_double() < obstacle_fraction ? 1 : 0;
    }
    grid.blocked.front() = 0;
    grid.blocked.back() = 0;
    return grid;
  }

  bool passable(int x, int y) const {
    return x >= 0 && y >= 0 && x < kSide && y < kSide &&
           !blocked[static_cast<std::size_t>(y) * kSide + x];
  }
};

std::uint32_t cell_id(int x, int y) {
  return static_cast<std::uint32_t>(y) * kSide + x;
}

// Manhattan distance scaled by the move cost: admissible for 4-connected
// grids.
std::uint64_t heuristic(int x, int y) {
  return (static_cast<std::uint64_t>(kSide - 1 - x) +
          static_cast<std::uint64_t>(kSide - 1 - y)) *
         kStraight;
}

constexpr std::uint64_t kUnvisited = std::numeric_limits<std::uint64_t>::max();

std::uint64_t sequential_astar(const Grid& grid) {
  std::vector<std::uint64_t> g(grid.blocked.size(), kUnvisited);
  cpq::seq::BinaryHeap<std::uint64_t, std::uint32_t> open;
  g[0] = 0;
  open.insert(heuristic(0, 0), 0);
  const std::uint32_t goal = cell_id(kSide - 1, kSide - 1);
  std::uint64_t f;
  std::uint32_t node;
  while (open.delete_min(f, node)) {
    const int x = node % kSide;
    const int y = node / kSide;
    const std::uint64_t node_g = g[node];
    if (f != node_g + heuristic(x, y)) continue;  // stale entry
    if (node == goal) return node_g;
    const int dx[] = {1, -1, 0, 0};
    const int dy[] = {0, 0, 1, -1};
    for (int d = 0; d < 4; ++d) {
      const int nx = x + dx[d];
      const int ny = y + dy[d];
      if (!grid.passable(nx, ny)) continue;
      const std::uint32_t next = cell_id(nx, ny);
      const std::uint64_t candidate = node_g + kStraight;
      if (candidate < g[next]) {
        g[next] = candidate;
        open.insert(candidate + heuristic(nx, ny), next);
      }
    }
  }
  return kUnvisited;
}

template <typename Queue>
std::uint64_t parallel_astar(const Grid& grid, Queue& queue,
                             unsigned threads) {
  std::vector<std::atomic<std::uint64_t>> g(grid.blocked.size());
  for (auto& cell : g) cell.store(kUnvisited, std::memory_order_relaxed);
  g[0].store(0, std::memory_order_relaxed);
  std::atomic<std::uint64_t> pending{1};
  std::atomic<std::uint64_t> best_goal{kUnvisited};
  {
    auto handle = queue.get_handle(0);
    handle.insert(heuristic(0, 0), 0);
  }
  const std::uint32_t goal = cell_id(kSide - 1, kSide - 1);

  cpq::run_team(threads, [&](unsigned tid) {
    auto handle = queue.get_handle(tid);
    while (pending.load(std::memory_order_acquire) > 0) {
      std::uint64_t f;
      std::uint64_t node64;
      if (!handle.delete_min(f, node64)) continue;
      const auto node = static_cast<std::uint32_t>(node64);
      const int x = node % kSide;
      const int y = node / kSide;
      const std::uint64_t node_g = g[node].load(std::memory_order_acquire);
      // Prune: stale entries and nodes that cannot beat the incumbent goal.
      if (f == node_g + heuristic(x, y) &&
          f < best_goal.load(std::memory_order_acquire)) {
        if (node == goal) {
          std::uint64_t best = best_goal.load(std::memory_order_relaxed);
          while (node_g < best && !best_goal.compare_exchange_weak(
                                      best, node_g,
                                      std::memory_order_acq_rel)) {
          }
        } else {
          const int dx[] = {1, -1, 0, 0};
          const int dy[] = {0, 0, 1, -1};
          for (int d = 0; d < 4; ++d) {
            const int nx = x + dx[d];
            const int ny = y + dy[d];
            if (!grid.passable(nx, ny)) continue;
            const std::uint32_t next = cell_id(nx, ny);
            const std::uint64_t candidate = node_g + kStraight;
            std::uint64_t current = g[next].load(std::memory_order_relaxed);
            while (candidate < current) {
              if (g[next].compare_exchange_weak(current, candidate,
                                                std::memory_order_acq_rel)) {
                pending.fetch_add(1, std::memory_order_acq_rel);
                handle.insert(candidate + heuristic(nx, ny), next);
                break;
              }
            }
          }
        }
      }
      pending.fetch_sub(1, std::memory_order_acq_rel);
    }
  });
  return best_goal.load();
}

}  // namespace

int main() {
  // Retry seeds until the random instance percolates (a pocket around the
  // start or goal can seal off a path even below the percolation threshold).
  Grid grid;
  std::uint64_t truth = kUnvisited;
  double seq_seconds = 0;
  for (std::uint64_t seed = 77; truth == kUnvisited && seed < 77 + 32;
       ++seed) {
    grid = Grid::random(0.2, seed);
    cpq::Stopwatch watch;
    truth = sequential_astar(grid);
    seq_seconds = watch.elapsed_seconds();
  }
  std::printf("A* on a %dx%d grid, 20%% obstacles\n", kSide, kSide);
  std::printf("%-10s cost=%llu  time=%.3fs\n", "seq-astar",
              static_cast<unsigned long long>(truth), seq_seconds);
  if (truth == kUnvisited) {
    std::printf("no percolating instance found\n");
    return 0;
  }
  cpq::Stopwatch watch;

  constexpr unsigned kThreads = 4;
  {
    cpq::MultiQueue<std::uint64_t, std::uint64_t> mq(kThreads, 4);
    watch.restart();
    const std::uint64_t cost = parallel_astar(grid, mq, kThreads);
    std::printf("%-10s cost=%llu  time=%.3fs  %s\n", "mq",
                static_cast<unsigned long long>(cost),
                watch.elapsed_seconds(), cost == truth ? "OPTIMAL" : "WRONG!");
    if (cost != truth) return 1;
  }
  {
    cpq::KLsmQueue<std::uint64_t, std::uint64_t> klsm(kThreads, 256);
    watch.restart();
    const std::uint64_t cost = parallel_astar(grid, klsm, kThreads);
    std::printf("%-10s cost=%llu  time=%.3fs  %s\n", "klsm256",
                static_cast<unsigned long long>(cost),
                watch.elapsed_seconds(), cost == truth ? "OPTIMAL" : "WRONG!");
    if (cost != truth) return 1;
  }
  return 0;
}
