// Quickstart: the 5-minute tour of the cpq library.
//
//   * construct a queue (here: the k-LSM with relaxation k=256),
//   * get one Handle per thread,
//   * insert(key, value) / delete_min(key&, value&),
//   * understand what "relaxed" buys and costs.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>
#include <thread>
#include <vector>

#include "queues/klsm/klsm.hpp"
#include "queues/linden.hpp"

int main() {
  constexpr unsigned kThreads = 4;

  // 1. A relaxed priority queue. delete_min returns one of the kP+1
  //    smallest items (k = 256, P = 4 here) instead of the exact minimum —
  //    that relaxation is what lets it scale past the delete_min bottleneck.
  cpq::KLsmQueue<std::uint64_t, std::uint64_t> queue(kThreads,
                                                     /*relaxation_k=*/256);

  // 2. Each thread gets its own handle (it holds the thread's RNG stream
  //    and its thread-local LSM identity).
  std::vector<std::thread> team;
  for (unsigned tid = 0; tid < kThreads; ++tid) {
    team.emplace_back([&queue, tid] {
      auto handle = queue.get_handle(tid);
      // Insert a block of keys…
      for (std::uint64_t i = 0; i < 10000; ++i) {
        handle.insert(tid * 10000 + i, /*value=*/i);
      }
      // …and consume some. The returned key is *one of the smallest*, not
      // necessarily THE smallest.
      std::uint64_t key, value;
      for (int i = 0; i < 5000; ++i) {
        if (!handle.delete_min(key, value)) break;
      }
    });
  }
  for (auto& t : team) t.join();

  // 3. Drain the rest single-threaded and observe near-sortedness.
  auto handle = queue.get_handle(0);
  std::uint64_t key, value, last = 0, inversions = 0, drained = 0;
  while (handle.delete_min(key, value)) {
    inversions += (key < last);
    last = key;
    ++drained;
  }
  std::printf("drained %llu items, %llu inversions (relaxation at work)\n",
              static_cast<unsigned long long>(drained),
              static_cast<unsigned long long>(inversions));

  // 4. Need strict semantics? Same interface, different queue:
  cpq::LindenQueue<std::uint64_t, std::uint64_t> strict(1);
  auto sh = strict.get_handle(0);
  sh.insert(3, 30);
  sh.insert(1, 10);
  sh.insert(2, 20);
  while (sh.delete_min(key, value)) {
    std::printf("strict delete_min -> key %llu\n",
                static_cast<unsigned long long>(key));
  }
  return 0;
}
