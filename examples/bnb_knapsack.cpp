// Parallel branch-and-bound 0/1 knapsack with a relaxed priority queue.
//
// Branch-and-bound is the paper's third motivating application. Best-first
// B&B keeps open subproblems in a priority queue ordered by their optimistic
// bound; with a relaxed queue, workers sometimes expand a node whose bound
// is not the current best — which costs extra node expansions but never
// correctness, because pruning only compares against the *incumbent*.
//
// The example solves a randomly generated instance with (a) sequential
// best-first search as ground truth (plus an independent DP check) and
// (b) parallel workers over the k-LSM, and prints solution value, node
// expansions, and wall time.

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdint>
#include <vector>

#include "platform/rng.hpp"
#include "platform/thread_util.hpp"
#include "platform/timing.hpp"
#include "queues/klsm/klsm.hpp"
#include "seq/binary_heap.hpp"

namespace {

struct Item {
  std::uint32_t weight;
  std::uint32_t value;
};

struct Instance {
  std::vector<Item> items;  // sorted by value density, descending
  std::uint64_t capacity;

  static Instance random(std::size_t n, std::uint64_t seed) {
    Instance inst;
    cpq::Xoroshiro128 rng(seed);
    std::uint64_t total_weight = 0;
    for (std::size_t i = 0; i < n; ++i) {
      Item item{static_cast<std::uint32_t>(rng.next_in(1, 1000)),
                static_cast<std::uint32_t>(rng.next_in(1, 1000))};
      total_weight += item.weight;
      inst.items.push_back(item);
    }
    inst.capacity = total_weight / 2;
    std::sort(inst.items.begin(), inst.items.end(),
              [](const Item& a, const Item& b) {
                return static_cast<std::uint64_t>(a.value) * b.weight >
                       static_cast<std::uint64_t>(b.value) * a.weight;
              });
    return inst;
  }
};

// Fractional-relaxation upper bound for the subproblem "items[depth:] with
// remaining capacity", plus the fixed value collected so far.
std::uint64_t upper_bound(const Instance& inst, std::size_t depth,
                          std::uint64_t remaining, std::uint64_t value) {
  std::uint64_t bound = value;
  for (std::size_t i = depth; i < inst.items.size(); ++i) {
    const Item& item = inst.items[i];
    if (item.weight <= remaining) {
      remaining -= item.weight;
      bound += item.value;
    } else {
      bound += static_cast<std::uint64_t>(item.value) * remaining /
               item.weight;
      break;
    }
  }
  return bound;
}

// A search node, packed into a 64-bit value for the queue payload:
// depth (16 bits) | remaining capacity (24 bits) | value so far (24 bits).
std::uint64_t pack(std::uint32_t depth, std::uint64_t remaining,
                   std::uint64_t value) {
  return (static_cast<std::uint64_t>(depth) << 48) | (remaining << 24) |
         value;
}
void unpack(std::uint64_t node, std::uint32_t& depth, std::uint64_t& remaining,
            std::uint64_t& value) {
  depth = static_cast<std::uint32_t>(node >> 48);
  remaining = (node >> 24) & 0xFFFFFF;
  value = node & 0xFFFFFF;
}

// Min-queue key: inverted bound, so the most promising node comes first.
constexpr std::uint64_t kKeyBias = 1ULL << 40;
std::uint64_t bound_to_key(std::uint64_t bound) { return kKeyBias - bound; }

std::uint64_t dp_optimum(const Instance& inst) {
  std::vector<std::uint64_t> best(inst.capacity + 1, 0);
  for (const Item& item : inst.items) {
    for (std::uint64_t c = inst.capacity; c >= item.weight; --c) {
      best[c] = std::max(best[c], best[c - item.weight] + item.value);
    }
  }
  return best[inst.capacity];
}

template <typename InsertFn>
void expand(const Instance& inst, std::uint64_t node,
            std::atomic<std::uint64_t>& incumbent, InsertFn&& enqueue,
            std::uint64_t& expansions) {
  std::uint32_t depth;
  std::uint64_t remaining, value;
  unpack(node, depth, remaining, value);
  ++expansions;
  // Raise the incumbent with the always-feasible "take nothing more".
  std::uint64_t best = incumbent.load(std::memory_order_relaxed);
  while (value > best && !incumbent.compare_exchange_weak(
                             best, value, std::memory_order_acq_rel)) {
  }
  if (depth == inst.items.size()) return;
  const Item& item = inst.items[depth];
  // Branch 1: take the item (if it fits).
  if (item.weight <= remaining) {
    const std::uint64_t child_value = value + item.value;
    const std::uint64_t child_rem = remaining - item.weight;
    const std::uint64_t bound =
        upper_bound(inst, depth + 1, child_rem, child_value);
    if (bound > incumbent.load(std::memory_order_relaxed)) {
      enqueue(bound_to_key(bound), pack(depth + 1, child_rem, child_value));
    }
  }
  // Branch 2: skip the item.
  const std::uint64_t bound = upper_bound(inst, depth + 1, remaining, value);
  if (bound > incumbent.load(std::memory_order_relaxed)) {
    enqueue(bound_to_key(bound), pack(depth + 1, remaining, value));
  }
}

std::uint64_t sequential_bnb(const Instance& inst, std::uint64_t& expansions) {
  cpq::seq::BinaryHeap<std::uint64_t, std::uint64_t> heap;
  std::atomic<std::uint64_t> incumbent{0};
  expansions = 0;
  heap.insert(bound_to_key(upper_bound(inst, 0, inst.capacity, 0)),
              pack(0, inst.capacity, 0));
  std::uint64_t key, node;
  while (heap.delete_min(key, node)) {
    if (kKeyBias - key <= incumbent.load(std::memory_order_relaxed)) {
      continue;  // bound no longer beats the incumbent
    }
    expand(inst, node, incumbent,
           [&](std::uint64_t k, std::uint64_t v) { heap.insert(k, v); },
           expansions);
  }
  return incumbent.load();
}

std::uint64_t parallel_bnb(const Instance& inst, unsigned threads,
                           std::uint64_t& expansions_out) {
  cpq::KLsmQueue<std::uint64_t, std::uint64_t> queue(threads, 256);
  std::atomic<std::uint64_t> incumbent{0};
  std::atomic<std::uint64_t> pending{1};
  std::atomic<std::uint64_t> expansions{0};
  {
    auto handle = queue.get_handle(0);
    handle.insert(bound_to_key(upper_bound(inst, 0, inst.capacity, 0)),
                  pack(0, inst.capacity, 0));
  }
  cpq::run_team(threads, [&](unsigned tid) {
    auto handle = queue.get_handle(tid);
    std::uint64_t local_expansions = 0;
    while (pending.load(std::memory_order_acquire) > 0) {
      std::uint64_t key, node;
      if (!handle.delete_min(key, node)) continue;
      if (kKeyBias - key > incumbent.load(std::memory_order_relaxed)) {
        expand(inst, node, incumbent,
               [&](std::uint64_t k, std::uint64_t v) {
                 pending.fetch_add(1, std::memory_order_acq_rel);
                 handle.insert(k, v);
               },
               local_expansions);
      }
      pending.fetch_sub(1, std::memory_order_acq_rel);
    }
    expansions.fetch_add(local_expansions, std::memory_order_relaxed);
  });
  expansions_out = expansions.load();
  return incumbent.load();
}

}  // namespace

int main() {
  const Instance inst = Instance::random(36, 20260706);
  std::printf("knapsack: %zu items, capacity %llu\n", inst.items.size(),
              static_cast<unsigned long long>(inst.capacity));

  const std::uint64_t optimal = dp_optimum(inst);
  std::printf("%-14s value=%llu (ground truth)\n", "dp",
              static_cast<unsigned long long>(optimal));

  std::uint64_t expansions = 0;
  cpq::Stopwatch watch;
  const std::uint64_t seq = sequential_bnb(inst, expansions);
  std::printf("%-14s value=%llu  expansions=%llu  time=%.3fs  %s\n",
              "bnb-seq", static_cast<unsigned long long>(seq),
              static_cast<unsigned long long>(expansions),
              watch.elapsed_seconds(), seq == optimal ? "OK" : "WRONG!");

  watch.restart();
  const std::uint64_t par = parallel_bnb(inst, 4, expansions);
  std::printf("%-14s value=%llu  expansions=%llu  time=%.3fs  %s\n",
              "bnb-klsm256", static_cast<unsigned long long>(par),
              static_cast<unsigned long long>(expansions),
              watch.elapsed_seconds(), par == optimal ? "OK" : "WRONG!");
  return (seq == optimal && par == optimal) ? 0 : 1;
}
