// Parallel single-source shortest paths with a relaxed priority queue.
//
// The paper's introduction names shortest-path algorithms as a canonical
// application that "can often accommodate such relaxations": a Dijkstra-like
// label-correcting search stays correct with a relaxed queue because
// settling a vertex via a non-minimal label merely re-enqueues it — the
// algorithm trades wasted re-expansions for queue scalability (concurrent
// priority queues support no decrease_key, so re-insertion is the standard
// formulation, cf. paper §A).
//
// This example builds a random directed graph, runs (a) sequential Dijkstra
// with the binary heap as ground truth and (b) the parallel relaxed search
// over the k-LSM and the MultiQueue, verifies exact distance equality, and
// reports wasted work.

#include <atomic>
#include <cstdio>
#include <cstdint>
#include <limits>
#include <vector>

#include "platform/rng.hpp"
#include "platform/thread_util.hpp"
#include "platform/timing.hpp"
#include "queues/klsm/klsm.hpp"
#include "queues/multiqueue.hpp"
#include "seq/binary_heap.hpp"

namespace {

struct Edge {
  std::uint32_t to;
  std::uint32_t weight;
};

struct Graph {
  std::vector<std::vector<Edge>> adjacency;

  static Graph random(std::uint32_t vertices, std::uint32_t avg_degree,
                      std::uint64_t seed) {
    Graph g;
    g.adjacency.resize(vertices);
    cpq::Xoroshiro128 rng(seed);
    // A connectivity backbone plus random extra edges.
    for (std::uint32_t v = 1; v < vertices; ++v) {
      g.adjacency[rng.next_below(v)].push_back(
          {v, static_cast<std::uint32_t>(rng.next_in(1, 100))});
    }
    const std::uint64_t extra =
        static_cast<std::uint64_t>(vertices) * (avg_degree - 1);
    for (std::uint64_t e = 0; e < extra; ++e) {
      const auto from = static_cast<std::uint32_t>(rng.next_below(vertices));
      const auto to = static_cast<std::uint32_t>(rng.next_below(vertices));
      g.adjacency[from].push_back(
          {to, static_cast<std::uint32_t>(rng.next_in(1, 100))});
    }
    return g;
  }
};

constexpr std::uint64_t kUnreached = std::numeric_limits<std::uint64_t>::max();

std::vector<std::uint64_t> sequential_dijkstra(const Graph& g,
                                               std::uint32_t source) {
  std::vector<std::uint64_t> dist(g.adjacency.size(), kUnreached);
  cpq::seq::BinaryHeap<std::uint64_t, std::uint32_t> heap;
  dist[source] = 0;
  heap.insert(0, source);
  std::uint64_t d;
  std::uint32_t v;
  while (heap.delete_min(d, v)) {
    if (d != dist[v]) continue;  // stale entry
    for (const Edge& e : g.adjacency[v]) {
      const std::uint64_t candidate = d + e.weight;
      if (candidate < dist[e.to]) {
        dist[e.to] = candidate;
        heap.insert(candidate, e.to);
      }
    }
  }
  return dist;
}

// Parallel label-correcting SSSP over any queue satisfying the cpq handle
// interface. Termination: a global count of queued-but-unprocessed entries;
// workers exit when it reaches zero.
template <typename Queue>
std::vector<std::uint64_t> parallel_sssp(const Graph& g, std::uint32_t source,
                                         Queue& queue, unsigned threads,
                                         std::uint64_t& wasted_out) {
  const std::size_t n = g.adjacency.size();
  std::vector<std::atomic<std::uint64_t>> dist(n);
  for (auto& d : dist) d.store(kUnreached, std::memory_order_relaxed);
  dist[source].store(0, std::memory_order_relaxed);

  std::atomic<std::uint64_t> pending{1};
  std::atomic<std::uint64_t> wasted{0};
  {
    auto handle = queue.get_handle(0);
    handle.insert(0, source);
  }

  cpq::run_team(threads, [&](unsigned tid) {
    auto handle = queue.get_handle(tid);
    std::uint64_t local_wasted = 0;
    while (pending.load(std::memory_order_acquire) > 0) {
      std::uint64_t d;
      std::uint64_t v64;
      if (!handle.delete_min(d, v64)) continue;  // relaxed-empty: re-poll
      const auto v = static_cast<std::uint32_t>(v64);
      if (d == dist[v].load(std::memory_order_acquire)) {
        for (const Edge& e : g.adjacency[v]) {
          const std::uint64_t candidate = d + e.weight;
          std::uint64_t current = dist[e.to].load(std::memory_order_relaxed);
          while (candidate < current) {
            if (dist[e.to].compare_exchange_weak(current, candidate,
                                                 std::memory_order_acq_rel)) {
              pending.fetch_add(1, std::memory_order_acq_rel);
              handle.insert(candidate, e.to);
              break;
            }
          }
        }
      } else {
        ++local_wasted;  // stale or over-relaxed label
      }
      pending.fetch_sub(1, std::memory_order_acq_rel);
    }
    wasted.fetch_add(local_wasted, std::memory_order_relaxed);
  });
  wasted_out = wasted.load();

  std::vector<std::uint64_t> result(n);
  for (std::size_t i = 0; i < n; ++i) {
    result[i] = dist[i].load(std::memory_order_relaxed);
  }
  return result;
}

template <typename Queue>
void run_and_verify(const char* name, const Graph& g,
                    const std::vector<std::uint64_t>& truth, Queue& queue,
                    unsigned threads) {
  cpq::Stopwatch watch;
  std::uint64_t wasted = 0;
  const auto dist = parallel_sssp(g, 0, queue, threads, wasted);
  const double seconds = watch.elapsed_seconds();
  std::uint64_t mismatches = 0;
  for (std::size_t i = 0; i < dist.size(); ++i) {
    mismatches += (dist[i] != truth[i]);
  }
  std::printf("%-10s threads=%u  time=%.3fs  wasted_pops=%llu  %s\n", name,
              threads, seconds, static_cast<unsigned long long>(wasted),
              mismatches == 0 ? "distances EXACT" : "DISTANCES WRONG!");
  if (mismatches != 0) std::exit(1);
}

}  // namespace

int main() {
  constexpr std::uint32_t kVertices = 200000;
  constexpr unsigned kThreads = 4;
  std::printf("building random graph: %u vertices, ~avg degree 8…\n",
              kVertices);
  const Graph g = Graph::random(kVertices, 8, 1234);

  cpq::Stopwatch watch;
  const auto truth = sequential_dijkstra(g, 0);
  std::printf("%-10s threads=1  time=%.3fs  (ground truth)\n", "dijkstra",
              watch.elapsed_seconds());

  cpq::KLsmQueue<std::uint64_t, std::uint64_t> klsm(kThreads, 256);
  run_and_verify("klsm256", g, truth, klsm, kThreads);

  cpq::MultiQueue<std::uint64_t, std::uint64_t> mq(kThreads, 4);
  run_and_verify("mq", g, truth, mq, kThreads);
  return 0;
}
