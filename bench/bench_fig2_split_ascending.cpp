// E2 — Figure 2 (and Figure 4e): split workload, ascending keys.
//
// Half the threads only insert (with keys that trend upward over time),
// half only delete. Paper result: the picture changes drastically versus
// Fig. 1 — total throughput drops by an order of magnitude, the k-LSM
// collapses below even the sequential glock baseline (the load shifts
// entirely onto its SLSM component), the MultiQueue performs best, and
// linden surprisingly scales thanks to cache locality (inserting threads
// touch only the list tail, deleting threads only the head).

#include "bench_common.hpp"

int main() {
  using namespace cpq::bench;
  const Options options = options_from_env();
  print_bench_header("bench_fig2_split_ascending",
                     "Fig. 2 / Fig. 4e (mars): split workload, ascending keys",
                     options);
  BenchConfig cfg = base_config(options);
  cfg.workload = Workload::kSplit;
  cfg.keys = KeyConfig::ascending();
  throughput_table("Fig. 2", cfg, options, roster_from_env());
  return 0;
}
