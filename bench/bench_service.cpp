// bench_service — open-loop task-dispatch benchmark for the PriorityService
// layer (src/service/priority_service.hpp).
//
// A Poisson client simulator offers tasks to each queue twice: once through
// raw queue handles, once through the sharded/batched PriorityService. Each
// thread-ladder entry is split into producers (open-loop submitters whose
// arrival schedule is independent of completions) and consumers (dequeue
// loops). Reported per cell: delivered tasks/s, the median completion-rank
// error, delete_min latency, and the overload picture — sojourn p99 plus
// shed/reroute/breaker counters — raw -> service per queue.
//
// Env knobs on top of the usual CPQ_* set:
//   CPQ_ARRIVAL_HZ       offered load per producer (tasks/s, 0 = closed loop)
//   CPQ_CHECKED=1        wrap every queue in validation::CheckedQueue and
//                        fail (exit 1) on any conservation violation —
//                        combine with a -DCPQ_FAULT_INJECTION=ON build and
//                        CPQ_INJECT_PPM to torture the service end to end
//   CPQ_TTL_US           task time-to-live; expired tasks are shed at pop
//   CPQ_MAX_IN_FLIGHT    admission bound (0 = unbounded)
//   CPQ_POLICY           block | reject | tiered (admission under pressure)
//   CPQ_TIERS            priority tiers for the tiered policy (default 4)
//   CPQ_BREAKER_TRIP_US  per-shard circuit-breaker trip latency (0 = off)
//   CPQ_RETRY_LIMIT      submit_with_retry attempt cap
//
// Chaos mode:
//   bench_service --chaos=FILE [--queue=glock|mq]
// runs the declarative fault campaign in FILE (see src/validation/chaos.hpp
// for the format) instead of the sweep, and exits 0/1/2 per
// bench/chaos_driver.hpp.
//
// Telemetry flags (shared with cpq_bench_cli; see bench/telemetry_cli.hpp):
//   --telemetry-hz=HZ --timeseries-out=FILE --prom-out=FILE --slo=SPEC
// sample live service metrics on a background thread during the sweep or
// chaos campaign; the dependent flags exit 2 without --telemetry-hz > 0.
// Chaos campaigns sampled with --slo additionally report a measured
// slo_recovery_ms per scenario.

#include <cstdlib>
#include <cstring>

#include "bench_common.hpp"
#include "chaos_driver.hpp"
#include "telemetry_cli.hpp"

int main(int argc, char** argv) {
  using namespace cpq::bench;

  std::string chaos_file;
  std::string chaos_queue = "mq";
  TelemetryCliOptions telemetry;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    const int telemetry_parse =
        parse_telemetry_flag(arg, "bench_service", telemetry);
    if (telemetry_parse == 2) return 2;
    if (telemetry_parse == 1) continue;
    if (std::strncmp(arg, "--chaos=", 8) == 0) {
      chaos_file = arg + 8;
    } else if (std::strncmp(arg, "--queue=", 8) == 0) {
      chaos_queue = arg + 8;
    } else {
      std::fprintf(stderr,
                   "usage: bench_service [--chaos=FILE [--queue=glock|mq]]\n"
                   "                     [--telemetry-hz=HZ] "
                   "[--timeseries-out=FILE]\n"
                   "                     [--prom-out=FILE] [--slo=SPEC]\n");
      return 2;
    }
  }
  if (const int rc = validate_telemetry_options(telemetry, "bench_service")) {
    return rc;
  }

  const Options options = options_from_env();
  if (!chaos_file.empty()) {
    telemetry_begin(telemetry);
    const int chaos_rc =
        run_chaos_from_file(chaos_file, chaos_queue, options.seed);
    const int telemetry_rc =
        telemetry_finish(telemetry, "chaos", "bench_service");
    return chaos_rc != 0 ? chaos_rc : telemetry_rc;
  }

  print_bench_header("bench_service",
                     "open-loop Poisson dispatch, raw vs PriorityService",
                     options);

  cpq::service::ServiceBenchConfig cfg;
  cfg.duration_s = options.duration_s;
  cfg.prefill = options.prefill;
  cfg.keys = KeyConfig::uniform(32);
  cfg.seed = options.seed;
  if (const char* hz = std::getenv("CPQ_ARRIVAL_HZ")) {
    cfg.arrival_hz = std::atof(hz);
    if (cfg.arrival_hz < 0.0) cfg.arrival_hz = 0.0;
  }
  if (const char* checked = std::getenv("CPQ_CHECKED")) {
    cfg.checked = checked[0] != '\0' && checked[0] != '0';
  }
  if (const char* ttl = std::getenv("CPQ_TTL_US")) {
    cfg.service.ttl_us = std::strtoull(ttl, nullptr, 10);
  }
  if (const char* mif = std::getenv("CPQ_MAX_IN_FLIGHT")) {
    cfg.service.max_in_flight = std::strtoull(mif, nullptr, 10);
  }
  if (const char* policy = std::getenv("CPQ_POLICY")) {
    if (std::strcmp(policy, "block") == 0) {
      cfg.service.policy = cpq::service::AdmissionPolicy::kBlock;
    } else if (std::strcmp(policy, "reject") == 0) {
      cfg.service.policy = cpq::service::AdmissionPolicy::kReject;
    } else if (std::strcmp(policy, "tiered") == 0) {
      cfg.service.policy = cpq::service::AdmissionPolicy::kTiered;
    } else {
      std::fprintf(stderr,
                   "CPQ_POLICY must be block, reject, or tiered (got %s)\n",
                   policy);
      return 2;
    }
  }
  if (const char* tiers = std::getenv("CPQ_TIERS")) {
    cfg.service.tiers =
        static_cast<unsigned>(std::strtoul(tiers, nullptr, 10));
  }
  if (const char* trip = std::getenv("CPQ_BREAKER_TRIP_US")) {
    cfg.service.breaker_trip_us = std::strtoull(trip, nullptr, 10);
  }
  if (const char* retries = std::getenv("CPQ_RETRY_LIMIT")) {
    cfg.service.retry_limit =
        static_cast<unsigned>(std::strtoul(retries, nullptr, 10));
  }

  telemetry_begin(telemetry);
  int rc = service_table("service", cfg, options, roster_from_env()) ? 0 : 1;
  if (telemetry_finish(telemetry, "service", "bench_service") != 0 &&
      rc == 0) {
    rc = 1;
  }
  return rc;
}
