// bench_service — open-loop task-dispatch benchmark for the PriorityService
// layer (src/service/priority_service.hpp).
//
// A Poisson client simulator offers tasks to each queue twice: once through
// raw queue handles, once through the sharded/batched PriorityService. Each
// thread-ladder entry is split into producers (open-loop submitters whose
// arrival schedule is independent of completions) and consumers (dequeue
// loops). Reported per cell: delivered tasks/s and the median
// completion-rank error, raw -> service, so the cost/benefit of the
// dispatch layer is visible per queue.
//
// Env knobs on top of the usual CPQ_* set:
//   CPQ_ARRIVAL_HZ   offered load per producer (tasks/s, 0 = closed loop)
//   CPQ_CHECKED=1    wrap every queue in validation::CheckedQueue and fail
//                    (exit 1) on any conservation violation — combine with
//                    a -DCPQ_FAULT_INJECTION=ON build and CPQ_INJECT_PPM to
//                    torture the service layer end to end

#include <cstdlib>

#include "bench_common.hpp"

int main() {
  using namespace cpq::bench;
  const Options options = options_from_env();
  print_bench_header("bench_service",
                     "open-loop Poisson dispatch, raw vs PriorityService",
                     options);

  cpq::service::ServiceBenchConfig cfg;
  cfg.duration_s = options.duration_s;
  cfg.prefill = options.prefill;
  cfg.keys = KeyConfig::uniform(32);
  cfg.seed = options.seed;
  if (const char* hz = std::getenv("CPQ_ARRIVAL_HZ")) {
    cfg.arrival_hz = std::atof(hz);
    if (cfg.arrival_hz < 0.0) cfg.arrival_hz = 0.0;
  }
  if (const char* checked = std::getenv("CPQ_CHECKED")) {
    cfg.checked = checked[0] != '\0' && checked[0] != '0';
  }

  return service_table("service", cfg, options, roster_from_env()) ? 0 : 1;
}
