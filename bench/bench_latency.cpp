// E-extra — per-operation latency percentiles (the paper's §F
// "throughput/latency switch").
//
// Fixed operation count per thread, every operation timed individually.
// Throughput plots hide tail behaviour: the GlobalLock baseline convoys
// (high p99 under threads), the k-LSM amortizes merges (spiky inserts,
// cheap local deletes), the MultiQueue stays flat. Units: nanoseconds.

#include <string>
#include <vector>

#include "bench_common.hpp"
#include "bench_framework/latency.hpp"

int main() {
  using namespace cpq::bench;
  const Options options = options_from_env();
  print_bench_header("bench_latency",
                     "per-op latency percentiles (paper §F latency switch), "
                     "uniform workload, uniform 32-bit keys",
                     options);
  const auto roster = roster_from_env();
  BenchConfig cfg = base_config(options);
  cfg.workload = Workload::kUniform;
  cfg.keys = KeyConfig::uniform(32);

  for (const char* op : {"insert", "delete_min"}) {
    std::vector<std::string> columns;
    for (const auto* spec : roster) columns.push_back(spec->name);
    Table table(std::string("Latency [ns] ") + op + " — p50 / p99",
                "threads", columns);
    for (unsigned threads : options.thread_ladder) {
      cfg.threads = threads;
      std::vector<std::string> cells;
      for (const auto* spec : roster) {
        const LatencyResult result = spec->latency(cfg);
        const LatencyPercentiles& p =
            op[0] == 'i' ? result.insert : result.delete_min;
        char buf[64];
        std::snprintf(buf, sizeof(buf), "%.0f / %.0f", p.p50_ns, p.p99_ns);
        cells.emplace_back(buf);
      }
      table.add_row(std::to_string(threads), std::move(cells));
    }
    table.print();
  }
  return 0;
}
