// E3 — Figure 3 (and Figure 4g): uniform workload, uniform keys restricted
// to 8 bits.
//
// A key domain of 256 values floods every queue with duplicates. Paper
// result: throughput drops dramatically across the board; the medium
// k-LSM relaxations stop scaling entirely while klsm4096 still scales but
// only to ~20 MOps/s; the paper could not gather SprayList data here (its
// code crashed) — our implementation is stable, so the spray column has
// data where the paper has a gap.

#include "bench_common.hpp"

int main() {
  using namespace cpq::bench;
  const Options options = options_from_env();
  print_bench_header(
      "bench_fig3_uniform_8bit",
      "Fig. 3 / Fig. 4g (mars): uniform workload, uniform 8-bit keys",
      options);
  BenchConfig cfg = base_config(options);
  cfg.workload = Workload::kUniform;
  cfg.keys = KeyConfig::uniform(8);
  throughput_table("Fig. 3", cfg, options, roster_from_env());
  return 0;
}
