// A3 — ablation: DLSM-only vs SLSM-only vs composed k-LSM.
//
// The paper explains the k-LSM's environment sensitivity through its
// two-component structure (§G): "whenever the extremely scalable DLSM is
// highly utilized, throughput increases; and when the load shifts towards
// the SLSM, throughput drops". This ablation makes that explanation
// directly measurable by benchmarking each component standalone against the
// composition under the two extreme configurations:
//   * uniform/uniform32 — the DLSM-friendly case (deletes mostly hit
//     thread-local items);
//   * split/ascending  — the SLSM-bound case (deleting threads own no local
//     items, so everything funnels through the shared component).

#include <memory>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "queues/klsm/klsm.hpp"
#include "queues/klsm/standalone.hpp"

int main() {
  using namespace cpq::bench;
  using K = cpq::bench_key;
  using V = cpq::bench_value;

  const Options options = options_from_env();
  print_bench_header("bench_ablation_klsm_components",
                     "ablation: DLSM-only vs SLSM-only vs k-LSM (paper §G "
                     "load-shift explanation)",
                     options);

  const std::vector<std::string> columns = {"dlsm", "slsm256", "klsm256"};
  struct Scenario {
    const char* label;
    Workload workload;
    KeyConfig keys;
  };
  const Scenario scenarios[] = {
      {"A3 DLSM-friendly", Workload::kUniform, KeyConfig::uniform(32)},
      {"A3 SLSM-bound", Workload::kSplit, KeyConfig::ascending()},
  };
  for (const Scenario& scenario : scenarios) {
    BenchConfig cfg = base_config(options);
    cfg.workload = scenario.workload;
    cfg.keys = scenario.keys;
    Table table(std::string(scenario.label) + " — " +
                    workload_name(cfg.workload) + "/" + cfg.keys.name() +
                    " — throughput [MOps/s]",
                "threads", columns);
    for (unsigned threads : options.thread_ladder) {
      cfg.threads = threads;
      std::vector<std::string> cells;
      const auto dlsm = run_throughput(
          [](unsigned t, std::uint64_t seed) {
            return std::make_unique<cpq::DlsmQueue<K, V>>(t, seed);
          },
          cfg);
      cells.push_back(Table::format_mean_ci(dlsm.mops.mean, dlsm.mops.ci95));
      const auto slsm = run_throughput(
          [](unsigned t, std::uint64_t seed) {
            return std::make_unique<cpq::SlsmQueue<K, V>>(t, 256, seed);
          },
          cfg);
      cells.push_back(Table::format_mean_ci(slsm.mops.mean, slsm.mops.ci95));
      const auto klsm = run_throughput(
          [](unsigned t, std::uint64_t seed) {
            return std::make_unique<cpq::KLsmQueue<K, V>>(t, 256, seed);
          },
          cfg);
      cells.push_back(Table::format_mean_ci(klsm.mops.mean, klsm.mops.ci95));
      table.add_row(std::to_string(threads), std::move(cells));
    }
    table.print();
  }
  return 0;
}
