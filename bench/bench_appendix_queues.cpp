// E-extra — appendix-D queue comparison.
//
// The appendix discusses several further designs and makes quantitative
// claims this binary measures against our implementations:
//   * Hunt et al.: "easily outperformed by more modern designs";
//   * Shavit–Lotan vs Lindén: eager physical deletion costs up to 2x
//     (the Lindén paper's core claim, reproduced as linden vs slotan);
//   * CBPQ: "clearly outperforms the other queues in mixed workloads
//     (50% insertions, 50% deletions) and deletion workloads, and exhibits
//     similar behavior as the Lindén and Jonsson queue in insertion
//     workloads, where Mounds are dominant."
// Three operation mixes are measured accordingly: mixed (50% inserts),
// deletion-leaning (40% inserts — leaning rather than 10%, because a
// time-boxed run at 10% drains the prefill and then measures only cheap
// empty-queue polls; the *pure* deletion phase the CBPQ paper reports is
// the fixed-work delete phase of bench_sort_batch), and insertion-heavy
// (90% inserts).

#include <string>
#include <vector>

#include "bench_common.hpp"

int main() {
  using namespace cpq::bench;
  const Options options = options_from_env();
  print_bench_header("bench_appendix_queues",
                     "appendix D comparisons: hunt/slotan/mound/cbpq vs "
                     "linden/glock",
                     options);
  const auto roster =
      resolve_roster("glock,linden,slotan,sundell,hunt,mound,cbpq");

  struct Mix {
    const char* label;
    double insert_fraction;
  };
  const Mix mixes[] = {
      {"Appendix D — mixed (50% ins)", 0.5},
      {"Appendix D — deletion-leaning (40% ins)", 0.4},
      {"Appendix D — insertion-heavy (90% ins)", 0.9},
  };
  for (const Mix& mix : mixes) {
    BenchConfig cfg = base_config(options);
    cfg.workload = Workload::kUniform;
    cfg.keys = KeyConfig::uniform(32);
    cfg.insert_fraction = mix.insert_fraction;
    throughput_table(mix.label, cfg, options, roster);
  }
  return 0;
}
