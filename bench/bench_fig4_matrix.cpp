// E4 — Figure 4 (a–h): the full mars throughput matrix.
//
// Eight panels: {uniform, split} workloads × {uniform32, ascending,
// descending} keys, plus uniform workload × {uniform8, uniform16}. The
// same binary regenerates Figures 5–7 (saturn / ceres / pluto) — those
// machines differ only in core count and architecture, so run it there
// with CPQ_THREADS set to the paper's ladders (up to 48 / 256 / 244).

#include "bench_common.hpp"

int main() {
  using namespace cpq::bench;
  const Options options = options_from_env();
  print_bench_header("bench_fig4_matrix",
                     "Fig. 4a-h (mars), Figs. 5-7 (saturn/ceres/pluto via "
                     "CPQ_THREADS)",
                     options);
  const auto roster = roster_from_env();
  BenchConfig cfg = base_config(options);

  struct Panel {
    const char* label;
    Workload workload;
    KeyConfig keys;
  };
  const Panel panels[] = {
      {"Fig. 4a", Workload::kUniform, KeyConfig::uniform(32)},
      {"Fig. 4b", Workload::kUniform, KeyConfig::ascending()},
      {"Fig. 4c", Workload::kUniform, KeyConfig::descending()},
      {"Fig. 4d", Workload::kSplit, KeyConfig::uniform(32)},
      {"Fig. 4e", Workload::kSplit, KeyConfig::ascending()},
      {"Fig. 4f", Workload::kSplit, KeyConfig::descending()},
      {"Fig. 4g", Workload::kUniform, KeyConfig::uniform(8)},
      {"Fig. 4h", Workload::kUniform, KeyConfig::uniform(16)},
  };
  for (const Panel& panel : panels) {
    cfg.workload = panel.workload;
    cfg.keys = panel.keys;
    throughput_table(panel.label, cfg, options, roster);
  }
  return 0;
}
