// E7 — Figures 8/9: alternating workload (strict insert/delete alternation
// per thread) with uniform32, ascending, and descending keys.
//
// Although alternating performs the same 50/50 operation mix as the uniform
// workload, the paper observes significant differences: on mars the k-LSM
// gains both throughput (to almost 40 MOps/s) and scalability with uniform
// keys, and all k-LSM variants reach a new peak (~60 MOps/s) with
// descending keys. Figure 9 is the same benchmark on ceres/pluto (set
// CPQ_THREADS).

#include "bench_common.hpp"

int main() {
  using namespace cpq::bench;
  const Options options = options_from_env();
  print_bench_header("bench_fig8_alternating",
                     "Fig. 8a-c (mars), Fig. 8d-f / 9 (other machines via "
                     "CPQ_THREADS): alternating workload",
                     options);
  const auto roster = roster_from_env();
  BenchConfig cfg = base_config(options);
  cfg.workload = Workload::kAlternating;

  struct Panel {
    const char* label;
    KeyConfig keys;
  };
  const Panel panels[] = {
      {"Fig. 8a", KeyConfig::uniform(32)},
      {"Fig. 8b", KeyConfig::ascending()},
      {"Fig. 8c", KeyConfig::descending()},
  };
  for (const Panel& panel : panels) {
    cfg.keys = panel.keys;
    throughput_table(panel.label, cfg, options, roster);
  }
  return 0;
}
