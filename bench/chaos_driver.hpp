// --chaos=FILE driver shared by bench_service and cpq_bench_cli: load a
// declarative fault schedule (src/validation/chaos.hpp), run the chaos
// campaign against a PriorityService over a named roster queue, print the
// human-readable report, and emit the machine-readable records through the
// usual JSON sink (CPQ_JSON / --json).
//
// Exit codes (process-level contract, used by CI):
//   0  campaign ran and every assertion held
//   1  campaign ran but failed (conservation / rank bound / recovery)
//   2  usage error: unreadable schedule file, parse error, unknown queue
#pragma once

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>

#include "bench_framework/json_out.hpp"
#include "queues/globallock.hpp"
#include "queues/multiqueue.hpp"
#include "validation/chaos.hpp"
#include "validation/chaos_campaign.hpp"

namespace cpq::bench {

namespace detail {

inline std::string chaos_campaign_label(const std::string& path) {
  std::size_t slash = path.find_last_of("/\\");
  std::string stem =
      slash == std::string::npos ? path : path.substr(slash + 1);
  const std::size_t dot = stem.find_last_of('.');
  if (dot != std::string::npos && dot > 0) stem.resize(dot);
  return "chaos_" + stem;
}

inline void emit_chaos_json(const std::string& label,
                            const std::string& queue_name, unsigned threads,
                            const validation::ChaosCampaignResult& result) {
  JsonSink& sink = JsonSink::instance();
  if (!sink.enabled()) return;
  auto emit = [&](const std::string& metric, double mean, bool ok) {
    JsonRecord record;
    record.experiment = label;
    record.queue = queue_name;
    record.metric = metric;
    record.threads = threads;
    record.mean = mean;
    record.reps = 1;
    record.status = ok ? "ok" : "failed";
    sink.record(record);
  };
  emit("chaos_baseline_p99_ms", result.baseline_p99_ms, true);
  emit("chaos_recovery_threshold_ms", result.recovery_threshold_ms, true);
  emit("chaos_shed_total", static_cast<double>(result.shed), true);
  emit("chaos_reroutes", static_cast<double>(result.reroutes), true);
  emit("chaos_breaker_trips", static_cast<double>(result.breaker_trips),
       true);
  emit("chaos_conservation_ok", result.conservation_ok ? 1.0 : 0.0,
       result.conservation_ok);
  emit("chaos_rank_violations_outside",
       static_cast<double>(result.rank_violations_outside),
       result.rank_violations_outside == 0);
  for (const validation::ChaosScenarioOutcome& outcome : result.outcomes) {
    // Per-scenario recovery time; a scenario that never recovered emits
    // status "failed" with mean -1 so trajectory tooling can spot it.
    emit("chaos_recovery_ms:" + outcome.name, outcome.recovery_ms,
         outcome.recovery_ms >= 0.0);
    // Informational second opinion from the telemetry plane (first clean
    // SLO snapshot after the clear); only present when the run was sampled
    // with an --slo spec. Prefixed slo_ so bench_compare treats it as
    // informational rather than a gating metric.
    if (outcome.slo_recovery_ms >= 0.0) {
      emit("slo_recovery_ms:" + outcome.name, outcome.slo_recovery_ms, true);
    }
  }
}

}  // namespace detail

// Run the chaos campaign in `schedule_path` over `queue_name` shards
// ("glock" or "mq"). Returns a process exit code (see header comment).
inline int run_chaos_from_file(const std::string& schedule_path,
                               const std::string& queue_name,
                               std::uint64_t seed) {
  std::ifstream in(schedule_path);
  if (!in) {
    std::fprintf(stderr, "[chaos] cannot read schedule file '%s'\n",
                 schedule_path.c_str());
    return 2;
  }
  std::ostringstream text;
  text << in.rdbuf();

  validation::ChaosSchedule schedule;
  std::string error;
  if (!validation::parse_chaos_schedule(text.str(), schedule, error)) {
    std::fprintf(stderr, "[chaos] %s\n", error.c_str());
    return 2;
  }

  const unsigned threads = schedule.producers + schedule.consumers;
  std::printf("# chaos: campaign %s queue=%s scenarios=%zu duration=%.2fs\n",
              schedule_path.c_str(), queue_name.c_str(),
              schedule.scenarios.size(), schedule.duration_s);

  validation::ChaosCampaignResult result;
  if (queue_name == "glock") {
    result = validation::run_chaos_campaign(
        schedule, seed, [threads](unsigned) {
          return std::make_unique<GlobalLockQueue<std::uint64_t,
                                                  std::uint64_t>>(threads);
        });
  } else if (queue_name == "mq") {
    result = validation::run_chaos_campaign(
        schedule, seed, [threads, seed](unsigned shard) {
          return std::make_unique<MultiQueue<std::uint64_t, std::uint64_t>>(
              threads, 4, thread_seed(seed, shard));
        });
  } else {
    std::fprintf(stderr,
                 "[chaos] unknown queue '%s' (chaos roster: glock, mq)\n",
                 queue_name.c_str());
    return 2;
  }

  validation::print_chaos_result(stdout, result);
  detail::emit_chaos_json(detail::chaos_campaign_label(schedule_path),
                          queue_name, threads, result);
  if (!result.ok()) {
    std::fprintf(stderr, "[chaos] campaign FAILED (%s%s%s)\n",
                 result.conservation_ok ? "" : "conservation ",
                 result.rank_violations_outside == 0 ? "" : "rank-bound ",
                 result.recovered() ? "" : "recovery");
    return 1;
  }
  std::printf("# chaos: campaign OK\n");
  return 0;
}

}  // namespace cpq::bench
