// E-extra — batch "sorting" benchmark (Larkin, Sen & Tarjan style).
//
// The paper's §F notes that "choosing large batches would correspond to the
// sorting benchmark used in [Larkin-Sen-Tarjan]": insert N random items,
// then delete all N. For concurrent queues this splits into a pure-insert
// phase and a pure-delete phase over fixed work — the phase structure
// isolates the insert path (where the appendix says Mounds dominate) from
// the delete path (where the CBPQ's FAA tickets and Lindén's prefix
// batching shine). Item count = CPQ_PREFILL per phase.

#include <string>
#include <vector>

#include "bench_common.hpp"

int main() {
  using namespace cpq::bench;
  const Options options = options_from_env();
  print_bench_header("bench_sort_batch",
                     "Larkin-Sen-Tarjan-style sorting phases: pure-insert "
                     "then pure-delete (paper §F batch mode)",
                     options);
  const char* names = std::getenv("CPQ_QUEUES");
  const auto roster = resolve_roster(
      names && *names ? names : "glock,linden,slotan,mq,klsm256,mound,cbpq");

  BenchConfig cfg = base_config(options);
  cfg.keys = KeyConfig::uniform(32);

  std::vector<std::string> columns;
  for (const auto* spec : roster) columns.push_back(spec->name);
  Table ins("Sort batch — insert phase [MOps/s]", "threads", columns);
  Table del("Sort batch — delete phase [MOps/s]", "threads", columns);
  for (unsigned threads : options.thread_ladder) {
    cfg.threads = threads;
    std::vector<std::string> ins_cells;
    std::vector<std::string> del_cells;
    for (const auto* spec : roster) {
      const auto [insert_mops, delete_mops] = spec->sort_phases(cfg);
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.2f", insert_mops);
      ins_cells.emplace_back(buf);
      std::snprintf(buf, sizeof(buf), "%.2f", delete_mops);
      del_cells.emplace_back(buf);
    }
    ins.add_row(std::to_string(threads), std::move(ins_cells));
    del.add_row(std::to_string(threads), std::move(del_cells));
  }
  ins.print();
  del.print();
  return 0;
}
