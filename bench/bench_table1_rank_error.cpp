// E5 — Table 1 (and Table 2a): rank error, uniform workload, uniform
// 32-bit keys.
//
// The quality benchmark: every operation is logged with a timestamp, the
// logs are merged into a linear sequence, and an order-statistic replay
// determines the rank of every deleted item. Paper result: all queues
// return keys far closer to the minimum than their worst-case analyses
// allow (e.g. klsm128 averages rank ~32 at 2 threads against a kP+1 = 257
// bound); the MultiQueue's relaxation is comparable to klsm4096 and grows
// linearly with the thread count; strict queues are near zero.

#include "bench_common.hpp"

int main() {
  using namespace cpq::bench;
  const Options options = options_from_env();
  print_bench_header("bench_table1_rank_error",
                     "Table 1 / Table 2a (mars): rank error, uniform "
                     "workload, uniform 32-bit keys",
                     options);
  BenchConfig cfg = base_config(options);
  cfg.workload = Workload::kUniform;
  cfg.keys = KeyConfig::uniform(32);
  quality_table("Table 1", cfg, options, roster_from_env());
  return 0;
}
