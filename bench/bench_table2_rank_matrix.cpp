// E6 — Table 2 (a–h): the full rank-error matrix on mars (Tables 3–4 are
// the same benchmark on saturn/ceres; set CPQ_THREADS accordingly).
//
// Eight panels matching Figure 4's configurations. Note the paper's caveat,
// which this implementation shares by construction: the uniform-8-bit panel
// reports artificially inflated ranks because the replay is pessimistic for
// duplicate keys.

#include "bench_common.hpp"

int main() {
  using namespace cpq::bench;
  const Options options = options_from_env();
  print_bench_header("bench_table2_rank_matrix",
                     "Table 2a-h (mars), Tables 3-4 (saturn/ceres via "
                     "CPQ_THREADS)",
                     options);
  const auto roster = roster_from_env();
  BenchConfig cfg = base_config(options);

  struct Panel {
    const char* label;
    Workload workload;
    KeyConfig keys;
  };
  const Panel panels[] = {
      {"Table 2a", Workload::kUniform, KeyConfig::uniform(32)},
      {"Table 2b", Workload::kUniform, KeyConfig::ascending()},
      {"Table 2c", Workload::kUniform, KeyConfig::descending()},
      {"Table 2d", Workload::kSplit, KeyConfig::uniform(32)},
      {"Table 2e", Workload::kSplit, KeyConfig::ascending()},
      {"Table 2f", Workload::kSplit, KeyConfig::descending()},
      {"Table 2g", Workload::kUniform, KeyConfig::uniform(8)},
      {"Table 2h", Workload::kUniform, KeyConfig::uniform(16)},
  };
  for (const Panel& panel : panels) {
    cfg.workload = panel.workload;
    cfg.keys = panel.keys;
    quality_table(panel.label, cfg, options, roster);
  }
  return 0;
}
