// cpq_bench_cli — the parameterizable benchmark driver (paper §F wish list,
// in the spirit of Gramoli's Synchrobench).
//
// Every orthogonal parameter the paper enumerates is a flag:
//
//   --queues=glock,linden,…   roster (default: the paper's seven)
//   --workload=uniform|split|alternating|batch|pcsplit
//   --batch=N                 operation batch size (implies --workload=batch)
//   --keys=uniform32|uniform16|uniform8|ascending|descending|hold
//             |zipf:THETA[,BITS]|hotspot:OPS,KEYS[,BITS]|dijkstra:MIN,MAX
//   --key-dist=SPEC           alias for --keys (workload-subsystem spelling)
//   --producer-fraction=F     fraction of threads that insert (pcsplit)
//   --arrivals=closed|poisson:HZ|mmpp:HZ_ON,HZ_OFF,ON_MS,OFF_MS
//                             open-loop arrival pacing per worker thread
//                             (throughput mode; default closed loop)
//   --interleave              run all queues in one process, one repetition
//                             at a time in shuffled order, and report the
//                             per-queue layout_* spread (throughput mode)
//   --perturb-layout          randomize heap layout between repetitions and
//                             shuffle prefill insertion order
//   --insert-fraction=0.5     operation distribution (uniform workload)
//   --prefill=100000
//   --threads=1,2,4,8         thread ladder
//   --ms=60                   throughput window  (throughput mode)
//   --ops=20000               ops per thread     (quality/latency modes)
//   --reps=3
//   --seed=42
//   --mode=throughput|quality|latency|sort|service
//   --mq-c=N                  engineered-MultiQueue queues per thread
//                             (mq-buf/mq-sticky/mq-eng; 1..64, default 4;
//                             the paper's mq stays pinned at c=4)
//   --mq-sticky=N             sticky round length (1..4096, default 8)
//   --mq-buf=N                insertion/deletion buffer capacity
//                             (0..1024, default 16)
//   --arrival-hz=N            offered load per producer (service mode;
//                             0 = closed loop)
//   --checked                 wrap service-mode queues in CheckedQueue
//   --json[=path]             append JSON-lines records (default stdout)
//   --metrics                 report metrics-registry counters, live
//                             rank-error estimates, and hardware perf
//                             counters per cell (latency mode also prints
//                             histograms)
//   --trace-out=FILE          write the sampled op-trace rings as Chrome
//                             trace-event JSON (chrome://tracing, Perfetto)
//                             at run end; with --telemetry-hz the telemetry
//                             snapshots ride along as ph:"C" counter tracks
//   --telemetry-hz=HZ         sample live metrics at HZ on a background
//                             thread (default 0 = off, zero overhead)
//   --timeseries-out=FILE     write the telemetry samples as JSON Lines
//                             (schema v4; needs --telemetry-hz)
//   --prom-out=FILE           Prometheus-style text dump of final totals
//                             (needs --telemetry-hz)
//   --slo=SPEC                per-sample objectives with burn-rate breach
//                             tracking, e.g. p99_sojourn_us<500,shed_pct<1
//                             (grammar: src/obs/slo.hpp; needs
//                             --telemetry-hz)
//   --dump-traces             dump the op-trace rings to stderr at normal
//                             run end (the watchdog already dumps on stall)
//   --force-stall             deliberately trip the progress watchdog and
//                             exit 86 (exercises the stall-dump path)
//   --chaos=FILE              run the declarative chaos campaign in FILE
//                             against a PriorityService (--queues picks the
//                             shard queue: glock or mq, default mq) and exit
//                             0 ok / 1 assertions failed / 2 usage — see
//                             src/validation/chaos.hpp for the file format
//   --list                    print queues and benchmark modes, then exit
//
// Defaults reproduce a quick Fig.-1-style run. CPQ_* environment variables
// seed the defaults, flags override. Unknown flags and malformed values
// exit with status 2 before any measurement starts. A benchmark cell whose
// repetitions all failed renders as "failed" and makes the process exit 1.

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "bench_framework/latency.hpp"
#include "chaos_driver.hpp"
#include "obs/chrome_trace.hpp"
#include "telemetry_cli.hpp"
#include "workloads/spec.hpp"

namespace {

using namespace cpq::bench;

bool parse_flag(const char* arg, const char* name, std::string& value) {
  const std::size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) == 0 && arg[len] == '=') {
    value.assign(arg + len + 1);
    return true;
  }
  return false;
}

// Strict numeric parsing: the whole value must be consumed, so typos like
// "--reps=3x" or "--prefill=" fail loudly instead of silently becoming 3/0.
bool parse_u64(const std::string& text, std::uint64_t& out) {
  if (text.empty()) return false;
  char* end = nullptr;
  errno = 0;
  const std::uint64_t value = std::strtoull(text.c_str(), &end, 10);
  if (errno != 0 || end != text.c_str() + text.size()) return false;
  if (text[0] == '-') return false;  // strtoull silently wraps negatives
  out = value;
  return true;
}

bool parse_double(const std::string& text, double& out) {
  if (text.empty()) return false;
  char* end = nullptr;
  errno = 0;
  const double value = std::strtod(text.c_str(), &end);
  if (errno != 0 || end != text.c_str() + text.size()) return false;
  out = value;
  return true;
}

int bad_value(const char* flag, const std::string& value, const char* want) {
  std::fprintf(stderr, "cpq_bench_cli: invalid value for %s: '%s' (%s)\n",
               flag, value.c_str(), want);
  return 2;
}

KeyConfig parse_keys(const std::string& text, bool& ok) {
  // One grammar for --keys and --key-dist, shared with bench_skew and the
  // tests: src/workloads/spec.hpp is the single source of truth for which
  // specs (and which parameter ranges) the harness accepts.
  const auto parsed = cpq::workloads::parse_key_spec(text);
  ok = parsed.has_value();
  return parsed.value_or(KeyConfig::uniform(32));
}

Workload parse_workload(const std::string& text, bool& ok) {
  ok = true;
  if (text == "uniform") return Workload::kUniform;
  if (text == "split") return Workload::kSplit;
  if (text == "alternating") return Workload::kAlternating;
  if (text == "batch") return Workload::kBatch;
  if (text == "pcsplit") return Workload::kPcSplit;
  ok = false;
  return Workload::kUniform;
}

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--queues=a,b] [--workload=W] [--keys=K]\n"
               "          [--key-dist=K] [--producer-fraction=F]\n"
               "          [--arrivals=closed|poisson:HZ|mmpp:...] "
               "[--interleave] [--perturb-layout]\n"
               "          [--insert-fraction=F] [--prefill=N] "
               "[--threads=1,2,4]\n"
               "          [--ms=N] [--ops=N] [--reps=N] [--seed=N]\n"
               "          [--mode=throughput|quality|latency|sort|service]\n"
               "          [--mq-c=N] [--mq-sticky=N] [--mq-buf=N]\n"
               "          [--arrival-hz=N] [--checked] [--json[=path]] "
               "[--metrics]\n"
               "          [--trace-out=FILE] [--dump-traces] "
               "[--force-stall] [--chaos=FILE] [--list]\n"
               "          [--telemetry-hz=HZ] [--timeseries-out=FILE]\n"
               "          [--prom-out=FILE] [--slo=SPEC]\n",
               argv0);
  return 2;
}

int list_registry() {
  std::printf("queues:\n");
  for (const QueueSpec& spec : queue_registry()) {
    std::printf("  %-12s %s%s\n", spec.name.c_str(), spec.description.c_str(),
                spec.in_paper ? "  [paper roster]" : "");
  }
  std::printf("benchmarks (--mode=...):\n");
  for (const BenchModeSpec& mode : bench_mode_registry()) {
    std::printf("  %-12s %s\n", mode.name.c_str(), mode.description.c_str());
  }
  const MqTuning& tuning = mq_tuning();
  std::printf("engineered MultiQueue knobs (mq-buf/mq-sticky/mq-eng):\n");
  std::printf("  %-14s queues per thread (1..64, default %u)\n", "--mq-c=N",
              tuning.c);
  std::printf("  %-14s sticky round length (1..4096, default %u)\n",
              "--mq-sticky=N", tuning.stickiness);
  std::printf(
      "  %-14s insertion/deletion buffer capacity (0..1024, default %u)\n",
      "--mq-buf=N", tuning.buffer);
  return 0;
}

// --force-stall: deliberately trip the progress watchdog so the whole
// stall-dump path (progress snapshot + metrics counters + per-thread trace
// rings) is exercised end to end against the real binary. Two fake workers
// tick a handful of operations and record trace events, then freeze; the
// watchdog fires after CPQ_WATCHDOG_S (default 0.5 s here) and _Exit()s
// with the watchdog exit code (86). Calls the obs:: functions directly —
// not the CPQ_COUNT/CPQ_TRACE_OP macros — so the dump has content even in
// builds with the hot-path hooks compiled out (-DCPQ_METRICS=OFF).
int force_stall() {
  cpq::obs::MetricsRegistry::global().reset();
  std::vector<cpq::validation::WorkerProgress> workers(2);
  cpq::obs::count(cpq::obs::Counter::kCasRetry, 3);
  cpq::obs::count(cpq::obs::Counter::kBackoffPause, 7);
  for (unsigned tid = 0; tid < 2; ++tid) {
    for (std::uint64_t op = 1; op <= 40; ++op) {
      cpq::obs::trace(cpq::obs::TraceOp::kInsert, 1000 * (tid + 1) + op);
      workers[tid].tick(op, cpq::validation::LastOp::kInsert);
    }
  }
  const double deadline = cpq::validation::watchdog_deadline(-1.0, 0.5);
  if (deadline <= 0.0) {
    std::fprintf(stderr,
                 "cpq_bench_cli: --force-stall needs CPQ_WATCHDOG_S > 0\n");
    return 2;
  }
  cpq::validation::Watchdog dog("force-stall", workers.data(), workers.size(),
                                deadline, metrics_diagnostics());
  // Never tick again; the watchdog thread dumps and exits the process.
  std::this_thread::sleep_for(
      std::chrono::duration<double>(deadline * 20.0 + 10.0));
  std::fprintf(stderr,
               "cpq_bench_cli: --force-stall: watchdog never fired\n");
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  Options options = options_from_env();
  std::string mode = "throughput";
  std::string queues;
  std::string workload_text = "uniform";
  std::string keys_text = "uniform32";
  double insert_fraction = 0.5;
  std::uint64_t batch_size = 1;
  double producer_fraction = 0.5;
  double arrival_hz = 0.0;
  cpq::workloads::ArrivalConfig arrivals;
  bool interleave = false;
  bool perturb_layout = false;
  bool checked = false;
  bool dump_traces = false;
  std::string trace_out;
  std::string chaos_file;
  TelemetryCliOptions telemetry;

  for (int i = 1; i < argc; ++i) {
    std::string value;
    const int telemetry_parse =
        parse_telemetry_flag(argv[i], "cpq_bench_cli", telemetry);
    if (telemetry_parse == 2) return 2;
    if (telemetry_parse == 1) continue;
    if (std::strcmp(argv[i], "--list") == 0) {
      return list_registry();
    }
    if (std::strcmp(argv[i], "--checked") == 0) {
      checked = true;
      continue;
    }
    if (std::strcmp(argv[i], "--interleave") == 0) {
      interleave = true;
      continue;
    }
    if (std::strcmp(argv[i], "--perturb-layout") == 0) {
      perturb_layout = true;
      continue;
    }
    if (std::strcmp(argv[i], "--metrics") == 0) {
      metrics_report_enabled() = true;
      continue;
    }
    if (std::strcmp(argv[i], "--dump-traces") == 0) {
      dump_traces = true;
      continue;
    }
    if (std::strcmp(argv[i], "--force-stall") == 0) {
      return force_stall();
    }
    if (std::strcmp(argv[i], "--json") == 0) {
      JsonSink::instance().set_path("-");
      continue;
    }
    if (parse_flag(argv[i], "--json", value)) {
      if (value.empty()) {
        return bad_value("--json", value, "want a path or '-'");
      }
      JsonSink::instance().set_path(value);
    } else if (parse_flag(argv[i], "--trace-out", value)) {
      if (value.empty()) {
        return bad_value("--trace-out", value, "want a file path");
      }
      trace_out = value;
    } else if (parse_flag(argv[i], "--chaos", value)) {
      if (value.empty()) {
        return bad_value("--chaos", value, "want a schedule file path");
      }
      chaos_file = value;
    } else if (parse_flag(argv[i], "--arrival-hz", value)) {
      if (!parse_double(value, arrival_hz) || arrival_hz < 0.0) {
        return bad_value("--arrival-hz", value, "want a rate >= 0");
      }
    } else if (parse_flag(argv[i], "--queues", value)) {
      queues = value;
    } else if (parse_flag(argv[i], "--workload", value)) {
      workload_text = value;
    } else if (parse_flag(argv[i], "--keys", value) ||
               parse_flag(argv[i], "--key-dist", value)) {
      keys_text = value;
    } else if (parse_flag(argv[i], "--arrivals", value)) {
      const auto parsed = cpq::workloads::parse_arrival_spec(value);
      if (!parsed) {
        return bad_value("--arrivals", value,
                         "want closed, poisson:HZ or "
                         "mmpp:HZ_ON,HZ_OFF,ON_MS,OFF_MS");
      }
      arrivals = *parsed;
    } else if (parse_flag(argv[i], "--producer-fraction", value)) {
      if (!parse_double(value, producer_fraction) ||
          producer_fraction <= 0.0 || producer_fraction > 1.0) {
        return bad_value("--producer-fraction", value, "want 0.0 < F <= 1.0");
      }
    } else if (parse_flag(argv[i], "--insert-fraction", value)) {
      if (!parse_double(value, insert_fraction) || insert_fraction < 0.0 ||
          insert_fraction > 1.0) {
        return bad_value("--insert-fraction", value, "want 0.0 .. 1.0");
      }
    } else if (parse_flag(argv[i], "--batch", value)) {
      if (!parse_u64(value, batch_size) || batch_size < 1) {
        return bad_value("--batch", value, "want an integer >= 1");
      }
      workload_text = "batch";
    } else if (parse_flag(argv[i], "--prefill", value)) {
      std::uint64_t prefill = 0;
      if (!parse_u64(value, prefill)) {
        return bad_value("--prefill", value, "want an integer >= 0");
      }
      options.prefill = static_cast<std::size_t>(prefill);
    } else if (parse_flag(argv[i], "--threads", value)) {
      // Parse the ladder directly: going through CPQ_THREADS +
      // options_from_env() here used to rebuild *all* options from the
      // environment, silently discarding any --prefill/--ms/--reps/--seed
      // given earlier on the command line.
      const std::vector<unsigned> ladder = parse_thread_ladder(value.c_str());
      if (ladder.empty()) {
        return bad_value("--threads", value,
                         "want a comma-separated list of counts >= 1");
      }
      options.thread_ladder = ladder;
    } else if (parse_flag(argv[i], "--ms", value)) {
      double ms = 0.0;
      if (!parse_double(value, ms) || ms <= 0.0) {
        return bad_value("--ms", value, "want a duration > 0");
      }
      options.duration_s = ms / 1000.0;
    } else if (parse_flag(argv[i], "--ops", value)) {
      if (!parse_u64(value, options.quality_ops) || options.quality_ops < 1) {
        return bad_value("--ops", value, "want an integer >= 1");
      }
    } else if (parse_flag(argv[i], "--reps", value)) {
      std::uint64_t reps = 0;
      if (!parse_u64(value, reps) || reps < 1 || reps > 1'000'000) {
        return bad_value("--reps", value, "want an integer >= 1");
      }
      options.repetitions = static_cast<unsigned>(reps);
    } else if (parse_flag(argv[i], "--seed", value)) {
      if (!parse_u64(value, options.seed)) {
        return bad_value("--seed", value, "want an unsigned integer");
      }
    } else if (parse_flag(argv[i], "--mq-c", value)) {
      std::uint64_t c = 0;
      if (!parse_u64(value, c) || c < 1 || c > 64) {
        return bad_value("--mq-c", value, "want an integer 1 .. 64");
      }
      mq_tuning().c = static_cast<unsigned>(c);
    } else if (parse_flag(argv[i], "--mq-sticky", value)) {
      std::uint64_t stickiness = 0;
      if (!parse_u64(value, stickiness) || stickiness < 1 ||
          stickiness > 4096) {
        return bad_value("--mq-sticky", value, "want an integer 1 .. 4096");
      }
      mq_tuning().stickiness = static_cast<unsigned>(stickiness);
    } else if (parse_flag(argv[i], "--mq-buf", value)) {
      std::uint64_t buffer = 0;
      if (!parse_u64(value, buffer) || buffer > 1024) {
        return bad_value("--mq-buf", value, "want an integer 0 .. 1024");
      }
      mq_tuning().buffer = static_cast<unsigned>(buffer);
    } else if (parse_flag(argv[i], "--mode", value)) {
      if (find_bench_mode(value) == nullptr) {
        return bad_value("--mode", value, "see --list for benchmark modes");
      }
      mode = value;
    } else {
      return usage(argv[0]);
    }
  }

  if (const int rc = validate_telemetry_options(telemetry, "cpq_bench_cli")) {
    return rc;
  }

  bool ok = true;
  BenchConfig cfg = base_config(options);
  cfg.workload = parse_workload(workload_text, ok);
  if (!ok) return usage(argv[0]);
  cfg.keys = parse_keys(keys_text, ok);
  if (!ok) {
    return bad_value("--keys/--key-dist", keys_text,
                     "want uniform32|16|8, ascending, descending, hold, "
                     "zipf:THETA[,BITS], hotspot:OPS,KEYS[,BITS] or "
                     "dijkstra:MIN,MAX");
  }
  cfg.insert_fraction = insert_fraction;
  cfg.batch_size = batch_size;
  cfg.producer_fraction = producer_fraction;
  cfg.arrivals = arrivals;
  cfg.perturb_layout = perturb_layout;
  cfg.shuffle_prefill = perturb_layout;

  const auto roster = resolve_roster(queues);
  if (roster.empty()) {
    std::fprintf(stderr, "no known queue in --queues=%s (try --list)\n",
                 queues.c_str());
    return 2;
  }

  if (!chaos_file.empty()) {
    // Chaos mode replaces the sweep entirely. The shard queue comes from
    // --queues when it names a chaos-capable engine; mq otherwise. The
    // telemetry plane brackets the campaign so scenarios gain the measured
    // slo_recovery_ms second opinion.
    std::string chaos_queue = "mq";
    if (!roster.empty() &&
        (roster.front()->name == "glock" || roster.front()->name == "mq")) {
      chaos_queue = roster.front()->name;
    }
    telemetry_begin(telemetry);
    const int chaos_rc =
        run_chaos_from_file(chaos_file, chaos_queue, options.seed);
    const int telemetry_rc =
        telemetry_finish(telemetry, "chaos", "cpq_bench_cli");
    return chaos_rc != 0 ? chaos_rc : telemetry_rc;
  }

  print_bench_header("cpq_bench_cli", "parameterizable benchmark (§F)",
                     options);
  telemetry_begin(telemetry);

  // Failed cells set rc but do not return early: the trace export below
  // still runs, so a failing sweep leaves its diagnostics behind.
  int rc = 0;
  if (interleave && mode != "throughput") {
    std::fprintf(stderr,
                 "cpq_bench_cli: --interleave only applies to "
                 "--mode=throughput\n");
    return 2;
  }
  if (mode == "throughput") {
    if (interleave) {
      if (!interleaved_throughput_table("custom", cfg, options, roster)) {
        rc = 1;
      }
    } else if (!throughput_table("custom", cfg, options, roster)) {
      rc = 1;
    }
  } else if (mode == "quality") {
    if (!quality_table("custom", cfg, options, roster)) rc = 1;
  } else if (mode == "latency") {
    std::vector<std::string> columns;
    for (const auto* spec : roster) columns.push_back(spec->name);
    Table table("custom — delete_min latency [ns] p50 / p99", "threads",
                columns);
    bool all_ok = true;
    for (unsigned threads : options.thread_ladder) {
      cfg.threads = threads;
      std::vector<std::string> cells;
      unsigned ok_cells = 0;
      for (const auto* spec : roster) {
        metrics_cell_begin(spec, threads);
        const LatencyResult result = spec->latency(cfg);
        const bool failed = result.failed();
        if (failed) {
          all_ok = false;
          cells.emplace_back(kFailedCell);
        } else {
          ++ok_cells;
          char buf[64];
          std::snprintf(buf, sizeof(buf), "%.0f / %.0f",
                        result.delete_min.p50_ns, result.delete_min.p99_ns);
          cells.emplace_back(buf);
        }
        const char* status = failed ? "failed" : "ok";
        JsonSink::instance().record({"latency", spec->name,
                                     "latency_delete_p50_ns", threads,
                                     result.delete_min.p50_ns, 0.0,
                                     result.completed_reps, status});
        JsonSink::instance().record({"latency", spec->name,
                                     "latency_delete_p99_ns", threads,
                                     result.delete_min.p99_ns, 0.0,
                                     result.completed_reps, status});
        JsonSink::instance().record({"latency", spec->name,
                                     "latency_insert_p99_ns", threads,
                                     result.insert.p99_ns, 0.0,
                                     result.completed_reps, status});
        metrics_cell_report("latency", spec->name, threads);
        if (metrics_report_enabled() && !failed) {
          result.insert_ns.print(
              stdout, (spec->name + " insert latency [ns]").c_str());
          result.delete_ns.print(
              stdout, (spec->name + " delete_min latency [ns]").c_str());
        }
      }
      if (ok_cells == 0) {
        std::fprintf(
            stderr,
            "[cpq] latency: dropping thread row %u (every cell failed)\n",
            threads);
        continue;
      }
      table.add_row(std::to_string(threads), std::move(cells));
    }
    table.print();
    if (!all_ok) rc = 1;
  } else if (mode == "sort") {
    std::vector<std::string> columns;
    for (const auto* spec : roster) columns.push_back(spec->name);
    Table table("custom — sort phases insert/delete [MOps/s]", "threads",
                columns);
    for (unsigned threads : options.thread_ladder) {
      cfg.threads = threads;
      std::vector<std::string> cells;
      for (const auto* spec : roster) {
        const auto [ins, del] = spec->sort_phases(cfg);
        char buf[64];
        std::snprintf(buf, sizeof(buf), "%.2f / %.2f", ins, del);
        cells.emplace_back(buf);
      }
      table.add_row(std::to_string(threads), std::move(cells));
    }
    table.print();
  } else if (mode == "service") {
    cpq::service::ServiceBenchConfig scfg;
    scfg.duration_s = options.duration_s;
    scfg.arrival_hz = arrival_hz;
    scfg.arrivals = arrivals;
    scfg.prefill = options.prefill;
    scfg.keys = cfg.keys;
    scfg.seed = options.seed;
    scfg.checked = checked;
    if (!service_table("service", scfg, options, roster)) rc = 1;
  } else {
    return usage(argv[0]);
  }

  // End-of-run observability: stop the sampler and flush its artifacts
  // first, then export the trace — the retained telemetry ring feeds the
  // Perfetto counter tracks alongside the op events.
  if (telemetry_finish(telemetry, mode, "cpq_bench_cli") != 0 && rc == 0) {
    rc = 1;
  }
  if (dump_traces) {
    cpq::obs::MetricsRegistry::global().dump(stderr);
  }
  if (!trace_out.empty()) {
    if (std::FILE* f = std::fopen(trace_out.c_str(), "w")) {
      const cpq::obs::TelemetryPlane* plane =
          telemetry.enabled() ? &cpq::obs::TelemetryPlane::global() : nullptr;
      const std::size_t events = cpq::obs::write_chrome_trace(
          f, cpq::obs::MetricsRegistry::global(), plane);
      std::fclose(f);
      std::printf("# trace: wrote %zu sampled op events to %s\n", events,
                  trace_out.c_str());
    } else {
      std::fprintf(stderr, "cpq_bench_cli: cannot write --trace-out=%s\n",
                   trace_out.c_str());
      if (rc == 0) rc = 1;
    }
  }
  return rc;
}
