// Shared CLI wiring for the telemetry plane (obs/timeseries.hpp). Both
// bench drivers (cpq_bench_cli, bench_service) accept the same flags:
//
//   --telemetry-hz=HZ      background sampling rate (default 0 = off; the
//                          off path costs one relaxed load per hook and no
//                          thread — bench_compare strict runs stay clean)
//   --timeseries-out=FILE  write the sampled records as JSON Lines
//                          (schema_version=4, "kind":"telemetry"; validate
//                          with tools/check_timeseries.py)
//   --prom-out=FILE        write a Prometheus-style text dump of the final
//                          totals at exit
//   --slo=SPEC             declarative objectives evaluated per sample
//                          (grammar in obs/slo.hpp, e.g.
//                          "p99_sojourn_us<500,shed_pct<1")
//
// The dependent flags are rejected (exit 2) without --telemetry-hz > 0:
// silently accepting them would produce empty artifacts that look like
// measurements. Summary lines and ts_*/slo_* JSON records ride the normal
// sinks; bench_compare.py treats both prefixes as informational.
#pragma once

#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_framework/json_out.hpp"
#include "obs/slo.hpp"
#include "obs/timeseries.hpp"

namespace cpq::bench {

struct TelemetryCliOptions {
  double hz = 0.0;  // 0 = plane never starts
  std::string timeseries_out;
  std::string prom_out;
  std::string slo_spec;
  std::vector<obs::SloObjective> objectives;

  bool enabled() const noexcept { return hz > 0.0; }
};

namespace telemetry_cli_detail {

inline bool parse_value(const char* arg, const char* name,
                        std::string& value) {
  const std::size_t len = std::char_traits<char>::length(name);
  if (std::strncmp(arg, name, len) == 0 && arg[len] == '=') {
    value.assign(arg + len + 1);
    return true;
  }
  return false;
}

}  // namespace telemetry_cli_detail

// Try to consume `arg` as a telemetry flag. Returns 0 when it is not one
// (the caller continues its own parsing), 1 when parsed into `opts`, and 2
// when it is a telemetry flag with a malformed value (diagnostic printed;
// the caller should exit 2 without measuring anything).
inline int parse_telemetry_flag(const char* arg, const char* prog,
                                TelemetryCliOptions& opts) {
  using telemetry_cli_detail::parse_value;
  std::string value;
  if (parse_value(arg, "--telemetry-hz", value)) {
    char* end = nullptr;
    errno = 0;
    const double hz =
        value.empty() ? -1.0 : std::strtod(value.c_str(), &end);
    if (value.empty() || errno != 0 ||
        end != value.c_str() + value.size() || !(hz >= 0.0) ||
        hz > 10000.0) {
      std::fprintf(stderr,
                   "%s: invalid value for --telemetry-hz: '%s' "
                   "(want a rate 0 .. 10000)\n",
                   prog, value.c_str());
      return 2;
    }
    opts.hz = hz;
    return 1;
  }
  if (parse_value(arg, "--timeseries-out", value)) {
    if (value.empty()) {
      std::fprintf(stderr,
                   "%s: invalid value for --timeseries-out: '' "
                   "(want a file path)\n",
                   prog);
      return 2;
    }
    opts.timeseries_out = value;
    return 1;
  }
  if (parse_value(arg, "--prom-out", value)) {
    if (value.empty()) {
      std::fprintf(stderr,
                   "%s: invalid value for --prom-out: '' "
                   "(want a file path)\n",
                   prog);
      return 2;
    }
    opts.prom_out = value;
    return 1;
  }
  if (parse_value(arg, "--slo", value)) {
    const auto parsed = obs::parse_slo_spec(value);
    if (!parsed) {
      std::fprintf(stderr,
                   "%s: invalid value for --slo: '%s' (want "
                   "metric<num[,metric>num...]; metrics: ",
                   prog, value.c_str());
      for (const char* name : obs::kSloMetricNames) {
        std::fprintf(stderr, "%s ", name);
      }
      std::fprintf(stderr, ")\n");
      return 2;
    }
    opts.slo_spec = value;
    opts.objectives = *parsed;
    return 1;
  }
  return 0;
}

// Cross-flag rule, checked after the whole argv is parsed: the export and
// SLO flags have no effect without sampling, so requiring --telemetry-hz
// makes the mistake loud instead of producing empty artifacts.
inline int validate_telemetry_options(const TelemetryCliOptions& opts,
                                      const char* prog) {
  if (opts.enabled()) return 0;
  const char* orphan = nullptr;
  if (!opts.timeseries_out.empty()) orphan = "--timeseries-out";
  if (!opts.prom_out.empty()) orphan = "--prom-out";
  if (!opts.slo_spec.empty()) orphan = "--slo";
  if (orphan != nullptr) {
    std::fprintf(stderr, "%s: %s requires --telemetry-hz > 0\n", prog,
                 orphan);
    return 2;
  }
  return 0;
}

// Start the plane for a sweep. No-op when sampling is off.
inline void telemetry_begin(const TelemetryCliOptions& opts) {
  if (!opts.enabled()) return;
  obs::TelemetryPlane& plane = obs::TelemetryPlane::global();
  plane.reset();
  if (!opts.objectives.empty()) plane.set_slo(opts.objectives);
  plane.start(opts.hz);
}

// Stop the plane, print the "# telemetry" summary (complete lines before
// any JSON records — the sink may share stdout), emit ts_*/slo_* records,
// and write the requested artifacts. Returns 0, or 1 when an output file
// could not be written (the run's measurements still stand).
inline int telemetry_finish(const TelemetryCliOptions& opts,
                            const std::string& experiment, const char* prog) {
  if (!opts.enabled()) return 0;
  obs::TelemetryPlane& plane = obs::TelemetryPlane::global();
  plane.stop();
  int rc = 0;
  const std::uint64_t samples = plane.sample_count();
  const std::uint64_t dropped = plane.dropped();
  std::printf("# telemetry: %llu samples @ %g Hz (%llu overwritten)\n",
              static_cast<unsigned long long>(samples), opts.hz,
              static_cast<unsigned long long>(dropped));
  if (plane.slo_configured()) {
    plane.with_slo(
        [](const obs::SloTracker& slo) { slo.dump(stdout); });
  }

  const auto emit = [&](const std::string& metric, double mean) {
    JsonSink::instance().record(
        {experiment, "telemetry", metric, 0, mean, 0.0, 1});
  };
  emit("ts_samples", static_cast<double>(samples));
  emit("ts_dropped", static_cast<double>(dropped));
  if (plane.slo_configured()) {
    plane.with_slo([&](const obs::SloTracker& slo) {
      for (std::size_t i = 0; i < slo.size(); ++i) {
        const obs::SloTracker::ObjectiveState& st = slo.state(i);
        const std::string spec = st.objective.to_string();
        emit("slo_samples:" + spec, static_cast<double>(st.samples));
        emit("slo_bad:" + spec, static_cast<double>(st.bad));
        emit("slo_episodes:" + spec, static_cast<double>(st.episodes));
        emit("slo_breach_ms:" + spec,
             static_cast<double>(slo.breach_ns(i, st.last_t_ns)) / 1e6);
      }
    });
  }

  if (!opts.timeseries_out.empty()) {
    if (std::FILE* f = std::fopen(opts.timeseries_out.c_str(), "w")) {
      const std::size_t lines = plane.write_jsonl(f);
      std::fclose(f);
      std::printf("# telemetry: wrote %zu time-series records to %s\n",
                  lines, opts.timeseries_out.c_str());
    } else {
      std::fprintf(stderr, "%s: cannot write --timeseries-out=%s\n", prog,
                   opts.timeseries_out.c_str());
      rc = 1;
    }
  }
  if (!opts.prom_out.empty()) {
    if (std::FILE* f = std::fopen(opts.prom_out.c_str(), "w")) {
      plane.write_prometheus(f);
      std::fclose(f);
      std::printf("# telemetry: wrote Prometheus dump to %s\n",
                  opts.prom_out.c_str());
    } else {
      std::fprintf(stderr, "%s: cannot write --prom-out=%s\n", prog,
                   opts.prom_out.c_str());
      rc = 1;
    }
  }
  return rc;
}

}  // namespace cpq::bench
