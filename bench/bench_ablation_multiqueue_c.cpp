// A2 — ablation: MultiQueue tuning parameter c (number of sequential
// queues per thread) and backing sequential queue (binary vs pairing heap).
//
// The paper fixes c = 4 ("with tuning parameter c ... set to 4 in our
// benchmarks"). This sweep shows the trade-off that motivates that choice:
// small c increases lock contention (failed try_locks and hot queues),
// large c spreads items so thin that delete_min's two-choice sampling
// returns keys of higher rank and per-queue cache locality degrades.

#include <memory>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "queues/multiqueue.hpp"
#include "seq/pairing_heap.hpp"

int main() {
  using namespace cpq::bench;
  using K = cpq::bench_key;
  using V = cpq::bench_value;
  using BinaryMq = cpq::MultiQueue<K, V>;
  using PairingMq =
      cpq::MultiQueue<K, V, cpq::seq::PairingHeap<K, V>>;

  const Options options = options_from_env();
  print_bench_header("bench_ablation_multiqueue_c",
                     "ablation: MultiQueue c sweep + backing-heap choice "
                     "(paper fixes c=4, std::priority_queue)",
                     options);
  BenchConfig cfg = base_config(options);
  cfg.workload = Workload::kUniform;
  cfg.keys = KeyConfig::uniform(32);

  const std::vector<unsigned> cs = {1, 2, 4, 8};
  std::vector<std::string> columns;
  for (unsigned c : cs) columns.push_back("mq-c" + std::to_string(c));
  columns.push_back("mq-c4-pairing");

  Table tput("Ablation A2 — throughput [MOps/s], uniform/uniform32",
             "threads", columns);
  Table rank("Ablation A2 — rank error mean (σ), uniform/uniform32",
             "threads", columns);
  for (unsigned threads : options.thread_ladder) {
    cfg.threads = threads;
    std::vector<std::string> tput_cells;
    std::vector<std::string> rank_cells;
    // Each cell also lands in the CPQ_JSON sink so the ablation grid is
    // machine-comparable like every other bench.
    auto run_cell = [&](const std::string& column, auto factory) {
      const ThroughputResult tr = run_throughput(factory, cfg);
      tput_cells.push_back(Table::format_mean_ci(tr.mops.mean, tr.mops.ci95));
      JsonSink::instance().record(
          {"ablation-mq-c", column, "throughput_mops", threads, tr.mops.mean,
           tr.mops.ci95, static_cast<unsigned>(tr.per_rep.size())});
      const QualityResult qr = run_quality(factory, cfg);
      rank_cells.push_back(
          Table::format_mean_std(qr.rank_error.mean, qr.rank_error.stddev));
      JsonSink::instance().record({"ablation-mq-c", column, "rank_error_mean",
                                   threads, qr.rank_error.mean,
                                   qr.rank_error.ci95, qr.completed_reps});
    };
    for (unsigned c : cs) {
      run_cell("mq-c" + std::to_string(c),
               [c](unsigned t, std::uint64_t seed) {
                 return std::make_unique<BinaryMq>(t, c, seed);
               });
    }
    run_cell("mq-c4-pairing", [](unsigned t, std::uint64_t seed) {
      return std::make_unique<PairingMq>(t, 4, seed);
    });

    tput.add_row(std::to_string(threads), std::move(tput_cells));
    rank.add_row(std::to_string(threads), std::move(rank_cells));
  }
  tput.print();
  rank.print();
  return 0;
}
