// C1 — component microbenchmarks (google-benchmark).
//
// Isolates the building blocks that the full-system benchmarks compose:
// sequential queues (the MultiQueue's and GlobalLock's engines), the LSM
// block merge (the k-LSM's insert amortization), the order-statistic replay
// engine (quality-benchmark cost), RNG and lock primitives, EBR overhead,
// and single-threaded operation cost of every concurrent queue (the y-axis
// intercepts of the paper's figures).

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <vector>

#include "bench_framework/keygen.hpp"
#include "mm/epoch.hpp"
#include "mm/hazard.hpp"
#include "platform/rng.hpp"
#include "platform/spinlock.hpp"
#include "queues/flat_combining.hpp"
#include "queues/globallock.hpp"
#include "queues/hunt_heap.hpp"
#include "queues/klsm/block.hpp"
#include "queues/klsm/klsm.hpp"
#include "queues/linden.hpp"
#include "queues/multiqueue.hpp"
#include "queues/spraylist.hpp"
#include "seq/binary_heap.hpp"
#include "seq/order_statistic_tree.hpp"
#include "seq/pairing_heap.hpp"
#include "seq/seq_lsm.hpp"

namespace {

using K = std::uint64_t;
using V = std::uint64_t;

// ---- primitives -------------------------------------------------------

void BM_RngNext(benchmark::State& state) {
  cpq::Xoroshiro128 rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.next());
  }
}
BENCHMARK(BM_RngNext);

void BM_RngNextBelow(benchmark::State& state) {
  cpq::Xoroshiro128 rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.next_below(12345));
  }
}
BENCHMARK(BM_RngNextBelow);

template <typename Lock>
void BM_LockUncontended(benchmark::State& state) {
  Lock lock;
  for (auto _ : state) {
    lock.lock();
    lock.unlock();
  }
}
BENCHMARK(BM_LockUncontended<cpq::TasSpinlock>);
BENCHMARK(BM_LockUncontended<cpq::Spinlock>);

void BM_EbrGuard(benchmark::State& state) {
  for (auto _ : state) {
    cpq::mm::EbrDomain::Guard guard;
    benchmark::ClobberMemory();
  }
}
BENCHMARK(BM_EbrGuard);

// The read-side cost EBR avoids: one seq_cst publish + revalidation per
// protected pointer (see mm/hazard.hpp's tradeoff discussion).
void BM_HazardAcquire(benchmark::State& state) {
  static cpq::mm::HazardDomain<int> domain;
  std::atomic<int*> published{new int(7)};
  auto slot = domain.make_slot();
  for (auto _ : state) {
    benchmark::DoNotOptimize(slot.protect(published));
    slot.clear();
  }
  delete published.load();
}
BENCHMARK(BM_HazardAcquire);

void BM_KeyGenerator(benchmark::State& state) {
  using cpq::bench::KeyConfig;
  const KeyConfig configs[] = {KeyConfig::uniform(32), KeyConfig::uniform(8),
                               KeyConfig::ascending(),
                               KeyConfig::descending()};
  cpq::bench::KeyGenerator gen(configs[state.range(0)], 1, 0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(gen.next());
  }
}
BENCHMARK(BM_KeyGenerator)->DenseRange(0, 3);

// ---- sequential queues --------------------------------------------------

template <typename Heap>
void BM_SeqQueueSteadyState(benchmark::State& state) {
  Heap heap;
  cpq::Xoroshiro128 rng(7);
  const std::int64_t prefill = state.range(0);
  for (std::int64_t i = 0; i < prefill; ++i) {
    heap.insert(rng.next_below(1u << 20), i);
  }
  K k;
  V v;
  for (auto _ : state) {
    heap.insert(rng.next_below(1u << 20), 0);
    benchmark::DoNotOptimize(heap.delete_min(k, v));
  }
}
BENCHMARK(BM_SeqQueueSteadyState<cpq::seq::BinaryHeap<K, V>>)
    ->Arg(1000)
    ->Arg(100000);
BENCHMARK(BM_SeqQueueSteadyState<cpq::seq::PairingHeap<K, V>>)
    ->Arg(1000)
    ->Arg(100000);
BENCHMARK(BM_SeqQueueSteadyState<cpq::seq::SeqLsm<K, V>>)
    ->Arg(1000)
    ->Arg(100000);

// ---- k-LSM block machinery ---------------------------------------------

void BM_BlockClaimMerge(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  for (auto _ : state) {
    state.PauseTiming();
    std::vector<std::pair<K, V>> ia, ib;
    for (std::int64_t i = 0; i < n; ++i) ia.emplace_back(2 * i, i);
    for (std::int64_t i = 0; i < n; ++i) ib.emplace_back(2 * i + 1, i);
    auto* a = cpq::klsm_detail::Block<K, V>::create(std::move(ia));
    auto* b = cpq::klsm_detail::Block<K, V>::create(std::move(ib));
    state.ResumeTiming();
    benchmark::DoNotOptimize(cpq::klsm_detail::claim_merge(*a, *b));
    state.PauseTiming();
    a->unref();
    b->unref();
    state.ResumeTiming();
  }
  state.SetItemsProcessed(state.iterations() * 2 * n);
}
BENCHMARK(BM_BlockClaimMerge)->Arg(128)->Arg(4096);

// The raw merge kernels, decoupled from slot claiming: scalar oracle vs the
// branch-free unrolled loop vs the SSE4.2 variant (when the host supports
// it). Items/sec here bound how fast claim_merge can ever go. The second
// argument selects the take pattern, which decides the contest: 0 strictly
// alternates (a branch predictor's best case, flattering the scalar loop),
// 1 draws both runs from the same uniform distribution — rotating through
// many distinct input pairs, because repeating ONE random merge lets the
// predictor memorize its take sequence and report a fantasy number; the
// k-LSM cascade merges a fresh pattern every time.
template <int Kernel>
void BM_MergeKernel(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const bool random_keys = state.range(1) != 0;
  using Item = std::pair<K, V>;
  constexpr std::size_t kVariants = 32;
  std::vector<std::vector<Item>> as, bs;
  std::vector<Item> out(2 * n);
  cpq::Xoroshiro128 rng(99);
  for (std::size_t variant = 0; variant < (random_keys ? kVariants : 1);
       ++variant) {
    std::vector<Item> a, b;
    if (random_keys) {
      for (std::size_t i = 0; i < n; ++i) {
        a.emplace_back(rng.next_below(1u << 20), i);
      }
      for (std::size_t i = 0; i < n; ++i) {
        b.emplace_back(rng.next_below(1u << 20), i);
      }
      std::sort(a.begin(), a.end());
      std::sort(b.begin(), b.end());
    } else {
      for (std::size_t i = 0; i < n; ++i) a.emplace_back(2 * i, i);
      for (std::size_t i = 0; i < n; ++i) b.emplace_back(2 * i + 1, i);
    }
    as.push_back(std::move(a));
    bs.push_back(std::move(b));
  }
  if constexpr (Kernel == 2) {
#if CPQ_MERGE_HAVE_SSE42_TARGET
    if (!cpq::klsm_detail::merge_simd_available()) {
      state.SkipWithError("SSE4.2 not available");
      return;
    }
#else
    state.SkipWithError("SSE4.2 kernel not compiled in");
    return;
#endif
  }
  std::size_t which = 0;
  for (auto _ : state) {
    const Item* a = as[which].data();
    const Item* b = bs[which].data();
    which = (which + 1) % as.size();
    std::size_t produced = 0;
    if constexpr (Kernel == 0) {
      produced =
          cpq::klsm_detail::merge_sorted_scalar(a, n, b, n, out.data());
    } else if constexpr (Kernel == 1) {
      produced =
          cpq::klsm_detail::merge_sorted_branchfree(a, n, b, n, out.data());
    } else {
#if CPQ_MERGE_HAVE_SSE42_TARGET
      produced = cpq::klsm_detail::merge_sorted_simd(a, n, b, n, out.data());
#endif
    }
    benchmark::DoNotOptimize(produced);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n);
}
BENCHMARK(BM_MergeKernel<0>)
    ->Args({128, 0})
    ->Args({4096, 0})
    ->Args({128, 1})
    ->Args({4096, 1});
BENCHMARK(BM_MergeKernel<1>)
    ->Args({128, 0})
    ->Args({4096, 0})
    ->Args({128, 1})
    ->Args({4096, 1});
BENCHMARK(BM_MergeKernel<2>)
    ->Args({128, 0})
    ->Args({4096, 0})
    ->Args({128, 1})
    ->Args({4096, 1});

// ---- order-statistic replay engine ---------------------------------------

void BM_OstInsertErase(benchmark::State& state) {
  cpq::seq::OrderStatisticTree<K> tree;
  cpq::Xoroshiro128 rng(3);
  const std::int64_t prefill = state.range(0);
  for (std::int64_t i = 0; i < prefill; ++i) {
    tree.insert(rng.next_below(1u << 20), i);
  }
  std::uint64_t id = prefill;
  for (auto _ : state) {
    const K key = rng.next_below(1u << 20);
    tree.insert(key, id);
    benchmark::DoNotOptimize(tree.erase(key, id));
    ++id;
  }
}
BENCHMARK(BM_OstInsertErase)->Arg(100000);

// ---- concurrent queues, single-threaded op cost ---------------------------

template <typename Queue>
void BM_QueueSteadyState1T(benchmark::State& state) {
  Queue queue(1);
  auto handle = queue.get_handle(0);
  cpq::Xoroshiro128 rng(11);
  for (int i = 0; i < 100000; ++i) {
    handle.insert(rng.next_below(1u << 20), i);
  }
  K k;
  V v;
  for (auto _ : state) {
    handle.insert(rng.next_below(1u << 20), 0);
    benchmark::DoNotOptimize(handle.delete_min(k, v));
  }
}
BENCHMARK(BM_QueueSteadyState1T<cpq::GlobalLockQueue<K, V>>);
BENCHMARK(BM_QueueSteadyState1T<cpq::LindenQueue<K, V>>);
BENCHMARK(BM_QueueSteadyState1T<cpq::SprayList<K, V>>);
BENCHMARK(BM_QueueSteadyState1T<cpq::MultiQueue<K, V>>);
BENCHMARK(BM_QueueSteadyState1T<cpq::HuntHeap<K, V>>);
BENCHMARK(BM_QueueSteadyState1T<cpq::FcPriorityQueue<K, V>>);

void BM_KlsmSteadyState1T(benchmark::State& state) {
  cpq::KLsmQueue<K, V> queue(1, static_cast<std::uint64_t>(state.range(0)));
  auto handle = queue.get_handle(0);
  cpq::Xoroshiro128 rng(11);
  for (int i = 0; i < 100000; ++i) {
    handle.insert(rng.next_below(1u << 20), i);
  }
  K k;
  V v;
  for (auto _ : state) {
    handle.insert(rng.next_below(1u << 20), 0);
    benchmark::DoNotOptimize(handle.delete_min(k, v));
  }
}
BENCHMARK(BM_KlsmSteadyState1T)->Arg(128)->Arg(256)->Arg(4096);

}  // namespace

BENCHMARK_MAIN();
