// X9 — adversarial workloads: skewed/bursty keys + anti-artifact hygiene.
//
// Extends the paper's uniform-key grid with the adversarial generators of
// src/workloads/ (arXiv:2305.10872) and the bench-hygiene countermeasures
// of arXiv:2208.08469, in four passes:
//
//   1. skew sweep   — throughput and rank-error quality for uniform32,
//                     zipf:1.1, hotspot:0.9,0.1 and dijkstra:1,100 keys;
//   2. layout pass  — the zipf grid re-run interleaved (all queues in one
//                     process, shuffled order per repetition, randomized
//                     prefill order and heap perturbation) reporting the
//                     per-queue layout_* spread instead of a contaminated
//                     mean;
//   3. burst pass   — open-loop MMPP arrivals (ON 200k/s for ~5 ms, OFF
//                     20k/s for ~15 ms per thread) against the closed-loop
//                     baseline, reporting the burst_* family;
//   4. pcsplit pass — ingest-heavy producer/consumer split (75% producers)
//                     under hotspot keys.
//
// Default roster: the paper's seven queues plus the engineered MultiQueue;
// CPQ_QUEUES overrides. All CPQ_* scaling env vars apply as usual.

#include <cstdlib>
#include <string>
#include <vector>

#include "bench_common.hpp"

int main() {
  using namespace cpq::bench;
  const Options options = options_from_env();
  print_bench_header("bench_skew",
                     "X9: skewed/bursty adversarial workloads + "
                     "anti-artifact hygiene (extension)",
                     options);

  const char* env_roster = std::getenv("CPQ_QUEUES");
  const std::vector<const QueueSpec*> roster = resolve_roster(
      env_roster != nullptr && env_roster[0] != '\0'
          ? env_roster
          : "glock,linden,spray,mq,klsm128,klsm256,klsm4096,mq-eng");

  bool ok = true;

  // ---- 1. skew sweep -----------------------------------------------------
  const struct {
    const char* tag;
    KeyConfig keys;
  } dists[] = {
      {"uniform", KeyConfig::uniform(32)},
      {"zipf", KeyConfig::zipf(1.1)},
      {"hotspot", KeyConfig::hotspot(0.9, 0.1)},
      {"dijkstra", KeyConfig::dijkstra(1, 100)},
  };
  for (const auto& dist : dists) {
    BenchConfig cfg = base_config(options);
    cfg.workload = Workload::kUniform;
    cfg.keys = dist.keys;
    ok &= throughput_table("X9 skew", cfg, options, roster);
    cfg.ops_per_thread = options.quality_ops;
    ok &= quality_table("X9 skew", cfg, options, roster);
  }

  // ---- 2. anti-artifact layout pass --------------------------------------
  {
    BenchConfig cfg = base_config(options);
    cfg.workload = Workload::kUniform;
    cfg.keys = KeyConfig::zipf(1.1);
    cfg.shuffle_prefill = true;
    cfg.perturb_layout = true;
    ok &= interleaved_throughput_table("X9 layout", cfg, options, roster);
  }

  // ---- 3. open-loop burst pass -------------------------------------------
  {
    BenchConfig cfg = base_config(options);
    cfg.workload = Workload::kUniform;
    cfg.keys = KeyConfig::zipf(1.1);
    cfg.arrivals = cpq::workloads::ArrivalConfig::mmpp(200'000, 20'000,
                                                       0.005, 0.015);
    ok &= throughput_table("X9 burst", cfg, options, roster);
  }

  // ---- 4. ingest-heavy producer/consumer split ---------------------------
  {
    BenchConfig cfg = base_config(options);
    cfg.workload = Workload::kPcSplit;
    cfg.producer_fraction = 0.75;
    cfg.keys = KeyConfig::hotspot(0.9, 0.1);
    ok &= throughput_table("X9 pcsplit", cfg, options, roster);
  }

  return ok ? 0 : 1;
}
