// E8 — Table 5: rank error under the alternating workload with uniform32,
// ascending, and descending keys (panels a-c on mars; d-i are the same
// benchmark on saturn/ceres via CPQ_THREADS).

#include "bench_common.hpp"

int main() {
  using namespace cpq::bench;
  const Options options = options_from_env();
  print_bench_header("bench_table5_rank_alternating",
                     "Table 5 (mars panels; others via CPQ_THREADS): rank "
                     "error, alternating workload",
                     options);
  const auto roster = roster_from_env();
  BenchConfig cfg = base_config(options);
  cfg.workload = Workload::kAlternating;

  struct Panel {
    const char* label;
    KeyConfig keys;
  };
  const Panel panels[] = {
      {"Table 5a", KeyConfig::uniform(32)},
      {"Table 5b", KeyConfig::ascending()},
      {"Table 5c", KeyConfig::descending()},
  };
  for (const Panel& panel : panels) {
    cfg.keys = panel.keys;
    quality_table(panel.label, cfg, options, roster);
  }
  return 0;
}
