// Shared driver for the paper-figure bench binaries: sweep the thread
// ladder over a queue roster and print one table per configuration, in the
// layout the paper's figures/tables encode (rows = thread counts, columns =
// queues).
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "bench_framework/json_out.hpp"
#include "bench_framework/latency.hpp"
#include "bench_framework/options.hpp"
#include "bench_framework/registry.hpp"
#include "bench_framework/table.hpp"
#include "obs/metrics.hpp"

namespace cpq::bench {

// --metrics: report per-cell metrics-registry counter deltas alongside the
// measurement tables (one stdout line per cell plus counter_* JSON records).
// Works in every build; without CPQ_METRICS_ENABLED the hooks are compiled
// out and every counter reads zero.
inline bool& metrics_report_enabled() {
  static bool enabled = false;
  return enabled;
}

// Zero the registry before a cell so the post-cell totals are that cell's
// delta. Benchmark cells run their workers strictly between table cells, so
// nothing is recording concurrently.
inline void metrics_cell_begin() {
  if (metrics_report_enabled()) obs::MetricsRegistry::global().reset();
}

inline void metrics_cell_report(const std::string& experiment,
                                const std::string& queue, unsigned threads) {
  if (!metrics_report_enabled()) return;
  const auto totals = obs::MetricsRegistry::global().totals();
  std::printf("# metrics %s t=%u:", queue.c_str(), threads);
  for (unsigned c = 0; c < obs::kNumCounters; ++c) {
    std::printf(" %s=%llu", obs::counter_name(c),
                static_cast<unsigned long long>(totals[c]));
    JsonSink::instance().record(
        {experiment, queue, std::string("counter_") + obs::counter_name(c),
         threads, static_cast<double>(totals[c]), 0.0, 1});
  }
  std::printf("\n");
}

// A failed cell (every repetition threw) renders as "failed" instead of a
// zero that looks like a measurement; if every queue in a row failed the
// row is dropped entirely. Each table returns false when any cell failed so
// drivers can exit non-zero.
inline constexpr const char* kFailedCell = "failed";

inline std::vector<const QueueSpec*> roster_from_env() {
  const char* names = std::getenv("CPQ_QUEUES");
  return resolve_roster(names ? names : "");
}

inline std::string config_title(const std::string& label,
                                const BenchConfig& cfg) {
  return label + " — " + workload_name(cfg.workload) + " workload, " +
         cfg.keys.name() + " keys";
}

// Throughput sweep: MOps/s mean ± 95% CI per (threads, queue). Each cell is
// additionally appended to the CPQ_JSON sink (bench_framework/json_out.hpp).
// Returns false when any cell failed (see kFailedCell).
inline bool throughput_table(const std::string& label, BenchConfig cfg,
                             const Options& options,
                             const std::vector<const QueueSpec*>& roster) {
  std::vector<std::string> columns;
  for (const QueueSpec* spec : roster) columns.push_back(spec->name);
  Table table(config_title(label, cfg) + " — throughput [MOps/s]", "threads",
              columns);
  bool all_ok = true;
  for (unsigned threads : options.thread_ladder) {
    cfg.threads = threads;
    std::vector<std::string> cells;
    unsigned ok_cells = 0;
    for (const QueueSpec* spec : roster) {
      metrics_cell_begin();
      const ThroughputResult result = spec->throughput(cfg);
      const bool failed = result.failed();
      if (failed) {
        all_ok = false;
        cells.emplace_back(kFailedCell);
      } else {
        ++ok_cells;
        cells.push_back(Table::format_mean_ci(result.mops.mean,
                                              result.mops.ci95));
      }
      JsonSink::instance().record({config_title(label, cfg), spec->name,
                                   "throughput_mops", threads,
                                   result.mops.mean, result.mops.ci95,
                                   static_cast<unsigned>(
                                       result.per_rep.size()),
                                   failed ? "failed" : "ok"});
      metrics_cell_report(config_title(label, cfg), spec->name, threads);
    }
    if (ok_cells == 0) {
      std::fprintf(stderr,
                   "[cpq] %s: dropping thread row %u (every cell failed)\n",
                   label.c_str(), threads);
      continue;
    }
    table.add_row(std::to_string(threads), std::move(cells));
  }
  table.print();
  return all_ok;
}

// Rank-error sweep: mean (stddev) per (threads, queue), as in the paper's
// quality tables. Returns false when any cell failed.
inline bool quality_table(const std::string& label, BenchConfig cfg,
                          const Options& options,
                          const std::vector<const QueueSpec*>& roster) {
  std::vector<std::string> columns;
  for (const QueueSpec* spec : roster) columns.push_back(spec->name);
  Table table(config_title(label, cfg) + " — rank error mean (σ)", "threads",
              columns);
  bool all_ok = true;
  for (unsigned threads : options.thread_ladder) {
    cfg.threads = threads;
    std::vector<std::string> cells;
    unsigned ok_cells = 0;
    for (const QueueSpec* spec : roster) {
      metrics_cell_begin();
      const QualityResult result = spec->quality(cfg);
      const bool failed = result.failed();
      if (failed) {
        all_ok = false;
        cells.emplace_back(kFailedCell);
      } else {
        ++ok_cells;
        cells.push_back(Table::format_mean_std(result.rank_error.mean,
                                               result.rank_error.stddev));
      }
      JsonSink::instance().record({config_title(label, cfg), spec->name,
                                   "rank_error_mean", threads,
                                   result.rank_error.mean,
                                   result.rank_error.ci95,
                                   result.completed_reps,
                                   failed ? "failed" : "ok"});
      metrics_cell_report(config_title(label, cfg), spec->name, threads);
    }
    if (ok_cells == 0) {
      std::fprintf(stderr,
                   "[cpq] %s: dropping thread row %u (every cell failed)\n",
                   label.c_str(), threads);
      continue;
    }
    table.add_row(std::to_string(threads), std::move(cells));
  }
  table.print();
  return all_ok;
}

// Open-loop service sweep: every roster queue driven raw and through
// PriorityService by identical Poisson client traffic. Rows are total
// thread counts from the ladder (split half producers / half consumers);
// cells show raw -> service delivered kTasks/s, and a second table shows
// the completion-rank error medians. Returns false if any checked run
// reported a conservation violation.
inline bool service_table(const std::string& label,
                          service::ServiceBenchConfig cfg,
                          const Options& options,
                          const std::vector<const QueueSpec*>& roster) {
  std::vector<std::string> columns;
  for (const QueueSpec* spec : roster) columns.push_back(spec->name);
  Table throughput(label + " — delivered raw -> service [kTasks/s]",
                   "threads", columns);
  Table quality(label + " — completion rank error median raw -> service",
                "threads", columns);
  Table latency(label + " — delete_min latency [ns] p50/p99 raw -> service",
                "threads", columns);
  bool conserved = true;
  for (unsigned threads : options.thread_ladder) {
    cfg.producers = (threads + 1) / 2;
    cfg.consumers = threads - cfg.producers;
    if (cfg.consumers == 0) cfg.consumers = 1;
    const unsigned total = cfg.producers + cfg.consumers;
    std::vector<std::string> tcells;
    std::vector<std::string> qcells;
    std::vector<std::string> lcells;
    for (const QueueSpec* spec : roster) {
      metrics_cell_begin();
      const ServiceComparison comparison = spec->service_bench(cfg);
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%.0f -> %.0f",
                    comparison.raw.delivered_per_s / 1e3,
                    comparison.service.delivered_per_s / 1e3);
      tcells.emplace_back(buf);
      std::snprintf(buf, sizeof(buf), "%.1f -> %.1f",
                    comparison.raw.median_rank_error,
                    comparison.service.median_rank_error);
      qcells.emplace_back(buf);
      const LatencyPercentiles raw_lat =
          percentiles_of(comparison.raw.delete_ns);
      const LatencyPercentiles svc_lat =
          percentiles_of(comparison.service.delete_ns);
      std::snprintf(buf, sizeof(buf), "%.0f/%.0f -> %.0f/%.0f",
                    raw_lat.p50_ns, raw_lat.p99_ns, svc_lat.p50_ns,
                    svc_lat.p99_ns);
      lcells.emplace_back(buf);
      JsonSink::instance().record({label, spec->name, "raw_tasks_per_s",
                                   total, comparison.raw.delivered_per_s,
                                   0.0, 1});
      JsonSink::instance().record({label, spec->name, "service_tasks_per_s",
                                   total, comparison.service.delivered_per_s,
                                   0.0, 1});
      JsonSink::instance().record({label, spec->name,
                                   "service_rank_error_median", total,
                                   comparison.service.median_rank_error, 0.0,
                                   1});
      JsonSink::instance().record({label, spec->name,
                                   "service_delete_p50_ns", total,
                                   svc_lat.p50_ns, 0.0, 1});
      JsonSink::instance().record({label, spec->name,
                                   "service_delete_p99_ns", total,
                                   svc_lat.p99_ns, 0.0, 1});
      metrics_cell_report(label, spec->name, total);
      if (cfg.checked) {
        for (const service::ServiceBenchResult* result :
             {&comparison.raw, &comparison.service}) {
          if (!result->conservation_ok) {
            conserved = false;
            std::fprintf(stderr,
                         "[cpq] %s: service conservation violation: %s\n",
                         spec->name.c_str(),
                         result->conservation_report.c_str());
          }
        }
      }
    }
    throughput.add_row(std::to_string(total), std::move(tcells));
    quality.add_row(std::to_string(total), std::move(qcells));
    latency.add_row(std::to_string(total), std::move(lcells));
  }
  throughput.print();
  quality.print();
  latency.print();
  return conserved;
}

inline void print_bench_header(const char* name, const char* reproduces,
                               const Options& options) {
  std::printf("# %s\n", name);
  std::printf("# reproduces: %s\n", reproduces);
  std::printf(
      "# prefill=%zu window=%.0fms reps=%u seed=%llu threads=",
      options.prefill, options.duration_s * 1000.0, options.repetitions,
      static_cast<unsigned long long>(options.seed));
  for (unsigned t : options.thread_ladder) std::printf("%u,", t);
  std::printf(
      "\n# scale up with CPQ_THREADS/CPQ_BENCH_MS/CPQ_BENCH_REPS/CPQ_PREFILL "
      "(paper: 10^6 prefill, 10 s windows, 10 reps)\n");
}

}  // namespace cpq::bench
