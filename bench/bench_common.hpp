// Shared driver for the paper-figure bench binaries: sweep the thread
// ladder over a queue roster and print one table per configuration, in the
// layout the paper's figures/tables encode (rows = thread counts, columns =
// queues).
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "bench_framework/options.hpp"
#include "bench_framework/registry.hpp"
#include "bench_framework/table.hpp"

namespace cpq::bench {

inline std::vector<const QueueSpec*> roster_from_env() {
  const char* names = std::getenv("CPQ_QUEUES");
  return resolve_roster(names ? names : "");
}

inline std::string config_title(const std::string& label,
                                const BenchConfig& cfg) {
  return label + " — " + workload_name(cfg.workload) + " workload, " +
         cfg.keys.name() + " keys";
}

// Throughput sweep: MOps/s mean ± 95% CI per (threads, queue).
inline void throughput_table(const std::string& label, BenchConfig cfg,
                             const Options& options,
                             const std::vector<const QueueSpec*>& roster) {
  std::vector<std::string> columns;
  for (const QueueSpec* spec : roster) columns.push_back(spec->name);
  Table table(config_title(label, cfg) + " — throughput [MOps/s]", "threads",
              columns);
  for (unsigned threads : options.thread_ladder) {
    cfg.threads = threads;
    std::vector<std::string> cells;
    for (const QueueSpec* spec : roster) {
      const ThroughputResult result = spec->throughput(cfg);
      cells.push_back(Table::format_mean_ci(result.mops.mean,
                                            result.mops.ci95));
    }
    table.add_row(std::to_string(threads), std::move(cells));
  }
  table.print();
}

// Rank-error sweep: mean (stddev) per (threads, queue), as in the paper's
// quality tables.
inline void quality_table(const std::string& label, BenchConfig cfg,
                          const Options& options,
                          const std::vector<const QueueSpec*>& roster) {
  std::vector<std::string> columns;
  for (const QueueSpec* spec : roster) columns.push_back(spec->name);
  Table table(config_title(label, cfg) + " — rank error mean (σ)", "threads",
              columns);
  for (unsigned threads : options.thread_ladder) {
    cfg.threads = threads;
    std::vector<std::string> cells;
    for (const QueueSpec* spec : roster) {
      const QualityResult result = spec->quality(cfg);
      cells.push_back(Table::format_mean_std(result.rank_error.mean,
                                             result.rank_error.stddev));
    }
    table.add_row(std::to_string(threads), std::move(cells));
  }
  table.print();
}

inline void print_bench_header(const char* name, const char* reproduces,
                               const Options& options) {
  std::printf("# %s\n", name);
  std::printf("# reproduces: %s\n", reproduces);
  std::printf(
      "# prefill=%zu window=%.0fms reps=%u seed=%llu threads=",
      options.prefill, options.duration_s * 1000.0, options.repetitions,
      static_cast<unsigned long long>(options.seed));
  for (unsigned t : options.thread_ladder) std::printf("%u,", t);
  std::printf(
      "\n# scale up with CPQ_THREADS/CPQ_BENCH_MS/CPQ_BENCH_REPS/CPQ_PREFILL "
      "(paper: 10^6 prefill, 10 s windows, 10 reps)\n");
}

}  // namespace cpq::bench
