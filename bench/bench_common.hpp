// Shared driver for the paper-figure bench binaries: sweep the thread
// ladder over a queue roster and print one table per configuration, in the
// layout the paper's figures/tables encode (rows = thread counts, columns =
// queues).
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "bench_framework/json_out.hpp"
#include "bench_framework/options.hpp"
#include "bench_framework/registry.hpp"
#include "bench_framework/table.hpp"

namespace cpq::bench {

inline std::vector<const QueueSpec*> roster_from_env() {
  const char* names = std::getenv("CPQ_QUEUES");
  return resolve_roster(names ? names : "");
}

inline std::string config_title(const std::string& label,
                                const BenchConfig& cfg) {
  return label + " — " + workload_name(cfg.workload) + " workload, " +
         cfg.keys.name() + " keys";
}

// Throughput sweep: MOps/s mean ± 95% CI per (threads, queue). Each cell is
// additionally appended to the CPQ_JSON sink (bench_framework/json_out.hpp).
inline void throughput_table(const std::string& label, BenchConfig cfg,
                             const Options& options,
                             const std::vector<const QueueSpec*>& roster) {
  std::vector<std::string> columns;
  for (const QueueSpec* spec : roster) columns.push_back(spec->name);
  Table table(config_title(label, cfg) + " — throughput [MOps/s]", "threads",
              columns);
  for (unsigned threads : options.thread_ladder) {
    cfg.threads = threads;
    std::vector<std::string> cells;
    for (const QueueSpec* spec : roster) {
      const ThroughputResult result = spec->throughput(cfg);
      cells.push_back(Table::format_mean_ci(result.mops.mean,
                                            result.mops.ci95));
      JsonSink::instance().record({config_title(label, cfg), spec->name,
                                   "throughput_mops", threads,
                                   result.mops.mean, result.mops.ci95,
                                   static_cast<unsigned>(
                                       result.per_rep.size())});
    }
    table.add_row(std::to_string(threads), std::move(cells));
  }
  table.print();
}

// Rank-error sweep: mean (stddev) per (threads, queue), as in the paper's
// quality tables.
inline void quality_table(const std::string& label, BenchConfig cfg,
                          const Options& options,
                          const std::vector<const QueueSpec*>& roster) {
  std::vector<std::string> columns;
  for (const QueueSpec* spec : roster) columns.push_back(spec->name);
  Table table(config_title(label, cfg) + " — rank error mean (σ)", "threads",
              columns);
  for (unsigned threads : options.thread_ladder) {
    cfg.threads = threads;
    std::vector<std::string> cells;
    for (const QueueSpec* spec : roster) {
      const QualityResult result = spec->quality(cfg);
      cells.push_back(Table::format_mean_std(result.rank_error.mean,
                                             result.rank_error.stddev));
      JsonSink::instance().record({config_title(label, cfg), spec->name,
                                   "rank_error_mean", threads,
                                   result.rank_error.mean,
                                   result.rank_error.ci95, cfg.repetitions});
    }
    table.add_row(std::to_string(threads), std::move(cells));
  }
  table.print();
}

// Open-loop service sweep: every roster queue driven raw and through
// PriorityService by identical Poisson client traffic. Rows are total
// thread counts from the ladder (split half producers / half consumers);
// cells show raw -> service delivered kTasks/s, and a second table shows
// the completion-rank error medians. Returns false if any checked run
// reported a conservation violation.
inline bool service_table(const std::string& label,
                          service::ServiceBenchConfig cfg,
                          const Options& options,
                          const std::vector<const QueueSpec*>& roster) {
  std::vector<std::string> columns;
  for (const QueueSpec* spec : roster) columns.push_back(spec->name);
  Table throughput(label + " — delivered raw -> service [kTasks/s]",
                   "threads", columns);
  Table quality(label + " — completion rank error median raw -> service",
                "threads", columns);
  bool conserved = true;
  for (unsigned threads : options.thread_ladder) {
    cfg.producers = (threads + 1) / 2;
    cfg.consumers = threads - cfg.producers;
    if (cfg.consumers == 0) cfg.consumers = 1;
    const unsigned total = cfg.producers + cfg.consumers;
    std::vector<std::string> tcells;
    std::vector<std::string> qcells;
    for (const QueueSpec* spec : roster) {
      const ServiceComparison comparison = spec->service_bench(cfg);
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%.0f -> %.0f",
                    comparison.raw.delivered_per_s / 1e3,
                    comparison.service.delivered_per_s / 1e3);
      tcells.emplace_back(buf);
      std::snprintf(buf, sizeof(buf), "%.1f -> %.1f",
                    comparison.raw.median_rank_error,
                    comparison.service.median_rank_error);
      qcells.emplace_back(buf);
      JsonSink::instance().record({label, spec->name, "raw_tasks_per_s",
                                   total, comparison.raw.delivered_per_s,
                                   0.0, 1});
      JsonSink::instance().record({label, spec->name, "service_tasks_per_s",
                                   total, comparison.service.delivered_per_s,
                                   0.0, 1});
      JsonSink::instance().record({label, spec->name,
                                   "service_rank_error_median", total,
                                   comparison.service.median_rank_error, 0.0,
                                   1});
      if (cfg.checked) {
        for (const service::ServiceBenchResult* result :
             {&comparison.raw, &comparison.service}) {
          if (!result->conservation_ok) {
            conserved = false;
            std::fprintf(stderr,
                         "[cpq] %s: service conservation violation: %s\n",
                         spec->name.c_str(),
                         result->conservation_report.c_str());
          }
        }
      }
    }
    throughput.add_row(std::to_string(total), std::move(tcells));
    quality.add_row(std::to_string(total), std::move(qcells));
  }
  throughput.print();
  quality.print();
  return conserved;
}

inline void print_bench_header(const char* name, const char* reproduces,
                               const Options& options) {
  std::printf("# %s\n", name);
  std::printf("# reproduces: %s\n", reproduces);
  std::printf(
      "# prefill=%zu window=%.0fms reps=%u seed=%llu threads=",
      options.prefill, options.duration_s * 1000.0, options.repetitions,
      static_cast<unsigned long long>(options.seed));
  for (unsigned t : options.thread_ladder) std::printf("%u,", t);
  std::printf(
      "\n# scale up with CPQ_THREADS/CPQ_BENCH_MS/CPQ_BENCH_REPS/CPQ_PREFILL "
      "(paper: 10^6 prefill, 10 s windows, 10 reps)\n");
}

}  // namespace cpq::bench
