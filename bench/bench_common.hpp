// Shared driver for the paper-figure bench binaries: sweep the thread
// ladder over a queue roster and print one table per configuration, in the
// layout the paper's figures/tables encode (rows = thread counts, columns =
// queues).
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_framework/json_out.hpp"
#include "bench_framework/latency.hpp"
#include "bench_framework/options.hpp"
#include "bench_framework/registry.hpp"
#include "bench_framework/table.hpp"
#include "obs/metrics.hpp"
#include "obs/perf_counters.hpp"
#include "obs/rank_estimator.hpp"
#include "platform/rng.hpp"
#include "workloads/hygiene.hpp"

namespace cpq::bench {

// --metrics: report per-cell observability data alongside the measurement
// tables — metrics-registry counter deltas, the live rank-error estimate
// (queues with a published relaxation bound), and hardware perf-counter
// events per operation — one stdout line per cell plus JSON records.
// Works in every build; without CPQ_METRICS_ENABLED the hooks are compiled
// out, every counter reads zero, and the rank estimator sees no samples.
inline bool& metrics_report_enabled() {
  static bool enabled = false;
  return enabled;
}

// One process-wide perf-counter set, reused across cells: opened (with
// inherit=1) in the driver thread before a cell's workers spawn, so every
// worker's events aggregate into it. Unavailable events stay NaN.
inline obs::PerfCounters& cell_perf_counters() {
  static obs::PerfCounters counters;
  return counters;
}

// Arm the observability layer for one table cell: zero the registry so the
// post-cell totals are that cell's delta, arm the rank estimator with the
// queue's theoretical bound, and start the hardware counters. Benchmark
// cells run their workers strictly between table cells, so nothing is
// recording concurrently.
inline void metrics_cell_begin(const QueueSpec* spec, unsigned threads) {
  if (!metrics_report_enabled()) return;
  obs::MetricsRegistry::global().reset();
  if (spec != nullptr && !spec->strict) {
    const double bound = spec->rank_bound ? spec->rank_bound(threads) : 0.0;
    obs::RankEstimator::global().enable(
        bound, spec->rank_bound_hard,
        static_cast<unsigned>(obs::kTraceSampleMask) + 1);
  }
  obs::PerfCounters& perf = cell_perf_counters();
  perf.open();
  perf.start();
}

inline void metrics_cell_report(const std::string& experiment,
                                const std::string& queue, unsigned threads) {
  if (!metrics_report_enabled()) return;
  cell_perf_counters().stop();
  const auto totals = obs::MetricsRegistry::global().totals();
  // Finish each "#" text line before emitting its JSON records: with
  // --json=- the sink shares stdout, and an unterminated printf would glue
  // the records onto the text line, corrupting both.
  std::printf("# metrics %s t=%u:", queue.c_str(), threads);
  for (unsigned c = 0; c < obs::kNumCounters; ++c) {
    std::printf(" %s=%llu", obs::counter_name(c),
                static_cast<unsigned long long>(totals[c]));
  }
  std::printf("\n");
  for (unsigned c = 0; c < obs::kNumCounters; ++c) {
    JsonSink::instance().record(
        {experiment, queue, std::string("counter_") + obs::counter_name(c),
         threads, static_cast<double>(totals[c]), 0.0, 1});
  }

  // Live rank-error estimate (armed only for relaxed queues; silent unless
  // the cell's sampled trace stream scored at least one deletion).
  obs::RankEstimator& estimator = obs::RankEstimator::global();
  if (estimator.enabled()) {
    const obs::RankEstimator::Snapshot snap = estimator.snapshot();
    if (snap.samples > 0) {
      std::printf("# rank-est %s t=%u: p50=%.0f p90=%.0f max=%llu",
                  queue.c_str(), threads, snap.p50, snap.p90,
                  static_cast<unsigned long long>(snap.max));
      if (snap.bound > 0.0) {
        std::printf(" bound=%.0f (%s) violations=%llu", snap.bound,
                    snap.hard_bound ? "hard" : "soft",
                    static_cast<unsigned long long>(snap.violations));
      }
      std::printf(" samples=%llu (x%u sampling)\n",
                  static_cast<unsigned long long>(snap.samples),
                  snap.sample_period);
      JsonSink::instance().record({experiment, queue, "rank_est_p50",
                                   threads, snap.p50, 0.0, 1});
      JsonSink::instance().record({experiment, queue, "rank_est_max", threads,
                                   static_cast<double>(snap.max), 0.0, 1});
      if (snap.hard_bound && snap.bound > 0.0) {
        JsonSink::instance().record(
            {experiment, queue, "rank_bound_violations", threads,
             static_cast<double>(snap.violations), 0.0, 1});
      }
    }
    estimator.disable();
  }

  // Hardware counters per operation. Unavailable events (no perf access,
  // virtualized PMU) render as null, never as a fake zero; when the cell
  // executed no accounted operations the per-op division is skipped.
  const std::uint64_t ops = obs::MetricsRegistry::global().cell_ops();
  const auto events = cell_perf_counters().read();
  cell_perf_counters().close();
  std::printf("# perf %s t=%u:", queue.c_str(), threads);
  for (unsigned i = 0; i < obs::PerfCounters::kNumEvents; ++i) {
    const bool have = ops > 0 && !std::isnan(events[i]);
    if (have) {
      std::printf(" %s/op=%.2f", obs::PerfCounters::event_name(i),
                  events[i] / static_cast<double>(ops));
    } else {
      std::printf(" %s/op=null", obs::PerfCounters::event_name(i));
    }
  }
  std::printf("\n");
  for (unsigned i = 0; i < obs::PerfCounters::kNumEvents; ++i) {
    const bool have = ops > 0 && !std::isnan(events[i]);
    JsonRecord record{experiment, queue,
                      std::string("perf_") + obs::PerfCounters::event_name(i) +
                          "_per_op",
                      threads,
                      have ? events[i] / static_cast<double>(ops) : 0.0, 0.0,
                      1};
    record.mean_is_null = !have;
    JsonSink::instance().record(record);
  }
}

// A failed cell (every repetition threw) renders as "failed" instead of a
// zero that looks like a measurement; if every queue in a row failed the
// row is dropped entirely. Each table returns false when any cell failed so
// drivers can exit non-zero.
inline constexpr const char* kFailedCell = "failed";

inline std::vector<const QueueSpec*> roster_from_env() {
  const char* names = std::getenv("CPQ_QUEUES");
  return resolve_roster(names ? names : "");
}

inline std::string config_title(const std::string& label,
                                const BenchConfig& cfg) {
  return label + " — " + workload_name(cfg.workload) + " workload, " +
         cfg.keys.name() + " keys";
}

// Throughput sweep: MOps/s mean ± 95% CI per (threads, queue). Each cell is
// additionally appended to the CPQ_JSON sink (bench_framework/json_out.hpp).
// Returns false when any cell failed (see kFailedCell).
inline bool throughput_table(const std::string& label, BenchConfig cfg,
                             const Options& options,
                             const std::vector<const QueueSpec*>& roster) {
  std::vector<std::string> columns;
  for (const QueueSpec* spec : roster) columns.push_back(spec->name);
  Table table(config_title(label, cfg) + " — throughput [MOps/s]", "threads",
              columns);
  bool all_ok = true;
  for (unsigned threads : options.thread_ladder) {
    cfg.threads = threads;
    std::vector<std::string> cells;
    unsigned ok_cells = 0;
    for (const QueueSpec* spec : roster) {
      metrics_cell_begin(spec, threads);
      const ThroughputResult result = spec->throughput(cfg);
      const bool failed = result.failed();
      if (failed) {
        all_ok = false;
        cells.emplace_back(kFailedCell);
      } else {
        ++ok_cells;
        cells.push_back(Table::format_mean_ci(result.mops.mean,
                                              result.mops.ci95));
      }
      JsonSink::instance().record({config_title(label, cfg), spec->name,
                                   "throughput_mops", threads,
                                   result.mops.mean, result.mops.ci95,
                                   static_cast<unsigned>(
                                       result.per_rep.size()),
                                   failed ? "failed" : "ok"});
      // Open-loop runs additionally report the burst_* family: configured
      // offered load plus the measured burst shape, so an achieved-vs-offered
      // gap (queue saturating under bursts) is visible in the JSON.
      if (cfg.arrivals.enabled() && !failed) {
        const Summary on = summarize(result.on_fraction_per_rep);
        const Summary bursts = summarize(result.bursts_per_rep);
        const double offered_mops =
            cfg.arrivals.mean_hz() * threads / 1e6;
        std::printf("# burst %s t=%u: offered=%.3fMOps/s on=%.3f bursts=%.0f\n",
                    spec->name.c_str(), threads, offered_mops, on.mean,
                    bursts.mean);
        const unsigned reps =
            static_cast<unsigned>(result.per_rep.size());
        JsonSink::instance().record({config_title(label, cfg), spec->name,
                                     "burst_offered_mops", threads,
                                     offered_mops, 0.0, reps});
        JsonSink::instance().record({config_title(label, cfg), spec->name,
                                     "burst_on_fraction", threads, on.mean,
                                     on.ci95, reps});
        JsonSink::instance().record({config_title(label, cfg), spec->name,
                                     "burst_count", threads, bursts.mean,
                                     bursts.ci95, reps});
      }
      metrics_cell_report(config_title(label, cfg), spec->name, threads);
    }
    if (ok_cells == 0) {
      std::fprintf(stderr,
                   "[cpq] %s: dropping thread row %u (every cell failed)\n",
                   label.c_str(), threads);
      continue;
    }
    table.add_row(std::to_string(threads), std::move(cells));
  }
  table.print();
  return all_ok;
}

// Interleaved throughput sweep (anti-artifact hygiene, arXiv:2208.08469):
// all queues run inside one process lifetime, one repetition at a time, in
// a freshly shuffled queue order per repetition. Back-to-back per-queue
// processes always present each queue with a pristine heap; interleaving
// makes every queue inherit the allocator state its rivals left behind —
// as in any real comparison harness — and the per-queue spread across
// repetitions ((max-min)/mean) is reported as the layout_* metric family
// instead of silently contaminating the means. Per-cell metrics/rank-est
// reporting is skipped here: cells interleave, so registry deltas would
// mix queues. Returns false when any queue produced no completed rep.
inline bool interleaved_throughput_table(
    const std::string& label, BenchConfig cfg, const Options& options,
    const std::vector<const QueueSpec*>& roster) {
  std::vector<std::string> columns;
  for (const QueueSpec* spec : roster) columns.push_back(spec->name);
  Table table(config_title(label, cfg) +
                  " — interleaved throughput [MOps/s] (layout spread)",
              "threads", columns);
  bool all_ok = true;
  for (unsigned threads : options.thread_ladder) {
    cfg.threads = threads;
    std::vector<std::vector<double>> samples(roster.size());
    std::vector<std::size_t> order(roster.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    for (unsigned rep = 0; rep < cfg.repetitions; ++rep) {
      // Fresh shuffled order per repetition so position-in-process effects
      // average out instead of systematically favoring one queue.
      Xoroshiro128 order_rng(cfg.seed ^ (0x17ecaf3ULL * (rep + 1)) ^ threads);
      workloads::deterministic_shuffle(order, order_rng);
      for (std::size_t idx : order) {
        BenchConfig rep_cfg = cfg;
        rep_cfg.repetitions = 1;
        // Matches run_throughput's internal per-rep seed derivation, so an
        // interleaved rep replays the same key streams as rep `rep` of a
        // plain sweep — only the process-lifetime context differs.
        rep_cfg.seed = cfg.seed + 7919ULL * rep;
        rep_cfg.label = roster[idx]->name;
        const ThroughputResult result = roster[idx]->throughput(rep_cfg);
        if (!result.failed()) samples[idx].push_back(result.per_rep.front());
      }
    }
    std::vector<std::string> cells;
    unsigned ok_cells = 0;
    for (std::size_t i = 0; i < roster.size(); ++i) {
      const std::string experiment = config_title(label, cfg);
      if (samples[i].empty()) {
        all_ok = false;
        cells.emplace_back(kFailedCell);
        JsonSink::instance().record({experiment, roster[i]->name,
                                     "throughput_mops", threads, 0.0, 0.0, 0,
                                     "failed"});
        continue;
      }
      ++ok_cells;
      const Summary mops = summarize(samples[i]);
      const auto [min_it, max_it] =
          std::minmax_element(samples[i].begin(), samples[i].end());
      const double spread_pct =
          mops.mean > 0.0 ? (*max_it - *min_it) / mops.mean * 100.0 : 0.0;
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%.2f (±%.1f%%)", mops.mean,
                    spread_pct / 2.0);
      cells.emplace_back(buf);
      const unsigned reps = static_cast<unsigned>(samples[i].size());
      JsonSink::instance().record({experiment, roster[i]->name,
                                   "throughput_mops", threads, mops.mean,
                                   mops.ci95, reps});
      JsonSink::instance().record({experiment, roster[i]->name,
                                   "layout_spread_pct", threads, spread_pct,
                                   0.0, reps});
      JsonSink::instance().record({experiment, roster[i]->name,
                                   "layout_min_mops", threads, *min_it, 0.0,
                                   reps});
      JsonSink::instance().record({experiment, roster[i]->name,
                                   "layout_max_mops", threads, *max_it, 0.0,
                                   reps});
      std::printf("# layout %s t=%u: spread=%.1f%% min=%.2f max=%.2f (n=%u)\n",
                  roster[i]->name.c_str(), threads, spread_pct, *min_it,
                  *max_it, reps);
    }
    if (ok_cells == 0) {
      std::fprintf(stderr,
                   "[cpq] %s: dropping thread row %u (every cell failed)\n",
                   label.c_str(), threads);
      continue;
    }
    table.add_row(std::to_string(threads), std::move(cells));
  }
  table.print();
  return all_ok;
}

// Rank-error sweep: mean (stddev) per (threads, queue), as in the paper's
// quality tables. Returns false when any cell failed.
inline bool quality_table(const std::string& label, BenchConfig cfg,
                          const Options& options,
                          const std::vector<const QueueSpec*>& roster) {
  std::vector<std::string> columns;
  for (const QueueSpec* spec : roster) columns.push_back(spec->name);
  Table table(config_title(label, cfg) + " — rank error mean (σ)", "threads",
              columns);
  bool all_ok = true;
  for (unsigned threads : options.thread_ladder) {
    cfg.threads = threads;
    std::vector<std::string> cells;
    unsigned ok_cells = 0;
    for (const QueueSpec* spec : roster) {
      metrics_cell_begin(spec, threads);
      const QualityResult result = spec->quality(cfg);
      const bool failed = result.failed();
      if (failed) {
        all_ok = false;
        cells.emplace_back(kFailedCell);
      } else {
        ++ok_cells;
        cells.push_back(Table::format_mean_std(result.rank_error.mean,
                                               result.rank_error.stddev));
      }
      JsonSink::instance().record({config_title(label, cfg), spec->name,
                                   "rank_error_mean", threads,
                                   result.rank_error.mean,
                                   result.rank_error.ci95,
                                   result.completed_reps,
                                   failed ? "failed" : "ok"});
      metrics_cell_report(config_title(label, cfg), spec->name, threads);
    }
    if (ok_cells == 0) {
      std::fprintf(stderr,
                   "[cpq] %s: dropping thread row %u (every cell failed)\n",
                   label.c_str(), threads);
      continue;
    }
    table.add_row(std::to_string(threads), std::move(cells));
  }
  table.print();
  return all_ok;
}

// Open-loop service sweep: every roster queue driven raw and through
// PriorityService by identical Poisson client traffic. Rows are total
// thread counts from the ladder (split half producers / half consumers);
// cells show raw -> service delivered kTasks/s, and a second table shows
// the completion-rank error medians. Returns false if any checked run
// reported a conservation violation.
inline bool service_table(const std::string& label,
                          service::ServiceBenchConfig cfg,
                          const Options& options,
                          const std::vector<const QueueSpec*>& roster) {
  std::vector<std::string> columns;
  for (const QueueSpec* spec : roster) columns.push_back(spec->name);
  Table throughput(label + " — delivered raw -> service [kTasks/s]",
                   "threads", columns);
  Table quality(label + " — completion rank error median raw -> service",
                "threads", columns);
  Table latency(label + " — delete_min latency [ns] p50/p99 raw -> service",
                "threads", columns);
  Table overload(label + " — sojourn p99 [us] raw -> service"
                         " (shed/reroutes/trips)",
                 "threads", columns);
  bool conserved = true;
  for (unsigned threads : options.thread_ladder) {
    cfg.producers = (threads + 1) / 2;
    cfg.consumers = threads - cfg.producers;
    if (cfg.consumers == 0) cfg.consumers = 1;
    const unsigned total = cfg.producers + cfg.consumers;
    std::vector<std::string> tcells;
    std::vector<std::string> qcells;
    std::vector<std::string> lcells;
    std::vector<std::string> ocells;
    for (const QueueSpec* spec : roster) {
      metrics_cell_begin(spec, total);
      const ServiceComparison comparison = spec->service_bench(cfg);
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%.0f -> %.0f",
                    comparison.raw.delivered_per_s / 1e3,
                    comparison.service.delivered_per_s / 1e3);
      tcells.emplace_back(buf);
      std::snprintf(buf, sizeof(buf), "%.1f -> %.1f",
                    comparison.raw.median_rank_error,
                    comparison.service.median_rank_error);
      qcells.emplace_back(buf);
      const LatencyPercentiles raw_lat =
          percentiles_of(comparison.raw.delete_ns);
      const LatencyPercentiles svc_lat =
          percentiles_of(comparison.service.delete_ns);
      std::snprintf(buf, sizeof(buf), "%.0f/%.0f -> %.0f/%.0f",
                    raw_lat.p50_ns, raw_lat.p99_ns, svc_lat.p50_ns,
                    svc_lat.p99_ns);
      lcells.emplace_back(buf);
      const double raw_sojourn_p99 =
          comparison.raw.sojourn_ns.count() > 0
              ? comparison.raw.sojourn_ns.quantile(0.99)
              : 0.0;
      const double svc_sojourn_p99 =
          comparison.service.sojourn_ns.count() > 0
              ? comparison.service.sojourn_ns.quantile(0.99)
              : 0.0;
      const service::ServiceStats& sstats = comparison.service.stats;
      std::snprintf(buf, sizeof(buf),
                    "%.0f -> %.0f (%llu/%llu/%llu)", raw_sojourn_p99 / 1e3,
                    svc_sojourn_p99 / 1e3,
                    static_cast<unsigned long long>(sstats.shed_deadline),
                    static_cast<unsigned long long>(sstats.reroutes),
                    static_cast<unsigned long long>(sstats.breaker_trips));
      ocells.emplace_back(buf);
      JsonSink::instance().record({label, spec->name, "raw_tasks_per_s",
                                   total, comparison.raw.delivered_per_s,
                                   0.0, 1});
      JsonSink::instance().record({label, spec->name, "service_tasks_per_s",
                                   total, comparison.service.delivered_per_s,
                                   0.0, 1});
      JsonSink::instance().record({label, spec->name,
                                   "service_rank_error_median", total,
                                   comparison.service.median_rank_error, 0.0,
                                   1});
      JsonSink::instance().record({label, spec->name,
                                   "service_delete_p50_ns", total,
                                   svc_lat.p50_ns, 0.0, 1});
      JsonSink::instance().record({label, spec->name,
                                   "service_delete_p99_ns", total,
                                   svc_lat.p99_ns, 0.0, 1});
      JsonSink::instance().record({label, spec->name,
                                   "service_sojourn_p99_ns", total,
                                   svc_sojourn_p99, 0.0, 1});
      JsonSink::instance().record({label, spec->name, "service_shed_total",
                                   total,
                                   static_cast<double>(sstats.shed_deadline),
                                   0.0, 1});
      JsonSink::instance().record({label, spec->name,
                                   "service_tier_rejected", total,
                                   static_cast<double>(sstats.tier_rejected),
                                   0.0, 1});
      JsonSink::instance().record({label, spec->name, "service_reroutes",
                                   total,
                                   static_cast<double>(sstats.reroutes), 0.0,
                                   1});
      JsonSink::instance().record({label, spec->name,
                                   "service_breaker_trips", total,
                                   static_cast<double>(sstats.breaker_trips),
                                   0.0, 1});
      if (cfg.arrivals.enabled()) {
        JsonSink::instance().record(
            {label, spec->name, "burst_on_fraction", total,
             comparison.service.burst_on_fraction, 0.0, 1});
        JsonSink::instance().record(
            {label, spec->name, "burst_count", total,
             static_cast<double>(comparison.service.bursts), 0.0, 1});
      }
      metrics_cell_report(label, spec->name, total);
      if (cfg.checked) {
        for (const service::ServiceBenchResult* result :
             {&comparison.raw, &comparison.service}) {
          if (!result->conservation_ok) {
            conserved = false;
            std::fprintf(stderr,
                         "[cpq] %s: service conservation violation: %s\n",
                         spec->name.c_str(),
                         result->conservation_report.c_str());
          }
        }
      }
    }
    throughput.add_row(std::to_string(total), std::move(tcells));
    quality.add_row(std::to_string(total), std::move(qcells));
    latency.add_row(std::to_string(total), std::move(lcells));
    overload.add_row(std::to_string(total), std::move(ocells));
  }
  throughput.print();
  quality.print();
  latency.print();
  overload.print();
  return conserved;
}

inline void print_bench_header(const char* name, const char* reproduces,
                               const Options& options) {
  std::printf("# %s\n", name);
  std::printf("# reproduces: %s\n", reproduces);
  std::printf(
      "# prefill=%zu window=%.0fms reps=%u seed=%llu threads=",
      options.prefill, options.duration_s * 1000.0, options.repetitions,
      static_cast<unsigned long long>(options.seed));
  for (unsigned t : options.thread_ladder) std::printf("%u,", t);
  std::printf(
      "\n# scale up with CPQ_THREADS/CPQ_BENCH_MS/CPQ_BENCH_REPS/CPQ_PREFILL "
      "(paper: 10^6 prefill, 10 s windows, 10 reps)\n");
}

}  // namespace cpq::bench
