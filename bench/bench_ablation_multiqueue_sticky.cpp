// X8 ablation — engineered MultiQueue tuning: stickiness s and buffer
// capacity, alongside the classic c sweep (bench_ablation_multiqueue_c).
//
// The Williams & Sanders generation (arXiv:2504.11652) amortizes lock
// acquisitions over `buf`-sized insertion/deletion batches and keeps a
// thread on the same queues for `s` consecutive draws. Both knobs buy
// throughput by giving up rank quality, so every cell reports both sides
// of the trade: MOps/s and the replayed rank-error mean. Two sweeps:
//
//   * stickiness sweep at the default buffer capacity (16): s = 1..64
//   * buffer sweep at the default stickiness (8): buf = 0..64
//
// plus a classic-mq reference column in each table. Cells are appended to
// the CPQ_JSON sink as the usual JSON records (experiment
// "ablation-mq-eng", metrics throughput_mops / rank_error_mean).

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "queues/multiqueue.hpp"
#include "queues/multiqueue_eng.hpp"

int main() {
  using namespace cpq::bench;
  using K = cpq::bench_key;
  using V = cpq::bench_value;
  using ClassicMq = cpq::MultiQueue<K, V>;
  using EngMq = cpq::EngMultiQueue<K, V>;

  const Options options = options_from_env();
  print_bench_header("bench_ablation_multiqueue_sticky",
                     "ablation: engineered MultiQueue stickiness s and "
                     "buffer capacity (arXiv:2504.11652; classic mq as "
                     "reference)",
                     options);
  BenchConfig cfg = base_config(options);
  cfg.workload = Workload::kUniform;
  cfg.keys = KeyConfig::uniform(32);
  const std::string experiment = "ablation-mq-eng";

  struct Cell {
    std::string column;
    cpq::MqEngConfig config;
  };
  std::vector<std::vector<Cell>> sweeps;
  {
    std::vector<Cell> sticky_sweep;
    for (unsigned s : {1u, 4u, 8u, 16u, 64u}) {
      cpq::MqEngConfig config;  // defaults: c=4, buffers=16
      config.stickiness = s;
      sticky_sweep.push_back({"mq-eng-s" + std::to_string(s), config});
    }
    sweeps.push_back(std::move(sticky_sweep));

    std::vector<Cell> buffer_sweep;
    for (unsigned buf : {0u, 4u, 16u, 64u}) {
      cpq::MqEngConfig config;  // defaults: c=4, stickiness=8
      config.ins_buffer = buf;
      config.del_buffer = buf;
      buffer_sweep.push_back({"mq-eng-b" + std::to_string(buf), config});
    }
    sweeps.push_back(std::move(buffer_sweep));
  }

  const char* titles[] = {
      "Ablation X8a — stickiness sweep (buf=16), uniform/uniform32",
      "Ablation X8b — buffer sweep (s=8), uniform/uniform32"};
  for (std::size_t sweep = 0; sweep < sweeps.size(); ++sweep) {
    std::vector<std::string> columns;
    for (const Cell& cell : sweeps[sweep]) columns.push_back(cell.column);
    columns.push_back("mq (classic)");

    Table tput(std::string(titles[sweep]) + " — throughput [MOps/s]",
               "threads", columns);
    Table rank(std::string(titles[sweep]) + " — rank error mean (σ)",
               "threads", columns);
    for (unsigned threads : options.thread_ladder) {
      cfg.threads = threads;
      std::vector<std::string> tput_cells;
      std::vector<std::string> rank_cells;
      auto run_cell = [&](const std::string& column, auto factory) {
        const ThroughputResult tr = run_throughput(factory, cfg);
        tput_cells.push_back(
            Table::format_mean_ci(tr.mops.mean, tr.mops.ci95));
        JsonSink::instance().record(
            {experiment, column, "throughput_mops", threads, tr.mops.mean,
             tr.mops.ci95, static_cast<unsigned>(tr.per_rep.size())});
        const QualityResult qr = run_quality(factory, cfg);
        rank_cells.push_back(
            Table::format_mean_std(qr.rank_error.mean, qr.rank_error.stddev));
        JsonSink::instance().record({experiment, column, "rank_error_mean",
                                     threads, qr.rank_error.mean,
                                     qr.rank_error.ci95, qr.completed_reps});
      };
      for (const Cell& cell : sweeps[sweep]) {
        const cpq::MqEngConfig config = cell.config;
        run_cell(cell.column, [config](unsigned t, std::uint64_t seed) {
          return std::make_unique<EngMq>(t, config, seed);
        });
      }
      run_cell("mq (classic)", [](unsigned t, std::uint64_t seed) {
        return std::make_unique<ClassicMq>(t, 4, seed);
      });
      tput.add_row(std::to_string(threads), std::move(tput_cells));
      rank.add_row(std::to_string(threads), std::move(rank_cells));
    }
    tput.print();
    rank.print();
  }
  return 0;
}
