// E1 — Figure 1 (and Figure 4a): uniform workload, uniform 32-bit keys.
//
// The classic concurrent-priority-queue throughput benchmark: every thread
// performs 50% insertions / 50% deletions with uniformly random 32-bit
// keys. Paper result on mars (8-core Xeon): klsm4096 exhibits superior
// scalability (> 40 MOps/s, ~7.5x over the MultiQueue); the MultiQueue is
// second; spray tops out mid-field; linden and glock do not scale.

#include "bench_common.hpp"

int main() {
  using namespace cpq::bench;
  const Options options = options_from_env();
  print_bench_header("bench_fig1_uniform_uniform",
                     "Fig. 1 / Fig. 4a (mars): uniform workload, uniform "
                     "32-bit keys",
                     options);
  BenchConfig cfg = base_config(options);
  cfg.workload = Workload::kUniform;
  cfg.keys = KeyConfig::uniform(32);
  throughput_table("Fig. 1", cfg, options, roster_from_env());
  return 0;
}
