// A1 — ablation: k-LSM relaxation parameter sweep.
//
// Sweeps k over {16, 128, 256, 1024, 4096} under the uniform/uniform-32
// benchmark, printing throughput and rank error side by side. Checks two of
// the paper's claims directly:
//   * §3: "Results for low relaxation (k = 16) are not shown since its
//     behavior closely mimics the Lindén and Jonsson priority queue" —
//     the k=16 column should track the linden column in both metrics;
//   * higher k buys throughput at the price of rank error.

#include <string>
#include <vector>

#include "bench_common.hpp"
#include "queues/klsm/klsm.hpp"
#include "queues/linden.hpp"

int main() {
  using namespace cpq::bench;
  using cpq::KLsmQueue;
  using cpq::LindenQueue;
  using K = cpq::bench_key;
  using V = cpq::bench_value;

  const Options options = options_from_env();
  print_bench_header("bench_ablation_klsm_k",
                     "ablation: k-LSM relaxation sweep (paper §3 claim that "
                     "k=16 mimics linden)",
                     options);
  BenchConfig cfg = base_config(options);
  cfg.workload = Workload::kUniform;
  cfg.keys = KeyConfig::uniform(32);

  const std::vector<std::uint64_t> ks = {16, 128, 256, 1024, 4096};
  std::vector<std::string> columns = {"linden"};
  for (std::uint64_t k : ks) columns.push_back("klsm" + std::to_string(k));

  Table tput("Ablation A1 — throughput [MOps/s], uniform/uniform32",
             "threads", columns);
  Table rank("Ablation A1 — rank error mean (σ), uniform/uniform32",
             "threads", columns);
  for (unsigned threads : options.thread_ladder) {
    cfg.threads = threads;
    std::vector<std::string> tput_cells;
    std::vector<std::string> rank_cells;

    const auto linden_factory = [](unsigned t, std::uint64_t seed) {
      return std::make_unique<LindenQueue<K, V>>(t, 32, seed);
    };
    const ThroughputResult lt = run_throughput(linden_factory, cfg);
    tput_cells.push_back(Table::format_mean_ci(lt.mops.mean, lt.mops.ci95));
    const QualityResult lq = run_quality(linden_factory, cfg);
    rank_cells.push_back(
        Table::format_mean_std(lq.rank_error.mean, lq.rank_error.stddev));

    for (std::uint64_t k : ks) {
      const auto factory = [k](unsigned t, std::uint64_t seed) {
        return std::make_unique<KLsmQueue<K, V>>(t, k, seed);
      };
      const ThroughputResult tr = run_throughput(factory, cfg);
      tput_cells.push_back(Table::format_mean_ci(tr.mops.mean, tr.mops.ci95));
      const QualityResult qr = run_quality(factory, cfg);
      rank_cells.push_back(
          Table::format_mean_std(qr.rank_error.mean, qr.rank_error.stddev));
    }
    tput.add_row(std::to_string(threads), std::move(tput_cells));
    rank.add_row(std::to_string(threads), std::move(rank_cells));
  }
  tput.print();
  rank.print();
  return 0;
}
