// Unit tests for the PriorityService dispatch layer: delivery and ordering
// under batching, admission control (reject and blocking backpressure),
// deadline flushing, close()/drain() shutdown, per-shard counters, and the
// open-loop service bench harness (including its CheckedQueue mode).

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "platform/rng.hpp"
#include "platform/thread_util.hpp"
#include "queues/globallock.hpp"
#include "queues/multiqueue.hpp"
#include "service/priority_service.hpp"
#include "service/service_bench.hpp"
#include "validation/checked_queue.hpp"

namespace cpq::service {
namespace {

using K = std::uint64_t;
using V = std::uint64_t;
using Lock = GlobalLockQueue<K, V>;

std::unique_ptr<PriorityService<Lock>> make_lock_service(
    unsigned threads, const ServiceConfig& cfg) {
  return std::make_unique<PriorityService<Lock>>(
      threads, cfg, [&](unsigned) { return std::make_unique<Lock>(threads); });
}

TEST(PriorityService, SingleShardUnbatchedIsStrictlyOrdered) {
  ServiceConfig cfg;
  cfg.shards = 1;
  cfg.insert_batch = 1;
  cfg.delete_batch = 1;
  auto service = make_lock_service(1, cfg);
  auto handle = service->get_handle(0);
  for (K key : {9u, 3u, 7u, 1u, 5u}) handle.insert(key, key * 10);
  K key;
  V value;
  std::vector<K> popped;
  while (handle.delete_min(key, value)) {
    EXPECT_EQ(value, key * 10);
    popped.push_back(key);
  }
  EXPECT_EQ(popped, (std::vector<K>{1, 3, 5, 7, 9}));
}

TEST(PriorityService, BufferedInsertsPublishOnBatchOrExplicitFlush) {
  ServiceConfig cfg;
  cfg.shards = 1;
  cfg.insert_batch = 4;
  auto service = make_lock_service(2, cfg);
  auto producer = service->get_handle(0);
  auto consumer = service->get_handle(1);

  producer.insert(1, 1);
  producer.insert(2, 2);
  EXPECT_EQ(producer.buffered_inserts(), 2u);
  K key;
  V value;
  // Buffered tasks are invisible to other handles until a flush.
  EXPECT_FALSE(consumer.delete_min(key, value));

  producer.insert(3, 3);
  producer.insert(4, 4);  // batch full: auto-flush
  EXPECT_EQ(producer.buffered_inserts(), 0u);
  EXPECT_TRUE(consumer.delete_min(key, value));
  EXPECT_EQ(key, 1u);

  producer.insert(5, 5);
  producer.flush();
  EXPECT_EQ(producer.buffered_inserts(), 0u);
  std::size_t rest = 0;
  while (consumer.delete_min(key, value)) ++rest;
  EXPECT_EQ(rest, 4u);
}

TEST(PriorityService, DeadlineForcesFlushOfStaleBuffer) {
  ServiceConfig cfg;
  cfg.shards = 1;
  cfg.insert_batch = 64;
  cfg.flush_deadline_us = 500;
  auto service = make_lock_service(1, cfg);
  auto handle = service->get_handle(0);
  handle.insert(1, 1);
  EXPECT_EQ(handle.buffered_inserts(), 1u);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  handle.insert(2, 2);  // submit notices the expired deadline
  EXPECT_EQ(handle.buffered_inserts(), 0u);
  EXPECT_GE(service->stats().deadline_flushes, 1u);
}

TEST(PriorityService, RejectPolicyBoundsInFlightWork) {
  ServiceConfig cfg;
  cfg.shards = 1;
  cfg.insert_batch = 1;
  cfg.delete_batch = 1;
  cfg.max_in_flight = 2;
  cfg.policy = AdmissionPolicy::kReject;
  auto service = make_lock_service(1, cfg);
  auto handle = service->get_handle(0);
  EXPECT_TRUE(handle.try_submit(1, 1));
  EXPECT_TRUE(handle.try_submit(2, 2));
  EXPECT_FALSE(handle.try_submit(3, 3));  // bound hit
  EXPECT_EQ(service->in_flight(), 2u);

  K key;
  V value;
  ASSERT_TRUE(handle.delete_min(key, value));
  EXPECT_TRUE(handle.try_submit(3, 3));  // slot released by the delivery
  const ServiceStats stats = service->stats();
  EXPECT_EQ(stats.rejected, 1u);
  EXPECT_EQ(stats.submitted, 3u);
}

TEST(PriorityService, CloseRejectsNewWorkButKeepsAcceptedDeliverable) {
  ServiceConfig cfg;
  cfg.shards = 2;
  auto service = make_lock_service(1, cfg);
  auto handle = service->get_handle(0);
  handle.insert(1, 10);
  handle.insert(2, 20);
  service->close();
  EXPECT_TRUE(service->closed());
  EXPECT_FALSE(handle.try_submit(3, 30));
  K key;
  V value;
  EXPECT_TRUE(handle.delete_min(key, value));
  EXPECT_TRUE(handle.delete_min(key, value));
  EXPECT_FALSE(handle.delete_min(key, value));
  EXPECT_EQ(service->stats().rejected, 1u);
}

// The acceptance-critical shutdown property: producers blocked on the
// admission bound (backpressure), concurrent consumers, then close() +
// handle teardown + drain() — every accepted task is delivered or drained,
// none dropped, none duplicated (values are unique per task).
TEST(PriorityService, BackpressureDrainShutdownDropsNoTask) {
  constexpr unsigned kProducers = 2;
  constexpr unsigned kConsumers = 2;
  constexpr unsigned kThreads = kProducers + kConsumers;
  constexpr std::uint64_t kPerProducer = 5000;
  ServiceConfig cfg;
  cfg.shards = 2;
  cfg.insert_batch = 4;
  cfg.delete_batch = 4;
  cfg.max_in_flight = 64;  // far below the offered total: submitters block
  cfg.policy = AdmissionPolicy::kBlock;
  auto service = make_lock_service(kThreads, cfg);

  std::atomic<unsigned> producers_done{0};
  std::vector<char> seen(kThreads * kPerProducer, 0);
  std::atomic<std::uint64_t> delivered{0};
  std::atomic<bool> duplicate{false};

  auto mark = [&](V value) {
    if (seen[value]) duplicate.store(true);
    seen[value] = 1;
    delivered.fetch_add(1, std::memory_order_relaxed);
  };

  run_team(kThreads, [&](unsigned tid) {
    if (tid < kProducers) {
      {
        auto handle = service->get_handle(tid);
        for (std::uint64_t i = 0; i < kPerProducer; ++i) {
          handle.insert(i % 97, tid * kPerProducer + i);
        }
      }  // handle destruction flushes the insertion buffer
      producers_done.fetch_add(1, std::memory_order_release);
    } else {
      auto handle = service->get_handle(tid);
      K key;
      V value;
      unsigned misses = 0;
      while (misses < 64) {
        if (handle.delete_min(key, value)) {
          mark(value);
          misses = 0;
        } else if (producers_done.load(std::memory_order_acquire) ==
                   kProducers) {
          ++misses;
        }
      }
    }
  });

  service->close();
  const std::size_t drained = service->drain([&](K, V value) { mark(value); });

  EXPECT_FALSE(duplicate.load()) << "a task was delivered twice";
  EXPECT_EQ(delivered.load(), kProducers * kPerProducer)
      << "a task was dropped (drained " << drained << ")";
  EXPECT_EQ(service->in_flight(), 0u);
  const ServiceStats stats = service->stats();
  EXPECT_EQ(stats.submitted, kProducers * kPerProducer);
  EXPECT_EQ(stats.rejected, 0u);
}

TEST(PriorityService, CloseWakesBlockedSubmitters) {
  ServiceConfig cfg;
  cfg.shards = 1;
  cfg.insert_batch = 1;
  cfg.max_in_flight = 1;
  cfg.policy = AdmissionPolicy::kBlock;
  auto service = make_lock_service(2, cfg);
  auto warm = service->get_handle(0);
  warm.insert(1, 1);  // takes the only slot

  std::atomic<bool> returned{false};
  std::thread blocked([&] {
    auto handle = service->get_handle(1);
    EXPECT_FALSE(handle.try_submit(2, 2));  // blocks until close()
    returned.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(returned.load());
  service->close();
  blocked.join();
  EXPECT_TRUE(returned.load());
  EXPECT_EQ(service->stats().rejected, 1u);
}

TEST(PriorityService, StatsAccountForEveryFlushedAndPoppedTask) {
  ServiceConfig cfg;
  cfg.shards = 4;
  cfg.insert_batch = 8;
  cfg.delete_batch = 8;
  auto service = make_lock_service(1, cfg);
  {
    auto handle = service->get_handle(0);
    Xoroshiro128 rng(7);
    for (std::uint64_t i = 0; i < 1000; ++i) {
      handle.insert(rng.next_below(1u << 20), i);
    }
    handle.flush();
    K key;
    V value;
    for (int i = 0; i < 500; ++i) ASSERT_TRUE(handle.delete_min(key, value));
  }  // destructor spills the prefetched remainder back into the shards

  const ServiceStats stats = service->stats();
  EXPECT_EQ(stats.submitted, 1000u);
  EXPECT_EQ(stats.delivered, 500u);
  EXPECT_EQ(service->shard_count(), 4u);
  ASSERT_EQ(stats.shards.size(), 4u);
  std::uint64_t enqueued = 0;
  std::uint64_t dequeued = 0;
  std::size_t sized = 0;
  for (const ShardStats& shard : stats.shards) {
    enqueued += shard.enqueued;
    dequeued += shard.dequeued;
    sized += shard.approx_size;
  }
  // Every submitted task was flushed into some shard, plus the destructor
  // spill re-enqueued what sat in the deletion buffer.
  EXPECT_GE(enqueued, 1000u);
  EXPECT_EQ(enqueued - dequeued, 500u);  // what is still stored
  EXPECT_EQ(sized, 500u);
  EXPECT_GE(stats.flushes, 1000u / 8);
  EXPECT_GT(stats.mean_insert_fill, 1.0);
  EXPECT_GT(stats.mean_delete_fill, 1.0);

  std::size_t drained = 0;
  service->drain([&](K, V) { ++drained; });
  EXPECT_EQ(drained, 500u);
}

TEST(PriorityService, TwoChoiceRoutingSpreadsLoadAcrossShards) {
  ServiceConfig cfg;
  cfg.shards = 4;
  cfg.insert_batch = 4;
  auto service = make_lock_service(1, cfg);
  auto handle = service->get_handle(0);
  Xoroshiro128 rng(21);
  for (std::uint64_t i = 0; i < 4000; ++i) {
    handle.insert(rng.next_below(1u << 30), i);
  }
  handle.flush();
  for (const ShardStats& shard : service->stats().shards) {
    // Two-choice flushing keeps every shard within a small factor of the
    // 1000-task fair share; a broken router starves at least one shard.
    EXPECT_GT(shard.enqueued, 250u);
  }
}

TEST(PriorityService, WrappedInCheckedQueueConservesTasks) {
  constexpr unsigned kThreads = 4;
  ServiceConfig cfg;
  cfg.shards = 2;
  cfg.insert_batch = 4;
  cfg.delete_batch = 4;
  using Service = PriorityService<MultiQueue<K, V>>;
  validation::CheckedQueue<Service> checked(
      kThreads,
      std::make_unique<Service>(kThreads, cfg, [&](unsigned shard) {
        return std::make_unique<MultiQueue<K, V>>(kThreads, 4, shard + 1);
      }));

  run_team(kThreads, [&](unsigned tid) {
    auto handle = checked.get_handle(tid);
    Xoroshiro128 rng(thread_seed(0x5eed, tid));
    for (std::uint64_t i = 0; i < 4000; ++i) {
      if (rng.next_below(100) < 60) {
        handle.insert(rng.next_below(1u << 12),
                      (static_cast<V>(tid + 1) << 32) | i);
      } else {
        K key;
        V value;
        handle.delete_min(key, value);
      }
    }
  });

  const validation::ReconcileReport report = checked.reconcile();
  EXPECT_TRUE(report.ok()) << report.to_string();
  EXPECT_GT(report.inserted, 0u);
}

// ---- the open-loop bench harness -----------------------------------------

ServiceBenchConfig tiny_bench() {
  ServiceBenchConfig cfg;
  cfg.producers = 1;
  cfg.consumers = 1;
  cfg.duration_s = 0.02;
  cfg.prefill = 500;
  cfg.seed = 11;
  cfg.pin_threads = false;
  return cfg;
}

TEST(ServiceBench, RawAndServiceRunsDeliverTasks) {
  auto factory = [](unsigned threads, std::uint64_t) {
    return std::make_unique<Lock>(threads);
  };
  const ServiceBenchConfig cfg = tiny_bench();
  const ServiceBenchResult raw = run_open_loop_raw(factory, cfg);
  EXPECT_GT(raw.submitted, 0u);
  EXPECT_GT(raw.delivered, 0u);
  EXPECT_GT(raw.offered_per_s, 0.0);

  const ServiceBenchResult service = run_open_loop_service(factory, cfg);
  EXPECT_GT(service.submitted, 0u);
  EXPECT_GT(service.delivered, 0u);
  EXPECT_GE(service.stats.flushes, 1u);
  // Shutdown accounting: everything accepted (prefill included — it goes
  // through the same handle path) was delivered or recovered by the drain.
  EXPECT_EQ(service.stats.submitted,
            service.stats.delivered + service.drained);
}

TEST(ServiceBench, CheckedModeReportsConservation) {
  auto factory = [](unsigned threads, std::uint64_t) {
    return std::make_unique<Lock>(threads);
  };
  ServiceBenchConfig cfg = tiny_bench();
  cfg.checked = true;
  const ServiceBenchResult raw = run_open_loop_raw(factory, cfg);
  EXPECT_TRUE(raw.conservation_ok) << raw.conservation_report;
  const ServiceBenchResult service = run_open_loop_service(factory, cfg);
  EXPECT_TRUE(service.conservation_ok) << service.conservation_report;
  EXPECT_GT(service.delivered, 0u);
}

TEST(ServiceBench, PoissonArrivalsThrottleOfferedLoad) {
  auto factory = [](unsigned threads, std::uint64_t) {
    return std::make_unique<Lock>(threads);
  };
  ServiceBenchConfig cfg = tiny_bench();
  cfg.duration_s = 0.05;
  cfg.arrival_hz = 10000.0;  // ~500 arrivals in the window vs millions raw
  cfg.measure_quality = false;
  const ServiceBenchResult throttled = run_open_loop_service(factory, cfg);
  EXPECT_GT(throttled.submitted, 0u);
  // Open loop: the offered rate tracks the schedule, not the queue. Allow
  // generous jitter for a 1-core container.
  EXPECT_LT(throttled.offered_per_s, 10.0 * cfg.arrival_hz);
}

TEST(ServiceBench, QualityReplayScoresServiceRelaxation) {
  auto factory = [](unsigned threads, std::uint64_t) {
    return std::make_unique<Lock>(threads);
  };
  ServiceBenchConfig cfg = tiny_bench();
  cfg.service.shards = 4;
  cfg.service.insert_batch = 16;
  cfg.service.delete_batch = 16;
  const ServiceBenchResult result = run_open_loop_service(factory, cfg);
  EXPECT_GT(result.deletions, 0u);
  EXPECT_GE(result.median_rank_error, 0.0);
  EXPECT_GE(result.max_rank_error, 0u);
}

}  // namespace
}  // namespace cpq::service
