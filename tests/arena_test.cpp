// Tests for the block-storage size-class pool (src/mm/arena.hpp): size
// class rounding, magazine reuse, oversize fallthrough, cross-thread
// recycling through the global freelists, and trim().

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <set>
#include <vector>

#include "mm/arena.hpp"
#include "platform/thread_util.hpp"

namespace cpq::mm {
namespace {

TEST(BlockPool, ChunkSizeRounding) {
  EXPECT_EQ(BlockPool::chunk_size_for(1), 64u);
  EXPECT_EQ(BlockPool::chunk_size_for(64), 64u);
  EXPECT_EQ(BlockPool::chunk_size_for(65), 128u);
  EXPECT_EQ(BlockPool::chunk_size_for(1000), 1024u);
  EXPECT_EQ(BlockPool::chunk_size_for(1u << 20), 1u << 20);
  // Oversize requests are not rounded (they bypass the pool entirely).
  EXPECT_EQ(BlockPool::chunk_size_for((1u << 20) + 1), (1u << 20) + 1);
}

TEST(BlockPool, AllocFreeRoundTripIsUsable) {
  void* p = pool_alloc(200);
  ASSERT_NE(p, nullptr);
  std::memset(p, 0xAB, 200);
  pool_free(p, 200);
}

TEST(BlockPool, FreedChunkIsReusedSameThread) {
  // Free then re-allocate the same size class on one thread: the magazine
  // must hand back a pooled chunk and the reuse stat must advance.
  void* first = pool_alloc(300);
  pool_free(first, 300);
  const auto before = BlockPool::global().stats();
  void* second = pool_alloc(300);
  const auto after = BlockPool::global().stats();
  EXPECT_EQ(second, first);
  EXPECT_EQ(after.reused, before.reused + 1);
  pool_free(second, 300);
}

TEST(BlockPool, DifferentSizeClassesDoNotMix) {
  void* small = pool_alloc(100);
  pool_free(small, 100);
  // A larger class must not return the 128-byte chunk.
  void* large = pool_alloc(5000);
  EXPECT_NE(large, small);
  pool_free(large, 5000);
  void* again = pool_alloc(100);
  EXPECT_EQ(again, small);
  pool_free(again, 100);
}

TEST(BlockPool, OversizeBypassesPool) {
  const auto before = BlockPool::global().stats();
  constexpr std::size_t big = (1u << 20) + 1;
  void* p = pool_alloc(big);
  ASSERT_NE(p, nullptr);
  std::memset(p, 0, 64);  // front must be writable
  pool_free(p, big);
  const auto after = BlockPool::global().stats();
  EXPECT_EQ(after.oversize, before.oversize + 1);
  // Oversize traffic never enters the recycled account.
  EXPECT_EQ(after.recycled, before.recycled);
}

TEST(BlockPool, CrossThreadRecyclingThroughGlobalFreelist) {
  // Overflow one thread's magazine so chunks spill into the global
  // freelist, then confirm other threads' allocations drain it (reuse
  // stat grows across the team).
  constexpr std::size_t kChunk = 512;
  constexpr int kChunks = 128;  // well past kMagazineDepth: forces spills
  std::vector<void*> ptrs;
  for (int i = 0; i < kChunks; ++i) ptrs.push_back(pool_alloc(kChunk));
  std::set<void*> unique(ptrs.begin(), ptrs.end());
  EXPECT_EQ(unique.size(), ptrs.size());
  for (void* p : ptrs) pool_free(p, kChunk);

  const auto before = BlockPool::global().stats();
  run_team(4, [&](unsigned) {
    std::vector<void*> local;
    for (int i = 0; i < kChunks / 4; ++i) local.push_back(pool_alloc(kChunk));
    for (void* p : local) pool_free(p, kChunk);
  });
  const auto after = BlockPool::global().stats();
  EXPECT_GT(after.reused, before.reused);
}

TEST(BlockPool, TrimReleasesGlobalFreelistsAndPoolStaysUsable) {
  // Park some chunks in the global freelist (spill a full magazine), trim,
  // then keep allocating: correctness must be unaffected.
  constexpr std::size_t kChunk = 2048;
  std::vector<void*> ptrs;
  for (int i = 0; i < 128; ++i) ptrs.push_back(pool_alloc(kChunk));
  for (void* p : ptrs) pool_free(p, kChunk);
  BlockPool::global().trim();
  void* p = pool_alloc(kChunk);
  ASSERT_NE(p, nullptr);
  std::memset(p, 0x5A, kChunk);
  pool_free(p, kChunk);
}

}  // namespace
}  // namespace cpq::mm
