// Property and unit tests for the sequential heaps (BinaryHeap,
// PairingHeap): heapsort equivalence against std::sort, interleaved
// operations against a std::multiset reference model, and move semantics.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <set>
#include <utility>
#include <vector>

#include "platform/rng.hpp"
#include "seq/binary_heap.hpp"
#include "seq/dary_heap.hpp"
#include "seq/pairing_heap.hpp"

namespace cpq::seq {
namespace {

template <typename Heap>
class SeqHeapTest : public ::testing::Test {};

using HeapTypes = ::testing::Types<BinaryHeap<std::uint64_t, std::uint64_t>,
                                   PairingHeap<std::uint64_t, std::uint64_t>,
                                   DaryHeap<std::uint64_t, std::uint64_t, 2>,
                                   DaryHeap<std::uint64_t, std::uint64_t, 4>,
                                   DaryHeap<std::uint64_t, std::uint64_t, 8>>;
TYPED_TEST_SUITE(SeqHeapTest, HeapTypes);

TYPED_TEST(SeqHeapTest, EmptyBehaviour) {
  TypeParam heap;
  EXPECT_TRUE(heap.empty());
  EXPECT_EQ(heap.size(), 0u);
  std::uint64_t k, v;
  EXPECT_FALSE(heap.delete_min(k, v));
}

TYPED_TEST(SeqHeapTest, SingleElement) {
  TypeParam heap;
  heap.insert(7, 70);
  EXPECT_FALSE(heap.empty());
  EXPECT_EQ(heap.min_key(), 7u);
  EXPECT_EQ(heap.min_value(), 70u);
  std::uint64_t k, v;
  ASSERT_TRUE(heap.delete_min(k, v));
  EXPECT_EQ(k, 7u);
  EXPECT_EQ(v, 70u);
  EXPECT_TRUE(heap.empty());
}

TYPED_TEST(SeqHeapTest, HeapsortMatchesStdSort) {
  for (const std::size_t n : {1u, 2u, 3u, 10u, 100u, 1000u, 10000u}) {
    TypeParam heap;
    Xoroshiro128 rng(n);
    std::vector<std::uint64_t> keys;
    keys.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint64_t key = rng.next_below(n * 2);  // force duplicates
      keys.push_back(key);
      heap.insert(key, i);
    }
    std::sort(keys.begin(), keys.end());
    for (std::size_t i = 0; i < n; ++i) {
      std::uint64_t k, v;
      ASSERT_TRUE(heap.delete_min(k, v));
      EXPECT_EQ(k, keys[i]) << "position " << i << " of " << n;
    }
    EXPECT_TRUE(heap.empty());
  }
}

TYPED_TEST(SeqHeapTest, InterleavedAgainstMultisetModel) {
  TypeParam heap;
  std::multiset<std::uint64_t> model;
  Xoroshiro128 rng(123);
  for (int op = 0; op < 50000; ++op) {
    if (model.empty() || rng.next_below(100) < 55) {
      const std::uint64_t key = rng.next_below(1000);
      heap.insert(key, 0);
      model.insert(key);
    } else {
      std::uint64_t k, v;
      ASSERT_TRUE(heap.delete_min(k, v));
      ASSERT_EQ(k, *model.begin());
      model.erase(model.begin());
    }
    ASSERT_EQ(heap.size(), model.size());
  }
}

TYPED_TEST(SeqHeapTest, MinPeeksDoNotMutate) {
  TypeParam heap;
  heap.insert(5, 1);
  heap.insert(3, 2);
  heap.insert(9, 3);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(heap.min_key(), 3u);
    EXPECT_EQ(heap.min_value(), 2u);
  }
  EXPECT_EQ(heap.size(), 3u);
}

TEST(BinaryHeap, ValidityInvariantUnderRandomOps) {
  BinaryHeap<std::uint64_t, std::uint64_t> heap;
  Xoroshiro128 rng(77);
  for (int op = 0; op < 5000; ++op) {
    if (heap.empty() || rng.next_below(2) == 0) {
      heap.insert(rng.next_below(500), 0);
    } else {
      std::uint64_t k, v;
      heap.delete_min(k, v);
    }
    ASSERT_TRUE(heap.is_valid_heap());
  }
}

TEST(BinaryHeap, ClearResets) {
  BinaryHeap<std::uint64_t, std::uint64_t> heap;
  for (int i = 0; i < 100; ++i) heap.insert(i, i);
  heap.clear();
  EXPECT_TRUE(heap.empty());
  heap.insert(1, 1);
  EXPECT_EQ(heap.size(), 1u);
}

TEST(PairingHeap, MoveTransfersOwnership) {
  PairingHeap<std::uint64_t, std::uint64_t> a;
  a.insert(4, 40);
  a.insert(2, 20);
  PairingHeap<std::uint64_t, std::uint64_t> b(std::move(a));
  EXPECT_EQ(b.size(), 2u);
  EXPECT_EQ(b.min_key(), 2u);
  PairingHeap<std::uint64_t, std::uint64_t> c;
  c.insert(1, 10);
  c = std::move(b);
  EXPECT_EQ(c.size(), 2u);
  EXPECT_EQ(c.min_key(), 2u);
}

TEST(PairingHeap, LargeDescendingInsertDoesNotOverflowStack) {
  // Descending inserts chain children; clear() and merge_pairs must both be
  // iterative for this to pass.
  PairingHeap<std::uint64_t, std::uint64_t> heap;
  const std::uint64_t n = 200000;
  for (std::uint64_t i = n; i-- > 0;) heap.insert(i, i);
  std::uint64_t k, v;
  ASSERT_TRUE(heap.delete_min(k, v));
  EXPECT_EQ(k, 0u);
}

}  // namespace
}  // namespace cpq::seq
