// Tests for the order-statistic treap (the quality benchmark's replay
// engine): rank correctness against a brute-force reference under random
// workloads, duplicate-key handling, and size bookkeeping.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "platform/rng.hpp"
#include "seq/order_statistic_tree.hpp"

namespace cpq::seq {
namespace {

using Tree = OrderStatisticTree<std::uint64_t>;
using Item = std::pair<std::uint64_t, std::uint64_t>;  // (key, id)

// Brute-force 1-based rank under (key, id) order.
std::size_t brute_rank(const std::vector<Item>& items, Item target) {
  std::size_t before = 0;
  bool present = false;
  for (const Item& item : items) {
    if (item < target) ++before;
    if (item == target) present = true;
  }
  return present ? before + 1 : 0;
}

TEST(Ost, EmptyTree) {
  Tree tree;
  EXPECT_TRUE(tree.empty());
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_EQ(tree.erase(1, 1), 0u);
  EXPECT_EQ(tree.rank_of(1, 1), 0u);
}

TEST(Ost, SingleItem) {
  Tree tree;
  tree.insert(10, 1);
  EXPECT_EQ(tree.size(), 1u);
  EXPECT_EQ(tree.min_key(), 10u);
  EXPECT_EQ(tree.rank_of(10, 1), 1u);
  EXPECT_EQ(tree.erase(10, 1), 1u);
  EXPECT_TRUE(tree.empty());
}

TEST(Ost, RanksOfSortedInsertions) {
  Tree tree;
  for (std::uint64_t i = 0; i < 100; ++i) tree.insert(i, i);
  for (std::uint64_t i = 0; i < 100; ++i) {
    EXPECT_EQ(tree.rank_of(i, i), i + 1);
  }
  // Deleting the minimum always reports rank 1.
  for (std::uint64_t i = 0; i < 100; ++i) {
    EXPECT_EQ(tree.erase(i, i), 1u);
  }
}

TEST(Ost, DuplicateKeysOrderedById) {
  Tree tree;
  tree.insert(5, 30);
  tree.insert(5, 10);
  tree.insert(5, 20);
  EXPECT_EQ(tree.rank_of(5, 10), 1u);
  EXPECT_EQ(tree.rank_of(5, 20), 2u);
  EXPECT_EQ(tree.rank_of(5, 30), 3u);
  EXPECT_EQ(tree.erase(5, 20), 2u);
  EXPECT_EQ(tree.rank_of(5, 30), 2u);
}

TEST(Ost, EraseMissingReturnsZeroAndKeepsTree) {
  Tree tree;
  tree.insert(1, 1);
  tree.insert(2, 2);
  EXPECT_EQ(tree.erase(1, 99), 0u);
  EXPECT_EQ(tree.erase(3, 1), 0u);
  EXPECT_EQ(tree.size(), 2u);
  EXPECT_EQ(tree.rank_of(2, 2), 2u);
}

class OstRandomized : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(OstRandomized, MatchesBruteForce) {
  Tree tree(GetParam());
  Xoroshiro128 rng(GetParam() * 31 + 7);
  std::vector<Item> model;
  std::uint64_t next_id = 0;
  for (int op = 0; op < 4000; ++op) {
    const bool do_insert = model.empty() || rng.next_below(100) < 60;
    if (do_insert) {
      const Item item(rng.next_below(50), next_id++);  // heavy duplicates
      tree.insert(item.first, item.second);
      model.push_back(item);
    } else {
      const std::size_t pick = rng.next_below(model.size());
      const Item item = model[pick];
      const std::size_t expected = brute_rank(model, item);
      ASSERT_EQ(tree.rank_of(item.first, item.second), expected);
      ASSERT_EQ(tree.erase(item.first, item.second), expected);
      model.erase(model.begin() + pick);
    }
    ASSERT_EQ(tree.size(), model.size());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OstRandomized,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(Ost, MinKeyTracksSmallest) {
  Tree tree;
  tree.insert(50, 1);
  tree.insert(20, 2);
  tree.insert(80, 3);
  EXPECT_EQ(tree.min_key(), 20u);
  tree.erase(20, 2);
  EXPECT_EQ(tree.min_key(), 50u);
}

TEST(Ost, LargeSequentialStaysBalancedEnough) {
  // Treap priorities keep the expected depth logarithmic even for sorted
  // insertion; 200k sorted inserts + full drain must complete quickly and
  // report rank 1 at every step.
  Tree tree;
  const std::uint64_t n = 200000;
  for (std::uint64_t i = 0; i < n; ++i) tree.insert(i, i);
  for (std::uint64_t i = 0; i < n; ++i) {
    ASSERT_EQ(tree.erase(i, i), 1u);
  }
  EXPECT_TRUE(tree.empty());
}

}  // namespace
}  // namespace cpq::seq
