// Tests for the perf_event_open hardware-counter reader
// (src/obs/perf_counters.hpp). The central property is graceful
// degradation: containers and CI runners routinely deny perf access, so
// every test must pass BOTH with and without working counters — events
// that cannot be opened read back as NaN and nothing crashes.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>

#include "obs/perf_counters.hpp"

namespace cpq::obs {
namespace {

TEST(PerfCountersTest, EventNamesCoverEveryEvent) {
  EXPECT_STREQ(PerfCounters::event_name(0), "cycles");
  EXPECT_STREQ(PerfCounters::event_name(1), "instructions");
  EXPECT_STREQ(PerfCounters::event_name(2), "llc_misses");
  EXPECT_STREQ(PerfCounters::event_name(3), "branch_misses");
  EXPECT_STREQ(PerfCounters::event_name(PerfCounters::kNumEvents), "?");
}

TEST(PerfCountersTest, UnopenedCountersReadAllNaN) {
  PerfCounters counters;
  EXPECT_FALSE(counters.available());
  const auto values = counters.read();
  for (unsigned i = 0; i < PerfCounters::kNumEvents; ++i) {
    EXPECT_TRUE(std::isnan(values[i])) << PerfCounters::event_name(i);
  }
}

// The graceful-degradation contract end to end: open/start/work/stop/read
// must succeed whether or not the environment grants perf_event_open, and
// every reported value is either NaN (unavailable) or a sane finite count.
TEST(PerfCountersTest, MeasuresOrDegradesGracefully) {
  PerfCounters counters;
  const bool available = counters.open();
  counters.start();
  volatile std::uint64_t sink = 0;
  for (std::uint64_t i = 0; i < 2'000'000; ++i) sink = sink + i;
  counters.stop();
  const auto values = counters.read();
  counters.close();

  bool any_measured = false;
  for (unsigned i = 0; i < PerfCounters::kNumEvents; ++i) {
    if (std::isnan(values[i])) continue;
    any_measured = true;
    EXPECT_TRUE(std::isfinite(values[i])) << PerfCounters::event_name(i);
    EXPECT_GE(values[i], 0.0) << PerfCounters::event_name(i);
  }
  if (!available) {
    EXPECT_FALSE(any_measured);
  } else {
    // At least one event opened; a 2M-iteration loop must have retired a
    // nonzero number of instructions/cycles on whichever events measured.
    double total = 0.0;
    for (const double v : values) {
      if (!std::isnan(v)) total += v;
    }
    EXPECT_GT(total, 0.0);
  }
}

TEST(PerfCountersTest, ReopenAndCloseAreIdempotent) {
  PerfCounters counters;
  counters.open();
  counters.open();  // re-open closes the previous descriptors first
  counters.start();
  counters.stop();
  counters.close();
  counters.close();
  EXPECT_FALSE(counters.available());
  const auto values = counters.read();
  for (const double v : values) EXPECT_TRUE(std::isnan(v));
}

}  // namespace
}  // namespace cpq::obs
