// Whitebox and blackbox tests for the lock-free skiplist substrate through
// its two facades (LindenQueue, SprayList): strict ordering, duplicate keys,
// prefix restructuring, deferred reclamation via unsafe_purge, and
// concurrent claim-exactly-once stress.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <set>
#include <vector>

#include "platform/rng.hpp"
#include "platform/thread_util.hpp"
#include "queues/linden.hpp"
#include "queues/spraylist.hpp"

namespace cpq {
namespace {

using K = std::uint64_t;
using V = std::uint64_t;

TEST(Linden, EmptyDeleteFails) {
  LindenQueue<K, V> queue(1);
  auto handle = queue.get_handle(0);
  K k;
  V v;
  EXPECT_FALSE(handle.delete_min(k, v));
}

TEST(Linden, StrictOrderSequential) {
  LindenQueue<K, V> queue(1);
  auto handle = queue.get_handle(0);
  Xoroshiro128 rng(42);
  std::vector<K> keys;
  for (int i = 0; i < 5000; ++i) {
    const K key = rng.next_below(2000);  // duplicates on purpose
    keys.push_back(key);
    handle.insert(key, i);
  }
  std::sort(keys.begin(), keys.end());
  for (std::size_t i = 0; i < keys.size(); ++i) {
    K k;
    V v;
    ASSERT_TRUE(handle.delete_min(k, v));
    ASSERT_EQ(k, keys[i]) << "at " << i;
  }
  K k;
  V v;
  EXPECT_FALSE(handle.delete_min(k, v));
}

TEST(Linden, InterleavedMatchesModel) {
  LindenQueue<K, V> queue(1);
  auto handle = queue.get_handle(0);
  std::multiset<K> model;
  Xoroshiro128 rng(7);
  for (int op = 0; op < 30000; ++op) {
    if (model.empty() || rng.next_below(100) < 55) {
      const K key = rng.next_below(300);
      handle.insert(key, 0);
      model.insert(key);
    } else {
      K k;
      V v;
      ASSERT_TRUE(handle.delete_min(k, v));
      ASSERT_EQ(k, *model.begin());
      model.erase(model.begin());
    }
  }
}

TEST(Linden, PurgeReclaimsDeletedNodes) {
  LindenQueue<K, V> queue(1, /*prefix_bound=*/4);
  auto handle = queue.get_handle(0);
  for (int round = 0; round < 10; ++round) {
    for (int i = 0; i < 1000; ++i) handle.insert(i, i);
    K k;
    V v;
    for (int i = 0; i < 1000; ++i) ASSERT_TRUE(handle.delete_min(k, v));
    EXPECT_EQ(queue.unsafe_size(), 0u);
    queue.unsafe_purge();
    EXPECT_EQ(queue.unsafe_size(), 0u);
  }
  // Queue still functional after repeated purges.
  handle.insert(42, 1);
  K k;
  V v;
  ASSERT_TRUE(handle.delete_min(k, v));
  EXPECT_EQ(k, 42u);
}

TEST(Linden, SmallerKeyInsertedAfterDeletionsComesOutFirst) {
  // Deleted-prefix handling: insert keys below the already-deleted range.
  LindenQueue<K, V> queue(1, /*prefix_bound=*/2);
  auto handle = queue.get_handle(0);
  for (int i = 100; i < 200; ++i) handle.insert(i, i);
  K k;
  V v;
  for (int i = 0; i < 50; ++i) ASSERT_TRUE(handle.delete_min(k, v));
  handle.insert(5, 5);  // below everything, lands before live nodes
  ASSERT_TRUE(handle.delete_min(k, v));
  EXPECT_EQ(k, 5u);
}

TEST(Linden, ExtremeSentinelKeysAreInsertable) {
  LindenQueue<K, V> queue(1);
  auto handle = queue.get_handle(0);
  handle.insert(0, 1);
  handle.insert(std::numeric_limits<K>::max(), 2);
  handle.insert(17, 3);
  K k;
  V v;
  ASSERT_TRUE(handle.delete_min(k, v));
  EXPECT_EQ(k, 0u);
  ASSERT_TRUE(handle.delete_min(k, v));
  EXPECT_EQ(k, 17u);
  ASSERT_TRUE(handle.delete_min(k, v));
  EXPECT_EQ(k, std::numeric_limits<K>::max());
}

// Concurrent exactly-once: P threads insert disjoint values then everyone
// deletes; the union of deletions must be exactly the inserted multiset.
template <typename Queue>
void exactly_once_stress(Queue& queue, unsigned threads,
                         std::uint64_t per_thread) {
  std::vector<std::vector<V>> deleted(threads);
  run_team(threads, [&](unsigned tid) {
    auto handle = queue.get_handle(tid);
    Xoroshiro128 rng(tid + 1);
    for (std::uint64_t i = 0; i < per_thread; ++i) {
      const V value = (static_cast<V>(tid) << 32) | i;
      handle.insert(rng.next_below(1000), value);
    }
  });
  std::atomic<std::uint64_t> remaining{threads * per_thread};
  run_team(threads, [&](unsigned tid) {
    auto handle = queue.get_handle(tid);
    unsigned misses = 0;
    while (remaining.load(std::memory_order_relaxed) > 0 && misses < 200) {
      K k;
      V v;
      if (handle.delete_min(k, v)) {
        deleted[tid].push_back(v);
        remaining.fetch_sub(1, std::memory_order_relaxed);
        misses = 0;
      } else {
        ++misses;
      }
    }
  });
  std::set<V> all;
  std::uint64_t total = 0;
  for (const auto& per : deleted) {
    for (V v : per) {
      EXPECT_TRUE(all.insert(v).second) << "duplicate delivery of " << v;
      ++total;
    }
  }
  EXPECT_EQ(total, threads * per_thread) << "lost items";
}

TEST(Linden, ConcurrentExactlyOnce) {
  LindenQueue<K, V> queue(4);
  exactly_once_stress(queue, 4, 5000);
}

TEST(Spray, ConcurrentExactlyOnce) {
  SprayList<K, V> queue(4);
  exactly_once_stress(queue, 4, 5000);
}

TEST(Spray, SequentialDrainReturnsAllItems) {
  SprayList<K, V> queue(1);
  auto handle = queue.get_handle(0);
  std::multiset<K> model;
  Xoroshiro128 rng(3);
  for (int i = 0; i < 3000; ++i) {
    const K key = rng.next_below(10000);
    handle.insert(key, i);
    model.insert(key);
  }
  std::multiset<K> drained;
  K k;
  V v;
  while (handle.delete_min(k, v)) drained.insert(k);
  EXPECT_EQ(drained, model);
}

TEST(Spray, RelaxationIsBoundedInPractice) {
  // Sprays with P=8 parameters over a 100k-element queue: deleted ranks must
  // stay far from the tail (statistical sanity, generous bound).
  SprayList<K, V> queue(8);
  auto handle = queue.get_handle(0);
  const std::uint64_t n = 100000;
  for (std::uint64_t i = 0; i < n; ++i) handle.insert(i, i);
  K max_seen = 0;
  for (int i = 0; i < 1000; ++i) {
    K k;
    V v;
    ASSERT_TRUE(handle.delete_min(k, v));
    max_seen = std::max(max_seen, k);
  }
  // 1000 deletions, so even a strict queue reaches key 999; a spray should
  // stay within a small multiple of P log^3 P of the front.
  EXPECT_LT(max_seen, 20000u);
}

TEST(Spray, ConcurrentMixedStress) {
  SprayList<K, V> queue(4);
  std::atomic<std::uint64_t> inserted{0};
  std::atomic<std::uint64_t> deleted{0};
  run_team(4, [&](unsigned tid) {
    auto handle = queue.get_handle(tid);
    Xoroshiro128 rng(tid + 99);
    for (int op = 0; op < 20000; ++op) {
      if (rng.next_below(2) == 0) {
        handle.insert(rng.next_below(1 << 16), tid);
        inserted.fetch_add(1, std::memory_order_relaxed);
      } else {
        K k;
        V v;
        if (handle.delete_min(k, v)) {
          deleted.fetch_add(1, std::memory_order_relaxed);
        }
      }
    }
  });
  EXPECT_EQ(queue.unsafe_size(), inserted.load() - deleted.load());
}

}  // namespace
}  // namespace cpq
