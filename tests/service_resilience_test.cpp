// Overload-resilience coverage: the building blocks in service/resilience.hpp
// (DeadlinePool, TierMap/tier_admitted, CircuitBreaker), their integration
// into PriorityService (deadline shedding, tiered admission, retry,
// breaker-driven rerouting), close() idempotence under concurrent inserts,
// the shed-aware open-loop bench, and stall-dump filename uniqueness.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "queues/globallock.hpp"
#include "service/priority_service.hpp"
#include "service/resilience.hpp"
#include "service/service_bench.hpp"
#include "validation/checked_queue.hpp"
#include "validation/watchdog.hpp"

namespace cpq::service {
namespace {

using K = std::uint64_t;
using V = std::uint64_t;
using Lock = GlobalLockQueue<K, V>;

std::unique_ptr<PriorityService<Lock>> make_lock_service(
    unsigned threads, const ServiceConfig& cfg) {
  return std::make_unique<PriorityService<Lock>>(
      threads, cfg, [&](unsigned) { return std::make_unique<Lock>(threads); });
}

// ---------------------------------------------------------------- pool

TEST(DeadlinePool, AcquireTakeRoundTrips) {
  DeadlinePool<V> pool(4);
  std::uint32_t slot = DeadlinePool<V>::kNilSlot;
  ASSERT_TRUE(pool.acquire(777, 123456, slot));
  ASSERT_NE(slot, DeadlinePool<V>::kNilSlot);
  const auto entry = pool.take(slot);
  EXPECT_EQ(entry.value, 777u);
  EXPECT_EQ(entry.deadline_us, 123456u);
  EXPECT_EQ(pool.exhausted(), 0u);
}

TEST(DeadlinePool, ExhaustsAtCapacityAndRecyclesFreedSlots) {
  DeadlinePool<V> pool(2);
  std::uint32_t a = 0;
  std::uint32_t b = 0;
  std::uint32_t c = 0;
  ASSERT_TRUE(pool.acquire(1, 10, a));
  ASSERT_TRUE(pool.acquire(2, 20, b));
  EXPECT_FALSE(pool.acquire(3, 30, c));
  EXPECT_EQ(pool.exhausted(), 1u);
  EXPECT_EQ(pool.take(a).value, 1u);
  ASSERT_TRUE(pool.acquire(4, 40, c));
  EXPECT_EQ(pool.take(c).value, 4u);
  EXPECT_EQ(pool.take(b).value, 2u);
}

TEST(DeadlinePool, ConcurrentAcquireTakeNeverDuplicatesSlots) {
  DeadlinePool<V> pool(16);
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> ops{0};
  std::vector<std::thread> team;
  for (unsigned t = 0; t < 4; ++t) {
    team.emplace_back([&, t] {
      std::uint32_t slots[4];
      while (!stop.load(std::memory_order_relaxed)) {
        unsigned held = 0;
        for (unsigned i = 0; i < 4; ++i) {
          if (pool.acquire(t * 100 + i, i, slots[held])) ++held;
        }
        for (unsigned i = 0; i < held; ++i) {
          const auto entry = pool.take(slots[i]);
          // The slot content must be what *this* thread wrote: a duplicated
          // slot hand-out would tear these.
          EXPECT_EQ(entry.value / 100, t);
          EXPECT_EQ(entry.deadline_us, entry.value % 100);
        }
        ops.fetch_add(held, std::memory_order_relaxed);
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  stop.store(true);
  for (auto& t : team) t.join();
  EXPECT_GT(ops.load(), 0u);
}

// ---------------------------------------------------------------- tiers

TEST(TierMap, UniformSplitAndLookup) {
  const TierMap map = TierMap::uniform(4, 400);
  EXPECT_EQ(map.tiers(), 4u);
  EXPECT_EQ(map.tier_of(0), 0u);
  EXPECT_EQ(map.tier_of(99), 0u);
  EXPECT_EQ(map.tier_of(100), 1u);
  EXPECT_EQ(map.tier_of(250), 2u);
  EXPECT_EQ(map.tier_of(399), 3u);
  EXPECT_EQ(map.tier_of(5000), 3u);  // beyond key_space: lowest priority
}

TEST(TierMap, FewerThanTwoTiersDegeneratesToSingleTier) {
  EXPECT_EQ(TierMap::uniform(0, 100).tiers(), 1u);
  EXPECT_EQ(TierMap::uniform(1, 100).tiers(), 1u);
}

TEST(TierAdmitted, GraduatedThresholds) {
  // capacity 100, 4 tiers: allowances 100 / 75 / 50 / 25.
  EXPECT_TRUE(tier_admitted(99, 100, 0, 4));
  EXPECT_FALSE(tier_admitted(100, 100, 0, 4));
  EXPECT_TRUE(tier_admitted(74, 100, 1, 4));
  EXPECT_FALSE(tier_admitted(75, 100, 1, 4));
  EXPECT_TRUE(tier_admitted(49, 100, 2, 4));
  EXPECT_FALSE(tier_admitted(50, 100, 2, 4));
  EXPECT_TRUE(tier_admitted(24, 100, 3, 4));
  EXPECT_FALSE(tier_admitted(25, 100, 3, 4));
  // Out-of-range tier clamps to the lowest priority.
  EXPECT_FALSE(tier_admitted(25, 100, 9, 4));
  // Single tier: plain capacity check.
  EXPECT_TRUE(tier_admitted(99, 100, 0, 1));
  EXPECT_FALSE(tier_admitted(100, 100, 0, 1));
}

// ---------------------------------------------------------------- breaker

TEST(CircuitBreaker, DisabledAlwaysAllows) {
  CircuitBreaker breaker;
  EXPECT_TRUE(breaker.allow(0));
  EXPECT_FALSE(breaker.record(0, 1'000'000));
  EXPECT_TRUE(breaker.allow(1'000'000));
  EXPECT_EQ(breaker.trips(), 0u);
}

TEST(CircuitBreaker, TripsAfterConsecutiveSlowBatches) {
  CircuitBreaker breaker;
  breaker.configure(/*trip_us=*/100, /*consecutive=*/2, /*cooldown_us=*/1000);
  EXPECT_FALSE(breaker.record(0, 500));   // first slow batch: streak 1
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  EXPECT_TRUE(breaker.record(10, 500));   // second: trips
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  EXPECT_EQ(breaker.trips(), 1u);
  EXPECT_FALSE(breaker.allow(500));       // cooling down
  EXPECT_TRUE(breaker.allow(1500));       // probe admitted
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kHalfOpen);
}

TEST(CircuitBreaker, FastBatchResetsSlowStreak) {
  CircuitBreaker breaker;
  breaker.configure(100, 2, 1000);
  EXPECT_FALSE(breaker.record(0, 500));
  EXPECT_FALSE(breaker.record(10, 5));  // fast: streak resets
  EXPECT_FALSE(breaker.record(20, 500));
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
}

TEST(CircuitBreaker, HalfOpenProbeClosesOnFastReopensOnSlow) {
  CircuitBreaker breaker;
  breaker.configure(100, 1, 1000);
  ASSERT_TRUE(breaker.record(0, 500));
  ASSERT_TRUE(breaker.allow(2000));  // probe
  EXPECT_FALSE(breaker.record(2100, 5));  // fast probe: closed again
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  ASSERT_TRUE(breaker.record(2200, 500));  // trip again
  ASSERT_TRUE(breaker.allow(3300));
  EXPECT_TRUE(breaker.record(3400, 500));  // slow probe: reopens
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  EXPECT_EQ(breaker.trips(), 3u);
}

TEST(CircuitBreaker, OnlyOneProbeWinsTheHalfOpenToken) {
  CircuitBreaker breaker;
  breaker.configure(100, 1, 1000);
  ASSERT_TRUE(breaker.record(0, 500));
  unsigned admitted = 0;
  for (unsigned i = 0; i < 8; ++i) {
    if (breaker.allow(1500)) ++admitted;
  }
  EXPECT_EQ(admitted, 1u);
}

// ------------------------------------------------------- deadline shedding

TEST(ServiceResilience, ExpiredTasksAreShedAtPopAndCounted) {
  ServiceConfig cfg;
  cfg.shards = 1;
  cfg.insert_batch = 1;
  cfg.delete_batch = 1;
  cfg.ttl_us = 1;  // everything expires almost immediately
  auto service = make_lock_service(1, cfg);
  std::vector<std::pair<K, V>> shed;
  service->set_shed_sink(
      [&shed](K key, V value) { shed.emplace_back(key, value); });
  auto handle = service->get_handle(0);
  for (K key = 1; key <= 8; ++key) handle.insert(key, key + 100);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  K key;
  V value;
  EXPECT_FALSE(handle.delete_min(key, value));  // all expired
  EXPECT_EQ(shed.size(), 8u);
  for (const auto& [k, v] : shed) EXPECT_EQ(v, k + 100);
  const ServiceStats stats = service->stats();
  EXPECT_EQ(stats.shed_deadline, 8u);
  EXPECT_EQ(stats.delivered, 0u);
}

TEST(ServiceResilience, UnexpiredTasksSurviveTheTtl) {
  ServiceConfig cfg;
  cfg.shards = 1;
  cfg.ttl_us = 60'000'000;  // one minute: nothing expires in-test
  auto service = make_lock_service(1, cfg);
  auto handle = service->get_handle(0);
  for (K key : {5u, 3u, 9u}) handle.insert(key, key);
  K key;
  V value;
  std::vector<K> popped;
  while (handle.delete_min(key, value)) popped.push_back(key);
  EXPECT_EQ(popped, (std::vector<K>{3, 5, 9}));
  EXPECT_EQ(service->stats().shed_deadline, 0u);
}

TEST(ServiceResilience, PoolExhaustionFallsBackToNoDeadlineWithoutLoss) {
  ServiceConfig cfg;
  cfg.shards = 1;
  cfg.insert_batch = 1;
  cfg.ttl_us = 1;
  cfg.deadline_slots = 2;  // tiny pool: the rest must travel untagged
  auto service = make_lock_service(1, cfg);
  auto handle = service->get_handle(0);
  for (K key = 1; key <= 6; ++key) handle.insert(key, key);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  K key;
  V value;
  std::uint64_t delivered = 0;
  while (handle.delete_min(key, value)) ++delivered;
  const ServiceStats stats = service->stats();
  EXPECT_GT(stats.pool_exhausted, 0u);
  // Tagged tasks shed, untagged tasks delivered — but nothing vanished.
  EXPECT_EQ(delivered + stats.shed_deadline, 6u);
}

// ------------------------------------------------------- tiered admission

TEST(ServiceResilience, TieredAdmissionRefusesLowPriorityFirst) {
  ServiceConfig cfg;
  cfg.shards = 1;
  cfg.insert_batch = 1;
  cfg.max_in_flight = 8;
  cfg.policy = AdmissionPolicy::kTiered;
  cfg.tiers = 2;
  cfg.tier_key_space = 100;  // keys < 50 are tier 0, >= 50 tier 1
  auto service = make_lock_service(1, cfg);
  auto handle = service->get_handle(0);
  // Fill half the window: tier 1 (allowance 4) is now refused, tier 0 is not.
  for (K key = 0; key < 4; ++key) ASSERT_TRUE(handle.try_submit(key, key));
  EXPECT_FALSE(handle.try_submit(90, 90));
  EXPECT_TRUE(handle.try_submit(1, 1));
  const ServiceStats stats = service->stats();
  EXPECT_EQ(stats.tier_rejected, 1u);
  EXPECT_EQ(stats.rejected, 1u);
}

// ----------------------------------------------------------------- retry

TEST(ServiceResilience, SubmitWithRetryBacksOffThenGivesUp) {
  ServiceConfig cfg;
  cfg.shards = 1;
  cfg.insert_batch = 1;
  cfg.max_in_flight = 1;
  cfg.policy = AdmissionPolicy::kReject;
  cfg.retry_limit = 2;
  cfg.retry_base_us = 10;
  auto service = make_lock_service(1, cfg);
  auto handle = service->get_handle(0);
  ASSERT_TRUE(handle.submit_with_retry(1, 1));
  // Window full and nobody pops: the retries must exhaust.
  EXPECT_FALSE(handle.submit_with_retry(2, 2));
  const ServiceStats stats = service->stats();
  EXPECT_EQ(stats.retries, 2u);
  EXPECT_EQ(stats.retry_exhausted, 1u);
}

TEST(ServiceResilience, SubmitWithRetrySucceedsWhenWindowDrains) {
  ServiceConfig cfg;
  cfg.shards = 1;
  cfg.insert_batch = 1;
  cfg.delete_batch = 1;
  cfg.max_in_flight = 1;
  cfg.policy = AdmissionPolicy::kReject;
  cfg.retry_limit = 64;
  cfg.retry_base_us = 100;
  auto service = make_lock_service(2, cfg);
  auto producer = service->get_handle(0);
  ASSERT_TRUE(producer.try_submit(1, 1));
  std::thread drainer([&] {
    // Pop only after the submitter has provably been rejected at least
    // once — a fixed sleep loses this race on a loaded 1-CPU box (the
    // main thread can be descheduled past it, and the first attempt then
    // succeeds with zero retries). Deadline-bounded so a wedged
    // submitter still fails the test instead of hanging it.
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (service->stats().retries == 0 &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::yield();
    }
    auto consumer = service->get_handle(1);
    K key;
    V value;
    EXPECT_TRUE(consumer.delete_min(key, value));
  });
  EXPECT_TRUE(producer.submit_with_retry(2, 2));
  drainer.join();
  EXPECT_GT(service->stats().retries, 0u);
}

// --------------------------------------------------------------- breaker

TEST(ServiceResilience, StalledShardTripsBreakerAndReroutes) {
  ServiceConfig cfg;
  cfg.shards = 2;
  cfg.insert_batch = 4;
  cfg.delete_batch = 4;
  cfg.breaker_trip_us = 500;
  cfg.breaker_consecutive = 1;
  cfg.breaker_cooldown_us = 60'000'000;  // stays open for the whole test
  auto service = make_lock_service(1, cfg);
  service->chaos_stall_shard(0, 2'000);  // every shard-0 batch takes >= 2 ms
  auto handle = service->get_handle(0);
  // Two-choice routing will hit shard 0 quickly; after the first slow flush
  // the breaker opens and later flushes steer to shard 1.
  for (K key = 0; key < 64; ++key) handle.insert(key, key);
  handle.flush();
  const ServiceStats stats = service->stats();
  EXPECT_GT(stats.breaker_trips, 0u);
  EXPECT_GT(stats.reroutes, 0u);
  EXPECT_TRUE(stats.shards[0].breaker_open);
  // The stalled shard still drains: the breaker only steers routing, the
  // emptiness sweep visits every shard.
  service->chaos_stall_shard(0, 0);
  K key;
  V value;
  std::uint64_t delivered = 0;
  while (handle.delete_min(key, value)) ++delivered;
  EXPECT_EQ(delivered, 64u);
}

// ------------------------------------------------------------- close()

TEST(ServiceResilience, CloseIsIdempotent) {
  auto service = make_lock_service(1, {});
  EXPECT_FALSE(service->closed());
  EXPECT_TRUE(service->close());   // this call transitioned it
  EXPECT_TRUE(service->closed());
  EXPECT_FALSE(service->close());  // already closed
  EXPECT_TRUE(service->closed());
}

TEST(ServiceResilience, ConcurrentClosersElectExactlyOneWinner) {
  for (unsigned round = 0; round < 20; ++round) {
    auto service = make_lock_service(4, {});
    std::atomic<unsigned> winners{0};
    std::vector<std::thread> team;
    for (unsigned t = 0; t < 4; ++t) {
      team.emplace_back([&] {
        if (service->close()) winners.fetch_add(1);
      });
    }
    for (auto& t : team) t.join();
    EXPECT_EQ(winners.load(), 1u);
  }
}

TEST(ServiceResilience, CloseRacingInsertsLosesNoAcceptedTask) {
  // Submitters hammer try_submit while another thread closes the service:
  // every accepted task must come back out of delete_min + drain, and
  // post-close submissions must be refused, not dropped. (The TSan CI job
  // runs this test; the plain run still catches count mismatches.)
  constexpr unsigned kSubmitters = 3;
  ServiceConfig cfg;
  cfg.shards = 2;
  cfg.insert_batch = 4;
  auto service = make_lock_service(kSubmitters, cfg);
  std::atomic<std::uint64_t> accepted{0};
  std::vector<std::thread> team;
  for (unsigned t = 0; t < kSubmitters; ++t) {
    team.emplace_back([&, t] {
      auto handle = service->get_handle(t);
      for (std::uint64_t i = 0; i < 20'000; ++i) {
        if (handle.try_submit(i, (std::uint64_t{t} << 32) | i)) {
          accepted.fetch_add(1, std::memory_order_relaxed);
        }
      }
      // Handle destructor flushes any buffered accepted tasks.
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(1));
  EXPECT_TRUE(service->close());
  for (auto& t : team) t.join();
  std::uint64_t recovered = 0;
  recovered += service->drain([](K, V) {});
  EXPECT_EQ(recovered, accepted.load());
  const ServiceStats stats = service->stats();
  EXPECT_EQ(stats.submitted, accepted.load());
}

// ------------------------------------------------------------ bench glue

TEST(ServiceBench, SojournHistogramIsPopulated) {
  ServiceBenchConfig cfg;
  cfg.producers = 1;
  cfg.consumers = 1;
  cfg.duration_s = 0.05;
  cfg.arrival_hz = 5000.0;
  cfg.pin_threads = false;
  cfg.watchdog_s = 0.0;
  auto result = run_open_loop_service(
      [](unsigned threads, std::uint64_t) {
        return std::make_unique<Lock>(threads);
      },
      cfg);
  EXPECT_GT(result.delivered, 0u);
  EXPECT_GT(result.sojourn_ns.count(), 0u);
  EXPECT_GT(result.sojourn_ns.quantile(0.99), 0.0);
}

TEST(ServiceBench, CheckedRunWithSheddingStaysConservation) {
  ServiceBenchConfig cfg;
  cfg.producers = 1;
  cfg.consumers = 1;
  cfg.duration_s = 0.05;
  cfg.arrival_hz = 20000.0;
  cfg.pin_threads = false;
  cfg.watchdog_s = 0.0;
  cfg.checked = true;
  cfg.service.ttl_us = 200;  // aggressive shedding under the offered load
  auto result = run_open_loop_service(
      [](unsigned threads, std::uint64_t) {
        return std::make_unique<Lock>(threads);
      },
      cfg);
  EXPECT_TRUE(result.conservation_ok) << result.conservation_report;
  EXPECT_EQ(result.shed, result.stats.shed_deadline);
}

// ----------------------------------------------------------- stall dumps

TEST(StallDump, PathsAreUniqueAndCarryThePid) {
  const std::string pid = std::to_string(validation::stall_dump_pid());
  std::set<std::string> paths;
  for (unsigned i = 0; i < 100; ++i) {
    const std::string path = validation::stall_dump_path("/tmp", "bench-1");
    EXPECT_NE(path.find("/tmp/stall_bench-1_" + pid + "_"), std::string::npos)
        << path;
    paths.insert(path);
  }
  EXPECT_EQ(paths.size(), 100u);
}

TEST(StallDump, ConcurrentCallersNeverCollide) {
  std::vector<std::vector<std::string>> per_thread(4);
  std::vector<std::thread> team;
  for (unsigned t = 0; t < 4; ++t) {
    team.emplace_back([&, t] {
      for (unsigned i = 0; i < 200; ++i) {
        per_thread[t].push_back(validation::stall_dump_path("/tmp", "x"));
      }
    });
  }
  for (auto& t : team) t.join();
  std::set<std::string> all;
  for (const auto& v : per_thread) all.insert(v.begin(), v.end());
  EXPECT_EQ(all.size(), 800u);
}

TEST(StallDump, LabelIsSanitizedForTheFilesystem) {
  const std::string path =
      validation::stall_dump_path("/tmp", "a/b c\t*?");
  EXPECT_NE(path.find("/tmp/stall_a_b_c__"), std::string::npos) << path;
  const std::string empty = validation::stall_dump_path("/tmp", "");
  EXPECT_NE(empty.find("/tmp/stall_unnamed_"), std::string::npos) << empty;
}

}  // namespace
}  // namespace cpq::service
