// Mound-specific tests: tree growth, the heap-on-heads + sorted-lists
// structural invariants, moundify behaviour, and concurrent stress beyond
// the generic typed suites.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <set>
#include <vector>

#include "platform/rng.hpp"
#include "platform/thread_util.hpp"
#include "queues/mound.hpp"

namespace cpq {
namespace {

using K = std::uint64_t;
using V = std::uint64_t;

TEST(Mound, EmptyBehaviour) {
  Mound<K, V> mound(1);
  auto handle = mound.get_handle(0);
  K k;
  V v;
  EXPECT_FALSE(handle.delete_min(k, v));
  EXPECT_EQ(mound.unsafe_size(), 0u);
  EXPECT_TRUE(mound.unsafe_invariants_hold());
}

TEST(Mound, SortedDrain) {
  Mound<K, V> mound(1);
  auto handle = mound.get_handle(0);
  Xoroshiro128 rng(5);
  std::vector<K> keys;
  for (int i = 0; i < 5000; ++i) {
    const K key = rng.next_below(100000);
    keys.push_back(key);
    handle.insert(key, i);
  }
  EXPECT_EQ(mound.unsafe_size(), keys.size());
  EXPECT_TRUE(mound.unsafe_invariants_hold());
  std::sort(keys.begin(), keys.end());
  for (std::size_t i = 0; i < keys.size(); ++i) {
    K k;
    V v;
    ASSERT_TRUE(handle.delete_min(k, v));
    ASSERT_EQ(k, keys[i]) << "at " << i;
  }
  EXPECT_EQ(mound.unsafe_size(), 0u);
}

TEST(Mound, InvariantsUnderMixedOps) {
  Mound<K, V> mound(1);
  auto handle = mound.get_handle(0);
  Xoroshiro128 rng(9);
  std::multiset<K> model;
  for (int op = 0; op < 20000; ++op) {
    if (model.empty() || rng.next_below(100) < 55) {
      const K key = rng.next_below(5000);
      handle.insert(key, op);
      model.insert(key);
    } else {
      K k;
      V v;
      ASSERT_TRUE(handle.delete_min(k, v));
      ASSERT_EQ(k, *model.begin());
      model.erase(model.begin());
    }
    if (op % 1024 == 0) {
      ASSERT_TRUE(mound.unsafe_invariants_hold()) << "op " << op;
    }
  }
  ASSERT_TRUE(mound.unsafe_invariants_hold());
}

TEST(Mound, GrowsBeyondInitialDepth) {
  // initial_depth 1 => 3 nodes; thousands of items force repeated growth.
  Mound<K, V> mound(1, /*seed=*/1, /*initial_depth=*/1);
  auto handle = mound.get_handle(0);
  // Descending inserts are the growth worst case: each new key is smaller,
  // so it always fits near the root... ascending is the opposite. Use both.
  for (K i = 0; i < 3000; ++i) handle.insert(i, i);
  for (K i = 6000; i-- > 3000;) handle.insert(i, i);
  EXPECT_EQ(mound.unsafe_size(), 6000u);
  EXPECT_TRUE(mound.unsafe_invariants_hold());
  K k;
  V v;
  for (K i = 0; i < 6000; ++i) {
    ASSERT_TRUE(handle.delete_min(k, v));
    ASSERT_EQ(k, i);
  }
}

TEST(Mound, DuplicateKeysDrainFully) {
  Mound<K, V> mound(1);
  auto handle = mound.get_handle(0);
  for (int i = 0; i < 2000; ++i) handle.insert(7, i);
  std::set<V> values;
  K k;
  V v;
  while (handle.delete_min(k, v)) {
    EXPECT_EQ(k, 7u);
    EXPECT_TRUE(values.insert(v).second);
  }
  EXPECT_EQ(values.size(), 2000u);
}

TEST(Mound, ConcurrentInvariantsAtQuiescence) {
  Mound<K, V> mound(4);
  run_team(4, [&](unsigned tid) {
    auto handle = mound.get_handle(tid);
    Xoroshiro128 rng(tid + 3);
    for (int op = 0; op < 8000; ++op) {
      if (rng.next_below(100) < 60) {
        handle.insert(rng.next_below(100000), tid);
      } else {
        K k;
        V v;
        handle.delete_min(k, v);
      }
    }
  });
  EXPECT_TRUE(mound.unsafe_invariants_hold());
  // Full drain stays sorted.
  auto handle = mound.get_handle(0);
  K prev = 0;
  K k;
  V v;
  while (handle.delete_min(k, v)) {
    ASSERT_GE(k, prev);
    prev = k;
  }
}

}  // namespace
}  // namespace cpq
