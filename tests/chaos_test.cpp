// Chaos-campaign coverage, compiled with CPQ_FAULT_INJECTION: the schedule
// parser, the site-filtered injection seams, drain-under-fault conservation,
// close() racing injected submits, a short end-to-end campaign, and the JSON
// schema round-trip for the chaos metrics.
//
// ODR: links cpq_queues + cpq_bench_io only — never cpq_bench_framework,
// whose registry.cpp instantiates the same queue templates without injection
// (see tests/CMakeLists.txt).

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_framework/json_out.hpp"
#include "queues/globallock.hpp"
#include "service/priority_service.hpp"
#include "validation/chaos.hpp"
#include "validation/chaos_campaign.hpp"
#include "validation/checked_queue.hpp"
#include "validation/fault_injection.hpp"

namespace cpq::validation {
namespace {

using K = std::uint64_t;
using V = std::uint64_t;
using Lock = GlobalLockQueue<K, V>;
using Service = service::PriorityService<Lock>;

// Every test must leave the process-global injection state clean.
struct InjectionGuard {
  ~InjectionGuard() { fault_injection_configure(0, 42); }
};

// ----------------------------------------------------------------- parser

TEST(ChaosSchedule, ParsesWorkloadKeysAndScenarios) {
  const std::string text =
      "# a comment\n"
      "duration_s 1.5\n"
      "baseline_s 0.3\n"
      "arrival_hz 1000  # trailing comment\n"
      "producers 3\n"
      "consumers 2\n"
      "shards 8\n"
      "policy tiered\n"
      "ttl_us 50000\n"
      "breaker_trip_us 2000\n"
      "window_ms 50\n"
      "recovery_factor 3\n"
      "rank_bound 4096\n"
      "\n"
      "scenario convoy start=0.4 dur=0.2 kind=stall_shard shard=3 "
      "stall_us=7000\n"
      "scenario kill start=0.8 dur=0.2 kind=kill_shard shard=1\n"
      "scenario spins start=1.1 dur=0.2 kind=inject site=spinlock "
      "ppm=40000\n";
  ChaosSchedule schedule;
  std::string error;
  ASSERT_TRUE(parse_chaos_schedule(text, schedule, error)) << error;
  EXPECT_DOUBLE_EQ(schedule.duration_s, 1.5);
  EXPECT_EQ(schedule.producers, 3u);
  EXPECT_EQ(schedule.shards, 8u);
  EXPECT_EQ(schedule.policy, "tiered");
  EXPECT_EQ(schedule.ttl_us, 50'000u);
  ASSERT_EQ(schedule.scenarios.size(), 3u);
  EXPECT_EQ(schedule.scenarios[0].kind, ChaosFaultKind::kStallShard);
  EXPECT_EQ(schedule.scenarios[0].shard, 3u);
  EXPECT_EQ(schedule.scenarios[0].effective_stall_us(), 7000u);
  EXPECT_EQ(schedule.scenarios[1].effective_stall_us(), 50'000u);  // default
  EXPECT_EQ(schedule.scenarios[2].site, "spinlock");
  EXPECT_EQ(schedule.scenarios[2].ppm, 40'000u);
}

TEST(ChaosSchedule, ParsesHotspotKeying) {
  ChaosSchedule schedule;
  std::string error;
  ASSERT_TRUE(parse_chaos_schedule(
      "key_space 65536\nhot_ops 0.9\nhot_keys 0.1\n", schedule, error))
      << error;
  EXPECT_EQ(schedule.key_space, 65'536u);
  EXPECT_DOUBLE_EQ(schedule.hot_ops, 0.9);
  EXPECT_DOUBLE_EQ(schedule.hot_keys, 0.1);
  // Defaults: uniform keying (hotspot disabled).
  ChaosSchedule plain;
  ASSERT_TRUE(parse_chaos_schedule("duration_s 1.0\n", plain, error)) << error;
  EXPECT_DOUBLE_EQ(plain.hot_ops, 0.0);
  EXPECT_DOUBLE_EQ(plain.hot_keys, 0.0);
}

TEST(ChaosSchedule, RejectsBadHotspotConfig) {
  ChaosSchedule schedule;
  std::string error;
  EXPECT_FALSE(parse_chaos_schedule("hot_ops 1.5\n", schedule, error));
  EXPECT_FALSE(parse_chaos_schedule("hot_keys -0.1\n", schedule, error));
  // hot_ops without a hot range is meaningless: reject, don't silently
  // fall back to uniform.
  EXPECT_FALSE(
      parse_chaos_schedule("hot_ops 0.9\nhot_keys 0\n", schedule, error));
  EXPECT_NE(error.find("hot_keys"), std::string::npos) << error;
}

TEST(ChaosSchedule, InjectThrowDefaultsToTheSubmitSeam) {
  ChaosSchedule schedule;
  std::string error;
  ASSERT_TRUE(parse_chaos_schedule(
      "baseline_s 0.1\nscenario boom start=0.2 dur=0.1 kind=inject_throw\n",
      schedule, error))
      << error;
  ASSERT_EQ(schedule.scenarios.size(), 1u);
  EXPECT_EQ(schedule.scenarios[0].site, "service/submit");
  EXPECT_EQ(schedule.scenarios[0].ppm, 2'000u);  // kThrow default
}

TEST(ChaosSchedule, RejectsMalformedInput) {
  ChaosSchedule schedule;
  std::string error;
  EXPECT_FALSE(parse_chaos_schedule("frobnicate 3\n", schedule, error));
  EXPECT_NE(error.find("unknown key"), std::string::npos) << error;
  EXPECT_FALSE(parse_chaos_schedule("duration_s\n", schedule, error));
  EXPECT_FALSE(
      parse_chaos_schedule("policy block\n", schedule, error));  // would hang
  EXPECT_FALSE(parse_chaos_schedule(
      "scenario x start=0.5 dur=0.1\n", schedule, error));  // no kind
  EXPECT_FALSE(parse_chaos_schedule(
      "scenario x start=0.5 dur=0.1 kind=warp\n", schedule, error));
  EXPECT_FALSE(parse_chaos_schedule(
      "scenario x start=0.1 dur=0.1 kind=inject\n", schedule,
      error));  // starts inside the 0.4 s default baseline
  EXPECT_FALSE(parse_chaos_schedule(
      "scenario x start=1.9 dur=0.5 kind=inject\n", schedule,
      error));  // clears past duration_s: no recovery window
  EXPECT_FALSE(parse_chaos_schedule(
      "shards 2\nscenario x start=0.5 dur=0.1 kind=stall_shard shard=5\n",
      schedule, error));  // shard out of range
}

// ------------------------------------------------------------ site filter

TEST(ChaosInjection, SiteFilterRestrictsFiring) {
  InjectionGuard guard;
  fault_injection_configure(1'000'000, 7, FaultAction::kDelay,
                            "service/submit");
  const std::uint64_t before = fault_injections_fired();
  CPQ_INJECT("queue/linden/pop");  // filtered out
  EXPECT_EQ(fault_injections_fired(), before);
  CPQ_INJECT("service/submit");  // matches
  EXPECT_EQ(fault_injections_fired(), before + 1);
  // Substring semantics: a broader filter matches both service seams.
  fault_injection_configure(1'000'000, 7, FaultAction::kDelay, "service/");
  CPQ_INJECT("service/delete_min");
  EXPECT_EQ(fault_injections_fired(), before + 2);
}

TEST(ChaosInjection, ThrowActionRaisesInjectedFaultOnMatchingSiteOnly) {
  InjectionGuard guard;
  fault_injection_configure(1'000'000, 7, FaultAction::kThrow,
                            "service/submit");
  EXPECT_NO_THROW(CPQ_INJECT("queue/mound/push"));
  EXPECT_THROW(CPQ_INJECT("service/submit"), InjectedFault);
}

// ---------------------------------------------------- drain under faults

std::unique_ptr<Service> make_service(unsigned threads,
                                      service::ServiceConfig cfg) {
  return std::make_unique<Service>(threads, cfg, [threads](unsigned) {
    return std::make_unique<Lock>(threads);
  });
}

// Throwing submit faults while producers race close(): every *accepted*
// task must still be delivered or drained, and the injected exceptions must
// surface as clean rejections, not lost tasks. The kThrow seam sits at the
// top of submit() before any state change, so a throw never half-accepts.
TEST(ChaosDrain, CloseAndDrainUnderThrowingSubmitsConserves) {
  InjectionGuard guard;
  constexpr unsigned kProducers = 3;
  service::ServiceConfig cfg;
  cfg.shards = 2;
  cfg.insert_batch = 4;
  CheckedQueue<Service> checked(kProducers, make_service(kProducers, cfg));
  Service& service = checked.inner();

  fault_injection_configure(50'000, 11, FaultAction::kThrow,
                            "service/submit");
  std::atomic<std::uint64_t> faults{0};
  std::vector<std::thread> team;
  for (unsigned t = 0; t < kProducers; ++t) {
    team.emplace_back([&, t] {
      auto handle = checked.get_handle(t);
      for (std::uint64_t i = 0; i < 10'000; ++i) {
        const std::uint64_t id = detail::chaos_item_id(t, i);
        try {
          handle.try_submit(i & 1023, id);
        } catch (const InjectedFault&) {
          faults.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  EXPECT_TRUE(service.close());
  for (auto& t : team) t.join();
  fault_injection_configure(0, 11);

  const ReconcileReport report = checked.reconcile();
  EXPECT_TRUE(report.ok()) << report.to_string();
  EXPECT_GT(faults.load(), 0u) << "throw seam never fired";
}

// Delay faults across every seam (queue internals included) while the
// service drains through close(): the watchdog-free variant relies on the
// ctest timeout to catch a deadlock; conservation catches everything else.
TEST(ChaosDrain, DrainUnderDelayFaultsEverywhereConserves) {
  InjectionGuard guard;
  constexpr unsigned kWorkers = 4;
  service::ServiceConfig cfg;
  cfg.shards = 2;
  cfg.insert_batch = 4;
  cfg.delete_batch = 4;
  cfg.ttl_us = 500;  // shedding active under fault delays
  CheckedQueue<Service> checked(kWorkers, make_service(kWorkers, cfg));
  Service& service = checked.inner();
  std::atomic<std::uint64_t> shed{0};
  service.set_shed_sink(
      [&shed](K, V) { shed.fetch_add(1, std::memory_order_relaxed); });

  fault_injection_configure(5'000, 13, FaultAction::kDelay);
  std::vector<std::thread> team;
  for (unsigned t = 0; t < kWorkers; ++t) {
    team.emplace_back([&, t] {
      auto handle = checked.get_handle(t);
      if (t % 2 == 0) {
        for (std::uint64_t i = 0; i < 4'000; ++i) {
          handle.try_submit(i & 511, detail::chaos_item_id(t, i));
        }
      } else {
        K key;
        V value;
        for (std::uint64_t i = 0; i < 4'000; ++i) {
          handle.delete_min(key, value);
        }
      }
    });
  }
  for (auto& t : team) t.join();
  service.close();
  fault_injection_configure(0, 13);

  const ReconcileReport report = checked.reconcile();
  EXPECT_EQ(report.duplicated, 0u) << report.to_string();
  EXPECT_EQ(report.fabricated, 0u) << report.to_string();
  EXPECT_EQ(report.lost, shed.load()) << report.to_string();
}

// ----------------------------------------------------- end-to-end campaign

TEST(ChaosCampaign, ShortCampaignRunsGreen) {
  InjectionGuard guard;
  ChaosSchedule schedule;
  std::string error;
  ASSERT_TRUE(parse_chaos_schedule(
      "duration_s 0.9\n"
      "baseline_s 0.2\n"
      "arrival_hz 4000\n"
      "producers 1\n"
      "consumers 1\n"
      "shards 2\n"
      "ttl_us 100000\n"
      "breaker_trip_us 1500\n"
      "window_ms 25\n"
      "recovery_factor 3\n"
      "recovery_floor_ms 5\n"
      "scenario stall start=0.3 dur=0.15 kind=stall_shard shard=0 "
      "stall_us=3000\n"
      "scenario boom start=0.6 dur=0.15 kind=inject_throw ppm=5000\n",
      schedule, error))
      << error;
  const ChaosCampaignResult result = run_chaos_campaign(
      schedule, /*seed=*/42,
      [](unsigned) { return std::make_unique<Lock>(2); });
  print_chaos_result(stderr, result);
  EXPECT_TRUE(result.conservation_ok) << result.conservation;
  EXPECT_GT(result.submitted, 0u);
  EXPECT_GT(result.delivered, 0u);
  ASSERT_EQ(result.outcomes.size(), 2u);
  for (const ChaosScenarioOutcome& outcome : result.outcomes) {
    EXPECT_TRUE(outcome.applied) << outcome.name;
    EXPECT_GE(outcome.recovery_ms, 0.0)
        << outcome.name << " never recovered";
  }
  EXPECT_TRUE(result.ok());
}

// Same campaign shape with 90% of submissions squeezed into the bottom
// 0.4% of a small keyspace: every delete_min contends on the hot range
// while the stall fires, and conservation + recovery must still hold.
TEST(ChaosCampaign, HotspotKeyedCampaignConservesUnderSkew) {
  InjectionGuard guard;
  ChaosSchedule schedule;
  std::string error;
  ASSERT_TRUE(parse_chaos_schedule(
      "duration_s 0.9\n"
      "baseline_s 0.2\n"
      "arrival_hz 4000\n"
      "producers 1\n"
      "consumers 1\n"
      "key_space 65536\n"
      "hot_ops 0.9\n"
      "hot_keys 0.004\n"
      "shards 2\n"
      "ttl_us 100000\n"
      "breaker_trip_us 1500\n"
      "window_ms 25\n"
      "recovery_factor 3\n"
      "recovery_floor_ms 5\n"
      "scenario hot-stall start=0.3 dur=0.15 kind=stall_shard shard=0 "
      "stall_us=3000\n",
      schedule, error))
      << error;
  const ChaosCampaignResult result = run_chaos_campaign(
      schedule, /*seed=*/43,
      [](unsigned) { return std::make_unique<Lock>(2); });
  print_chaos_result(stderr, result);
  EXPECT_TRUE(result.conservation_ok) << result.conservation;
  EXPECT_GT(result.submitted, 0u);
  EXPECT_GT(result.delivered, 0u);
  EXPECT_TRUE(result.ok());
}

// -------------------------------------------------- JSON schema round-trip

TEST(ChaosJson, ChaosMetricsRoundTripThroughTheSchema) {
  for (const char* metric :
       {"chaos_baseline_p99_ms", "chaos_recovery_ms:shard-kill",
        "chaos_conservation_ok", "chaos_rank_violations_outside"}) {
    bench::JsonRecord record;
    record.experiment = "chaos_basic_campaign";
    record.queue = "mq";
    record.metric = metric;
    record.threads = 4;
    record.mean = 17.25;
    record.reps = 1;
    record.status = "ok";
    bench::JsonRecord parsed;
    ASSERT_TRUE(bench::parse_json_record(bench::to_json_line(record), parsed))
        << metric;
    EXPECT_EQ(parsed, record) << metric;
  }
  // A never-recovered scenario is emitted as status=failed with mean -1.
  bench::JsonRecord failed;
  failed.experiment = "chaos_basic_campaign";
  failed.queue = "glock";
  failed.metric = "chaos_recovery_ms:kill";
  failed.threads = 4;
  failed.mean = -1.0;
  failed.reps = 1;
  failed.status = "failed";
  bench::JsonRecord parsed;
  ASSERT_TRUE(bench::parse_json_record(bench::to_json_line(failed), parsed));
  EXPECT_EQ(parsed, failed);
}

}  // namespace
}  // namespace cpq::validation
