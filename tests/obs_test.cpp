// Unit tests for the observability layer (src/obs/): log-linear histogram
// bucket math and quantiles, and the per-thread metrics registry (counter
// folding on thread exit, trace-ring wraparound, dump format).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "obs/chrome_trace.hpp"
#include "obs/histogram.hpp"
#include "obs/metrics.hpp"

namespace cpq::obs {
namespace {

// --- histogram bucket math ------------------------------------------------

TEST(LogHistogramTest, BucketBoundsContainValue) {
  std::mt19937_64 rng(42);
  std::vector<std::uint64_t> values = {0, 1, 31, 32, 33, 63, 64, 65,
                                       1000, 123456789, ~std::uint64_t{0}};
  for (int i = 0; i < 10000; ++i) {
    values.push_back(rng() >> (rng() % 64));
  }
  for (const std::uint64_t v : values) {
    const unsigned index = LogHistogram::bucket_index(v);
    ASSERT_LT(index, LogHistogram::kBuckets);
    EXPECT_LE(LogHistogram::bucket_low(index), v);
    EXPECT_GE(LogHistogram::bucket_high(index), v);
  }
}

TEST(LogHistogramTest, BucketsArePartition) {
  // Consecutive buckets tile the value range with no gap or overlap.
  for (unsigned i = 0; i + 1 < LogHistogram::kBuckets; ++i) {
    ASSERT_EQ(LogHistogram::bucket_high(i) + 1, LogHistogram::bucket_low(i + 1))
        << "between buckets " << i << " and " << i + 1;
  }
  EXPECT_EQ(LogHistogram::bucket_low(0), 0u);
  EXPECT_EQ(LogHistogram::bucket_high(LogHistogram::kBuckets - 1),
            ~std::uint64_t{0});
}

TEST(LogHistogramTest, RelativeErrorBounded) {
  // The representative of any value's bucket is within one sub-bucket width,
  // i.e. a relative error of 2^-kSubBucketBits (~3%).
  std::mt19937_64 rng(7);
  for (int i = 0; i < 10000; ++i) {
    const std::uint64_t v = (rng() >> (rng() % 32)) + 1;
    const unsigned index = LogHistogram::bucket_index(v);
    const double rep = static_cast<double>(LogHistogram::representative(index));
    const double err =
        std::abs(rep - static_cast<double>(v)) / static_cast<double>(v);
    EXPECT_LE(err, 1.0 / LogHistogram::kSubBuckets)
        << "value " << v << " bucket " << index;
  }
}

// --- recording and quantiles ----------------------------------------------

TEST(LogHistogramTest, EmptyHistogram) {
  LogHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min_value(), 0u);
  EXPECT_EQ(h.max_value(), 0u);
  EXPECT_EQ(h.quantile(0.5), 0u);
  EXPECT_EQ(h.mean(), 0.0);
}

TEST(LogHistogramTest, SmallValuesAreExact) {
  // Values below kSubBuckets land in unit-width buckets, so quantiles are
  // exact nearest-rank there.
  LogHistogram h;
  for (std::uint64_t v = 1; v <= 10; ++v) h.record(v);
  EXPECT_EQ(h.count(), 10u);
  EXPECT_EQ(h.min_value(), 1u);
  EXPECT_EQ(h.max_value(), 10u);
  EXPECT_EQ(h.quantile(0.50), 5u);   // ceil(0.5 * 10) = rank 5
  EXPECT_EQ(h.quantile(0.90), 9u);
  EXPECT_EQ(h.quantile(0.99), 10u);  // ceil(.99*10) = 10 -> exact max
  EXPECT_EQ(h.quantile(1.0), 10u);
  EXPECT_DOUBLE_EQ(h.mean(), 5.5);
}

TEST(LogHistogramTest, QuantileWithinBucketError) {
  LogHistogram h;
  for (std::uint64_t v = 1; v <= 100000; ++v) h.record(v);
  for (const double q : {0.5, 0.9, 0.99, 0.999}) {
    const double exact = std::ceil(q * 100000.0);
    const double got = static_cast<double>(h.quantile(q));
    EXPECT_NEAR(got, exact, exact / LogHistogram::kSubBuckets + 1.0)
        << "q=" << q;
  }
  EXPECT_EQ(h.quantile(1.0), 100000u);
}

TEST(LogHistogramTest, QuantileClampedToObservedRange) {
  // A single huge sample: every quantile is that exact value, not a bucket
  // midpoint above or below it.
  LogHistogram h;
  h.record(123456789);
  for (const double q : {0.0, 0.5, 0.99, 1.0}) {
    EXPECT_EQ(h.quantile(q), 123456789u) << "q=" << q;
  }
}

TEST(LogHistogramTest, MergeMatchesCombinedRecording) {
  LogHistogram a, b, combined;
  std::mt19937_64 rng(11);
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t v = rng() % 1000000;
    ((i % 2) ? a : b).record(v);
    combined.record(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), combined.count());
  EXPECT_EQ(a.min_value(), combined.min_value());
  EXPECT_EQ(a.max_value(), combined.max_value());
  for (const double q : {0.5, 0.9, 0.99}) {
    EXPECT_EQ(a.quantile(q), combined.quantile(q)) << "q=" << q;
  }
}

TEST(LogHistogramTest, AddScaledConvertsDomain) {
  // Tick-domain recording folded at 2.5 ns/tick: count is preserved, the
  // scaled min/max are exact, quantiles land within bucket error.
  LogHistogram ticks;
  for (std::uint64_t v = 100; v <= 1000; v += 10) ticks.record(v);
  LogHistogram ns;
  ns.add_scaled(ticks, 2.5);
  EXPECT_EQ(ns.count(), ticks.count());
  EXPECT_EQ(ns.min_value(), 250u);
  EXPECT_EQ(ns.max_value(), 2500u);
  const double p50 = static_cast<double>(ns.quantile(0.5));
  const double expect = 2.5 * static_cast<double>(ticks.quantile(0.5));
  EXPECT_NEAR(p50, expect, 2.0 * expect / LogHistogram::kSubBuckets + 1.0);
}

TEST(LogHistogramTest, ClearResets) {
  LogHistogram h;
  h.record(42);
  h.clear();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.max_value(), 0u);
}

TEST(LogHistogramTest, PrintSummaryLine) {
  LogHistogram h;
  for (std::uint64_t v = 1; v <= 10; ++v) h.record(v);
  char* buffer = nullptr;
  std::size_t size = 0;
  std::FILE* stream = open_memstream(&buffer, &size);
  ASSERT_NE(stream, nullptr);
  h.print(stream, "test_hist");
  std::fclose(stream);
  const std::string text(buffer, size);
  std::free(buffer);
  EXPECT_NE(text.find("test_hist: n=10"), std::string::npos) << text;
  EXPECT_NE(text.find("p50=5"), std::string::npos) << text;
  EXPECT_NE(text.find("max=10"), std::string::npos) << text;
}

// --- metrics registry -----------------------------------------------------

TEST(MetricsRegistryTest, CountAndReset) {
  auto& registry = MetricsRegistry::global();
  registry.reset();
  count(Counter::kCasRetry);
  count(Counter::kCasRetry, 4);
  count(Counter::kEbrFree, 10);
  EXPECT_EQ(registry.total(Counter::kCasRetry), 5u);
  EXPECT_EQ(registry.total(Counter::kEbrFree), 10u);
  EXPECT_EQ(registry.total(Counter::kLockRetry), 0u);
  registry.reset();
  EXPECT_EQ(registry.total(Counter::kCasRetry), 0u);
}

TEST(MetricsRegistryTest, ThreadExitFoldsIntoRetiredTotals) {
  auto& registry = MetricsRegistry::global();
  registry.reset();
  // Sequential short-lived workers: each must claim a slice, record, and
  // fold into the retired accumulator on exit; nothing may be lost even
  // though the slice slots are recycled far more times than kMaxSlices.
  constexpr unsigned kThreads = MetricsRegistry::kMaxSlices + 44;
  for (unsigned t = 0; t < kThreads; ++t) {
    std::thread([] { count(Counter::kLockRetry, 2); }).join();
  }
  EXPECT_EQ(registry.total(Counter::kLockRetry), 2u * kThreads);
  registry.reset();
}

TEST(MetricsRegistryTest, ConcurrentCountersSumExactly) {
  auto& registry = MetricsRegistry::global();
  registry.reset();
  constexpr unsigned kThreads = 8;
  constexpr std::uint64_t kPerThread = 10000;
  std::vector<std::thread> team;
  for (unsigned t = 0; t < kThreads; ++t) {
    team.emplace_back([] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        count(Counter::kBackoffPause);
      }
    });
  }
  for (auto& thread : team) thread.join();
  EXPECT_EQ(registry.total(Counter::kBackoffPause), kThreads * kPerThread);
  registry.reset();
}

TEST(MetricsRegistryTest, DumpShowsCountersAndTraceRing) {
  auto& registry = MetricsRegistry::global();
  registry.reset();
  count(Counter::kCasRetry, 3);
  // Overfill the ring to exercise wraparound: only the newest kTraceCapacity
  // events survive, newest first.
  const unsigned total = MetricsRegistry::kTraceCapacity + 5;
  for (unsigned i = 1; i <= total; ++i) {
    trace(TraceOp::kInsert, 1000 + i);
  }
  trace(TraceOp::kDeleteHit, 9999);

  char* buffer = nullptr;
  std::size_t size = 0;
  std::FILE* stream = open_memstream(&buffer, &size);
  ASSERT_NE(stream, nullptr);
  registry.dump(stream);
  std::fclose(stream);
  const std::string text(buffer, size);
  std::free(buffer);

  EXPECT_NE(text.find("[cpq-metrics] counters:"), std::string::npos);
  EXPECT_NE(text.find("cas_retry=3"), std::string::npos) << text;
  EXPECT_NE(text.find("sampled ops, newest first"), std::string::npos) << text;
  // Newest event leads the ring dump.
  const auto newest = text.find("delete_hit");
  const auto older = text.find("insert");
  ASSERT_NE(newest, std::string::npos) << text;
  ASSERT_NE(older, std::string::npos) << text;
  EXPECT_LT(newest, older) << text;
  EXPECT_NE(text.find("key=9999"), std::string::npos) << text;
  // The oldest overwritten events are gone.
  EXPECT_EQ(text.find("key=1001"), std::string::npos) << text;
  registry.reset();
}

TEST(MetricsRegistryTest, CounterNamesCoverEveryCounter) {
  for (unsigned c = 0; c < kNumCounters; ++c) {
    EXPECT_STRNE(counter_name(c), "?") << c;
  }
  EXPECT_STREQ(counter_name(kNumCounters), "?");
}

TEST(MetricsRegistryTest, CellOpsAccumulateAndReset) {
  auto& registry = MetricsRegistry::global();
  registry.reset();
  EXPECT_EQ(registry.cell_ops(), 0u);
  registry.add_cell_ops(1000);
  registry.add_cell_ops(234);
  EXPECT_EQ(registry.cell_ops(), 1234u);
  registry.reset();
  EXPECT_EQ(registry.cell_ops(), 0u);
}

TEST(MetricsRegistryTest, TraceRingSurvivesThreadExit) {
  // The end-of-run exporters (--dump-traces, --trace-out) read the rings
  // after every worker joined; the sampled tail must not die with the
  // recording thread.
  auto& registry = MetricsRegistry::global();
  registry.reset();
  std::thread([] { trace(TraceOp::kInsert, 777); }).join();
  unsigned found = 0;
  registry.visit_trace_events(
      [&](unsigned, std::uint8_t op, std::uint64_t key, std::uint64_t) {
        if (op == static_cast<std::uint8_t>(TraceOp::kInsert) && key == 777) {
          ++found;
        }
      });
  EXPECT_EQ(found, 1u);
  registry.reset();
}

TEST(MetricsRegistryTest, VisitTraceEventsYieldsOldestFirstAfterWrap) {
  auto& registry = MetricsRegistry::global();
  registry.reset();
  const unsigned total = MetricsRegistry::kTraceCapacity + 7;
  for (unsigned i = 1; i <= total; ++i) {
    trace(TraceOp::kInsert, i);
  }
  std::vector<std::uint64_t> keys;
  registry.visit_trace_events(
      [&](unsigned, std::uint8_t, std::uint64_t key, std::uint64_t) {
        keys.push_back(key);
      });
  ASSERT_EQ(keys.size(), MetricsRegistry::kTraceCapacity);
  // Only the newest kTraceCapacity events survive, in recording order.
  EXPECT_EQ(keys.front(), total - MetricsRegistry::kTraceCapacity + 1);
  EXPECT_EQ(keys.back(), total);
  EXPECT_TRUE(std::is_sorted(keys.begin(), keys.end()));
  registry.reset();
}

// --- Chrome trace export ----------------------------------------------------

TEST(ChromeTraceTest, EmptyRegistryYieldsValidEmptyDocument) {
  auto& registry = MetricsRegistry::global();
  registry.reset();
  char* buffer = nullptr;
  std::size_t size = 0;
  std::FILE* stream = open_memstream(&buffer, &size);
  ASSERT_NE(stream, nullptr);
  const std::size_t events = write_chrome_trace(stream, registry);
  std::fclose(stream);
  const std::string text(buffer, size);
  std::free(buffer);
  EXPECT_EQ(events, 0u);
  EXPECT_NE(text.find("{\"traceEvents\":["), std::string::npos) << text;
  EXPECT_NE(text.find("]"), std::string::npos) << text;
}

TEST(ChromeTraceTest, ExportsInstantEventsAndThreadNames) {
  auto& registry = MetricsRegistry::global();
  registry.reset();
  trace(TraceOp::kInsert, 101);
  trace(TraceOp::kDeleteHit, 202);
  trace(TraceOp::kDeleteEmpty, 0);

  char* buffer = nullptr;
  std::size_t size = 0;
  std::FILE* stream = open_memstream(&buffer, &size);
  ASSERT_NE(stream, nullptr);
  const std::size_t events = write_chrome_trace(stream, registry);
  std::fclose(stream);
  const std::string text(buffer, size);
  std::free(buffer);
  registry.reset();

  EXPECT_EQ(events, 3u);
  // Lane metadata plus one instant event per sampled op, Perfetto-style.
  EXPECT_NE(text.find("\"thread_name\""), std::string::npos) << text;
  EXPECT_NE(text.find("\"ph\":\"M\""), std::string::npos) << text;
  EXPECT_NE(text.find("\"ph\":\"i\""), std::string::npos) << text;
  EXPECT_NE(text.find("\"s\":\"t\""), std::string::npos) << text;
  EXPECT_NE(text.find("\"name\":\"insert\""), std::string::npos) << text;
  EXPECT_NE(text.find("\"name\":\"delete_hit\""), std::string::npos) << text;
  EXPECT_NE(text.find("\"key\":101"), std::string::npos) << text;
  // Rebased to the earliest event: the first instant is at ts 0.
  EXPECT_NE(text.find("\"ts\":0.000"), std::string::npos) << text;
}

TEST(ChromeTraceTest, CalibrationIsPositiveAndSane) {
  const double ns_per_tick = calibrate_ns_per_tick();
  EXPECT_GT(ns_per_tick, 0.0);
  // TSC frequencies live between ~0.5 GHz and ~6 GHz; steady_clock fallback
  // is exactly 1 ns/tick. Either way the factor is within [0.1, 10].
  EXPECT_GT(ns_per_tick, 0.1);
  EXPECT_LT(ns_per_tick, 10.0);
}

}  // namespace
}  // namespace cpq::obs
