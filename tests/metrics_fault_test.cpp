// Regression coverage for the all-repetitions-failed benchmark paths,
// driven deterministically through fault injection in kThrow mode.
//
// Compiled with CPQ_FAULT_INJECTION=1 and linked against cpq_bench_io only:
// like torture_test, it must NOT link cpq_bench_framework, whose
// registry.cpp instantiates the roster queue templates without injection
// (ODR). The queue under test here is a local mutex-protected heap with its
// own CPQ_INJECT sites; at ppm = 10^6 the first crossing throws, which
// happens during the harness's single-threaded prefill — inside the
// per-repetition try block, before any worker thread exists.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <memory>
#include <mutex>
#include <queue>
#include <string>
#include <utility>
#include <vector>

#include "bench_common.hpp"
#include "bench_framework/harness.hpp"
#include "bench_framework/json_out.hpp"
#include "bench_framework/latency.hpp"
#include "bench_framework/registry.hpp"
#include "validation/fault_injection.hpp"

namespace cpq::bench {
namespace {

using validation::FaultAction;
using validation::fault_injection_configure;
using validation::InjectedFault;

// Minimal harness-conforming queue with injection sites on both operations.
class MiniQueue {
 public:
  struct Handle {
    MiniQueue* q;

    void insert(std::uint64_t key, std::uint64_t value) {
      CPQ_INJECT("mini.insert");
      std::lock_guard<std::mutex> lock(q->mutex_);
      q->heap_.emplace(key, value);
    }

    bool delete_min(std::uint64_t& key, std::uint64_t& value) {
      CPQ_INJECT("mini.delete");
      std::lock_guard<std::mutex> lock(q->mutex_);
      if (q->heap_.empty()) return false;
      key = q->heap_.top().first;
      value = q->heap_.top().second;
      q->heap_.pop();
      return true;
    }
  };

  Handle get_handle(unsigned) { return Handle{this}; }

 private:
  using Item = std::pair<std::uint64_t, std::uint64_t>;
  std::mutex mutex_;
  std::priority_queue<Item, std::vector<Item>, std::greater<Item>> heap_;
};

std::unique_ptr<MiniQueue> make_mini(unsigned, std::uint64_t) {
  return std::make_unique<MiniQueue>();
}

// Every CPQ_INJECT crossing throws until the returned guard restores the
// disabled state.
struct ThrowEverywhere {
  ThrowEverywhere() {
    fault_injection_configure(1'000'000, 42, FaultAction::kThrow);
  }
  ~ThrowEverywhere() { fault_injection_configure(0, 42); }
};

BenchConfig small_config() {
  BenchConfig cfg;
  cfg.threads = 1;
  cfg.prefill = 16;  // > 0: the throw happens inside single-threaded prefill
  cfg.duration_s = 0.01;
  cfg.ops_per_thread = 64;
  cfg.repetitions = 2;
  cfg.pin_threads = false;
  cfg.label = "mini";
  return cfg;
}

QueueSpec mini_spec() {
  QueueSpec spec;
  spec.name = "mini";
  spec.description = "throwing test queue";
  spec.strict = true;
  spec.in_paper = false;
  spec.throughput = [](const BenchConfig& cfg) {
    return run_throughput(make_mini, cfg);
  };
  spec.quality = [](const BenchConfig& cfg) {
    return run_quality(make_mini, cfg);
  };
  spec.latency = [](const BenchConfig& cfg) {
    return run_latency(make_mini, cfg);
  };
  return spec;
}

// A spec whose runner never touches a queue: stands in for a healthy cell
// next to a failed one.
QueueSpec healthy_spec() {
  QueueSpec spec;
  spec.name = "healthy";
  spec.description = "synthetic healthy cell";
  spec.strict = true;
  spec.in_paper = false;
  spec.throughput = [](const BenchConfig&) {
    ThroughputResult result;
    result.per_rep = {1.0, 1.0};
    result.mops = summarize(result.per_rep);
    return result;
  };
  return spec;
}

std::vector<JsonRecord> records_from(const std::string& path) {
  std::vector<JsonRecord> records;
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) return records;
  char line[4096];
  while (std::fgets(line, sizeof(line), f)) {
    std::string text(line);
    while (!text.empty() && (text.back() == '\n' || text.back() == '\r')) {
      text.pop_back();
    }
    JsonRecord record;
    EXPECT_TRUE(parse_json_record(text, record)) << text;
    records.push_back(record);
  }
  std::fclose(f);
  return records;
}

TEST(FaultActionTest, ThrowActionRaisesInjectedFaultAtSite) {
  ThrowEverywhere guard;
  MiniQueue queue;
  auto handle = queue.get_handle(0);
  try {
    handle.insert(1, 1);
    FAIL() << "injected fault did not fire";
  } catch (const InjectedFault& fault) {
    EXPECT_STREQ(fault.what(), "injected fault at mini.insert");
  }
}

TEST(FaultActionTest, DelayActionDoesNotThrow) {
  fault_injection_configure(1'000'000, 42, FaultAction::kDelay);
  const std::uint64_t before = validation::fault_injections_fired();
  MiniQueue queue;
  auto handle = queue.get_handle(0);
  handle.insert(1, 1);  // fires, but only delays
  std::uint64_t key = 0, value = 0;
  EXPECT_TRUE(handle.delete_min(key, value));
  EXPECT_GE(validation::fault_injections_fired(), before + 2);
  fault_injection_configure(0, 42);
}

TEST(AllFailedCellTest, RunThroughputReportsFailure) {
  ThrowEverywhere guard;
  const ThroughputResult result = run_throughput(make_mini, small_config());
  EXPECT_TRUE(result.failed());
  EXPECT_TRUE(result.per_rep.empty());
  EXPECT_EQ(result.failed_reps, 2u);
  EXPECT_EQ(result.mops.mean, 0.0);
}

TEST(AllFailedCellTest, RunQualityReportsFailure) {
  ThrowEverywhere guard;
  const QualityResult result = run_quality(make_mini, small_config());
  EXPECT_TRUE(result.failed());
  EXPECT_EQ(result.completed_reps, 0u);
  EXPECT_EQ(result.failed_reps, 2u);
}

TEST(AllFailedCellTest, RunLatencyReportsFailure) {
  ThrowEverywhere guard;
  const LatencyResult result = run_latency(make_mini, small_config());
  EXPECT_TRUE(result.failed());
  EXPECT_EQ(result.completed_reps, 0u);
  EXPECT_EQ(result.failed_reps, 2u);
  EXPECT_EQ(result.insert_ns.count(), 0u);
}

TEST(AllFailedCellTest, ThroughputTableMarksFailedCellsInJson) {
  ThrowEverywhere guard;
  const std::string json_path =
      testing::TempDir() + "metrics_fault_test_cells.jsonl";
  std::remove(json_path.c_str());
  JsonSink::instance().set_path(json_path);

  const QueueSpec mini = mini_spec();
  const QueueSpec healthy = healthy_spec();
  Options options;
  options.thread_ladder = {1};
  // Failed cell next to a healthy one: the table must return false (driver
  // exits non-zero) yet keep the row, and the JSON must distinguish the two.
  const bool ok = throughput_table("fault", small_config(), options,
                                   {&mini, &healthy});
  JsonSink::instance().set_path("");
  EXPECT_FALSE(ok);

  const std::vector<JsonRecord> records = records_from(json_path);
  ASSERT_EQ(records.size(), 2u);
  for (const JsonRecord& record : records) {
    ASSERT_EQ(record.metric, "throughput_mops");
    if (record.queue == "mini") {
      EXPECT_EQ(record.status, "failed");
      EXPECT_EQ(record.reps, 0u);
      EXPECT_EQ(record.mean, 0.0);
    } else {
      EXPECT_EQ(record.queue, "healthy");
      EXPECT_EQ(record.status, "ok");
      EXPECT_EQ(record.reps, 2u);
      EXPECT_EQ(record.mean, 1.0);
    }
  }
  std::remove(json_path.c_str());
}

TEST(AllFailedCellTest, AllFailedRowStillExitsNonZero) {
  ThrowEverywhere guard;
  const QueueSpec mini = mini_spec();
  Options options;
  options.thread_ladder = {1, 2};
  // Every cell of every row fails: rows are dropped from the table and the
  // driver-facing return value is false.
  EXPECT_FALSE(throughput_table("fault", small_config(), options, {&mini}));
}

}  // namespace
}  // namespace cpq::bench
