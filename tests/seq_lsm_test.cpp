// Tests for the sequential Log-Structured Merge priority queue: the LSM
// structural invariants (distinct power-of-two capacities, sortedness,
// fill bounds) after every operation, plus model-based correctness.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <set>
#include <vector>

#include "platform/rng.hpp"
#include "seq/seq_lsm.hpp"

namespace cpq::seq {
namespace {

using Lsm = SeqLsm<std::uint64_t, std::uint64_t>;

TEST(SeqLsm, EmptyBehaviour) {
  Lsm lsm;
  EXPECT_TRUE(lsm.empty());
  std::uint64_t k, v;
  EXPECT_FALSE(lsm.delete_min(k, v));
  EXPECT_FALSE(lsm.peek_min(k, v));
}

TEST(SeqLsm, InsertionsKeepInvariants) {
  Lsm lsm;
  for (std::uint64_t i = 0; i < 1000; ++i) {
    lsm.insert(1000 - i, i);
    ASSERT_TRUE(lsm.invariants_hold()) << "after insert " << i;
    ASSERT_EQ(lsm.size(), i + 1);
  }
  // 1000 inserts with distinct power-of-two block capacities need at most
  // log2(1000)+1 blocks.
  EXPECT_LE(lsm.block_count(), 10u);
}

TEST(SeqLsm, SortsRandomInput) {
  for (const std::size_t n : {1u, 2u, 7u, 64u, 65u, 1000u, 4096u}) {
    Lsm lsm;
    Xoroshiro128 rng(n);
    std::vector<std::uint64_t> keys;
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint64_t key = rng.next_below(n);
      keys.push_back(key);
      lsm.insert(key, i);
    }
    std::sort(keys.begin(), keys.end());
    for (std::size_t i = 0; i < n; ++i) {
      std::uint64_t k, v;
      ASSERT_TRUE(lsm.delete_min(k, v));
      ASSERT_EQ(k, keys[i]);
      ASSERT_TRUE(lsm.invariants_hold());
    }
    EXPECT_TRUE(lsm.empty());
  }
}

TEST(SeqLsm, PeekMatchesDelete) {
  Lsm lsm;
  Xoroshiro128 rng(5);
  for (int i = 0; i < 300; ++i) lsm.insert(rng.next_below(100), i);
  while (!lsm.empty()) {
    std::uint64_t pk, pv, dk, dv;
    ASSERT_TRUE(lsm.peek_min(pk, pv));
    ASSERT_TRUE(lsm.delete_min(dk, dv));
    EXPECT_EQ(pk, dk);
    EXPECT_EQ(pv, dv);
  }
}

class SeqLsmMixedOps : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SeqLsmMixedOps, MatchesMultisetModel) {
  Lsm lsm;
  std::multiset<std::uint64_t> model;
  Xoroshiro128 rng(GetParam());
  const std::uint64_t key_range = 1 + GetParam() * 37 % 1000;
  for (int op = 0; op < 20000; ++op) {
    if (model.empty() || rng.next_below(100) < 52) {
      const std::uint64_t key = rng.next_below(key_range);
      lsm.insert(key, static_cast<std::uint64_t>(op));
      model.insert(key);
    } else {
      std::uint64_t k, v;
      ASSERT_TRUE(lsm.delete_min(k, v));
      ASSERT_EQ(k, *model.begin());
      model.erase(model.begin());
    }
    ASSERT_EQ(lsm.size(), model.size());
    if (op % 256 == 0) {
      ASSERT_TRUE(lsm.invariants_hold());
    }
  }
  ASSERT_TRUE(lsm.invariants_hold());
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeqLsmMixedOps,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

TEST(SeqLsm, DrainHeavyShrinksBlocks) {
  Lsm lsm;
  for (std::uint64_t i = 0; i < 2048; ++i) lsm.insert(i, i);
  std::uint64_t k, v;
  for (int i = 0; i < 2040; ++i) {
    ASSERT_TRUE(lsm.delete_min(k, v));
    ASSERT_TRUE(lsm.invariants_hold());
  }
  EXPECT_EQ(lsm.size(), 8u);
  // The shrink rule must have collapsed the structure far below the peak.
  EXPECT_LE(lsm.block_count(), 4u);
}

TEST(SeqLsm, ClearEmpties) {
  Lsm lsm;
  for (int i = 0; i < 100; ++i) lsm.insert(i, i);
  lsm.clear();
  EXPECT_TRUE(lsm.empty());
  EXPECT_TRUE(lsm.invariants_hold());
  lsm.insert(1, 1);
  EXPECT_EQ(lsm.size(), 1u);
}

}  // namespace
}  // namespace cpq::seq
