// Cross-queue sequential semantics, typed over every queue in the library.
//
// All queues (strict and relaxed) must satisfy, single-threaded:
//   * no loss, no duplication, no invention of items;
//   * delete_min on empty returns false;
//   * strict queues return keys in exactly sorted order;
//   * relaxed queues return keys within their documented rank bound
//     (k-LSM: one of the kP+1 smallest; here P=1 worth of handles).

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <limits>
#include <memory>
#include <set>
#include <vector>

#include "platform/rng.hpp"
#include "queues/cbpq.hpp"
#include "queues/flat_combining.hpp"
#include "queues/globallock.hpp"
#include "queues/hunt_heap.hpp"
#include "queues/klsm/klsm.hpp"
#include "queues/klsm/standalone.hpp"
#include "queues/linden.hpp"
#include "queues/mound.hpp"
#include "queues/multiqueue.hpp"
#include "queues/shavit_lotan.hpp"
#include "queues/spraylist.hpp"
#include "queues/sundell_tsigas.hpp"

namespace cpq {
namespace {

using K = std::uint64_t;
using V = std::uint64_t;

// Per-queue construction and semantics traits for the typed suite.
template <typename Q>
struct QueueTraits;

template <>
struct QueueTraits<GlobalLockQueue<K, V>> {
  static auto make(unsigned threads) {
    return std::make_unique<GlobalLockQueue<K, V>>(threads);
  }
  static constexpr bool kStrict = true;
  // Maximum rank error a single-threaded delete_min may exhibit.
  static std::uint64_t rank_bound(unsigned) { return 0; }
};

template <>
struct QueueTraits<LindenQueue<K, V>> {
  static auto make(unsigned threads) {
    return std::make_unique<LindenQueue<K, V>>(threads);
  }
  static constexpr bool kStrict = true;
  static std::uint64_t rank_bound(unsigned) { return 0; }
};

template <>
struct QueueTraits<HuntHeap<K, V>> {
  static auto make(unsigned threads) {
    return std::make_unique<HuntHeap<K, V>>(threads, 1u << 18);
  }
  static constexpr bool kStrict = true;
  static std::uint64_t rank_bound(unsigned) { return 0; }
};

template <>
struct QueueTraits<SprayList<K, V>> {
  static auto make(unsigned threads) {
    return std::make_unique<SprayList<K, V>>(threads);
  }
  static constexpr bool kStrict = false;
  static std::uint64_t rank_bound(unsigned threads) {
    // O(P log^3 P); generous constant for the statistical test below.
    const double logp = std::bit_width(threads) + 1;
    return static_cast<std::uint64_t>(64 * threads * logp * logp * logp);
  }
};

template <>
struct QueueTraits<MultiQueue<K, V>> {
  static auto make(unsigned threads) {
    return std::make_unique<MultiQueue<K, V>>(threads, 4);
  }
  static constexpr bool kStrict = false;
  static std::uint64_t rank_bound(unsigned) {
    return std::numeric_limits<std::uint64_t>::max();  // no hard bound
  }
};

template <>
struct QueueTraits<KLsmQueue<K, V>> {
  static constexpr std::uint64_t kRelax = 128;
  static auto make(unsigned threads) {
    return std::make_unique<KLsmQueue<K, V>>(threads, kRelax);
  }
  static constexpr bool kStrict = false;
  static std::uint64_t rank_bound(unsigned threads) {
    return kRelax * threads;  // paper: skips at most kP items
  }
};

template <>
struct QueueTraits<DlsmQueue<K, V>> {
  static auto make(unsigned threads) {
    return std::make_unique<DlsmQueue<K, V>>(threads);
  }
  static constexpr bool kStrict = false;  // strict per-thread, relaxed globally
  static std::uint64_t rank_bound(unsigned) { return 0; }  // single handle
};

template <>
struct QueueTraits<SlsmQueue<K, V>> {
  static constexpr std::uint64_t kRelax = 128;
  static auto make(unsigned threads) {
    return std::make_unique<SlsmQueue<K, V>>(threads, kRelax);
  }
  static constexpr bool kStrict = false;
  static std::uint64_t rank_bound(unsigned) { return kRelax; }
};

template <>
struct QueueTraits<ShavitLotanQueue<K, V>> {
  static auto make(unsigned threads) {
    return std::make_unique<ShavitLotanQueue<K, V>>(threads);
  }
  static constexpr bool kStrict = true;
  static std::uint64_t rank_bound(unsigned) { return 0; }
};

template <>
struct QueueTraits<SundellTsigasQueue<K, V>> {
  static auto make(unsigned threads) {
    return std::make_unique<SundellTsigasQueue<K, V>>(threads);
  }
  static constexpr bool kStrict = true;
  static std::uint64_t rank_bound(unsigned) { return 0; }
};

template <>
struct QueueTraits<Mound<K, V>> {
  static auto make(unsigned threads) {
    return std::make_unique<Mound<K, V>>(threads);
  }
  static constexpr bool kStrict = true;
  static std::uint64_t rank_bound(unsigned) { return 0; }
};

template <>
struct QueueTraits<ChunkBasedQueue<K, V>> {
  static auto make(unsigned threads) {
    return std::make_unique<ChunkBasedQueue<K, V>>(threads);
  }
  static constexpr bool kStrict = true;
  static std::uint64_t rank_bound(unsigned) { return 0; }
};

template <>
struct QueueTraits<FcPriorityQueue<K, V>> {
  static auto make(unsigned threads) {
    return std::make_unique<FcPriorityQueue<K, V>>(threads);
  }
  static constexpr bool kStrict = true;
  static std::uint64_t rank_bound(unsigned) { return 0; }
};

using QueueTypes =
    ::testing::Types<GlobalLockQueue<K, V>, LindenQueue<K, V>, HuntHeap<K, V>,
                     SprayList<K, V>, MultiQueue<K, V>, KLsmQueue<K, V>,
                     DlsmQueue<K, V>, SlsmQueue<K, V>,
                     ShavitLotanQueue<K, V>, SundellTsigasQueue<K, V>,
                     Mound<K, V>, ChunkBasedQueue<K, V>,
                     FcPriorityQueue<K, V>>;

template <typename Q>
class QueueSequentialTest : public ::testing::Test {};

TYPED_TEST_SUITE(QueueSequentialTest, QueueTypes);

TYPED_TEST(QueueSequentialTest, EmptyDeleteReturnsFalse) {
  auto queue = QueueTraits<TypeParam>::make(1);
  auto handle = queue->get_handle(0);
  K k;
  V v;
  EXPECT_FALSE(handle.delete_min(k, v));
}

TYPED_TEST(QueueSequentialTest, SingleItemRoundTrip) {
  auto queue = QueueTraits<TypeParam>::make(1);
  auto handle = queue->get_handle(0);
  handle.insert(42, 4200);
  K k;
  V v;
  ASSERT_TRUE(handle.delete_min(k, v));
  EXPECT_EQ(k, 42u);
  EXPECT_EQ(v, 4200u);
  EXPECT_FALSE(handle.delete_min(k, v));
}

TYPED_TEST(QueueSequentialTest, NoLossNoDuplicationNoInvention) {
  auto queue = QueueTraits<TypeParam>::make(1);
  auto handle = queue->get_handle(0);
  Xoroshiro128 rng(11);
  std::multiset<K> inserted_keys;
  std::set<V> inserted_values;
  for (V i = 0; i < 5000; ++i) {
    const K key = rng.next_below(2000);
    handle.insert(key, i);
    inserted_keys.insert(key);
    inserted_values.insert(i);
  }
  std::multiset<K> deleted_keys;
  std::set<V> deleted_values;
  K k;
  V v;
  while (handle.delete_min(k, v)) {
    deleted_keys.insert(k);
    ASSERT_TRUE(inserted_values.count(v)) << "invented value " << v;
    ASSERT_TRUE(deleted_values.insert(v).second) << "duplicated value " << v;
  }
  EXPECT_EQ(deleted_keys, inserted_keys);
}

TYPED_TEST(QueueSequentialTest, StrictQueuesSortExactly) {
  if (!QueueTraits<TypeParam>::kStrict) GTEST_SKIP();
  auto queue = QueueTraits<TypeParam>::make(1);
  auto handle = queue->get_handle(0);
  Xoroshiro128 rng(13);
  std::vector<K> keys;
  for (V i = 0; i < 4000; ++i) {
    const K key = rng.next_below(1500);
    keys.push_back(key);
    handle.insert(key, i);
  }
  std::sort(keys.begin(), keys.end());
  for (std::size_t i = 0; i < keys.size(); ++i) {
    K k;
    V v;
    ASSERT_TRUE(handle.delete_min(k, v));
    ASSERT_EQ(k, keys[i]) << "at position " << i;
  }
}

TYPED_TEST(QueueSequentialTest, RelaxedQueuesRespectRankBound) {
  const unsigned threads = 1;
  const std::uint64_t bound = QueueTraits<TypeParam>::rank_bound(threads);
  if (bound == std::numeric_limits<std::uint64_t>::max()) GTEST_SKIP();
  auto queue = QueueTraits<TypeParam>::make(threads);
  auto handle = queue->get_handle(0);
  Xoroshiro128 rng(17);
  std::multiset<K> model;
  for (V i = 0; i < 4000; ++i) {
    const K key = rng.next_below(1u << 20);
    handle.insert(key, i);
    model.insert(key);
  }
  for (int i = 0; i < 3500; ++i) {
    K k;
    V v;
    ASSERT_TRUE(handle.delete_min(k, v));
    auto it = model.begin();
    std::advance(it, std::min<std::size_t>(bound, model.size() - 1));
    ASSERT_LE(k, *it) << "rank bound " << bound << " violated";
    const auto found = model.find(k);
    ASSERT_NE(found, model.end());
    model.erase(found);
  }
}

TYPED_TEST(QueueSequentialTest, AlternatingInsertDeleteHoldsSteadyState) {
  auto queue = QueueTraits<TypeParam>::make(1);
  auto handle = queue->get_handle(0);
  // Prefill.
  Xoroshiro128 rng(19);
  for (V i = 0; i < 1000; ++i) handle.insert(rng.next_below(10000), i);
  std::uint64_t deletions = 0;
  for (int round = 0; round < 5000; ++round) {
    handle.insert(rng.next_below(10000), 1000 + round);
    K k;
    V v;
    if (handle.delete_min(k, v)) ++deletions;
  }
  EXPECT_EQ(deletions, 5000u);
}

TYPED_TEST(QueueSequentialTest, DuplicateKeysAllComeBack) {
  auto queue = QueueTraits<TypeParam>::make(1);
  auto handle = queue->get_handle(0);
  for (V i = 0; i < 500; ++i) handle.insert(7, i);
  std::set<V> values;
  K k;
  V v;
  while (handle.delete_min(k, v)) {
    EXPECT_EQ(k, 7u);
    EXPECT_TRUE(values.insert(v).second);
  }
  EXPECT_EQ(values.size(), 500u);
}

// Regression: MultiQueue mirrors each local queue's minimum into an atomic,
// with numeric_limits<Key>::max() doubling as the "empty" sentinel. An item
// whose key *is* the maximal key makes the mirror indistinguishable from an
// empty queue; delete_min must fall back on the exact per-queue counts and
// never lose such an item (src/queues/multiqueue.hpp count mirror).
TEST(MultiQueueMaxKey, MaximalKeyItemsAreNeverLost) {
  constexpr K kMax = std::numeric_limits<K>::max();
  static_assert(MultiQueue<K, V>::kEmptyKey == kMax);
  MultiQueue<K, V> queue(1, 4, /*seed=*/3);
  auto handle = queue.get_handle(0);
  for (V i = 0; i < 64; ++i) handle.insert(kMax, i);
  std::set<V> values;
  K k;
  V v;
  while (handle.delete_min(k, v)) {
    EXPECT_EQ(k, kMax);
    EXPECT_TRUE(values.insert(v).second) << "duplicated value " << v;
  }
  EXPECT_EQ(values.size(), 64u);
  EXPECT_FALSE(handle.delete_min(k, v));
}

TEST(MultiQueueMaxKey, MaximalKeySortsAfterEverythingElse) {
  constexpr K kMax = std::numeric_limits<K>::max();
  MultiQueue<K, V> queue(1, 4, /*seed=*/5);
  auto handle = queue.get_handle(0);
  handle.insert(kMax, 1);
  handle.insert(10, 2);
  handle.insert(kMax - 1, 3);
  std::vector<K> keys;
  K k;
  V v;
  while (handle.delete_min(k, v)) keys.push_back(k);
  ASSERT_EQ(keys.size(), 3u);
  // Relaxed ordering across local queues, but nothing may vanish and the
  // maximal key must still be present.
  EXPECT_EQ(std::count(keys.begin(), keys.end(), kMax), 1);
  EXPECT_EQ(std::count(keys.begin(), keys.end(), 10u), 1);
}

TYPED_TEST(QueueSequentialTest, ManyHandlesOneThreadStillCorrect) {
  // Handles may be created freely; using several from one thread must not
  // confuse per-thread state.
  auto queue = QueueTraits<TypeParam>::make(4);
  auto h0 = queue->get_handle(0);
  auto h1 = queue->get_handle(1);
  auto h2 = queue->get_handle(2);
  for (V i = 0; i < 300; ++i) {
    h0.insert(3 * i, i);
    h1.insert(3 * i + 1, 1000 + i);
    h2.insert(3 * i + 2, 2000 + i);
  }
  std::set<V> values;
  K k;
  V v;
  auto h3 = queue->get_handle(3);
  while (h3.delete_min(k, v)) values.insert(v);
  // h3's view may require stealing from the other handles' thread slots
  // (DLSM); every item must still be reachable.
  EXPECT_EQ(values.size(), 900u);
}

}  // namespace
}  // namespace cpq
