// HuntHeap-specific tests: bit-reversal slot assignment, capacity handling,
// heap validity at quiescence, and targeted concurrent stress on the
// insert-vs-delete tag reconciliation protocol.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <set>
#include <vector>

#include "platform/rng.hpp"
#include "platform/thread_util.hpp"
#include "queues/hunt_heap.hpp"

namespace cpq {
namespace {

using K = std::uint64_t;
using V = std::uint64_t;

TEST(HuntHeap, SequentialSortedDrain) {
  HuntHeap<K, V> heap(1, 1u << 14);
  auto handle = heap.get_handle(0);
  Xoroshiro128 rng(1);
  std::vector<K> keys;
  for (int i = 0; i < 5000; ++i) {
    const K key = rng.next_below(2000);
    keys.push_back(key);
    handle.insert(key, i);
  }
  std::sort(keys.begin(), keys.end());
  for (std::size_t i = 0; i < keys.size(); ++i) {
    K k;
    V v;
    ASSERT_TRUE(handle.delete_min(k, v));
    ASSERT_EQ(k, keys[i]);
  }
}

TEST(HuntHeap, CapacityIsRespected) {
  HuntHeap<K, V> heap(1, 8);
  auto handle = heap.get_handle(0);
  for (int i = 0; i < 8; ++i) EXPECT_TRUE(handle.try_insert(i, i));
  EXPECT_FALSE(handle.try_insert(99, 99));
  K k;
  V v;
  ASSERT_TRUE(handle.delete_min(k, v));
  EXPECT_TRUE(handle.try_insert(99, 99));
}

TEST(HuntHeap, HeapValidAtQuiescence) {
  HuntHeap<K, V> heap(4, 1u << 14);
  run_team(4, [&](unsigned tid) {
    auto handle = heap.get_handle(tid);
    Xoroshiro128 rng(tid + 1);
    for (int op = 0; op < 4000; ++op) {
      if (rng.next_below(100) < 60) {
        handle.insert(rng.next_below(10000), tid);
      } else {
        K k;
        V v;
        handle.delete_min(k, v);
      }
    }
  });
  EXPECT_TRUE(heap.unsafe_is_valid_heap());
}

TEST(HuntHeap, ConcurrentInsertersOnly) {
  HuntHeap<K, V> heap(4, 1u << 16);
  constexpr std::uint64_t per_thread = 8000;
  run_team(4, [&](unsigned tid) {
    auto handle = heap.get_handle(tid);
    Xoroshiro128 rng(tid + 11);
    for (std::uint64_t i = 0; i < per_thread; ++i) {
      handle.insert(rng.next_below(1u << 20),
                    (static_cast<V>(tid) << 32) | i);
    }
  });
  EXPECT_EQ(heap.unsafe_size(), 4 * per_thread);
  EXPECT_TRUE(heap.unsafe_is_valid_heap());
  // Drain sorted.
  auto handle = heap.get_handle(0);
  K prev = 0;
  K k;
  V v;
  std::uint64_t count = 0;
  while (handle.delete_min(k, v)) {
    ASSERT_GE(k, prev);
    prev = k;
    ++count;
  }
  EXPECT_EQ(count, 4 * per_thread);
}

TEST(HuntHeap, ConcurrentMixedExactlyOnce) {
  HuntHeap<K, V> heap(4, 1u << 16);
  constexpr unsigned kThreads = 4;
  constexpr std::uint64_t kOps = 6000;
  std::vector<std::vector<V>> deleted(kThreads);
  std::vector<std::uint64_t> inserted(kThreads, 0);
  run_team(kThreads, [&](unsigned tid) {
    auto handle = heap.get_handle(tid);
    Xoroshiro128 rng(tid + 21);
    for (std::uint64_t op = 0; op < kOps; ++op) {
      if (rng.next_below(2) == 0) {
        handle.insert(rng.next_below(5000),
                      (static_cast<V>(tid + 1) << 32) | inserted[tid]);
        ++inserted[tid];
      } else {
        K k;
        V v;
        if (handle.delete_min(k, v)) deleted[tid].push_back(v);
      }
    }
  });
  auto handle = heap.get_handle(0);
  std::vector<V> rest;
  K k;
  V v;
  while (handle.delete_min(k, v)) rest.push_back(v);
  std::set<V> seen;
  std::uint64_t total = 0;
  for (const auto& per : deleted) {
    for (V value : per) {
      ASSERT_TRUE(seen.insert(value).second);
      ++total;
    }
  }
  for (V value : rest) {
    ASSERT_TRUE(seen.insert(value).second);
    ++total;
  }
  std::uint64_t expected = 0;
  for (std::uint64_t n : inserted) expected += n;
  EXPECT_EQ(total, expected);
}

}  // namespace
}  // namespace cpq
