// The adversarial workload subsystem (src/workloads/): statistical
// goodness-of-fit for the skewed key distributions, mean-rate and
// overdispersion checks for the open-loop arrival processes, determinism
// under (seed, thread id), spec-string parsing, the anti-artifact hygiene
// helpers, and end-to-end conservation / quality runs under skewed keys.
//
// Every statistical test draws from a fixed seed, so thresholds only need
// to hold for the one deterministic stream each test replays — they are
// still sized generously (3-4 sigma or a 99.9% chi-square quantile) so a
// legitimate sampler change that reseeds the stream stays green.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <memory>
#include <numeric>
#include <thread>
#include <vector>

#include "bench_framework/harness.hpp"
#include "bench_framework/registry.hpp"
#include "platform/rng.hpp"
#include "queues/multiqueue.hpp"
#include "validation/checked_queue.hpp"
#include "workloads/arrivals.hpp"
#include "workloads/distributions.hpp"
#include "workloads/hygiene.hpp"
#include "workloads/keyspace.hpp"
#include "workloads/shape.hpp"
#include "workloads/spec.hpp"

namespace cpq::workloads {
namespace {

// ------------------------------------------------------------ ZipfSampler

// Chi-square goodness of fit against the exact rank probabilities: n = 50,
// theta = 1.1, 200k draws. df = 49; the 99.9% quantile is 85.35 — a broken
// sampler (e.g. the classic off-by-one at the head rank, which holds ~23%
// of the mass here) lands in the thousands.
TEST(ZipfSampler, ChiSquareGoodnessOfFit) {
  constexpr std::uint64_t kN = 50;
  constexpr std::uint64_t kDraws = 200'000;
  const ZipfSampler zipf(kN, 1.1);
  Xoroshiro128 rng(0xf17df00dULL);

  std::vector<std::uint64_t> counts(kN + 1, 0);
  for (std::uint64_t i = 0; i < kDraws; ++i) {
    const std::uint64_t rank = zipf.next(rng);
    ASSERT_GE(rank, 1u);
    ASSERT_LE(rank, kN);
    ++counts[rank];
  }

  double chi2 = 0.0;
  for (std::uint64_t k = 1; k <= kN; ++k) {
    const double expected = zipf.probability(k) * kDraws;
    ASSERT_GT(expected, 5.0) << "rank " << k;  // chi-square validity
    const double diff = static_cast<double>(counts[k]) - expected;
    chi2 += diff * diff / expected;
  }
  EXPECT_LT(chi2, 90.0) << "chi2 over 49 df";
  // Monotone popularity at the head: rank 1 strictly beats rank 2.
  EXPECT_GT(counts[1], counts[2]);
}

TEST(ZipfSampler, ProbabilitiesSumToOne) {
  const ZipfSampler zipf(100, 0.75);
  double sum = 0.0;
  for (std::uint64_t k = 1; k <= 100; ++k) sum += zipf.probability(k);
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(ZipfSampler, DegenerateSingleRank) {
  const ZipfSampler zipf(1, 1.1);
  Xoroshiro128 rng(1);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(zipf.next(rng), 1u);
}

// --------------------------------------------------------- HotspotSampler

// 90% of draws must land below hot_span: binomial with p = 0.9 over 100k
// draws has sigma ~95, so a 400-draw band is > 4 sigma.
TEST(HotspotSampler, HotFractionWithinFourSigma) {
  constexpr std::uint64_t kSpan = 1'000'000;
  constexpr std::uint64_t kDraws = 100'000;
  const HotspotSampler hotspot(kSpan, 0.9, 0.1);
  EXPECT_EQ(hotspot.hot_span(), kSpan / 10);
  Xoroshiro128 rng(0x407ULL);

  std::uint64_t hot = 0;
  for (std::uint64_t i = 0; i < kDraws; ++i) {
    const std::uint64_t key = hotspot.next(rng);
    ASSERT_LT(key, kSpan);
    if (key < hotspot.hot_span()) ++hot;
  }
  EXPECT_NEAR(static_cast<double>(hot), 0.9 * kDraws, 400.0);
}

TEST(HotspotSampler, ColdDrawsCoverTheRemainder) {
  const HotspotSampler hotspot(1000, 0.0, 0.1);  // never hot
  Xoroshiro128 rng(3);
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t key = hotspot.next(rng);
    EXPECT_GE(key, hotspot.hot_span());
    EXPECT_LT(key, 1000u);
  }
}

// ------------------------------------------------------------ KeyGenerator

TEST(KeyGenerator, DijkstraIncrementsStayInBand) {
  KeyGenerator gen(KeyConfig::dijkstra(5, 9), 42, 0);
  std::uint64_t frontier = 0;
  for (int i = 0; i < 10'000; ++i) {
    const std::uint64_t key = gen.next();
    EXPECT_GE(key, frontier + 5);
    EXPECT_LE(key, frontier + 9);
    // The model: the popped minimum advances, new work trails it.
    frontier = key - 3;
    gen.observe_deleted(frontier);
  }
}

TEST(KeyGenerator, ZipfKeysAreZeroBasedAndBounded) {
  KeyGenerator gen(KeyConfig::zipf(1.1, 6), 7, 0);  // span 64
  std::vector<std::uint64_t> counts(64, 0);
  for (int i = 0; i < 50'000; ++i) {
    const std::uint64_t key = gen.next();
    ASSERT_LT(key, 64u);
    ++counts[key];
  }
  // Rank 1 maps to key 0: the popular mass sits at the minimum end.
  EXPECT_EQ(std::max_element(counts.begin(), counts.end()), counts.begin());
}

TEST(KeyGenerator, SameSeedSameThreadReplaysIdenticalKeys) {
  for (const KeyConfig& cfg :
       {KeyConfig::zipf(1.1, 20), KeyConfig::hotspot(0.9, 0.1, 20),
        KeyConfig::dijkstra(1, 100), KeyConfig::uniform(32)}) {
    KeyGenerator a(cfg, 99, 3);
    KeyGenerator b(cfg, 99, 3);
    for (int i = 0; i < 1000; ++i) {
      ASSERT_EQ(a.next(), b.next()) << cfg.name();
    }
  }
}

TEST(KeyGenerator, DifferentThreadsDrawIndependentStreams) {
  KeyGenerator a(KeyConfig::zipf(1.1, 32), 99, 0);
  KeyGenerator b(KeyConfig::zipf(1.1, 32), 99, 1);
  int same = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_LT(same, 100);  // zipf collides on hot keys, but not in lockstep
}

// -------------------------------------------------------- ArrivalProcess

// Helper: simulate one process for `horizon_s` of process time, returning
// the per-bin arrival counts at 10 ms resolution.
std::vector<std::uint64_t> bin_arrivals(ArrivalProcess& process,
                                        double horizon_s) {
  const double horizon_ns = horizon_s * 1e9;
  const double bin_ns = 10e6;
  std::vector<std::uint64_t> bins(
      static_cast<std::size_t>(horizon_ns / bin_ns), 0);
  for (;;) {
    const double t = process.next_arrival_ns();
    if (t >= horizon_ns) break;
    ++bins[static_cast<std::size_t>(t / bin_ns)];
  }
  return bins;
}

double mean_of(const std::vector<std::uint64_t>& bins) {
  return std::accumulate(bins.begin(), bins.end(), 0.0) /
         static_cast<double>(bins.size());
}

double dispersion_index(const std::vector<std::uint64_t>& bins) {
  const double mean = mean_of(bins);
  double var = 0.0;
  for (const std::uint64_t c : bins) {
    const double d = static_cast<double>(c) - mean;
    var += d * d;
  }
  var /= static_cast<double>(bins.size() - 1);
  return var / mean;
}

// The MMPP's long-run rate has a closed form; the empirical rate over 20 s
// of process time must match it within 15%, and the 10 ms bin counts must
// be clearly overdispersed (a Poisson process has index 1).
TEST(ArrivalProcess, MmppMatchesMeanRateAndIsOverdispersed) {
  const ArrivalConfig cfg = ArrivalConfig::mmpp(20'000, 1'000, 0.010, 0.090);
  EXPECT_NEAR(cfg.mean_hz(), 2'900.0, 1e-9);

  ArrivalProcess process(cfg, 0xabcdULL, 0);
  const std::vector<std::uint64_t> bins = bin_arrivals(process, 20.0);
  const double rate = mean_of(bins) * 100.0;  // 10 ms bins -> per second
  EXPECT_NEAR(rate, cfg.mean_hz(), 0.15 * cfg.mean_hz());
  EXPECT_GT(dispersion_index(bins), 1.5);
  EXPECT_GT(process.bursts(), 10u);  // ~1 ON sojourn per 100 ms over 20 s
  const double on_fraction = process.on_time_fraction();
  EXPECT_GT(on_fraction, 0.02);
  EXPECT_LT(on_fraction, 0.5);  // stationary ON share is 10%
}

// The Poisson special case: correct rate, dispersion ~1, exponential gaps
// with mean 1/rate.
TEST(ArrivalProcess, PoissonMatchesRateAndIsNotBursty) {
  const ArrivalConfig cfg = ArrivalConfig::poisson(10'000);
  ArrivalProcess process(cfg, 0x9e3ULL, 0);
  const std::vector<std::uint64_t> bins = bin_arrivals(process, 10.0);
  const double rate = mean_of(bins) * 100.0;
  EXPECT_NEAR(rate, 10'000.0, 0.05 * 10'000.0);
  EXPECT_LT(dispersion_index(bins), 1.3);
  EXPECT_EQ(process.bursts(), 0u);  // single eternal ON state
  EXPECT_DOUBLE_EQ(process.on_time_fraction(), 1.0);

  ArrivalProcess gaps(cfg, 0x9e3ULL, 1);
  double prev = 0.0, sum = 0.0;
  constexpr int kGaps = 50'000;
  for (int i = 0; i < kGaps; ++i) {
    const double t = gaps.next_arrival_ns();
    EXPECT_GT(t, prev);  // strictly increasing schedule
    sum += t - prev;
    prev = t;
  }
  EXPECT_NEAR(sum / kGaps, 1e5, 0.05 * 1e5);  // mean gap 100 us
}

TEST(ArrivalProcess, SameSeedReplaysIdenticalSchedule) {
  const ArrivalConfig cfg = ArrivalConfig::mmpp(5'000, 500, 0.010, 0.090);
  ArrivalProcess a(cfg, 4242, 2);
  ArrivalProcess b(cfg, 4242, 2);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_DOUBLE_EQ(a.next_arrival_ns(), b.next_arrival_ns());
  }
  ArrivalProcess other(cfg, 4242, 3);
  EXPECT_NE(a.next_arrival_ns(), other.next_arrival_ns());
}

// ----------------------------------------------------------------- hygiene

TEST(LayoutPerturbation, DisabledCostsNothingEnabledHoldsBlocks) {
  const LayoutPerturbation off(false, 1);
  EXPECT_EQ(off.blocks(), 0u);
  const LayoutPerturbation a(true, 1);
  const LayoutPerturbation b(true, 1);
  EXPECT_GT(a.blocks(), 0u);
  EXPECT_EQ(a.blocks(), b.blocks());  // same seed, same layout
}

TEST(DeterministicShuffle, SeedStablePermutation) {
  std::vector<int> first(100);
  std::iota(first.begin(), first.end(), 0);
  std::vector<int> second = first;
  const std::vector<int> identity = first;

  Xoroshiro128 rng_a(7), rng_b(7);
  deterministic_shuffle(first, rng_a);
  deterministic_shuffle(second, rng_b);
  EXPECT_EQ(first, second);
  EXPECT_NE(first, identity);
  std::sort(first.begin(), first.end());
  EXPECT_EQ(first, identity);  // a permutation, nothing lost
}

// -------------------------------------------------------------- spec.hpp

TEST(SpecParse, KeySpecsRoundTripThroughNames) {
  const auto zipf = parse_key_spec("zipf:1.1");
  ASSERT_TRUE(zipf);
  EXPECT_EQ(zipf->distribution, KeyDistribution::kZipf);
  EXPECT_DOUBLE_EQ(zipf->zipf_theta, 1.1);
  EXPECT_EQ(zipf->bits, 32u);
  EXPECT_EQ(zipf->name(), "zipf1.1");

  const auto zipf_bits = parse_key_spec("zipf:0.8,20");
  ASSERT_TRUE(zipf_bits);
  EXPECT_EQ(zipf_bits->bits, 20u);

  const auto hotspot = parse_key_spec("hotspot:0.9,0.1");
  ASSERT_TRUE(hotspot);
  EXPECT_DOUBLE_EQ(hotspot->hot_ops, 0.9);
  EXPECT_DOUBLE_EQ(hotspot->hot_keys, 0.1);
  EXPECT_EQ(hotspot->name(), "hotspot0.9/0.1");

  const auto dijkstra = parse_key_spec("dijkstra:1,100");
  ASSERT_TRUE(dijkstra);
  EXPECT_EQ(dijkstra->dijkstra_min, 1u);
  EXPECT_EQ(dijkstra->dijkstra_max, 100u);
  EXPECT_EQ(dijkstra->name(), "dijkstra1-100");

  for (const char* legacy : {"uniform32", "uniform16", "uniform8",
                             "ascending", "descending", "hold"}) {
    EXPECT_TRUE(parse_key_spec(legacy)) << legacy;
  }
}

TEST(SpecParse, RejectsMalformedKeySpecs) {
  for (const char* bad :
       {"", "bogus", "zipf", "zipf:", "zipf:0", "zipf:-1", "zipf:17",
        "zipf:1.1,0", "zipf:1.1,64", "zipf:1.1,20,3", "zipf:abc",
        "hotspot:0.9", "hotspot:1.5,0.1", "hotspot:0.9,0", "hotspot:0.9,1.5",
        "hotspot:0.9,,", "hotspot:0.9,0.1,64", "dijkstra:1", "dijkstra:5,2",
        "dijkstra:0,0", "dijkstra:-1,5", "dijkstra:1,100,3", "uniform64"}) {
    EXPECT_FALSE(parse_key_spec(bad)) << bad;
  }
}

TEST(SpecParse, ArrivalSpecsRoundTrip) {
  const auto closed = parse_arrival_spec("closed");
  ASSERT_TRUE(closed);
  EXPECT_FALSE(closed->enabled());

  const auto poisson = parse_arrival_spec("poisson:5000");
  ASSERT_TRUE(poisson);
  EXPECT_EQ(poisson->kind, ArrivalConfig::Kind::kPoisson);
  EXPECT_DOUBLE_EQ(poisson->mean_hz(), 5'000.0);

  const auto mmpp = parse_arrival_spec("mmpp:20000,1000,10,90");
  ASSERT_TRUE(mmpp);
  EXPECT_EQ(mmpp->kind, ArrivalConfig::Kind::kMmpp);
  EXPECT_DOUBLE_EQ(mmpp->on_s, 0.010);
  EXPECT_DOUBLE_EQ(mmpp->off_s, 0.090);
  EXPECT_NEAR(mmpp->mean_hz(), 2'900.0, 1e-9);
  EXPECT_EQ(mmpp->name(), "mmpp:20000,1000,10,90");
}

TEST(SpecParse, RejectsMalformedArrivalSpecs) {
  for (const char* bad :
       {"", "poisson", "poisson:", "poisson:0", "poisson:-5", "poisson:abc",
        "mmpp:1000", "mmpp:1000,100,10", "mmpp:1000,2000,10,90",
        "mmpp:0,0,10,90", "mmpp:1000,100,0,90", "mmpp:1000,100,10,0",
        "mmpp:1000,-1,10,90", "burst:5"}) {
    EXPECT_FALSE(parse_arrival_spec(bad)) << bad;
  }
}

// ------------------------------------------------------------ shape.hpp

TEST(OpChooser, ProducerCountClampsToBothSides) {
  EXPECT_EQ(OpChooser::producer_count(8, 0.25), 2u);
  EXPECT_EQ(OpChooser::producer_count(8, 0.5), 4u);
  EXPECT_EQ(OpChooser::producer_count(8, 1.0), 8u);
  EXPECT_EQ(OpChooser::producer_count(4, 0.9), 3u);  // keep one consumer
  EXPECT_EQ(OpChooser::producer_count(1, 0.01), 1u);  // keep one producer
  EXPECT_EQ(OpChooser::producer_count(1, 1.0), 1u);
}

TEST(OpChooser, PcSplitAssignsRolesByFraction) {
  constexpr unsigned kThreads = 8;
  const unsigned producers = OpChooser::producer_count(kThreads, 0.25);
  for (unsigned tid = 0; tid < kThreads; ++tid) {
    OpChooser chooser(Workload::kPcSplit, tid, kThreads, 42, 0.5, 1, 0.25);
    const bool expect_insert = tid < producers;
    for (int op = 0; op < 10; ++op) {
      EXPECT_EQ(chooser.next_is_insert(), expect_insert) << tid;
    }
  }
}

// ---------------------------------------------- end-to-end under skew

// Conservation under hotspot keys: skewed popularity must not break
// exactly-once delivery on a relaxed queue.
TEST(SkewedEndToEnd, CheckedMultiQueueConservesUnderHotspotKeys) {
  using Queue = MultiQueue<std::uint64_t, std::uint64_t>;
  constexpr unsigned kThreads = 4;
  constexpr std::uint64_t kOps = 20'000;
  validation::CheckedQueue<Queue> queue(
      kThreads, std::make_unique<Queue>(kThreads, 4, 17));

  std::vector<std::thread> team;
  for (unsigned tid = 0; tid < kThreads; ++tid) {
    team.emplace_back([&, tid] {
      auto handle = queue.get_handle(tid);
      KeyGenerator gen(KeyConfig::hotspot(0.9, 0.004, 16), 1234, tid);
      OpChooser chooser(Workload::kUniform, tid, kThreads, 1234);
      std::uint64_t inserted = 0;
      for (std::uint64_t op = 0; op < kOps; ++op) {
        if (chooser.next_is_insert()) {
          handle.insert(gen.next(),
                        (static_cast<std::uint64_t>(tid + 1) << 40) |
                            inserted++);
        } else {
          std::uint64_t k, v;
          if (handle.delete_min(k, v)) gen.observe_deleted(k);
        }
      }
    });
  }
  for (auto& t : team) t.join();

  const validation::ReconcileReport report = queue.reconcile();
  EXPECT_TRUE(report.ok()) << report.to_string();
  EXPECT_GT(report.inserted, 0u);
}

// The full quality pipeline (rank-error replay included) must complete on
// the registry's MultiQueue under a Zipf keyspace.
TEST(SkewedEndToEnd, RegistryQualityRunCompletesUnderZipf) {
  const bench::QueueSpec* mq = bench::find_queue("mq");
  ASSERT_NE(mq, nullptr);
  bench::BenchConfig cfg;
  cfg.threads = 2;
  cfg.keys = KeyConfig::zipf(1.1, 16);
  cfg.prefill = 2'000;
  cfg.ops_per_thread = 2'000;
  cfg.repetitions = 1;
  cfg.pin_threads = false;
  cfg.label = "workloads_test/mq";
  const bench::QualityResult result = mq->quality(cfg);
  EXPECT_FALSE(result.failed());
  EXPECT_GT(result.deletions, 0u);
}

// Throughput with every new knob at once: MMPP pacing, pcsplit roles,
// shuffled prefill and layout perturbation — one short repetition must
// complete and report the burst diagnostics.
TEST(SkewedEndToEnd, ThroughputWithPacingAndHygieneCompletes) {
  const bench::QueueSpec* mq = bench::find_queue("mq");
  ASSERT_NE(mq, nullptr);
  bench::BenchConfig cfg;
  cfg.threads = 2;
  cfg.workload = Workload::kPcSplit;
  cfg.producer_fraction = 0.5;
  cfg.keys = KeyConfig::hotspot(0.9, 0.1, 20);
  cfg.prefill = 1'000;
  cfg.duration_s = 0.05;
  cfg.repetitions = 1;
  cfg.pin_threads = false;
  cfg.arrivals = ArrivalConfig::mmpp(50'000, 5'000, 0.005, 0.015);
  cfg.shuffle_prefill = true;
  cfg.perturb_layout = true;
  cfg.label = "workloads_test/mq-paced";
  const bench::ThroughputResult result = mq->throughput(cfg);
  EXPECT_FALSE(result.failed());
  ASSERT_EQ(result.on_fraction_per_rep.size(), 1u);
  EXPECT_GT(result.on_fraction_per_rep[0], 0.0);
  EXPECT_LE(result.on_fraction_per_rep[0], 1.0);
}

}  // namespace
}  // namespace cpq::workloads
