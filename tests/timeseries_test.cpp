// Telemetry plane test suite (obs/timeseries.hpp + obs/slo.hpp +
// platform/clock.hpp): the shared TSC calibration, windowed histogram
// deltas, SLO grammar and burn-rate semantics, the sampled sojourn stamp
// table, and the TelemetryPlane itself — lifecycle, strict record
// monotonicity and delta conservation under multithreaded hammering, and
// the JSONL / Prometheus / flight-recorder exports. Runs under TSan in CI:
// the hammering tests double as race detectors for the hot-path feeds.

#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "obs/histogram.hpp"
#include "obs/metrics.hpp"
#include "obs/slo.hpp"
#include "obs/timeseries.hpp"
#include "platform/clock.hpp"
#include "platform/timing.hpp"

namespace cpq::obs {
namespace {

std::string drain(std::FILE* f) {
  std::string text;
  std::rewind(f);
  char buf[4096];
  std::size_t got;
  while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    text.append(buf, got);
  }
  return text;
}

// ---- platform/clock.hpp: the one shared calibration ----------------------

TEST(Clock, MonotonicNsAdvancesAndNeverRegresses) {
  const std::uint64_t a = monotonic_ns();
  std::uint64_t b = a;
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t now = monotonic_ns();
    ASSERT_GE(now, b);
    b = now;
  }
  EXPECT_GE(monotonic_us(), a / 1000);
}

TEST(Clock, TscCalibrationMapsTicksOntoTheMonotonicTimeline) {
  const TscClock& clock = tsc_clock();
  ASSERT_GT(clock.ns_per_tick(), 0.0);
  // to_ns(fast_timestamp()) and monotonic_ns() read the same instant
  // through two paths; the affine TSC map must land within a loose bound
  // (the calibration is good to much better than 10 ms over a test run).
  const std::uint64_t via_tsc = clock.to_ns(fast_timestamp());
  const std::uint64_t direct = monotonic_ns();
  const std::uint64_t diff =
      via_tsc > direct ? via_tsc - direct : direct - via_tsc;
  EXPECT_LT(diff, 10'000'000u) << "tsc=" << via_tsc << " mono=" << direct;
  // The map itself is monotone in the tick argument.
  const std::uint64_t t0 = fast_timestamp();
  EXPECT_LE(clock.to_ns(t0), clock.to_ns(t0 + 1'000'000));
}

// ---- histogram windows ---------------------------------------------------

TEST(HistogramWindow, FromDeltaCoversExactlyTheWindow) {
  AtomicLogHistogram hist;
  std::array<std::uint64_t, LogHistogram::kBuckets> before{};
  std::array<std::uint64_t, LogHistogram::kBuckets> after{};

  for (int i = 0; i < 100; ++i) hist.record(1000);
  hist.load_buckets(before.data());

  // The window holds only what lands between the two snapshots.
  for (int i = 0; i < 90; ++i) hist.record(2000);
  for (int i = 0; i < 10; ++i) hist.record(64000);
  hist.load_buckets(after.data());

  const HistogramWindow w =
      HistogramWindow::from_delta(after.data(), before.data());
  EXPECT_EQ(w.count, 100u);
  // Bucket representatives quantize to ~3%; the pre-window 1000s must not
  // leak in, so p50 sits near 2000 and the tail near 64000.
  EXPECT_NEAR(static_cast<double>(w.p50), 2000.0, 2000.0 * 0.05);
  EXPECT_NEAR(static_cast<double>(w.p99), 64000.0, 64000.0 * 0.05);
  EXPECT_NEAR(static_cast<double>(w.max), 64000.0, 64000.0 * 0.05);

  const HistogramWindow empty =
      HistogramWindow::from_delta(after.data(), after.data());
  EXPECT_EQ(empty.count, 0u);
  EXPECT_EQ(empty.p99, 0u);
}

TEST(HistogramWindow, ConcurrentRecordersConserveTheTotalCount) {
  AtomicLogHistogram hist;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 50000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&hist, t] {
      for (int i = 0; i < kPerThread; ++i) {
        hist.record(static_cast<std::uint64_t>(t) * 1000 + 100);
      }
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(hist.count(),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
}

// ---- SLO grammar ---------------------------------------------------------

TEST(SloSpec, ParsesWellFormedObjectiveLists) {
  const auto one = parse_slo_spec("p99_sojourn_us<500");
  ASSERT_TRUE(one.has_value());
  ASSERT_EQ(one->size(), 1u);
  EXPECT_EQ((*one)[0].metric, "p99_sojourn_us");
  EXPECT_TRUE((*one)[0].less_than);
  EXPECT_DOUBLE_EQ((*one)[0].threshold, 500.0);
  EXPECT_EQ((*one)[0].to_string(), "p99_sojourn_us<500");

  const auto many =
      parse_slo_spec("shed_pct<1,delivered_per_s>10000,in_flight<1e6");
  ASSERT_TRUE(many.has_value());
  ASSERT_EQ(many->size(), 3u);
  EXPECT_FALSE((*many)[1].less_than);
  EXPECT_DOUBLE_EQ((*many)[2].threshold, 1e6);
}

TEST(SloSpec, RejectsEveryMalformedClause) {
  EXPECT_FALSE(parse_slo_spec("").has_value());
  EXPECT_FALSE(parse_slo_spec(",").has_value());
  EXPECT_FALSE(parse_slo_spec("p99_sojourn_us").has_value());       // no cmp
  EXPECT_FALSE(parse_slo_spec("p99_sojourn_us<>5").has_value());    // both
  EXPECT_FALSE(parse_slo_spec("p99_sojourn_us<").has_value());      // no num
  EXPECT_FALSE(parse_slo_spec("p99_sojourn_us<5x").has_value());    // trail
  EXPECT_FALSE(parse_slo_spec("p99_sojourn_us<nan").has_value());
  EXPECT_FALSE(parse_slo_spec("bogus_metric<5").has_value());
  EXPECT_FALSE(parse_slo_spec("shed_pct<1,").has_value());
  EXPECT_FALSE(parse_slo_spec("shed_pct<1,,shed_pct<2").has_value());
  // The objective count is bounded (the breach mask is 32 bits).
  std::string too_many = "shed_pct<1";
  for (int i = 0; i < 32; ++i) too_many += ",shed_pct<1";
  EXPECT_FALSE(parse_slo_spec(too_many).has_value());
}

TEST(SloTracker, MultiWindowBurnGatesBreachEntryAndExit) {
  SloTracker tracker;
  auto spec = parse_slo_spec("p99_latency_us<100");
  ASSERT_TRUE(spec.has_value());
  tracker.configure(*spec);
  ASSERT_TRUE(tracker.configured());
  ASSERT_EQ(tracker.size(), 1u);

  std::uint64_t t = 1'000'000;
  const auto step = [&](double value) {
    const auto lookup =
        [&](const std::string&) -> std::optional<double> { return value; };
    const std::uint32_t mask = tracker.evaluate(lookup, t);
    t += 1'000'000;
    return mask;
  };

  // Meeting the objective: no violations, no burn, no breach.
  for (int i = 0; i < 10; ++i) EXPECT_EQ(step(50.0), 0u);
  EXPECT_EQ(tracker.state(0).bad, 0u);
  EXPECT_FALSE(tracker.state(0).breached);
  EXPECT_EQ(tracker.breach_ns(0, t), 0u);

  // One violating sample: with a 1% error budget a single bad sample in
  // both windows already exceeds the alert burn, opening an episode.
  EXPECT_EQ(step(500.0), 1u);
  EXPECT_EQ(tracker.state(0).bad, 1u);
  EXPECT_TRUE(tracker.state(0).breached);
  EXPECT_EQ(tracker.state(0).episodes, 1u);
  EXPECT_GT(tracker.state(0).burn_fast, SloTracker::kAlertBurn);
  // A still-open episode accrues breach time against `now`.
  EXPECT_GT(tracker.breach_ns(0, t + 5'000'000), 0u);

  // Good samples flush the fast window first: after kFastWindow clean
  // evaluations the episode closes even though the slow window still
  // remembers the spike.
  for (unsigned i = 0; i < SloTracker::kFastWindow; ++i) step(50.0);
  EXPECT_FALSE(tracker.state(0).breached);
  EXPECT_EQ(tracker.state(0).episodes, 1u);
  const std::uint64_t settled = tracker.breach_ns(0, t);
  EXPECT_GT(settled, 0u);
  // Closed episodes stop accruing.
  EXPECT_EQ(tracker.breach_ns(0, t + 1'000'000'000), settled);
}

TEST(SloTracker, UnavailableMetricsAreNeverViolations) {
  SloTracker tracker;
  auto spec = parse_slo_spec("rank_p90<10");
  ASSERT_TRUE(spec.has_value());
  tracker.configure(*spec);
  const auto absent =
      [](const std::string&) -> std::optional<double> { return std::nullopt; };
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(tracker.evaluate(absent, 1000), 0u);
  }
  EXPECT_EQ(tracker.state(0).samples, 0u);
  EXPECT_EQ(tracker.state(0).bad, 0u);
  EXPECT_EQ(tracker.state(0).unavailable, 5u);
  EXPECT_FALSE(tracker.state(0).breached);
}

TEST(SloTracker, GreaterThanObjectivesFireOnLowValues) {
  SloTracker tracker;
  auto spec = parse_slo_spec("delivered_per_s>1000");
  ASSERT_TRUE(spec.has_value());
  tracker.configure(*spec);
  const auto at = [&](double v) {
    return tracker.evaluate(
        [&](const std::string&) -> std::optional<double> { return v; },
        1000);
  };
  EXPECT_EQ(at(5000.0), 0u);
  EXPECT_EQ(at(10.0), 1u);
  EXPECT_EQ(at(1000.0), 1u);  // strict: exactly the threshold violates
  EXPECT_EQ(tracker.state(0).bad, 2u);
}

// ---- sojourn stamp table -------------------------------------------------

TEST(SojournStampTable, SamplesMatchesAndDropsOverwrites) {
  timeseries_detail::SojournStampTable table;
  EXPECT_TRUE(table.sampled(0));
  EXPECT_TRUE(table.sampled(64));
  EXPECT_FALSE(table.sampled(1));
  EXPECT_FALSE(table.sampled(63));

  table.submit(64, 12345);
  const auto tick = table.match(64);
  ASSERT_TRUE(tick.has_value());
  EXPECT_EQ(*tick, 12345u);
  // The match consumed the slot.
  EXPECT_FALSE(table.match(64).has_value());

  // Unmatched ids miss cleanly.
  EXPECT_FALSE(table.match(128).has_value());

  // reset() clears every stamped slot.
  table.submit(192, 777);
  table.reset();
  EXPECT_FALSE(table.match(192).has_value());
}

// ---- the plane: lifecycle ------------------------------------------------

TEST(TelemetryPlane, LifecycleIsIdempotentAndGated) {
  TelemetryPlane& plane = TelemetryPlane::global();
  plane.reset();
  EXPECT_FALSE(plane.active());
  EXPECT_EQ(plane.sample_count(), 0u);

  EXPECT_FALSE(plane.start(0.0));   // hz <= 0 never starts
  EXPECT_FALSE(plane.start(-5.0));
  EXPECT_FALSE(plane.active());

  ASSERT_TRUE(plane.start(100.0));
  EXPECT_TRUE(plane.active());
  EXPECT_FALSE(plane.start(100.0));  // already running

  plane.stop();
  EXPECT_FALSE(plane.active());
  // stop() always takes a final sample, so even an instant run has one
  // record covering its tail; a second stop() is a no-op.
  const std::uint64_t after_stop = plane.sample_count();
  EXPECT_GE(after_stop, 1u);
  plane.stop();
  EXPECT_EQ(plane.sample_count(), after_stop);

  plane.reset();
  EXPECT_EQ(plane.sample_count(), 0u);
}

TEST(TelemetryPlane, FeedsAreInertWhileInactive) {
  TelemetryPlane& plane = TelemetryPlane::global();
  plane.reset();
  // None of these may touch the ring or crash without a running sampler.
  plane.record_latency_ns(1000);
  plane.record_latency_ticks(1000);
  plane.record_sojourn_ns(1000);
  plane.note_submit(64, 1);
  plane.note_delivery(64, 2);
  ASSERT_TRUE(plane.start(50.0));
  plane.stop();
  // The inert feeds above must not have leaked into the started window.
  std::uint64_t latency_count = 0;
  plane.visit_records([&](const TelemetryRecord& r) {
    latency_count += r.latency.count;
    latency_count += r.sojourn.count;
  });
  EXPECT_EQ(latency_count, 0u);
  plane.reset();
}

// ---- the plane: hammering, monotonicity, conservation --------------------

TEST(TelemetryPlane, HammeredFeedsConserveDeltasAndStayMonotonic) {
  TelemetryPlane& plane = TelemetryPlane::global();
  plane.reset();

  const auto totals_before = MetricsRegistry::global().totals();
  constexpr unsigned kCounterIdx = static_cast<unsigned>(Counter::kCasRetry);

  ASSERT_TRUE(plane.start(2000.0));

  constexpr int kThreads = 4;
  constexpr std::uint64_t kPerThread = 20000;
  // Workers park after their loop instead of exiting: a thread exit folds
  // its metrics slice into the retired totals, and sampling concurrently
  // with that fold would make this conservation check racy rather than
  // exact. Holding the threads until stop() keeps every totals() read the
  // sampler takes on stable slices.
  std::atomic<int> done{0};
  std::atomic<bool> release{false};
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&plane, &done, &release, t] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        plane.record_latency_ns(500 + (i & 1023));
        plane.record_sojourn_ns(1500 + (i & 511));
        count(Counter::kCasRetry);
        // Exercise the sampled stamp path with matching ids.
        const std::uint64_t id = (static_cast<std::uint64_t>(t) * kPerThread
                                  + i) * 64;
        plane.note_submit(id, 100);
        plane.note_delivery(id, 200);
      }
      done.fetch_add(1, std::memory_order_release);
      while (!release.load(std::memory_order_acquire)) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    });
  }
  while (done.load(std::memory_order_acquire) < kThreads) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  plane.stop();
  release.store(true, std::memory_order_release);
  for (std::thread& w : workers) w.join();

  const auto totals_after = MetricsRegistry::global().totals();
  const std::uint64_t counter_expected =
      totals_after[kCounterIdx] - totals_before[kCounterIdx];
  ASSERT_EQ(counter_expected,
            static_cast<std::uint64_t>(kThreads) * kPerThread);

  std::uint64_t prev_seq = 0, prev_t = 0;
  bool first = true;
  std::uint64_t latency_sum = 0, sojourn_sum = 0, counter_sum = 0;
  std::uint64_t records = 0;
  plane.visit_records([&](const TelemetryRecord& r) {
    if (!first) {
      // The validators depend on STRICT monotonicity of both fields.
      EXPECT_GT(r.seq, prev_seq);
      EXPECT_GT(r.t_ns, prev_t);
    }
    EXPECT_GT(r.interval_ns, 0u);
    EXPECT_EQ(r.t_ns - prev_t, first ? r.t_ns : r.interval_ns);
    prev_seq = r.seq;
    prev_t = r.t_ns;
    first = false;
    latency_sum += r.latency.count;
    sojourn_sum += r.sojourn.count;
    counter_sum += r.counters[kCounterIdx];
    ++records;
  });
  ASSERT_GT(records, 0u);
  EXPECT_EQ(plane.sample_count(), records);  // nothing overwritten
  EXPECT_EQ(plane.dropped(), 0u);

  // Conservation: with no ring overwrite, the windowed deltas partition
  // the run exactly — every fed value lands in exactly one record.
  EXPECT_EQ(latency_sum, static_cast<std::uint64_t>(kThreads) * kPerThread);
  // The sojourn window is fed twice here: every direct record_sojourn_ns
  // call (exactly kThreads * kPerThread), plus one sample per matched
  // submit/delivery stamp pair. Stamps share open-addressed slots, so
  // cross-thread collisions drop some of the latter (by design) — the sum
  // is at least the direct feed and at most double it.
  EXPECT_GE(sojourn_sum, static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_LE(sojourn_sum, 2u * static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(counter_sum, counter_expected);

  plane.reset();
}

TEST(TelemetryPlane, RingOverwriteCountsDroppedRecords) {
  TelemetryPlane& plane = TelemetryPlane::global();
  plane.reset();
  // Capacity floors at 64; sample at 10 kHz until the ring has provably
  // wrapped (deadline-bounded so a starved CI box cannot hang the test).
  ASSERT_TRUE(plane.start(10000.0, 64));
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (plane.sample_count() < 100 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  plane.stop();
  EXPECT_GE(plane.sample_count(), 100u);
  EXPECT_GT(plane.dropped(), 0u);
  // The retained window is the newest `capacity` records, still strictly
  // ordered.
  std::uint64_t retained = 0, prev_seq = 0;
  bool first = true;
  plane.visit_records([&](const TelemetryRecord& r) {
    if (!first) EXPECT_GT(r.seq, prev_seq);
    prev_seq = r.seq;
    first = false;
    ++retained;
  });
  EXPECT_EQ(retained, 64u);
  plane.reset();
}

// ---- gauge providers and SLO integration ---------------------------------

TEST(TelemetryPlane, ProvidersFeedGaugesRatesAndSloMask) {
  TelemetryPlane& plane = TelemetryPlane::global();
  plane.reset();
  auto spec = parse_slo_spec("in_flight<10,p99_latency_us<1e9");
  ASSERT_TRUE(spec.has_value());
  plane.set_slo(*spec);

  std::atomic<std::uint64_t> delivered{0};
  ASSERT_TRUE(plane.start(500.0));
  {
    ScopedTelemetryProvider provider([&](GaugeSet& g) {
      g.set("delivered", static_cast<double>(
                             delivered.load(std::memory_order_relaxed)));
      g.set("in_flight", 25.0);  // always violating the first objective
    });
    const std::uint64_t base = plane.sample_count();
    for (int i = 0; i < 5000; ++i) {
      delivered.fetch_add(1, std::memory_order_relaxed);
      plane.record_latency_ns(800);
    }
    // Rates derive from gauge deltas, so at least two samples must land
    // with the provider registered (deadline-bounded wait, not a fixed
    // sleep, to survive starved CI boxes).
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (plane.sample_count() < base + 3 &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    plane.stop();
  }

  bool saw_gauge = false, saw_rate = false;
  std::uint32_t mask_union = 0;
  plane.visit_records([&](const TelemetryRecord& r) {
    if (const auto v = r.gauges.find("in_flight")) {
      saw_gauge = true;
      EXPECT_DOUBLE_EQ(*v, 25.0);
    }
    if (std::isfinite(r.delivered_per_s)) saw_rate = true;
    mask_union |= r.slo_breached;
  });
  EXPECT_TRUE(saw_gauge);
  // delivered moved 0 -> 5000 across the sampled window, so at least one
  // record derives a finite positive rate from the gauge delta.
  EXPECT_TRUE(saw_rate);
  // Objective 0 (in_flight<10) violates on every sample; objective 1
  // (p99_latency_us < 1e9 us) always holds, so its bit stays clear.
  EXPECT_EQ(mask_union, 1u);

  ASSERT_TRUE(plane.slo_configured());
  plane.with_slo([](const SloTracker& slo) {
    ASSERT_EQ(slo.size(), 2u);
    EXPECT_GT(slo.state(0).bad, 0u);
    EXPECT_EQ(slo.state(0).bad, slo.state(0).samples);
    EXPECT_EQ(slo.state(1).bad, 0u);
    EXPECT_TRUE(slo.state(0).breached);
  });
  plane.reset();
  EXPECT_FALSE(plane.slo_configured());
}

TEST(TelemetryPlane, ScopedProviderSkipsRegistrationWhileInactive) {
  TelemetryPlane& plane = TelemetryPlane::global();
  plane.reset();
  {
    // Constructed before start(): must not register (inactive runs pay
    // nothing), so its gauge never shows up.
    ScopedTelemetryProvider early(
        [](GaugeSet& g) { g.set("early_gauge", 1.0); });
    ASSERT_TRUE(plane.start(200.0));
    plane.stop();
  }
  plane.visit_records([&](const TelemetryRecord& r) {
    EXPECT_FALSE(r.gauges.find("early_gauge").has_value());
  });
  plane.reset();
}

// ---- exports -------------------------------------------------------------

TEST(TelemetryPlane, JsonlExportIsSchemaV4WithNullsForMissingRates) {
  TelemetryPlane& plane = TelemetryPlane::global();
  plane.reset();
  ASSERT_TRUE(plane.start(1000.0));
  for (int i = 0; i < 100; ++i) plane.record_latency_ns(700);
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  plane.stop();

  std::FILE* f = std::tmpfile();
  ASSERT_NE(f, nullptr);
  const std::size_t lines = plane.write_jsonl(f);
  EXPECT_EQ(lines, plane.sample_count());
  const std::string text = drain(f);
  std::fclose(f);

  EXPECT_NE(text.find("\"schema_version\":4"), std::string::npos);
  EXPECT_NE(text.find("\"kind\":\"telemetry\""), std::string::npos);
  EXPECT_NE(text.find("\"latency\":{\"count\":"), std::string::npos);
  EXPECT_NE(text.find("\"rates\":{\"delivered_per_s\":"), std::string::npos);
  EXPECT_NE(text.find("\"counters\":{"), std::string::npos);
  // No gauges registered: every rate must be null, and NaN must never
  // appear in any numeric position.
  EXPECT_NE(text.find("\"delivered_per_s\":null"), std::string::npos);
  EXPECT_EQ(text.find("nan"), std::string::npos) << text.substr(0, 400);
  EXPECT_EQ(text.find("inf"), std::string::npos);
  // One object per line: every line starts with '{' and ends with '}'.
  std::size_t start = 0, checked = 0;
  while (start < text.size()) {
    std::size_t end = text.find('\n', start);
    if (end == std::string::npos) end = text.size();
    if (end > start) {
      EXPECT_EQ(text[start], '{');
      EXPECT_EQ(text[end - 1], '}');
      ++checked;
    }
    start = end + 1;
  }
  EXPECT_EQ(checked, lines);
  plane.reset();
}

TEST(TelemetryPlane, PrometheusExportCarriesTotalsAndSloSeries) {
  TelemetryPlane& plane = TelemetryPlane::global();
  plane.reset();
  auto spec = parse_slo_spec("p99_latency_us<1");
  ASSERT_TRUE(spec.has_value());
  plane.set_slo(*spec);
  ASSERT_TRUE(plane.start(500.0));
  for (int i = 0; i < 100; ++i) plane.record_latency_ns(5'000'000);
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  plane.stop();

  std::FILE* f = std::tmpfile();
  ASSERT_NE(f, nullptr);
  plane.write_prometheus(f);
  const std::string text = drain(f);
  std::fclose(f);

  EXPECT_NE(text.find("cpq_telemetry_samples_total"), std::string::npos);
  EXPECT_NE(text.find("cpq_telemetry_dropped_total"), std::string::npos);
  EXPECT_NE(text.find("cpq_counter_total{counter=\""), std::string::npos);
  EXPECT_NE(text.find("cpq_slo_bad_samples_total{objective="),
            std::string::npos);
  EXPECT_NE(text.find("cpq_slo_breach_episodes_total{objective="),
            std::string::npos);
  EXPECT_EQ(text.find("nan"), std::string::npos);
  plane.reset();
}

TEST(TelemetryPlane, DumpRecentWritesTheFlightRecorderTail) {
  TelemetryPlane& plane = TelemetryPlane::global();
  plane.reset();

  // Inactive plane with no records: dump_recent stays silent so stall
  // dumps from non-telemetry runs do not grow noise.
  std::FILE* f = std::tmpfile();
  ASSERT_NE(f, nullptr);
  plane.dump_recent(f);
  EXPECT_EQ(drain(f).size(), 0u);
  std::fclose(f);

  ASSERT_TRUE(plane.start(1000.0));
  for (int i = 0; i < 100; ++i) plane.record_latency_ns(900);
  std::this_thread::sleep_for(std::chrono::milliseconds(15));
  plane.stop();

  f = std::tmpfile();
  ASSERT_NE(f, nullptr);
  plane.dump_recent(f, 4);
  const std::string text = drain(f);
  std::fclose(f);
  EXPECT_NE(text.find("[cpq-telemetry]"), std::string::npos);
  EXPECT_NE(text.find("seq="), std::string::npos);
  plane.reset();
}

}  // namespace
}  // namespace cpq::obs
