// CBPQ-specific tests: chunk splitting, first-chunk rebuilds, buffer-path
// strictness, the freeze protocols, and delete-heavy behaviour (the
// workload the appendix claims the CBPQ wins).

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <set>
#include <vector>

#include "platform/rng.hpp"
#include "platform/thread_util.hpp"
#include "queues/cbpq.hpp"

namespace cpq {
namespace {

using K = std::uint64_t;
using V = std::uint64_t;
using Queue = ChunkBasedQueue<K, V>;

TEST(Cbpq, EmptyBehaviour) {
  Queue queue(1);
  auto handle = queue.get_handle(0);
  K k;
  V v;
  EXPECT_FALSE(handle.delete_min(k, v));
  EXPECT_EQ(queue.unsafe_size(), 0u);
}

TEST(Cbpq, SortedDrainAcrossManyChunks) {
  // Far more items than one chunk capacity: exercises buffer -> rebuild ->
  // overflow-chunk distribution -> successive absorptions.
  Queue queue(1);
  auto handle = queue.get_handle(0);
  Xoroshiro128 rng(3);
  std::vector<K> keys;
  for (int i = 0; i < 20000; ++i) {
    const K key = rng.next_below(1u << 20);
    keys.push_back(key);
    handle.insert(key, i);
  }
  EXPECT_EQ(queue.unsafe_size(), keys.size());
  std::sort(keys.begin(), keys.end());
  for (std::size_t i = 0; i < keys.size(); ++i) {
    K k;
    V v;
    ASSERT_TRUE(handle.delete_min(k, v));
    ASSERT_EQ(k, keys[i]) << "at " << i;
  }
  K k;
  V v;
  EXPECT_FALSE(handle.delete_min(k, v));
}

TEST(Cbpq, InterleavedStrictAgainstModel) {
  Queue queue(1);
  auto handle = queue.get_handle(0);
  std::multiset<K> model;
  Xoroshiro128 rng(11);
  for (int op = 0; op < 30000; ++op) {
    if (model.empty() || rng.next_below(100) < 55) {
      const K key = rng.next_below(4096);
      handle.insert(key, op);
      model.insert(key);
    } else {
      K k;
      V v;
      ASSERT_TRUE(handle.delete_min(k, v));
      ASSERT_EQ(k, *model.begin()) << "op " << op;
      model.erase(model.begin());
    }
  }
}

TEST(Cbpq, SmallKeyAfterDeletionsComesOutFirst) {
  // Keys below the first chunk's range go through the buffer path and must
  // be returned before the sorted remainder.
  Queue queue(1);
  auto handle = queue.get_handle(0);
  for (K i = 1000; i < 2000; ++i) handle.insert(i, i);
  K k;
  V v;
  for (int i = 0; i < 300; ++i) ASSERT_TRUE(handle.delete_min(k, v));
  handle.insert(1, 1);
  ASSERT_TRUE(handle.delete_min(k, v));
  EXPECT_EQ(k, 1u);
  ASSERT_TRUE(handle.delete_min(k, v));
  EXPECT_EQ(k, 1300u);
}

TEST(Cbpq, AscendingAndDescendingInsertions) {
  for (const bool ascending : {true, false}) {
    Queue queue(1);
    auto handle = queue.get_handle(0);
    const K n = 5000;
    for (K i = 0; i < n; ++i) {
      handle.insert(ascending ? i : n - 1 - i, i);
    }
    K k;
    V v;
    for (K i = 0; i < n; ++i) {
      ASSERT_TRUE(handle.delete_min(k, v));
      ASSERT_EQ(k, i);
    }
  }
}

TEST(Cbpq, DeleteHeavyPhaseKeepsProgress) {
  // The appendix claim: CBPQ excels at deletion workloads thanks to the
  // FAA-ticket hot path. Functional check: a long pure-deletion phase over
  // a large prefill drains everything exactly once.
  Queue queue(4);
  {
    auto handle = queue.get_handle(0);
    for (K i = 0; i < 50000; ++i) handle.insert(i, i);
  }
  std::atomic<std::uint64_t> drained{0};
  std::vector<std::vector<V>> got(4);
  run_team(4, [&](unsigned tid) {
    auto handle = queue.get_handle(tid);
    K k;
    V v;
    while (handle.delete_min(k, v)) {
      got[tid].push_back(v);
      drained.fetch_add(1, std::memory_order_relaxed);
    }
  });
  EXPECT_EQ(drained.load(), 50000u);
  std::set<V> all;
  for (const auto& per : got) {
    for (V v : per) EXPECT_TRUE(all.insert(v).second);
  }
  EXPECT_EQ(all.size(), 50000u);
}

TEST(Cbpq, ConcurrentMixedSmallKeyRange) {
  // A tiny key range maximizes buffer-path traffic and rebuild frequency.
  Queue queue(4);
  std::vector<std::vector<V>> deleted(4);
  std::vector<std::uint64_t> inserted(4, 0);
  run_team(4, [&](unsigned tid) {
    auto handle = queue.get_handle(tid);
    Xoroshiro128 rng(tid + 77);
    for (int op = 0; op < 10000; ++op) {
      if (rng.next_below(2) == 0) {
        handle.insert(rng.next_below(64),
                      (static_cast<V>(tid + 1) << 32) | inserted[tid]++);
      } else {
        K k;
        V v;
        if (handle.delete_min(k, v)) deleted[tid].push_back(v);
      }
    }
  });
  auto handle = queue.get_handle(0);
  K k;
  V v;
  std::vector<V> rest;
  while (handle.delete_min(k, v)) rest.push_back(v);
  std::set<V> all;
  std::uint64_t total = 0;
  for (const auto& per : deleted) {
    for (V value : per) {
      ASSERT_TRUE(all.insert(value).second);
      ++total;
    }
  }
  for (V value : rest) {
    ASSERT_TRUE(all.insert(value).second);
    ++total;
  }
  std::uint64_t expected = 0;
  for (auto n : inserted) expected += n;
  EXPECT_EQ(total, expected);
}

}  // namespace
}  // namespace cpq
