// Tests for the benchmark framework itself: key generators, workload
// choosers, statistics, the rank-error replay engine, table rendering, and
// option parsing.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_framework/harness.hpp"
#include "bench_framework/json_out.hpp"
#include "bench_framework/keygen.hpp"
#include "bench_framework/latency.hpp"
#include "bench_framework/options.hpp"
#include "bench_framework/stats.hpp"
#include "bench_framework/table.hpp"
#include "bench_framework/workload.hpp"

namespace cpq::bench {
namespace {

// ---- JSON-lines output -------------------------------------------------

TEST(JsonOut, RoundTripsEveryField) {
  const JsonRecord record{"Fig. 1 — uniform workload", "klsm256",
                          "throughput_mops", 8, 12.3456789012345678, 0.5625,
                          10};
  JsonRecord parsed;
  ASSERT_TRUE(parse_json_record(to_json_line(record), parsed));
  EXPECT_EQ(parsed, record);
}

TEST(JsonOut, RoundTripsHostileStringsAndExtremeDoubles) {
  JsonRecord record;
  record.experiment = "quote\" backslash\\ tab\t newline\n ctrl\x01 end";
  record.queue = "mq";
  record.metric = "rank_error_mean";
  record.threads = 4096;
  record.mean = 1.7976931348623157e308;  // max double round-trips via %.17g
  record.ci95 = -0.0001220703125;
  record.reps = 1;
  JsonRecord parsed;
  ASSERT_TRUE(parse_json_record(to_json_line(record), parsed));
  EXPECT_EQ(parsed, record);
}

TEST(JsonOut, ParserToleratesWhitespaceAndKeyOrder) {
  JsonRecord parsed;
  ASSERT_TRUE(parse_json_record(
      "  { \"reps\" : 3 , \"mean\" : 1.5 , \"ci95\" : 0.25 ,\n"
      "    \"metric\" : \"throughput_mops\" , \"queue\" : \"mq\" ,\n"
      "    \"threads\" : 2 , \"experiment\" : \"fig1\" }  ",
      parsed));
  JsonRecord expected{"fig1", "mq", "throughput_mops", 2, 1.5, 0.25, 3};
  expected.schema_version = 1;  // no schema_version key = v1 file
  EXPECT_EQ(parsed, expected);
}

TEST(JsonOut, SchemaVersionRoundTripsAndValidates) {
  // The writer stamps the current version on every line.
  const std::string line = to_json_line(
      {"fig1", "mq", "throughput_mops", 2, 1.5, 0.25, 3});
  EXPECT_NE(line.find("\"schema_version\":4"), std::string::npos);
  JsonRecord parsed;
  ASSERT_TRUE(parse_json_record(line, parsed));
  EXPECT_EQ(parsed.schema_version, kJsonSchemaVersion);
  // Older versions are accepted: 1 explicitly as well as implicitly, 2 (the
  // pre-workloads schema) and 3 (pre-telemetry) explicitly.
  ASSERT_TRUE(parse_json_record(
      R"({"schema_version":1,"experiment":"e","threads":1,"queue":"q","metric":"m","mean":1,"ci95":0,"reps":1})",
      parsed));
  EXPECT_EQ(parsed.schema_version, 1u);
  ASSERT_TRUE(parse_json_record(
      R"({"schema_version":2,"experiment":"e","threads":1,"queue":"q","metric":"m","mean":1,"ci95":0,"reps":1})",
      parsed));
  EXPECT_EQ(parsed.schema_version, 2u);
  ASSERT_TRUE(parse_json_record(
      R"({"schema_version":3,"experiment":"e","threads":1,"queue":"q","metric":"m","mean":1,"ci95":0,"reps":1})",
      parsed));
  EXPECT_EQ(parsed.schema_version, 3u);
  // Future versions and nonsense are schema drift, as are duplicates.
  EXPECT_FALSE(parse_json_record(
      R"({"schema_version":5,"experiment":"e","threads":1,"queue":"q","metric":"m","mean":1,"ci95":0,"reps":1})",
      parsed));
  EXPECT_FALSE(parse_json_record(
      R"({"schema_version":0,"experiment":"e","threads":1,"queue":"q","metric":"m","mean":1,"ci95":0,"reps":1})",
      parsed));
  EXPECT_FALSE(parse_json_record(
      R"({"schema_version":2,"schema_version":2,"experiment":"e","threads":1,"queue":"q","metric":"m","mean":1,"ci95":0,"reps":1})",
      parsed));
}

TEST(JsonOut, NullMeanRoundTripsForUnavailableMetrics) {
  JsonRecord record{"fig1", "mq", "perf_cycles_per_op", 2, 0.0, 0.0, 1};
  record.mean_is_null = true;
  const std::string line = to_json_line(record);
  EXPECT_NE(line.find("\"mean\":null"), std::string::npos);
  JsonRecord parsed;
  ASSERT_TRUE(parse_json_record(line, parsed));
  EXPECT_TRUE(parsed.mean_is_null);
  EXPECT_EQ(parsed, record);
  // null is only valid for mean; elsewhere it is malformed input.
  EXPECT_FALSE(parse_json_record(
      R"({"experiment":"e","threads":1,"queue":"q","metric":"m","mean":1,"ci95":null,"reps":1})",
      parsed));
}

TEST(JsonOut, ParserRejectsSchemaDrift) {
  const std::string good = to_json_line(
      {"fig1", "mq", "throughput_mops", 2, 1.5, 0.25, 3});
  JsonRecord parsed;
  ASSERT_TRUE(parse_json_record(good, parsed));
  // Unknown key.
  EXPECT_FALSE(parse_json_record(
      R"({"experiment":"e","threads":1,"queue":"q","metric":"m","mean":1,"ci95":0,"reps":1,"extra":7})",
      parsed));
  // Missing key.
  EXPECT_FALSE(parse_json_record(
      R"({"experiment":"e","threads":1,"queue":"q","metric":"m","mean":1,"ci95":0})",
      parsed));
  // Duplicated key.
  EXPECT_FALSE(parse_json_record(
      R"({"experiment":"e","experiment":"e","threads":1,"queue":"q","metric":"m","mean":1,"ci95":0,"reps":1})",
      parsed));
  // Trailing garbage, truncation, and non-objects.
  EXPECT_FALSE(parse_json_record(good + "x", parsed));
  EXPECT_FALSE(parse_json_record(good.substr(0, good.size() - 5), parsed));
  EXPECT_FALSE(parse_json_record("[]", parsed));
  EXPECT_FALSE(parse_json_record("", parsed));
}

TEST(JsonOut, SinkAppendsParsableLinesToFile) {
  const std::string path = ::testing::TempDir() + "cpq_json_sink_test.jsonl";
  std::remove(path.c_str());
  JsonSink& sink = JsonSink::instance();
  sink.set_path(path);
  const JsonRecord a{"fig1", "mq", "throughput_mops", 2, 1.5, 0.25, 3};
  const JsonRecord b{"fig1", "linden", "throughput_mops", 2, 0.75, 0.125, 3};
  sink.record(a);
  sink.record(b);
  sink.set_path("");  // disable again for the rest of the suite
  EXPECT_FALSE(sink.enabled());

  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  char line[512];
  std::vector<JsonRecord> parsed;
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    std::string text(line);
    while (!text.empty() && (text.back() == '\n' || text.back() == '\r')) {
      text.pop_back();
    }
    JsonRecord record;
    ASSERT_TRUE(parse_json_record(text, record)) << text;
    parsed.push_back(record);
  }
  std::fclose(f);
  std::remove(path.c_str());
  ASSERT_EQ(parsed.size(), 2u);
  EXPECT_EQ(parsed[0], a);
  EXPECT_EQ(parsed[1], b);
}

TEST(JsonOut, StatusFieldRoundTripsAndValidates) {
  const JsonRecord record{"fig1", "mq", "throughput_mops",
                          2,      0.0,  0.0,
                          0,      "failed"};
  JsonRecord parsed;
  ASSERT_TRUE(parse_json_record(to_json_line(record), parsed));
  EXPECT_EQ(parsed.status, "failed");
  EXPECT_EQ(parsed, record);
  // Pre-status files omit the key; it reads back as "ok".
  ASSERT_TRUE(parse_json_record(
      R"({"experiment":"e","threads":1,"queue":"q","metric":"m","mean":1,"ci95":0,"reps":1})",
      parsed));
  EXPECT_EQ(parsed.status, "ok");
  // Unknown values and duplicates are schema drift.
  EXPECT_FALSE(parse_json_record(
      R"({"experiment":"e","threads":1,"queue":"q","metric":"m","mean":1,"ci95":0,"reps":1,"status":"maybe"})",
      parsed));
  EXPECT_FALSE(parse_json_record(
      R"({"experiment":"e","threads":1,"queue":"q","metric":"m","mean":1,"ci95":0,"reps":1,"status":"ok","status":"ok"})",
      parsed));
}

// ---- latency percentiles -------------------------------------------------

TEST(Percentiles, NearestRankExactValues) {
  std::vector<double> hundred;
  for (int i = 1; i <= 100; ++i) hundred.push_back(i);
  const LatencyPercentiles p = percentiles_of(hundred);
  EXPECT_EQ(p.samples, 100u);
  EXPECT_DOUBLE_EQ(p.p50_ns, 50.0);
  EXPECT_DOUBLE_EQ(p.p90_ns, 90.0);
  EXPECT_DOUBLE_EQ(p.p99_ns, 99.0);
  EXPECT_DOUBLE_EQ(p.max_ns, 100.0);
}

TEST(Percentiles, SmallSampleTailIsNotUnderReported) {
  // Regression: the old floor(q*(n-1)) indexing made "p99" of 10 samples
  // read the 9th value; nearest-rank ceil(q*n) reads the maximum.
  std::vector<double> ten = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  const LatencyPercentiles p = percentiles_of(ten);
  EXPECT_DOUBLE_EQ(p.p50_ns, 5.0);
  EXPECT_DOUBLE_EQ(p.p90_ns, 9.0);
  EXPECT_DOUBLE_EQ(p.p99_ns, 10.0);
  EXPECT_DOUBLE_EQ(p.max_ns, 10.0);

  std::vector<double> one = {7.0};
  const LatencyPercentiles single = percentiles_of(one);
  EXPECT_DOUBLE_EQ(single.p50_ns, 7.0);
  EXPECT_DOUBLE_EQ(single.p99_ns, 7.0);

  std::vector<double> none;
  EXPECT_EQ(percentiles_of(none).samples, 0u);
}

TEST(Percentiles, HistogramOverloadMatchesVectorWithinBucketError) {
  obs::LogHistogram hist;
  std::vector<double> values;
  for (int i = 1; i <= 1000; ++i) {
    hist.record(static_cast<std::uint64_t>(i));
    values.push_back(i);
  }
  const LatencyPercentiles hv = percentiles_of(hist);
  const LatencyPercentiles vv = percentiles_of(values);
  EXPECT_EQ(hv.samples, vv.samples);
  EXPECT_NEAR(hv.p50_ns, vv.p50_ns,
              vv.p50_ns / obs::LogHistogram::kSubBuckets + 1.0);
  EXPECT_NEAR(hv.p99_ns, vv.p99_ns,
              vv.p99_ns / obs::LogHistogram::kSubBuckets + 1.0);
  EXPECT_DOUBLE_EQ(hv.max_ns, vv.max_ns);  // max is exact, not quantized
}

// ---- key generators --------------------------------------------------

TEST(KeyGen, UniformStaysInRange) {
  for (const unsigned bits : {8u, 16u, 32u}) {
    KeyGenerator gen(KeyConfig::uniform(bits), 1, 0);
    const std::uint64_t limit = std::uint64_t{1} << bits;
    for (int i = 0; i < 10000; ++i) EXPECT_LT(gen.next(), limit);
  }
}

TEST(KeyGen, Uniform8BitHitsManyDuplicates) {
  KeyGenerator gen(KeyConfig::uniform(8), 1, 0);
  std::vector<int> buckets(256, 0);
  for (int i = 0; i < 25600; ++i) ++buckets[gen.next()];
  int covered = 0;
  for (int count : buckets) covered += (count > 0);
  EXPECT_GT(covered, 250);  // all byte values show up
}

TEST(KeyGen, AscendingTrendsUpward) {
  KeyGenerator gen(KeyConfig::ascending(10), 1, 0);
  const int n = 20000;
  std::uint64_t early = 0, late = 0;
  for (int i = 0; i < n; ++i) {
    const std::uint64_t key = gen.next();
    if (i < n / 4) early += key;
    if (i >= 3 * n / 4) late += key;
  }
  EXPECT_GT(late, early);  // strong upward drift
}

TEST(KeyGen, DescendingTrendsDownward) {
  KeyGenerator gen(KeyConfig::descending(10), 1, 0);
  const int n = 20000;
  std::uint64_t early = 0, late = 0;
  for (int i = 0; i < n; ++i) {
    const std::uint64_t key = gen.next();
    if (i < n / 4) early += key;
    if (i >= 3 * n / 4) late += key;
  }
  EXPECT_LT(late, early);
  // Never underflows.
  KeyGenerator deep(KeyConfig::descending(4), 1, 0);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LE(deep.next(), KeyGenerator::kDescendingStart + 16);
  }
}

TEST(KeyGen, HoldFollowsLastDeleted) {
  KeyGenerator gen(KeyConfig::hold(4), 1, 0);
  gen.observe_deleted(1000);
  for (int i = 0; i < 100; ++i) {
    const std::uint64_t key = gen.next();
    EXPECT_GE(key, 1000u);
    EXPECT_LT(key, 1016u);
  }
  gen.observe_deleted(5000);
  EXPECT_GE(gen.next(), 5000u);
}

TEST(KeyGen, DeterministicPerThreadStream) {
  KeyGenerator a(KeyConfig::uniform(32), 42, 3);
  KeyGenerator b(KeyConfig::uniform(32), 42, 3);
  KeyGenerator c(KeyConfig::uniform(32), 42, 4);
  bool differs = false;
  for (int i = 0; i < 100; ++i) {
    const auto ka = a.next();
    EXPECT_EQ(ka, b.next());
    differs |= (ka != c.next());
  }
  EXPECT_TRUE(differs);
}

TEST(KeyGen, DescendingClampsInsteadOfUnderflowing) {
  // skip() fast-forwards the operation counter to just below the clamp
  // point; without the `shift < kDescendingStart` guard the next draws
  // would wrap around 2^64 and emit near-maximal keys.
  KeyGenerator gen(KeyConfig::descending(4), 1, 0);
  gen.skip(KeyGenerator::kDescendingStart - 2);
  for (int i = 0; i < 100; ++i) {
    EXPECT_LE(gen.next(), KeyGenerator::kDescendingStart + 16);
  }
  // Deep past the clamp: only the random base component remains.
  gen.skip(1'000'000);
  for (int i = 0; i < 100; ++i) EXPECT_LT(gen.next(), 16u);
}

TEST(KeyGen, HoldStartsAtZeroUntilFirstDeletion) {
  KeyGenerator gen(KeyConfig::hold(4), 1, 0);
  for (int i = 0; i < 100; ++i) EXPECT_LT(gen.next(), 16u);
  gen.observe_deleted(100);
  EXPECT_GE(gen.next(), 100u);
}

TEST(KeyGen, DifferentSeedsGiveIndependentStreams) {
  KeyGenerator a(KeyConfig::uniform(32), 42, 3);
  KeyGenerator b(KeyConfig::uniform(32), 43, 3);
  bool differs = false;
  for (int i = 0; i < 100; ++i) differs |= (a.next() != b.next());
  EXPECT_TRUE(differs);
}

TEST(KeyGen, ConfigNames) {
  EXPECT_EQ(KeyConfig::uniform(32).name(), "uniform32");
  EXPECT_EQ(KeyConfig::uniform(8).name(), "uniform8");
  EXPECT_EQ(KeyConfig::ascending().name(), "ascending");
  EXPECT_EQ(KeyConfig::descending().name(), "descending");
  EXPECT_EQ(KeyConfig::hold().name(), "hold");
}

// ---- workload choosers -------------------------------------------------

TEST(Workload, UniformIsRoughlyBalanced) {
  OpChooser chooser(Workload::kUniform, 0, 4, 1);
  int inserts = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) inserts += chooser.next_is_insert();
  EXPECT_GT(inserts, n * 0.47);
  EXPECT_LT(inserts, n * 0.53);
}

TEST(Workload, InsertFractionIsHonoured) {
  OpChooser chooser(Workload::kUniform, 0, 4, 1, 0.8);
  int inserts = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) inserts += chooser.next_is_insert();
  EXPECT_GT(inserts, n * 0.77);
  EXPECT_LT(inserts, n * 0.83);
}

TEST(Workload, SplitAssignsHalves) {
  // 4 threads: 0,1 insert; 2,3 delete.
  for (unsigned tid = 0; tid < 4; ++tid) {
    OpChooser chooser(Workload::kSplit, tid, 4, 1);
    for (int i = 0; i < 10; ++i) {
      EXPECT_EQ(chooser.next_is_insert(), tid < 2);
    }
  }
  // Odd thread counts: 3 threads -> 2 inserters.
  OpChooser chooser(Workload::kSplit, 1, 3, 1);
  EXPECT_TRUE(chooser.next_is_insert());
  OpChooser deleter(Workload::kSplit, 2, 3, 1);
  EXPECT_FALSE(deleter.next_is_insert());
}

TEST(Workload, AlternatingStrictlyAlternates) {
  OpChooser chooser(Workload::kAlternating, 0, 1, 1);
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(chooser.next_is_insert());
    EXPECT_FALSE(chooser.next_is_insert());
  }
}

TEST(Workload, BatchAlternatesInBlocks) {
  OpChooser chooser(Workload::kBatch, 0, 1, 1, 0.5, /*batch_size=*/4);
  for (int round = 0; round < 20; ++round) {
    for (int i = 0; i < 4; ++i) EXPECT_TRUE(chooser.next_is_insert());
    for (int i = 0; i < 4; ++i) EXPECT_FALSE(chooser.next_is_insert());
  }
  // Batch size 1 degenerates to strict alternation; size 0 is repaired to 1.
  OpChooser degenerate(Workload::kBatch, 0, 1, 1, 0.5, 0);
  EXPECT_TRUE(degenerate.next_is_insert());
  EXPECT_FALSE(degenerate.next_is_insert());
  EXPECT_TRUE(degenerate.next_is_insert());
}

// ---- stats --------------------------------------------------------------

TEST(Stats, KnownValues) {
  const Summary s = summarize({2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0});
  EXPECT_DOUBLE_EQ(s.mean, 5.0);
  EXPECT_NEAR(s.stddev, 2.138, 0.001);
  EXPECT_GT(s.ci95, 0.0);
}

TEST(Stats, DegenerateCases) {
  EXPECT_EQ(summarize({}).n, 0u);
  const Summary one = summarize({3.5});
  EXPECT_DOUBLE_EQ(one.mean, 3.5);
  EXPECT_DOUBLE_EQ(one.stddev, 0.0);
  EXPECT_DOUBLE_EQ(one.ci95, 0.0);
}

TEST(Stats, TQuantileMatchesTable) {
  EXPECT_NEAR(t_quantile_95(2), 4.303, 1e-9);
  EXPECT_NEAR(t_quantile_95(9), 2.262, 1e-9);
  EXPECT_NEAR(t_quantile_95(1000), 1.96, 1e-9);
}

// ---- replay -------------------------------------------------------------

TEST(Replay, StrictSequenceHasZeroRankError) {
  // Insert 0..9, then delete them in key order: every deletion removes the
  // current minimum -> rank error 0 for all.
  std::vector<std::vector<OpLogEntry>> logs(1);
  std::uint64_t ts = 0;
  for (std::uint64_t i = 0; i < 10; ++i) logs[0].push_back({ts++, i, i, true});
  for (std::uint64_t i = 0; i < 10; ++i) logs[0].push_back({ts++, i, i, false});
  std::vector<double> errors;
  std::uint64_t max_err = 99;
  replay_rank_errors(logs, errors, max_err);
  ASSERT_EQ(errors.size(), 10u);
  for (double e : errors) EXPECT_DOUBLE_EQ(e, 0.0);
  EXPECT_EQ(max_err, 0u);
}

TEST(Replay, RelaxedDeletionGetsPositiveRank) {
  // Insert keys 10,20,30; delete 30 first (rank error 2), then 10 (0),
  // then 20 (0).
  std::vector<std::vector<OpLogEntry>> logs(1);
  logs[0] = {
      {1, 10, 100, true}, {2, 20, 200, true}, {3, 30, 300, true},
      {4, 30, 300, false}, {5, 10, 100, false}, {6, 20, 200, false},
  };
  std::vector<double> errors;
  std::uint64_t max_err = 0;
  replay_rank_errors(logs, errors, max_err);
  ASSERT_EQ(errors.size(), 3u);
  EXPECT_DOUBLE_EQ(errors[0], 2.0);
  EXPECT_DOUBLE_EQ(errors[1], 0.0);
  EXPECT_DOUBLE_EQ(errors[2], 0.0);
  EXPECT_EQ(max_err, 2u);
}

TEST(Replay, OutOfOrderDeleteIsDeferredToItsInsert) {
  // The delete of id 7 is logged with an earlier timestamp than its insert
  // (possible under racing timestamps); the replay must still account it.
  std::vector<std::vector<OpLogEntry>> logs(2);
  logs[0] = {{5, 50, 7, false}};
  logs[1] = {{2, 40, 1, true}, {8, 50, 7, true}};
  std::vector<double> errors;
  std::uint64_t max_err = 0;
  replay_rank_errors(logs, errors, max_err);
  ASSERT_EQ(errors.size(), 1u);
  // At the deferred point the tree holds {40, 50}; 50 has rank 2.
  EXPECT_DOUBLE_EQ(errors[0], 1.0);
}

TEST(Replay, MergesLogsFromManyThreadsByTimestamp) {
  std::vector<std::vector<OpLogEntry>> logs(3);
  logs[0] = {{1, 5, 1, true}, {4, 5, 1, false}};
  logs[1] = {{2, 3, 2, true}};
  logs[2] = {{3, 9, 3, true}, {6, 3, 2, false}, {7, 9, 3, false}};
  std::vector<double> errors;
  std::uint64_t max_err = 0;
  replay_rank_errors(logs, errors, max_err);
  ASSERT_EQ(errors.size(), 3u);
  // ts4: delete key 5 while {3,5,9} present -> rank error 1.
  EXPECT_DOUBLE_EQ(errors[0], 1.0);
  EXPECT_DOUBLE_EQ(errors[1], 0.0);
  EXPECT_DOUBLE_EQ(errors[2], 0.0);
}

// ---- table / options ------------------------------------------------------

TEST(Table, FormatsNumbers) {
  EXPECT_EQ(Table::format_mean_ci(12.345, 0.678), "12.35±0.68");
}

TEST(Table, PrintSmoke) {
  Table table("demo", "threads", {"a", "b"});
  table.add_row("1", {"1.0", "2.0"});
  table.add_row("2", {"3.0", "4.0"});
  table.print();  // must not crash; output inspected by humans
}

TEST(Options, EnvParsing) {
  setenv("CPQ_THREADS", "1, 2,8", 1);
  setenv("CPQ_BENCH_MS", "25", 1);
  setenv("CPQ_BENCH_REPS", "5", 1);
  setenv("CPQ_PREFILL", "1234", 1);
  setenv("CPQ_SEED", "77", 1);
  const Options options = options_from_env();
  EXPECT_EQ(options.thread_ladder, (std::vector<unsigned>{1, 2, 8}));
  EXPECT_DOUBLE_EQ(options.duration_s, 0.025);
  EXPECT_EQ(options.repetitions, 5u);
  EXPECT_EQ(options.prefill, 1234u);
  EXPECT_EQ(options.seed, 77u);
  unsetenv("CPQ_THREADS");
  unsetenv("CPQ_BENCH_MS");
  unsetenv("CPQ_BENCH_REPS");
  unsetenv("CPQ_PREFILL");
  unsetenv("CPQ_SEED");
  const Options defaults = options_from_env();
  EXPECT_EQ(defaults.thread_ladder, (std::vector<unsigned>{1, 2, 4, 8}));
}

}  // namespace
}  // namespace cpq::bench
