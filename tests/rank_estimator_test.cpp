// Tests for the online rank-error estimator (src/obs/rank_estimator.hpp):
// sketch scoring, sampling-period scaling, hard/soft bound violation
// accounting, window recycling, the metrics-trace feed, and the dump format.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "obs/metrics.hpp"
#include "obs/rank_estimator.hpp"
#include "queues/multiqueue.hpp"
#include "queues/multiqueue_eng.hpp"

namespace cpq::obs {
namespace {

std::string dump_to_string(const RankEstimator& estimator) {
  char* buffer = nullptr;
  std::size_t size = 0;
  std::FILE* stream = open_memstream(&buffer, &size);
  EXPECT_NE(stream, nullptr);
  estimator.dump(stream);
  std::fclose(stream);
  std::string text(buffer, size);
  std::free(buffer);
  return text;
}

TEST(RankEstimatorTest, InOrderDeletionsScoreZero) {
  auto& est = RankEstimator::global();
  est.enable(/*bound=*/0.0, /*hard_bound=*/false, /*sample_period=*/1);
  for (std::uint64_t k = 1; k <= 32; ++k) est.observe_insert(k);
  for (std::uint64_t k = 1; k <= 32; ++k) est.observe_delete(k);
  const auto snap = est.snapshot();
  EXPECT_EQ(snap.samples, 32u);
  EXPECT_EQ(snap.p50, 0.0);
  EXPECT_EQ(snap.max, 0u);
  EXPECT_EQ(snap.violations, 0u);
  est.disable();
}

TEST(RankEstimatorTest, OutOfOrderDeletionScoresSmallerCount) {
  auto& est = RankEstimator::global();
  est.enable(0.0, false, 1);
  for (std::uint64_t k = 1; k <= 10; ++k) est.observe_insert(k);
  // Deleting key 7 while 1..6 are still live: rank estimate 6.
  est.observe_delete(7);
  EXPECT_EQ(est.snapshot().max, 6u);
  // The exact entry was evicted; deleting 7 again scores against {1..6,8..10}.
  est.observe_delete(7);
  EXPECT_EQ(est.snapshot().samples, 2u);
  EXPECT_EQ(est.snapshot().max, 6u);
  est.disable();
}

TEST(RankEstimatorTest, EstimatesScaleWithSamplePeriod) {
  auto& est = RankEstimator::global();
  est.enable(0.0, false, /*sample_period=*/64);
  for (std::uint64_t k = 1; k <= 5; ++k) est.observe_insert(k);
  est.observe_delete(4);  // 3 smaller sketch keys -> estimate 3 * 64
  EXPECT_EQ(est.snapshot().max, 192u);
  est.disable();
}

TEST(RankEstimatorTest, HardBoundViolationsCountedWithSlack) {
  auto& est = RankEstimator::global();
  est.enable(/*bound=*/10.0, /*hard_bound=*/true, /*sample_period=*/1);
  for (std::uint64_t k = 1; k <= 64; ++k) est.observe_insert(k);
  est.observe_delete(5);  // estimate 4: within bound
  EXPECT_EQ(est.snapshot().violations, 0u);
  est.observe_delete(12);  // estimate 10 (5 evicted): at bound, within slack
  EXPECT_EQ(est.snapshot().violations, 0u);
  est.observe_delete(64);  // estimate ~61: far past bound + 2*period
  EXPECT_EQ(est.snapshot().violations, 1u);
  est.disable();
}

TEST(RankEstimatorTest, SoftBoundNeverCountsViolations) {
  auto& est = RankEstimator::global();
  est.enable(/*bound=*/10.0, /*hard_bound=*/false, /*sample_period=*/1);
  for (std::uint64_t k = 1; k <= 64; ++k) est.observe_insert(k);
  est.observe_delete(64);  // estimate 63, way past the (soft) bound
  const auto snap = est.snapshot();
  EXPECT_EQ(snap.max, 63u);
  EXPECT_EQ(snap.violations, 0u);
  EXPECT_FALSE(snap.hard_bound);
  est.disable();
}

TEST(RankEstimatorTest, EngineeredMultiQueueBoundWidensAndArmsSoft) {
  // The engineered MultiQueue self-reports a soft bound that grows with its
  // stickiness and buffer capacities (queue_traits.hpp
  // RelaxationSelfReporting); armed the way metrics_cell_begin does, it must
  // (a) be strictly wider than the classic c*P bound, and (b) never count a
  // violation even for estimates past the widened bound — it is soft.
  constexpr unsigned kThreads = 4;
  MqEngConfig cfg;  // defaults: c=4, stickiness=8, buffers=16+16
  const MultiQueue<std::uint64_t, std::uint64_t> classic(1, cfg.c);
  const double widened =
      EngMultiQueue<std::uint64_t, std::uint64_t>::soft_rank_bound(cfg,
                                                                   kThreads);
  EXPECT_EQ(widened, (4.0 * 8 + 16 + 16) * kThreads);
  EXPECT_GT(widened, classic.soft_rank_bound(kThreads));

  // Sample period 2 keeps every key inside the sketch window
  // (kWindowCapacity = 256 = the widened bound at these defaults) while the
  // scaled estimates still reach past the widened bound.
  auto& est = RankEstimator::global();
  est.enable(widened, /*hard_bound=*/false, /*sample_period=*/2);
  constexpr std::uint64_t kKeys = 200;
  static_assert(kKeys <= RankEstimator::kWindowCapacity);
  for (std::uint64_t k = 1; k <= kKeys; ++k) est.observe_insert(k);
  // An estimate inside the widened window (but past the classic bound)...
  est.observe_delete(64);  // estimate 63 * 2 = 126
  // ...and one far past even the widened bound + slack.
  est.observe_delete(kKeys);  // estimate (kKeys - 2) * 2 = 396
  const auto snap = est.snapshot();
  EXPECT_EQ(snap.bound, widened);
  EXPECT_FALSE(snap.hard_bound);
  EXPECT_GE(snap.max, static_cast<std::uint64_t>(widened));
  EXPECT_EQ(snap.violations, 0u) << "soft bounds must never count violations";
  est.disable();
}

TEST(RankEstimatorTest, WindowRecyclesWhenFull) {
  auto& est = RankEstimator::global();
  est.enable(0.0, false, 1);
  // Overfill the window: no crash, and scoring still works afterwards.
  for (std::uint64_t k = 0; k < 4 * RankEstimator::kWindowCapacity; ++k) {
    est.observe_insert(k);
  }
  est.observe_delete(0);  // smallest possible key: estimate must be 0
  const auto snap = est.snapshot();
  EXPECT_EQ(snap.samples, 1u);
  EXPECT_EQ(snap.p50, 0.0);
  est.disable();
}

TEST(RankEstimatorTest, EnableResetsPreviousCellState) {
  auto& est = RankEstimator::global();
  est.enable(0.0, false, 1);
  est.observe_insert(1);
  est.observe_insert(2);
  est.observe_delete(2);
  EXPECT_EQ(est.snapshot().samples, 1u);
  est.enable(5.0, true, 64);  // new cell: counts start over
  const auto snap = est.snapshot();
  EXPECT_EQ(snap.samples, 0u);
  EXPECT_EQ(snap.violations, 0u);
  EXPECT_EQ(snap.bound, 5.0);
  EXPECT_TRUE(snap.hard_bound);
  EXPECT_EQ(snap.sample_period, 64u);
  est.disable();
}

TEST(RankEstimatorTest, TraceFeedsEstimatorOnlyWhenEnabled) {
  // The metrics-trace seam (obs::trace) forwards sampled inserts and
  // delete-hits into the estimator; empty deletes and disabled periods are
  // ignored.
  auto& est = RankEstimator::global();
  MetricsRegistry::global().reset();
  est.disable();
  trace(TraceOp::kInsert, 11);
  trace(TraceOp::kDeleteHit, 11);
  est.enable(0.0, false, 64);
  EXPECT_EQ(est.snapshot().samples, 0u);  // pre-enable traffic not scored
  trace(TraceOp::kInsert, 21);
  trace(TraceOp::kInsert, 22);
  trace(TraceOp::kDeleteEmpty, 0);  // not a scored deletion
  trace(TraceOp::kDeleteHit, 22);
  const auto snap = est.snapshot();
  EXPECT_EQ(snap.samples, 1u);
  EXPECT_EQ(snap.max, 64u);  // one smaller sketch key x period 64
  est.disable();
  MetricsRegistry::global().reset();
}

TEST(RankEstimatorTest, DumpFormatAndSilence) {
  auto& est = RankEstimator::global();
  est.disable();
  EXPECT_EQ(dump_to_string(est), "");  // silent when disabled
  est.enable(100.0, true, 64);
  EXPECT_EQ(dump_to_string(est), "");  // silent with zero samples
  for (std::uint64_t k = 1; k <= 8; ++k) est.observe_insert(k);
  est.observe_delete(3);
  const std::string text = dump_to_string(est);
  EXPECT_NE(text.find("[cpq-rank-est]"), std::string::npos) << text;
  EXPECT_NE(text.find("sampled deletions=1"), std::string::npos) << text;
  EXPECT_NE(text.find("bound=100 (hard)"), std::string::npos) << text;
  EXPECT_NE(text.find("violations="), std::string::npos) << text;
  EXPECT_NE(text.find("(x64 sampling)"), std::string::npos) << text;
  est.disable();
}

}  // namespace
}  // namespace cpq::obs
