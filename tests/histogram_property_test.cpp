// Property tests for the log-linear histogram (src/obs/histogram.hpp),
// run across randomized value streams:
//
//   * merge is commutative and associative (counts, extrema, every
//     quantile — merge is bucket-wise addition, so these match exactly),
//   * quantile(q) is monotone non-decreasing in q,
//   * quantiles stay within the advertised relative-error bound
//     (2^-kSubBucketBits ~ 3.1% at 5 sub-bucket bits) of the exact
//     nearest-rank value computed from the raw stream.
//
// Streams mix distributions deliberately: uniform, heavy-tailed
// (exponentially scaled), and near-constant — each stresses a different
// part of the octave table.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <random>
#include <vector>

#include "obs/histogram.hpp"

namespace cpq::obs {
namespace {

constexpr double kRelError = 1.0 / LogHistogram::kSubBuckets;  // 3.125%

// One randomized stream per seed; distribution varies with the seed.
std::vector<std::uint64_t> random_stream(std::uint64_t seed, std::size_t n) {
  std::mt19937_64 rng(seed);
  std::vector<std::uint64_t> values;
  values.reserve(n);
  switch (seed % 3) {
    case 0:  // uniform over a wide range
      for (std::size_t i = 0; i < n; ++i) values.push_back(rng() % 10'000'000);
      break;
    case 1:  // heavy tail: uniform mantissa, geometric exponent
      for (std::size_t i = 0; i < n; ++i) values.push_back(rng() >> (rng() % 56));
      break;
    default:  // near-constant cluster with occasional spikes
      for (std::size_t i = 0; i < n; ++i) {
        values.push_back(1000 + rng() % 16 + (rng() % 97 == 0 ? 1u << 20 : 0));
      }
      break;
  }
  return values;
}

LogHistogram record_all(const std::vector<std::uint64_t>& values) {
  LogHistogram h;
  for (const std::uint64_t v : values) h.record(v);
  return h;
}

// Exact nearest-rank quantile over the raw values (same convention as
// LogHistogram::quantile and latency.hpp's percentiles_of).
std::uint64_t exact_quantile(std::vector<std::uint64_t> sorted, double q) {
  const double raw = std::ceil(q * static_cast<double>(sorted.size()));
  std::size_t index = raw <= 1.0 ? 0 : static_cast<std::size_t>(raw) - 1;
  index = std::min(index, sorted.size() - 1);
  return sorted[index];
}

void expect_equivalent(const LogHistogram& a, const LogHistogram& b,
                       const char* what) {
  EXPECT_EQ(a.count(), b.count()) << what;
  EXPECT_EQ(a.min_value(), b.min_value()) << what;
  EXPECT_EQ(a.max_value(), b.max_value()) << what;
  // Sums are reduced in different association orders; equal up to rounding.
  EXPECT_NEAR(a.mean(), b.mean(), 1e-9 * (std::abs(a.mean()) + 1.0)) << what;
  for (double q = 0.0; q <= 1.0; q += 0.05) {
    EXPECT_EQ(a.quantile(q), b.quantile(q)) << what << " q=" << q;
  }
}

TEST(HistogramPropertyTest, MergeIsCommutative) {
  for (std::uint64_t seed = 1; seed <= 9; ++seed) {
    const auto xs = random_stream(seed, 2000);
    const auto ys = random_stream(seed + 100, 3000);
    LogHistogram ab = record_all(xs);
    ab.merge(record_all(ys));
    LogHistogram ba = record_all(ys);
    ba.merge(record_all(xs));
    expect_equivalent(ab, ba, "a+b vs b+a");
  }
}

TEST(HistogramPropertyTest, MergeIsAssociative) {
  for (std::uint64_t seed = 1; seed <= 9; ++seed) {
    const auto xs = random_stream(seed, 1500);
    const auto ys = random_stream(seed + 100, 1500);
    const auto zs = random_stream(seed + 200, 1500);
    // (a + b) + c
    LogHistogram left = record_all(xs);
    left.merge(record_all(ys));
    left.merge(record_all(zs));
    // a + (b + c)
    LogHistogram bc = record_all(ys);
    bc.merge(record_all(zs));
    LogHistogram right = record_all(xs);
    right.merge(bc);
    expect_equivalent(left, right, "(a+b)+c vs a+(b+c)");
  }
}

TEST(HistogramPropertyTest, MergeMatchesSingleRecording) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const auto xs = random_stream(seed, 2500);
    const auto ys = random_stream(seed + 50, 2500);
    LogHistogram merged = record_all(xs);
    merged.merge(record_all(ys));
    auto both = xs;
    both.insert(both.end(), ys.begin(), ys.end());
    expect_equivalent(merged, record_all(both), "merge vs combined stream");
  }
}

TEST(HistogramPropertyTest, QuantilesAreMonotone) {
  for (std::uint64_t seed = 1; seed <= 9; ++seed) {
    const LogHistogram h = record_all(random_stream(seed, 5000));
    std::uint64_t previous = 0;
    for (double q = 0.0; q <= 1.0; q += 0.01) {
      const std::uint64_t value = h.quantile(q);
      EXPECT_GE(value, previous) << "seed=" << seed << " q=" << q;
      previous = value;
    }
    EXPECT_EQ(h.quantile(1.0), h.max_value()) << "seed=" << seed;
  }
}

TEST(HistogramPropertyTest, QuantilesWithinRelativeErrorBound) {
  for (std::uint64_t seed = 1; seed <= 9; ++seed) {
    auto values = random_stream(seed, 5000);
    const LogHistogram h = record_all(values);
    std::sort(values.begin(), values.end());
    for (const double q : {0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999}) {
      const double exact = static_cast<double>(exact_quantile(values, q));
      const double got = static_cast<double>(h.quantile(q));
      // Relative bucket error, plus 1 for integer representatives of tiny
      // values (a bucket holding only {2,3} may answer 2 for exact 3).
      EXPECT_NEAR(got, exact, exact * kRelError + 1.0)
          << "seed=" << seed << " q=" << q;
    }
    EXPECT_EQ(h.min_value(), values.front()) << "seed=" << seed;
    EXPECT_EQ(h.max_value(), values.back()) << "seed=" << seed;
  }
}

}  // namespace
}  // namespace cpq::obs
