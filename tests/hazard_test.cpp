// Tests for the hazard-pointer domain: protection blocks reclamation of
// exactly the hazarded node, retire/scan frees the rest, slot recycling,
// orphan adoption, and a publish/retire/read stress mirroring the EBR one.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "mm/hazard.hpp"
#include "platform/thread_util.hpp"

namespace cpq::mm {
namespace {

std::atomic<std::uint64_t> g_deleted{0};

struct Counted {
  std::uint64_t payload = 1;
  ~Counted() { g_deleted.fetch_add(1); }
};

using Domain = HazardDomain<Counted>;

TEST(Hazard, RetireWithoutHazardFreesOnScan) {
  Domain domain;
  g_deleted.store(0);
  auto slot = domain.make_slot();
  // kScanThreshold retires force a scan; nothing is protected.
  for (unsigned i = 0; i < Domain::kScanThreshold; ++i) {
    slot.retire(new Counted());
  }
  EXPECT_EQ(g_deleted.load(), Domain::kScanThreshold);
  EXPECT_EQ(domain.retired_count(), 0u);
}

TEST(Hazard, ProtectedNodeSurvivesScan) {
  Domain domain;
  g_deleted.store(0);
  auto reader = domain.make_slot();
  auto writer = domain.make_slot();

  std::atomic<Counted*> published{new Counted()};
  Counted* protected_ptr = reader.protect(published);
  ASSERT_EQ(protected_ptr, published.load());

  // Retire the protected node plus enough garbage to force scans. The
  // hazarded node must survive every scan (it is still dereferenceable
  // below); at most a scan-interval of unscanned garbage may also linger.
  g_deleted.store(0);
  writer.retire(published.exchange(new Counted()));
  for (unsigned i = 0; i < 4 * Domain::kScanThreshold; ++i) {
    writer.retire(new Counted());
  }
  EXPECT_GE(domain.retired_count(), 1u);
  EXPECT_LT(domain.retired_count(), Domain::kScanThreshold);
  EXPECT_LT(g_deleted.load(), 4u * Domain::kScanThreshold + 1);
  EXPECT_EQ(protected_ptr->payload, 1u);  // still dereferenceable

  reader.clear();
  // With the hazard cleared, repeated scan pressure reclaims everything
  // retired so far (up to the unscanned tail of the last interval).
  for (unsigned i = 0; i < 2 * Domain::kScanThreshold; ++i) {
    writer.retire(new Counted());
  }
  EXPECT_LT(domain.retired_count(), Domain::kScanThreshold);
  EXPECT_GE(g_deleted.load(), 5u * Domain::kScanThreshold);
  delete published.load();
}

TEST(Hazard, ProtectRevalidatesOnRace) {
  Domain domain;
  auto slot = domain.make_slot();
  std::atomic<Counted*> published{new Counted()};
  // Single-threaded: protect returns the current value.
  Counted* p = slot.protect(published);
  EXPECT_EQ(p, published.load());
  slot.clear();
  delete published.load();
}

TEST(Hazard, SlotReleaseRecyclesAndAdoptsOrphans) {
  Domain domain;
  g_deleted.store(0);
  {
    auto slot = domain.make_slot();
    slot.retire(new Counted());
    // Slot destructor scans; no hazards -> freed immediately.
  }
  EXPECT_EQ(g_deleted.load(), 1u);
  // The slot index is reusable.
  std::vector<Domain::Slot> slots;
  for (unsigned i = 0; i < Domain::kMaxSlots; ++i) {
    slots.push_back(domain.make_slot());
  }
  slots.clear();  // release all again
  auto again = domain.make_slot();
  again.clear();
}

TEST(HazardStress, PublishRetireReadStress) {
  Domain domain;
  g_deleted.store(0);
  std::atomic<Counted*> published{new Counted()};
  std::atomic<bool> stop{false};
  constexpr std::uint64_t kWriters = 2;
  constexpr std::uint64_t kUpdates = 4000;

  std::vector<std::thread> team;
  for (unsigned w = 0; w < kWriters; ++w) {
    team.emplace_back([&] {
      auto slot = domain.make_slot();
      for (std::uint64_t i = 0; i < kUpdates; ++i) {
        Counted* fresh = new Counted();
        Counted* old = published.exchange(fresh);
        slot.retire(old);
      }
    });
  }
  for (unsigned r = 0; r < 2; ++r) {
    team.emplace_back([&] {
      auto slot = domain.make_slot();
      while (!stop.load(std::memory_order_relaxed)) {
        Counted* current = slot.protect(published);
        EXPECT_EQ(current->payload, 1u);
        slot.clear();
      }
    });
  }
  for (unsigned w = 0; w < kWriters; ++w) team[w].join();
  stop.store(true);
  for (std::size_t i = kWriters; i < team.size(); ++i) team[i].join();

  delete published.load();
  // Writers' slots were released on thread exit, freeing or orphaning their
  // lists; one more scan pass through a fresh slot clears orphans.
  auto slot = domain.make_slot();
  for (unsigned i = 0; i < Domain::kScanThreshold; ++i) {
    slot.retire(new Counted());
  }
  EXPECT_EQ(domain.retired_count(), 0u);
  EXPECT_EQ(g_deleted.load(),
            kWriters * kUpdates + 1 + Domain::kScanThreshold);
}

}  // namespace
}  // namespace cpq::mm
