// Tests for the epoch-based reclamation domain: deferred freeing, epoch
// advancement, drain, nesting, and a multi-threaded retire/read stress with
// instrumented deleters.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "mm/epoch.hpp"
#include "platform/thread_util.hpp"

namespace cpq::mm {
namespace {

std::atomic<std::uint64_t> g_deleted{0};

struct Counted {
  // Relaxed atomic: the stress test below writes a node's payload after
  // unpublishing it while grace-period readers may still load it.
  std::atomic<std::uint64_t> payload{0};
  ~Counted() { g_deleted.fetch_add(1); }
};

void counted_deleter(void* p) { delete static_cast<Counted*>(p); }

TEST(Ebr, RetireFreesAfterDrain) {
  EbrDomain domain;
  g_deleted.store(0);
  {
    EbrDomain::Guard guard(domain);
    for (int i = 0; i < 10; ++i) {
      domain.retire(new Counted(), &counted_deleter);
    }
    EXPECT_EQ(domain.retired_count(), 10u);
  }
  domain.drain();
  EXPECT_EQ(g_deleted.load(), 10u);
  EXPECT_EQ(domain.retired_count(), 0u);
}

TEST(Ebr, NodesSurviveWhileAnyGuardIsPinnedToOldEpoch) {
  EbrDomain domain;
  g_deleted.store(0);

  std::atomic<bool> reader_pinned{false};
  std::atomic<bool> release_reader{false};
  std::thread reader([&] {
    EbrDomain::Guard guard(domain);
    reader_pinned.store(true);
    while (!release_reader.load()) std::this_thread::yield();
  });
  while (!reader_pinned.load()) std::this_thread::yield();

  {
    EbrDomain::Guard guard(domain);
    domain.retire(new Counted(), &counted_deleter);
    // The pinned reader blocks epoch advancement, so repeated try_advance
    // must not free the node.
    for (int i = 0; i < 10; ++i) domain.try_advance();
    EXPECT_EQ(g_deleted.load(), 0u);
  }
  release_reader.store(true);
  reader.join();
  domain.drain();
  EXPECT_EQ(g_deleted.load(), 1u);
}

TEST(Ebr, EpochAdvancesWhenAllQuiescent) {
  EbrDomain domain;
  const std::uint64_t before = domain.epoch();
  {
    EbrDomain::Guard guard(domain);
    domain.retire(new Counted(), &counted_deleter);
  }
  domain.try_advance();
  domain.try_advance();
  EXPECT_GE(domain.epoch(), before + 2);
}

TEST(Ebr, GuardsAreReentrant) {
  EbrDomain domain;
  g_deleted.store(0);
  {
    EbrDomain::Guard outer(domain);
    {
      EbrDomain::Guard inner(domain);
      domain.retire(new Counted(), &counted_deleter);
    }
    // Still pinned by the outer guard — nothing freed even after advances.
    for (int i = 0; i < 6; ++i) domain.try_advance();
    EXPECT_EQ(g_deleted.load(), 0u);
  }
  domain.drain();
  EXPECT_EQ(g_deleted.load(), 1u);
}

TEST(Ebr, AutomaticAdvanceFreesEventually) {
  EbrDomain domain;
  g_deleted.store(0);
  const int total = 4 * EbrDomain::kRetireInterval + 8;
  for (int i = 0; i < total; ++i) {
    EbrDomain::Guard guard(domain);
    domain.retire(new Counted(), &counted_deleter);
  }
  // Retires exceeded several advance intervals with no concurrent pins, so
  // a strict majority of nodes must already be freed.
  EXPECT_GT(domain.freed_count(), 0u);
  domain.drain();
  EXPECT_EQ(g_deleted.load(), static_cast<std::uint64_t>(total));
}

TEST(Ebr, OrphansOfExitedThreadsAreAdopted) {
  EbrDomain domain;
  g_deleted.store(0);
  std::thread worker([&] {
    EbrDomain::Guard guard(domain);
    for (int i = 0; i < 5; ++i) domain.retire(new Counted(), &counted_deleter);
  });
  worker.join();  // thread exit hands its limbo lists to the orphan store
  domain.drain();
  EXPECT_EQ(g_deleted.load(), 5u);
}

// Readers traverse a published pointer while writers retire the previous
// value; with EBR this must never touch freed memory (checked indirectly: a
// poisoned payload would trip the EXPECT below, and ASAN/TSAN builds catch
// it directly).
TEST(EbrStress, PublishRetireReadStress) {
  EbrDomain domain;
  g_deleted.store(0);
  std::atomic<Counted*> published{new Counted()};
  published.load()->payload.store(1, std::memory_order_relaxed);
  std::atomic<bool> stop{false};
  constexpr std::uint64_t kWriters = 2;
  constexpr std::uint64_t kUpdates = 4000;

  std::vector<std::thread> team;
  for (unsigned w = 0; w < kWriters; ++w) {
    team.emplace_back([&] {
      for (std::uint64_t i = 0; i < kUpdates; ++i) {
        Counted* fresh = new Counted();
        fresh->payload.store(1, std::memory_order_relaxed);
        EbrDomain::Guard guard(domain);
        Counted* old = published.exchange(fresh);
        // Still dereferenceable: the grace period protects it.
        old->payload.store(1, std::memory_order_relaxed);
        domain.retire(old, &counted_deleter);
      }
    });
  }
  for (unsigned r = 0; r < 2; ++r) {
    team.emplace_back([&] {
      std::uint64_t sum = 0;
      // do-while: on a single-core host the writers can finish before this
      // thread first runs, so guarantee at least one read.
      do {
        EbrDomain::Guard guard(domain);
        Counted* current = published.load(std::memory_order_acquire);
        sum += current->payload.load(std::memory_order_relaxed);
        EXPECT_EQ(current->payload.load(std::memory_order_relaxed), 1u);
      } while (!stop.load(std::memory_order_relaxed));
      EXPECT_GT(sum, 0u);
    });
  }
  for (unsigned w = 0; w < kWriters; ++w) team[w].join();
  stop.store(true);
  for (std::size_t i = kWriters; i < team.size(); ++i) team[i].join();

  delete published.load();  // the last published node, counted too
  domain.drain();
  EXPECT_EQ(g_deleted.load(), kWriters * kUpdates + 1);
}

}  // namespace
}  // namespace cpq::mm
