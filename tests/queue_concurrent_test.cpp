// Cross-queue concurrent correctness, typed over every queue.
//
// The fundamental safety property for all queues (strict or relaxed) is
// exactly-once delivery: under arbitrary concurrent interleavings, every
// inserted item is returned by delete_min at most once, never invented, and
// never lost (it is eventually returned or still present at quiescence).

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <limits>
#include <memory>
#include <mutex>
#include <set>
#include <vector>

#include "platform/rng.hpp"
#include "platform/thread_util.hpp"
#include "queues/cbpq.hpp"
#include "queues/flat_combining.hpp"
#include "queues/globallock.hpp"
#include "queues/hunt_heap.hpp"
#include "queues/klsm/klsm.hpp"
#include "queues/klsm/standalone.hpp"
#include "queues/linden.hpp"
#include "queues/mound.hpp"
#include "queues/multiqueue.hpp"
#include "queues/shavit_lotan.hpp"
#include "queues/spraylist.hpp"
#include "queues/sundell_tsigas.hpp"
#include "seq/dary_heap.hpp"
#include "seq/pairing_heap.hpp"
#include "validation/checked_queue.hpp"

namespace cpq {
namespace {

using K = std::uint64_t;
using V = std::uint64_t;
using MqPairing = MultiQueue<K, V, seq::PairingHeap<K, V>>;
using MqDary = MultiQueue<K, V, seq::DaryHeap<K, V, 4>>;

template <typename Q>
std::unique_ptr<Q> make_queue(unsigned threads);

template <>
std::unique_ptr<GlobalLockQueue<K, V>> make_queue(unsigned threads) {
  return std::make_unique<GlobalLockQueue<K, V>>(threads);
}
template <>
std::unique_ptr<LindenQueue<K, V>> make_queue(unsigned threads) {
  return std::make_unique<LindenQueue<K, V>>(threads);
}
template <>
std::unique_ptr<HuntHeap<K, V>> make_queue(unsigned threads) {
  return std::make_unique<HuntHeap<K, V>>(threads, 1u << 18);
}
template <>
std::unique_ptr<SprayList<K, V>> make_queue(unsigned threads) {
  return std::make_unique<SprayList<K, V>>(threads);
}
template <>
std::unique_ptr<MultiQueue<K, V>> make_queue(unsigned threads) {
  return std::make_unique<MultiQueue<K, V>>(threads, 4);
}
template <>
std::unique_ptr<MqPairing> make_queue(unsigned threads) {
  return std::make_unique<MqPairing>(threads, 4);
}
template <>
std::unique_ptr<MqDary> make_queue(unsigned threads) {
  return std::make_unique<MqDary>(threads, 4);
}
template <>
std::unique_ptr<KLsmQueue<K, V>> make_queue(unsigned threads) {
  return std::make_unique<KLsmQueue<K, V>>(threads, 128);
}
template <>
std::unique_ptr<DlsmQueue<K, V>> make_queue(unsigned threads) {
  return std::make_unique<DlsmQueue<K, V>>(threads);
}
template <>
std::unique_ptr<SlsmQueue<K, V>> make_queue(unsigned threads) {
  return std::make_unique<SlsmQueue<K, V>>(threads, 128);
}
template <>
std::unique_ptr<ShavitLotanQueue<K, V>> make_queue(unsigned threads) {
  return std::make_unique<ShavitLotanQueue<K, V>>(threads);
}
template <>
std::unique_ptr<SundellTsigasQueue<K, V>> make_queue(unsigned threads) {
  return std::make_unique<SundellTsigasQueue<K, V>>(threads);
}
template <>
std::unique_ptr<Mound<K, V>> make_queue(unsigned threads) {
  return std::make_unique<Mound<K, V>>(threads);
}
template <>
std::unique_ptr<ChunkBasedQueue<K, V>> make_queue(unsigned threads) {
  return std::make_unique<ChunkBasedQueue<K, V>>(threads);
}
template <>
std::unique_ptr<FcPriorityQueue<K, V>> make_queue(unsigned threads) {
  return std::make_unique<FcPriorityQueue<K, V>>(threads);
}

using QueueTypes =
    ::testing::Types<GlobalLockQueue<K, V>, LindenQueue<K, V>, HuntHeap<K, V>,
                     SprayList<K, V>, MultiQueue<K, V>, MqPairing, MqDary,
                     KLsmQueue<K, V>, DlsmQueue<K, V>, SlsmQueue<K, V>,
                     ShavitLotanQueue<K, V>, SundellTsigasQueue<K, V>,
                     Mound<K, V>, ChunkBasedQueue<K, V>,
                     FcPriorityQueue<K, V>>;

template <typename Q>
class QueueConcurrentTest : public ::testing::Test {};

TYPED_TEST_SUITE(QueueConcurrentTest, QueueTypes);

constexpr V value_of(unsigned tid, std::uint64_t i) {
  return (static_cast<V>(tid + 1) << 32) | i;
}

// Drain everything through thread-0's handle at quiescence (relaxed queues
// may report transient emptiness under contention, so re-poll generously).
template <typename Q>
void quiescent_drain(Q& queue, std::vector<V>& out) {
  auto handle = queue.get_handle(0);
  unsigned misses = 0;
  while (misses < 64) {
    K k;
    V v;
    if (handle.delete_min(k, v)) {
      out.push_back(v);
      misses = 0;
    } else {
      ++misses;
    }
  }
}

TYPED_TEST(QueueConcurrentTest, MixedOpsDeliverExactlyOnce) {
  constexpr unsigned kThreads = 4;
  constexpr std::uint64_t kOpsPerThread = 8000;
  auto queue = make_queue<TypeParam>(kThreads);

  std::vector<std::vector<V>> deleted(kThreads);
  std::vector<std::uint64_t> insert_counts(kThreads, 0);
  run_team(kThreads, [&](unsigned tid) {
    auto handle = queue->get_handle(tid);
    Xoroshiro128 rng(tid * 1000 + 7);
    std::uint64_t inserted = 0;
    for (std::uint64_t op = 0; op < kOpsPerThread; ++op) {
      if (rng.next_below(100) < 55) {
        handle.insert(rng.next_below(1u << 16), value_of(tid, inserted));
        ++inserted;
      } else {
        K k;
        V v;
        if (handle.delete_min(k, v)) deleted[tid].push_back(v);
      }
    }
    insert_counts[tid] = inserted;
  });

  std::vector<V> remaining;
  quiescent_drain(*queue, remaining);

  std::set<V> seen;
  std::uint64_t total = 0;
  std::uint64_t expected = 0;
  for (unsigned t = 0; t < kThreads; ++t) expected += insert_counts[t];
  auto account = [&](V v) {
    const unsigned tid = static_cast<unsigned>(v >> 32) - 1;
    const std::uint64_t i = v & 0xFFFFFFFFULL;
    ASSERT_LT(tid, kThreads) << "invented value";
    ASSERT_LT(i, insert_counts[tid]) << "invented value";
    ASSERT_TRUE(seen.insert(v).second) << "duplicate delivery";
    ++total;
  };
  for (const auto& per : deleted) {
    for (V v : per) account(v);
  }
  for (V v : remaining) account(v);
  EXPECT_EQ(total, expected) << "lost items";
}

TYPED_TEST(QueueConcurrentTest, SplitWorkloadProducersConsumers) {
  constexpr unsigned kThreads = 4;  // 2 producers, 2 consumers
  constexpr std::uint64_t kPerProducer = 10000;
  auto queue = make_queue<TypeParam>(kThreads);

  std::atomic<std::uint64_t> produced{0};
  std::atomic<std::uint64_t> consumed{0};
  std::mutex sink_mutex;
  std::set<V> sink;

  run_team(kThreads, [&](unsigned tid) {
    auto handle = queue->get_handle(tid);
    if (tid < 2) {
      Xoroshiro128 rng(tid + 5);
      for (std::uint64_t i = 0; i < kPerProducer; ++i) {
        handle.insert(rng.next_below(1u << 20), value_of(tid, i));
        produced.fetch_add(1, std::memory_order_relaxed);
      }
    } else {
      unsigned misses = 0;
      while (consumed.load(std::memory_order_relaxed) <
                 2 * kPerProducer &&
             misses < 5000) {
        K k;
        V v;
        if (handle.delete_min(k, v)) {
          consumed.fetch_add(1, std::memory_order_relaxed);
          std::lock_guard<std::mutex> lock(sink_mutex);
          ASSERT_TRUE(sink.insert(v).second) << "duplicate";
          misses = 0;
        } else {
          ++misses;
        }
      }
    }
  });

  std::vector<V> remaining;
  quiescent_drain(*queue, remaining);
  for (V v : remaining) {
    ASSERT_TRUE(sink.insert(v).second) << "duplicate in remainder";
  }
  EXPECT_EQ(sink.size(), produced.load());
}

TYPED_TEST(QueueConcurrentTest, PrefilledConcurrentDrainDeliversAll) {
  constexpr unsigned kThreads = 4;
  constexpr std::uint64_t kItems = 20000;
  auto queue = make_queue<TypeParam>(kThreads);
  {
    auto handle = queue->get_handle(0);
    Xoroshiro128 rng(3);
    for (std::uint64_t i = 0; i < kItems; ++i) {
      handle.insert(rng.next_below(1u << 18), value_of(0, i));
    }
  }
  std::vector<std::vector<V>> got(kThreads);
  std::atomic<std::uint64_t> remaining{kItems};
  run_team(kThreads, [&](unsigned tid) {
    auto handle = queue->get_handle(tid);
    unsigned misses = 0;
    while (remaining.load(std::memory_order_relaxed) > 0 && misses < 500) {
      K k;
      V v;
      if (handle.delete_min(k, v)) {
        got[tid].push_back(v);
        remaining.fetch_sub(1, std::memory_order_relaxed);
        misses = 0;
      } else {
        ++misses;
      }
    }
  });
  std::set<V> seen;
  std::uint64_t total = 0;
  for (const auto& per : got) {
    for (V v : per) {
      ASSERT_TRUE(seen.insert(v).second);
      ++total;
    }
  }
  std::vector<V> rest;
  quiescent_drain(*queue, rest);
  for (V v : rest) {
    ASSERT_TRUE(seen.insert(v).second);
    ++total;
  }
  EXPECT_EQ(total, kItems);
}

// The same conservation property, audited by the validation-layer adaptor
// (src/validation/checked_queue.hpp) instead of hand-rolled accounting: the
// torture suite relies on the adaptor, so the adaptor itself is exercised
// against every roster queue here, injection-free.
TYPED_TEST(QueueConcurrentTest, CheckedAdaptorReportsConservation) {
  constexpr unsigned kThreads = 2;
  constexpr std::uint64_t kOpsPerThread = 4000;
  validation::CheckedQueue<TypeParam> queue(kThreads,
                                            make_queue<TypeParam>(kThreads));

  run_team(kThreads, [&](unsigned tid) {
    auto handle = queue.get_handle(tid);
    Xoroshiro128 rng(tid * 77 + 13);
    std::uint64_t inserted = 0;
    for (std::uint64_t op = 0; op < kOpsPerThread; ++op) {
      if (rng.next_below(100) < 55) {
        handle.insert(rng.next_below(1u << 14), value_of(tid, inserted++));
      } else {
        K k;
        V v;
        handle.delete_min(k, v);
      }
    }
  });

  const validation::ReconcileReport report = queue.reconcile();
  EXPECT_TRUE(report.ok()) << report.to_string();
  EXPECT_GT(report.inserted, 0u);
  EXPECT_EQ(report.inserted, report.deleted + report.drained);
}

// Strict queues must never return a key that is larger than another key
// that provably resided in the queue for the whole duration of the
// operation. A cheap version: with a permanently-present sentinel minimum
// re-inserted by a dedicated thread, strict delete_min must return the
// sentinel key "often".
TYPED_TEST(QueueConcurrentTest, HeavyContentionSmoke) {
  constexpr unsigned kThreads = 8;  // oversubscribed on purpose
  auto queue = make_queue<TypeParam>(kThreads);
  {
    auto handle = queue->get_handle(0);
    for (std::uint64_t i = 0; i < 1000; ++i) {
      handle.insert(i, value_of(0, i));
    }
  }
  std::atomic<std::uint64_t> ops{0};
  run_team(kThreads, [&](unsigned tid) {
    auto handle = queue->get_handle(tid);
    Xoroshiro128 rng(tid);
    for (int op = 0; op < 3000; ++op) {
      if (rng.next_below(2) == 0) {
        handle.insert(rng.next_below(64), value_of(tid, 100000 + op));
      } else {
        K k;
        V v;
        handle.delete_min(k, v);
      }
      ops.fetch_add(1, std::memory_order_relaxed);
    }
  });
  EXPECT_EQ(ops.load(), kThreads * 3000u);
}

// Regression for the MultiQueue empty-sentinel edge under concurrency: the
// per-queue min mirror uses numeric_limits<Key>::max() for "empty", so items
// carrying exactly that key are invisible to the two-choice routing and are
// findable only through the exact count mirrors. A mix of maximal keys and
// ordinary keys, raced by concurrent consumers, must conserve every item.
TEST(MultiQueueMaxKeyConcurrent, MaximalKeyItemsSurviveContention) {
  constexpr unsigned kThreads = 4;
  constexpr std::uint64_t kPerProducer = 3000;
  constexpr K kMax = std::numeric_limits<K>::max();
  validation::CheckedQueue<MultiQueue<K, V>> queue(
      kThreads, std::make_unique<MultiQueue<K, V>>(kThreads, 4, 17));

  std::atomic<std::uint64_t> consumed{0};
  run_team(kThreads, [&](unsigned tid) {
    auto handle = queue.get_handle(tid);
    if (tid < 2) {
      Xoroshiro128 rng(tid + 29);
      for (std::uint64_t i = 0; i < kPerProducer; ++i) {
        // Every third insertion is the maximal key; the rest keep the
        // mirrors busy with ordinary updates.
        const K key = (i % 3 == 0) ? kMax : rng.next_below(1u << 16);
        handle.insert(key, value_of(tid, i));
      }
    } else {
      unsigned misses = 0;
      while (consumed.load(std::memory_order_relaxed) < 2 * kPerProducer &&
             misses < 5000) {
        K k;
        V v;
        if (handle.delete_min(k, v)) {
          consumed.fetch_add(1, std::memory_order_relaxed);
          misses = 0;
        } else {
          ++misses;
        }
      }
    }
  });

  const validation::ReconcileReport report = queue.reconcile();
  EXPECT_TRUE(report.ok()) << report.to_string();
  EXPECT_EQ(report.inserted, 2 * kPerProducer);
  EXPECT_EQ(report.inserted, report.deleted + report.drained);
}

}  // namespace
}  // namespace cpq
