// Unit tests for the platform substrate: RNG quality/determinism, backoff,
// cache-line padding, spinlocks, seqlock, barrier, and timers.

#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <cstdint>
#include <set>
#include <thread>
#include <vector>

#include "platform/backoff.hpp"
#include "platform/cache.hpp"
#include "platform/rng.hpp"
#include "platform/spinlock.hpp"
#include "platform/thread_util.hpp"
#include "platform/timing.hpp"

namespace cpq {
namespace {

// ---- cache ----------------------------------------------------------------

TEST(Cache, AlignedWrapperIsOneLinePerElement) {
  std::vector<CacheAligned<std::uint64_t>> counters(4);
  for (std::size_t i = 1; i < counters.size(); ++i) {
    const auto a = reinterpret_cast<std::uintptr_t>(&counters[i - 1]);
    const auto b = reinterpret_cast<std::uintptr_t>(&counters[i]);
    EXPECT_EQ(b - a, kCacheLineSize);
    EXPECT_EQ(b % kCacheLineSize, 0u);
  }
}

TEST(Cache, AccessorsWork) {
  CacheAligned<int> x(41);
  EXPECT_EQ(*x, 41);
  *x += 1;
  EXPECT_EQ(x.value, 42);
}

TEST(Cache, PadFillsToLineBoundary) {
  // Pad<Used> must bring Used bytes up to a whole number of cache lines.
  EXPECT_EQ(sizeof(Pad<1>::pad) + 1, kCacheLineSize);
  EXPECT_EQ(sizeof(Pad<63>::pad) + 63, kCacheLineSize);
  EXPECT_EQ(sizeof(Pad<64>::pad), kCacheLineSize);  // full extra line
  EXPECT_EQ(sizeof(Pad<65>::pad) + 65, 2 * kCacheLineSize);
}

// ---- rng -------------------------------------------------------------------

TEST(Rng, DeterministicForSameSeed) {
  Xoroshiro128 a(123);
  Xoroshiro128 b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Xoroshiro128 a(1);
  Xoroshiro128 b(2);
  int equal = 0;
  for (int i = 0; i < 1000; ++i) equal += (a.next() == b.next());
  EXPECT_LT(equal, 5);
}

TEST(Rng, NextBelowStaysInBounds) {
  Xoroshiro128 rng(7);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 2000; ++i) EXPECT_LT(rng.next_below(bound), bound);
  }
}

TEST(Rng, NextInClosedRange) {
  Xoroshiro128 rng(7);
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t v = rng.next_in(10, 20);
    EXPECT_GE(v, 10u);
    EXPECT_LE(v, 20u);
  }
}

TEST(Rng, RoughlyUniformBuckets) {
  Xoroshiro128 rng(99);
  std::array<int, 16> buckets{};
  const int draws = 160000;
  for (int i = 0; i < draws; ++i) ++buckets[rng.next_below(16)];
  for (int count : buckets) {
    EXPECT_GT(count, draws / 16 * 0.9);
    EXPECT_LT(count, draws / 16 * 1.1);
  }
}

TEST(Rng, NextDoubleInUnitInterval) {
  Xoroshiro128 rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, ThreadSeedsAreDistinct) {
  std::set<std::uint64_t> seeds;
  for (unsigned tid = 0; tid < 256; ++tid) {
    seeds.insert(thread_seed(42, tid));
  }
  EXPECT_EQ(seeds.size(), 256u);
}

TEST(Rng, AllZeroSeedIsRepaired) {
  // SplitMix of any seed never yields the all-zero xoroshiro state, but the
  // constructor guards it anyway; just check output is nonconstant.
  Xoroshiro128 rng(0);
  std::set<std::uint64_t> values;
  for (int i = 0; i < 10; ++i) values.insert(rng.next());
  EXPECT_GT(values.size(), 1u);
}

// ---- backoff ---------------------------------------------------------------

TEST(Backoff, LimitGrowsAndTruncates) {
  Backoff backoff(1, 4, 64);
  EXPECT_EQ(backoff.current_limit(), 4u);
  for (int i = 0; i < 10; ++i) backoff.pause();
  EXPECT_EQ(backoff.current_limit(), 64u);
  backoff.reset();
  EXPECT_EQ(backoff.current_limit(), 4u);
}

// ---- spinlocks -------------------------------------------------------------

template <typename Lock>
void mutual_exclusion_stress() {
  Lock lock;
  std::uint64_t counter = 0;
  const unsigned threads = 4;
  const std::uint64_t per_thread = 20000;
  run_team(threads, [&](unsigned) {
    for (std::uint64_t i = 0; i < per_thread; ++i) {
      lock.lock();
      ++counter;
      lock.unlock();
    }
  });
  EXPECT_EQ(counter, threads * per_thread);
}

TEST(Spinlock, TasMutualExclusion) { mutual_exclusion_stress<TasSpinlock>(); }
TEST(Spinlock, TtasMutualExclusion) { mutual_exclusion_stress<Spinlock>(); }

TEST(Spinlock, TryLockReflectsState) {
  Spinlock lock;
  EXPECT_TRUE(lock.try_lock());
  EXPECT_FALSE(lock.try_lock());
  lock.unlock();
  EXPECT_TRUE(lock.try_lock());
  lock.unlock();
}

// ---- seqlock ---------------------------------------------------------------

TEST(SeqLock, ReaderSeesConsistentPairs) {
  SeqLock seq;
  // Relaxed atomics carry the data: the seqlock only orders them; using
  // plain words here would be a formal data race on the failed-validation
  // path.
  std::array<std::atomic<std::uint64_t>, 2> data{};
  std::atomic<bool> stop{false};

  std::thread writer([&] {
    for (std::uint64_t i = 1; i < 200000; ++i) {
      seq.write_begin();
      data[0].store(i, std::memory_order_relaxed);
      data[1].store(2 * i, std::memory_order_relaxed);
      seq.write_end();
    }
    stop.store(true);
  });

  // Concurrent reads: every validated snapshot must be consistent. (On a
  // single-core machine the writer may finish before any concurrent read
  // happens, so no minimum count is asserted here.)
  while (!stop.load()) {
    const auto token = seq.read_begin();
    const std::uint64_t a = data[0].load(std::memory_order_relaxed);
    const std::uint64_t b = data[1].load(std::memory_order_relaxed);
    if (seq.read_validate(token)) {
      EXPECT_EQ(b, 2 * a);
    }
  }
  writer.join();
  // Quiescent reads always validate and see the final pair.
  std::uint64_t consistent_reads = 0;
  for (int i = 0; i < 100; ++i) {
    const auto token = seq.read_begin();
    const std::uint64_t a = data[0].load(std::memory_order_relaxed);
    const std::uint64_t b = data[1].load(std::memory_order_relaxed);
    ASSERT_TRUE(seq.read_validate(token));
    EXPECT_EQ(b, 2 * a);
    ++consistent_reads;
  }
  EXPECT_EQ(consistent_reads, 100u);
}

// ---- barrier ---------------------------------------------------------------

TEST(SpinBarrier, SynchronizesPhases) {
  const unsigned threads = 4;
  const int phases = 50;
  SpinBarrier barrier(threads);
  std::atomic<int> phase_counter{0};
  run_team(threads, [&](unsigned) {
    for (int p = 0; p < phases; ++p) {
      phase_counter.fetch_add(1);
      barrier.arrive_and_wait();
      // After the barrier, all arrivals of this phase must be visible.
      EXPECT_GE(phase_counter.load(), (p + 1) * static_cast<int>(threads));
      barrier.arrive_and_wait();
    }
  });
  EXPECT_EQ(phase_counter.load(), phases * static_cast<int>(threads));
}

// ---- thread helpers ---------------------------------------------------------

TEST(ThreadUtil, RunTeamPassesDistinctIds) {
  const unsigned threads = 4;
  std::vector<std::atomic<int>> hits(threads);
  for (auto& h : hits) h.store(0);
  run_team(threads, [&](unsigned tid) {
    ASSERT_LT(tid, threads);
    hits[tid].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadUtil, RunTeamUnpinnedWorks) {
  std::atomic<int> total{0};
  run_team(3, [&](unsigned) { total.fetch_add(1); }, /*pin=*/false);
  EXPECT_EQ(total.load(), 3);
}

TEST(ThreadUtil, PinToCoreIsBestEffort) {
  // Indexes far beyond the core count must be tolerated silently.
  pin_to_core(0);
  pin_to_core(10000);
}

// ---- timing ----------------------------------------------------------------

TEST(Timing, StopwatchMeasuresSleep) {
  Stopwatch watch;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  const double s = watch.elapsed_seconds();
  EXPECT_GE(s, 0.015);
  EXPECT_LT(s, 2.0);
}

TEST(Timing, FastTimestampAdvances) {
  const std::uint64_t a = fast_timestamp();
  std::this_thread::sleep_for(std::chrono::milliseconds(1));
  const std::uint64_t b = fast_timestamp();
  EXPECT_GT(b, a);
}

}  // namespace
}  // namespace cpq
