// Edge cases and failure-injection style tests that do not fit the
// per-module suites: boundary parameters, extreme inputs, and output-format
// checks.

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <utility>
#include <set>

#include "bench_framework/keygen.hpp"
#include "bench_framework/table.hpp"
#include "bench_framework/workload.hpp"
#include "mm/epoch.hpp"
#include "platform/rng.hpp"
#include "queues/cbpq.hpp"
#include "queues/klsm/klsm.hpp"
#include "queues/linden.hpp"
#include "queues/mound.hpp"
#include "queues/multiqueue.hpp"

namespace cpq {
namespace {

using K = std::uint64_t;
using V = std::uint64_t;

// ---- key generator boundaries ---------------------------------------------

TEST(EdgeKeyGen, SixtyFourBitMaskCoversFullRange) {
  bench::KeyGenerator gen(bench::KeyConfig::uniform(64), 1, 0);
  bool high_bit_seen = false;
  for (int i = 0; i < 1000; ++i) {
    high_bit_seen |= (gen.next() >> 63) != 0;
  }
  EXPECT_TRUE(high_bit_seen);
}

TEST(EdgeKeyGen, OneBitRange) {
  bench::KeyGenerator gen(bench::KeyConfig::uniform(1), 1, 0);
  for (int i = 0; i < 100; ++i) EXPECT_LE(gen.next(), 1u);
}

TEST(EdgeWorkload, SplitWithOneThreadInserts) {
  bench::OpChooser chooser(bench::Workload::kSplit, 0, 1, 1);
  EXPECT_TRUE(chooser.next_is_insert());
}

TEST(EdgeWorkload, ExtremeInsertFractions) {
  bench::OpChooser all_ins(bench::Workload::kUniform, 0, 1, 1, 1.0);
  bench::OpChooser all_del(bench::Workload::kUniform, 0, 1, 1, 0.0);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_TRUE(all_ins.next_is_insert());
    EXPECT_FALSE(all_del.next_is_insert());
  }
}

// ---- table CSV emission ----------------------------------------------------

TEST(EdgeTable, CsvEmissionWhenEnvSet) {
  setenv("CPQ_CSV", "1", 1);
  bench::Table table("csv demo", "threads", {"q1"});
  table.add_row("1", {"2.5"});
  ::testing::internal::CaptureStdout();
  table.print();
  const std::string out = ::testing::internal::GetCapturedStdout();
  unsetenv("CPQ_CSV");
  EXPECT_NE(out.find("csv,title,csv demo"), std::string::npos);
  EXPECT_NE(out.find("csv,1,2.5"), std::string::npos);
}

// ---- EBR boundaries ---------------------------------------------------------

TEST(EdgeEbr, ExactRetireIntervalBoundary) {
  mm::EbrDomain domain;
  int freed = 0;
  static int* freed_ptr;
  freed_ptr = &freed;
  auto deleter = [](void* p) {
    ++*freed_ptr;
    delete static_cast<int*>(p);
  };
  {
    mm::EbrDomain::Guard guard(domain);
    for (unsigned i = 0; i < mm::EbrDomain::kRetireInterval - 1; ++i) {
      domain.retire(new int(0), deleter);
    }
    EXPECT_EQ(freed, 0);  // below the interval: no advance attempted
  }
  domain.drain();
  EXPECT_EQ(freed, static_cast<int>(mm::EbrDomain::kRetireInterval) - 1);
}

TEST(EdgeEbr, ManySequentialDomains) {
  // Address reuse across domain lifetimes must not confuse the per-thread
  // participant cache (instance-id check).
  for (int round = 0; round < 50; ++round) {
    mm::EbrDomain domain;
    mm::EbrDomain::Guard guard(domain);
    domain.retire(new int(round), [](void* p) { delete static_cast<int*>(p); });
  }
}

// ---- queue extremes ---------------------------------------------------------

TEST(EdgeLinden, ManyItemsBuildTallTowers) {
  LindenQueue<K, V> queue(1);
  auto handle = queue.get_handle(0);
  const K n = 200000;  // tall towers likely (height ~ log2 n)
  for (K i = 0; i < n; ++i) handle.insert(i ^ 0x5555, i);
  EXPECT_EQ(queue.unsafe_size(), n);
  K k, v, prev = 0;
  for (K i = 0; i < n; ++i) {
    ASSERT_TRUE(handle.delete_min(k, v));
    ASSERT_GE(k, prev);
    prev = k;
  }
}

TEST(EdgeCbpq, ExactChunkCapacityBoundaries) {
  using Queue = ChunkBasedQueue<K, V>;
  for (const std::size_t n :
       {std::size_t{Queue::kChunkCapacity - 1},
        std::size_t{Queue::kChunkCapacity},
        std::size_t{Queue::kChunkCapacity + 1},
        std::size_t{2 * Queue::kChunkCapacity},
        std::size_t{2 * Queue::kChunkCapacity + 1}}) {
    Queue queue(1);
    auto handle = queue.get_handle(0);
    for (std::size_t i = 0; i < n; ++i) handle.insert(i, i);
    K k;
    V v;
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_TRUE(handle.delete_min(k, v)) << "n=" << n << " i=" << i;
      ASSERT_EQ(k, i);
    }
    ASSERT_FALSE(handle.delete_min(k, v));
  }
}

TEST(EdgeCbpq, RefillAfterFullDrainRepeatedly) {
  ChunkBasedQueue<K, V> queue(1);
  auto handle = queue.get_handle(0);
  for (int round = 0; round < 20; ++round) {
    for (K i = 0; i < 1000; ++i) handle.insert(i, i);
    K k;
    V v;
    for (K i = 0; i < 1000; ++i) {
      ASSERT_TRUE(handle.delete_min(k, v));
      ASSERT_EQ(k, i);
    }
    ASSERT_FALSE(handle.delete_min(k, v));
  }
}

TEST(EdgeMound, AllEqualKeysNeverGrowPastNeed) {
  Mound<K, V> mound(1, 1, /*initial_depth=*/2);
  auto handle = mound.get_handle(0);
  // Equal keys always satisfy val(parent) <= key, so they pile onto high
  // nodes; the tree must not grow unboundedly.
  for (int i = 0; i < 5000; ++i) handle.insert(42, i);
  EXPECT_EQ(mound.unsafe_size(), 5000u);
  K k;
  V v;
  std::set<V> values;
  while (handle.delete_min(k, v)) values.insert(v);
  EXPECT_EQ(values.size(), 5000u);
}

TEST(EdgeMultiQueue, SentinelMaxKeyRoundTrips) {
  // An item whose key equals the empty-mirror sentinel must not be lost.
  // (The MultiQueue is relaxed — two-choice sampling may legally return the
  // max-key item before a smaller one — so only exactly-once delivery is
  // asserted, not order.)
  MultiQueue<K, V> queue(2, 4);
  auto handle = queue.get_handle(0);
  handle.insert(std::numeric_limits<K>::max(), 1);
  handle.insert(0, 2);
  std::set<std::pair<K, V>> got;
  K k;
  V v;
  while (handle.delete_min(k, v)) got.insert({k, v});
  EXPECT_EQ(got.size(), 2u);
  EXPECT_TRUE(got.count({std::numeric_limits<K>::max(), 1}));
  EXPECT_TRUE(got.count({0, 2}));
}

TEST(EdgeKlsm, RelaxationZeroBehavesStrictlySingleThread) {
  KLsmQueue<K, V> queue(1, /*relaxation_k=*/0);
  auto handle = queue.get_handle(0);
  Xoroshiro128 rng(5);
  std::multiset<K> model;
  for (int op = 0; op < 4000; ++op) {
    if (model.empty() || rng.next_below(2) == 0) {
      const K key = rng.next_below(1000);
      handle.insert(key, op);
      model.insert(key);
    } else {
      K k;
      V v;
      ASSERT_TRUE(handle.delete_min(k, v));
      ASSERT_EQ(k, *model.begin());
      model.erase(model.begin());
    }
  }
}

TEST(EdgeKlsm, HugeRelaxationStaysLocal) {
  // k far above the item count: the SLSM never engages; deletes are exact
  // local minima (single thread), i.e. strict.
  KLsmQueue<K, V> queue(1, 1u << 20);
  auto handle = queue.get_handle(0);
  for (K i = 1000; i-- > 0;) handle.insert(i, i);
  K k;
  V v;
  for (K i = 0; i < 1000; ++i) {
    ASSERT_TRUE(handle.delete_min(k, v));
    ASSERT_EQ(k, i);
  }
}

}  // namespace
}  // namespace cpq
