// Component tests for the k-LSM internals: Block claim semantics and
// claim-merge exactly-once behaviour, BlockArray minimum search, the
// ThreadLocalLsm (DLSM) including concurrent spy stealing, and the SLSM's
// pivot-range relaxation guarantee.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <set>
#include <utility>
#include <vector>

#include "mm/epoch.hpp"
#include "platform/rng.hpp"
#include "platform/thread_util.hpp"
#include "queues/klsm/block.hpp"
#include "queues/klsm/dlsm.hpp"
#include "queues/klsm/slsm.hpp"

namespace cpq::klsm_detail {
namespace {

using K = std::uint64_t;
using V = std::uint64_t;
using BlockT = Block<K, V>;
using ArrayT = BlockArray<K, V>;

std::vector<std::pair<K, V>> make_items(std::initializer_list<K> keys) {
  std::vector<std::pair<K, V>> items;
  V v = 0;
  for (K k : keys) items.emplace_back(k, v++);
  return items;
}

TEST(Block, CreateAndInspect) {
  BlockT* block = BlockT::create(make_items({1, 3, 5, 9}));
  EXPECT_EQ(block->slot_count(), 4u);
  EXPECT_EQ(block->capacity(), 4u);
  EXPECT_EQ(block->first_live(), 0u);
  EXPECT_EQ(block->slot(2).key, 5u);
  block->unref();
}

TEST(Block, CapacityIsNextPowerOfTwo) {
  BlockT* block = BlockT::create(make_items({1, 2, 3, 4, 5}));
  EXPECT_EQ(block->capacity(), 8u);
  block->unref();
}

TEST(Block, ClaimIsExactlyOnceSequential) {
  BlockT* block = BlockT::create(make_items({1, 2, 3}));
  EXPECT_TRUE(block->claim(1));
  EXPECT_FALSE(block->claim(1));
  EXPECT_EQ(block->first_live(), 0u);
  EXPECT_TRUE(block->claim(0));
  EXPECT_EQ(block->first_live(), 2u);
  block->unref();
}

TEST(Block, UpperBoundCountsKeysBelowThreshold) {
  BlockT* block = BlockT::create(make_items({2, 4, 4, 4, 8}));
  EXPECT_EQ(block->upper_bound(1), 0u);
  EXPECT_EQ(block->upper_bound(2), 1u);
  EXPECT_EQ(block->upper_bound(4), 4u);
  EXPECT_EQ(block->upper_bound(100), 5u);
  block->unref();
}

TEST(Block, ConcurrentClaimExactlyOnce) {
  constexpr std::uint32_t n = 4096;
  std::vector<std::pair<K, V>> items;
  for (std::uint32_t i = 0; i < n; ++i) items.emplace_back(i, i);
  BlockT* block = BlockT::create(std::move(items));
  std::atomic<std::uint32_t> claimed{0};
  run_team(4, [&](unsigned) {
    for (std::uint32_t i = 0; i < n; ++i) {
      if (block->claim(i)) claimed.fetch_add(1, std::memory_order_relaxed);
    }
  });
  EXPECT_EQ(claimed.load(), n);
  EXPECT_EQ(block->first_live(), n);
  block->unref();
}

TEST(Block, ClaimMergeKeepsSortedOrderAndMovesEverything) {
  BlockT* a = BlockT::create(make_items({1, 4, 7}));
  BlockT* b = BlockT::create(make_items({2, 4, 9, 12}));
  auto merged = claim_merge(*a, *b);
  ASSERT_EQ(merged.size(), 7u);
  EXPECT_TRUE(std::is_sorted(merged.begin(), merged.end(),
                             [](const auto& x, const auto& y) {
                               return x.first < y.first;
                             }));
  // Sources fully claimed.
  EXPECT_EQ(a->first_live(), a->slot_count());
  EXPECT_EQ(b->first_live(), b->slot_count());
  a->unref();
  b->unref();
}

TEST(Block, ClaimMergeSkipsAlreadyClaimed) {
  BlockT* a = BlockT::create(make_items({1, 4, 7}));
  BlockT* b = BlockT::create(make_items({2, 9}));
  ASSERT_TRUE(a->claim(1));  // key 4 gone
  auto merged = claim_merge(*a, *b);
  std::vector<K> keys;
  for (auto& [k, v] : merged) keys.push_back(k);
  EXPECT_EQ(keys, (std::vector<K>{1, 2, 7, 9}));
  a->unref();
  b->unref();
}

// Concurrent merge vs claimants: every item is delivered exactly once,
// either to a racing claimant or into the merged output.
TEST(Block, ConcurrentMergeAndClaimDeliverExactlyOnce) {
  for (int round = 0; round < 20; ++round) {
    constexpr std::uint32_t n = 2048;
    std::vector<std::pair<K, V>> ia, ib;
    for (std::uint32_t i = 0; i < n; ++i) ia.emplace_back(2 * i, i);
    for (std::uint32_t i = 0; i < n; ++i) ib.emplace_back(2 * i + 1, n + i);
    BlockT* a = BlockT::create(std::move(ia));
    BlockT* b = BlockT::create(std::move(ib));

    std::vector<std::pair<K, V>> merged;
    std::vector<V> stolen_a, stolen_b;
    run_team(3, [&](unsigned tid) {
      if (tid == 0) {
        merged = claim_merge(*a, *b);
      } else if (tid == 1) {
        for (std::uint32_t i = 0; i < n; ++i) {
          if (a->claim(i)) stolen_a.push_back(a->slot(i).value);
        }
      } else {
        for (std::uint32_t i = 0; i < n; ++i) {
          if (b->claim(i)) stolen_b.push_back(b->slot(i).value);
        }
      }
    });
    std::set<V> all;
    std::size_t total = 0;
    auto account = [&](V v) {
      EXPECT_TRUE(all.insert(v).second);
      ++total;
    };
    for (auto& [k, v] : merged) account(v);
    for (V v : stolen_a) account(v);
    for (V v : stolen_b) account(v);
    ASSERT_EQ(total, 2 * n);
    a->unref();
    b->unref();
  }
}

// ---- merge kernels (merge_kernel.hpp) ------------------------------------
//
// The branch-free and SIMD kernels must be byte-for-byte substitutes for
// the scalar oracle: same output, same stable tie-break (ties take from the
// first run). claim_merge edge cases ride along since it now feeds the
// kernels via drain-then-merge.

using Item = std::pair<K, V>;

std::vector<Item> run_kernel_scalar(const std::vector<Item>& a,
                                    const std::vector<Item>& b) {
  std::vector<Item> out(a.size() + b.size());
  const std::size_t n = merge_sorted_scalar(a.data(), a.size(), b.data(),
                                            b.size(), out.data());
  EXPECT_EQ(n, out.size());
  return out;
}

std::vector<Item> run_kernel_branchfree(const std::vector<Item>& a,
                                        const std::vector<Item>& b) {
  std::vector<Item> out(a.size() + b.size());
  const std::size_t n = merge_sorted_branchfree(a.data(), a.size(), b.data(),
                                                b.size(), out.data());
  EXPECT_EQ(n, out.size());
  return out;
}

TEST(MergeKernel, EmptyInputs) {
  const std::vector<Item> empty;
  const std::vector<Item> some = make_items({1, 2, 3});
  EXPECT_TRUE(run_kernel_branchfree(empty, empty).empty());
  EXPECT_EQ(run_kernel_branchfree(some, empty), some);
  EXPECT_EQ(run_kernel_branchfree(empty, some), some);
#if CPQ_MERGE_HAVE_SSE42_TARGET
  if (merge_simd_available()) {
    std::vector<Item> out(some.size());
    ASSERT_EQ(merge_sorted_simd(some.data(), some.size(), empty.data(), 0,
                                out.data()),
              some.size());
    EXPECT_EQ(out, some);
  }
#endif
}

TEST(MergeKernel, StableOnDuplicateKeys) {
  // Values encode provenance: ties must take every `a` element before any
  // `b` element with the same key, and preserve within-run order.
  std::vector<Item> a{{5, 1}, {5, 2}, {7, 3}};
  std::vector<Item> b{{5, 100}, {6, 101}, {7, 102}};
  const std::vector<Item> expected{{5, 1}, {5, 2}, {5, 100},
                                   {6, 101}, {7, 3}, {7, 102}};
  EXPECT_EQ(run_kernel_scalar(a, b), expected);
  EXPECT_EQ(run_kernel_branchfree(a, b), expected);
#if CPQ_MERGE_HAVE_SSE42_TARGET
  if (merge_simd_available()) {
    std::vector<Item> out(a.size() + b.size());
    ASSERT_EQ(
        merge_sorted_simd(a.data(), a.size(), b.data(), b.size(), out.data()),
        expected.size());
    EXPECT_EQ(out, expected);
  }
#endif
}

// Randomized equivalence: every fast kernel must reproduce the scalar
// oracle exactly, including heavily duplicated keys and skewed run lengths.
TEST(MergeKernel, FastKernelsMatchScalarOracleFuzz) {
  Xoroshiro128 rng(0xF00D);
  for (int round = 0; round < 200; ++round) {
    const std::size_t na = rng.next_below(97);
    const std::size_t nb = rng.next_below(97);
    // Small key range forces duplicate keys within and across runs.
    const K key_range = 1 + rng.next_below(24);
    std::vector<Item> a, b;
    for (std::size_t i = 0; i < na; ++i) {
      a.emplace_back(rng.next_below(key_range), 1000 + i);
    }
    for (std::size_t i = 0; i < nb; ++i) {
      b.emplace_back(rng.next_below(key_range), 2000 + i);
    }
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    const auto oracle = run_kernel_scalar(a, b);
    EXPECT_EQ(run_kernel_branchfree(a, b), oracle);
    const auto dispatched = [&] {
      std::vector<Item> out(na + nb);
      EXPECT_EQ(
          merge_sorted(a.data(), na, b.data(), nb, out.data()), na + nb);
      return out;
    }();
    EXPECT_EQ(dispatched, oracle);
#if CPQ_MERGE_HAVE_SSE42_TARGET
    if (merge_simd_available()) {
      std::vector<Item> out(na + nb);
      ASSERT_EQ(merge_sorted_simd(a.data(), na, b.data(), nb, out.data()),
                na + nb);
      EXPECT_EQ(out, oracle);
    }
#endif
  }
}

TEST(MergeKernel, ClaimMergeBothBlocksEmptyAfterClaims) {
  BlockT* a = BlockT::create(make_items({1, 2}));
  BlockT* b = BlockT::create(make_items({3}));
  for (std::uint32_t i = 0; i < a->slot_count(); ++i) ASSERT_TRUE(a->claim(i));
  for (std::uint32_t i = 0; i < b->slot_count(); ++i) ASSERT_TRUE(b->claim(i));
  auto merged = claim_merge(*a, *b);
  EXPECT_TRUE(merged.empty());
  a->unref();
  b->unref();
}

TEST(MergeKernel, ClaimMergeExactSizeNoOverAllocation) {
  // The old path reserved live_estimate(a) + live_estimate(b), which counts
  // already-claimed slots; the drain-then-merge path must size the result
  // exactly to what it actually claimed.
  BlockT* a = BlockT::create(make_items({1, 2, 3, 4, 5, 6, 7, 8}));
  BlockT* b = BlockT::create(make_items({10, 11, 12, 13}));
  for (std::uint32_t i = 2; i < 8; ++i) ASSERT_TRUE(a->claim(i));
  ASSERT_TRUE(b->claim(0));
  auto merged = claim_merge(*a, *b);
  ASSERT_EQ(merged.size(), 5u);  // {1, 2} + {11, 12, 13}
  EXPECT_EQ(merged.capacity(), merged.size());
  std::vector<K> keys;
  for (auto& [k, v] : merged) keys.push_back(k);
  EXPECT_EQ(keys, (std::vector<K>{1, 2, 11, 12, 13}));
  a->unref();
  b->unref();
}

TEST(MergeKernel, ClaimMergeStabilityAcrossBlocks) {
  // Duplicate keys across the two blocks: the first block's items must
  // precede the second's (values encode provenance).
  std::vector<Item> ia{{5, 0}, {5, 1}};
  std::vector<Item> ib{{5, 100}, {5, 101}};
  BlockT* a = BlockT::create(std::move(ia));
  BlockT* b = BlockT::create(std::move(ib));
  auto merged = claim_merge(*a, *b);
  const std::vector<Item> expected{{5, 0}, {5, 1}, {5, 100}, {5, 101}};
  EXPECT_EQ(merged, expected);
  a->unref();
  b->unref();
}

// The kernel-backed claim_merge against racing claimants under fault
// injection pressure (block.claim / block.drain seams widened when compiled
// with CPQ_FAULT_INJECTION; plain build exercises the same race window):
// exactly-once delivery must hold regardless of which kernel ran.
TEST(MergeKernel, ConcurrentKernelMergeConservesUnderRacingClaims) {
  for (int round = 0; round < 10; ++round) {
    constexpr std::uint32_t n = 1024;
    std::vector<Item> ia, ib;
    for (std::uint32_t i = 0; i < n; ++i) ia.emplace_back(i % 64, i);
    for (std::uint32_t i = 0; i < n; ++i) ib.emplace_back(i % 64, n + i);
    std::sort(ia.begin(), ia.end());
    std::sort(ib.begin(), ib.end());
    BlockT* a = BlockT::create(std::move(ia));
    BlockT* b = BlockT::create(std::move(ib));

    std::vector<Item> merged;
    std::vector<V> stolen;
    run_team(2, [&](unsigned tid) {
      if (tid == 0) {
        merged = claim_merge(*a, *b);
      } else {
        for (std::uint32_t i = 0; i < n; i += 3) {
          if (a->claim(i)) stolen.push_back(a->slot(i).value);
          if (b->claim(i)) stolen.push_back(b->slot(i).value);
        }
      }
    });
    EXPECT_TRUE(std::is_sorted(merged.begin(), merged.end()));
    std::set<V> all;
    std::size_t total = 0;
    for (auto& [k, v] : merged) {
      EXPECT_TRUE(all.insert(v).second);
      ++total;
    }
    for (V v : stolen) {
      EXPECT_TRUE(all.insert(v).second);
      ++total;
    }
    ASSERT_EQ(total, 2 * n);
    a->unref();
    b->unref();
  }
}

TEST(BlockArray, FindMinAcrossBlocks) {
  ArrayT* array = ArrayT::create();
  array->blocks[array->count++] = BlockT::create(make_items({10, 20, 30, 40}));
  array->blocks[array->count++] = BlockT::create(make_items({15, 25}));
  array->blocks[array->count++] = BlockT::create(make_items({5}));
  std::uint32_t bi, si;
  K key;
  ASSERT_TRUE(array->find_min(bi, si, key));
  EXPECT_EQ(key, 5u);
  EXPECT_EQ(bi, 2u);
  array->blocks[2]->claim(0);
  ASSERT_TRUE(array->find_min(bi, si, key));
  EXPECT_EQ(key, 10u);
  ArrayT::destroy(array);
}

TEST(BlockArray, RefcountSharingAcrossArrays) {
  BlockT* shared = BlockT::create(make_items({1, 2}));
  ArrayT* a = ArrayT::create();
  a->blocks[a->count++] = shared;  // takes the initial ref
  ArrayT* b = ArrayT::create();
  shared->ref();
  b->blocks[b->count++] = shared;
  ArrayT::destroy(a);
  // Block must still be alive through b.
  EXPECT_EQ(shared->slot(1).key, 2u);
  ArrayT::destroy(b);
}

// ---- DLSM -------------------------------------------------------------

TEST(Dlsm, LocalInsertDeleteIsStrictlyOrdered) {
  ThreadLocalLsm<K, V> lsm;
  Xoroshiro128 rng(9);
  std::vector<K> keys;
  for (int i = 0; i < 3000; ++i) {
    const K key = rng.next_below(1000);
    keys.push_back(key);
    lsm.insert(key, i);
  }
  std::sort(keys.begin(), keys.end());
  for (std::size_t i = 0; i < keys.size(); ++i) {
    K k;
    V v;
    ASSERT_TRUE(lsm.delete_local_min(k, v));
    ASSERT_EQ(k, keys[i]);
  }
  K k;
  V v;
  EXPECT_FALSE(lsm.delete_local_min(k, v));
}

TEST(Dlsm, LiveEstimateTracksContents) {
  ThreadLocalLsm<K, V> lsm;
  for (int i = 0; i < 100; ++i) lsm.insert(i, i);
  EXPECT_EQ(lsm.live_estimate(), 100u);
  K k;
  V v;
  for (int i = 0; i < 40; ++i) ASSERT_TRUE(lsm.delete_local_min(k, v));
  EXPECT_LE(lsm.live_estimate(), 100u);
  EXPECT_GE(lsm.live_estimate(), 60u);
}

TEST(Dlsm, ExtractLargestBlockRemovesItsItems) {
  ThreadLocalLsm<K, V> lsm;
  for (int i = 0; i < 64; ++i) lsm.insert(i, i);
  const auto batch = lsm.extract_largest_block();
  EXPECT_FALSE(batch.empty());
  EXPECT_TRUE(std::is_sorted(batch.begin(), batch.end()));
  // Remaining items plus batch cover exactly the inserted set.
  std::multiset<K> rest;
  K k;
  V v;
  while (lsm.delete_local_min(k, v)) rest.insert(k);
  EXPECT_EQ(rest.size() + batch.size(), 64u);
}

TEST(Dlsm, ConcurrentSpyStealsExactlyOnce) {
  for (int round = 0; round < 10; ++round) {
    ThreadLocalLsm<K, V> victim;
    constexpr std::uint64_t n = 5000;
    for (std::uint64_t i = 0; i < n; ++i) victim.insert(i, i);

    std::vector<V> owner_got;
    std::vector<std::pair<K, V>> spy_got;
    run_team(2, [&](unsigned tid) {
      if (tid == 0) {
        // Owner keeps deleting local minima (also triggers merges via
        // interleaved inserts).
        K k;
        V v;
        for (std::uint64_t i = 0; i < n; ++i) {
          if (victim.delete_local_min(k, v)) owner_got.push_back(v);
        }
      } else {
        mm::EbrDomain::Guard guard;
        auto* array = victim.spy_array();
        if (array) ThreadLocalLsm<K, V>::steal_all(array, spy_got);
      }
    });
    // Collect leftovers.
    K k;
    V v;
    while (victim.delete_local_min(k, v)) owner_got.push_back(v);

    std::set<V> all;
    std::size_t total = 0;
    for (V got : owner_got) {
      EXPECT_TRUE(all.insert(got).second);
      ++total;
    }
    for (auto& [key, value] : spy_got) {
      EXPECT_TRUE(all.insert(value).second);
      ++total;
    }
    ASSERT_EQ(total, n);
  }
}

// ---- DLSM staging buffer -------------------------------------------------

TEST(DlsmStaging, PeekSeesStagedMinimumBeforeAnyBlockExists) {
  ThreadLocalLsm<K, V> lsm;
  lsm.insert(30, 1);
  lsm.insert(10, 2);
  lsm.insert(20, 3);
  ThreadLocalLsm<K, V>::PeekResult peeked;
  ASSERT_TRUE(lsm.peek_local_min(peeked));
  EXPECT_TRUE(peeked.staged);
  EXPECT_EQ(peeked.key, 10u);
  K k;
  V v;
  ASSERT_TRUE(lsm.claim_peeked(peeked, k, v));
  EXPECT_EQ(k, 10u);
  EXPECT_EQ(v, 2u);
}

TEST(DlsmStaging, FlushBoundaryMaterializesBlock) {
  ThreadLocalLsm<K, V> lsm;
  const std::uint32_t n = ThreadLocalLsm<K, V>::kStagingSlots;
  for (std::uint32_t i = 0; i < 3 * n + 5; ++i) {
    lsm.insert(1000 - i, i);
  }
  EXPECT_EQ(lsm.live_estimate(), 3 * n + 5);
  // All items, staged or not, drain in sorted order.
  K k;
  V v;
  K prev = 0;
  std::uint32_t count = 0;
  while (lsm.delete_local_min(k, v)) {
    EXPECT_GE(k, prev);
    prev = k;
    ++count;
  }
  EXPECT_EQ(count, 3 * n + 5);
}

TEST(DlsmStaging, StaleClaimFailsAfterSlotReuse) {
  // Pin a staged slot's incarnation via peek, force a flush + refill that
  // reuses the slot, then verify the stale claim CAS is rejected.
  ThreadLocalLsm<K, V> lsm;
  lsm.insert(5, 100);  // lands in staging slot 0
  ThreadLocalLsm<K, V>::PeekResult stale;
  ASSERT_TRUE(lsm.peek_local_min(stale));
  ASSERT_TRUE(stale.staged);
  // Fill the buffer so the flush runs, then refill slot 0 with a new item.
  const std::uint32_t n = ThreadLocalLsm<K, V>::kStagingSlots;
  for (std::uint32_t i = 0; i < n + 1; ++i) lsm.insert(1000 + i, 200 + i);
  K k;
  V v;
  EXPECT_FALSE(lsm.claim_peeked(stale, k, v));
  // Every item is still delivered exactly once.
  std::set<V> values;
  while (lsm.delete_local_min(k, v)) EXPECT_TRUE(values.insert(v).second);
  EXPECT_EQ(values.size(), n + 2);
}

TEST(DlsmStaging, SpyStealsStagedItems) {
  ThreadLocalLsm<K, V> victim;
  victim.insert(7, 70);
  victim.insert(3, 30);
  std::vector<std::pair<K, V>> stolen;
  victim.steal_staging(stolen);
  ASSERT_EQ(stolen.size(), 2u);
  // Victim now sees nothing.
  K k;
  V v;
  EXPECT_FALSE(victim.delete_local_min(k, v));
}

TEST(DlsmStaging, ConcurrentOwnerAndSpyExactlyOnce) {
  for (int round = 0; round < 20; ++round) {
    ThreadLocalLsm<K, V> victim;
    constexpr std::uint64_t n = 2000;
    std::vector<V> owner_got;
    std::vector<std::pair<K, V>> spy_got;
    run_team(2, [&](unsigned tid) {
      if (tid == 0) {
        K k;
        V v;
        for (std::uint64_t i = 0; i < n; ++i) {
          victim.insert(i, i);
          if (i % 3 == 0 && victim.delete_local_min(k, v)) {
            owner_got.push_back(v);
          }
        }
        while (victim.delete_local_min(k, v)) owner_got.push_back(v);
      } else {
        for (int spy_round = 0; spy_round < 50; ++spy_round) {
          mm::EbrDomain::Guard guard;
          if (auto* array = victim.spy_array()) {
            ThreadLocalLsm<K, V>::steal_all(array, spy_got);
          }
          victim.steal_staging(spy_got);
        }
      }
    });
    // The owner's final drain may have raced the spy's last steals; sweep
    // the leftovers.
    K k;
    V v;
    while (victim.delete_local_min(k, v)) owner_got.push_back(v);
    std::set<V> all;
    std::size_t total = 0;
    for (V got : owner_got) {
      EXPECT_TRUE(all.insert(got).second);
      ++total;
    }
    for (auto& [key, value] : spy_got) {
      EXPECT_TRUE(all.insert(value).second);
      ++total;
    }
    ASSERT_EQ(total, n);
  }
}

// ---- SLSM -------------------------------------------------------------

class SlsmRelaxation : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SlsmRelaxation, DeleteMinStaysWithinKPlusOneSmallest) {
  const std::uint64_t k = GetParam();
  Slsm<K, V> slsm(k);
  Xoroshiro128 rng(k + 3);
  std::multiset<K> model;
  for (int i = 0; i < 3000; ++i) {
    const K key = rng.next_below(100000);
    slsm.insert(key, i);
    model.insert(key);
  }
  Xoroshiro128 del_rng(17);
  for (int i = 0; i < 2500; ++i) {
    K key;
    V value;
    ASSERT_TRUE(slsm.delete_min(key, value, del_rng));
    // The returned key must be among the k+1 smallest of the current model.
    auto bound = model.begin();
    std::advance(bound, std::min<std::size_t>(k, model.size() - 1));
    ASSERT_LE(key, *bound) << "violated k+1 bound with k=" << k;
    const auto it = model.find(key);
    ASSERT_NE(it, model.end());
    model.erase(it);
  }
}

INSTANTIATE_TEST_SUITE_P(Relaxations, SlsmRelaxation,
                         ::testing::Values(0, 1, 4, 16, 128, 1024));

TEST(Slsm, DrainsCompletely) {
  Slsm<K, V> slsm(64);
  Xoroshiro128 rng(21);
  for (int i = 0; i < 2000; ++i) slsm.insert(rng.next_below(50), i);
  Xoroshiro128 del_rng(5);
  std::set<V> seen;
  K key;
  V value;
  std::size_t drained = 0;
  while (slsm.delete_min(key, value, del_rng)) {
    EXPECT_TRUE(seen.insert(value).second);
    ++drained;
  }
  EXPECT_EQ(drained, 2000u);
}

TEST(Slsm, BatchInsertMergesCascade) {
  Slsm<K, V> slsm(16);
  for (int batch = 0; batch < 20; ++batch) {
    std::vector<std::pair<K, V>> items;
    for (int i = 0; i < 32; ++i) {
      items.emplace_back(batch * 100 + i, batch * 1000 + i);
    }
    slsm.insert_batch(std::move(items));
  }
  EXPECT_EQ(slsm.live_estimate(), 20u * 32u);
  Xoroshiro128 rng(1);
  K key;
  V value;
  ASSERT_TRUE(slsm.delete_min(key, value, rng));
  EXPECT_LE(key, 16u);  // one of the 17 smallest keys (0..16)
}

TEST(Slsm, ConcurrentInsertDeleteExactlyOnce) {
  Slsm<K, V> slsm(256);
  constexpr unsigned threads = 4;
  constexpr std::uint64_t per_thread = 3000;
  std::vector<std::vector<V>> deleted(threads);
  run_team(threads, [&](unsigned tid) {
    Xoroshiro128 rng(tid + 31);
    for (std::uint64_t i = 0; i < per_thread; ++i) {
      slsm.insert(rng.next_below(100000), (static_cast<V>(tid) << 32) | i);
      K key;
      V value;
      if (slsm.delete_min(key, value, rng)) deleted[tid].push_back(value);
    }
  });
  // Drain the remainder.
  Xoroshiro128 rng(999);
  K key;
  V value;
  std::vector<V> rest;
  while (slsm.delete_min(key, value, rng)) rest.push_back(value);
  std::set<V> all;
  std::size_t total = 0;
  for (const auto& per : deleted) {
    for (V v : per) {
      EXPECT_TRUE(all.insert(v).second);
      ++total;
    }
  }
  for (V v : rest) {
    EXPECT_TRUE(all.insert(v).second);
    ++total;
  }
  EXPECT_EQ(total, threads * per_thread);
}

}  // namespace
}  // namespace cpq::klsm_detail
