// End-to-end integration: run the real throughput and quality harnesses
// through the queue registry for every registered queue, with tiny
// parameters, and sanity-check the results (positive throughput, plausible
// rank errors, strict queues near zero error).

#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "bench_framework/json_out.hpp"
#include "bench_framework/registry.hpp"
#include "queues/multiqueue_eng.hpp"

namespace cpq::bench {
namespace {

// Run the real cpq_bench_cli binary (path injected by CMake) with the given
// arguments; returns its exit status and captures stdout.
int run_cli_command(const std::string& cmd, std::string& output) {
  std::FILE* pipe = popen(cmd.c_str(), "r");
  if (pipe == nullptr) return -1;
  output.clear();
  char buf[4096];
  std::size_t got;
  while ((got = std::fread(buf, 1, sizeof(buf), pipe)) > 0) {
    output.append(buf, got);
  }
  const int status = pclose(pipe);
  if (status == -1) return -1;
  return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

int run_cli(const std::string& args, std::string& stdout_text) {
  return run_cli_command(
      std::string(CPQ_BENCH_CLI_PATH) + " " + args + " 2>/dev/null",
      stdout_text);
}

// Variant with stderr merged into the captured output (watchdog stall dumps
// and failure reports go to stderr) and an optional VAR=value environment
// prefix for the child process.
int run_cli_merged(const std::string& args, std::string& output,
                   const std::string& env_prefix = "") {
  std::string cmd;
  if (!env_prefix.empty()) cmd += env_prefix + " ";
  cmd += std::string(CPQ_BENCH_CLI_PATH) + " " + args + " 2>&1";
  return run_cli_command(cmd, output);
}

std::vector<JsonRecord> parse_json_lines(const std::string& text) {
  std::vector<JsonRecord> records;
  std::size_t start = 0;
  while (start < text.size()) {
    std::size_t end = text.find('\n', start);
    if (end == std::string::npos) end = text.size();
    const std::string line = text.substr(start, end - start);
    start = end + 1;
    if (line.empty() || line[0] != '{') continue;
    JsonRecord record;
    EXPECT_TRUE(parse_json_record(line, record)) << "bad JSON line: " << line;
    records.push_back(record);
  }
  return records;
}

BenchConfig tiny_config() {
  BenchConfig cfg;
  cfg.threads = 2;
  cfg.prefill = 2000;
  cfg.duration_s = 0.02;
  cfg.ops_per_thread = 4000;
  cfg.repetitions = 1;
  cfg.seed = 7;
  return cfg;
}

TEST(Registry, ContainsThePaperRoster) {
  const auto roster = paper_roster();
  ASSERT_EQ(roster.size(), 7u);
  EXPECT_EQ(roster[0]->name, "glock");
  EXPECT_EQ(roster[1]->name, "linden");
  EXPECT_EQ(roster[2]->name, "spray");
  EXPECT_EQ(roster[3]->name, "mq");
  EXPECT_EQ(roster[4]->name, "klsm128");
  EXPECT_EQ(roster[5]->name, "klsm256");
  EXPECT_EQ(roster[6]->name, "klsm4096");
}

TEST(Registry, BenchModesAreRegisteredAndDescribed) {
  const auto& modes = bench_mode_registry();
  ASSERT_EQ(modes.size(), 5u);
  for (const char* name :
       {"throughput", "quality", "latency", "sort", "service"}) {
    const BenchModeSpec* mode = find_bench_mode(name);
    ASSERT_NE(mode, nullptr) << name;
    EXPECT_FALSE(mode->description.empty()) << name;
  }
  EXPECT_EQ(find_bench_mode("bogus"), nullptr);
  EXPECT_EQ(find_bench_mode(""), nullptr);
}

TEST(Registry, FindAndResolve) {
  EXPECT_NE(find_queue("mq"), nullptr);
  EXPECT_EQ(find_queue("nope"), nullptr);
  const auto roster = resolve_roster("linden,klsm256,bogus");
  ASSERT_EQ(roster.size(), 2u);
  EXPECT_EQ(roster[0]->name, "linden");
  EXPECT_EQ(roster[1]->name, "klsm256");
  EXPECT_EQ(resolve_roster("").size(), 7u);
}

TEST(Registry, EngineeredVariantsSelfReportWidenedSoftBounds) {
  // The engineered MultiQueues are extensions (the paper roster stays at
  // seven) whose armed rank bound must come from the queue's own
  // soft-bound formula under the current mq_tuning(), wider than classic
  // mq's c*P, and never hard — soft bounds must not count violations.
  const QueueSpec* mq = find_queue("mq");
  ASSERT_NE(mq, nullptr);
  const MqTuning& tuning = mq_tuning();
  const struct {
    const char* name;
    bool sticky;
    bool buffered;
  } variants[] = {{"mq-buf", false, true},
                  {"mq-sticky", true, false},
                  {"mq-eng", true, true}};
  for (const auto& variant : variants) {
    const QueueSpec* spec = find_queue(variant.name);
    ASSERT_NE(spec, nullptr) << variant.name;
    EXPECT_FALSE(spec->strict) << variant.name;
    EXPECT_FALSE(spec->in_paper) << variant.name;
    EXPECT_FALSE(spec->rank_bound_hard) << variant.name;
    ASSERT_TRUE(spec->rank_bound) << variant.name;
    MqEngConfig cfg;
    cfg.c = tuning.c;
    cfg.stickiness = variant.sticky ? tuning.stickiness : 1;
    cfg.ins_buffer = variant.buffered ? tuning.buffer : 0;
    cfg.del_buffer = variant.buffered ? tuning.buffer : 0;
    for (unsigned threads : {1u, 4u, 16u}) {
      EXPECT_EQ(spec->rank_bound(threads),
                (EngMultiQueue<bench_key, bench_value>::soft_rank_bound(
                    cfg, threads)))
          << variant.name << " t=" << threads;
      EXPECT_GT(spec->rank_bound(threads), mq->rank_bound(threads))
          << variant.name << " t=" << threads;
    }
  }
}

TEST(Integration, ThroughputRunsForEveryQueue) {
  BenchConfig cfg = tiny_config();
  for (const QueueSpec& spec : queue_registry()) {
    SCOPED_TRACE(spec.name);
    const ThroughputResult result = spec.throughput(cfg);
    EXPECT_GT(result.mops.mean, 0.0) << spec.name;
    EXPECT_EQ(result.per_rep.size(), cfg.repetitions);
  }
}

TEST(Integration, ThroughputAcrossWorkloadsAndKeys) {
  BenchConfig cfg = tiny_config();
  cfg.duration_s = 0.01;
  const QueueSpec* klsm = find_queue("klsm128");
  ASSERT_NE(klsm, nullptr);
  for (const Workload workload :
       {Workload::kUniform, Workload::kSplit, Workload::kAlternating}) {
    for (const KeyConfig keys :
         {KeyConfig::uniform(32), KeyConfig::uniform(8),
          KeyConfig::ascending(), KeyConfig::descending()}) {
      SCOPED_TRACE(workload_name(workload) + "/" + keys.name());
      cfg.workload = workload;
      cfg.keys = keys;
      const ThroughputResult result = klsm->throughput(cfg);
      EXPECT_GT(result.mops.mean, 0.0);
    }
  }
}

TEST(Integration, QualityRunsForEveryQueue) {
  BenchConfig cfg = tiny_config();
  for (const QueueSpec& spec : queue_registry()) {
    SCOPED_TRACE(spec.name);
    const QualityResult result = spec.quality(cfg);
    EXPECT_GT(result.deletions, 0u) << spec.name;
    EXPECT_GE(result.rank_error.mean, 0.0);
  }
}

TEST(Integration, StrictQueuesHaveNearZeroRankErrorSingleThread) {
  BenchConfig cfg = tiny_config();
  cfg.threads = 1;
  for (const QueueSpec& spec : queue_registry()) {
    if (!spec.strict) continue;
    SCOPED_TRACE(spec.name);
    const QualityResult result = spec.quality(cfg);
    EXPECT_DOUBLE_EQ(result.rank_error.mean, 0.0) << spec.name;
    EXPECT_EQ(result.max_rank_error, 0u) << spec.name;
  }
}

TEST(Integration, StrictQueuesHaveSmallRankErrorConcurrently) {
  // Under concurrency, timestamp-order ambiguity between racing operations
  // produces small apparent rank errors even for linearizable queues; they
  // must stay near zero while relaxed queues can be large.
  BenchConfig cfg = tiny_config();
  cfg.threads = 4;
  for (const QueueSpec& spec : queue_registry()) {
    if (!spec.strict) continue;
    SCOPED_TRACE(spec.name);
    const QualityResult result = spec.quality(cfg);
    EXPECT_LT(result.median_rank_error, 5.0) << spec.name;
  }
}

TEST(Integration, KlsmRankErrorGrowsWithRelaxation) {
  // The queue must be much larger than k, otherwise everything stays in the
  // DLSM (per-thread cap k) and the SLSM's relaxation never shows (the
  // paper's setup has prefill 10^6 >> 4096 for the same reason).
  BenchConfig cfg = tiny_config();
  cfg.threads = 2;
  cfg.prefill = 30000;
  cfg.ops_per_thread = 10000;
  const QualityResult k128 = find_queue("klsm128")->quality(cfg);
  const QualityResult k4096 = find_queue("klsm4096")->quality(cfg);
  // Medians, not means: timestamps are taken after each operation returns,
  // so on an oversubscribed machine a thread descheduled inside delete_min
  // lets a whole timeslice of inserts land "before" it in the replay
  // order — a handful of such outliers can dominate the mean arbitrarily.
  // The exact kP bound is verified race-free in SlsmRelaxation and
  // RelaxedQueuesRespectRankBound.
  EXPECT_GT(k4096.median_rank_error, k128.median_rank_error);
  EXPECT_LT(k128.median_rank_error, 128.0 * cfg.threads);
}

TEST(Integration, LatencyRunsAndOrdersPercentiles) {
  BenchConfig cfg = tiny_config();
  cfg.ops_per_thread = 3000;
  for (const char* name : {"glock", "klsm256", "cbpq"}) {
    SCOPED_TRACE(name);
    const LatencyResult result = find_queue(name)->latency(cfg);
    EXPECT_GT(result.insert.samples, 0u);
    EXPECT_GT(result.delete_min.samples, 0u);
    EXPECT_GT(result.insert.p50_ns, 0.0);
    EXPECT_LE(result.insert.p50_ns, result.insert.p90_ns);
    EXPECT_LE(result.insert.p90_ns, result.insert.p99_ns);
    EXPECT_LE(result.insert.p99_ns, result.insert.max_ns);
    EXPECT_LE(result.delete_min.p50_ns, result.delete_min.p99_ns);
  }
}

TEST(Integration, PercentileExtraction) {
  std::vector<double> samples;
  for (int i = 1; i <= 100; ++i) samples.push_back(i);
  const LatencyPercentiles p = percentiles_of(samples);
  EXPECT_EQ(p.samples, 100u);
  EXPECT_NEAR(p.p50_ns, 50.0, 1.0);
  EXPECT_NEAR(p.p90_ns, 90.0, 1.0);
  EXPECT_NEAR(p.p99_ns, 99.0, 1.0);
  EXPECT_DOUBLE_EQ(p.max_ns, 100.0);

  std::vector<double> empty;
  EXPECT_EQ(percentiles_of(empty).samples, 0u);
}

TEST(Integration, SortPhasesRun) {
  BenchConfig cfg = tiny_config();
  cfg.prefill = 5000;
  for (const char* name : {"glock", "linden", "mound", "cbpq", "klsm256"}) {
    SCOPED_TRACE(name);
    const auto [insert_mops, delete_mops] =
        find_queue(name)->sort_phases(cfg);
    EXPECT_GT(insert_mops, 0.0);
    EXPECT_GT(delete_mops, 0.0);
  }
}

TEST(Integration, SplitWorkloadRunsThroughRegistry) {
  BenchConfig cfg = tiny_config();
  cfg.workload = Workload::kSplit;
  cfg.keys = KeyConfig::ascending();
  for (const char* name : {"linden", "mq", "klsm256"}) {
    SCOPED_TRACE(name);
    const ThroughputResult result = find_queue(name)->throughput(cfg);
    EXPECT_GT(result.mops.mean, 0.0);
  }
}

TEST(Integration, HoldModelKeysRunThroughRegistry) {
  BenchConfig cfg = tiny_config();
  cfg.keys = KeyConfig::hold();
  const ThroughputResult result = find_queue("mq")->throughput(cfg);
  EXPECT_GT(result.mops.mean, 0.0);
}

// The kP bound scales with k: sweep the relaxation and verify the observed
// mean rank error stays under the theoretical cap while growing with k.
class KlsmBoundSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(KlsmBoundSweep, MedianRankErrorBelowTheoreticalCap) {
  const std::uint64_t k = GetParam();
  const std::string name = "klsm" + std::to_string(k);
  const QueueSpec* spec = find_queue(name);
  ASSERT_NE(spec, nullptr);
  BenchConfig cfg = tiny_config();
  cfg.threads = 2;
  cfg.prefill = 20000;
  cfg.ops_per_thread = 6000;
  const QualityResult result = spec->quality(cfg);
  EXPECT_LT(result.median_rank_error,
            static_cast<double>(k) * cfg.threads + 1);
}

INSTANTIATE_TEST_SUITE_P(Relaxations, KlsmBoundSweep,
                         ::testing::Values(128, 256, 4096));

TEST(Integration, QualityDeterministicForFixedSeed) {
  BenchConfig cfg = tiny_config();
  cfg.threads = 1;  // single thread: fully deterministic
  const QueueSpec* glock = find_queue("glock");
  const QualityResult a = glock->quality(cfg);
  const QualityResult b = glock->quality(cfg);
  EXPECT_EQ(a.deletions, b.deletions);
  EXPECT_DOUBLE_EQ(a.rank_error.mean, b.rank_error.mean);
}

// ---- the PriorityService dispatch layer through the registry -------------

service::ServiceBenchConfig tiny_service_config() {
  service::ServiceBenchConfig cfg;
  cfg.producers = 1;
  cfg.consumers = 1;
  cfg.duration_s = 0.02;
  cfg.prefill = 500;
  cfg.seed = 7;
  cfg.pin_threads = false;
  return cfg;
}

// Every roster queue must run through PriorityService wrapped in
// CheckedQueue with zero conservation violations (the PR's acceptance bar;
// the fault-injected variant of the same property lives in torture_test).
TEST(Integration, ServiceBenchConservesForEveryQueueChecked) {
  service::ServiceBenchConfig cfg = tiny_service_config();
  cfg.checked = true;
  for (const QueueSpec& spec : queue_registry()) {
    SCOPED_TRACE(spec.name);
    const ServiceComparison comparison = spec.service_bench(cfg);
    EXPECT_TRUE(comparison.raw.conservation_ok)
        << spec.name << ": " << comparison.raw.conservation_report;
    EXPECT_TRUE(comparison.service.conservation_ok)
        << spec.name << ": " << comparison.service.conservation_report;
    EXPECT_GT(comparison.raw.delivered, 0u);
    EXPECT_GT(comparison.service.delivered, 0u);
    EXPECT_GE(comparison.service.stats.flushes, 1u);
  }
}

TEST(Integration, ServiceBenchAccountsShutdownUnchecked) {
  const service::ServiceBenchConfig cfg = tiny_service_config();
  const QueueSpec* mq = find_queue("mq");
  ASSERT_NE(mq, nullptr);
  const ServiceComparison comparison = mq->service_bench(cfg);
  // close()+drain() accounting: every accepted task was delivered or
  // recovered by the drain — nothing dropped at shutdown.
  EXPECT_EQ(comparison.service.stats.submitted,
            comparison.service.stats.delivered + comparison.service.drained);
  EXPECT_GT(comparison.service.deletions, 0u);
}

// ---- cpq_bench_cli as a black box ----------------------------------------

TEST(BenchCli, ListPrintsQueuesAndBenchmarksAndExitsZero) {
  std::string out;
  ASSERT_EQ(run_cli("--list", out), 0);
  EXPECT_NE(out.find("queues:"), std::string::npos);
  EXPECT_NE(out.find("benchmarks (--mode=...):"), std::string::npos);
  for (const QueueSpec& spec : queue_registry()) {
    EXPECT_NE(out.find(spec.name), std::string::npos) << spec.name;
    EXPECT_NE(out.find(spec.description), std::string::npos) << spec.name;
  }
  for (const BenchModeSpec& mode : bench_mode_registry()) {
    EXPECT_NE(out.find(mode.name), std::string::npos) << mode.name;
    EXPECT_NE(out.find(mode.description), std::string::npos) << mode.name;
  }
}

TEST(BenchCli, InvalidFlagsExitWithStatusTwo) {
  std::string out;
  EXPECT_EQ(run_cli("--mode=bogus", out), 2);
  EXPECT_EQ(run_cli("--no-such-flag", out), 2);
  EXPECT_EQ(run_cli("--reps=3x", out), 2);
  EXPECT_EQ(run_cli("--ms=-5", out), 2);
  EXPECT_EQ(run_cli("--insert-fraction=1.5", out), 2);
  EXPECT_EQ(run_cli("--arrival-hz=nope", out), 2);
  EXPECT_EQ(run_cli("--json=", out), 2);
  EXPECT_EQ(run_cli("--queues=bogus1,bogus2", out), 2);
  // Engineered-MultiQueue knobs: garbage, empty, negative, and
  // out-of-range values must all die with status 2 before any measurement.
  EXPECT_EQ(run_cli("--mq-c=abc", out), 2);
  EXPECT_EQ(run_cli("--mq-c=0", out), 2);
  EXPECT_EQ(run_cli("--mq-c=65", out), 2);
  EXPECT_EQ(run_cli("--mq-sticky=", out), 2);
  EXPECT_EQ(run_cli("--mq-sticky=-3", out), 2);
  EXPECT_EQ(run_cli("--mq-sticky=4097", out), 2);
  EXPECT_EQ(run_cli("--mq-buf=16x", out), 2);
  EXPECT_EQ(run_cli("--mq-buf=1025", out), 2);
}

TEST(BenchCli, MqKnobsListedAndAccepted) {
  std::string out;
  ASSERT_EQ(run_cli("--list", out), 0);
  for (const char* needle :
       {"mq-buf", "mq-sticky", "mq-eng", "--mq-c=N", "--mq-sticky=N",
        "--mq-buf=N", "engineered MultiQueue knobs"}) {
    EXPECT_NE(out.find(needle), std::string::npos) << needle;
  }
  // Valid knob values run end to end (including buffer 0 = unbuffered).
  ASSERT_EQ(run_cli("--mode=throughput --queues=mq-eng --threads=2 --ms=5 "
                    "--reps=1 --prefill=200 --mq-c=2 --mq-sticky=4 "
                    "--mq-buf=8",
                    out),
            0);
  EXPECT_NE(out.find("mq-eng"), std::string::npos);
  ASSERT_EQ(run_cli("--mode=throughput --queues=mq-buf --threads=2 --ms=5 "
                    "--reps=1 --prefill=200 --mq-buf=0",
                    out),
            0);
}

TEST(BenchCli, MetricsFlagArmsWidenedEngineeredBound) {
  // The --metrics rank-est line for mq-eng must carry the widened soft
  // bound derived from the CLI knobs — (c*s + 2*buf) * threads — and soft
  // bounds must never report a violation.
  std::string out;
  ASSERT_EQ(run_cli("--mode=throughput --queues=mq-eng --threads=2 --ms=20 "
                    "--reps=1 --prefill=5000 --mq-c=4 --mq-sticky=8 "
                    "--mq-buf=16 --metrics",
                    out),
            0);
  EXPECT_NE(out.find("# rank-est mq-eng t=2:"), std::string::npos) << out;
  EXPECT_NE(out.find("bound=128 (soft) violations=0"), std::string::npos)
      << out;
}

TEST(BenchCli, JsonOutputValidatesAgainstSchema) {
  std::string out;
  ASSERT_EQ(
      run_cli("--mode=throughput --queues=glock,mq --threads=1 --ms=5 "
              "--reps=2 --prefill=200 --json=-",
              out),
      0);
  const std::vector<JsonRecord> records = parse_json_lines(out);
  ASSERT_EQ(records.size(), 2u);  // one per (threads, queue) cell
  for (const JsonRecord& record : records) {
    EXPECT_EQ(record.metric, "throughput_mops");
    EXPECT_EQ(record.threads, 1u);
    EXPECT_EQ(record.reps, 2u);
    EXPECT_GT(record.mean, 0.0);
    EXPECT_NE(record.experiment.find("custom"), std::string::npos);
  }
  EXPECT_EQ(records[0].queue, "glock");
  EXPECT_EQ(records[1].queue, "mq");
}

TEST(BenchCli, ServiceModeEmitsServiceMetrics) {
  std::string out;
  ASSERT_EQ(
      run_cli("--mode=service --queues=glock --threads=2 --ms=10 "
              "--prefill=200 --json=-",
              out),
      0);
  const std::vector<JsonRecord> records = parse_json_lines(out);
  ASSERT_EQ(records.size(), 10u);
  EXPECT_EQ(records[0].metric, "raw_tasks_per_s");
  EXPECT_EQ(records[1].metric, "service_tasks_per_s");
  EXPECT_EQ(records[2].metric, "service_rank_error_median");
  EXPECT_EQ(records[3].metric, "service_delete_p50_ns");
  EXPECT_EQ(records[4].metric, "service_delete_p99_ns");
  EXPECT_EQ(records[5].metric, "service_sojourn_p99_ns");
  EXPECT_EQ(records[6].metric, "service_shed_total");
  EXPECT_EQ(records[7].metric, "service_tier_rejected");
  EXPECT_EQ(records[8].metric, "service_reroutes");
  EXPECT_EQ(records[9].metric, "service_breaker_trips");
  EXPECT_GT(records[0].mean, 0.0);
  EXPECT_GT(records[1].mean, 0.0);
  EXPECT_GT(records[3].mean, 0.0);
  EXPECT_GE(records[4].mean, records[3].mean);
  EXPECT_GT(records[5].mean, 0.0);
  // No ttl/breaker configured: the overload counters exist but stay zero.
  EXPECT_EQ(records[6].mean, 0.0);
  EXPECT_EQ(records[9].mean, 0.0);
  // The latency table (third table of service mode) made it to stdout.
  EXPECT_NE(out.find("delete_min latency [ns] p50/p99 raw -> service"),
            std::string::npos);
  // And the overload table (fourth) with its shed/reroute/trip triple.
  EXPECT_NE(out.find("sojourn p99 [us] raw -> service (shed/reroutes/trips)"),
            std::string::npos);
}

TEST(BenchCli, MetricsFlagReportsPerCellCounters) {
  std::string out;
  ASSERT_EQ(run_cli("--mode=throughput --queues=mq --threads=2 --ms=5 "
                    "--reps=1 --prefill=200 --metrics",
                    out),
            0);
  // One "# metrics" line per cell, naming every counter.
  EXPECT_NE(out.find("# metrics mq t=2:"), std::string::npos) << out;
  EXPECT_NE(out.find("cas_retry="), std::string::npos);
  EXPECT_NE(out.find("lock_retry="), std::string::npos);
  EXPECT_NE(out.find("ebr_retire="), std::string::npos);
}

TEST(BenchCli, LatencyModeWithMetricsPrintsHistograms) {
  std::string out;
  ASSERT_EQ(run_cli("--mode=latency --queues=glock --threads=1 --ops=2000 "
                    "--reps=1 --prefill=200 --metrics",
                    out),
            0);
  EXPECT_NE(out.find("delete_min latency [ns] p50 / p99"), std::string::npos);
  EXPECT_NE(out.find("glock insert latency [ns]: n="), std::string::npos)
      << out;
  EXPECT_NE(out.find("glock delete_min latency [ns]: n="), std::string::npos);
}

TEST(BenchCli, LatencyModeEmitsJsonWithStatus) {
  std::string out;
  ASSERT_EQ(run_cli("--mode=latency --queues=glock --threads=1 --ops=1000 "
                    "--reps=1 --prefill=200 --json=-",
                    out),
            0);
  const std::vector<JsonRecord> records = parse_json_lines(out);
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[0].metric, "latency_delete_p50_ns");
  EXPECT_EQ(records[1].metric, "latency_delete_p99_ns");
  EXPECT_EQ(records[2].metric, "latency_insert_p99_ns");
  for (const JsonRecord& record : records) {
    EXPECT_EQ(record.status, "ok");
    EXPECT_GT(record.mean, 0.0);
    EXPECT_EQ(record.reps, 1u);
  }
}

TEST(BenchCli, JsonLinesCarryCurrentSchemaVersion) {
  std::string out;
  ASSERT_EQ(run_cli("--mode=throughput --queues=glock --threads=1 --ms=5 "
                    "--reps=1 --prefill=200 --json=-",
                    out),
            0);
  EXPECT_NE(out.find("\"schema_version\":4,"), std::string::npos) << out;
  const std::vector<JsonRecord> records = parse_json_lines(out);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].schema_version, kJsonSchemaVersion);
}

// ---- the adversarial workload subsystem through the CLI ------------------

TEST(BenchCli, SkewedKeyDistributionsEmitValidJson) {
  for (const char* dist : {"zipf:1.1", "hotspot:0.9,0.1", "dijkstra:1,100"}) {
    SCOPED_TRACE(dist);
    std::string out;
    ASSERT_EQ(run_cli("--mode=throughput --queues=glock,mq --threads=1 "
                      "--ms=5 --reps=1 --prefill=200 --json=- --key-dist=" +
                          std::string(dist),
                      out),
              0);
    const std::vector<JsonRecord> records = parse_json_lines(out);
    ASSERT_EQ(records.size(), 2u);
    for (const JsonRecord& record : records) {
      EXPECT_EQ(record.metric, "throughput_mops");
      EXPECT_GT(record.mean, 0.0);
      EXPECT_EQ(record.schema_version, kJsonSchemaVersion);
    }
  }
}

TEST(BenchCli, MalformedWorkloadSpecsExitWithStatusTwo) {
  std::string out;
  EXPECT_EQ(run_cli("--key-dist=zipf:0", out), 2);
  EXPECT_EQ(run_cli("--key-dist=zipf:1.1,64", out), 2);
  EXPECT_EQ(run_cli("--key-dist=hotspot:0.9", out), 2);
  EXPECT_EQ(run_cli("--key-dist=dijkstra:5,2", out), 2);
  EXPECT_EQ(run_cli("--key-dist=bogus", out), 2);
  EXPECT_EQ(run_cli("--keys=bogus", out), 2);
  EXPECT_EQ(run_cli("--arrivals=mmpp:1000,100,10", out), 2);
  EXPECT_EQ(run_cli("--arrivals=poisson:0", out), 2);
  EXPECT_EQ(run_cli("--producer-fraction=0", out), 2);
  EXPECT_EQ(run_cli("--producer-fraction=1.5", out), 2);
  // Interleaving is a throughput-mode concept; other modes must refuse it
  // rather than silently ignore the hygiene request.
  EXPECT_EQ(run_cli("--mode=quality --interleave", out), 2);
}

TEST(BenchCli, InterleavedModeEmitsLayoutSpreadPerQueue) {
  std::string out;
  ASSERT_EQ(run_cli("--mode=throughput --queues=glock,mq --threads=2 --ms=5 "
                    "--reps=3 --prefill=200 --interleave --json=-",
                    out),
            0);
  EXPECT_NE(out.find("# layout"), std::string::npos) << out;
  bool saw_throughput = false, saw_spread = false, saw_min = false,
       saw_max = false;
  for (const JsonRecord& record : parse_json_lines(out)) {
    if (record.metric == "throughput_mops") saw_throughput = true;
    if (record.metric == "layout_spread_pct") {
      saw_spread = true;
      EXPECT_GE(record.mean, 0.0);
    }
    if (record.metric == "layout_min_mops") saw_min = true;
    if (record.metric == "layout_max_mops") saw_max = true;
  }
  EXPECT_TRUE(saw_throughput) << out;
  EXPECT_TRUE(saw_spread) << out;
  EXPECT_TRUE(saw_min) << out;
  EXPECT_TRUE(saw_max) << out;
}

TEST(BenchCli, OpenLoopArrivalsEmitBurstDiagnostics) {
  std::string out;
  ASSERT_EQ(run_cli("--mode=throughput --queues=mq --threads=2 --ms=20 "
                    "--reps=1 --prefill=200 "
                    "--arrivals=mmpp:200000,20000,5,15 --json=-",
                    out),
            0);
  EXPECT_NE(out.find("# burst"), std::string::npos) << out;
  bool saw_offered = false, saw_on = false, saw_count = false;
  for (const JsonRecord& record : parse_json_lines(out)) {
    if (record.metric == "burst_offered_mops") {
      saw_offered = true;
      EXPECT_GT(record.mean, 0.0);
    }
    if (record.metric == "burst_on_fraction") {
      saw_on = true;
      EXPECT_GT(record.mean, 0.0);
      EXPECT_LE(record.mean, 1.0);
    }
    if (record.metric == "burst_count") saw_count = true;
  }
  EXPECT_TRUE(saw_offered) << out;
  EXPECT_TRUE(saw_on) << out;
  EXPECT_TRUE(saw_count) << out;
}

TEST(BenchCli, PcSplitWorkloadRunsWithTunableFraction) {
  std::string out;
  ASSERT_EQ(run_cli("--mode=throughput --queues=mq --threads=2 --ms=5 "
                    "--reps=1 --prefill=500 --workload=pcsplit "
                    "--producer-fraction=0.75 --key-dist=hotspot:0.9,0.1",
                    out),
            0);
  EXPECT_NE(out.find("mq"), std::string::npos);
}

// Live quality telemetry: with --metrics, a relaxed-queue cell must report
// the online rank-error estimate and its relaxation bound; hardware perf
// counters report per-op rates, or "null" where the environment denies
// perf_event_open (containers/CI) — either way the run succeeds.
TEST(BenchCli, MetricsFlagReportsRankEstimateAndPerfCounters) {
  std::string out;
  ASSERT_EQ(run_cli("--mode=throughput --queues=klsm256 --threads=2 --ms=20 "
                    "--reps=1 --prefill=5000 --metrics --json=-",
                    out),
            0);
  EXPECT_NE(out.find("# rank-est klsm256 t=2:"), std::string::npos) << out;
  EXPECT_NE(out.find("bound=512 (hard)"), std::string::npos) << out;
  EXPECT_NE(out.find("violations="), std::string::npos) << out;
  EXPECT_NE(out.find("# perf klsm256 t=2:"), std::string::npos) << out;
  EXPECT_NE(out.find("cycles/op="), std::string::npos) << out;

  bool saw_rank_est = false;
  bool saw_perf = false;
  for (const JsonRecord& record : parse_json_lines(out)) {
    if (record.metric == "rank_est_p50") saw_rank_est = true;
    if (record.metric == "perf_cycles_per_op") saw_perf = true;
  }
  EXPECT_TRUE(saw_rank_est) << out;
  EXPECT_TRUE(saw_perf) << out;
}

// Strict queues have rank error identically zero by construction; the
// estimator must stay disarmed for them (no "# rank-est" line).
TEST(BenchCli, StrictQueuesDoNotArmTheRankEstimator) {
  std::string out;
  ASSERT_EQ(run_cli("--mode=throughput --queues=glock --threads=2 --ms=10 "
                    "--reps=1 --prefill=500 --metrics",
                    out),
            0);
  EXPECT_EQ(out.find("# rank-est"), std::string::npos) << out;
}

TEST(BenchCli, DumpTracesPrintsRingsAtNormalExit) {
  std::string out;
  ASSERT_EQ(run_cli_merged("--mode=throughput --queues=mq --threads=2 "
                           "--ms=10 --reps=1 --prefill=500 --dump-traces",
                           out),
            0);
  EXPECT_NE(out.find("sampled ops, newest first"), std::string::npos) << out;
}

TEST(BenchCli, TraceOutWritesLoadableChromeTrace) {
  const std::string path = ::testing::TempDir() + "cpq_cli_trace_test.json";
  std::remove(path.c_str());
  std::string out;
  ASSERT_EQ(run_cli("--mode=throughput --queues=mq --threads=2 --ms=10 "
                    "--reps=1 --prefill=500 --trace-out=" + path,
                    out),
            0);
  EXPECT_NE(out.find("# trace: wrote"), std::string::npos) << out;

  std::FILE* file = std::fopen(path.c_str(), "r");
  ASSERT_NE(file, nullptr) << path;
  std::string text;
  char buf[4096];
  std::size_t got;
  while ((got = std::fread(buf, 1, sizeof(buf), file)) > 0) {
    text.append(buf, got);
  }
  std::fclose(file);
  std::remove(path.c_str());
  // Structural spot checks; full schema validation is CI's
  // tools/check_chrome_trace.py job.
  EXPECT_EQ(text.find("{\"traceEvents\":["), 0u) << text.substr(0, 80);
  EXPECT_NE(text.find("\"ph\":\"M\""), std::string::npos);
  EXPECT_NE(text.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(text.find("\"ph\":\"i\",\"s\":\"t\""), std::string::npos);
  EXPECT_NE(text.find("\"displayTimeUnit\":\"ns\"}"), std::string::npos);
}

TEST(BenchCli, EmptyTraceOutPathIsRejected) {
  std::string out;
  EXPECT_EQ(run_cli("--trace-out=", out), 2);
}

// Telemetry flag hygiene (bench/telemetry_cli.hpp): malformed values and
// dependent flags without --telemetry-hz must exit 2 before measuring
// anything. The --slo specs contain '<', so they ride through the popen
// shell single-quoted.
TEST(BenchCli, MalformedTelemetryFlagsExitWithStatusTwo) {
  std::string out;
  EXPECT_EQ(run_cli("--telemetry-hz=", out), 2);
  EXPECT_EQ(run_cli("--telemetry-hz=bogus", out), 2);
  EXPECT_EQ(run_cli("--telemetry-hz=-5", out), 2);
  EXPECT_EQ(run_cli("--telemetry-hz=1e9", out), 2);
  EXPECT_EQ(run_cli("--telemetry-hz=100x", out), 2);
  EXPECT_EQ(run_cli("--telemetry-hz=100 --timeseries-out=", out), 2);
  EXPECT_EQ(run_cli("--telemetry-hz=100 --prom-out=", out), 2);
  EXPECT_EQ(run_cli("--telemetry-hz=100 '--slo='", out), 2);
  EXPECT_EQ(run_cli("--telemetry-hz=100 '--slo=bogus_metric<5'", out), 2);
  EXPECT_EQ(run_cli("--telemetry-hz=100 '--slo=p99_sojourn_us<'", out), 2);
  EXPECT_EQ(run_cli("--telemetry-hz=100 '--slo=p99_sojourn_us<>500'", out), 2);
  EXPECT_EQ(run_cli("--telemetry-hz=100 '--slo=p99_sojourn_us<500x'", out), 2);
}

TEST(BenchCli, OrphanTelemetryFlagsExitWithStatusTwo) {
  // Export/SLO flags without sampling would silently produce empty
  // artifacts that look like measurements; the drivers refuse instead.
  const std::string tmp = ::testing::TempDir() + "cpq_orphan_out";
  std::string out;
  EXPECT_EQ(run_cli("--timeseries-out=" + tmp, out), 2);
  EXPECT_EQ(run_cli("--prom-out=" + tmp, out), 2);
  EXPECT_EQ(run_cli("'--slo=p99_sojourn_us<500'", out), 2);
  EXPECT_EQ(run_cli("--telemetry-hz=0 --prom-out=" + tmp, out), 2);
}

// Happy path for the telemetry plane through the real binary: a sampled
// run emits the "# telemetry" summary, informational ts_*/slo_* JSON
// records, a schema-v4 JSONL series, and a Prometheus dump. Full series
// validation is CI's tools/check_timeseries.py job.
TEST(BenchCli, TelemetrySamplingEmitsSeriesSloAndPrometheusArtifacts) {
  const std::string series =
      ::testing::TempDir() + "cpq_cli_series_test.jsonl";
  const std::string prom = ::testing::TempDir() + "cpq_cli_prom_test.txt";
  std::remove(series.c_str());
  std::remove(prom.c_str());
  std::string out;
  ASSERT_EQ(run_cli("--mode=throughput --queues=mq --threads=2 --ms=80 "
                    "--reps=1 --prefill=500 --json=- --telemetry-hz=500 "
                    "'--slo=p99_latency_us<1000000,shed_pct<100' "
                    "--timeseries-out=" +
                        series + " --prom-out=" + prom,
                    out),
            0);
  EXPECT_NE(out.find("# telemetry:"), std::string::npos) << out;
  EXPECT_NE(out.find("time-series records"), std::string::npos) << out;

  bool saw_samples = false, saw_slo = false;
  for (const JsonRecord& record : parse_json_lines(out)) {
    if (record.metric == "ts_samples") {
      saw_samples = true;
      EXPECT_EQ(record.queue, "telemetry");
      EXPECT_GT(record.mean, 0.0);
    }
    if (record.metric.rfind("slo_samples:", 0) == 0) saw_slo = true;
  }
  EXPECT_TRUE(saw_samples) << out;
  EXPECT_TRUE(saw_slo) << out;

  std::FILE* file = std::fopen(series.c_str(), "r");
  ASSERT_NE(file, nullptr) << series;
  std::string text;
  char buf[4096];
  std::size_t got;
  while ((got = std::fread(buf, 1, sizeof(buf), file)) > 0) {
    text.append(buf, got);
  }
  std::fclose(file);
  std::remove(series.c_str());
  EXPECT_NE(text.find("\"schema_version\":4"), std::string::npos)
      << text.substr(0, 200);
  EXPECT_NE(text.find("\"kind\":\"telemetry\""), std::string::npos);
  EXPECT_NE(text.find("\"rates\":{"), std::string::npos);

  file = std::fopen(prom.c_str(), "r");
  ASSERT_NE(file, nullptr) << prom;
  text.clear();
  while ((got = std::fread(buf, 1, sizeof(buf), file)) > 0) {
    text.append(buf, got);
  }
  std::fclose(file);
  std::remove(prom.c_str());
  EXPECT_NE(text.find("cpq_telemetry_samples_total"), std::string::npos)
      << text.substr(0, 200);
  EXPECT_NE(text.find("cpq_counter_total{"), std::string::npos);
}

// With sampling on, --trace-out gains ph:"C" Perfetto counter tracks fed
// from the retained telemetry ring.
TEST(BenchCli, TelemetrySamplingAddsCounterTracksToChromeTrace) {
  const std::string path =
      ::testing::TempDir() + "cpq_cli_counter_trace_test.json";
  std::remove(path.c_str());
  std::string out;
  ASSERT_EQ(run_cli("--mode=throughput --queues=mq --threads=2 --ms=80 "
                    "--reps=1 --prefill=500 --telemetry-hz=500 "
                    "--trace-out=" +
                        path,
                    out),
            0);
  std::FILE* file = std::fopen(path.c_str(), "r");
  ASSERT_NE(file, nullptr) << path;
  std::string text;
  char buf[4096];
  std::size_t got;
  while ((got = std::fread(buf, 1, sizeof(buf), file)) > 0) {
    text.append(buf, got);
  }
  std::fclose(file);
  std::remove(path.c_str());
  // In throughput mode the service gauges are absent, so their tracks
  // stay empty; the contention deltas come from the MetricsRegistry and
  // are always present once the plane has records.
  EXPECT_NE(text.find("\"ph\":\"C\""), std::string::npos)
      << text.substr(0, 200);
  EXPECT_NE(text.find("\"cas_retry_delta\""), std::string::npos);
  EXPECT_NE(text.find("\"lock_retry_delta\""), std::string::npos);
}

// The watchdog stall path, end to end against the real binary: the process
// must die with the watchdog exit code (86) and the stall dump must carry
// the metrics counters and the per-thread sampled-operation trace ring.
TEST(BenchCli, ForceStallDumpsMetricsAndTracesAndExits86) {
  std::string out;
  EXPECT_EQ(run_cli_merged("--force-stall", out, "CPQ_WATCHDOG_S=0.4"), 86);
  EXPECT_NE(out.find("[cpq-metrics] counters:"), std::string::npos) << out;
  EXPECT_NE(out.find("cas_retry=3"), std::string::npos) << out;
  EXPECT_NE(out.find("backoff_pause=7"), std::string::npos) << out;
  EXPECT_NE(out.find("sampled ops, newest first"), std::string::npos) << out;
  EXPECT_NE(out.find("insert"), std::string::npos) << out;
}

// With CPQ_STALL_DUMP_DIR set, each stalled process must persist its dump
// under a collision-free name (label + pid + counter): two back-to-back
// stalls into one directory leave two distinct files.
TEST(BenchCli, StallDumpFilesNeverCollide) {
  namespace fs = std::filesystem;
  const fs::path dir =
      fs::temp_directory_path() /
      ("cpq_stall_dumps_" + std::to_string(::getpid()));
  fs::remove_all(dir);
  ASSERT_TRUE(fs::create_directory(dir));
  for (int round = 0; round < 2; ++round) {
    std::string out;
    EXPECT_EQ(run_cli_merged("--force-stall", out,
                             "CPQ_WATCHDOG_S=0.4 CPQ_STALL_DUMP_DIR=" +
                                 dir.string()),
              86);
    EXPECT_NE(out.find("stall dump written to"), std::string::npos) << out;
  }
  std::vector<std::string> dumps;
  for (const auto& entry : fs::directory_iterator(dir)) {
    const std::string name = entry.path().filename().string();
    EXPECT_EQ(name.rfind("stall_force-stall_", 0), 0u) << name;
    EXPECT_GT(fs::file_size(entry.path()), 0u) << name;
    dumps.push_back(name);
  }
  EXPECT_EQ(dumps.size(), 2u);
  fs::remove_all(dir);
}

}  // namespace
}  // namespace cpq::bench
