// Torture tests: every roster queue under fault injection, audited by the
// CheckedQueue conservation adaptor, plus self-tests proving the validation
// layer itself detects what it claims to detect.
//
// This binary is the only target compiled with CPQ_FAULT_INJECTION=1 (see
// tests/CMakeLists.txt). It deliberately links cpq_queues + gtest only — not
// cpq_bench_framework, whose registry.cpp instantiates the same queue
// templates without injection, which would be an ODR violation. The harness
// templates it needs (throughput_rep for the watchdog death test) are
// header-only.
//
// Injection rate: CPQ_INJECT_PPM if set, else 1000 firings per million hook
// crossings — high enough that a 24k-operation run injects hundreds of
// delays into claim/publish/epoch windows, low enough to finish in seconds.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <optional>
#include <thread>
#include <vector>

#include "bench_framework/harness.hpp"
#include "platform/rng.hpp"
#include "platform/thread_util.hpp"
#include "queues/cbpq.hpp"
#include "queues/flat_combining.hpp"
#include "queues/globallock.hpp"
#include "queues/hunt_heap.hpp"
#include "queues/klsm/klsm.hpp"
#include "queues/klsm/standalone.hpp"
#include "queues/linden.hpp"
#include "queues/mound.hpp"
#include "queues/multiqueue.hpp"
#include "queues/multiqueue_eng.hpp"
#include "queues/shavit_lotan.hpp"
#include "queues/spraylist.hpp"
#include "queues/sundell_tsigas.hpp"
#include "seq/dary_heap.hpp"
#include "seq/pairing_heap.hpp"
#include "service/priority_service.hpp"
#include "validation/checked_queue.hpp"
#include "validation/fault_injection.hpp"
#include "validation/watchdog.hpp"

namespace cpq {
namespace {

using K = std::uint64_t;
using V = std::uint64_t;
using MqPairing = MultiQueue<K, V, seq::PairingHeap<K, V>>;
using MqDary = MultiQueue<K, V, seq::DaryHeap<K, V, 4>>;
using MqEng = EngMultiQueue<K, V>;

// Engineered-variant configs mirroring the registry's mq-buf / mq-sticky /
// mq-eng entries (registry.cpp can't be linked here — ODR, see header).
MqEngConfig eng_config(unsigned stickiness, unsigned buffer) {
  MqEngConfig cfg;
  cfg.stickiness = stickiness;
  cfg.ins_buffer = buffer;
  cfg.del_buffer = buffer;
  return cfg;
}

std::uint32_t torture_ppm() {
  if (const char* env = std::getenv("CPQ_INJECT_PPM")) {
    return static_cast<std::uint32_t>(std::strtoul(env, nullptr, 10));
  }
  return 1000;
}

template <typename Q>
std::unique_ptr<Q> make_queue(unsigned threads);

template <>
std::unique_ptr<GlobalLockQueue<K, V>> make_queue(unsigned threads) {
  return std::make_unique<GlobalLockQueue<K, V>>(threads);
}
template <>
std::unique_ptr<LindenQueue<K, V>> make_queue(unsigned threads) {
  return std::make_unique<LindenQueue<K, V>>(threads);
}
template <>
std::unique_ptr<HuntHeap<K, V>> make_queue(unsigned threads) {
  return std::make_unique<HuntHeap<K, V>>(threads, 1u << 18);
}
template <>
std::unique_ptr<SprayList<K, V>> make_queue(unsigned threads) {
  return std::make_unique<SprayList<K, V>>(threads);
}
template <>
std::unique_ptr<MultiQueue<K, V>> make_queue(unsigned threads) {
  return std::make_unique<MultiQueue<K, V>>(threads, 4);
}
template <>
std::unique_ptr<MqPairing> make_queue(unsigned threads) {
  return std::make_unique<MqPairing>(threads, 4);
}
template <>
std::unique_ptr<MqDary> make_queue(unsigned threads) {
  return std::make_unique<MqDary>(threads, 4);
}
template <>
std::unique_ptr<MqEng> make_queue(unsigned threads) {
  // The combined mq-eng configuration: buffers and sticky rounds together
  // cross every new seam (flush, refill, spill) in one typed run.
  return std::make_unique<MqEng>(threads, eng_config(8, 16));
}
template <>
std::unique_ptr<KLsmQueue<K, V>> make_queue(unsigned threads) {
  return std::make_unique<KLsmQueue<K, V>>(threads, 128);
}
template <>
std::unique_ptr<DlsmQueue<K, V>> make_queue(unsigned threads) {
  return std::make_unique<DlsmQueue<K, V>>(threads);
}
template <>
std::unique_ptr<SlsmQueue<K, V>> make_queue(unsigned threads) {
  return std::make_unique<SlsmQueue<K, V>>(threads, 128);
}
template <>
std::unique_ptr<ShavitLotanQueue<K, V>> make_queue(unsigned threads) {
  return std::make_unique<ShavitLotanQueue<K, V>>(threads);
}
template <>
std::unique_ptr<SundellTsigasQueue<K, V>> make_queue(unsigned threads) {
  return std::make_unique<SundellTsigasQueue<K, V>>(threads);
}
template <>
std::unique_ptr<Mound<K, V>> make_queue(unsigned threads) {
  return std::make_unique<Mound<K, V>>(threads);
}
template <>
std::unique_ptr<ChunkBasedQueue<K, V>> make_queue(unsigned threads) {
  return std::make_unique<ChunkBasedQueue<K, V>>(threads);
}
template <>
std::unique_ptr<FcPriorityQueue<K, V>> make_queue(unsigned threads) {
  return std::make_unique<FcPriorityQueue<K, V>>(threads);
}

using QueueTypes =
    ::testing::Types<GlobalLockQueue<K, V>, LindenQueue<K, V>, HuntHeap<K, V>,
                     SprayList<K, V>, MultiQueue<K, V>, MqPairing, MqDary,
                     MqEng, KLsmQueue<K, V>, DlsmQueue<K, V>, SlsmQueue<K, V>,
                     ShavitLotanQueue<K, V>, SundellTsigasQueue<K, V>,
                     Mound<K, V>, ChunkBasedQueue<K, V>,
                     FcPriorityQueue<K, V>>;

constexpr V value_of(unsigned tid, std::uint64_t i) {
  return (static_cast<V>(tid + 1) << 32) | i;
}

template <typename Q>
class TortureTest : public ::testing::Test {
 protected:
  void SetUp() override {
    validation::fault_injection_configure(torture_ppm(), 0x7041);
  }
  void TearDown() override { validation::fault_injection_configure(0, 42); }
};

TYPED_TEST_SUITE(TortureTest, QueueTypes);

// Contended 60/40 mix over a narrow key range, with every claim/publish/epoch
// seam stretched by injection. The checked adaptor audits exactly-once
// delivery; any lost, duplicated, or fabricated item fails the test with the
// full reconciliation report.
TYPED_TEST(TortureTest, ContendedMixedWorkloadConservesItems) {
  constexpr unsigned kThreads = 4;
  constexpr std::uint64_t kOpsPerThread = 6000;
  validation::CheckedQueue<TypeParam> queue(kThreads,
                                            make_queue<TypeParam>(kThreads));

  run_team(kThreads, [&](unsigned tid) {
    auto handle = queue.get_handle(tid);
    Xoroshiro128 rng(thread_seed(0x7041, tid));
    std::uint64_t inserted = 0;
    for (std::uint64_t op = 0; op < kOpsPerThread; ++op) {
      if (rng.next_below(100) < 60) {
        handle.insert(rng.next_below(1u << 10), value_of(tid, inserted++));
      } else {
        K k;
        V v;
        handle.delete_min(k, v);
      }
    }
  });

  const validation::ReconcileReport report = queue.reconcile();
  EXPECT_TRUE(report.ok()) << report.to_string();
  EXPECT_GT(report.inserted, 0u);
}

// Split roles maximize the insert-vs-delete races (publication vs claim):
// two producers flood, two consumers drain concurrently.
TYPED_TEST(TortureTest, SplitProducersConsumersConserveItems) {
  constexpr unsigned kThreads = 4;
  constexpr std::uint64_t kPerProducer = 8000;
  validation::CheckedQueue<TypeParam> queue(kThreads,
                                            make_queue<TypeParam>(kThreads));

  std::atomic<std::uint64_t> consumed{0};
  run_team(kThreads, [&](unsigned tid) {
    auto handle = queue.get_handle(tid);
    if (tid < 2) {
      Xoroshiro128 rng(thread_seed(0x7042, tid));
      for (std::uint64_t i = 0; i < kPerProducer; ++i) {
        handle.insert(rng.next_below(1u << 12), value_of(tid, i));
      }
    } else {
      unsigned misses = 0;
      while (consumed.load(std::memory_order_relaxed) < 2 * kPerProducer &&
             misses < 5000) {
        K k;
        V v;
        if (handle.delete_min(k, v)) {
          consumed.fetch_add(1, std::memory_order_relaxed);
          misses = 0;
        } else {
          ++misses;
        }
      }
    }
  });

  const validation::ReconcileReport report = queue.reconcile();
  EXPECT_TRUE(report.ok()) << report.to_string();
  EXPECT_EQ(report.inserted, 2 * kPerProducer);
}

// ---- engineered MultiQueue: every variant and buffer seam ----------------

// The typed suite above covers the combined mq-eng configuration; these
// cover the single-refinement variants (registry's mq-buf and mq-sticky)
// plus the conservation edges specific to thread-local buffering: items
// parked in an unflushed insertion buffer, a partially-served deletion
// batch at handle teardown, and the new flush/refill/spill seams stretched
// by injection.
class EngMqTortureTest : public ::testing::Test {
 protected:
  void SetUp() override {
    validation::fault_injection_configure(torture_ppm(), 0x7045);
  }
  void TearDown() override { validation::fault_injection_configure(0, 42); }

  void contended_mix(const MqEngConfig& cfg, std::uint64_t seed) {
    constexpr unsigned kThreads = 4;
    constexpr std::uint64_t kOpsPerThread = 6000;
    validation::CheckedQueue<MqEng> queue(
        kThreads, std::make_unique<MqEng>(kThreads, cfg));
    run_team(kThreads, [&](unsigned tid) {
      auto handle = queue.get_handle(tid);
      Xoroshiro128 rng(thread_seed(seed, tid));
      std::uint64_t inserted = 0;
      for (std::uint64_t op = 0; op < kOpsPerThread; ++op) {
        if (rng.next_below(100) < 60) {
          handle.insert(rng.next_below(1u << 10), value_of(tid, inserted++));
        } else {
          K k;
          V v;
          handle.delete_min(k, v);
        }
      }
    });
    const validation::ReconcileReport report = queue.reconcile();
    EXPECT_TRUE(report.ok()) << report.to_string();
    EXPECT_GT(report.inserted, 0u);
  }
};

TEST_F(EngMqTortureTest, BufferedOnlyConservesItems) {
  contended_mix(eng_config(/*stickiness=*/1, /*buffer=*/16), 0x7046);
}

TEST_F(EngMqTortureTest, StickyOnlyConservesItems) {
  contended_mix(eng_config(/*stickiness=*/8, /*buffer=*/0), 0x7047);
}

TEST_F(EngMqTortureTest, TinyBuffersMaximizeFlushSeamCrossings) {
  // Buffer capacity 1 flushes/refills on every op — the worst case for the
  // new lock seams — with a single local queue per thread for contention.
  MqEngConfig cfg = eng_config(/*stickiness=*/2, /*buffer=*/1);
  cfg.c = 1;
  contended_mix(cfg, 0x7048);
}

// Close/drain with NON-EMPTY thread buffers: fewer insertions than the
// buffer capacity means nothing was ever flushed to the shared queues —
// every item must reach reconcile()'s drain via the handle-teardown spill.
TEST_F(EngMqTortureTest, UnflushedInsertionBuffersSpillAtTeardown) {
  constexpr unsigned kThreads = 4;
  constexpr std::uint64_t kPerThread = 7;  // < ins_buffer = 16
  validation::CheckedQueue<MqEng> queue(
      kThreads, std::make_unique<MqEng>(kThreads, eng_config(8, 16)));
  run_team(kThreads, [&](unsigned tid) {
    auto handle = queue.get_handle(tid);
    for (std::uint64_t i = 0; i < kPerThread; ++i) {
      handle.insert(1000 * tid + i, value_of(tid, i));
    }
  });
  // Handles are gone: every never-flushed item must now sit in the shared
  // queues, placed there by the teardown spill.
  EXPECT_EQ(queue.inner().unsafe_size(), kThreads * kPerThread);
  const validation::ReconcileReport report = queue.reconcile();
  EXPECT_TRUE(report.ok()) << report.to_string();
  EXPECT_EQ(report.inserted, kThreads * kPerThread);
  EXPECT_EQ(report.drained, kThreads * kPerThread);
}

// A deletion batch abandoned half-served: the handle pops one item of a
// 16-item refill and is destroyed; the other 15 must be spilled back, not
// lost with the handle.
TEST_F(EngMqTortureTest, PartialDeletionBatchSpillsAtTeardown) {
  constexpr std::uint64_t kItems = 64;
  validation::CheckedQueue<MqEng> queue(
      1, std::make_unique<MqEng>(1, eng_config(8, 16)));
  {
    auto handle = queue.get_handle(0);
    for (std::uint64_t i = 0; i < kItems; ++i) {
      handle.insert(i, value_of(0, i));
    }
    K k;
    V v;
    ASSERT_TRUE(handle.delete_min(k, v));  // refills a batch, serves one
  }
  const validation::ReconcileReport report = queue.reconcile();
  EXPECT_TRUE(report.ok()) << report.to_string();
  EXPECT_EQ(report.inserted, kItems);
  EXPECT_EQ(report.deleted, 1u);
  EXPECT_EQ(report.drained, kItems - 1);
}

// The engineered seams themselves (buffer flush, batch refill, teardown
// spill) under targeted high-rate delay injection — the site filter focuses
// every firing on the mq_eng.* hooks; the unfiltered spinlock delays are
// already covered by the typed TortureTest runs above.
TEST_F(EngMqTortureTest, InjectedLockAndBufferSeamsStayConservative) {
  validation::fault_injection_configure(/*ppm=*/50'000, /*seed=*/0x7049,
                                        validation::FaultAction::kDelay,
                                        "mq_eng");
  const std::uint64_t before = validation::fault_injections_fired();
  contended_mix(eng_config(/*stickiness=*/4, /*buffer=*/4), 0x704A);
  EXPECT_GT(validation::fault_injections_fired(), before)
      << "mq_eng.* injection seams compiled in but never crossed";
}

// ---- k-LSM merge path: drain-then-merge kernel and pooled blocks ---------

// The typed suite covers the k-LSM under uniform injection; this fixture
// focuses every firing on the merge path's own seams — block.claim /
// block.drain (the claim-move transfer the new kernel path drives),
// slsm.publish / dlsm.publish (array replacement while merges run), and
// arena.alloc (the pooled block storage) — at a 5% rate, the same targeted
// pattern EngMqTortureTest uses for the buffer seams.
class KLsmTortureTest : public ::testing::Test {
 protected:
  void TearDown() override { validation::fault_injection_configure(0, 42); }

  template <typename Q>
  void contended_mix(std::uint64_t seed, std::uint64_t relaxation) {
    constexpr unsigned kThreads = 4;
    constexpr std::uint64_t kOpsPerThread = 6000;
    validation::CheckedQueue<Q> queue(
        kThreads, std::make_unique<Q>(kThreads, relaxation));
    run_team(kThreads, [&](unsigned tid) {
      auto handle = queue.get_handle(tid);
      Xoroshiro128 rng(thread_seed(seed, tid));
      std::uint64_t inserted = 0;
      for (std::uint64_t op = 0; op < kOpsPerThread; ++op) {
        if (rng.next_below(100) < 60) {
          handle.insert(rng.next_below(1u << 10), value_of(tid, inserted++));
        } else {
          K k;
          V v;
          handle.delete_min(k, v);
        }
      }
    });
    const validation::ReconcileReport report = queue.reconcile();
    EXPECT_TRUE(report.ok()) << report.to_string();
    EXPECT_GT(report.inserted, 0u);
  }
};

TEST_F(KLsmTortureTest, InjectedClaimAndDrainSeamsStayConservative) {
  validation::fault_injection_configure(/*ppm=*/50'000, /*seed=*/0x7050,
                                        validation::FaultAction::kDelay,
                                        "block.");
  const std::uint64_t before = validation::fault_injections_fired();
  // Small k maximizes merge-cascade crossings per op.
  contended_mix<KLsmQueue<K, V>>(0x7051, /*relaxation=*/16);
  EXPECT_GT(validation::fault_injections_fired(), before)
      << "block.claim/block.drain seams compiled in but never crossed";
}

TEST_F(KLsmTortureTest, InjectedPublishSeamsStayConservative) {
  validation::fault_injection_configure(/*ppm=*/50'000, /*seed=*/0x7052,
                                        validation::FaultAction::kDelay,
                                        "lsm.publish");  // slsm + dlsm
  const std::uint64_t before = validation::fault_injections_fired();
  contended_mix<KLsmQueue<K, V>>(0x7053, /*relaxation=*/64);
  EXPECT_GT(validation::fault_injections_fired(), before)
      << "slsm.publish/dlsm.publish seams compiled in but never crossed";
}

TEST_F(KLsmTortureTest, InjectedArenaSeamStaysConservative) {
  validation::fault_injection_configure(/*ppm=*/50'000, /*seed=*/0x7054,
                                        validation::FaultAction::kDelay,
                                        "arena.");
  const std::uint64_t before = validation::fault_injections_fired();
  contended_mix<KLsmQueue<K, V>>(0x7055, /*relaxation=*/128);
  EXPECT_GT(validation::fault_injections_fired(), before)
      << "arena.alloc seam compiled in but never crossed";
}

TEST_F(KLsmTortureTest, StandaloneComponentsUnderMergeSeamInjection) {
  validation::fault_injection_configure(/*ppm=*/50'000, /*seed=*/0x7056,
                                        validation::FaultAction::kDelay,
                                        "block.");
  contended_mix<SlsmQueue<K, V>>(0x7057, /*relaxation=*/16);
}

// ---- flat-combining queue: combiner handoff seams ------------------------

// The typed suite runs the fc queue under uniform injection; this focuses
// on the publication-record handshake (fc.publish between payload write and
// the pending store, fc.combine stretching the combining session).
class FcTortureTest : public ::testing::Test {
 protected:
  void TearDown() override { validation::fault_injection_configure(0, 42); }
};

TEST_F(FcTortureTest, CombinerHandoffSeamsStayConservative) {
  validation::fault_injection_configure(/*ppm=*/50'000, /*seed=*/0x7058,
                                        validation::FaultAction::kDelay,
                                        "fc.");
  const std::uint64_t before = validation::fault_injections_fired();
  constexpr unsigned kThreads = 4;
  constexpr std::uint64_t kOpsPerThread = 6000;
  validation::CheckedQueue<FcPriorityQueue<K, V>> queue(
      kThreads, std::make_unique<FcPriorityQueue<K, V>>(kThreads));
  run_team(kThreads, [&](unsigned tid) {
    auto handle = queue.get_handle(tid);
    Xoroshiro128 rng(thread_seed(0x7059, tid));
    std::uint64_t inserted = 0;
    for (std::uint64_t op = 0; op < kOpsPerThread; ++op) {
      if (rng.next_below(100) < 60) {
        handle.insert(rng.next_below(1u << 10), value_of(tid, inserted++));
      } else {
        K k;
        V v;
        handle.delete_min(k, v);
      }
    }
  });
  const validation::ReconcileReport report = queue.reconcile();
  EXPECT_TRUE(report.ok()) << report.to_string();
  EXPECT_GT(validation::fault_injections_fired(), before)
      << "fc.publish/fc.combine seams compiled in but never crossed";
}

// ---- the PriorityService layer over every roster queue -------------------

// The dispatch engine (sharding, insertion/deletion buffers, admission
// control) must preserve exactly-once delivery on top of *any* shard queue,
// with every queue-internal seam stretched by injection. The CheckedQueue
// audit wraps the whole service, so a task lost in a buffer, dropped in a
// flush, or double-delivered by a refill fails with the full report.
template <typename Q>
std::unique_ptr<service::PriorityService<Q>> make_service(
    unsigned threads, const service::ServiceConfig& cfg) {
  return std::make_unique<service::PriorityService<Q>>(
      threads, cfg, [&](unsigned) { return make_queue<Q>(threads); });
}

template <typename Q>
class ServiceTortureTest : public TortureTest<Q> {};

TYPED_TEST_SUITE(ServiceTortureTest, QueueTypes);

TYPED_TEST(ServiceTortureTest, DispatchConservesTasksUnderInjection) {
  constexpr unsigned kThreads = 4;
  constexpr std::uint64_t kOpsPerThread = 4000;
  service::ServiceConfig scfg;
  scfg.shards = 2;
  scfg.insert_batch = 4;
  scfg.delete_batch = 4;
  using Service = service::PriorityService<TypeParam>;
  validation::CheckedQueue<Service> queue(
      kThreads, make_service<TypeParam>(kThreads, scfg));

  run_team(kThreads, [&](unsigned tid) {
    auto handle = queue.get_handle(tid);
    Xoroshiro128 rng(thread_seed(0x7043, tid));
    std::uint64_t inserted = 0;
    for (std::uint64_t op = 0; op < kOpsPerThread; ++op) {
      if (rng.next_below(100) < 60) {
        handle.insert(rng.next_below(1u << 10), value_of(tid, inserted++));
      } else {
        K k;
        V v;
        handle.delete_min(k, v);
      }
    }
  });

  const validation::ReconcileReport report = queue.reconcile();
  EXPECT_TRUE(report.ok()) << report.to_string();
  EXPECT_GT(report.inserted, 0u);
}

// Shutdown under backpressure: a small in-flight bound keeps producers
// blocked (the kBlock policy), consumers stop while work is still queued,
// and the reconcile drain must still account for every accepted task.
TYPED_TEST(ServiceTortureTest, BackpressureShutdownConservesTasks) {
  constexpr unsigned kThreads = 4;
  constexpr std::uint64_t kPerProducer = 4000;
  service::ServiceConfig scfg;
  scfg.shards = 2;
  scfg.insert_batch = 4;
  scfg.delete_batch = 4;
  scfg.max_in_flight = 64;
  scfg.policy = service::AdmissionPolicy::kBlock;
  using Service = service::PriorityService<TypeParam>;
  validation::CheckedQueue<Service> queue(
      kThreads, make_service<TypeParam>(kThreads, scfg));

  std::atomic<unsigned> producers_done{0};
  run_team(kThreads, [&](unsigned tid) {
    auto handle = queue.get_handle(tid);
    if (tid < 2) {
      Xoroshiro128 rng(thread_seed(0x7044, tid));
      for (std::uint64_t i = 0; i < kPerProducer; ++i) {
        handle.insert(rng.next_below(1u << 12), value_of(tid, i));
      }
      producers_done.fetch_add(1, std::memory_order_release);
    } else {
      K k;
      V v;
      unsigned misses = 0;
      while (misses < 64) {
        if (handle.delete_min(k, v)) {
          misses = 0;
        } else if (producers_done.load(std::memory_order_acquire) == 2) {
          ++misses;
        }
      }
    }
  });

  const validation::ReconcileReport report = queue.reconcile();
  EXPECT_TRUE(report.ok()) << report.to_string();
  EXPECT_EQ(report.inserted, 2 * kPerProducer);
}

// ---- the validation layer must catch a queue that is actually broken -----

// Wraps GlobalLockQueue and silently swallows the Nth insert: the classic
// "lost item" bug (e.g. a publish race dropping a block).
class DroppingQueue {
 public:
  using key_type = K;
  using value_type = V;
  using Inner = GlobalLockQueue<K, V>;

  DroppingQueue(unsigned threads, std::uint64_t drop_index)
      : inner_(threads), drop_index_(drop_index) {}

  class Handle {
   public:
    void insert(K key, V value) {
      if (owner_->next_insert_.fetch_add(1, std::memory_order_relaxed) ==
          owner_->drop_index_) {
        return;  // the bug: item vanishes without a trace
      }
      inner_.insert(key, value);
    }
    bool delete_min(K& key_out, V& value_out) {
      return inner_.delete_min(key_out, value_out);
    }

   private:
    friend class DroppingQueue;
    Handle(Inner::Handle inner, DroppingQueue* owner)
        : inner_(std::move(inner)), owner_(owner) {}
    Inner::Handle inner_;
    DroppingQueue* owner_;
  };

  Handle get_handle(unsigned tid) {
    return Handle(inner_.get_handle(tid), this);
  }

 private:
  Inner inner_;
  const std::uint64_t drop_index_;
  std::atomic<std::uint64_t> next_insert_{0};
};

TEST(CheckedQueueDetectsBugs, LostInsertIsReported) {
  constexpr unsigned kThreads = 2;
  validation::CheckedQueue<DroppingQueue> queue(
      kThreads, std::make_unique<DroppingQueue>(kThreads, /*drop_index=*/137));

  run_team(kThreads, [&](unsigned tid) {
    auto handle = queue.get_handle(tid);
    Xoroshiro128 rng(tid + 11);
    for (std::uint64_t i = 0; i < 400; ++i) {
      handle.insert(rng.next_below(1u << 10), value_of(tid, i));
      if (i % 3 == 0) {
        K k;
        V v;
        handle.delete_min(k, v);
      }
    }
  });

  const validation::ReconcileReport report = queue.reconcile();
  EXPECT_FALSE(report.ok());
  EXPECT_EQ(report.lost, 1u) << report.to_string();
  EXPECT_EQ(report.duplicated, 0u) << report.to_string();
  EXPECT_EQ(report.fabricated, 0u) << report.to_string();
}

// Replays the first delivered item once more after the queue runs empty: a
// double-delivery bug (e.g. a claim flag lost on a merge path).
class DuplicatingQueue {
 public:
  using key_type = K;
  using value_type = V;
  using Inner = GlobalLockQueue<K, V>;

  explicit DuplicatingQueue(unsigned threads) : inner_(threads) {}

  class Handle {
   public:
    void insert(K key, V value) { inner_.insert(key, value); }
    bool delete_min(K& key_out, V& value_out) {
      if (inner_.delete_min(key_out, value_out)) {
        if (!owner_->stash_) owner_->stash_ = {key_out, value_out};
        return true;
      }
      if (owner_->stash_ && !owner_->replayed_) {
        owner_->replayed_ = true;  // the bug: one item delivered twice
        key_out = owner_->stash_->first;
        value_out = owner_->stash_->second;
        return true;
      }
      return false;
    }

   private:
    friend class DuplicatingQueue;
    Handle(Inner::Handle inner, DuplicatingQueue* owner)
        : inner_(std::move(inner)), owner_(owner) {}
    Inner::Handle inner_;
    DuplicatingQueue* owner_;
  };

  Handle get_handle(unsigned tid) {
    return Handle(inner_.get_handle(tid), this);
  }

 private:
  Inner inner_;
  std::optional<std::pair<K, V>> stash_;  // single-threaded test only
  bool replayed_ = false;
};

TEST(CheckedQueueDetectsBugs, DuplicateDeliveryIsReported) {
  validation::CheckedQueue<DuplicatingQueue> queue(
      1, std::make_unique<DuplicatingQueue>(1));
  {
    auto handle = queue.get_handle(0);
    for (std::uint64_t i = 0; i < 100; ++i) {
      handle.insert(i, value_of(0, i));
    }
  }
  const validation::ReconcileReport report = queue.reconcile();
  EXPECT_FALSE(report.ok());
  EXPECT_EQ(report.duplicated, 1u) << report.to_string();
  EXPECT_EQ(report.lost, 0u) << report.to_string();
}

// Invents an item that was never inserted (e.g. reading a reclaimed node).
class FabricatingQueue {
 public:
  using key_type = K;
  using value_type = V;
  using Inner = GlobalLockQueue<K, V>;

  explicit FabricatingQueue(unsigned threads) : inner_(threads) {}

  class Handle {
   public:
    void insert(K key, V value) { inner_.insert(key, value); }
    bool delete_min(K& key_out, V& value_out) {
      if (inner_.delete_min(key_out, value_out)) return true;
      if (!owner_->fabricated_) {
        owner_->fabricated_ = true;  // the bug: item from nowhere
        key_out = 42;
        value_out = 0xF00DF00DULL;
        return true;
      }
      return false;
    }

   private:
    friend class FabricatingQueue;
    Handle(Inner::Handle inner, FabricatingQueue* owner)
        : inner_(std::move(inner)), owner_(owner) {}
    Inner::Handle inner_;
    FabricatingQueue* owner_;
  };

  Handle get_handle(unsigned tid) {
    return Handle(inner_.get_handle(tid), this);
  }

 private:
  Inner inner_;
  bool fabricated_ = false;  // single-threaded test only
};

TEST(CheckedQueueDetectsBugs, FabricatedItemIsReported) {
  validation::CheckedQueue<FabricatingQueue> queue(
      1, std::make_unique<FabricatingQueue>(1));
  {
    auto handle = queue.get_handle(0);
    for (std::uint64_t i = 0; i < 50; ++i) {
      handle.insert(i, value_of(0, i));
    }
  }
  const validation::ReconcileReport report = queue.reconcile();
  EXPECT_FALSE(report.ok());
  EXPECT_EQ(report.fabricated, 1u) << report.to_string();
  EXPECT_EQ(report.lost, 0u) << report.to_string();
  EXPECT_EQ(report.duplicated, 0u) << report.to_string();
}

// ---- the injection hooks must actually fire ------------------------------

TEST(FaultInjectionTest, HooksFireUnderLoad) {
  validation::fault_injection_configure(/*ppm=*/200'000, /*seed=*/99);
  const std::uint64_t before = validation::fault_injections_fired();
  {
    auto queue = make_queue<KLsmQueue<K, V>>(2);
    run_team(2, [&](unsigned tid) {
      auto handle = queue->get_handle(tid);
      Xoroshiro128 rng(tid + 1);
      for (std::uint64_t i = 0; i < 500; ++i) {
        handle.insert(rng.next_below(1u << 8), value_of(tid, i));
        K k;
        V v;
        handle.delete_min(k, v);
      }
    });
  }
  validation::fault_injection_configure(0, 42);
  EXPECT_GT(validation::fault_injections_fired(), before)
      << "CPQ_INJECT hooks compiled in but never fired";
}

// ---- watchdog behaviour ---------------------------------------------------

TEST(WatchdogTest, NoAbortWhileProgressing) {
  std::vector<validation::WorkerProgress> progress(1);
  validation::Watchdog watchdog("progressing", progress.data(), 1,
                                /*deadline_s=*/0.2);
  // Tick well inside the deadline for a few deadline-lengths; if the
  // watchdog misfires it kills the whole test binary, which is the failure.
  for (int i = 1; i <= 10; ++i) {
    progress[0].tick(static_cast<std::uint64_t>(i),
                     validation::LastOp::kInsert);
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  watchdog.stop();
  SUCCEED();
}

// A queue whose delete_min eventually spins forever: the livelock the
// watchdog exists for. Workers stop ticking, the heartbeat sum freezes, and
// throughput_rep's supervisor must dump diagnostics and _Exit(86).
class StallingQueue {
 public:
  using key_type = K;
  using value_type = V;

  explicit StallingQueue(unsigned) {}

  class Handle {
   public:
    void insert(K, V) {}
    bool delete_min(K&, V&) {
      if (++calls_ > 100) {
        for (;;) std::this_thread::yield();  // livelock
      }
      return false;
    }

   private:
    std::uint64_t calls_ = 0;
  };

  Handle get_handle(unsigned) { return Handle(); }
};

TEST(WatchdogDeathTest, StallingQueueTriggersAbortWithDiagnostics) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  bench::BenchConfig cfg;
  cfg.threads = 2;
  cfg.duration_s = 30.0;  // far beyond the watchdog deadline
  cfg.watchdog_s = 0.25;
  cfg.prefill = 0;
  cfg.label = "stalling-queue";
  EXPECT_EXIT(
      {
        StallingQueue queue(cfg.threads);
        bench::throughput_rep(queue, cfg, /*seed=*/7);
      },
      ::testing::ExitedWithCode(validation::kWatchdogExitCode),
      "cpq-watchdog.*stalling-queue");
}

}  // namespace
}  // namespace cpq
