// Unified monotonic clock: one nanosecond timeline for every subsystem.
//
// Before this header the repo had two disjoint time domains:
//
//   * fast_timestamp() (platform/timing.hpp) — raw RDTSCP ticks, used by the
//     op-trace rings, the quality logs, and the latency histograms, each
//     calibrated independently (per repetition, per export) against a
//     wall-clock Stopwatch;
//   * steady_now_us() (service/resilience.hpp) — steady_clock microseconds,
//     used by deadlines, circuit breakers, and the chaos campaign.
//
// Two domains with per-consumer calibrations means artifacts cannot be
// aligned: a Chrome trace op event and a service breaker trip had no common
// axis. This header provides the single mapping both sides share:
//
//   * monotonic_ns() / monotonic_us() — steady_clock since its epoch. The
//     canonical timeline; every exported timestamp lands here.
//   * TscClock — a process-wide, once-calibrated affine map from
//     fast_timestamp() ticks into the monotonic_ns() timeline. The Chrome
//     trace exporter, the telemetry sampler, and the service bench all use
//     this one calibration, so their timestamps interleave correctly.
//
// Calibration is lazy (first use) and costs one ~20 ms spin; callers that
// must not pay it on a hot path warm it up explicitly (tsc_clock()) at
// setup time. Extrapolation error is bounded by the calibration's relative
// error (< ~0.1% on an invariant TSC): aligning events minutes apart is
// accurate to well under a second, and within one run to microseconds.
#pragma once

#include <chrono>
#include <cstdint>

#include "platform/timing.hpp"

namespace cpq {

// Steady-clock nanoseconds since the (arbitrary, per-boot) steady epoch.
// The canonical monotonic timeline; immune to wall-clock adjustment.
inline std::uint64_t monotonic_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

inline std::uint64_t monotonic_us() noexcept { return monotonic_ns() / 1000; }

// Affine tick -> monotonic_ns mapping, calibrated once per process.
class TscClock {
 public:
  // Process-wide instance; first call performs the calibration spin.
  static const TscClock& instance() {
    static const TscClock clock;
    return clock;
  }

  double ns_per_tick() const noexcept { return ns_per_tick_; }
  std::uint64_t base_tick() const noexcept { return base_tick_; }
  std::uint64_t base_ns() const noexcept { return base_ns_; }

  // Map a fast_timestamp() tick into the monotonic_ns() timeline. Ticks
  // recorded before the calibration anchor map correctly too (signed
  // extrapolation backwards), clamped at 0 for pathological inputs.
  std::uint64_t to_ns(std::uint64_t tick) const noexcept {
    const double delta =
        static_cast<double>(static_cast<std::int64_t>(tick - base_tick_)) *
        ns_per_tick_;
    const double ns = static_cast<double>(base_ns_) + delta;
    return ns <= 0.0 ? 0 : static_cast<std::uint64_t>(ns);
  }

  TscClock(const TscClock&) = delete;
  TscClock& operator=(const TscClock&) = delete;

 private:
  TscClock() {
    // Spin ~20 ms measuring ticks against the steady clock; anchor the
    // affine map at the *end* pair so to_ns() interpolates (not
    // extrapolates) for timestamps taken right after construction. On
    // non-x86 fast_timestamp() already returns steady-clock ns and the
    // measured ratio comes out ~1.
    const std::uint64_t ns0 = monotonic_ns();
    const std::uint64_t tick0 = fast_timestamp();
    constexpr std::uint64_t kWindowNs = 20'000'000;
    std::uint64_t ns1 = ns0;
    while (ns1 - ns0 < kWindowNs) ns1 = monotonic_ns();
    const std::uint64_t tick1 = fast_timestamp();
    base_tick_ = tick1;
    base_ns_ = ns1;
    ns_per_tick_ = tick1 > tick0 ? static_cast<double>(ns1 - ns0) /
                                       static_cast<double>(tick1 - tick0)
                                 : 1.0;
    if (ns_per_tick_ <= 0.0) ns_per_tick_ = 1.0;
  }

  std::uint64_t base_tick_ = 0;
  std::uint64_t base_ns_ = 0;
  double ns_per_tick_ = 1.0;
};

// Shorthand; call once at setup time to pay the calibration spin outside
// any measured region.
inline const TscClock& tsc_clock() { return TscClock::instance(); }

}  // namespace cpq
