// Spinlocks used by the lock-based queues (GlobalLock, MultiQueue, Hunt heap).
//
// A test-and-test-and-set lock with exponential backoff is what the original
// klsm benchmark used to protect std::priority_queue instances; we provide
// TAS and TTAS variants so the difference is benchmarkable (bench_components).
// Both satisfy the C++ Lockable requirements, so they work with
// std::lock_guard / std::unique_lock.
#pragma once

#include <atomic>
#include <thread>

#include "obs/metrics.hpp"
#include "platform/backoff.hpp"
#include "platform/cache.hpp"
#include "validation/fault_injection.hpp"

namespace cpq {

// Plain test-and-set lock. Simple but generates a cache-line invalidation on
// every failed attempt; kept as the baseline for the lock microbenchmark.
class TasSpinlock {
 public:
  void lock() noexcept {
    while (flag_.exchange(true, std::memory_order_acquire)) cpu_relax();
  }

  bool try_lock() noexcept {
    return !flag_.exchange(true, std::memory_order_acquire);
  }

  void unlock() noexcept { flag_.store(false, std::memory_order_release); }

 private:
  std::atomic<bool> flag_{false};
};

// Test-and-test-and-set with randomized exponential backoff: spins on a
// local read until the lock looks free, then attempts the exchange. This is
// the lock used throughout the library.
class Spinlock {
 public:
  void lock() noexcept {
    Backoff backoff(reinterpret_cast<std::uintptr_t>(this));
    unsigned rounds = 0;
    for (;;) {
      if (!flag_.exchange(true, std::memory_order_acquire)) {
        // Fault injection: stretch the critical section right after the
        // acquire, the window where a preempted lock holder stalls waiters.
        CPQ_INJECT("spinlock.acquired");
        return;
      }
      // Contended path only: the uncontended acquire above stays hook-free.
      CPQ_COUNT(kLockRetry);
      do {
        // After sustained spinning, yield so a preempted lock holder can
        // run (essential when benchmark threads outnumber cores).
        if (++rounds < 64) {
          backoff.pause();
        } else {
          std::this_thread::yield();
        }
      } while (flag_.load(std::memory_order_relaxed));
    }
  }

  bool try_lock() noexcept {
    return !flag_.load(std::memory_order_relaxed) &&
           !flag_.exchange(true, std::memory_order_acquire);
  }

  void unlock() noexcept {
    // Fault injection: delay the release so waiters observe long holds.
    CPQ_INJECT("spinlock.release");
    flag_.store(false, std::memory_order_release);
  }

 private:
  std::atomic<bool> flag_{false};
};

// A sequence lock for single-writer structures read by occasional foreign
// threads (the DLSM spy path). The writer is wait-free: it bumps the counter
// to odd before mutating and back to even after. Readers snapshot, copy, and
// validate that the counter is even and unchanged.
class SeqLock {
 public:
  // Writer side. Calls must be balanced and single-threaded.
  void write_begin() noexcept {
    seq_.store(seq_.load(std::memory_order_relaxed) + 1,
               std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_release);
  }

  void write_end() noexcept {
    std::atomic_thread_fence(std::memory_order_release);
    seq_.store(seq_.load(std::memory_order_relaxed) + 1,
               std::memory_order_relaxed);
  }

  // Reader side: read_begin() returns a token; after copying the protected
  // data, read_validate(token) says whether the copy is consistent.
  std::uint64_t read_begin() const noexcept {
    std::uint64_t s = seq_.load(std::memory_order_acquire);
    return s;
  }

  bool read_validate(std::uint64_t token) const noexcept {
    std::atomic_thread_fence(std::memory_order_acquire);
    return (token & 1) == 0 && seq_.load(std::memory_order_acquire) == token;
  }

 private:
  std::atomic<std::uint64_t> seq_{0};
};

}  // namespace cpq
