// Fast per-thread pseudo-random number generation.
//
// The benchmark harness draws one or two random numbers per queue operation
// (key generation, operation mix, MultiQueue/SLSM victim selection), so the
// generator must be a handful of instructions with no shared state.
// xoroshiro128++ (Blackman & Vigna) passes BigCrush and needs two 64-bit
// words of state; splitmix64 seeds it so that consecutive thread ids yield
// uncorrelated streams.
#pragma once

#include <cstdint>
#include <limits>

namespace cpq {

// SplitMix64: used only for seeding. Deterministic stream from any seed.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

// xoroshiro128++ main generator.
class Xoroshiro128 {
 public:
  using result_type = std::uint64_t;

  explicit constexpr Xoroshiro128(std::uint64_t seed = 0x853c49e6748fea9bULL) noexcept {
    SplitMix64 sm(seed);
    s0_ = sm.next();
    s1_ = sm.next();
    if (s0_ == 0 && s1_ == 0) s1_ = 1;  // all-zero state is a fixed point
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  constexpr result_type operator()() noexcept { return next(); }

  constexpr std::uint64_t next() noexcept {
    const std::uint64_t x = s0_;
    std::uint64_t y = s1_;
    const std::uint64_t result = rotl(x + y, 17) + x;
    y ^= x;
    s0_ = rotl(x, 49) ^ y ^ (y << 21);
    s1_ = rotl(y, 28);
    return result;
  }

  // Unbiased-enough bounded draw via 128-bit multiply (Lemire). The modulo
  // bias of the naive approach is irrelevant for benchmarking keys, but the
  // multiply is also faster than %, so there is no reason not to use it.
  constexpr std::uint64_t next_below(std::uint64_t bound) noexcept {
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(next()) * bound) >> 64);
  }

  // Uniform draw from the closed range [lo, hi].
  constexpr std::uint64_t next_in(std::uint64_t lo, std::uint64_t hi) noexcept {
    return lo + next_below(hi - lo + 1);
  }

  // Random double in [0, 1).
  constexpr double next_double() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t v, int k) noexcept {
    return (v << k) | (v >> (64 - k));
  }

  std::uint64_t s0_;
  std::uint64_t s1_;
};

// Deterministic per-thread seed derivation: every (base_seed, thread_id)
// pair gives an independent stream, and re-running a benchmark with the same
// base seed replays identical key sequences per thread.
inline constexpr std::uint64_t thread_seed(std::uint64_t base_seed,
                                           unsigned thread_id) noexcept {
  SplitMix64 sm(base_seed ^ (0x2545f4914f6cdd1dULL * (thread_id + 1)));
  sm.next();
  return sm.next();
}

}  // namespace cpq
