// Timing utilities: wall-clock timers for the throughput harness and a fast
// monotonic timestamp for the quality benchmark's operation logs.
//
// The quality benchmark timestamps every operation on every thread, so the
// timestamp must be a few nanoseconds; on x86-64 we use RDTSC (invariant TSC
// on all CPUs of the last decade, and the benchmark only needs a total order
// consistent with real time at microsecond granularity). Elsewhere we fall
// back to steady_clock.
#pragma once

#include <chrono>
#include <cstdint>

#if defined(__x86_64__)
#include <x86intrin.h>
#endif

namespace cpq {

// Fast monotonic timestamp in unspecified units. Only comparisons between
// timestamps from the same run are meaningful.
//
// On x86-64 this is RDTSCP (TSC ticks): unlike plain RDTSC, RDTSCP waits
// for all earlier instructions to retire before reading the counter, so a
// timestamp taken after a queue operation cannot be hoisted above it (the
// quality replay orders operations by these stamps; an unfenced read can
// reorder around the bracketed operation and corrupt that order). The
// serialization is one-sided — later instructions may still start early —
// which is the standard timestamp/lightweight-fence trade-off and is
// sufficient for a total order consistent with real time at microsecond
// granularity.
//
// Elsewhere the fallback is std::chrono::steady_clock, whose period is
// nanoseconds on every platform we target (libstdc++/libc++ define
// steady_clock::period as std::nano); the harnesses still calibrate ticks
// against a wall-clock Stopwatch per repetition, so only monotonicity is
// assumed, not the unit.
//
// To place one of these timestamps on the shared monotonic-ns timeline
// (aligning it with telemetry records, Chrome trace events, and service
// deadlines), use platform/clock.hpp's TscClock::to_ns — the process-wide
// calibration every exporter shares.
inline std::uint64_t fast_timestamp() noexcept {
#if defined(__x86_64__)
  unsigned aux;
  return __rdtscp(&aux);
#else
  return static_cast<std::uint64_t>(
      std::chrono::steady_clock::now().time_since_epoch().count());
#endif
}

// Wall-clock stopwatch for measuring benchmark intervals.
class Stopwatch {
 public:
  Stopwatch() : start_(clock::now()) {}

  void restart() { start_ = clock::now(); }

  double elapsed_seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  std::uint64_t elapsed_ns() const {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(clock::now() -
                                                             start_)
            .count());
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace cpq
