// Timing utilities: wall-clock timers for the throughput harness and a fast
// monotonic timestamp for the quality benchmark's operation logs.
//
// The quality benchmark timestamps every operation on every thread, so the
// timestamp must be a few nanoseconds; on x86-64 we use RDTSC (invariant TSC
// on all CPUs of the last decade, and the benchmark only needs a total order
// consistent with real time at microsecond granularity). Elsewhere we fall
// back to steady_clock.
#pragma once

#include <chrono>
#include <cstdint>

#if defined(__x86_64__)
#include <x86intrin.h>
#endif

namespace cpq {

// Fast monotonic timestamp in unspecified units (TSC ticks or nanoseconds).
// Only comparisons between timestamps from the same run are meaningful.
inline std::uint64_t fast_timestamp() noexcept {
#if defined(__x86_64__)
  return __rdtsc();
#else
  return static_cast<std::uint64_t>(
      std::chrono::steady_clock::now().time_since_epoch().count());
#endif
}

// Wall-clock stopwatch for measuring benchmark intervals.
class Stopwatch {
 public:
  Stopwatch() : start_(clock::now()) {}

  void restart() { start_ = clock::now(); }

  double elapsed_seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  std::uint64_t elapsed_ns() const {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(clock::now() -
                                                             start_)
            .count());
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace cpq
