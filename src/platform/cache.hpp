// Cache-line geometry and padding helpers.
//
// Every mutable shared word in this library is placed on its own cache line:
// false sharing between per-thread counters is the dominant scalability bug
// in concurrent priority queues (see e.g. the MultiQueue paper's discussion
// of lock placement), and it is cheap to rule out structurally.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace cpq {

// std::hardware_destructive_interference_size is 64 on every platform we
// target but is not constexpr-usable on all standard libraries; pin it.
inline constexpr std::size_t kCacheLineSize = 64;

// Wraps T so that it occupies (and is aligned to) a whole number of cache
// lines. Use for elements of arrays shared across threads.
template <typename T>
struct alignas(kCacheLineSize) CacheAligned {
  T value{};

  CacheAligned() = default;

  template <typename... Args>
  explicit CacheAligned(Args&&... args) : value(std::forward<Args>(args)...) {}

  T& operator*() noexcept { return value; }
  const T& operator*() const noexcept { return value; }
  T* operator->() noexcept { return &value; }
  const T* operator->() const noexcept { return &value; }
};

static_assert(alignof(CacheAligned<int>) == kCacheLineSize);
static_assert(sizeof(CacheAligned<int>) == kCacheLineSize);

// Explicit trailing padding for structs that must not share their final
// cache line with a neighbour. `Used` is the payload size.
template <std::size_t Used>
struct Pad {
  static constexpr std::size_t kRemainder = Used % kCacheLineSize;
  char pad[kRemainder == 0 ? kCacheLineSize : kCacheLineSize - kRemainder];
};

// Read-intent prefetch hint (high temporal locality). Pointer-chasing
// traversals issue this for the next node while comparing the current one,
// overlapping the dependent-load miss with useful work. A hint only —
// incorrect or null addresses are harmless.
inline void prefetch_read(const void* addr) noexcept {
#if defined(__GNUC__) || defined(__clang__)
  __builtin_prefetch(addr, /*rw=*/0, /*locality=*/3);
#else
  (void)addr;
#endif
}

}  // namespace cpq
