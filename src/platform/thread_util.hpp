// Thread coordination helpers for the benchmark harness and stress tests:
// a sense-reversing barrier, best-effort core pinning, and a tiny worker
// team abstraction used everywhere we need "P threads run f(tid)".
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <thread>
#include <vector>

#include "platform/backoff.hpp"
#include "platform/cache.hpp"

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace cpq {

// Sense-reversing centralized barrier. Adequate for benchmark start/stop
// synchronization (one or two crossings per measurement, not per operation).
class SpinBarrier {
 public:
  explicit SpinBarrier(unsigned parties) noexcept
      : parties_(parties), remaining_(parties) {}

  void arrive_and_wait() noexcept {
    const bool my_sense = !sense_.load(std::memory_order_relaxed);
    if (remaining_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      remaining_.store(parties_, std::memory_order_relaxed);
      sense_.store(my_sense, std::memory_order_release);
    } else {
      // Spin briefly, then yield: on an oversubscribed machine (more
      // benchmark threads than cores) pure spinning burns whole timeslices
      // while the last arriving thread waits to be scheduled.
      unsigned spins = 0;
      while (sense_.load(std::memory_order_acquire) != my_sense) {
        if (++spins < 1024) {
          cpu_relax();
        } else {
          std::this_thread::yield();
        }
      }
    }
  }

 private:
  const unsigned parties_;
  std::atomic<unsigned> remaining_;
  std::atomic<bool> sense_{false};
};

// Pin the calling thread to a core, round-robin over the cores the process
// is allowed to run on. Best effort: failure is ignored (the paper pins up
// to the physical core count and then lets hyperthreads share).
inline void pin_to_core(unsigned index) noexcept {
#if defined(__linux__)
  cpu_set_t allowed;
  CPU_ZERO(&allowed);
  if (sched_getaffinity(0, sizeof(allowed), &allowed) != 0) return;
  const int n_allowed = CPU_COUNT(&allowed);
  if (n_allowed <= 0) return;
  int target = static_cast<int>(index) % n_allowed;
  for (int cpu = 0; cpu < CPU_SETSIZE; ++cpu) {
    if (!CPU_ISSET(cpu, &allowed)) continue;
    if (target-- == 0) {
      cpu_set_t one;
      CPU_ZERO(&one);
      CPU_SET(cpu, &one);
      (void)pthread_setaffinity_np(pthread_self(), sizeof(one), &one);
      return;
    }
  }
#else
  (void)index;
#endif
}

// Run body(tid) on `threads` joined std::threads, optionally pinned.
// Exceptions escaping body terminate (benchmark code must not throw).
inline void run_team(unsigned threads,
                     const std::function<void(unsigned)>& body,
                     bool pin = true) {
  std::vector<std::thread> team;
  team.reserve(threads);
  for (unsigned tid = 0; tid < threads; ++tid) {
    team.emplace_back([tid, pin, &body] {
      if (pin) pin_to_core(tid);
      body(tid);
    });
  }
  for (auto& t : team) t.join();
}

}  // namespace cpq
