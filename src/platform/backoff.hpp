// Exponential backoff for CAS retry loops.
//
// Lock-free retry loops (SLSM publication, skiplist insert, MultiQueue lock
// acquisition) degrade badly under contention without backoff; truncated
// exponential backoff with a randomized spin count is the standard remedy.
#pragma once

#include <cstdint>

#include "obs/metrics.hpp"
#include "platform/rng.hpp"

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#endif

namespace cpq {

// One CPU "relax" hint: PAUSE on x86, YIELD on ARM, nop elsewhere.
inline void cpu_relax() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  _mm_pause();
#elif defined(__aarch64__)
  asm volatile("yield" ::: "memory");
#else
  asm volatile("" ::: "memory");
#endif
}

// Truncated randomized exponential backoff. Non-shared; one instance per
// retry loop activation.
class Backoff {
 public:
  explicit Backoff(std::uint64_t seed = 0xb0ff5eedULL,
                   std::uint32_t min_spins = 4,
                   std::uint32_t max_spins = 1024) noexcept
      : rng_(seed), limit_(min_spins), max_(max_spins) {}

  // Spin for a randomized count below the current limit, then double the
  // limit (truncated at max).
  void pause() noexcept {
    // Only ever reached from a contended retry loop, so the counter hook
    // cannot slow an uncontended fast path.
    CPQ_COUNT(kBackoffPause);
    const std::uint64_t spins = rng_.next_below(limit_) + 1;
    for (std::uint64_t i = 0; i < spins; ++i) cpu_relax();
    if (limit_ < max_) limit_ *= 2;
  }

  void reset(std::uint32_t min_spins = 4) noexcept { limit_ = min_spins; }

  std::uint32_t current_limit() const noexcept { return limit_; }

 private:
  Xoroshiro128 rng_;
  std::uint32_t limit_;
  std::uint32_t max_;
};

}  // namespace cpq
