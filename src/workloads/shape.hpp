// Workload shapes of the configurable benchmark (paper §2/§F).
//
//   * uniform     — every thread performs ~50% insertions and ~50%
//                   deletions, chosen randomly per operation (the paper's
//                   "operation distribution" parameter, default 0.5);
//   * split       — half the threads only insert, the other half only
//                   delete (stresses inter-thread locality);
//   * alternating — each thread strictly alternates insert/delete (an
//                   operation batch size of one);
//   * batch       — B insertions then B deletions, repeating (the paper's
//                   §F "operation batch size"; large B approaches the
//                   Larkin–Sen–Tarjan sorting benchmark);
//   * pcsplit     — a tunable producer/consumer split: the first
//                   ceil(producer_fraction * threads) threads only insert,
//                   the rest only delete. split is the 50/50 special case;
//                   skewed fractions model ingest-heavy or drain-heavy
//                   services and pair naturally with hotspot keys.
#pragma once

#include <cmath>
#include <cstdint>
#include <string>

#include "platform/rng.hpp"
#include "workloads/fatal.hpp"

namespace cpq::workloads {

enum class Workload : std::uint8_t {
  kUniform,
  kSplit,
  kAlternating,
  kBatch,
  kPcSplit,
};

inline std::string workload_name(Workload w) {
  switch (w) {
    case Workload::kUniform:
      return "uniform";
    case Workload::kSplit:
      return "split";
    case Workload::kAlternating:
      return "alternating";
    case Workload::kBatch:
      return "batch";
    case Workload::kPcSplit:
      return "pcsplit";
  }
  fatal_unknown_enum("Workload", static_cast<int>(w));
}

// Per-thread operation chooser.
class OpChooser {
 public:
  OpChooser(Workload workload, unsigned thread_id, unsigned total_threads,
            std::uint64_t base_seed, double insert_fraction = 0.5,
            std::uint64_t batch_size = 1, double producer_fraction = 0.5)
      : workload_(workload),
        rng_(thread_seed(base_seed ^ 0x0bc0de5ULL, thread_id)),
        insert_threshold_(static_cast<std::uint64_t>(
            insert_fraction * 0x1p64)),
        batch_size_(batch_size == 0 ? 1 : batch_size),
        // Split: the first half of the threads insert, the rest delete.
        // PcSplit generalizes to ceil(producer_fraction * total) producers
        // (at least one producer and, when the fraction is < 1, at least
        // one consumer).
        split_inserter_(
            workload == Workload::kPcSplit
                ? thread_id < producer_count(total_threads, producer_fraction)
                : thread_id < (total_threads + 1) / 2) {}

  static unsigned producer_count(unsigned total_threads,
                                 double producer_fraction) {
    auto producers = static_cast<unsigned>(
        std::ceil(producer_fraction * static_cast<double>(total_threads)));
    if (producers < 1) producers = 1;
    if (producers >= total_threads && producer_fraction < 1.0 &&
        total_threads > 1) {
      producers = total_threads - 1;
    }
    return producers;
  }

  // True => the next operation is an insert.
  bool next_is_insert() {
    switch (workload_) {
      case Workload::kUniform:
        return rng_.next() < insert_threshold_;
      case Workload::kSplit:
      case Workload::kPcSplit:
        return split_inserter_;
      case Workload::kAlternating:
        return (op_counter_++ & 1) == 0;
      case Workload::kBatch:
        return (op_counter_++ / batch_size_) % 2 == 0;
    }
    fatal_unknown_enum("Workload", static_cast<int>(workload_));
  }

 private:
  Workload workload_;
  Xoroshiro128 rng_;
  std::uint64_t insert_threshold_;
  std::uint64_t batch_size_;
  bool split_inserter_;
  std::uint64_t op_counter_ = 0;
};

}  // namespace cpq::workloads
