// Key generators for the configurable benchmark (paper §2/§F plus the
// adversarial extensions of arXiv:2305.10872).
//
// Key distributions:
//   * uniform  — keys uniformly at random from a 32-, 16-, or 8-bit range;
//   * ascending / descending — a uniformly chosen base key from a small
//     range, shifted up (down) by the thread's operation number, modelling
//     monotone workloads such as event times in a simulation;
//   * hold — the next key is the last *deleted* key plus a random increment
//     (the classic hold model of Jones 1986, the paper's §F "key dependency
//     switch"); used by the DES example and the extended benchmark.
//   * zipf — key popularity follows rank^-theta over the keyspace, sampled
//     by rejection inversion; rank 1 maps to key 0 so the popular mass
//     contends at the delete_min end.
//   * hotspot — hot_ops of draws land in the bottom hot_keys fraction of
//     the keyspace, the rest spread uniformly over the remainder.
//   * dijkstra — pop key k, push k + U[a, b]: the shortest-path /
//     discrete-event dependence structure where insertions trail the
//     current minimum by a bounded band.
//
// Each thread owns one generator instance seeded from (base seed,
// thread id), so runs are reproducible and streams are independent.
#pragma once

#include <cstdint>
#include <cstdio>
#include <optional>
#include <string>

#include "platform/rng.hpp"
#include "workloads/distributions.hpp"
#include "workloads/fatal.hpp"

namespace cpq::workloads {

enum class KeyDistribution : std::uint8_t {
  kUniform,
  kAscending,
  kDescending,
  kHold,
  kZipf,
  kHotspot,
  kDijkstra,
};

struct KeyConfig {
  KeyDistribution distribution = KeyDistribution::kUniform;
  // Width of the uniform range (32, 16 or 8 in the paper) or of the random
  // base component for ascending/descending/hold. For zipf/hotspot this is
  // the keyspace width and must stay below 64 so the span fits a uint64.
  unsigned bits = 32;

  // zipf
  double zipf_theta = 1.1;
  // hotspot
  double hot_ops = 0.9;   // fraction of operations hitting the hot range
  double hot_keys = 0.1;  // fraction of the keyspace that is hot
  // dijkstra: increment drawn uniformly from [dijkstra_min, dijkstra_max]
  std::uint64_t dijkstra_min = 1;
  std::uint64_t dijkstra_max = 100;

  static KeyConfig uniform(unsigned bits = 32) {
    return {KeyDistribution::kUniform, bits};
  }
  static KeyConfig ascending(unsigned base_bits = 10) {
    return {KeyDistribution::kAscending, base_bits};
  }
  static KeyConfig descending(unsigned base_bits = 10) {
    return {KeyDistribution::kDescending, base_bits};
  }
  static KeyConfig hold(unsigned base_bits = 10) {
    return {KeyDistribution::kHold, base_bits};
  }
  static KeyConfig zipf(double theta, unsigned bits = 32) {
    KeyConfig cfg{KeyDistribution::kZipf, bits};
    cfg.zipf_theta = theta;
    return cfg;
  }
  static KeyConfig hotspot(double hot_ops, double hot_keys,
                           unsigned bits = 32) {
    KeyConfig cfg{KeyDistribution::kHotspot, bits};
    cfg.hot_ops = hot_ops;
    cfg.hot_keys = hot_keys;
    return cfg;
  }
  static KeyConfig dijkstra(std::uint64_t min_inc = 1,
                            std::uint64_t max_inc = 100) {
    KeyConfig cfg{KeyDistribution::kDijkstra, 32};
    cfg.dijkstra_min = min_inc;
    cfg.dijkstra_max = max_inc;
    return cfg;
  }

  std::string name() const {
    char buf[96];
    switch (distribution) {
      case KeyDistribution::kUniform:
        return "uniform" + std::to_string(bits);
      case KeyDistribution::kAscending:
        return "ascending";
      case KeyDistribution::kDescending:
        return "descending";
      case KeyDistribution::kHold:
        return "hold";
      case KeyDistribution::kZipf:
        std::snprintf(buf, sizeof(buf), "zipf%g", zipf_theta);
        return buf;
      case KeyDistribution::kHotspot:
        std::snprintf(buf, sizeof(buf), "hotspot%g/%g", hot_ops, hot_keys);
        return buf;
      case KeyDistribution::kDijkstra:
        std::snprintf(buf, sizeof(buf), "dijkstra%llu-%llu",
                      static_cast<unsigned long long>(dijkstra_min),
                      static_cast<unsigned long long>(dijkstra_max));
        return buf;
    }
    fatal_unknown_enum("KeyDistribution", static_cast<int>(distribution));
  }
};

class KeyGenerator {
 public:
  // Descending keys start from this offset and move downward; large enough
  // that realistic run lengths never underflow.
  static constexpr std::uint64_t kDescendingStart = std::uint64_t{1} << 42;

  KeyGenerator(const KeyConfig& config, std::uint64_t base_seed,
               unsigned thread_id)
      : config_(config),
        rng_(thread_seed(base_seed, thread_id)),
        mask_(config.bits >= 64 ? ~std::uint64_t{0}
                                : (std::uint64_t{1} << config.bits) - 1) {
    switch (config.distribution) {
      case KeyDistribution::kZipf:
        // span = mask_+1 must not wrap: zipf/hotspot require bits <= 63,
        // which the spec parser enforces at the CLI boundary.
        zipf_.emplace(mask_ + 1, config.zipf_theta);
        break;
      case KeyDistribution::kHotspot:
        hotspot_.emplace(mask_ + 1, config.hot_ops, config.hot_keys);
        break;
      default:
        break;
    }
  }

  std::uint64_t next() {
    switch (config_.distribution) {
      case KeyDistribution::kUniform:
        return rng_.next() & mask_;
      case KeyDistribution::kAscending:
        return (rng_.next() & mask_) + op_counter_++;
      case KeyDistribution::kDescending: {
        const std::uint64_t shift = op_counter_++;
        const std::uint64_t down =
            shift < kDescendingStart ? kDescendingStart - shift : 0;
        return down + (rng_.next() & mask_);
      }
      case KeyDistribution::kHold:
        return last_deleted_ + (rng_.next() & mask_);
      case KeyDistribution::kZipf:
        return zipf_->next(rng_) - 1;  // rank 1 -> key 0: hot == minimum
      case KeyDistribution::kHotspot:
        return hotspot_->next(rng_);
      case KeyDistribution::kDijkstra:
        return last_deleted_ +
               rng_.next_in(config_.dijkstra_min, config_.dijkstra_max);
    }
    fatal_unknown_enum("KeyDistribution",
                       static_cast<int>(config_.distribution));
  }

  // Feedback for the hold/dijkstra models; harmless to call for other
  // distributions.
  void observe_deleted(std::uint64_t key) { last_deleted_ = key; }

  // Advance the per-thread operation counter without drawing from the RNG,
  // as if `ops` keys had already been generated. Lets tests exercise the
  // descending distribution's underflow clamp at kDescendingStart without
  // iterating 2^42 times.
  void skip(std::uint64_t ops) { op_counter_ += ops; }

  Xoroshiro128& rng() { return rng_; }

 private:
  KeyConfig config_;
  Xoroshiro128 rng_;
  std::uint64_t mask_;
  std::uint64_t op_counter_ = 0;
  std::uint64_t last_deleted_ = 0;
  std::optional<ZipfSampler> zipf_;
  std::optional<HotspotSampler> hotspot_;
};

}  // namespace cpq::workloads
