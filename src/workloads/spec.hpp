// Textual workload specs shared by cpq_bench_cli, bench_skew and tests.
//
//   key specs:      uniform32 | uniform16 | uniform8 | ascending |
//                   descending | hold | zipf:THETA[,BITS] |
//                   hotspot:HOT_OPS,HOT_KEYS[,BITS] | dijkstra:MIN,MAX
//   arrival specs:  closed | poisson:HZ | mmpp:HZ_ON,HZ_OFF,ON_MS,OFF_MS
//
// Parsers return std::nullopt on any malformed or out-of-range spec; the
// CLI maps that to its usual exit-2 bad-flag path. Every accepted spec
// round-trips through KeyConfig::name() / ArrivalConfig::name() closely
// enough for log labels, and the numeric bounds here are the single source
// of truth for what the harness will accept.
#pragma once

#include <cstdlib>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "workloads/arrivals.hpp"
#include "workloads/keyspace.hpp"

namespace cpq::workloads {

namespace detail {

// Split "a,b,c" into fields; empty fields are malformed.
inline std::optional<std::vector<std::string>> split_fields(
    std::string_view text) {
  std::vector<std::string> fields;
  while (true) {
    const auto comma = text.find(',');
    const std::string_view field =
        comma == std::string_view::npos ? text : text.substr(0, comma);
    if (field.empty()) return std::nullopt;
    fields.emplace_back(field);
    if (comma == std::string_view::npos) return fields;
    text.remove_prefix(comma + 1);
  }
}

inline std::optional<double> parse_double_field(const std::string& field) {
  char* end = nullptr;
  const double value = std::strtod(field.c_str(), &end);
  if (end == field.c_str() || *end != '\0') return std::nullopt;
  return value;
}

inline std::optional<std::uint64_t> parse_u64_field(const std::string& field) {
  char* end = nullptr;
  const unsigned long long value = std::strtoull(field.c_str(), &end, 10);
  if (end == field.c_str() || *end != '\0') return std::nullopt;
  if (field.front() == '-') return std::nullopt;
  return static_cast<std::uint64_t>(value);
}

// Optional trailing BITS field for zipf/hotspot: the keyspace span is
// mask+1, so 64-bit spans would wrap — cap at 63.
inline std::optional<unsigned> parse_bits_field(const std::string& field) {
  const auto bits = parse_u64_field(field);
  if (!bits || *bits < 1 || *bits > 63) return std::nullopt;
  return static_cast<unsigned>(*bits);
}

}  // namespace detail

inline std::optional<KeyConfig> parse_key_spec(std::string_view spec) {
  if (spec == "uniform32") return KeyConfig::uniform(32);
  if (spec == "uniform16") return KeyConfig::uniform(16);
  if (spec == "uniform8") return KeyConfig::uniform(8);
  if (spec == "ascending") return KeyConfig::ascending();
  if (spec == "descending") return KeyConfig::descending();
  if (spec == "hold") return KeyConfig::hold();

  const auto colon = spec.find(':');
  if (colon == std::string_view::npos) return std::nullopt;
  const std::string_view kind = spec.substr(0, colon);
  const auto fields = detail::split_fields(spec.substr(colon + 1));
  if (!fields) return std::nullopt;

  if (kind == "zipf") {
    if (fields->size() < 1 || fields->size() > 2) return std::nullopt;
    const auto theta = detail::parse_double_field((*fields)[0]);
    if (!theta || *theta <= 0.0 || *theta > 16.0) return std::nullopt;
    unsigned bits = 32;
    if (fields->size() == 2) {
      const auto parsed = detail::parse_bits_field((*fields)[1]);
      if (!parsed) return std::nullopt;
      bits = *parsed;
    }
    return KeyConfig::zipf(*theta, bits);
  }
  if (kind == "hotspot") {
    if (fields->size() < 2 || fields->size() > 3) return std::nullopt;
    const auto hot_ops = detail::parse_double_field((*fields)[0]);
    const auto hot_keys = detail::parse_double_field((*fields)[1]);
    if (!hot_ops || *hot_ops < 0.0 || *hot_ops > 1.0) return std::nullopt;
    if (!hot_keys || *hot_keys <= 0.0 || *hot_keys > 1.0) return std::nullopt;
    unsigned bits = 32;
    if (fields->size() == 3) {
      const auto parsed = detail::parse_bits_field((*fields)[2]);
      if (!parsed) return std::nullopt;
      bits = *parsed;
    }
    return KeyConfig::hotspot(*hot_ops, *hot_keys, bits);
  }
  if (kind == "dijkstra") {
    if (fields->size() != 2) return std::nullopt;
    const auto min_inc = detail::parse_u64_field((*fields)[0]);
    const auto max_inc = detail::parse_u64_field((*fields)[1]);
    if (!min_inc || !max_inc) return std::nullopt;
    if (*max_inc < 1 || *min_inc > *max_inc) return std::nullopt;
    return KeyConfig::dijkstra(*min_inc, *max_inc);
  }
  return std::nullopt;
}

inline std::optional<ArrivalConfig> parse_arrival_spec(std::string_view spec) {
  if (spec == "closed") return ArrivalConfig::closed();

  const auto colon = spec.find(':');
  if (colon == std::string_view::npos) return std::nullopt;
  const std::string_view kind = spec.substr(0, colon);
  const auto fields = detail::split_fields(spec.substr(colon + 1));
  if (!fields) return std::nullopt;

  if (kind == "poisson") {
    if (fields->size() != 1) return std::nullopt;
    const auto hz = detail::parse_double_field((*fields)[0]);
    if (!hz || *hz <= 0.0) return std::nullopt;
    return ArrivalConfig::poisson(*hz);
  }
  if (kind == "mmpp") {
    if (fields->size() != 4) return std::nullopt;
    const auto hz_on = detail::parse_double_field((*fields)[0]);
    const auto hz_off = detail::parse_double_field((*fields)[1]);
    const auto on_ms = detail::parse_double_field((*fields)[2]);
    const auto off_ms = detail::parse_double_field((*fields)[3]);
    if (!hz_on || *hz_on <= 0.0) return std::nullopt;
    if (!hz_off || *hz_off < 0.0 || *hz_off > *hz_on) return std::nullopt;
    if (!on_ms || *on_ms <= 0.0) return std::nullopt;
    if (!off_ms || *off_ms <= 0.0) return std::nullopt;
    return ArrivalConfig::mmpp(*hz_on, *hz_off, *on_ms * 1e-3, *off_ms * 1e-3);
  }
  return std::nullopt;
}

}  // namespace cpq::workloads
