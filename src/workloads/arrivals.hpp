// Open-loop arrival processes: Poisson and Markov-modulated Poisson (MMPP).
//
// The paper's harness is closed-loop — every worker issues its next
// operation the instant the previous one returns, so the offered load
// adapts to the queue under test and bursts can never form. Real traffic is
// the opposite: tasks arrive on their own schedule, and they arrive in
// bursts. The two-state MMPP here (the classic on/off interrupted-Poisson
// model) alternates between an ON state (rate hz_on, mean sojourn on_s) and
// an OFF state (rate hz_off, mean sojourn off_s); sojourns and
// inter-arrivals are exponential, so the process stays Markov and the
// aggregate rate has a closed form:
//
//   E[rate] = (hz_on * on_s + hz_off * off_s) / (on_s + off_s)
//
// which the statistical tests pin down. A Poisson process is the one-state
// special case. Each worker owns one process instance seeded from
// (base seed, thread id): reproducible, independent streams.
#pragma once

#include <cassert>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <limits>
#include <string>

#include "platform/rng.hpp"

namespace cpq::workloads {

struct ArrivalConfig {
  enum class Kind : std::uint8_t {
    kClosed,   // no pacing: issue ops back-to-back (the paper's harness)
    kPoisson,  // exponential inter-arrivals at hz_on
    kMmpp,     // two-state Markov-modulated Poisson
  };

  Kind kind = Kind::kClosed;
  double hz_on = 0.0;   // per-thread arrival rate in the ON state
  double hz_off = 0.0;  // per-thread arrival rate in the OFF state (mmpp)
  double on_s = 0.010;  // mean ON-state sojourn (burst length), seconds
  double off_s = 0.090;  // mean OFF-state sojourn, seconds

  static ArrivalConfig closed() { return {}; }
  static ArrivalConfig poisson(double hz) {
    ArrivalConfig cfg;
    cfg.kind = Kind::kPoisson;
    cfg.hz_on = hz;
    return cfg;
  }
  static ArrivalConfig mmpp(double hz_on, double hz_off, double on_s,
                            double off_s) {
    ArrivalConfig cfg;
    cfg.kind = Kind::kMmpp;
    cfg.hz_on = hz_on;
    cfg.hz_off = hz_off;
    cfg.on_s = on_s;
    cfg.off_s = off_s;
    return cfg;
  }

  bool enabled() const noexcept { return kind != Kind::kClosed; }

  // Long-run expected arrival rate per thread.
  double mean_hz() const noexcept {
    switch (kind) {
      case Kind::kClosed:
        return 0.0;
      case Kind::kPoisson:
        return hz_on;
      case Kind::kMmpp:
        return (hz_on * on_s + hz_off * off_s) / (on_s + off_s);
    }
    return 0.0;
  }

  std::string name() const {
    char buf[96];
    switch (kind) {
      case Kind::kClosed:
        return "closed";
      case Kind::kPoisson:
        std::snprintf(buf, sizeof(buf), "poisson:%g", hz_on);
        return buf;
      case Kind::kMmpp:
        std::snprintf(buf, sizeof(buf), "mmpp:%g,%g,%g,%g", hz_on, hz_off,
                      on_s * 1e3, off_s * 1e3);
        return buf;
    }
    return "closed";
  }
};

// One thread's arrival schedule. next_arrival_ns() returns the absolute
// offset (nanoseconds from the stream's origin) of the next arrival; the
// caller spins/sleeps until its wall clock passes it. A caller that falls
// behind simply observes arrival times in the past and issues the backlog
// at full speed — the open-loop lag the model intends.
class ArrivalProcess {
 public:
  ArrivalProcess(const ArrivalConfig& cfg, std::uint64_t base_seed,
                 unsigned thread_id)
      : cfg_(cfg), rng_(thread_seed(base_seed ^ 0xb0257ULL, thread_id)) {
    assert(cfg.enabled());
    on_ = true;
    state_end_ns_ = next_sojourn_ns();
  }

  double next_arrival_ns() {
    for (;;) {
      const double rate = on_ ? cfg_.hz_on : cfg_.hz_off;
      if (rate > 0.0) {
        const double gap_ns = exponential() * 1e9 / rate;
        if (t_ns_ + gap_ns <= state_end_ns_) {
          t_ns_ += gap_ns;
          ++arrivals_;
          return t_ns_;
        }
      }
      // No (more) arrivals in this state sojourn: cross into the next state.
      switch_state();
    }
  }

  // Diagnostics for the burst_* metric family.
  std::uint64_t arrivals() const noexcept { return arrivals_; }
  std::uint64_t bursts() const noexcept { return bursts_; }
  double on_time_fraction() const noexcept {
    const double total = t_ns_;
    if (total <= 0.0) return on_ ? 1.0 : 0.0;
    double on_ns = on_ns_;
    if (on_) on_ns += t_ns_ - state_start_ns_;
    return on_ns / total;
  }

 private:
  double exponential() { return -std::log(1.0 - rng_.next_double()); }

  double next_sojourn_ns() {
    if (cfg_.kind == ArrivalConfig::Kind::kPoisson) {
      return std::numeric_limits<double>::infinity();  // single eternal state
    }
    const double mean_s = on_ ? cfg_.on_s : cfg_.off_s;
    return exponential() * mean_s * 1e9;
  }

  void switch_state() {
    if (on_) on_ns_ += state_end_ns_ - state_start_ns_;
    t_ns_ = state_end_ns_;
    state_start_ns_ = state_end_ns_;
    on_ = !on_;
    if (on_) ++bursts_;
    state_end_ns_ = state_start_ns_ + next_sojourn_ns();
  }

  ArrivalConfig cfg_;
  Xoroshiro128 rng_;
  bool on_ = true;
  double t_ns_ = 0.0;          // process time of the last arrival
  double state_start_ns_ = 0.0;
  double state_end_ns_ = 0.0;
  double on_ns_ = 0.0;         // ON time accumulated over completed sojourns
  std::uint64_t arrivals_ = 0;
  std::uint64_t bursts_ = 0;
};

}  // namespace cpq::workloads
