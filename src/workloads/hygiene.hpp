// Anti-artifact bench hygiene (arXiv:2208.08469).
//
// "Performance Anomalies in Concurrent Data Structure Microbenchmarks"
// shows that heap layout and allocator state routinely shift microbenchmark
// results by more than the effects under study: the same queue measured
// first or last in a process, or after a different allocation history, can
// differ by tens of percent with no code change. Three countermeasures:
//
//   * LayoutPerturbation — an RAII bundle of randomly sized heap blocks
//     allocated before the queue under test and held for the repetition.
//     Each repetition therefore starts from a different allocator free-list
//     state and base address pattern, turning a layout accident that would
//     bias *every* repetition the same way into per-repetition noise the
//     confidence interval captures.
//   * shuffled prefill — prefill keys generated first, inserted in a
//     seeded-random order (see harness.hpp), so a queue cannot inherit a
//     conveniently sorted initial structure from the generator's ordering.
//   * interleaved execution — running all queues inside one process
//     lifetime in shuffled order per repetition (bench_common.hpp); the
//     per-queue spread across repetitions is reported as the layout_*
//     metric family instead of silently contaminating the mean.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "platform/rng.hpp"

namespace cpq::workloads {

// Randomized allocator/layout perturbation, held for one repetition.
// Disabled instances cost nothing.
class LayoutPerturbation {
 public:
  LayoutPerturbation() = default;

  LayoutPerturbation(bool enabled, std::uint64_t seed) {
    if (!enabled) return;
    Xoroshiro128 rng(seed ^ 0x1a7007ULL);
    // 16..63 blocks, 1..256 cache lines each (64 B .. 16 KiB): enough to
    // scramble size-class free lists and page-relative placement without
    // measurably charging the repetition itself.
    const std::size_t blocks = 16 + rng.next_below(48);
    blocks_.reserve(blocks);
    for (std::size_t i = 0; i < blocks; ++i) {
      const std::size_t lines = 1 + rng.next_below(256);
      const std::size_t bytes = lines * 64;
      auto block = std::make_unique<std::byte[]>(bytes);
      // Touch one byte per cache line so the pages are really committed and
      // the block genuinely occupies address space, not just vm reservation.
      for (std::size_t off = 0; off < bytes; off += 64) {
        block[off] = std::byte{static_cast<unsigned char>(rng.next())};
      }
      blocks_.push_back(std::move(block));
    }
    // Free a random half in random order: holes, not just a bigger brk.
    for (std::size_t i = 0; i < blocks / 2; ++i) {
      const std::size_t victim = rng.next_below(blocks_.size());
      blocks_[victim] = std::move(blocks_.back());
      blocks_.pop_back();
    }
  }

  std::size_t blocks() const noexcept { return blocks_.size(); }

 private:
  std::vector<std::unique_ptr<std::byte[]>> blocks_;
};

// Seeded Fisher-Yates shuffle used for randomized prefill insertion order
// and for the interleaved queue-order draw. std::shuffle's results are
// implementation-defined per standard library; benchmarks need the same
// permutation on every platform for a given seed.
template <typename T>
void deterministic_shuffle(std::vector<T>& items, Xoroshiro128& rng) {
  for (std::size_t i = items.size(); i > 1; --i) {
    const std::size_t j = rng.next_below(i);
    std::swap(items[i - 1], items[j]);
  }
}

}  // namespace cpq::workloads
