// Hard-error path for unknown enum values.
//
// The old bench_framework name() helpers fell through to "?" on an
// unrecognized enum, which would silently benchmark — and label — a cell
// nobody asked for. A corrupted or unhandled enum value is a programming
// error, not a configuration to be reported on; abort loudly instead.
#pragma once

#include <cassert>
#include <cstdio>
#include <cstdlib>

namespace cpq::workloads {

[[noreturn]] inline void fatal_unknown_enum(const char* context, int value) {
  std::fprintf(stderr, "cpq: unknown %s enum value %d (corrupted config?)\n",
               context, value);
  assert(false && "unknown enum value");
  std::abort();
}

}  // namespace cpq::workloads
