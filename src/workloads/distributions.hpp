// Adversarial key-popularity distributions (arXiv:2305.10872).
//
// The paper's grid draws keys uniformly (or monotonically) — every element
// of the keyspace is equally likely, so relaxed queues never contend on a
// popular key range. Real workloads are skewed, and "Benchmark Framework
// with Skewed Workloads" shows relaxed-queue rankings flip once they are:
//
//   * ZipfSampler    — ranks 1..n with P(k) ∝ k^-θ, sampled by rejection
//                      inversion (Hörmann & Derflinger 1996): O(1) per draw
//                      for any n and any θ > 0, no O(n) table. Rank 1 maps
//                      to the smallest key, so the popular mass sits at the
//                      *minimum* end of the queue — the adversarial
//                      orientation for a priority queue.
//   * HotspotSampler — x% of draws land uniformly in the bottom y% of the
//                      keyspace (the "hot" range), the rest uniformly in the
//                      remainder. The classic YCSB-style hotspot, again
//                      aligned with the delete_min hot end.
//
// Both are deterministic given the caller's RNG stream: the same
// (seed, thread id) replays the same keys, as everywhere in the harness.
#pragma once

#include <cassert>
#include <cmath>
#include <cstdint>

#include "platform/rng.hpp"

namespace cpq::workloads {

// Rejection-inversion sampling of a bounded Zipf distribution
// (Hörmann & Derflinger, "Rejection-inversion to generate variates from
// monotone discrete distributions", ACM TOMACS 1996). Draws rank k in
// [1, n] with P(k) ∝ k^-theta for any theta > 0 (theta == 1 included),
// a handful of exp/log per draw and two doubles of state.
class ZipfSampler {
 public:
  ZipfSampler() = default;

  ZipfSampler(std::uint64_t n, double theta)
      : n_(n == 0 ? 1 : n), theta_(theta) {
    assert(theta > 0.0);
    h_x1_ = h_integral(1.5) - 1.0;
    h_n_ = h_integral(static_cast<double>(n_) + 0.5);
    s_ = 2.0 - h_integral_inverse(h_integral(2.5) - h(2.0));
  }

  std::uint64_t n() const noexcept { return n_; }
  double theta() const noexcept { return theta_; }

  // Rank in [1, n]; rank 1 is the most popular.
  std::uint64_t next(Xoroshiro128& rng) const {
    if (n_ == 1) return 1;
    for (;;) {
      const double u = h_n_ + rng.next_double() * (h_x1_ - h_n_);
      const double x = h_integral_inverse(u);
      std::uint64_t k = static_cast<std::uint64_t>(x + 0.5);
      if (k < 1) k = 1;
      if (k > n_) k = n_;
      const double kd = static_cast<double>(k);
      if (kd - x <= s_ || u >= h_integral(kd + 0.5) - h(kd)) {
        return k;
      }
    }
  }

  // Expected probability of rank k (for goodness-of-fit tests): k^-θ / H,
  // with H the generalized harmonic number over 1..n, computed on demand.
  double probability(std::uint64_t k) const {
    double h_sum = 0.0;
    for (std::uint64_t i = 1; i <= n_; ++i) {
      h_sum += std::pow(static_cast<double>(i), -theta_);
    }
    return std::pow(static_cast<double>(k), -theta_) / h_sum;
  }

 private:
  // helper1(x) = log1p(x)/x, helper2(x) = expm1(x)/x, both continuous at 0.
  static double helper1(double x) {
    return std::abs(x) > 1e-8 ? std::log1p(x) / x : 1.0 - x / 2.0 + x * x / 3.0;
  }
  static double helper2(double x) {
    return std::abs(x) > 1e-8 ? std::expm1(x) / x : 1.0 + x / 2.0 + x * x / 6.0;
  }

  // H(x) = ∫ t^-θ dt: (x^(1-θ) - 1)/(1-θ) for θ ≠ 1, ln(x) for θ = 1 —
  // one branch-free formula via helper2.
  double h_integral(double x) const {
    const double log_x = std::log(x);
    return helper2((1.0 - theta_) * log_x) * log_x;
  }

  double h(double x) const { return std::exp(-theta_ * std::log(x)); }

  double h_integral_inverse(double x) const {
    double t = x * (1.0 - theta_);
    if (t < -1.0) t = -1.0;  // round-off guard at the distribution head
    return std::exp(helper1(t) * x);
  }

  std::uint64_t n_ = 1;
  double theta_ = 1.0;
  double h_x1_ = 0.0;
  double h_n_ = 0.0;
  double s_ = 0.0;
};

// Hotspot keyspace: a `hot_ops` fraction of draws fall uniformly in the
// bottom `hot_keys` fraction of [0, span); the rest fall uniformly in the
// remainder. The hot range sits at the low (minimum) end on purpose.
class HotspotSampler {
 public:
  HotspotSampler() = default;

  HotspotSampler(std::uint64_t span, double hot_ops, double hot_keys)
      : span_(span == 0 ? 1 : span) {
    assert(hot_ops >= 0.0 && hot_ops <= 1.0);
    assert(hot_keys > 0.0 && hot_keys <= 1.0);
    hot_span_ = static_cast<std::uint64_t>(
        hot_keys * static_cast<double>(span_));
    if (hot_span_ == 0) hot_span_ = 1;
    if (hot_span_ > span_) hot_span_ = span_;
    hot_ops_ = hot_ops;
  }

  std::uint64_t span() const noexcept { return span_; }
  std::uint64_t hot_span() const noexcept { return hot_span_; }

  std::uint64_t next(Xoroshiro128& rng) const {
    if (hot_span_ >= span_ || rng.next_double() < hot_ops_) {
      return rng.next_below(hot_span_);
    }
    return hot_span_ + rng.next_below(span_ - hot_span_);
  }

 private:
  std::uint64_t span_ = 1;
  std::uint64_t hot_span_ = 1;
  double hot_ops_ = 0.0;
};

}  // namespace cpq::workloads
