// Progress watchdog: turn livelocks into loud, diagnosable failures.
//
// A lock-free queue that livelocks under contention doesn't crash — it hangs
// the benchmark (and CI) forever, or worse, hangs one repetition out of ten
// and poisons the reported numbers. The watchdog is a sampling thread that
// watches per-worker heartbeat counters (ticked once per operation in the
// measurement loops — one relaxed store to a thread-private cache line). If
// the *global* heartbeat sum stops changing for a configurable deadline, it
// dumps per-thread op counts, each thread's last operation, and the queue
// name to stderr, then terminates the process with kWatchdogExitCode so CI
// can distinguish a livelock from a crash or an assertion failure.
//
// The deadline comes from CPQ_WATCHDOG_S (seconds; default 120, 0 disables)
// or an explicit per-run override (BenchConfig::watchdog_s, tests).
#pragma once

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <utility>

#include "obs/timeseries.hpp"
#include "platform/cache.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

namespace cpq::validation {

// Distinct exit code for watchdog aborts (not used by gtest, sanitizers, or
// the shell for signal deaths).
inline constexpr int kWatchdogExitCode = 86;

enum class LastOp : std::uint8_t {
  kNone = 0,
  kInsert = 1,
  kDeleteHit = 2,
  kDeleteEmpty = 3,
};

inline const char* last_op_name(std::uint8_t op) noexcept {
  switch (op) {
    case 1: return "insert";
    case 2: return "delete_min (hit)";
    case 3: return "delete_min (empty)";
    default: return "none";
  }
}

// One heartbeat slot per worker thread, on its own cache line. Workers call
// tick() once per operation; the watchdog reads racily.
struct alignas(kCacheLineSize) WorkerProgress {
  std::atomic<std::uint64_t> ops{0};
  std::atomic<std::uint8_t> last_op{0};

  void tick(std::uint64_t op_count, LastOp op) noexcept {
    ops.store(op_count, std::memory_order_relaxed);
    last_op.store(static_cast<std::uint8_t>(op), std::memory_order_relaxed);
  }
};

inline int stall_dump_pid() noexcept {
#if defined(__unix__) || defined(__APPLE__)
  return static_cast<int>(::getpid());
#else
  return 0;
#endif
}

// Unique stall-dump file path under `dir`. Several bench processes (and
// several watchdogs within one process — e.g. one per repetition) may dump
// concurrently into a shared directory, so the name carries both the pid and
// a process-wide monotonic counter: two dumps can never collide on a name.
inline std::string stall_dump_path(const std::string& dir,
                                   const std::string& label) {
  static std::atomic<unsigned> counter{0};
  std::string sanitized;
  sanitized.reserve(label.size());
  for (const char c : label) {
    const bool keep = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                      (c >= '0' && c <= '9') || c == '-' || c == '_' ||
                      c == '.';
    sanitized.push_back(keep ? c : '_');
  }
  if (sanitized.empty()) sanitized = "unnamed";
  return dir + "/stall_" + sanitized + "_" +
         std::to_string(stall_dump_pid()) + "_" +
         std::to_string(counter.fetch_add(1, std::memory_order_relaxed)) +
         ".txt";
}

// Resolve the effective deadline: an explicit non-negative override wins,
// otherwise CPQ_WATCHDOG_S, otherwise the fallback. 0 disables supervision.
inline double watchdog_deadline(double override_s,
                                double fallback_s = 120.0) {
  if (override_s >= 0.0) return override_s;
  if (const char* env = std::getenv("CPQ_WATCHDOG_S")) {
    char* end = nullptr;
    const double value = std::strtod(env, &end);
    if (end != env && value >= 0.0) return value;
  }
  return fallback_s;
}

class Watchdog {
 public:
  // Optional subsystem diagnostics appended to the stall dump: layers above
  // the raw queues (e.g. the priority service's per-shard counters) register
  // a callback writing their state to the given stream.
  using Diagnostics = std::function<void(std::FILE*)>;

  // Compose two diagnostics callbacks into one (either may be empty):
  // subsystems stack their dumps instead of overwriting each other's.
  static Diagnostics chain_diagnostics(Diagnostics first, Diagnostics second) {
    if (!first) return second;
    if (!second) return first;
    return [first = std::move(first),
            second = std::move(second)](std::FILE* out) {
      first(out);
      second(out);
    };
  }

  // Supervise `count` workers. A deadline <= 0 (or no workers) disables the
  // watchdog entirely — no thread is started.
  Watchdog(std::string label, const WorkerProgress* workers,
           std::size_t count, double deadline_s,
           Diagnostics diagnostics = {})
      : label_(std::move(label)),
        workers_(workers),
        count_(count),
        deadline_s_(deadline_s),
        diagnostics_(std::move(diagnostics)) {
    if (deadline_s_ > 0.0 && workers_ != nullptr && count_ > 0) {
      thread_ = std::thread([this] { run(); });
    }
  }

  ~Watchdog() { stop(); }

  Watchdog(const Watchdog&) = delete;
  Watchdog& operator=(const Watchdog&) = delete;

  // Idempotent; returns once the sampling thread has exited.
  void stop() {
    if (!thread_.joinable()) return;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      stop_ = true;
    }
    cv_.notify_all();
    thread_.join();
  }

 private:
  std::uint64_t heartbeat_sum() const noexcept {
    std::uint64_t sum = 0;
    for (std::size_t i = 0; i < count_; ++i) {
      sum += workers_[i].ops.load(std::memory_order_relaxed);
    }
    return sum;
  }

  void run() {
    using clock = std::chrono::steady_clock;
    const auto poll = std::chrono::duration<double>(
        std::clamp(deadline_s_ / 8.0, 0.001, 0.1));
    auto last_change = clock::now();
    std::uint64_t last_sum = heartbeat_sum();
    std::unique_lock<std::mutex> lock(mutex_);
    while (!stop_) {
      if (cv_.wait_for(lock, poll, [this] { return stop_; })) break;
      const std::uint64_t sum = heartbeat_sum();
      const auto now = clock::now();
      if (sum != last_sum) {
        last_sum = sum;
        last_change = now;
        continue;
      }
      const double stalled =
          std::chrono::duration<double>(now - last_change).count();
      if (stalled >= deadline_s_) dump_and_abort(stalled);
    }
  }

  void dump_to(std::FILE* out, double stalled_s) const {
    std::fprintf(out,
                 "[cpq-watchdog] no progress on '%s' for %.1f s "
                 "(deadline %.1f s, %zu workers) — aborting\n",
                 label_.c_str(), stalled_s, deadline_s_, count_);
    for (std::size_t i = 0; i < count_; ++i) {
      std::fprintf(
          out, "[cpq-watchdog]   thread %zu: %llu ops, last op: %s\n", i,
          static_cast<unsigned long long>(
              workers_[i].ops.load(std::memory_order_relaxed)),
          last_op_name(workers_[i].last_op.load(std::memory_order_relaxed)));
    }
    if (diagnostics_) diagnostics_(out);
    // Flight recorder: when the telemetry plane has been sampling, the last
    // few snapshots show what throughput, latency, and SLO burn looked like
    // in the seconds *leading into* the stall — usually the difference
    // between "it hung" and an actionable picture.
    obs::TelemetryPlane::global().dump_recent(out);
  }

  [[noreturn]] void dump_and_abort(double stalled_s) const {
    dump_to(stderr, stalled_s);
    // Persist the dump when CPQ_STALL_DUMP_DIR is set (CI keeps these as
    // artifacts); the pid+counter suffix makes concurrent dumps safe.
    if (const char* dir = std::getenv("CPQ_STALL_DUMP_DIR")) {
      const std::string path = stall_dump_path(dir, label_);
      if (std::FILE* file = std::fopen(path.c_str(), "w")) {
        dump_to(file, stalled_s);
        std::fclose(file);
        std::fprintf(stderr, "[cpq-watchdog] stall dump written to %s\n",
                     path.c_str());
      } else {
        std::fprintf(stderr,
                     "[cpq-watchdog] could not write stall dump to %s\n",
                     path.c_str());
      }
    }
    std::fflush(stderr);
    std::_Exit(kWatchdogExitCode);
  }

  const std::string label_;
  const WorkerProgress* const workers_;
  const std::size_t count_;
  const double deadline_s_;
  const Diagnostics diagnostics_;

  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::thread thread_;
};

}  // namespace cpq::validation
