// Declarative chaos schedules: the input format of the ChaosCampaign runner
// (chaos_campaign.hpp).
//
// A schedule is a small line-based text file — committed next to the tests
// that run it, so a CI chaos campaign is reviewable like any other fixture:
//
//   # workload
//   duration_s 2.5
//   baseline_s 0.5          # fault-free prefix establishing the p99 baseline
//   arrival_hz 20000        # per producer (open-loop Poisson)
//   producers 2
//   consumers 2
//   hot_ops 0.9             # optional hotspot skew: this fraction of
//   hot_keys 0.1            # submissions hits the bottom hot_keys of
//                           # key_space (0 0 = uniform keys)
//   shards 4
//   ttl_us 50000            # 0 disables deadline shedding
//   breaker_trip_us 2000    # 0 disables the circuit breaker
//   # assertions
//   window_ms 50            # p99 is tracked per window of this width
//   recovery_factor 3       # recovered when p99 <= factor * baseline p99 ...
//   recovery_floor_ms 5     # ... or below this absolute floor (noisy hosts)
//   rank_bound 4096         # RankEstimator bound; violations outside fault
//                           # windows fail the campaign. 0 skips the check.
//   # faults
//   scenario lock-convoy start=0.6 dur=0.3 kind=inject site=spinlock ppm=40000
//   scenario shard-kill  start=1.0 dur=0.3 kind=kill_shard shard=1
//
// Fault kinds:
//   stall_shard   sleep stall_us before every batch against `shard`
//   kill_shard    stall_shard with a deadly default (50 ms): the shard is
//                 effectively dead until the scenario clears
//   inject        CPQ_INJECT delays at `ppm` on sites containing `site`
//                 (thread stalls: site=""; EBR reclamation delays:
//                 site=ebr; spinlock convoys: site=spinlock)
//   inject_throw  CPQ_INJECT kThrow at `ppm` on sites containing `site` —
//                 only safe on exception-clean seams (service/submit)
//
// inject/inject_throw scenarios need a binary compiled with
// CPQ_FAULT_INJECTION; without it the campaign marks them inert and says so.
#pragma once

#include <cstdint>
#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

namespace cpq::validation {

enum class ChaosFaultKind : std::uint8_t {
  kStallShard,
  kKillShard,
  kInject,
  kInjectThrow,
};

inline const char* chaos_fault_kind_name(ChaosFaultKind kind) noexcept {
  switch (kind) {
    case ChaosFaultKind::kStallShard: return "stall_shard";
    case ChaosFaultKind::kKillShard: return "kill_shard";
    case ChaosFaultKind::kInject: return "inject";
    case ChaosFaultKind::kInjectThrow: return "inject_throw";
  }
  return "?";
}

struct ChaosScenario {
  std::string name;
  ChaosFaultKind kind = ChaosFaultKind::kStallShard;
  double start_s = 0.0;     // fault applied at this offset into the run
  double duration_s = 0.0;  // and cleared after this long
  unsigned shard = 0;       // stall_shard / kill_shard target
  std::uint32_t stall_us = 0;  // 0 = kind-specific default
  std::uint32_t ppm = 0;       // inject*: firings per million crossings
  std::string site;            // inject*: site-name substring filter

  double clear_s() const noexcept { return start_s + duration_s; }

  std::uint32_t effective_stall_us() const noexcept {
    if (stall_us != 0) return stall_us;
    return kind == ChaosFaultKind::kKillShard ? 50'000 : 2'000;
  }
};

struct ChaosSchedule {
  // Workload shape.
  double duration_s = 2.0;
  double baseline_s = 0.4;
  double arrival_hz = 20'000.0;  // per producer
  unsigned producers = 2;
  unsigned consumers = 2;
  std::uint64_t key_space = std::uint64_t{1} << 32;
  // Hotspot key skew (workloads/distributions.hpp): hot_ops of submissions
  // draw from the bottom hot_keys of key_space. hot_keys 0 = uniform keys.
  double hot_ops = 0.0;
  double hot_keys = 0.0;

  // Service configuration (forwarded into ServiceConfig).
  unsigned shards = 4;
  std::size_t insert_batch = 8;
  std::size_t delete_batch = 8;
  std::size_t max_in_flight = 0;
  std::string policy = "reject";  // reject | tiered (admission under load)
  std::uint64_t ttl_us = 0;
  std::uint64_t breaker_trip_us = 0;
  unsigned breaker_consecutive = 2;
  std::uint64_t breaker_cooldown_us = 5'000;

  // Assertions.
  double window_ms = 25.0;
  double recovery_factor = 2.0;
  double recovery_floor_ms = 2.0;
  double rank_bound = 0.0;  // 0 = skip the rank-error check
  // Rank violations are attributed to a fault until this long after it
  // clears (backlog scored while draining is the fault's doing, not noise).
  double rank_grace_s = 0.25;

  std::vector<ChaosScenario> scenarios;
};

namespace detail {

inline bool chaos_parse_error(std::string& error, unsigned line,
                              const std::string& what) {
  error = "chaos schedule line " + std::to_string(line) + ": " + what;
  return false;
}

}  // namespace detail

// Parse a schedule from `text`. Returns false with a one-line diagnostic in
// `error` on malformed input; unknown keys are errors (a typo silently
// weakening a chaos campaign is exactly the failure this layer exists to
// prevent).
inline bool parse_chaos_schedule(const std::string& text, ChaosSchedule& out,
                                 std::string& error) {
  out = ChaosSchedule{};
  std::istringstream stream(text);
  std::string raw;
  unsigned line_no = 0;
  while (std::getline(stream, raw)) {
    ++line_no;
    const std::size_t hash = raw.find('#');
    if (hash != std::string::npos) raw.resize(hash);
    std::istringstream line(raw);
    std::string key;
    if (!(line >> key)) continue;  // blank / comment-only
    if (key == "scenario") {
      ChaosScenario sc;
      if (!(line >> sc.name)) {
        return detail::chaos_parse_error(error, line_no, "scenario needs a name");
      }
      bool have_kind = false;
      std::string token;
      while (line >> token) {
        const std::size_t eq = token.find('=');
        if (eq == std::string::npos || eq == 0) {
          return detail::chaos_parse_error(
              error, line_no, "expected key=value, got '" + token + "'");
        }
        const std::string k = token.substr(0, eq);
        const std::string v = token.substr(eq + 1);
        if (k == "start") {
          sc.start_s = std::strtod(v.c_str(), nullptr);
        } else if (k == "dur") {
          sc.duration_s = std::strtod(v.c_str(), nullptr);
        } else if (k == "kind") {
          have_kind = true;
          if (v == "stall_shard") {
            sc.kind = ChaosFaultKind::kStallShard;
          } else if (v == "kill_shard") {
            sc.kind = ChaosFaultKind::kKillShard;
          } else if (v == "inject") {
            sc.kind = ChaosFaultKind::kInject;
          } else if (v == "inject_throw") {
            sc.kind = ChaosFaultKind::kInjectThrow;
          } else {
            return detail::chaos_parse_error(error, line_no,
                                             "unknown kind '" + v + "'");
          }
        } else if (k == "shard") {
          sc.shard = static_cast<unsigned>(std::strtoul(v.c_str(), nullptr, 10));
        } else if (k == "stall_us") {
          sc.stall_us =
              static_cast<std::uint32_t>(std::strtoul(v.c_str(), nullptr, 10));
        } else if (k == "ppm") {
          sc.ppm =
              static_cast<std::uint32_t>(std::strtoul(v.c_str(), nullptr, 10));
        } else if (k == "site") {
          sc.site = v;
        } else {
          return detail::chaos_parse_error(error, line_no,
                                           "unknown scenario key '" + k + "'");
        }
      }
      if (!have_kind) {
        return detail::chaos_parse_error(
            error, line_no, "scenario '" + sc.name + "' needs kind=");
      }
      if (sc.duration_s <= 0.0) {
        return detail::chaos_parse_error(
            error, line_no, "scenario '" + sc.name + "' needs dur= > 0");
      }
      if ((sc.kind == ChaosFaultKind::kInject ||
           sc.kind == ChaosFaultKind::kInjectThrow) &&
          sc.ppm == 0) {
        sc.ppm = sc.kind == ChaosFaultKind::kInject ? 100'000 : 2'000;
      }
      if (sc.kind == ChaosFaultKind::kInjectThrow && sc.site.empty()) {
        // Unfiltered kThrow would fire under noexcept queue internals and
        // terminate; restrict it to the exception-clean service seam.
        sc.site = "service/submit";
      }
      out.scenarios.push_back(std::move(sc));
      continue;
    }
    std::string value;
    if (!(line >> value)) {
      return detail::chaos_parse_error(error, line_no,
                                       "key '" + key + "' needs a value");
    }
    const double d = std::strtod(value.c_str(), nullptr);
    const std::uint64_t u = std::strtoull(value.c_str(), nullptr, 10);
    if (key == "duration_s") {
      out.duration_s = d;
    } else if (key == "baseline_s") {
      out.baseline_s = d;
    } else if (key == "arrival_hz") {
      out.arrival_hz = d;
    } else if (key == "producers") {
      out.producers = static_cast<unsigned>(u);
    } else if (key == "consumers") {
      out.consumers = static_cast<unsigned>(u);
    } else if (key == "key_space") {
      out.key_space = u;
    } else if (key == "hot_ops") {
      out.hot_ops = d;
    } else if (key == "hot_keys") {
      out.hot_keys = d;
    } else if (key == "shards") {
      out.shards = static_cast<unsigned>(u);
    } else if (key == "insert_batch") {
      out.insert_batch = u;
    } else if (key == "delete_batch") {
      out.delete_batch = u;
    } else if (key == "max_in_flight") {
      out.max_in_flight = u;
    } else if (key == "policy") {
      if (value != "reject" && value != "tiered") {
        return detail::chaos_parse_error(
            error, line_no, "policy must be reject or tiered, got '" + value +
                                "' (block would hang an open-loop producer)");
      }
      out.policy = value;
    } else if (key == "ttl_us") {
      out.ttl_us = u;
    } else if (key == "breaker_trip_us") {
      out.breaker_trip_us = u;
    } else if (key == "breaker_consecutive") {
      out.breaker_consecutive = static_cast<unsigned>(u);
    } else if (key == "breaker_cooldown_us") {
      out.breaker_cooldown_us = u;
    } else if (key == "window_ms") {
      out.window_ms = d;
    } else if (key == "recovery_factor") {
      out.recovery_factor = d;
    } else if (key == "recovery_floor_ms") {
      out.recovery_floor_ms = d;
    } else if (key == "rank_bound") {
      out.rank_bound = d;
    } else if (key == "rank_grace_s") {
      out.rank_grace_s = d;
    } else {
      return detail::chaos_parse_error(error, line_no,
                                       "unknown key '" + key + "'");
    }
  }
  if (out.duration_s <= 0.0) {
    error = "chaos schedule: duration_s must be > 0";
    return false;
  }
  if (out.producers == 0 || out.consumers == 0) {
    error = "chaos schedule: producers and consumers must be > 0";
    return false;
  }
  if (out.window_ms <= 0.0) {
    error = "chaos schedule: window_ms must be > 0";
    return false;
  }
  if (out.hot_ops < 0.0 || out.hot_ops > 1.0 || out.hot_keys < 0.0 ||
      out.hot_keys > 1.0) {
    error = "chaos schedule: hot_ops and hot_keys must be in [0, 1]";
    return false;
  }
  if (out.hot_ops > 0.0 && out.hot_keys == 0.0) {
    error = "chaos schedule: hot_ops needs hot_keys > 0";
    return false;
  }
  for (const ChaosScenario& sc : out.scenarios) {
    if (sc.start_s < out.baseline_s) {
      error = "chaos schedule: scenario '" + sc.name +
              "' starts inside the baseline window";
      return false;
    }
    if (sc.clear_s() >= out.duration_s) {
      error = "chaos schedule: scenario '" + sc.name +
              "' must clear before duration_s (no recovery window left)";
      return false;
    }
    if ((sc.kind == ChaosFaultKind::kStallShard ||
         sc.kind == ChaosFaultKind::kKillShard) &&
        sc.shard >= out.shards) {
      error = "chaos schedule: scenario '" + sc.name + "' targets shard " +
              std::to_string(sc.shard) + " of " + std::to_string(out.shards);
      return false;
    }
  }
  return true;
}

}  // namespace cpq::validation
