// Compile-time-zero-cost fault injection for widening race windows.
//
// Lock-free bugs hide in windows a few instructions wide: between claiming a
// slot and reading its payload, between building a block array and publishing
// it, between observing an epoch and re-checking it. A buggy queue can pass
// every stress test simply because the scheduler never preempts inside those
// windows. The CPQ_INJECT(site) hooks below sit exactly there and, when
// enabled, stretch the window by a few microseconds with configurable
// probability — turning astronomically rare interleavings into ones a
// thousand-operation test hits reliably.
//
// Cost model:
//   * CPQ_FAULT_INJECTION undefined (the default for every library, bench,
//     and example target): CPQ_INJECT(site) expands to `((void)0)`. No load,
//     no branch, no code at the hook site — release binaries are unchanged.
//   * CPQ_FAULT_INJECTION defined (always for tests/torture_test.cpp via
//     target_compile_definitions; globally via -DCPQ_FAULT_INJECTION=ON at
//     CMake configure time, which also activates the EBR hooks compiled into
//     cpq_mm): each crossing draws from a per-thread xoroshiro stream and,
//     with probability CPQ_INJECT_PPM per million, yields, sleeps 50 us, or
//     burns a spin burst.
//
// Determinism: streams derive from CPQ_INJECT_SEED and a per-thread index
// assigned in first-crossing order, so a run with a fixed seed and a stable
// thread-creation order replays the same delay schedule.
//
// Configuration: CPQ_INJECT_PPM (default 0 = never fire even when compiled
// in) and CPQ_INJECT_SEED (default 42) are read from the environment once;
// fault_injection_configure() overrides both at runtime (tests).
#pragma once

#include <cstdint>

#if defined(CPQ_FAULT_INJECTION)

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <string>
#include <thread>

#include "platform/backoff.hpp"
#include "platform/rng.hpp"

namespace cpq::validation {

// What a firing hook does. kDelay (the default) stretches the race window;
// kThrow raises InjectedFault instead, simulating a hard failure (bad_alloc
// standing in for any queue-reported error) so the harnesses' per-repetition
// failure paths can be regression-tested deterministically. kThrow is a
// test-only mode: it must only be enabled around code that is exception-safe
// at the injected sites (e.g. single-threaded prefill through a throwing
// test queue), never under noexcept worker loops.
enum class FaultAction : std::uint8_t { kDelay = 0, kThrow = 1 };

struct InjectedFault : std::runtime_error {
  explicit InjectedFault(const char* site)
      : std::runtime_error(std::string("injected fault at ") + site) {}
};

struct InjectionState {
  std::atomic<std::uint32_t> ppm{0};
  std::atomic<std::uint64_t> seed{42};
  std::atomic<std::uint8_t> action{0};  // FaultAction
  // Substring a site name must contain for the hook to fire; nullptr = all
  // sites. The pointed-to string is intentionally leaked on reconfiguration
  // so racing readers never observe a freed buffer.
  std::atomic<const char*> site_filter{nullptr};
  // Bumped by configure(); threads reseed their stream on the next crossing.
  std::atomic<std::uint64_t> generation{1};
  std::atomic<std::uint64_t> fired{0};
};

inline InjectionState& injection_state() {
  static InjectionState state;
  static const bool env_loaded = [] {
    if (const char* ppm = std::getenv("CPQ_INJECT_PPM")) {
      state.ppm.store(
          static_cast<std::uint32_t>(std::strtoul(ppm, nullptr, 10)),
          std::memory_order_relaxed);
    }
    if (const char* seed = std::getenv("CPQ_INJECT_SEED")) {
      state.seed.store(std::strtoull(seed, nullptr, 10),
                       std::memory_order_relaxed);
    }
    if (const char* sites = std::getenv("CPQ_INJECT_SITES")) {
      if (sites[0] != '\0') {
        state.site_filter.store(strdup(sites), std::memory_order_release);
      }
    }
    return true;
  }();
  (void)env_loaded;
  return state;
}

// Override the environment configuration (tests, chaos campaigns). ppm =
// firings per million hook crossings; 0 disables. site_filter restricts
// firing to sites whose name contains the given substring (e.g. "ebr" or
// "service/submit"); nullptr or "" fires at every site. Each call replaces
// the previous filter (the old string is leaked — reconfiguration is a rare,
// test-only event and racing crossings must never read freed memory).
inline void fault_injection_configure(std::uint32_t ppm, std::uint64_t seed,
                                      FaultAction action = FaultAction::kDelay,
                                      const char* site_filter = nullptr) {
  InjectionState& state = injection_state();
  state.seed.store(seed, std::memory_order_relaxed);
  state.action.store(static_cast<std::uint8_t>(action),
                     std::memory_order_relaxed);
  state.site_filter.store(
      site_filter != nullptr && site_filter[0] != '\0' ? strdup(site_filter)
                                                       : nullptr,
      std::memory_order_release);
  state.ppm.store(ppm, std::memory_order_relaxed);
  state.generation.fetch_add(1, std::memory_order_acq_rel);
}

// Total delays injected process-wide (tests assert the hooks actually ran).
inline std::uint64_t fault_injections_fired() {
  return injection_state().fired.load(std::memory_order_relaxed);
}

namespace detail {

// Last site crossed per thread (by first-crossing index, capped): a cheap
// flight recorder. When a torture run livelocks, the per-thread sites show
// which seams the spinning threads keep crossing.
inline constexpr unsigned kMaxTrackedThreads = 64;

inline std::atomic<const char*>* last_sites() {
  static std::atomic<const char*> sites[kMaxTrackedThreads] = {};
  return sites;
}

}  // namespace detail

// Diagnostic: the most recent CPQ_INJECT site crossed by the thread with
// first-crossing index `thread_index` (nullptr if it never crossed one).
inline const char* fault_injection_last_site(unsigned thread_index) {
  if (thread_index >= detail::kMaxTrackedThreads) return nullptr;
  return detail::last_sites()[thread_index].load(std::memory_order_relaxed);
}

namespace detail {

// Per-thread stream index in first-crossing order (see determinism note).
inline std::uint64_t injection_thread_index() {
  static std::atomic<std::uint64_t> next{0};
  thread_local const std::uint64_t index =
      next.fetch_add(1, std::memory_order_relaxed);
  return index;
}

inline void inject_point(const char* site) {
  InjectionState& state = injection_state();
  const std::uint32_t ppm = state.ppm.load(std::memory_order_relaxed);
  if (ppm == 0) return;
  if (const char* filter =
          state.site_filter.load(std::memory_order_acquire)) {
    if (std::strstr(site, filter) == nullptr) return;
  }
  const std::uint64_t tindex = injection_thread_index();
  if (tindex < kMaxTrackedThreads) {
    last_sites()[tindex].store(site, std::memory_order_relaxed);
  }
  struct Stream {
    Xoroshiro128 rng{0};
    std::uint64_t generation = 0;
  };
  thread_local Stream stream;
  const std::uint64_t generation =
      state.generation.load(std::memory_order_acquire);
  if (stream.generation != generation) {
    stream.generation = generation;
    stream.rng = Xoroshiro128(
        thread_seed(state.seed.load(std::memory_order_relaxed),
                    static_cast<unsigned>(injection_thread_index())));
  }
  if (stream.rng.next_below(1'000'000) >= ppm) return;
  state.fired.fetch_add(1, std::memory_order_relaxed);
  if (state.action.load(std::memory_order_relaxed) ==
      static_cast<std::uint8_t>(FaultAction::kThrow)) {
    throw InjectedFault(site);
  }
  switch (stream.rng.next_below(3)) {
    case 0:
      std::this_thread::yield();
      break;
    case 1:
      std::this_thread::sleep_for(std::chrono::microseconds(50));
      break;
    default:
      for (int i = 0; i < 512; ++i) cpu_relax();
      break;
  }
}

}  // namespace detail

}  // namespace cpq::validation

#define CPQ_INJECT(site) ::cpq::validation::detail::inject_point(site)

#else  // !CPQ_FAULT_INJECTION

#define CPQ_INJECT(site) ((void)0)

#endif  // CPQ_FAULT_INJECTION
