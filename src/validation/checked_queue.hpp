// CheckedQueue: an element-conservation auditing adaptor over any roster
// queue (src/queues/queue_traits.hpp concept).
//
// The fundamental safety property shared by every queue here — strict or
// relaxed — is exactly-once delivery: each inserted item is returned by
// delete_min at most once, never invented, and never lost. A queue that
// violates it can still post excellent throughput, which is precisely how
// broken structures end up in published benchmark tables. The adaptor makes
// the property checkable for *any* workload: handles record every insert and
// every successful delete into thread-local tallies (one cache line per
// thread, plain vector appends — cheap enough to leave on in stress tests),
// and an end-of-run reconcile() drains the wrapped queue and diffs the
// inserted multiset against delivered + remaining.
//
// The diff classifies every discrepancy:
//   lost        — inserted, but neither delivered nor found by the drain
//   duplicated  — delivered more often than it was inserted
//   fabricated  — delivered, but never inserted at all
//
// Items are compared as (key, value) pairs; with the harness's unique item
// ids each discrepancy is pinpointed exactly, but the accounting is multiset
// based and stays correct under arbitrary duplicate keys/values.
//
// reconcile() is not thread-safe: call it after every worker has joined.
#pragma once

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "platform/cache.hpp"

namespace cpq::validation {

struct ReconcileReport {
  std::uint64_t inserted = 0;        // insertions observed by handles
  std::uint64_t deleted = 0;         // successful delete_mins observed
  std::uint64_t drained = 0;         // items recovered by the final drain
  std::uint64_t failed_deletes = 0;  // delete_mins that reported empty
  std::uint64_t lost = 0;
  std::uint64_t duplicated = 0;
  std::uint64_t fabricated = 0;

  bool ok() const noexcept {
    return lost == 0 && duplicated == 0 && fabricated == 0;
  }

  std::string to_string() const {
    char buf[256];
    std::snprintf(
        buf, sizeof(buf),
        "inserted=%llu deleted=%llu drained=%llu failed_deletes=%llu "
        "lost=%llu duplicated=%llu fabricated=%llu",
        static_cast<unsigned long long>(inserted),
        static_cast<unsigned long long>(deleted),
        static_cast<unsigned long long>(drained),
        static_cast<unsigned long long>(failed_deletes),
        static_cast<unsigned long long>(lost),
        static_cast<unsigned long long>(duplicated),
        static_cast<unsigned long long>(fabricated));
    return buf;
  }
};

template <typename Q>
class CheckedQueue {
 private:
  struct Tally;

 public:
  using key_type = typename Q::key_type;
  using value_type = typename Q::value_type;
  using Item = std::pair<key_type, value_type>;
  using InnerHandle = decltype(std::declval<Q&>().get_handle(0u));

  CheckedQueue(unsigned max_threads, std::unique_ptr<Q> inner)
      : inner_(std::move(inner)), tallies_(max_threads) {}

  Q& inner() noexcept { return *inner_; }

  class Handle {
   public:
    void insert(key_type key, value_type value) {
      // Some wrapped handles (PriorityService) report acceptance from
      // insert(); a rejected submission (service closed mid-insert) must
      // not enter the tally or it shows up as a false `lost`.
      if constexpr (requires {
                      { inner_.insert(key, value) } -> std::convertible_to<bool>;
                    }) {
        if (inner_.insert(key, value)) {
          tally_->inserted.emplace_back(key, value);
        }
      } else {
        tally_->inserted.emplace_back(key, value);
        inner_.insert(key, value);
      }
    }

    // Policy-honouring submission passthrough (only when the wrapped handle
    // offers one, e.g. PriorityService::Handle). Records the insert only on
    // acceptance, and records nothing when the inner call throws — so
    // admission rejections and injected submit faults never skew the
    // conservation diff.
    template <typename H = InnerHandle>
    auto try_submit(key_type key, value_type value)
        -> decltype(std::declval<H&>().try_submit(key, value)) {
      const bool accepted = inner_.try_submit(key, value);
      if (accepted) tally_->inserted.emplace_back(key, value);
      return accepted;
    }

    bool delete_min(key_type& key_out, value_type& value_out) {
      if (inner_.delete_min(key_out, value_out)) {
        tally_->deleted.emplace_back(key_out, value_out);
        return true;
      }
      ++tally_->failed_deletes;
      return false;
    }

   private:
    friend class CheckedQueue;
    Handle(InnerHandle inner, Tally* tally)
        : inner_(std::move(inner)), tally_(tally) {}

    InnerHandle inner_;
    Tally* tally_;
  };

  Handle get_handle(unsigned thread_id) {
    return Handle(inner_->get_handle(thread_id),
                  &tallies_[thread_id].value);
  }

  // Close passthrough (only when the wrapped queue is closable, e.g.
  // PriorityService): lets harnesses wake submitters parked on an admission
  // bound at shutdown without reaching around the checker.
  template <typename T = Q>
  auto close() -> decltype(std::declval<T&>().close()) {
    return inner_->close();
  }

  // Drain the wrapped queue through thread-0's handle and diff the multisets.
  // Relaxed queues may report transient emptiness, so the drain re-polls
  // generously before believing an empty answer.
  ReconcileReport reconcile() {
    ReconcileReport report;
    std::vector<Item> out;
    {
      auto handle = inner_->get_handle(0);
      key_type key;
      value_type value;
      unsigned misses = 0;
      while (misses < 256) {
        if (handle.delete_min(key, value)) {
          out.emplace_back(key, value);
          misses = 0;
        } else {
          // A deadline-shedding service handle reports false while it is
          // still chewing through an expired backlog; that is progress
          // (the sheds are accounted elsewhere), not emptiness.
          if constexpr (requires { handle.last_pop_shed(); }) {
            if (handle.last_pop_shed() > 0) continue;
          }
          ++misses;
        }
      }
    }
    report.drained = out.size();

    std::vector<Item> in;
    for (auto& aligned : tallies_) {
      Tally& tally = aligned.value;
      report.inserted += tally.inserted.size();
      report.deleted += tally.deleted.size();
      report.failed_deletes += tally.failed_deletes;
      in.insert(in.end(), tally.inserted.begin(), tally.inserted.end());
      out.insert(out.end(), tally.deleted.begin(), tally.deleted.end());
    }
    std::sort(in.begin(), in.end());
    std::sort(out.begin(), out.end());

    // Walk both multisets one distinct item at a time and compare counts.
    std::size_t i = 0;
    std::size_t o = 0;
    while (i < in.size() || o < out.size()) {
      Item current;
      if (o == out.size()) {
        current = in[i];
      } else if (i == in.size()) {
        current = out[o];
      } else {
        current = std::min(in[i], out[o]);
      }
      std::uint64_t in_count = 0;
      std::uint64_t out_count = 0;
      while (i < in.size() && in[i] == current) ++i, ++in_count;
      while (o < out.size() && out[o] == current) ++o, ++out_count;
      if (in_count > out_count) {
        report.lost += in_count - out_count;
      } else if (out_count > in_count) {
        if (in_count == 0) {
          report.fabricated += out_count;
        } else {
          report.duplicated += out_count - in_count;
        }
      }
    }
    return report;
  }

 private:
  struct Tally {
    std::vector<Item> inserted;
    std::vector<Item> deleted;
    std::uint64_t failed_deletes = 0;
  };

  std::unique_ptr<Q> inner_;
  std::vector<CacheAligned<Tally>> tallies_;
};

}  // namespace cpq::validation
