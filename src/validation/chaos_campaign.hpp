// ChaosCampaign: execute a declarative fault schedule (chaos.hpp) against a
// live PriorityService and measure what the resilience layer promises.
//
// The runner drives an open-loop Poisson workload (producers submit through
// CheckedQueue so conservation is audited end-to-end; consumers record
// per-window sojourn-latency histograms) while a controller thread walks the
// schedule, applying and clearing faults at their offsets:
//
//   stall_shard / kill_shard  -> PriorityService::chaos_stall_shard
//   inject / inject_throw     -> fault_injection_configure over the
//                                CPQ_INJECT seams (site-filtered)
//
// After the run it asserts the three properties the overload work is about:
//
//   conservation  every accepted task was delivered, recovered by the final
//                 drain, or shed through the shed sink — lost must equal
//                 shed exactly, duplicated/fabricated must be zero.
//   rank error    RankEstimator violations against schedule.rank_bound are
//                 attributed per fault window (plus rank_grace_s of
//                 after-clear drain); violations OUTSIDE every window fail.
//   recovery      per scenario, the time from fault clear until the first
//                 clean window whose sojourn p99 returns within
//                 recovery_factor x the fault-free baseline p99 (or under
//                 recovery_floor_ms). A scenario that never recovers
//                 reports recovery_ms = -1 and fails the campaign.
//
// Overlapping stall scenarios compose; overlapping inject scenarios do not
// (the injection configuration is global — the last clear wins), so keep
// inject windows disjoint in schedules.
//
// The runner is deliberately bench-framework-free (histograms, watchdog,
// service, estimator only), so fault-injected test binaries can link it
// without pulling queue template instantiations in from registry.cpp and
// tripping the ODR constraint documented in tests/CMakeLists.txt.
#pragma once

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <exception>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "obs/histogram.hpp"
#include "obs/rank_estimator.hpp"
#include "obs/timeseries.hpp"
#include "platform/rng.hpp"
#include "platform/thread_util.hpp"
#include "service/priority_service.hpp"
#include "validation/chaos.hpp"
#include "validation/checked_queue.hpp"
#include "validation/fault_injection.hpp"
#include "validation/watchdog.hpp"
#include "workloads/distributions.hpp"

namespace cpq::validation {

struct ChaosScenarioOutcome {
  std::string name;
  std::string kind;
  double start_s = 0.0;
  double clear_s = 0.0;
  // Fault actually exercised. False only for inject* scenarios in a binary
  // built without CPQ_FAULT_INJECTION — reported, never silently dropped.
  bool applied = false;
  double recovery_ms = -1.0;  // -1 = p99 never came back within bounds
  double fault_p99_ms = 0.0;  // sojourn p99 over the fault window
  std::uint64_t rank_violations = 0;  // attributed to this fault's bracket
  // Independent recovery measurement from the telemetry plane: time from
  // fault clear to the first sampled snapshot with every SLO objective
  // clean (slo_breached mask == 0). -1 when the plane was not sampling
  // with an --slo spec, or when no clean snapshot followed the clear.
  // Informational — never part of ok().
  double slo_recovery_ms = -1.0;
};

struct ChaosCampaignResult {
  double baseline_p99_ms = 0.0;
  double recovery_threshold_ms = 0.0;
  std::vector<ChaosScenarioOutcome> outcomes;

  std::uint64_t submitted = 0;
  std::uint64_t delivered = 0;
  std::uint64_t drained = 0;
  std::uint64_t rejected = 0;
  std::uint64_t shed = 0;
  std::uint64_t reroutes = 0;
  std::uint64_t breaker_trips = 0;
  std::uint64_t submit_faults = 0;  // injected submit exceptions survived

  bool conservation_ok = false;
  std::string conservation;  // reconcile report + shed accounting

  double rank_bound = 0.0;
  std::uint64_t rank_samples = 0;
  std::uint64_t rank_violations_total = 0;
  std::uint64_t rank_violations_outside = 0;

  bool recovered() const noexcept {
    for (const ChaosScenarioOutcome& o : outcomes) {
      if (o.recovery_ms < 0.0) return false;
    }
    return true;
  }

  bool ok() const noexcept {
    return conservation_ok && rank_violations_outside == 0 && recovered();
  }
};

namespace detail {

// Harness item-id convention (bench_framework/harness.hpp): producer thread
// and per-thread counter packed into the value, unique across the run.
inline constexpr std::uint64_t chaos_item_id(unsigned tid,
                                             std::uint64_t counter) noexcept {
  return ((static_cast<std::uint64_t>(tid) + 1) << 40) | counter;
}

}  // namespace detail

// Run `schedule` against a service whose shards come from
// `make_shard(shard_index) -> std::unique_ptr<Q>`. The queue value type must
// satisfy the deadline-envelope constraint (unsigned 64-bit) because the
// runner packs item ids into values.
template <typename MakeShard>
auto run_chaos_campaign(const ChaosSchedule& schedule, std::uint64_t seed,
                        MakeShard&& make_shard, bool pin_threads = false)
    -> ChaosCampaignResult {
  using Q = typename decltype(make_shard(0u))::element_type;
  using Service = service::PriorityService<Q>;
  using Checked = CheckedQueue<Service>;

  ChaosCampaignResult result;
  const unsigned producers = schedule.producers;
  const unsigned consumers = schedule.consumers;
  const unsigned workers = producers + consumers;

  service::ServiceConfig scfg;
  scfg.shards = schedule.shards;
  scfg.insert_batch = schedule.insert_batch;
  scfg.delete_batch = schedule.delete_batch;
  scfg.max_in_flight = schedule.max_in_flight;
  scfg.policy = schedule.policy == "tiered"
                    ? service::AdmissionPolicy::kTiered
                    : service::AdmissionPolicy::kReject;
  scfg.tier_key_space = schedule.key_space;
  scfg.seed = seed;
  scfg.ttl_us = schedule.ttl_us;
  scfg.breaker_trip_us = schedule.breaker_trip_us;
  scfg.breaker_consecutive = schedule.breaker_consecutive;
  scfg.breaker_cooldown_us = schedule.breaker_cooldown_us;

  auto owned = std::make_unique<Service>(workers, scfg, make_shard);
  Service* svc = owned.get();
  Checked checked(workers, std::move(owned));

  std::atomic<std::uint64_t> shed_count{0};
  svc->set_shed_sink([&shed_count](std::uint64_t, std::uint64_t) {
    shed_count.fetch_add(1, std::memory_order_relaxed);
  });

  const bool rank_on = schedule.rank_bound > 0.0;
  constexpr unsigned kSamplePeriod = 64;
  if (rank_on) {
    obs::RankEstimator::global().enable(schedule.rank_bound,
                                        /*hard_bound=*/true, kSamplePeriod);
  }

  // Per-producer submit timestamps, indexed by the id's counter field;
  // written before the queue insert and read after the matching delete, so
  // the queue's own synchronization orders them.
  const std::uint64_t per_producer_cap = static_cast<std::uint64_t>(
      schedule.arrival_hz * schedule.duration_s * 2.0 + 4096.0);
  std::vector<std::vector<std::uint64_t>> stamps(producers);
  for (auto& v : stamps) v.resize(per_producer_cap, 0);

  // Per-consumer, per-window sojourn histograms (merged after the join).
  const double window_us = schedule.window_ms * 1000.0;
  const std::size_t n_windows =
      static_cast<std::size_t>(schedule.duration_s * 1000.0 /
                               schedule.window_ms) +
      2;
  std::vector<std::vector<obs::LogHistogram>> windows(consumers);
  for (auto& v : windows) v.resize(n_windows);

  std::vector<WorkerProgress> progress(workers);
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> submit_faults{0};
  // Campaign zero on the shared monotonic-ns timeline (set by the
  // controller at barrier release) — anchors schedule offsets to telemetry
  // record timestamps for the SLO-recovery scan below.
  std::atomic<std::uint64_t> campaign_t0_ns{0};
  SpinBarrier barrier(workers + 1);
  const std::uint64_t duration_us =
      static_cast<std::uint64_t>(schedule.duration_s * 1e6);

  Watchdog watchdog("chaos-campaign", progress.data(), workers,
                    watchdog_deadline(-1.0),
                    [svc](std::FILE* out) { svc->dump_stats(out); });

  // Scenario brackets for rank-violation attribution: a fault owns the
  // violations scored from its start until rank_grace_s after its clear.
  struct Bracket {
    double t;
    std::size_t scenario;
    enum class Kind { kApply, kClear, kBracketEnd } kind;
  };
  std::vector<Bracket> timeline;
  for (std::size_t i = 0; i < schedule.scenarios.size(); ++i) {
    const ChaosScenario& sc = schedule.scenarios[i];
    timeline.push_back({sc.start_s, i, Bracket::Kind::kApply});
    timeline.push_back({sc.clear_s(), i, Bracket::Kind::kClear});
    timeline.push_back(
        {sc.clear_s() + schedule.rank_grace_s, i, Bracket::Kind::kBracketEnd});
  }
  std::stable_sort(timeline.begin(), timeline.end(),
                   [](const Bracket& a, const Bracket& b) { return a.t < b.t; });

  result.outcomes.resize(schedule.scenarios.size());
  for (std::size_t i = 0; i < schedule.scenarios.size(); ++i) {
    const ChaosScenario& sc = schedule.scenarios[i];
    result.outcomes[i].name = sc.name;
    result.outcomes[i].kind = chaos_fault_kind_name(sc.kind);
    result.outcomes[i].start_s = sc.start_s;
    result.outcomes[i].clear_s = sc.clear_s();
  }

  auto apply_fault = [&](const ChaosScenario& sc) -> bool {
    switch (sc.kind) {
      case ChaosFaultKind::kStallShard:
      case ChaosFaultKind::kKillShard:
        svc->chaos_stall_shard(sc.shard, sc.effective_stall_us());
        return true;
      case ChaosFaultKind::kInject:
      case ChaosFaultKind::kInjectThrow:
#if defined(CPQ_FAULT_INJECTION)
        fault_injection_configure(
            sc.ppm, seed,
            sc.kind == ChaosFaultKind::kInjectThrow ? FaultAction::kThrow
                                                    : FaultAction::kDelay,
            sc.site.empty() ? nullptr : sc.site.c_str());
        return true;
#else
        std::fprintf(stderr,
                     "[chaos] scenario '%s': fault injection not compiled "
                     "in, fault is inert\n",
                     sc.name.c_str());
        return false;
#endif
    }
    return false;
  };
  auto clear_fault = [&](const ChaosScenario& sc) {
    switch (sc.kind) {
      case ChaosFaultKind::kStallShard:
      case ChaosFaultKind::kKillShard:
        svc->chaos_stall_shard(sc.shard, 0);
        break;
      case ChaosFaultKind::kInject:
      case ChaosFaultKind::kInjectThrow:
#if defined(CPQ_FAULT_INJECTION)
        fault_injection_configure(0, seed);
#endif
        break;
    }
  };

  std::uint64_t violations_before_stop = 0;
  run_team(
      workers + 1,
      [&](unsigned tid) {
        if (tid == workers) {
          // ---- controller: walk the fault timeline ----
          barrier.arrive_and_wait();
          const auto t0 = std::chrono::steady_clock::now();
          campaign_t0_ns.store(
              static_cast<std::uint64_t>(
                  std::chrono::duration_cast<std::chrono::nanoseconds>(
                      t0.time_since_epoch())
                      .count()),
              std::memory_order_relaxed);
          std::uint64_t last_violations = 0;
          unsigned open_brackets = 0;
          auto note_violations = [&](std::size_t owner) {
            if (!rank_on) return;
            const std::uint64_t v =
                obs::RankEstimator::global().snapshot().violations;
            if (open_brackets > 0 && owner != schedule.scenarios.size()) {
              result.outcomes[owner].rank_violations += v - last_violations;
            }
            last_violations = v;
          };
          for (const Bracket& event : timeline) {
            std::this_thread::sleep_until(
                t0 + std::chrono::duration<double>(event.t));
            const ChaosScenario& sc = schedule.scenarios[event.scenario];
            switch (event.kind) {
              case Bracket::Kind::kApply:
                // Violations scored before this fault belong to whichever
                // bracket (if any) was already open; credit them there by
                // reading the counter, then open ours.
                note_violations(event.scenario);
                ++open_brackets;
                result.outcomes[event.scenario].applied = apply_fault(sc);
                break;
              case Bracket::Kind::kClear:
                clear_fault(sc);
                break;
              case Bracket::Kind::kBracketEnd:
                note_violations(event.scenario);
                --open_brackets;
                break;
            }
          }
          std::this_thread::sleep_until(
              t0 + std::chrono::duration<double>(schedule.duration_s));
          if (rank_on) {
            violations_before_stop =
                obs::RankEstimator::global().snapshot().violations;
            // Anything scored after the last bracket closed and before the
            // stop is outside every fault window.
            (void)last_violations;
          }
          stop.store(true, std::memory_order_release);
          return;
        }
        if (pin_threads) pin_to_core(tid);
        auto handle = checked.get_handle(tid);
        Xoroshiro128 rng(thread_seed(seed ^ 0xc4a05, tid));
        std::uint64_t ops = 0;
        barrier.arrive_and_wait();
        const std::uint64_t start_us = service::steady_now_us();
        const std::uint64_t end_us = start_us + duration_us;
        if (tid < producers) {
          // ---- open-loop Poisson producer ----
          const double mean_gap_us = 1e6 / schedule.arrival_hz;
          double next_due = static_cast<double>(start_us);
          std::uint64_t counter = 0;
          std::uint64_t faults = 0;
          std::vector<std::uint64_t>& ts = stamps[tid];
          // Optional hotspot skew: faults then hammer a popular key range
          // at the delete_min end instead of a uniform keyspace.
          std::optional<workloads::HotspotSampler> hotspot;
          if (schedule.hot_keys > 0.0) {
            hotspot.emplace(schedule.key_space, schedule.hot_ops,
                            schedule.hot_keys);
          }
          for (;;) {
            const std::uint64_t now = service::steady_now_us();
            if (now >= end_us || counter >= per_producer_cap) break;
            if (static_cast<double>(now) < next_due) {
              const double wait = next_due - static_cast<double>(now);
              if (wait > 100.0) {
                std::this_thread::sleep_for(std::chrono::microseconds(
                    static_cast<std::uint64_t>(wait)));
              } else {
                cpu_relax();
              }
              continue;
            }
            const std::uint64_t key = hotspot
                                          ? hotspot->next(rng)
                                          : rng.next_below(schedule.key_space);
            const std::uint64_t id = detail::chaos_item_id(tid, counter);
            ts[counter] = now;
            bool accepted = false;
            try {
              accepted = handle.try_submit(key, id);
            } catch (const std::exception&) {
              ++faults;  // injected submit fault: task was never accepted
            }
            if (accepted) {
              if (rank_on && (counter % kSamplePeriod) == 0) {
                obs::RankEstimator::global().observe_insert(key);
              }
            }
            ++counter;
            next_due += -std::log(1.0 - rng.next_double()) * mean_gap_us;
            progress[tid].tick(++ops, LastOp::kInsert);
          }
          submit_faults.fetch_add(faults, std::memory_order_relaxed);
          return;
        }
        // ---- consumer ----
        std::vector<obs::LogHistogram>& wins = windows[tid - producers];
        std::uint64_t deliveries = 0;
        while (!stop.load(std::memory_order_acquire)) {
          std::uint64_t key = 0;
          std::uint64_t id = 0;
          bool hit = false;
          try {
            hit = handle.delete_min(key, id);
          } catch (const std::exception&) {
            hit = false;  // injected delete fault: nothing was popped
          }
          const std::uint64_t now = service::steady_now_us();
          if (hit) {
            const unsigned src = static_cast<unsigned>((id >> 40) - 1);
            const std::uint64_t counter = id & ((std::uint64_t{1} << 40) - 1);
            std::uint64_t sojourn = 1;
            if (src < producers && counter < per_producer_cap) {
              const std::uint64_t submitted_at = stamps[src][counter];
              sojourn = now > submitted_at ? now - submitted_at : 1;
            }
            std::size_t w = static_cast<std::size_t>(
                static_cast<double>(now - start_us) / window_us);
            if (w >= n_windows) w = n_windows - 1;
            wins[w].record(sojourn);
            ++deliveries;
            if (rank_on && (deliveries % kSamplePeriod) == 0) {
              obs::RankEstimator::global().observe_delete(key);
            }
            progress[tid].tick(++ops, LastOp::kDeleteHit);
          } else {
            std::this_thread::sleep_for(std::chrono::microseconds(20));
            progress[tid].tick(++ops, LastOp::kDeleteEmpty);
          }
        }
      },
      /*pin=*/false);
  watchdog.stop();

  // Defensive: no fault outlives the run, whatever the schedule said.
  for (unsigned s = 0; s < svc->shard_count(); ++s) svc->chaos_stall_shard(s, 0);
#if defined(CPQ_FAULT_INJECTION)
  fault_injection_configure(0, seed);
#endif

  svc->close();
  const ReconcileReport report = checked.reconcile();
  const std::uint64_t shed_total = shed_count.load(std::memory_order_relaxed);
  // Shed tasks were accepted but intentionally never delivered: the diff
  // reports them as lost, and every lost item must be accounted for by the
  // shed sink — no more, no fewer.
  result.conservation_ok = report.duplicated == 0 && report.fabricated == 0 &&
                           report.lost == shed_total;
  result.conservation =
      report.to_string() + " shed=" + std::to_string(shed_total);
  result.drained = report.drained;
  result.shed = shed_total;
  result.submit_faults = submit_faults.load(std::memory_order_relaxed);

  const service::ServiceStats stats = svc->stats();
  result.submitted = stats.submitted;
  result.delivered = stats.delivered;
  result.rejected = stats.rejected;
  result.reroutes = stats.reroutes;
  result.breaker_trips = stats.breaker_trips;

  if (rank_on) {
    const obs::RankEstimator::Snapshot snap =
        obs::RankEstimator::global().snapshot();
    obs::RankEstimator::global().disable();
    result.rank_bound = schedule.rank_bound;
    result.rank_samples = snap.samples;
    // The reconcile drain above is not traced, so the counter is frozen at
    // its value when the workers stopped.
    result.rank_violations_total = snap.violations;
    std::uint64_t inside = 0;
    for (const ChaosScenarioOutcome& o : result.outcomes) {
      inside += o.rank_violations;
    }
    result.rank_violations_outside =
        result.rank_violations_total >= inside
            ? result.rank_violations_total - inside
            : 0;
    (void)violations_before_stop;
  }

  // ---- merge windows and score recovery ----
  std::vector<obs::LogHistogram> merged(n_windows);
  for (const auto& per_consumer : windows) {
    for (std::size_t w = 0; w < n_windows; ++w) {
      merged[w].merge(per_consumer[w]);
    }
  }
  const double window_s = schedule.window_ms / 1000.0;
  obs::LogHistogram baseline;
  for (std::size_t w = 0; w < n_windows; ++w) {
    if (static_cast<double>(w + 1) * window_s <= schedule.baseline_s) {
      baseline.merge(merged[w]);
    }
  }
  result.baseline_p99_ms =
      static_cast<double>(baseline.quantile(0.99)) / 1000.0;
  result.recovery_threshold_ms =
      std::max(schedule.recovery_factor * result.baseline_p99_ms,
               schedule.recovery_floor_ms);

  auto in_any_fault_window = [&](double lo_s, double hi_s) {
    for (const ChaosScenario& sc : schedule.scenarios) {
      if (lo_s < sc.clear_s() && hi_s > sc.start_s) return true;
    }
    return false;
  };
  for (std::size_t i = 0; i < schedule.scenarios.size(); ++i) {
    const ChaosScenario& sc = schedule.scenarios[i];
    ChaosScenarioOutcome& outcome = result.outcomes[i];
    obs::LogHistogram fault_hist;
    for (std::size_t w = 0; w < n_windows; ++w) {
      const double lo = static_cast<double>(w) * window_s;
      const double hi = lo + window_s;
      if (lo < sc.clear_s() && hi > sc.start_s) fault_hist.merge(merged[w]);
    }
    outcome.fault_p99_ms =
        static_cast<double>(fault_hist.quantile(0.99)) / 1000.0;
    for (std::size_t w = 0; w < n_windows; ++w) {
      const double lo = static_cast<double>(w) * window_s;
      const double hi = lo + window_s;
      if (lo < sc.clear_s()) continue;           // not past this fault yet
      if (hi > schedule.duration_s) break;       // truncated tail window
      if (in_any_fault_window(lo, hi)) continue; // some other fault active
      if (merged[w].count() == 0) continue;      // nothing delivered: opaque
      const double p99_ms =
          static_cast<double>(merged[w].quantile(0.99)) / 1000.0;
      if (p99_ms <= result.recovery_threshold_ms) {
        outcome.recovery_ms = (hi - sc.clear_s()) * 1000.0;
        break;
      }
    }
  }

  // ---- measured SLO recovery from the telemetry plane ----
  // When the run was sampled with an --slo spec, score each scenario a
  // second, independent recovery time: the gap from fault clear to the
  // first telemetry snapshot whose per-sample violation mask is clean.
  // Record timestamps and steady_now_us() share the monotonic timeline
  // (platform/clock.hpp); the TSC extrapolation error over a campaign is
  // well under one sampling interval.
  {
    obs::TelemetryPlane& plane = obs::TelemetryPlane::global();
    const std::uint64_t anchor =
        campaign_t0_ns.load(std::memory_order_relaxed);
    if (anchor != 0 && plane.slo_configured() && plane.sample_count() > 0) {
      for (std::size_t i = 0; i < schedule.scenarios.size(); ++i) {
        const std::uint64_t clear_ns =
            anchor + static_cast<std::uint64_t>(
                         schedule.scenarios[i].clear_s() * 1e9);
        double rec = -1.0;
        plane.visit_records([&](const obs::TelemetryRecord& r) {
          if (rec >= 0.0 || r.t_ns < clear_ns) return;
          if (r.slo_breached == 0) {
            rec = static_cast<double>(r.t_ns - clear_ns) / 1e6;
          }
        });
        result.outcomes[i].slo_recovery_ms = rec;
      }
    }
  }
  return result;
}

// One-line-per-scenario human-readable campaign report.
inline void print_chaos_result(std::FILE* out,
                               const ChaosCampaignResult& result) {
  std::fprintf(out,
               "# chaos: baseline_p99=%.3fms threshold=%.3fms submitted=%llu "
               "delivered=%llu drained=%llu shed=%llu rejected=%llu "
               "reroutes=%llu breaker_trips=%llu submit_faults=%llu\n",
               result.baseline_p99_ms, result.recovery_threshold_ms,
               static_cast<unsigned long long>(result.submitted),
               static_cast<unsigned long long>(result.delivered),
               static_cast<unsigned long long>(result.drained),
               static_cast<unsigned long long>(result.shed),
               static_cast<unsigned long long>(result.rejected),
               static_cast<unsigned long long>(result.reroutes),
               static_cast<unsigned long long>(result.breaker_trips),
               static_cast<unsigned long long>(result.submit_faults));
  std::fprintf(out, "# chaos: conservation %s (%s)\n",
               result.conservation_ok ? "OK" : "VIOLATED",
               result.conservation.c_str());
  if (result.rank_bound > 0.0) {
    std::fprintf(out,
                 "# chaos: rank bound=%.0f samples=%llu violations=%llu "
                 "(outside fault windows: %llu)\n",
                 result.rank_bound,
                 static_cast<unsigned long long>(result.rank_samples),
                 static_cast<unsigned long long>(result.rank_violations_total),
                 static_cast<unsigned long long>(
                     result.rank_violations_outside));
  }
  for (const ChaosScenarioOutcome& o : result.outcomes) {
    char slo_buf[48] = "";
    if (o.slo_recovery_ms >= 0.0) {
      std::snprintf(slo_buf, sizeof(slo_buf), " slo_recovery=%.0fms",
                    o.slo_recovery_ms);
    }
    std::fprintf(out,
                 "# chaos:   %-20s %-12s [%.2fs..%.2fs]%s fault_p99=%.3fms "
                 "recovery=%s%s\n",
                 o.name.c_str(), o.kind.c_str(), o.start_s, o.clear_s,
                 o.applied ? "" : " (inert)", o.fault_p99_ms,
                 o.recovery_ms >= 0.0
                     ? (std::to_string(o.recovery_ms) + "ms").c_str()
                     : "NEVER",
                 slo_buf);
  }
}

}  // namespace cpq::validation
