// PriorityService: a sharded, batched task-dispatch engine over any roster
// queue (src/queues/queue_traits.hpp concept).
//
// The paper's central observation is that workload shape — not raw
// throughput — decides which queue wins; a service front-end is where that
// shape is actually controlled. This layer applies the two levers the
// follow-up literature identifies as decisive: insertion/deletion buffering
// ("Engineering MultiQueues", Williams & Sanders; the k-LSM's thread-local
// DLSM blocks) and sharded two-choice routing. It wraps S independent
// instances of an arbitrary queue and gives every client thread a Handle
// with:
//
//   * an insertion buffer: submissions accumulate thread-locally and are
//     flushed to one shard as a batch (amortizing the shard's
//     synchronization over `insert_batch` tasks). The target shard is the
//     less loaded of two uniformly random choices, which keeps shard sizes
//     balanced within O(log log S) whp. A configurable flush deadline bounds
//     how long a task may sit unpublished in a buffer.
//   * a deletion buffer: pops refill thread-locally in batches of
//     `delete_batch` from the shard whose last observed minimum is smaller
//     (two-choice routing on pop); when the favoured shard is empty the
//     handle *steals* from the other choice, and as a last resort sweeps
//     every shard so that emptiness reports are trustworthy.
//   * admission control: a global in-flight bound with reject or block
//     (backpressure) policy, plus graceful close() + drain() shutdown.
//
// Ordering contract: the service inherits the relaxation of its shard queue
// and adds its own — buffered tasks are invisible to other threads until
// flushed, and prefetched tasks are delivered in batch order. Rank error
// therefore grows with insert_batch * shards + delete_batch (measured by
// bench/bench_service.cpp). Conservation (exactly-once delivery) is NOT
// relaxed: every accepted task is delivered exactly once or recovered by
// drain(); handles flush their insertion buffer and spill unconsumed
// prefetched tasks back to a shard on destruction. tests/torture_test.cpp
// audits this through CheckedQueue under fault injection for every roster
// queue.
//
// Counters: per-shard (enqueued, dequeued, flushes, refills, steals, batch
// fill) and service-wide (submitted, rejected, deadline flushes), readable
// via stats() and dumpable through dump_stats() — which the open-loop bench
// installs as the watchdog's diagnostics callback, so a livelocked service
// run dies with a per-shard picture of where tasks piled up.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <limits>
#include <memory>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"
#include "platform/backoff.hpp"
#include "platform/cache.hpp"
#include "platform/rng.hpp"

namespace cpq::service {

enum class AdmissionPolicy : std::uint8_t {
  kBlock,   // submitters wait (backpressure) until in-flight drops
  kReject,  // try_submit returns false immediately when full
};

struct ServiceConfig {
  // Shard count; 0 means one shard per client thread (at least one).
  unsigned shards = 0;
  // Insertion-buffer capacity per handle; 1 disables insert batching.
  std::size_t insert_batch = 8;
  // Deletion-buffer refill size per handle; 1 disables pop batching.
  std::size_t delete_batch = 8;
  // Flush the insertion buffer on the next submit once its oldest task has
  // been buffered for this long; 0 disables deadline-based flushing.
  std::uint64_t flush_deadline_us = 0;
  // Admission bound on accepted-but-undelivered tasks; 0 = unbounded.
  std::size_t max_in_flight = 0;
  AdmissionPolicy policy = AdmissionPolicy::kBlock;
  std::uint64_t seed = 1;
};

struct ShardStats {
  std::uint64_t enqueued = 0;   // tasks flushed into the shard
  std::uint64_t dequeued = 0;   // tasks popped out of the shard
  std::uint64_t flushes = 0;    // insertion-buffer flushes landing here
  std::uint64_t refills = 0;    // deletion-buffer refills served here
  std::uint64_t steals = 0;     // refills served when not the routed choice
  std::size_t approx_size = 0;  // load estimate (racy)
};

struct ServiceStats {
  std::uint64_t submitted = 0;         // accepted tasks
  std::uint64_t rejected = 0;          // admission rejections
  std::uint64_t delivered = 0;         // tasks handed to consumers
  std::uint64_t deadline_flushes = 0;  // flushes forced by the deadline
  std::uint64_t flushes = 0;           // all insertion-buffer flushes
  std::uint64_t refills = 0;           // all deletion-buffer refills
  std::uint64_t steals = 0;            // all stolen refills
  double mean_insert_fill = 0.0;       // tasks per flush
  double mean_delete_fill = 0.0;       // tasks per refill
  std::vector<ShardStats> shards;
};

template <typename Q>
class PriorityService {
 public:
  using key_type = typename Q::key_type;
  using value_type = typename Q::value_type;
  using InnerHandle = decltype(std::declval<Q&>().get_handle(0u));

  // `make_shard(shard_index)` constructs one shard queue; every shard must
  // accept get_handle(tid) for tid in [0, max_threads).
  template <typename ShardFactory>
  PriorityService(unsigned max_threads, const ServiceConfig& config,
                  ShardFactory&& make_shard)
      : config_(sanitize(config, max_threads)),
        shards_(config_.shards) {
    for (unsigned s = 0; s < config_.shards; ++s) {
      shards_[s].value.queue = make_shard(s);
    }
  }

  class Handle {
   public:
    Handle(Handle&&) = default;
    Handle& operator=(Handle&&) = delete;

    // Queue-concept insert: never drops an accepted task. Blocks for a slot
    // regardless of the configured policy (use try_submit for kReject
    // semantics); the only way it can fail is a close()d service, which is a
    // shutdown-ordering bug on the caller's side and is counted as rejected.
    void insert(key_type key, value_type value) { (void)submit(key, value, true); }

    // Policy-honouring submission. Returns false (and counts a rejection)
    // when the service is closed, or when the in-flight bound is hit under
    // AdmissionPolicy::kReject.
    bool try_submit(key_type key, value_type value) {
      return submit(key, value, config().policy == AdmissionPolicy::kBlock);
    }

    bool delete_min(key_type& key_out, value_type& value_out) {
      if (dpos_ == dbuf_.size()) {
        refill();
        if (dpos_ == dbuf_.size() && !ibuf_.empty()) {
          // Everything left may be sitting in our own insertion buffer (the
          // hold-model shape: pop depends on a task we just submitted).
          flush(false);
          refill();
        }
        if (dpos_ == dbuf_.size()) return false;
      }
      key_out = dbuf_[dpos_].first;
      value_out = dbuf_[dpos_].second;
      ++dpos_;
      service_->delivered_.fetch_add(1, std::memory_order_relaxed);
      service_->release_slot();
      return true;
    }

    // Publish every buffered submission now (deadline/batch independent).
    void flush() { flush(false); }

    std::size_t buffered_inserts() const noexcept { return ibuf_.size(); }
    std::size_t buffered_deletes() const noexcept {
      return dbuf_.size() - dpos_;
    }

    ~Handle() {
      if (service_ == nullptr) return;  // moved from
      flush(false);
      // Spill prefetched-but-unconsumed tasks back into a shard so they stay
      // deliverable (their in-flight slots are still held, correctly).
      while (dpos_ < dbuf_.size()) {
        const std::size_t s = rng_.next_below(service_->shards_.size());
        service_->shards_[s].value.push(inner_[s], dbuf_[dpos_].first,
                                        dbuf_[dpos_].second);
        ++dpos_;
      }
    }

   private:
    friend class PriorityService;

    Handle(PriorityService& service, unsigned thread_id)
        : service_(&service),
          rng_(thread_seed(service.config_.seed ^ 0x5e11ce, thread_id)) {
      inner_.reserve(service.shards_.size());
      for (auto& shard : service.shards_) {
        inner_.push_back(shard.value.queue->get_handle(thread_id));
      }
      ibuf_.reserve(service.config_.insert_batch);
      dbuf_.reserve(service.config_.delete_batch);
    }

    const ServiceConfig& config() const noexcept { return service_->config_; }

    bool submit(key_type key, value_type value, bool block) {
      if (!service_->acquire_slot(block)) {
        CPQ_COUNT(kServiceReject);
        service_->rejected_.fetch_add(1, std::memory_order_relaxed);
        return false;
      }
      service_->submitted_.fetch_add(1, std::memory_order_relaxed);
      if (ibuf_.empty()) ibuf_oldest_ = std::chrono::steady_clock::now();
      ibuf_.emplace_back(key, value);
      if (ibuf_.size() >= config().insert_batch) {
        flush(false);
      } else if (config().flush_deadline_us != 0 && deadline_expired()) {
        flush(true);
      }
      return true;
    }

    bool deadline_expired() const {
      const auto age = std::chrono::steady_clock::now() - ibuf_oldest_;
      return std::chrono::duration_cast<std::chrono::microseconds>(age)
                 .count() >=
             static_cast<std::int64_t>(config().flush_deadline_us);
    }

    void flush(bool deadline) {
      if (ibuf_.empty()) return;
      auto& shards = service_->shards_;
      // Two-choice load balancing: flush into the smaller of two shards.
      std::size_t a = rng_.next_below(shards.size());
      std::size_t b = rng_.next_below(shards.size());
      if (shards[b].value.size.load(std::memory_order_relaxed) <
          shards[a].value.size.load(std::memory_order_relaxed)) {
        a = b;
      }
      auto& shard = shards[a].value;
      for (const auto& [key, value] : ibuf_) {
        shard.push(inner_[a], key, value);
      }
      CPQ_COUNT(kServiceFlush);
      shard.flushes.fetch_add(1, std::memory_order_relaxed);
      shard.flush_fill.fetch_add(ibuf_.size(), std::memory_order_relaxed);
      if (deadline) {
        CPQ_COUNT(kServiceDeadlineFlush);
        service_->deadline_flushes_.fetch_add(1, std::memory_order_relaxed);
      }
      ibuf_.clear();
    }

    // Pull up to delete_batch tasks from the two-choice-routed shard, with
    // steal fallback and a full sweep before reporting emptiness.
    void refill() {
      dbuf_.clear();
      dpos_ = 0;
      auto& shards = service_->shards_;
      const std::size_t n = shards.size();
      const std::size_t i = rng_.next_below(n);
      std::size_t j = rng_.next_below(n);
      // Route to the shard advertising the smaller minimum (pop side of the
      // two-choice rule); unknown minima (kNoHint) lose against known ones.
      const key_type hint_i =
          shards[i].value.min_hint.load(std::memory_order_acquire);
      const key_type hint_j =
          shards[j].value.min_hint.load(std::memory_order_acquire);
      const std::size_t first = (hint_j < hint_i) ? j : i;
      const std::size_t second = (first == i) ? j : i;
      if (refill_from(first, /*steal=*/false)) return;
      if (second != first && refill_from(second, /*steal=*/true)) return;
      // Both choices looked empty: sweep every shard so that a false return
      // from delete_min means every shard really reported empty just now.
      const std::size_t start = rng_.next_below(n);
      for (std::size_t probe = 0; probe < n; ++probe) {
        const std::size_t s = (start + probe) % n;
        if (s == first || s == second) continue;
        if (refill_from(s, /*steal=*/true)) return;
      }
    }

    bool refill_from(std::size_t s, bool steal) {
      auto& shard = service_->shards_[s].value;
      key_type key;
      value_type value;
      std::size_t got = 0;
      while (got < config().delete_batch &&
             inner_[s].delete_min(key, value)) {
        dbuf_.emplace_back(key, value);
        ++got;
      }
      if (got == 0) {
        shard.note_empty();
        return false;
      }
      shard.note_popped(got, dbuf_.back().first,
                        got < config().delete_batch);
      if (steal) {
        CPQ_COUNT(kServiceSteal);
        shard.steals.fetch_add(1, std::memory_order_relaxed);
      } else {
        CPQ_COUNT(kServiceRefill);
      }
      shard.refills.fetch_add(1, std::memory_order_relaxed);
      shard.refill_fill.fetch_add(got, std::memory_order_relaxed);
      return true;
    }

    PriorityService* service_;
    std::vector<InnerHandle> inner_;  // one per shard
    std::vector<std::pair<key_type, value_type>> ibuf_;
    std::chrono::steady_clock::time_point ibuf_oldest_{};
    std::vector<std::pair<key_type, value_type>> dbuf_;
    std::size_t dpos_ = 0;
    Xoroshiro128 rng_;
  };

  Handle get_handle(unsigned thread_id) { return Handle(*this, thread_id); }

  // Stop admitting work: subsequent submissions fail (and are counted as
  // rejected); submitters blocked on the in-flight bound wake up and fail.
  // Already-accepted tasks stay deliverable.
  void close() noexcept { closed_.store(true, std::memory_order_release); }
  bool closed() const noexcept {
    return closed_.load(std::memory_order_acquire);
  }

  // Pop every remaining task into `sink(key, value)`. Call after every
  // worker handle has been destroyed (which flushes their buffers); the
  // drain itself re-polls each shard so relaxed transient emptiness cannot
  // hide tasks. Returns the number of drained tasks.
  template <typename Sink>
  std::size_t drain(Sink&& sink) {
    auto handle = get_handle(0);
    key_type key;
    value_type value;
    std::size_t drained = 0;
    unsigned misses = 0;
    while (misses < 8) {
      if (handle.delete_min(key, value)) {
        sink(key, value);
        ++drained;
        misses = 0;
      } else {
        ++misses;  // delete_min already swept every shard
      }
    }
    return drained;
  }

  std::size_t in_flight() const noexcept {
    return in_flight_.load(std::memory_order_relaxed);
  }

  unsigned shard_count() const noexcept {
    return static_cast<unsigned>(shards_.size());
  }

  const ServiceConfig& config() const noexcept { return config_; }

  ServiceStats stats() const {
    ServiceStats out;
    out.submitted = submitted_.load(std::memory_order_relaxed);
    out.rejected = rejected_.load(std::memory_order_relaxed);
    out.delivered = delivered_.load(std::memory_order_relaxed);
    out.deadline_flushes = deadline_flushes_.load(std::memory_order_relaxed);
    std::uint64_t flush_fill = 0;
    std::uint64_t refill_fill = 0;
    for (const auto& aligned : shards_) {
      const Shard& shard = aligned.value;
      ShardStats s;
      s.enqueued = shard.enqueued.load(std::memory_order_relaxed);
      s.dequeued = shard.dequeued.load(std::memory_order_relaxed);
      s.flushes = shard.flushes.load(std::memory_order_relaxed);
      s.refills = shard.refills.load(std::memory_order_relaxed);
      s.steals = shard.steals.load(std::memory_order_relaxed);
      s.approx_size = shard.size.load(std::memory_order_relaxed);
      out.flushes += s.flushes;
      out.refills += s.refills;
      out.steals += s.steals;
      flush_fill += shard.flush_fill.load(std::memory_order_relaxed);
      refill_fill += shard.refill_fill.load(std::memory_order_relaxed);
      out.shards.push_back(s);
    }
    if (out.flushes > 0) {
      out.mean_insert_fill =
          static_cast<double>(flush_fill) / static_cast<double>(out.flushes);
    }
    if (out.refills > 0) {
      out.mean_delete_fill =
          static_cast<double>(refill_fill) / static_cast<double>(out.refills);
    }
    return out;
  }

  // Human-readable per-shard counter dump; installed as the watchdog's
  // diagnostics callback by the service bench so livelocks die loudly with
  // the shard-level picture.
  void dump_stats(std::FILE* out) const {
    const ServiceStats s = stats();
    std::fprintf(out,
                 "[cpq-service] submitted=%llu delivered=%llu rejected=%llu "
                 "in_flight=%zu deadline_flushes=%llu mean_fill=%.2f/%.2f\n",
                 static_cast<unsigned long long>(s.submitted),
                 static_cast<unsigned long long>(s.delivered),
                 static_cast<unsigned long long>(s.rejected), in_flight(),
                 static_cast<unsigned long long>(s.deadline_flushes),
                 s.mean_insert_fill, s.mean_delete_fill);
    for (std::size_t i = 0; i < s.shards.size(); ++i) {
      const ShardStats& sh = s.shards[i];
      std::fprintf(out,
                   "[cpq-service]   shard %zu: enq=%llu deq=%llu size~%zu "
                   "flushes=%llu refills=%llu steals=%llu\n",
                   i, static_cast<unsigned long long>(sh.enqueued),
                   static_cast<unsigned long long>(sh.dequeued),
                   sh.approx_size, static_cast<unsigned long long>(sh.flushes),
                   static_cast<unsigned long long>(sh.refills),
                   static_cast<unsigned long long>(sh.steals));
    }
  }

 private:
  // Per-shard load/minimum hints are heuristics for routing only; the
  // refill sweep never trusts them for emptiness (the MultiQueue mirror
  // lesson: a hint equal to the maximal key cannot hide real items).
  static constexpr key_type kNoHint = std::numeric_limits<key_type>::max();

  struct Shard {
    std::unique_ptr<Q> queue;
    std::atomic<key_type> min_hint{kNoHint};
    std::atomic<std::size_t> size{0};
    std::atomic<std::uint64_t> enqueued{0};
    std::atomic<std::uint64_t> dequeued{0};
    std::atomic<std::uint64_t> flushes{0};
    std::atomic<std::uint64_t> refills{0};
    std::atomic<std::uint64_t> steals{0};
    std::atomic<std::uint64_t> flush_fill{0};
    std::atomic<std::uint64_t> refill_fill{0};

    void push(InnerHandle& handle, key_type key, value_type value) {
      handle.insert(key, value);
      size.fetch_add(1, std::memory_order_relaxed);
      enqueued.fetch_add(1, std::memory_order_relaxed);
      // Monotone CAS-min keeps the hint a lower-ish bound on the content.
      key_type seen = min_hint.load(std::memory_order_relaxed);
      while (key < seen && !min_hint.compare_exchange_weak(
                               seen, key, std::memory_order_release,
                               std::memory_order_relaxed)) {
      }
    }

    void note_popped(std::size_t count, key_type last_key,
                     bool now_empty) noexcept {
      dequeued.fetch_add(count, std::memory_order_relaxed);
      std::size_t seen = size.load(std::memory_order_relaxed);
      while (!size.compare_exchange_weak(
          seen, seen >= count ? seen - count : 0, std::memory_order_relaxed,
          std::memory_order_relaxed)) {
      }
      // Remaining shard content is (approximately) >= the last popped key;
      // an exhausted shard advertises "unknown/empty".
      min_hint.store(now_empty ? kNoHint : last_key,
                     std::memory_order_release);
    }

    void note_empty() noexcept {
      min_hint.store(kNoHint, std::memory_order_release);
    }
  };

  static ServiceConfig sanitize(ServiceConfig config, unsigned max_threads) {
    if (config.shards == 0) config.shards = max_threads == 0 ? 1 : max_threads;
    if (config.insert_batch == 0) config.insert_batch = 1;
    if (config.delete_batch == 0) config.delete_batch = 1;
    return config;
  }

  bool acquire_slot(bool block) {
    if (closed()) return false;
    if (config_.max_in_flight == 0) {
      in_flight_.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
    Backoff backoff;
    for (;;) {
      std::size_t current = in_flight_.load(std::memory_order_relaxed);
      if (current < config_.max_in_flight) {
        if (in_flight_.compare_exchange_weak(current, current + 1,
                                             std::memory_order_acquire,
                                             std::memory_order_relaxed)) {
          return true;
        }
        continue;
      }
      if (!block || closed()) return false;
      backoff.pause();
    }
  }

  void release_slot() noexcept {
    in_flight_.fetch_sub(1, std::memory_order_release);
  }

  ServiceConfig config_;
  std::vector<CacheAligned<Shard>> shards_;
  std::atomic<std::size_t> in_flight_{0};
  std::atomic<std::uint64_t> submitted_{0};
  std::atomic<std::uint64_t> rejected_{0};
  std::atomic<std::uint64_t> delivered_{0};
  std::atomic<std::uint64_t> deadline_flushes_{0};
  std::atomic<bool> closed_{false};

  friend class Handle;
};

}  // namespace cpq::service
