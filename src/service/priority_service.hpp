// PriorityService: a sharded, batched task-dispatch engine over any roster
// queue (src/queues/queue_traits.hpp concept).
//
// The paper's central observation is that workload shape — not raw
// throughput — decides which queue wins; a service front-end is where that
// shape is actually controlled. This layer applies the two levers the
// follow-up literature identifies as decisive: insertion/deletion buffering
// ("Engineering MultiQueues", Williams & Sanders; the k-LSM's thread-local
// DLSM blocks) and sharded two-choice routing. It wraps S independent
// instances of an arbitrary queue and gives every client thread a Handle
// with:
//
//   * an insertion buffer: submissions accumulate thread-locally and are
//     flushed to one shard as a batch (amortizing the shard's
//     synchronization over `insert_batch` tasks). The target shard is the
//     less loaded of two uniformly random choices, which keeps shard sizes
//     balanced within O(log log S) whp. A configurable flush deadline bounds
//     how long a task may sit unpublished in a buffer.
//   * a deletion buffer: pops refill thread-locally in batches of
//     `delete_batch` from the shard whose last observed minimum is smaller
//     (two-choice routing on pop); when the favoured shard is empty the
//     handle *steals* from the other choice, and as a last resort sweeps
//     every shard so that emptiness reports are trustworthy.
//   * admission control: a global in-flight bound with reject, block
//     (backpressure), or tiered policy, plus graceful close() + drain()
//     shutdown.
//
// Overload resilience (see service/resilience.hpp for the building blocks):
//
//   * deadline shedding: with ttl_us configured (or try_submit_for), tasks
//     carry an absolute expiry; expired tasks are dropped at pop time,
//     counted, and reported to an optional shed sink instead of delivered.
//     Deadlines ride in a DeadlinePool slot whose index replaces the queue
//     value (top bit tagged), so the inner queue's value type is unchanged —
//     this requires unsigned 64-bit values below 2^63.
//   * tiered admission (AdmissionPolicy::kTiered): the key space is split
//     into priority tiers and low-priority tiers are rejected first as the
//     in-flight window fills, instead of the binary full/not-full cliff.
//   * bounded retry: submit_with_retry retries rejected submissions with
//     exponential backoff up to retry_limit times.
//   * per-shard circuit breaker: flush/refill batches that repeatedly exceed
//     breaker_trip_us take the shard out of preferred routing for a cooldown
//     (re-routes are counted); a half-open probe admits it back. The breaker
//     only steers the two-choice routing — the emptiness sweep still visits
//     every shard, so delete_min's false and drain() stay trustworthy.
//
// Ordering contract: the service inherits the relaxation of its shard queue
// and adds its own — buffered tasks are invisible to other threads until
// flushed, and prefetched tasks are delivered in batch order. Rank error
// therefore grows with insert_batch * shards + delete_batch (measured by
// bench/bench_service.cpp). Conservation (exactly-once delivery) is NOT
// relaxed: every accepted task is delivered exactly once, recovered by
// drain(), or (with deadlines enabled) shed exactly once through the shed
// sink; handles flush their insertion buffer and spill unconsumed prefetched
// tasks back to a shard on destruction. tests/torture_test.cpp audits this
// through CheckedQueue under fault injection for every roster queue.
//
// Counters: per-shard (enqueued, dequeued, flushes, refills, steals, shed,
// breaker trips, batch fill) and service-wide (submitted, rejected, tier
// rejections, retries, re-routes, shed, deadline flushes), readable via
// stats() and dumpable through dump_stats() — which the open-loop bench
// installs as the watchdog's diagnostics callback, so a livelocked service
// run dies with a per-shard picture of where tasks piled up.
//
// Fault-injection seams: CPQ_INJECT("service/submit") and
// CPQ_INJECT("service/delete_min") sit at the public entry points, before
// any service state changes, so kThrow there never loses an accepted task
// and never escapes a destructor (~Handle reaches flush/spill directly,
// not through these seams).
#pragma once

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <limits>
#include <memory>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"
#include "platform/backoff.hpp"
#include "platform/cache.hpp"
#include "platform/rng.hpp"
#include "service/resilience.hpp"
#include "validation/fault_injection.hpp"

namespace cpq::service {

enum class AdmissionPolicy : std::uint8_t {
  kBlock,   // submitters wait (backpressure) until in-flight drops
  kReject,  // try_submit returns false immediately when full
  kTiered,  // low-priority tiers rejected first as the window fills
};

struct ServiceConfig {
  // Shard count; 0 means one shard per client thread (at least one).
  unsigned shards = 0;
  // Insertion-buffer capacity per handle; 1 disables insert batching.
  std::size_t insert_batch = 8;
  // Deletion-buffer refill size per handle; 1 disables pop batching.
  std::size_t delete_batch = 8;
  // Flush the insertion buffer on the next submit once its oldest task has
  // been buffered for this long; 0 disables deadline-based flushing.
  std::uint64_t flush_deadline_us = 0;
  // Admission bound on accepted-but-undelivered tasks; 0 = unbounded.
  std::size_t max_in_flight = 0;
  AdmissionPolicy policy = AdmissionPolicy::kBlock;
  std::uint64_t seed = 1;

  // ---- overload resilience ----
  // Default time-to-live applied to every submission; 0 disables deadline
  // shedding (per-task deadlines via try_submit_for still work if
  // deadline_slots > 0). Requires unsigned 64-bit values < 2^63.
  std::uint64_t ttl_us = 0;
  // DeadlinePool capacity; 0 derives it from max_in_flight (or 64k).
  std::size_t deadline_slots = 0;
  // Tier count for AdmissionPolicy::kTiered when tier_boundaries is empty:
  // the key space [0, tier_key_space) is split uniformly. 0 means 4.
  unsigned tiers = 0;
  std::uint64_t tier_key_space = std::uint64_t{1} << 32;
  // Explicit ascending tier upper bounds (overrides uniform splitting).
  std::vector<std::uint64_t> tier_boundaries;
  // submit_with_retry: extra attempts after the first rejection, backing off
  // exponentially from retry_base_us.
  unsigned retry_limit = 3;
  std::uint64_t retry_base_us = 50;
  // Circuit breaker: trip after breaker_consecutive flush/refill batches of
  // >= breaker_trip_us against one shard; re-admit after breaker_cooldown_us
  // via a half-open probe. 0 disables the breaker.
  std::uint64_t breaker_trip_us = 0;
  unsigned breaker_consecutive = 2;
  std::uint64_t breaker_cooldown_us = 5000;
};

struct ShardStats {
  std::uint64_t enqueued = 0;   // tasks flushed into the shard
  std::uint64_t dequeued = 0;   // tasks popped out of the shard
  std::uint64_t flushes = 0;    // insertion-buffer flushes landing here
  std::uint64_t refills = 0;    // deletion-buffer refills served here
  std::uint64_t steals = 0;     // refills served when not the routed choice
  std::uint64_t breaker_trips = 0;  // circuit-breaker trips on this shard
  bool breaker_open = false;        // breaker currently not Closed (racy)
  std::size_t approx_size = 0;  // load estimate (racy)
};

struct ServiceStats {
  std::uint64_t submitted = 0;         // accepted tasks
  std::uint64_t rejected = 0;          // admission rejections (all causes)
  std::uint64_t tier_rejected = 0;     // rejections from the tier gate only
  std::uint64_t delivered = 0;         // tasks handed to consumers
  std::uint64_t shed_deadline = 0;     // tasks dropped past their deadline
  std::uint64_t retries = 0;           // submit_with_retry re-attempts
  std::uint64_t retry_exhausted = 0;   // submissions dropped after retries
  std::uint64_t reroutes = 0;          // batches steered off an open breaker
  std::uint64_t breaker_trips = 0;     // circuit-breaker trips (all shards)
  std::uint64_t pool_exhausted = 0;    // deadline slots unavailable
  std::uint64_t deadline_flushes = 0;  // flushes forced by the deadline
  std::uint64_t flushes = 0;           // all insertion-buffer flushes
  std::uint64_t refills = 0;           // all deletion-buffer refills
  std::uint64_t steals = 0;            // all stolen refills
  double mean_insert_fill = 0.0;       // tasks per flush
  double mean_delete_fill = 0.0;       // tasks per refill
  std::vector<ShardStats> shards;
};

template <typename Q>
class PriorityService {
 public:
  using key_type = typename Q::key_type;
  using value_type = typename Q::value_type;
  using InnerHandle = decltype(std::declval<Q&>().get_handle(0u));
  using ShedSink = std::function<void(key_type, value_type)>;

  // Deadline envelopes replace the queue value with a tagged DeadlinePool
  // slot index; only unsigned 64-bit value types have the spare top bit.
  static constexpr bool kDeadlineCapable =
      std::is_integral_v<value_type> && std::is_unsigned_v<value_type> &&
      sizeof(value_type) == 8;

  // `make_shard(shard_index)` constructs one shard queue; every shard must
  // accept get_handle(tid) for tid in [0, max_threads).
  template <typename ShardFactory>
  PriorityService(unsigned max_threads, const ServiceConfig& config,
                  ShardFactory&& make_shard)
      : config_(sanitize(config, max_threads)),
        shards_(config_.shards) {
    for (unsigned s = 0; s < config_.shards; ++s) {
      shards_[s].value.queue = make_shard(s);
      shards_[s].value.breaker.configure(config_.breaker_trip_us,
                                         config_.breaker_consecutive,
                                         config_.breaker_cooldown_us);
    }
    if constexpr (kDeadlineCapable) {
      if (config_.ttl_us > 0 || config_.deadline_slots > 0) {
        std::size_t slots = config_.deadline_slots;
        if (slots == 0) {
          slots = config_.max_in_flight > 0 ? config_.max_in_flight
                                            : std::size_t{1} << 16;
        }
        pool_ = std::make_unique<DeadlinePool<value_type>>(slots);
      }
    }
    if (config_.policy == AdmissionPolicy::kTiered) {
      if (!config_.tier_boundaries.empty()) {
        tier_map_.boundaries = config_.tier_boundaries;
      } else {
        tier_map_ = TierMap::uniform(config_.tiers == 0 ? 4 : config_.tiers,
                                     config_.tier_key_space);
      }
    }
  }

  class Handle {
   public:
    Handle(Handle&&) = default;
    Handle& operator=(Handle&&) = delete;

    // Queue-concept insert: never drops an accepted task. Blocks for a slot
    // regardless of the configured policy (use try_submit for kReject
    // semantics); the only way it can fail is a close()d service — close()
    // deliberately wakes submitters parked on the in-flight bound so
    // shutdown cannot deadlock behind a full admission window. The bool
    // return reports acceptance for callers that track conservation; plain
    // queue-concept users may ignore it.
    bool insert(key_type key, value_type value) {
      return submit(key, value, true, config().ttl_us);
    }

    // Policy-honouring submission. Returns false (and counts a rejection)
    // when the service is closed, or when the in-flight bound (or, under
    // kTiered, the key's tier allowance) is hit.
    bool try_submit(key_type key, value_type value) {
      return submit(key, value, config().policy == AdmissionPolicy::kBlock,
                    config().ttl_us);
    }

    // try_submit with an explicit time-to-live (microseconds; 0 = no
    // deadline) overriding the configured default.
    bool try_submit_for(key_type key, value_type value,
                        std::uint64_t ttl_us) {
      return submit(key, value, config().policy == AdmissionPolicy::kBlock,
                    ttl_us);
    }

    // Bounded retry for rejected submissions: up to retry_limit extra
    // attempts with exponential backoff from retry_base_us. Returns false
    // once the budget is exhausted or the service closes.
    bool submit_with_retry(key_type key, value_type value) {
      if (try_submit(key, value)) return true;
      for (unsigned attempt = 0; attempt < config().retry_limit; ++attempt) {
        if (service_->closed()) return false;
        CPQ_COUNT(kServiceRetry);
        service_->retries_.fetch_add(1, std::memory_order_relaxed);
        const unsigned shift = attempt < 20 ? attempt : 20;
        std::this_thread::sleep_for(
            std::chrono::microseconds(config().retry_base_us << shift));
        if (try_submit(key, value)) return true;
      }
      service_->retry_exhausted_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }

    bool delete_min(key_type& key_out, value_type& value_out) {
      CPQ_INJECT("service/delete_min");
      return pop_task(key_out, value_out, /*count_delivery=*/true);
    }

   private:
    // Shared pop path. The shutdown drain() sets count_delivery=false:
    // recovered tasks are reported as `drained`, never as `delivered`, so
    // the two stats can be added without double counting.
    //
    // A false return usually means every shard reported empty just now —
    // but under a full-expiry storm (every queued task dead on arrival,
    // producers still feeding) an unbounded "retry until something
    // survives" here would trap the caller inside delete_min and starve
    // its heartbeat. So shed-only refill rounds are capped: after
    // kMaxShedRounds the call gives up with false and last_pop_shed()
    // reports how many tasks it shed, letting callers (drain, reconcile,
    // poll loops) tell "empty" from "busy shedding".
    bool pop_task(key_type& key_out, value_type& value_out,
                  bool count_delivery) {
      shed_in_pop_ = 0;
      unsigned shed_rounds = 0;
      for (;;) {
        if (dpos_ == dbuf_.size()) {
          refill();
          if (dpos_ == dbuf_.size() && !ibuf_.empty()) {
            // Everything left may be sitting in our own insertion buffer
            // (the hold-model shape: pop depends on a task we just
            // submitted).
            flush(false);
            refill();
          }
          if (dpos_ == dbuf_.size()) {
            // An all-expired sweep is progress, not emptiness: retry a
            // bounded number of rounds before reporting no-task.
            if (shed_in_refill_ != 0 && ++shed_rounds < kMaxShedRounds) {
              continue;
            }
            return false;
          }
        }
        const Task task = dbuf_[dpos_];
        ++dpos_;
        // Deadline re-check at hand-off: the task may have expired while
        // parked in the deletion buffer.
        if (task.deadline_us != 0 && steady_now_us() > task.deadline_us) {
          service_->shed_task(task.key, task.value);
          ++shed_in_pop_;
          // A deletion buffer consumed entirely by hand-off sheds counts
          // toward the round cap as well — otherwise a dead-on-arrival feed
          // could trap the caller in here indefinitely.
          if (dpos_ == dbuf_.size() && ++shed_rounds >= kMaxShedRounds) {
            return false;
          }
          continue;
        }
        key_out = task.key;
        value_out = task.value;
        if (count_delivery) {
          service_->delivered_.fetch_add(1, std::memory_order_relaxed);
        }
        service_->release_slot();
        return true;
      }
    }

   public:
    // Publish every buffered submission now (deadline/batch independent).
    void flush() { flush(false); }

    std::size_t buffered_inserts() const noexcept { return ibuf_.size(); }
    std::size_t buffered_deletes() const noexcept {
      return dbuf_.size() - dpos_;
    }
    // Tasks shed during the most recent delete_min call on this handle.
    // A false delete_min with last_pop_shed() > 0 means "busy shedding an
    // expired backlog", not "empty" — poll again instead of concluding the
    // service has drained.
    std::size_t last_pop_shed() const noexcept { return shed_in_pop_; }

    ~Handle() {
      if (service_ == nullptr) return;  // moved from
      flush(false);
      // Spill prefetched-but-unconsumed tasks back into a shard so they stay
      // deliverable (their in-flight slots are still held, correctly).
      while (dpos_ < dbuf_.size()) {
        const std::size_t s = rng_.next_below(service_->shards_.size());
        const Task& task = dbuf_[dpos_];
        service_->shards_[s].value.push(inner_[s], task.key,
                                        service_->encode(task));
        ++dpos_;
      }
    }

   private:
    friend class PriorityService;

    // A buffered task: deadline_us is the absolute steady-clock expiry
    // (steady_now_us() domain), 0 when the task has no deadline.
    struct Task {
      key_type key;
      value_type value;
      std::uint64_t deadline_us;
    };

    Handle(PriorityService& service, unsigned thread_id)
        : service_(&service),
          rng_(thread_seed(service.config_.seed ^ 0x5e11ce, thread_id)) {
      inner_.reserve(service.shards_.size());
      for (auto& shard : service.shards_) {
        inner_.push_back(shard.value.queue->get_handle(thread_id));
      }
      ibuf_.reserve(service.config_.insert_batch);
      dbuf_.reserve(service.config_.delete_batch);
    }

    const ServiceConfig& config() const noexcept { return service_->config_; }

    bool submit(key_type key, value_type value, bool block,
                std::uint64_t ttl_us) {
      CPQ_INJECT("service/submit");
      unsigned tier = 0;
      if (!block && config().policy == AdmissionPolicy::kTiered &&
          config().max_in_flight > 0) {
        tier = service_->tier_map_.tier_of(static_cast<std::uint64_t>(key));
      }
      bool tier_limited = false;
      if (!service_->acquire_slot(block, tier, tier_limited)) {
        CPQ_COUNT(kServiceReject);
        service_->rejected_.fetch_add(1, std::memory_order_relaxed);
        if (tier_limited) {
          CPQ_COUNT(kServiceTierReject);
          service_->tier_rejected_.fetch_add(1, std::memory_order_relaxed);
        }
        return false;
      }
      service_->submitted_.fetch_add(1, std::memory_order_relaxed);
      if (ibuf_.empty()) ibuf_oldest_ = std::chrono::steady_clock::now();
      const std::uint64_t deadline =
          ttl_us != 0 ? steady_now_us() + ttl_us : 0;
      ibuf_.push_back(Task{key, value, deadline});
      if (ibuf_.size() >= config().insert_batch) {
        flush(false);
      } else if (config().flush_deadline_us != 0 && deadline_expired()) {
        flush(true);
      }
      return true;
    }

    bool deadline_expired() const {
      const auto age = std::chrono::steady_clock::now() - ibuf_oldest_;
      return std::chrono::duration_cast<std::chrono::microseconds>(age)
                 .count() >=
             static_cast<std::int64_t>(config().flush_deadline_us);
    }

    void flush(bool deadline) {
      if (ibuf_.empty()) return;
      auto& shards = service_->shards_;
      const std::size_t n = shards.size();
      // Two-choice load balancing: flush into the smaller of two shards.
      std::size_t a = rng_.next_below(n);
      const std::size_t b = rng_.next_below(n);
      if (shards[b].value.size.load(std::memory_order_relaxed) <
          shards[a].value.size.load(std::memory_order_relaxed)) {
        a = b;
      }
      if (service_->breaker_active_) {
        a = service_->reroute_if_open(a, b == a ? kNpos : b, rng_);
      }
      auto& shard = shards[a].value;
      // t0 before the chaos pause: an injected stall must look like a slow
      // batch to note_batch, or the breaker could never detect it.
      const std::uint64_t t0 = steady_now_us();
      shard.chaos_pause();
      for (const Task& task : ibuf_) {
        shard.push(inner_[a], task.key, service_->encode(task));
      }
      service_->note_batch(shard, t0);
      CPQ_COUNT(kServiceFlush);
      shard.flushes.fetch_add(1, std::memory_order_relaxed);
      shard.flush_fill.fetch_add(ibuf_.size(), std::memory_order_relaxed);
      if (deadline) {
        CPQ_COUNT(kServiceDeadlineFlush);
        service_->deadline_flushes_.fetch_add(1, std::memory_order_relaxed);
      }
      ibuf_.clear();
    }

    // Pull up to delete_batch tasks from the two-choice-routed shard, with
    // steal fallback and a full sweep before reporting emptiness. One
    // round; shed_in_refill_ tells the caller whether an empty-handed
    // round actually popped (and shed) expired tasks.
    void refill() {
      dbuf_.clear();
      dpos_ = 0;
      shed_in_refill_ = 0;
      auto& shards = service_->shards_;
      const std::size_t n = shards.size();
      const std::size_t i = rng_.next_below(n);
      std::size_t j = rng_.next_below(n);
      // Route to the shard advertising the smaller minimum (pop side of
      // the two-choice rule); unknown minima (kNoHint) lose against known
      // ones.
      const key_type hint_i =
          shards[i].value.min_hint.load(std::memory_order_acquire);
      const key_type hint_j =
          shards[j].value.min_hint.load(std::memory_order_acquire);
      std::size_t first = (hint_j < hint_i) ? j : i;
      std::size_t second = (first == i) ? j : i;
      if (service_->breaker_active_ && second != first) {
        const std::uint64_t now = steady_now_us();
        if (!shards[first].value.breaker.allow(now) &&
            shards[second].value.breaker.allow(now)) {
          std::swap(first, second);
          service_->count_reroute();
        }
      }
      bool filled = refill_from(first, /*steal=*/false);
      if (!filled && second != first) {
        filled = refill_from(second, /*steal=*/true);
      }
      if (!filled) {
        // Both choices looked empty: sweep every shard — breaker state
        // deliberately ignored — so that an empty-handed shed-free round
        // means every shard really reported empty just now.
        const std::size_t start = rng_.next_below(n);
        for (std::size_t probe = 0; probe < n && !filled; ++probe) {
          const std::size_t s = (start + probe) % n;
          if (s == first || s == second) continue;
          filled = refill_from(s, /*steal=*/true);
        }
      }
    }

    bool refill_from(std::size_t s, bool steal) {
      auto& shard = service_->shards_[s].value;
      const std::uint64_t t0 = steady_now_us();  // include the chaos pause
      shard.chaos_pause();
      key_type key{};
      value_type value;
      std::size_t popped = 0;
      std::size_t kept = 0;
      bool ran_dry = false;
      // Cap the expired-task churn per shard visit: with a producer feeding
      // this shard dead-on-arrival tasks as fast as we shed them, an
      // uncapped loop would never run dry and never fill the batch — the
      // caller must get control back to report the sheds.
      const std::size_t max_pops = config().delete_batch * 8;
      while (kept < config().delete_batch && popped < max_pops) {
        if (!inner_[s].delete_min(key, value)) {
          ran_dry = true;
          break;
        }
        ++popped;
        const Task task = service_->decode(key, value);
        if (task.deadline_us != 0 && t0 > task.deadline_us) {
          service_->shed_task(task.key, task.value);
          ++shed_in_refill_;
          ++shed_in_pop_;
          continue;
        }
        dbuf_.push_back(task);
        ++kept;
      }
      service_->note_batch(shard, t0);
      if (popped == 0) {
        shard.note_empty();
        return false;
      }
      shard.note_popped(popped, key, ran_dry);
      if (kept == 0) return false;
      if (steal) {
        CPQ_COUNT(kServiceSteal);
        shard.steals.fetch_add(1, std::memory_order_relaxed);
      } else {
        CPQ_COUNT(kServiceRefill);
      }
      shard.refills.fetch_add(1, std::memory_order_relaxed);
      shard.refill_fill.fetch_add(kept, std::memory_order_relaxed);
      return true;
    }

    // Bound on consecutive all-expired refill rounds inside one pop_task
    // call: enough to chew through a modest expired backlog in one call,
    // small enough that a full-expiry storm cannot starve the caller.
    static constexpr unsigned kMaxShedRounds = 4;

    PriorityService* service_;
    std::vector<InnerHandle> inner_;  // one per shard
    std::vector<Task> ibuf_;
    std::chrono::steady_clock::time_point ibuf_oldest_{};
    std::vector<Task> dbuf_;
    std::size_t dpos_ = 0;
    std::size_t shed_in_refill_ = 0;
    std::size_t shed_in_pop_ = 0;
    Xoroshiro128 rng_;
  };

  Handle get_handle(unsigned thread_id) { return Handle(*this, thread_id); }

  // Stop admitting work: subsequent submissions fail (and are counted as
  // rejected); submitters blocked on the in-flight bound wake up and fail.
  // Already-accepted tasks stay deliverable. Idempotent and safe to call
  // concurrently with in-flight insert()/try_submit(); returns true for the
  // call that actually transitioned the service to closed.
  bool close() noexcept {
    return !closed_.exchange(true, std::memory_order_acq_rel);
  }
  bool closed() const noexcept {
    return closed_.load(std::memory_order_acquire);
  }

  // Pop every remaining task into `sink(key, value)`. Call after every
  // worker handle has been destroyed (which flushes their buffers); the
  // drain itself re-polls each shard so relaxed transient emptiness cannot
  // hide tasks. Expired tasks shed during the drain go to the shed sink, not
  // to `sink`. Returns the number of drained tasks.
  template <typename Sink>
  std::size_t drain(Sink&& sink) {
    auto handle = get_handle(0);
    key_type key;
    value_type value;
    std::size_t drained = 0;
    unsigned misses = 0;
    while (misses < 8) {
      if (handle.pop_task(key, value, /*count_delivery=*/false)) {
        sink(key, value);
        ++drained;
        misses = 0;
      } else if (handle.last_pop_shed() > 0) {
        misses = 0;  // not empty — an expired backlog is being shed
      } else {
        ++misses;  // pop_task already swept every shard
      }
    }
    return drained;
  }

  // Observer for shed tasks (conservation audits, dead-letter queues).
  // Install before traffic starts; called from whichever thread sheds.
  void set_shed_sink(ShedSink sink) { shed_sink_ = std::move(sink); }

  // Chaos hook (always compiled, one relaxed load per batch when idle):
  // every flush/refill batch against shard `s` sleeps for `stall_us` first.
  // A large value effectively kills the shard: the circuit breaker routes
  // around it and only the emptiness sweep still pays the stall.
  void chaos_stall_shard(unsigned s, std::uint32_t stall_us) noexcept {
    if (s < shards_.size()) {
      shards_[s].value.chaos_stall_us.store(stall_us,
                                            std::memory_order_relaxed);
    }
  }
  std::uint32_t chaos_stalled_us(unsigned s) const noexcept {
    return s < shards_.size() ? shards_[s].value.chaos_stall_us.load(
                                    std::memory_order_relaxed)
                              : 0;
  }

  std::size_t in_flight() const noexcept {
    return in_flight_.load(std::memory_order_relaxed);
  }

  unsigned shard_count() const noexcept {
    return static_cast<unsigned>(shards_.size());
  }

  const ServiceConfig& config() const noexcept { return config_; }

  ServiceStats stats() const {
    ServiceStats out;
    out.submitted = submitted_.load(std::memory_order_relaxed);
    out.rejected = rejected_.load(std::memory_order_relaxed);
    out.tier_rejected = tier_rejected_.load(std::memory_order_relaxed);
    out.delivered = delivered_.load(std::memory_order_relaxed);
    out.shed_deadline = shed_deadline_.load(std::memory_order_relaxed);
    out.retries = retries_.load(std::memory_order_relaxed);
    out.retry_exhausted = retry_exhausted_.load(std::memory_order_relaxed);
    out.reroutes = reroutes_.load(std::memory_order_relaxed);
    out.pool_exhausted = pool_ != nullptr ? pool_->exhausted() : 0;
    out.deadline_flushes = deadline_flushes_.load(std::memory_order_relaxed);
    std::uint64_t flush_fill = 0;
    std::uint64_t refill_fill = 0;
    for (const auto& aligned : shards_) {
      const Shard& shard = aligned.value;
      ShardStats s;
      s.enqueued = shard.enqueued.load(std::memory_order_relaxed);
      s.dequeued = shard.dequeued.load(std::memory_order_relaxed);
      s.flushes = shard.flushes.load(std::memory_order_relaxed);
      s.refills = shard.refills.load(std::memory_order_relaxed);
      s.steals = shard.steals.load(std::memory_order_relaxed);
      s.breaker_trips = shard.breaker.trips();
      s.breaker_open = shard.breaker.state() != CircuitBreaker::State::kClosed;
      s.approx_size = shard.size.load(std::memory_order_relaxed);
      out.flushes += s.flushes;
      out.refills += s.refills;
      out.steals += s.steals;
      out.breaker_trips += s.breaker_trips;
      flush_fill += shard.flush_fill.load(std::memory_order_relaxed);
      refill_fill += shard.refill_fill.load(std::memory_order_relaxed);
      out.shards.push_back(s);
    }
    if (out.flushes > 0) {
      out.mean_insert_fill =
          static_cast<double>(flush_fill) / static_cast<double>(out.flushes);
    }
    if (out.refills > 0) {
      out.mean_delete_fill =
          static_cast<double>(refill_fill) / static_cast<double>(out.refills);
    }
    return out;
  }

  // Telemetry gauge snapshot: fills an obs::GaugeSet-shaped sink (templated
  // so this header stays independent of obs/timeseries.hpp) from the same
  // relaxed atomics stats() reads. Allocation-free and safe to call from the
  // telemetry sampler thread while workers run — every field it touches is
  // an atomic or a breaker accessor. Gauge names must be string literals
  // (GaugeSet stores the pointers).
  template <typename GaugeSetT>
  void fill_gauges(GaugeSetT& g) const {
    g.set("submitted", static_cast<double>(
                           submitted_.load(std::memory_order_relaxed)));
    g.set("delivered", static_cast<double>(
                           delivered_.load(std::memory_order_relaxed)));
    g.set("rejected",
          static_cast<double>(rejected_.load(std::memory_order_relaxed) +
                              tier_rejected_.load(std::memory_order_relaxed)));
    g.set("shed", static_cast<double>(
                      shed_deadline_.load(std::memory_order_relaxed)));
    g.set("in_flight",
          static_cast<double>(in_flight_.load(std::memory_order_relaxed)));
    g.set("reroutes",
          static_cast<double>(reroutes_.load(std::memory_order_relaxed)));
    g.set("deadline_flushes", static_cast<double>(deadline_flushes_.load(
                                  std::memory_order_relaxed)));
    std::uint64_t flushes = 0;
    std::uint64_t refills = 0;
    std::uint64_t steals = 0;
    std::uint64_t trips = 0;
    std::size_t breakers_open = 0;
    std::size_t size_max = 0;
    for (const auto& aligned : shards_) {
      const Shard& shard = aligned.value;
      flushes += shard.flushes.load(std::memory_order_relaxed);
      refills += shard.refills.load(std::memory_order_relaxed);
      steals += shard.steals.load(std::memory_order_relaxed);
      trips += shard.breaker.trips();
      if (shard.breaker.state() != CircuitBreaker::State::kClosed) {
        ++breakers_open;
      }
      size_max = std::max(size_max,
                          shard.size.load(std::memory_order_relaxed));
    }
    g.set("flushes", static_cast<double>(flushes));
    g.set("refills", static_cast<double>(refills));
    g.set("steals", static_cast<double>(steals));
    g.set("breaker_trips", static_cast<double>(trips));
    g.set("breakers_open", static_cast<double>(breakers_open));
    g.set("shard_size_max", static_cast<double>(size_max));
  }

  // Human-readable per-shard counter dump; installed as the watchdog's
  // diagnostics callback by the service bench so livelocks die loudly with
  // the shard-level picture.
  void dump_stats(std::FILE* out) const {
    const ServiceStats s = stats();
    std::fprintf(out,
                 "[cpq-service] submitted=%llu delivered=%llu rejected=%llu "
                 "in_flight=%zu deadline_flushes=%llu mean_fill=%.2f/%.2f\n",
                 static_cast<unsigned long long>(s.submitted),
                 static_cast<unsigned long long>(s.delivered),
                 static_cast<unsigned long long>(s.rejected), in_flight(),
                 static_cast<unsigned long long>(s.deadline_flushes),
                 s.mean_insert_fill, s.mean_delete_fill);
    if (s.shed_deadline + s.tier_rejected + s.retries + s.reroutes +
            s.breaker_trips + s.pool_exhausted >
        0) {
      std::fprintf(
          out,
          "[cpq-service] shed=%llu tier_rejects=%llu retries=%llu "
          "retry_exhausted=%llu reroutes=%llu breaker_trips=%llu "
          "pool_exhausted=%llu\n",
          static_cast<unsigned long long>(s.shed_deadline),
          static_cast<unsigned long long>(s.tier_rejected),
          static_cast<unsigned long long>(s.retries),
          static_cast<unsigned long long>(s.retry_exhausted),
          static_cast<unsigned long long>(s.reroutes),
          static_cast<unsigned long long>(s.breaker_trips),
          static_cast<unsigned long long>(s.pool_exhausted));
    }
    for (std::size_t i = 0; i < s.shards.size(); ++i) {
      const ShardStats& sh = s.shards[i];
      std::fprintf(out,
                   "[cpq-service]   shard %zu: enq=%llu deq=%llu size~%zu "
                   "flushes=%llu refills=%llu steals=%llu trips=%llu%s\n",
                   i, static_cast<unsigned long long>(sh.enqueued),
                   static_cast<unsigned long long>(sh.dequeued),
                   sh.approx_size, static_cast<unsigned long long>(sh.flushes),
                   static_cast<unsigned long long>(sh.refills),
                   static_cast<unsigned long long>(sh.steals),
                   static_cast<unsigned long long>(sh.breaker_trips),
                   sh.breaker_open ? " [open]" : "");
    }
  }

 private:
  static constexpr std::size_t kNpos = static_cast<std::size_t>(-1);
  static constexpr std::uint64_t kEnvelopeTag = std::uint64_t{1} << 63;

  // Per-shard load/minimum hints are heuristics for routing only; the
  // refill sweep never trusts them for emptiness (the MultiQueue mirror
  // lesson: a hint equal to the maximal key cannot hide real items).
  static constexpr key_type kNoHint = std::numeric_limits<key_type>::max();

  struct Shard {
    std::unique_ptr<Q> queue;
    CircuitBreaker breaker;
    std::atomic<std::uint32_t> chaos_stall_us{0};
    std::atomic<key_type> min_hint{kNoHint};
    std::atomic<std::size_t> size{0};
    std::atomic<std::uint64_t> enqueued{0};
    std::atomic<std::uint64_t> dequeued{0};
    std::atomic<std::uint64_t> flushes{0};
    std::atomic<std::uint64_t> refills{0};
    std::atomic<std::uint64_t> steals{0};
    std::atomic<std::uint64_t> flush_fill{0};
    std::atomic<std::uint64_t> refill_fill{0};

    void push(InnerHandle& handle, key_type key, value_type value) {
      handle.insert(key, value);
      size.fetch_add(1, std::memory_order_relaxed);
      enqueued.fetch_add(1, std::memory_order_relaxed);
      // Monotone CAS-min keeps the hint a lower-ish bound on the content.
      key_type seen = min_hint.load(std::memory_order_relaxed);
      while (key < seen && !min_hint.compare_exchange_weak(
                               seen, key, std::memory_order_release,
                               std::memory_order_relaxed)) {
      }
    }

    void note_popped(std::size_t count, key_type last_key,
                     bool now_empty) noexcept {
      dequeued.fetch_add(count, std::memory_order_relaxed);
      std::size_t seen = size.load(std::memory_order_relaxed);
      while (!size.compare_exchange_weak(
          seen, seen >= count ? seen - count : 0, std::memory_order_relaxed,
          std::memory_order_relaxed)) {
      }
      // Remaining shard content is (approximately) >= the last popped key;
      // an exhausted shard advertises "unknown/empty".
      min_hint.store(now_empty ? kNoHint : last_key,
                     std::memory_order_release);
    }

    void note_empty() noexcept {
      min_hint.store(kNoHint, std::memory_order_release);
    }

    void chaos_pause() const {
      const std::uint32_t us = chaos_stall_us.load(std::memory_order_relaxed);
      if (us != 0) std::this_thread::sleep_for(std::chrono::microseconds(us));
    }
  };

  using Task = typename Handle::Task;

  static ServiceConfig sanitize(ServiceConfig config, unsigned max_threads) {
    if (config.shards == 0) config.shards = max_threads == 0 ? 1 : max_threads;
    if (config.insert_batch == 0) config.insert_batch = 1;
    if (config.delete_batch == 0) config.delete_batch = 1;
    return config;
  }

  // Wrap a task's value for the inner queue: with a deadline and a free
  // DeadlinePool slot, the value becomes the tagged slot index; otherwise
  // (no deadline, pool exhausted, or non-envelope value type) the raw value
  // travels untouched and the task simply cannot be shed.
  value_type encode(const Task& task) noexcept {
    if constexpr (kDeadlineCapable) {
      if (task.deadline_us != 0 && pool_ != nullptr) {
        std::uint32_t slot = 0;
        if (pool_->acquire(task.value, task.deadline_us, slot)) {
          return static_cast<value_type>(kEnvelopeTag |
                                         static_cast<std::uint64_t>(slot));
        }
      }
    }
    return task.value;
  }

  Task decode(key_type key, value_type value) noexcept {
    if constexpr (kDeadlineCapable) {
      if (pool_ != nullptr &&
          (static_cast<std::uint64_t>(value) & kEnvelopeTag) != 0) {
        const auto entry = pool_->take(static_cast<std::uint32_t>(
            static_cast<std::uint64_t>(value) & 0xFFFF'FFFFull));
        return Task{key, entry.value, entry.deadline_us};
      }
    }
    return Task{key, value, 0};
  }

  // Account one shed task: counted, reported to the sink, and its in-flight
  // slot released (it will never reach delete_min's hand-off).
  void shed_task(key_type key, value_type value) {
    CPQ_COUNT(kServiceShed);
    shed_deadline_.fetch_add(1, std::memory_order_relaxed);
    if (shed_sink_) shed_sink_(key, value);
    release_slot();
  }

  void count_reroute() noexcept {
    CPQ_COUNT(kServiceReroute);
    reroutes_.fetch_add(1, std::memory_order_relaxed);
  }

  // Flush routing with the breaker consulted: keep `a` if its breaker
  // admits, else fall to `b`, else scan for any admitting shard. When every
  // breaker is open, `a` is used anyway — availability beats protection.
  std::size_t reroute_if_open(std::size_t a, std::size_t b,
                              Xoroshiro128& rng) noexcept {
    const std::uint64_t now = steady_now_us();
    if (shards_[a].value.breaker.allow(now)) return a;
    if (b != kNpos && shards_[b].value.breaker.allow(now)) {
      count_reroute();
      return b;
    }
    const std::size_t n = shards_.size();
    const std::size_t start = rng.next_below(n);
    for (std::size_t probe = 0; probe < n; ++probe) {
      const std::size_t s = (start + probe) % n;
      if (s == a || s == b) continue;
      if (shards_[s].value.breaker.allow(now)) {
        count_reroute();
        return s;
      }
    }
    return a;
  }

  // Report a finished shard batch to its breaker (no-op unless enabled).
  void note_batch(Shard& shard, std::uint64_t start_us) noexcept {
    if (!breaker_active_) return;
    const std::uint64_t now = steady_now_us();
    if (shard.breaker.record(now, now - start_us)) {
      CPQ_COUNT(kServiceBreakerTrip);
    }
  }

  bool acquire_slot(bool block, unsigned tier, bool& tier_limited) {
    tier_limited = false;
    if (closed()) return false;
    if (config_.max_in_flight == 0) {
      in_flight_.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
    const unsigned tiers =
        config_.policy == AdmissionPolicy::kTiered ? tier_map_.tiers() : 1;
    Backoff backoff;
    for (;;) {
      std::size_t current = in_flight_.load(std::memory_order_relaxed);
      if (current < config_.max_in_flight) {
        if (!block && tier > 0 &&
            !tier_admitted(current, config_.max_in_flight, tier, tiers)) {
          tier_limited = true;
          return false;
        }
        if (in_flight_.compare_exchange_weak(current, current + 1,
                                             std::memory_order_acquire,
                                             std::memory_order_relaxed)) {
          return true;
        }
        continue;
      }
      if (!block || closed()) return false;
      backoff.pause();
    }
  }

  void release_slot() noexcept {
    in_flight_.fetch_sub(1, std::memory_order_release);
  }

  ServiceConfig config_;
  std::vector<CacheAligned<Shard>> shards_;
  std::unique_ptr<DeadlinePool<value_type>> pool_;
  TierMap tier_map_;
  ShedSink shed_sink_;
  const bool breaker_active_ = config_.breaker_trip_us > 0;
  std::atomic<std::size_t> in_flight_{0};
  std::atomic<std::uint64_t> submitted_{0};
  std::atomic<std::uint64_t> rejected_{0};
  std::atomic<std::uint64_t> tier_rejected_{0};
  std::atomic<std::uint64_t> delivered_{0};
  std::atomic<std::uint64_t> shed_deadline_{0};
  std::atomic<std::uint64_t> retries_{0};
  std::atomic<std::uint64_t> retry_exhausted_{0};
  std::atomic<std::uint64_t> reroutes_{0};
  std::atomic<std::uint64_t> deadline_flushes_{0};
  std::atomic<bool> closed_{false};

  friend class Handle;
};

}  // namespace cpq::service
