// Overload-resilience building blocks for the priority service:
//
//   * DeadlinePool — a fixed-capacity slot pool that attaches an absolute
//     expiry timestamp to a queued value without widening the queue's value
//     type. The service stores the pool index (tagged) as the queue value and
//     resolves it back at pop time, shedding tasks whose deadline passed.
//   * TierMap / tier_admitted — priority-aware admission: instead of the
//     binary block/reject choice, the key space is split into tiers and
//     lower-priority tiers are refused first as the in-flight window fills.
//   * CircuitBreaker — per-shard trip wire. Shards whose flush/refill batches
//     repeatedly exceed a duration budget are taken out of the two-choice
//     routing until a cooldown passes and a half-open probe succeeds.
//
// Everything here is header-only and queue-agnostic; PriorityService wires
// the pieces together (see priority_service.hpp).
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

#include "platform/clock.hpp"

namespace cpq::service {

// Steady-clock microseconds on the canonical monotonic timeline
// (platform/clock.hpp). Deadlines and breaker budgets are compared within
// one process run, so the epoch never matters; sharing monotonic_us() with
// the telemetry/trace exporters makes service-layer timestamps directly
// comparable to TelemetryRecord::t_ns and Chrome trace event times.
inline std::uint64_t steady_now_us() noexcept { return monotonic_us(); }

// Fixed-capacity pool of (value, deadline) slots with a Treiber-stack free
// list. acquire() pops a free slot and fills it; take() reads a slot back and
// returns it to the free list. Slot indices travel through the inner queue,
// so the queue's insert/delete_min synchronization orders the plain-field
// writes in acquire() before the reads in take(). The free-list head packs a
// 32-bit ABA tag above the 32-bit slot index; the tag increments on every
// pop, so a stale head value never CASes successfully.
template <typename V>
class DeadlinePool {
 public:
  static constexpr std::uint32_t kNilSlot =
      std::numeric_limits<std::uint32_t>::max();

  struct Entry {
    V value{};
    std::uint64_t deadline_us = 0;
  };

  explicit DeadlinePool(std::size_t capacity)
      : slots_(capacity == 0 ? 1 : capacity) {
    // Thread the free list through every slot: head -> 0 -> 1 -> ... -> nil.
    for (std::size_t i = 0; i + 1 < slots_.size(); ++i) {
      slots_[i].next.store(static_cast<std::uint32_t>(i + 1),
                           std::memory_order_relaxed);
    }
    slots_.back().next.store(kNilSlot, std::memory_order_relaxed);
    head_.store(pack(0, 0), std::memory_order_relaxed);
  }

  DeadlinePool(const DeadlinePool&) = delete;
  DeadlinePool& operator=(const DeadlinePool&) = delete;

  std::size_t capacity() const noexcept { return slots_.size(); }

  // Number of acquire() calls refused because the pool was empty. The caller
  // falls back to enqueueing the value without a deadline, so exhaustion
  // degrades shedding fidelity but never loses tasks.
  std::uint64_t exhausted() const noexcept {
    return exhausted_.load(std::memory_order_relaxed);
  }

  // Pop a free slot, store (value, deadline_us) into it, and return its index
  // through `slot`. Returns false (and counts the exhaustion) when no slot is
  // free.
  bool acquire(const V& value, std::uint64_t deadline_us,
               std::uint32_t& slot) noexcept {
    std::uint64_t head = head_.load(std::memory_order_acquire);
    for (;;) {
      const std::uint32_t index = unpack_index(head);
      if (index == kNilSlot) {
        exhausted_.fetch_add(1, std::memory_order_relaxed);
        return false;
      }
      const std::uint32_t next =
          slots_[index].next.load(std::memory_order_relaxed);
      if (head_.compare_exchange_weak(
              head, pack(unpack_tag(head) + 1, next),
              std::memory_order_acq_rel, std::memory_order_acquire)) {
        slots_[index].value = value;
        slots_[index].deadline_us = deadline_us;
        slot = index;
        return true;
      }
    }
  }

  // Read slot `slot` back and return it to the free list. The caller must own
  // the slot (obtained from acquire() and routed through the queue exactly
  // once).
  Entry take(std::uint32_t slot) noexcept {
    Entry entry{slots_[slot].value, slots_[slot].deadline_us};
    std::uint64_t head = head_.load(std::memory_order_relaxed);
    for (;;) {
      slots_[slot].next.store(unpack_index(head), std::memory_order_relaxed);
      if (head_.compare_exchange_weak(
              head, pack(unpack_tag(head) + 1, slot),
              std::memory_order_acq_rel, std::memory_order_relaxed)) {
        return entry;
      }
    }
  }

 private:
  struct Slot {
    V value{};
    std::uint64_t deadline_us = 0;
    std::atomic<std::uint32_t> next{kNilSlot};
  };

  static std::uint64_t pack(std::uint64_t tag, std::uint32_t index) noexcept {
    return (tag << 32) | index;
  }
  static std::uint32_t unpack_index(std::uint64_t head) noexcept {
    return static_cast<std::uint32_t>(head);
  }
  static std::uint64_t unpack_tag(std::uint64_t head) noexcept {
    return head >> 32;
  }

  std::vector<Slot> slots_;
  std::atomic<std::uint64_t> head_{0};
  std::atomic<std::uint64_t> exhausted_{0};
};

// Key-space tiers for priority-aware admission. Tier 0 holds the smallest
// (highest-priority) keys; boundaries are ascending upper bounds, so a key is
// in the first tier whose boundary exceeds it and in the last tier otherwise.
struct TierMap {
  std::vector<std::uint64_t> boundaries;

  unsigned tiers() const noexcept {
    return static_cast<unsigned>(boundaries.size()) + 1;
  }

  unsigned tier_of(std::uint64_t key) const noexcept {
    unsigned t = 0;
    for (const std::uint64_t bound : boundaries) {
      if (key < bound) return t;
      ++t;
    }
    return t;
  }

  // Split [0, key_space) into `tiers` equal-width tiers.
  static TierMap uniform(unsigned tiers, std::uint64_t key_space) {
    TierMap map;
    if (tiers < 2) return map;
    const std::uint64_t width = key_space / tiers;
    for (unsigned t = 1; t < tiers; ++t) {
      map.boundaries.push_back(width * t);
    }
    return map;
  }
};

// Graduated admission: tier t (0 = highest priority) is admitted while the
// in-flight occupancy is below capacity * (tiers - t) / tiers. Tier 0 may use
// the whole window; the lowest tier is refused once the window is 1/tiers
// full. With tiers <= 1 this degenerates to the plain capacity check.
inline bool tier_admitted(std::size_t occupancy, std::size_t capacity,
                          unsigned tier, unsigned tiers) noexcept {
  if (occupancy >= capacity) return false;
  if (tiers <= 1) return true;
  if (tier >= tiers) tier = tiers - 1;
  return occupancy < capacity / tiers * (tiers - tier) +
                         capacity % tiers * (tiers - tier) / tiers;
}

// Per-shard circuit breaker. Shard maintenance batches (flush, refill) report
// their duration; `consecutive` reports at or above `trip_us` trip the
// breaker to Open, taking the shard out of preferred routing for
// `cooldown_us`. After the cooldown one caller is admitted as a Half-Open
// probe; a fast batch closes the breaker, a slow one re-opens it. All state
// is relaxed atomics — the breaker is a routing hint, not a correctness
// gate, and torn decisions only cost one misrouted batch.
class CircuitBreaker {
 public:
  enum class State : std::uint8_t { kClosed = 0, kOpen = 1, kHalfOpen = 2 };

  void configure(std::uint64_t trip_us, unsigned consecutive,
                 std::uint64_t cooldown_us) noexcept {
    trip_us_ = trip_us;
    consecutive_ = consecutive == 0 ? 1 : consecutive;
    cooldown_us_ = cooldown_us == 0 ? 1 : cooldown_us;
  }

  bool enabled() const noexcept { return trip_us_ > 0; }

  State state() const noexcept {
    return static_cast<State>(state_.load(std::memory_order_relaxed));
  }

  std::uint64_t trips() const noexcept {
    return trips_.load(std::memory_order_relaxed);
  }

  // May the caller route a batch to this shard right now? Open shards refuse
  // until the cooldown elapses, then exactly one caller wins the CAS and
  // probes in Half-Open; the rest keep routing elsewhere. A Half-Open probe
  // that never reports (its thread died or rerouted) goes stale after one
  // more cooldown and the probe token is reissued.
  bool allow(std::uint64_t now_us) noexcept {
    if (!enabled()) return true;
    std::uint8_t state = state_.load(std::memory_order_relaxed);
    if (state == static_cast<std::uint8_t>(State::kClosed)) return true;
    const std::uint64_t wait_until =
        deadline_us_.load(std::memory_order_relaxed);
    if (now_us < wait_until) return false;
    if (state == static_cast<std::uint8_t>(State::kOpen)) {
      if (state_.compare_exchange_strong(
              state, static_cast<std::uint8_t>(State::kHalfOpen),
              std::memory_order_relaxed)) {
        deadline_us_.store(now_us + cooldown_us_, std::memory_order_relaxed);
        return true;  // this caller is the probe
      }
      return state == static_cast<std::uint8_t>(State::kClosed);
    }
    // Half-Open past its probe window: reissue the probe token.
    std::uint64_t expected = wait_until;
    return deadline_us_.compare_exchange_strong(expected, now_us + cooldown_us_,
                                                std::memory_order_relaxed);
  }

  // Report a completed batch against this shard. Returns true when this
  // report tripped (or re-tripped) the breaker.
  bool record(std::uint64_t now_us, std::uint64_t duration_us) noexcept {
    if (!enabled()) return false;
    const std::uint8_t state = state_.load(std::memory_order_relaxed);
    if (duration_us >= trip_us_) {
      if (state == static_cast<std::uint8_t>(State::kHalfOpen)) {
        reopen(now_us);
        return true;
      }
      const std::uint32_t streak =
          slow_streak_.fetch_add(1, std::memory_order_relaxed) + 1;
      if (streak >= consecutive_ &&
          state == static_cast<std::uint8_t>(State::kClosed)) {
        reopen(now_us);
        return true;
      }
      return false;
    }
    slow_streak_.store(0, std::memory_order_relaxed);
    if (state == static_cast<std::uint8_t>(State::kHalfOpen)) {
      state_.store(static_cast<std::uint8_t>(State::kClosed),
                   std::memory_order_relaxed);
    }
    return false;
  }

 private:
  void reopen(std::uint64_t now_us) noexcept {
    deadline_us_.store(now_us + cooldown_us_, std::memory_order_relaxed);
    state_.store(static_cast<std::uint8_t>(State::kOpen),
                 std::memory_order_relaxed);
    slow_streak_.store(0, std::memory_order_relaxed);
    trips_.fetch_add(1, std::memory_order_relaxed);
  }

  std::uint64_t trip_us_ = 0;
  unsigned consecutive_ = 2;
  std::uint64_t cooldown_us_ = 5000;
  std::atomic<std::uint8_t> state_{0};
  std::atomic<std::uint64_t> deadline_us_{0};
  std::atomic<std::uint32_t> slow_streak_{0};
  std::atomic<std::uint64_t> trips_{0};
};

}  // namespace cpq::service
