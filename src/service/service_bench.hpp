// Open-loop client simulator for the PriorityService layer.
//
// The paper's harness is closed-loop: every worker issues its next operation
// the moment the previous one returns, so the offered load adapts to the
// queue under test. A service front-end faces the opposite regime — tasks
// arrive when clients send them, not when the queue is ready — so this
// harness drives *open-loop* traffic: producer threads submit tasks on a
// Poisson arrival schedule (exponential inter-arrival times, independent of
// completion), consumer threads pop continuously. Measured per run:
//
//   * offered and delivered task rates (tasks/s),
//   * completion-rank error, reusing the quality replay engine: every
//     submission and delivery is timestamped and replayed through the
//     order-statistic tree, so the service's extra relaxation (buffering,
//     sharding) is quantified with the same metric as the raw queues,
//   * the service's per-shard counters (batch fill, steals, flushes).
//
// The same loop runs against raw queue handles and against the service (and,
// for validation, against CheckedQueue-wrapped engines), so
// bench/bench_service.cpp can print service-vs-raw columns from one code
// path. The progress watchdog supervises every worker; for service runs the
// service's per-shard counter dump is installed as the watchdog diagnostics
// callback.
#pragma once

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "bench_framework/harness.hpp"
#include "bench_framework/keygen.hpp"
#include "obs/histogram.hpp"
#include "obs/metrics.hpp"
#include "obs/timeseries.hpp"
#include "platform/backoff.hpp"
#include "platform/cache.hpp"
#include "platform/clock.hpp"
#include "platform/rng.hpp"
#include "platform/thread_util.hpp"
#include "platform/timing.hpp"
#include "service/priority_service.hpp"
#include "validation/checked_queue.hpp"
#include "validation/watchdog.hpp"
#include "workloads/arrivals.hpp"

namespace cpq::service {

struct ServiceBenchConfig {
  unsigned producers = 2;
  unsigned consumers = 2;
  double duration_s = 0.1;
  // Per-producer Poisson arrival rate in tasks/s; 0 = submit continuously
  // (a closed-loop firehose, the saturation upper bound). Superseded by
  // `arrivals` below when that is enabled.
  double arrival_hz = 0.0;
  // Generalized arrival process (workloads/arrivals.hpp): poisson:HZ is the
  // legacy arrival_hz model, mmpp adds on/off burstiness. When enabled this
  // takes precedence over arrival_hz.
  workloads::ArrivalConfig arrivals;
  std::size_t prefill = 0;
  bench::KeyConfig keys = bench::KeyConfig::uniform(32);
  ServiceConfig service;
  // Wrap the engine in validation::CheckedQueue and reconcile at the end
  // (combine with a CPQ_FAULT_INJECTION build for torture coverage).
  bool checked = false;
  bool measure_quality = true;
  // Record per-delivery delete_min latency into a log-linear histogram
  // (two RDTSCP reads per successful pop on the consumer side).
  bool measure_latency = true;
  std::uint64_t seed = 42;
  bool pin_threads = true;
  double watchdog_s = -1.0;
  std::string label;
};

struct ServiceBenchResult {
  double offered_per_s = 0.0;    // producer submissions / elapsed
  double delivered_per_s = 0.0;  // consumer deliveries / elapsed
  std::uint64_t submitted = 0;
  std::uint64_t delivered = 0;
  std::uint64_t drained = 0;  // tasks recovered after shutdown
  double median_rank_error = 0.0;
  std::uint64_t max_rank_error = 0;
  std::uint64_t deletions = 0;  // deliveries scored by the replay
  // Consumer-side delete_min latency over successful pops, nanoseconds
  // (empty polls are excluded: at low arrival rates they would drown the
  // delivery latencies the table reports). Filled when cfg.measure_latency.
  obs::LogHistogram delete_ns;
  // Submit-to-delivery sojourn per task, nanoseconds, matched through the
  // quality logs' unique item ids. Filled when cfg.measure_quality. This is
  // the latency that overload actually inflates: under arrival > service
  // rate it grows without bound unless deadline shedding caps it.
  obs::LogHistogram sojourn_ns;
  std::uint64_t shed = 0;  // tasks dropped past their deadline (service)
  // Measured ON-time fraction across producers (burst_* family); 1.0 for
  // plain Poisson arrivals, 0 when pacing is disabled.
  double burst_on_fraction = 0.0;
  std::uint64_t bursts = 0;  // total OFF->ON transitions across producers
  ServiceStats stats;           // zeroed for raw-queue runs
  bool conservation_ok = true;  // meaningful when cfg.checked
  std::string conservation_report;
};

namespace detail {

// Drive the open-loop producer/consumer team over any engine satisfying the
// queue handle concept. Fills `logs` (producers+consumers+1 slots, prefill
// last) when cfg.measure_quality, and the submitted/delivered totals.
template <typename Engine>
void open_loop_run(Engine& engine, const ServiceBenchConfig& cfg,
                   validation::Watchdog::Diagnostics diagnostics,
                   std::vector<std::vector<bench::OpLogEntry>>& logs,
                   ServiceBenchResult& result) {
  const unsigned threads = cfg.producers + cfg.consumers;
  logs.assign(threads + 1, {});

  {  // Prefill through a scoped handle (service handles flush on exit).
    auto handle = engine.get_handle(0);
    bench::KeyGenerator gen(cfg.keys, cfg.seed ^ 0x9e3779b9ULL,
                            bench::detail::kPrefillThread);
    for (std::size_t i = 0; i < cfg.prefill; ++i) {
      const std::uint64_t key = gen.next();
      const std::uint64_t id =
          bench::detail::item_id(bench::detail::kPrefillThread, i);
      handle.insert(key, id);
      if (cfg.measure_quality) {
        logs[threads].push_back({fast_timestamp(), key, id, true});
      }
    }
  }

  std::vector<validation::WorkerProgress> progress(threads);
  // Chain the engine-specific diagnostics (shard stats for service runs)
  // with the metrics-registry and rank-estimator dumps so a stall report
  // carries all three.
  validation::Watchdog watchdog(
      cfg.label.empty() ? "service-bench" : cfg.label, progress.data(),
      threads, validation::watchdog_deadline(cfg.watchdog_s),
      validation::Watchdog::chain_diagnostics(
          std::move(diagnostics), [](std::FILE* out) {
            obs::MetricsRegistry::global().dump(out);
            obs::RankEstimator::global().dump(out);
          }));

  // fast_timestamp ticks -> ns via the process-wide TscClock calibration
  // (shared with the telemetry sampler and the Chrome trace exporter, so
  // every artifact sits on the same timeline).
  const double ns_per_tick = tsc_clock().ns_per_tick();
  std::vector<obs::LogHistogram> delete_ticks(threads);

  // Single-writer per-thread totals, atomic so the telemetry sampler may
  // read them live (each worker mirrors its plain local counter with a
  // relaxed store; nobody else writes the slot).
  std::vector<CacheAligned<std::atomic<std::uint64_t>>> submitted(threads);
  std::vector<CacheAligned<std::atomic<std::uint64_t>>> delivered(threads);
  // While the plane samples, expose the live worker totals as gauges; the
  // sampler derives submitted_per_s / delivered_per_s from their deltas.
  // Registered after the vectors so it unregisters (and quiesces against
  // the sampler's lock) before they are destroyed.
  obs::ScopedTelemetryProvider worker_gauges([&](obs::GaugeSet& g) {
    std::uint64_t sub = 0;
    std::uint64_t del = 0;
    for (unsigned tid = 0; tid < threads; ++tid) {
      sub += submitted[tid].value.load(std::memory_order_relaxed);
      del += delivered[tid].value.load(std::memory_order_relaxed);
    }
    g.set("submitted", static_cast<double>(sub));
    g.set("delivered", static_cast<double>(del));
  });
  // Effective arrival model: the structured config wins; the legacy scalar
  // arrival_hz maps onto plain Poisson.
  workloads::ArrivalConfig arrival_cfg = cfg.arrivals;
  if (!arrival_cfg.enabled() && cfg.arrival_hz > 0.0) {
    arrival_cfg = workloads::ArrivalConfig::poisson(cfg.arrival_hz);
  }
  std::vector<CacheAligned<double>> on_fraction(threads);
  std::vector<CacheAligned<std::uint64_t>> bursts(threads);
  SpinBarrier barrier(threads + 1);
  std::atomic<bool> stop{false};
  std::vector<std::thread> team;
  team.reserve(threads);
  for (unsigned tid = 0; tid < threads; ++tid) {
    team.emplace_back([&, tid] {
      if (cfg.pin_threads) pin_to_core(tid);
      auto handle = engine.get_handle(tid);
      auto& log = logs[tid];
      // Hoisted: the plane starts before and stops after the run, so one
      // acquire load decides the whole loop. plane_on == false is the
      // default path and must stay free of telemetry work.
      obs::TelemetryPlane& plane = obs::TelemetryPlane::global();
      const bool plane_on = plane.active();
      if (tid < cfg.producers) {
        bench::KeyGenerator gen(cfg.keys, cfg.seed, tid);
        std::optional<workloads::ArrivalProcess> arrival;
        if (arrival_cfg.enabled()) {
          arrival.emplace(arrival_cfg, cfg.seed ^ 0xa441a1, tid);
        }
        std::uint64_t counter = 0;
        std::uint64_t my_submitted = 0;
        barrier.arrive_and_wait();
        Stopwatch watch;
        bool stopped = false;
        while (!stop.load(std::memory_order_relaxed)) {
          if (arrival) {
            // Open-loop schedule: wait for the wall clock, never for the
            // service. A producer that falls behind issues the backlog at
            // full speed.
            const double due_ns = arrival->next_arrival_ns();
            while (static_cast<double>(watch.elapsed_ns()) < due_ns) {
              if (stop.load(std::memory_order_relaxed)) {
                stopped = true;
                break;
              }
              cpu_relax();
            }
            if (stopped) break;
          }
          const std::uint64_t key = gen.next();
          const std::uint64_t id = bench::detail::item_id(tid, counter++);
          // Acceptance-aware submission: a service handle reports whether
          // the task was admitted (a close() racing the final insert of the
          // run rejects it); rejected tasks must not be logged or counted
          // as submitted or they surface as phantom losses downstream.
          bool accepted = true;
          if constexpr (requires {
                          { handle.insert(key, id) }
                              -> std::convertible_to<bool>;
                        }) {
            accepted = handle.insert(key, id);
          } else {
            handle.insert(key, id);
          }
          if (accepted) {
            if (cfg.measure_quality) {
              log.push_back({fast_timestamp(), key, id, true});
            }
            submitted[tid].value.store(++my_submitted,
                                       std::memory_order_relaxed);
            if (plane_on) plane.note_submit(id, fast_timestamp());
          }
          progress[tid].tick(my_submitted, validation::LastOp::kInsert);
          CPQ_TRACE_OP(my_submitted, ::cpq::obs::TraceOp::kInsert, key);
        }
        if (arrival) {
          on_fraction[tid].value = arrival->on_time_fraction();
          bursts[tid].value = arrival->bursts();
        }
      } else {
        auto& my_ticks = delete_ticks[tid];
        std::uint64_t ops = 0;
        std::uint64_t my_delivered = 0;
        barrier.arrive_and_wait();
        while (!stop.load(std::memory_order_relaxed)) {
          std::uint64_t key = 0;
          std::uint64_t id;
          bool hit;
          if (cfg.measure_latency) {
            const std::uint64_t start = fast_timestamp();
            hit = handle.delete_min(key, id);
            if (hit) {
              const std::uint64_t end = fast_timestamp();
              my_ticks.record(end - start);
              if (plane_on) plane.record_latency_ticks(end - start);
            }
          } else {
            hit = handle.delete_min(key, id);
          }
          if (hit) {
            if (cfg.measure_quality) {
              log.push_back({fast_timestamp(), key, id, false});
            }
            delivered[tid].value.store(++my_delivered,
                                       std::memory_order_relaxed);
            if (plane_on) plane.note_delivery(id, fast_timestamp());
          } else {
            cpu_relax();
          }
          progress[tid].tick(++ops, hit ? validation::LastOp::kDeleteHit
                                        : validation::LastOp::kDeleteEmpty);
          CPQ_TRACE_OP(ops,
                       hit ? ::cpq::obs::TraceOp::kDeleteHit
                           : ::cpq::obs::TraceOp::kDeleteEmpty,
                       key);
        }
      }
    });
  }

  barrier.arrive_and_wait();
  Stopwatch watch;
  std::this_thread::sleep_for(std::chrono::duration<double>(cfg.duration_s));
  stop.store(true, std::memory_order_release);
  const double elapsed = watch.elapsed_seconds();
  // A producer can be parked inside a blocking insert() on a full in-flight
  // window at this point, with every consumer about to exit — nobody will
  // release a slot, so join() would deadlock. Closing a closable engine
  // wakes those submitters (their final insert reports rejection, which the
  // producer loop discounts above).
  if constexpr (requires { engine.close(); }) {
    engine.close();
  }
  for (auto& t : team) t.join();
  watchdog.stop();

  for (unsigned tid = 0; tid < threads; ++tid) {
    result.submitted += submitted[tid].value.load(std::memory_order_relaxed);
    result.delivered += delivered[tid].value.load(std::memory_order_relaxed);
  }
  if (arrival_cfg.enabled() && cfg.producers > 0) {
    double on_sum = 0.0;
    for (unsigned tid = 0; tid < cfg.producers; ++tid) {
      on_sum += on_fraction[tid].value;
      result.bursts += bursts[tid].value;
    }
    result.burst_on_fraction = on_sum / cfg.producers;
  }
  obs::MetricsRegistry::global().add_cell_ops(result.submitted +
                                              result.delivered);
  if (cfg.measure_latency) {
    for (unsigned tid = cfg.producers; tid < threads; ++tid) {
      result.delete_ns.add_scaled(delete_ticks[tid], ns_per_tick);
    }
  }
  if (cfg.measure_quality) {
    // Sojourn latency: match every delivery to its submission timestamp by
    // item id (ids are unique across threads and the prefill).
    std::unordered_map<std::uint64_t, std::uint64_t> submitted_at;
    submitted_at.reserve(result.submitted + cfg.prefill);
    for (const auto& log : logs) {
      for (const bench::OpLogEntry& entry : log) {
        if (entry.is_insert) submitted_at.emplace(entry.id, entry.timestamp);
      }
    }
    obs::LogHistogram sojourn_ticks;
    for (const auto& log : logs) {
      for (const bench::OpLogEntry& entry : log) {
        if (entry.is_insert) continue;
        const auto it = submitted_at.find(entry.id);
        if (it == submitted_at.end() || entry.timestamp <= it->second) {
          continue;
        }
        sojourn_ticks.record(entry.timestamp - it->second);
      }
    }
    result.sojourn_ns.add_scaled(sojourn_ticks, ns_per_tick);
  }
  result.offered_per_s = static_cast<double>(result.submitted) / elapsed;
  result.delivered_per_s = static_cast<double>(result.delivered) / elapsed;
}

inline void score_quality(std::vector<std::vector<bench::OpLogEntry>>& logs,
                          ServiceBenchResult& result) {
  std::vector<double> errors;
  std::uint64_t max_err = 0;
  bench::replay_rank_errors(logs, errors, max_err);
  result.deletions = errors.size();
  result.max_rank_error = max_err;
  if (!errors.empty()) {
    const std::size_t mid = errors.size() / 2;
    std::nth_element(errors.begin(), errors.begin() + mid, errors.end());
    result.median_rank_error = errors[mid];
  }
}

}  // namespace detail

// Open-loop run against raw queue handles (the baseline column).
// `make_queue(threads, seed)` constructs the queue under test.
template <typename Factory>
ServiceBenchResult run_open_loop_raw(Factory&& make_queue,
                                     const ServiceBenchConfig& cfg) {
  const unsigned threads = cfg.producers + cfg.consumers;
  ServiceBenchResult result;
  std::vector<std::vector<bench::OpLogEntry>> logs;
  if (cfg.checked) {
    using Q = typename std::decay_t<decltype(*make_queue(threads,
                                                         cfg.seed))>;
    validation::CheckedQueue<Q> checked(threads, make_queue(threads, cfg.seed));
    detail::open_loop_run(checked, cfg, {}, logs, result);
    const validation::ReconcileReport report = checked.reconcile();
    result.conservation_ok = report.ok();
    result.conservation_report = report.to_string();
    result.drained = report.drained;
  } else {
    auto queue = make_queue(threads, cfg.seed);
    detail::open_loop_run(*queue, cfg, {}, logs, result);
  }
  if (cfg.measure_quality) detail::score_quality(logs, result);
  return result;
}

// Open-loop run through PriorityService-wrapped shards. Each shard queue is
// built by `make_queue(threads, shard_seed)`.
template <typename Factory>
ServiceBenchResult run_open_loop_service(Factory&& make_queue,
                                         const ServiceBenchConfig& cfg) {
  const unsigned threads = cfg.producers + cfg.consumers;
  using Q = typename std::decay_t<decltype(*make_queue(threads, cfg.seed))>;
  using Service = PriorityService<Q>;
  ServiceConfig scfg = cfg.service;
  scfg.seed = cfg.seed;
  auto make_service = [&] {
    return std::make_unique<Service>(
        threads, scfg, [&](unsigned shard) {
          return make_queue(threads, thread_seed(cfg.seed, shard));
        });
  };

  ServiceBenchResult result;
  std::vector<std::vector<bench::OpLogEntry>> logs;
  if (cfg.checked) {
    validation::CheckedQueue<Service> checked(threads, make_service());
    Service& service = checked.inner();
    // Service-layer gauges (in_flight, shed, breaker state, shard sizes)
    // feed the telemetry sampler while the run is live; the scope unregisters
    // before the service is destroyed.
    obs::ScopedTelemetryProvider service_gauges(
        [&service](obs::GaugeSet& g) { service.fill_gauges(g); });
    detail::open_loop_run(
        checked, cfg, [&service](std::FILE* out) { service.dump_stats(out); },
        logs, result);
    // reconcile() drains through a service handle, which can still shed
    // expired tasks — harvest stats after it so `shed` covers the drain too.
    const validation::ReconcileReport report = checked.reconcile();
    result.stats = service.stats();
    result.shed = result.stats.shed_deadline;
    // Deadline-shed tasks were accepted and then deliberately dropped, so
    // they appear as `lost` in the diff; conservation holds exactly when
    // every lost item is accounted for by a shed.
    result.conservation_ok = report.duplicated == 0 &&
                             report.fabricated == 0 &&
                             report.lost == result.shed;
    result.conservation_report =
        report.to_string() + " shed=" + std::to_string(result.shed);
    result.drained = report.drained;
  } else {
    auto service = make_service();
    Service& ref = *service;
    obs::ScopedTelemetryProvider service_gauges(
        [&ref](obs::GaugeSet& g) { ref.fill_gauges(g); });
    detail::open_loop_run(
        *service, cfg, [&ref](std::FILE* out) { ref.dump_stats(out); }, logs,
        result);
    service->close();
    result.drained = service->drain([](std::uint64_t, std::uint64_t) {});
    result.stats = service->stats();
    result.shed = result.stats.shed_deadline;
  }
  if (cfg.measure_quality) detail::score_quality(logs, result);
  return result;
}

}  // namespace cpq::service
