// ASCII table / CSV output for the bench binaries.
//
// Every bench prints the same layout the paper's figures encode: one row per
// thread count, one column per queue, cell = mean ± 95% CI. Setting the
// environment variable CPQ_CSV=1 additionally emits machine-readable CSV
// lines (prefix "csv,") for plotting.
#pragma once

#include <string>
#include <vector>

namespace cpq::bench {

class Table {
 public:
  // `title` describes the experiment (e.g. "Fig. 1: uniform workload,
  // uniform keys (32 bit) — throughput [MOps/s]").
  Table(std::string title, std::string row_header,
        std::vector<std::string> columns);

  // Add a row; `cells` must match the column count. Cells are preformatted.
  void add_row(const std::string& row_label, std::vector<std::string> cells);

  // Render to stdout (and CSV if CPQ_CSV is set).
  void print() const;

  static std::string format_mean_ci(double mean, double ci);
  static std::string format_mean_std(double mean, double stddev);

 private:
  std::string title_;
  std::string row_header_;
  std::vector<std::string> columns_;
  std::vector<std::pair<std::string, std::vector<std::string>>> rows_;
};

}  // namespace cpq::bench
