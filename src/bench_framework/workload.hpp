// Compatibility shim: workload shapes moved to the workloads subsystem
// (src/workloads/shape.hpp) when the adversarial distributions landed.
// Existing bench_framework call sites keep the cpq::bench spellings.
#pragma once

#include "workloads/shape.hpp"

namespace cpq::bench {

using workloads::OpChooser;
using workloads::Workload;
using workloads::workload_name;

}  // namespace cpq::bench
