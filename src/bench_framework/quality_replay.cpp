// Rank-error replay (paper §F, quality benchmark).
//
// "The quality benchmark initially records all inserted and deleted items
// together with their timestamp in a log; this log is then used to
// reconstruct a global, linear sequence of all operations. A specialized
// sequential priority queue is then used to replay this sequence and
// efficiently determine the rank of all deleted items."
//
// The specialized structure here is the order-statistic treap. A deletion
// occasionally sorts before its own insertion (timestamps are taken just
// after the operation returns, so two racing threads can invert); such
// deletions are deferred until the matching insertion is replayed, which is
// the closest consistent linearization.

#include <algorithm>
#include <cstdint>
#include <unordered_set>
#include <vector>

#include "bench_framework/harness.hpp"
#include "seq/order_statistic_tree.hpp"

namespace cpq::bench {

void replay_rank_errors(std::vector<std::vector<OpLogEntry>>& logs,
                        std::vector<double>& rank_errors_out,
                        std::uint64_t& max_out) {
  // Merge all logs into one timestamp-ordered sequence.
  std::size_t total = 0;
  for (const auto& log : logs) total += log.size();
  std::vector<OpLogEntry> sequence;
  sequence.reserve(total);
  for (auto& log : logs) {
    sequence.insert(sequence.end(), log.begin(), log.end());
    log.clear();
    log.shrink_to_fit();
  }
  std::stable_sort(sequence.begin(), sequence.end(),
                   [](const OpLogEntry& a, const OpLogEntry& b) {
                     return a.timestamp < b.timestamp;
                   });

  seq::OrderStatisticTree<std::uint64_t> tree;
  // Deletions whose insertion has not been replayed yet.
  std::unordered_set<std::uint64_t> pending_deletes;
  max_out = 0;

  auto record = [&](std::size_t rank_1based) {
    const double error = static_cast<double>(rank_1based - 1);
    rank_errors_out.push_back(error);
    if (rank_1based - 1 > max_out) max_out = rank_1based - 1;
  };

  for (const OpLogEntry& op : sequence) {
    if (op.is_insert) {
      tree.insert(op.key, op.id);
      const auto pending = pending_deletes.find(op.id);
      if (pending != pending_deletes.end()) {
        pending_deletes.erase(pending);
        const std::size_t rank = tree.erase(op.key, op.id);
        if (rank != 0) record(rank);
      }
    } else {
      const std::size_t rank = tree.erase(op.key, op.id);
      if (rank != 0) {
        record(rank);
      } else {
        pending_deletes.insert(op.id);
      }
    }
  }
}

}  // namespace cpq::bench
