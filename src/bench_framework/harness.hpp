// The throughput and quality measurement harnesses (paper §2/§F).
//
// Throughput: prefill the queue, release P worker threads at a barrier,
// run the chosen workload/key-distribution mix for a fixed duration, and
// report operations per second (insertions + deletions; a deletion that
// finds the queue empty still counts as one operation, as in the paper's
// steady-state setup). Every repetition uses a fresh queue and a derived
// seed.
//
// Quality (rank error): identical setup but every thread performs a fixed
// number of operations and logs each with a fast timestamp. The logs are
// merged into one linear sequence and replayed through an order-statistic
// tree (seq/order_statistic_tree.hpp) to determine, for every deletion, the
// rank of the deleted item at its deletion point. Values carry unique item
// ids so the replay can delete exact items; equal keys are broken by id,
// which makes the measurement "pessimistic" for duplicate keys exactly as
// the paper describes.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <exception>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench_framework/keygen.hpp"
#include "bench_framework/stats.hpp"
#include "bench_framework/workload.hpp"
#include "obs/metrics.hpp"
#include "platform/backoff.hpp"
#include "platform/cache.hpp"
#include "platform/thread_util.hpp"
#include "platform/timing.hpp"
#include "validation/watchdog.hpp"
#include "workloads/arrivals.hpp"
#include "workloads/hygiene.hpp"

namespace cpq::bench {

struct BenchConfig {
  unsigned threads = 1;
  Workload workload = Workload::kUniform;
  KeyConfig keys = KeyConfig::uniform(32);
  std::size_t prefill = 100'000;
  double duration_s = 0.1;            // throughput mode
  std::uint64_t ops_per_thread = 0;   // quality mode
  unsigned repetitions = 3;
  std::uint64_t seed = 42;
  bool pin_threads = true;
  double insert_fraction = 0.5;
  std::uint64_t batch_size = 1;  // for Workload::kBatch
  double producer_fraction = 0.5;  // for Workload::kPcSplit
  // Open-loop arrival pacing (workloads/arrivals.hpp); kClosed = the
  // paper's back-to-back issue model.
  workloads::ArrivalConfig arrivals;
  // Anti-artifact hygiene (workloads/hygiene.hpp): insert prefill items in
  // seeded-random order, and hold a randomized heap-layout perturbation
  // alive for each repetition.
  bool shuffle_prefill = false;
  bool perturb_layout = false;
  // Progress-watchdog deadline in seconds (src/validation/watchdog.hpp):
  // < 0 defers to CPQ_WATCHDOG_S (default 120), 0 disables supervision.
  double watchdog_s = -1.0;
  // Queue name for watchdog dumps and per-repetition failure reports
  // (filled in by the registry; empty for direct harness callers).
  std::string label;
};

struct ThroughputResult {
  Summary mops;                    // million operations per second
  std::vector<double> per_rep;     // raw MOps/s per repetition
  unsigned failed_reps = 0;        // repetitions that threw
  // Open-loop repetitions only (burst_* metric family): measured ON-time
  // fraction per repetition (averaged over threads) and OFF->ON burst
  // transitions per repetition. Empty under closed-loop arrivals.
  std::vector<double> on_fraction_per_rep;
  std::vector<double> bursts_per_rep;
  // True when no repetition completed: the zeroed Summary is then a failure
  // marker, not a measurement, and must not be reported as one.
  bool failed() const { return per_rep.empty(); }
};

// One logged operation for the quality benchmark.
struct OpLogEntry {
  std::uint64_t timestamp;
  std::uint64_t key;
  std::uint64_t id;    // unique item id (== the inserted value)
  bool is_insert;
};

struct QualityResult {
  Summary rank_error;          // over all logged deletions, all repetitions
  // Median rank error: robust against the replay-timestamp outliers that
  // oversubscribed machines produce (see EXPERIMENTS.md caveats).
  double median_rank_error = 0.0;
  std::uint64_t max_rank_error = 0;
  std::uint64_t deletions = 0;
  unsigned completed_reps = 0;
  unsigned failed_reps = 0;
  bool failed() const { return completed_reps == 0; }
};

// Replay engine (implemented in quality_replay.cpp): merges per-thread logs
// by timestamp and computes the rank error of every deletion. Rank error 0
// means the true minimum was deleted.
void replay_rank_errors(std::vector<std::vector<OpLogEntry>>& logs,
                        std::vector<double>& rank_errors_out,
                        std::uint64_t& max_out);

namespace detail {

inline std::uint64_t item_id(unsigned thread_id, std::uint64_t counter) {
  return (static_cast<std::uint64_t>(thread_id + 1) << 40) | counter;
}

constexpr unsigned kPrefillThread = 0xFFFFF;  // id-space slot for prefill

}  // namespace detail

// Watchdog diagnostics callback that appends the metrics registry state
// (counter totals + per-thread sampled-operation rings) and, when armed,
// the live rank-error estimate to a stall dump. Always wired in: the dump
// itself is off the hot path, and when the CPQ_COUNT/CPQ_TRACE_OP hooks are
// compiled out it simply prints zeros.
inline validation::Watchdog::Diagnostics metrics_diagnostics() {
  return [](std::FILE* out) {
    obs::MetricsRegistry::global().dump(out);
    obs::RankEstimator::global().dump(out);
  };
}

// Prefill the queue with `cfg.prefill` items drawn from the configured key
// distribution (single-threaded, before the measurement starts). When `logs`
// is non-null the insertions are recorded for the quality replay.
template <typename Queue>
void prefill_queue(Queue& queue, const BenchConfig& cfg, std::uint64_t seed,
                   std::vector<OpLogEntry>* log) {
  auto handle = queue.get_handle(0);
  KeyGenerator gen(cfg.keys, seed ^ 0x9e3779b9ULL, detail::kPrefillThread);
  if (cfg.shuffle_prefill) {
    // Hygiene: generate first, insert in seeded-random order, so the queue
    // cannot inherit a conveniently ordered initial structure from the
    // generator (ascending/descending/hold produce near-sorted streams).
    std::vector<std::pair<std::uint64_t, std::uint64_t>> items;
    items.reserve(cfg.prefill);
    for (std::size_t i = 0; i < cfg.prefill; ++i) {
      items.emplace_back(gen.next(),
                         detail::item_id(detail::kPrefillThread, i));
    }
    workloads::deterministic_shuffle(items, gen.rng());
    for (const auto& [key, id] : items) {
      handle.insert(key, id);
      if (log) log->push_back({fast_timestamp(), key, id, true});
    }
    return;
  }
  for (std::size_t i = 0; i < cfg.prefill; ++i) {
    const std::uint64_t key = gen.next();
    const std::uint64_t id = detail::item_id(detail::kPrefillThread, i);
    handle.insert(key, id);
    if (log) log->push_back({fast_timestamp(), key, id, true});
  }
}

// Run one timed throughput repetition. Returns MOps/s.
//
// Every worker ticks a heartbeat (one relaxed store to its own cache line
// per operation) that a progress watchdog samples: a queue that livelocks
// mid-repetition aborts the process with a per-thread diagnostic dump
// instead of hanging the benchmark forever (validation/watchdog.hpp).
// Per-repetition burst diagnostics, filled in under open-loop arrivals.
struct RepArrivalStats {
  double on_fraction = 0.0;    // mean over threads
  std::uint64_t bursts = 0;    // total OFF->ON transitions
  std::uint64_t arrivals = 0;  // total paced arrivals consumed
};

template <typename Queue>
double throughput_rep(Queue& queue, const BenchConfig& cfg,
                      std::uint64_t seed,
                      RepArrivalStats* arrival_stats = nullptr) {
  SpinBarrier barrier(cfg.threads + 1);
  std::atomic<bool> stop{false};
  std::vector<validation::WorkerProgress> progress(cfg.threads);
  std::vector<double> on_fraction(cfg.threads, 0.0);
  std::vector<std::uint64_t> bursts(cfg.threads, 0);
  std::vector<std::uint64_t> arrivals(cfg.threads, 0);
  validation::Watchdog watchdog(
      cfg.label.empty() ? "throughput" : cfg.label, progress.data(),
      cfg.threads, validation::watchdog_deadline(cfg.watchdog_s),
      metrics_diagnostics());

  std::vector<std::thread> team;
  team.reserve(cfg.threads);
  for (unsigned tid = 0; tid < cfg.threads; ++tid) {
    team.emplace_back([&, tid] {
      if (cfg.pin_threads) pin_to_core(tid);
      auto handle = queue.get_handle(tid);
      KeyGenerator gen(cfg.keys, seed, tid);
      OpChooser chooser(cfg.workload, tid, cfg.threads, seed,
                        cfg.insert_fraction, cfg.batch_size,
                        cfg.producer_fraction);
      std::optional<workloads::ArrivalProcess> arrival;
      if (cfg.arrivals.enabled()) {
        arrival.emplace(cfg.arrivals, seed, tid);
      }
      std::uint64_t ops = 0;
      std::uint64_t insert_counter = 0;
      barrier.arrive_and_wait();
      Stopwatch clock;
      while (!stop.load(std::memory_order_relaxed)) {
        if (arrival) {
          // Open-loop pacing: spin until this operation's scheduled arrival
          // time. A worker that falls behind sees arrival times in the past
          // and issues the backlog at full speed — open-loop lag, exactly
          // what the model intends (no pacing debt is forgiven).
          const double due_ns = arrival->next_arrival_ns();
          bool stopped = false;
          while (static_cast<double>(clock.elapsed_ns()) < due_ns) {
            if (stop.load(std::memory_order_relaxed)) {
              stopped = true;
              break;
            }
            cpu_relax();
          }
          if (stopped) break;
        }
        if (chooser.next_is_insert()) {
          const std::uint64_t key = gen.next();
          handle.insert(key, detail::item_id(tid, insert_counter++));
          progress[tid].tick(++ops, validation::LastOp::kInsert);
          CPQ_TRACE_OP(ops, ::cpq::obs::TraceOp::kInsert, key);
        } else {
          std::uint64_t key = 0;
          std::uint64_t value;
          const bool hit = handle.delete_min(key, value);
          if (hit) gen.observe_deleted(key);
          progress[tid].tick(++ops, hit ? validation::LastOp::kDeleteHit
                                        : validation::LastOp::kDeleteEmpty);
          CPQ_TRACE_OP(ops,
                       hit ? ::cpq::obs::TraceOp::kDeleteHit
                           : ::cpq::obs::TraceOp::kDeleteEmpty,
                       key);
        }
      }
      if (arrival) {
        on_fraction[tid] = arrival->on_time_fraction();
        bursts[tid] = arrival->bursts();
        arrivals[tid] = arrival->arrivals();
      }
    });
  }

  barrier.arrive_and_wait();
  Stopwatch watch;
  std::this_thread::sleep_for(
      std::chrono::duration<double>(cfg.duration_s));
  stop.store(true, std::memory_order_release);
  const double elapsed = watch.elapsed_seconds();
  for (auto& t : team) t.join();
  watchdog.stop();

  std::uint64_t total = 0;
  for (const auto& p : progress) {
    total += p.ops.load(std::memory_order_relaxed);
  }
  if (arrival_stats != nullptr && cfg.arrivals.enabled()) {
    double on_sum = 0.0;
    for (unsigned tid = 0; tid < cfg.threads; ++tid) {
      on_sum += on_fraction[tid];
      arrival_stats->bursts += bursts[tid];
      arrival_stats->arrivals += arrivals[tid];
    }
    arrival_stats->on_fraction = on_sum / cfg.threads;
  }
  // Denominator for per-op hardware-counter metrics (bench_common.hpp);
  // recorded once per repetition, after all workers joined.
  obs::MetricsRegistry::global().add_cell_ops(total);
  return static_cast<double>(total) / elapsed / 1e6;
}

// Full throughput measurement: `cfg.repetitions` fresh queues.
// `make_queue(threads, seed)` constructs the queue under test.
template <typename Factory>
ThroughputResult run_throughput(Factory&& make_queue, const BenchConfig& cfg) {
  ThroughputResult result;
  for (unsigned rep = 0; rep < cfg.repetitions; ++rep) {
    const std::uint64_t seed = cfg.seed + 7919ULL * rep;
    // One failed repetition (bad_alloc, a queue-reported error) is reported
    // and skipped rather than taking down the whole sweep; the summary is
    // computed over the repetitions that completed.
    try {
      // Held for the whole repetition: randomizes the allocator state the
      // queue is built into, turning layout accidents into per-rep noise.
      workloads::LayoutPerturbation perturb(cfg.perturb_layout, seed);
      auto queue = make_queue(cfg.threads, seed);
      prefill_queue(*queue, cfg, seed, nullptr);
      RepArrivalStats arrival_stats;
      result.per_rep.push_back(
          throughput_rep(*queue, cfg, seed, &arrival_stats));
      if (cfg.arrivals.enabled()) {
        result.on_fraction_per_rep.push_back(arrival_stats.on_fraction);
        result.bursts_per_rep.push_back(
            static_cast<double>(arrival_stats.bursts));
      }
    } catch (const std::exception& e) {
      ++result.failed_reps;
      std::fprintf(stderr,
                   "[cpq] %s: throughput repetition %u/%u failed: %s\n",
                   cfg.label.empty() ? "queue" : cfg.label.c_str(), rep + 1,
                   cfg.repetitions, e.what());
    }
  }
  if (result.per_rep.empty() && cfg.repetitions > 0) {
    std::fprintf(stderr, "[cpq] %s: every throughput repetition failed\n",
                 cfg.label.empty() ? "queue" : cfg.label.c_str());
  }
  result.mops = summarize(result.per_rep);
  return result;
}

// Run one quality repetition, filling per-thread logs. Heartbeats and
// watchdog supervision mirror throughput_rep.
template <typename Queue>
void quality_rep(Queue& queue, const BenchConfig& cfg, std::uint64_t seed,
                 std::vector<std::vector<OpLogEntry>>& logs) {
  logs.assign(cfg.threads + 1, {});
  prefill_queue(queue, cfg, seed, &logs[cfg.threads]);

  std::vector<validation::WorkerProgress> progress(cfg.threads);
  validation::Watchdog watchdog(
      cfg.label.empty() ? "quality" : cfg.label, progress.data(),
      cfg.threads, validation::watchdog_deadline(cfg.watchdog_s),
      metrics_diagnostics());

  SpinBarrier barrier(cfg.threads);
  std::vector<std::thread> team;
  team.reserve(cfg.threads);
  for (unsigned tid = 0; tid < cfg.threads; ++tid) {
    team.emplace_back([&, tid] {
      if (cfg.pin_threads) pin_to_core(tid);
      auto handle = queue.get_handle(tid);
      KeyGenerator gen(cfg.keys, seed, tid);
      OpChooser chooser(cfg.workload, tid, cfg.threads, seed,
                        cfg.insert_fraction, cfg.batch_size,
                        cfg.producer_fraction);
      auto& log = logs[tid];
      log.reserve(cfg.ops_per_thread);
      std::uint64_t insert_counter = 0;
      barrier.arrive_and_wait();
      for (std::uint64_t op = 0; op < cfg.ops_per_thread; ++op) {
        if (chooser.next_is_insert()) {
          const std::uint64_t key = gen.next();
          const std::uint64_t id = detail::item_id(tid, insert_counter++);
          handle.insert(key, id);
          log.push_back({fast_timestamp(), key, id, true});
          progress[tid].tick(op + 1, validation::LastOp::kInsert);
          CPQ_TRACE_OP(op + 1, ::cpq::obs::TraceOp::kInsert, key);
        } else {
          std::uint64_t key = 0;
          std::uint64_t id;
          const bool hit = handle.delete_min(key, id);
          if (hit) {
            log.push_back({fast_timestamp(), key, id, false});
            gen.observe_deleted(key);
          }
          progress[tid].tick(op + 1, hit ? validation::LastOp::kDeleteHit
                                         : validation::LastOp::kDeleteEmpty);
          CPQ_TRACE_OP(op + 1,
                       hit ? ::cpq::obs::TraceOp::kDeleteHit
                           : ::cpq::obs::TraceOp::kDeleteEmpty,
                       key);
        }
      }
    });
  }
  for (auto& t : team) t.join();
  watchdog.stop();
  obs::MetricsRegistry::global().add_cell_ops(
      static_cast<std::uint64_t>(cfg.threads) * cfg.ops_per_thread);
}

template <typename Factory>
QualityResult run_quality(Factory&& make_queue, const BenchConfig& cfg) {
  QualityResult result;
  std::vector<double> all_errors;
  for (unsigned rep = 0; rep < cfg.repetitions; ++rep) {
    const std::uint64_t seed = cfg.seed + 104729ULL * rep;
    try {
      workloads::LayoutPerturbation perturb(cfg.perturb_layout, seed);
      auto queue = make_queue(cfg.threads, seed);
      std::vector<std::vector<OpLogEntry>> logs;
      quality_rep(*queue, cfg, seed, logs);
      std::uint64_t max_err = 0;
      replay_rank_errors(logs, all_errors, max_err);
      if (max_err > result.max_rank_error) result.max_rank_error = max_err;
      ++result.completed_reps;
    } catch (const std::exception& e) {
      ++result.failed_reps;
      std::fprintf(stderr,
                   "[cpq] %s: quality repetition %u/%u failed: %s\n",
                   cfg.label.empty() ? "queue" : cfg.label.c_str(), rep + 1,
                   cfg.repetitions, e.what());
    }
  }
  result.deletions = all_errors.size();
  if (!all_errors.empty()) {
    const std::size_t mid = all_errors.size() / 2;
    std::nth_element(all_errors.begin(), all_errors.begin() + mid,
                     all_errors.end());
    result.median_rank_error = all_errors[mid];
  }
  result.rank_error = summarize(all_errors);
  return result;
}

}  // namespace cpq::bench
