// Queue registry: every benchmarkable queue under its paper name, bound to
// type-erased throughput and quality runners (the template harness is
// instantiated once per queue type in registry.cpp, so the hot loops stay
// fully inlined — no virtual dispatch per operation).
//
// Paper roster: glock, linden, spray, mq, klsm128, klsm256, klsm4096.
// Extensions:   hunt (appendix D), dlsm, slsm256 (component ablation),
//               mq-pairing (MultiQueue over pairing heaps).
#pragma once

#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "bench_framework/harness.hpp"
#include "bench_framework/latency.hpp"
#include "service/service_bench.hpp"

namespace cpq::bench {

// Raw-handles versus PriorityService-wrapped open-loop comparison
// (src/service/service_bench.hpp) for one queue.
struct ServiceComparison {
  service::ServiceBenchResult raw;
  service::ServiceBenchResult service;
};

struct QueueSpec {
  std::string name;
  std::string description;
  bool strict;    // strict (rank error 0 expected) vs relaxed semantics
  bool in_paper;  // part of the paper's benchmark roster
  // Theoretical rank-error cap as a function of the thread count P (empty =
  // no published bound). rank_bound_hard distinguishes worst-case guarantees
  // (k-LSM: kP) from expectations (MultiQueue: O(cP)) — the live estimator
  // counts violations only against hard bounds.
  std::function<double(unsigned)> rank_bound;
  bool rank_bound_hard = false;
  std::function<ThroughputResult(const BenchConfig&)> throughput;
  std::function<QualityResult(const BenchConfig&)> quality;
  std::function<LatencyResult(const BenchConfig&)> latency;
  // Larkin-Sen-Tarjan-style sort phases: all threads insert their share of
  // cfg.prefill items (timed), then delete until the queue is drained
  // (timed). Returns {insert MOps/s, delete MOps/s}.
  std::function<std::pair<double, double>(const BenchConfig&)> sort_phases;
  // Open-loop task-dispatch benchmark: the same Poisson client traffic run
  // against raw handles and through the PriorityService layer.
  std::function<ServiceComparison(const service::ServiceBenchConfig&)>
      service_bench;
};

// Runtime tuning for the engineered MultiQueue variants (mq-buf, mq-sticky,
// mq-eng). Mutable process-wide singleton: cpq_bench_cli writes it from
// --mq-c/--mq-sticky/--mq-buf before any cell runs; the registry factories
// AND the rank-bound lambdas read it when each cell starts, so the soft
// bound the RankEstimator arms always matches the queues actually built.
// The paper-roster "mq" (and mq-pairing/mq-dary) stay pinned at c=4.
struct MqTuning {
  unsigned c = 4;          // local queues per thread
  unsigned stickiness = 8; // sticky round length (mq-sticky, mq-eng)
  unsigned buffer = 16;    // insertion/deletion buffer capacity (mq-buf, mq-eng)
};
MqTuning& mq_tuning();

// One benchmark mode of cpq_bench_cli (--mode=<name>), described for
// --list and validated strictly before any measurement starts.
struct BenchModeSpec {
  std::string name;
  std::string description;
};

// All CLI benchmark modes.
const std::vector<BenchModeSpec>& bench_mode_registry();

// nullptr when unknown.
const BenchModeSpec* find_bench_mode(std::string_view name);

// All registered queues, in the paper's presentation order.
const std::vector<QueueSpec>& queue_registry();

// nullptr when unknown.
const QueueSpec* find_queue(std::string_view name);

// The paper's seven-queue roster (Figure 1 ordering).
std::vector<const QueueSpec*> paper_roster();

// Resolve a comma-separated list of names ("klsm256,mq,linden"); empty input
// yields the paper roster.
std::vector<const QueueSpec*> resolve_roster(std::string_view names);

}  // namespace cpq::bench
