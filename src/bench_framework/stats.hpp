// Summary statistics: mean, sample standard deviation, and 95% confidence
// intervals (Student's t for the small repetition counts the paper uses).
#pragma once

#include <cmath>
#include <cstddef>
#include <vector>

namespace cpq::bench {

struct Summary {
  double mean = 0.0;
  double stddev = 0.0;   // sample standard deviation
  double ci95 = 0.0;     // half-width of the 95% confidence interval
  std::size_t n = 0;
};

// Two-sided 95% t quantiles for small degrees of freedom; converges to the
// normal quantile.
inline double t_quantile_95(std::size_t df) {
  static constexpr double kTable[] = {
      0,     12.71, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262,
      2.228, 2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093,
      2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045};
  if (df == 0) return 0.0;
  if (df < sizeof(kTable) / sizeof(kTable[0])) return kTable[df];
  return 1.96;
}

inline Summary summarize(const std::vector<double>& samples) {
  Summary s;
  s.n = samples.size();
  if (s.n == 0) return s;
  double sum = 0.0;
  for (double v : samples) sum += v;
  s.mean = sum / static_cast<double>(s.n);
  if (s.n >= 2) {
    double sq = 0.0;
    for (double v : samples) sq += (v - s.mean) * (v - s.mean);
    s.stddev = std::sqrt(sq / static_cast<double>(s.n - 1));
    s.ci95 = t_quantile_95(s.n - 1) * s.stddev /
             std::sqrt(static_cast<double>(s.n));
  }
  return s;
}

}  // namespace cpq::bench
