// Environment-driven benchmark options.
//
// Every bench binary runs standalone with container-friendly defaults and
// can be scaled back up to the paper's parameters on real hardware:
//
//   CPQ_THREADS   comma-separated ladder, e.g. "1,2,4,6,8,10,12,14,16"
//                 (default "1,2,4,8")
//   CPQ_BENCH_MS  measurement window per point in milliseconds
//                 (default 60; paper: 10000)
//   CPQ_BENCH_REPS repetitions per point (default 3; paper: 10+)
//   CPQ_PREFILL   prefill item count (default 100000; paper: 1000000)
//   CPQ_QOPS      quality-benchmark operations per thread (default 20000)
//   CPQ_SEED      base RNG seed (default 42)
//   CPQ_CSV       "1" to also emit CSV rows
#pragma once

#include <cstdint>
#include <vector>

#include "bench_framework/harness.hpp"

namespace cpq::bench {

struct Options {
  std::vector<unsigned> thread_ladder;
  double duration_s = 0.06;
  unsigned repetitions = 3;
  std::size_t prefill = 100'000;
  std::uint64_t quality_ops = 20'000;
  std::uint64_t seed = 42;
};

// Parse the CPQ_* environment variables over the defaults above.
Options options_from_env();

// Parse a thread-ladder spec ("1,2,4,8"; any non-digit separates entries,
// zeros are skipped). Returns an empty vector when no positive count is
// found — callers decide whether that is an error or "use the default".
std::vector<unsigned> parse_thread_ladder(const char* text);

// A BenchConfig preloaded with the harness-wide options; callers then set
// workload/keys/threads.
BenchConfig base_config(const Options& options);

}  // namespace cpq::bench
