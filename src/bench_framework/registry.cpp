#include "bench_framework/registry.hpp"

#include <memory>
#include <utility>

#include "queues/cbpq.hpp"
#include "queues/flat_combining.hpp"
#include "queues/globallock.hpp"
#include "queues/hunt_heap.hpp"
#include "queues/klsm/klsm.hpp"
#include "queues/klsm/standalone.hpp"
#include "queues/linden.hpp"
#include "queues/mound.hpp"
#include "queues/multiqueue.hpp"
#include "queues/multiqueue_eng.hpp"
#include "queues/shavit_lotan.hpp"
#include "queues/spraylist.hpp"
#include "queues/sundell_tsigas.hpp"
#include "seq/dary_heap.hpp"
#include "seq/pairing_heap.hpp"

namespace cpq::bench {

namespace {

using K = bench_key;
using V = bench_value;

// The MultiQueue family self-reports its (tuning-dependent) soft rank
// bound; keep the registry honest about reading it from the queues rather
// than duplicating the formula.
static_assert(RelaxationSelfReporting<MultiQueue<K, V>>);
static_assert(RelaxationSelfReporting<EngMultiQueue<K, V>>);

// Engineered-variant configs derive from the CLI-tunable mq_tuning():
// mq-buf = buffers only, mq-sticky = sticky rounds only, mq-eng = both.
MqEngConfig eng_config(bool sticky, bool buffered) {
  const MqTuning& tuning = mq_tuning();
  MqEngConfig cfg;
  cfg.c = tuning.c;
  cfg.stickiness = sticky ? tuning.stickiness : 1;
  cfg.ins_buffer = buffered ? tuning.buffer : 0;
  cfg.del_buffer = buffered ? tuning.buffer : 0;
  return cfg;
}

// Bind the template harness to a queue factory. Each runner stamps the
// queue's registry name into the config so watchdog dumps and repetition
// failure reports name the queue they supervise.
template <typename Factory>
QueueSpec make_spec(std::string name, std::string description, bool strict,
                    bool in_paper, Factory factory) {
  QueueSpec spec;
  spec.name = std::move(name);
  spec.description = std::move(description);
  spec.strict = strict;
  spec.in_paper = in_paper;
  spec.throughput = [factory, name = spec.name](const BenchConfig& cfg) {
    BenchConfig labeled = cfg;
    labeled.label = name;
    return run_throughput(
        [&](unsigned threads, std::uint64_t seed) {
          return factory(threads, seed, labeled);
        },
        labeled);
  };
  spec.quality = [factory, name = spec.name](const BenchConfig& cfg) {
    BenchConfig labeled = cfg;
    labeled.label = name;
    return run_quality(
        [&](unsigned threads, std::uint64_t seed) {
          return factory(threads, seed, labeled);
        },
        labeled);
  };
  spec.latency = [factory, name = spec.name](const BenchConfig& cfg) {
    BenchConfig labeled = cfg;
    labeled.label = name;
    return run_latency(
        [&](unsigned threads, std::uint64_t seed) {
          return factory(threads, seed, labeled);
        },
        labeled);
  };
  spec.sort_phases = [factory, name = spec.name](const BenchConfig& cfg) {
    BenchConfig labeled = cfg;
    labeled.label = name;
    return run_sort_phases(
        [&](unsigned threads, std::uint64_t seed) {
          return factory(threads, seed, labeled);
        },
        labeled);
  };
  spec.service_bench = [factory,
                        name = spec.name](const service::ServiceBenchConfig&
                                              cfg) {
    // The shard/queue factories reuse the throughput factory with a
    // BenchConfig carrying only what it reads (prefill sizing, label).
    BenchConfig inner;
    inner.prefill = cfg.prefill;
    inner.label = name;
    auto make_queue = [&](unsigned threads, std::uint64_t seed) {
      return factory(threads, seed, inner);
    };
    service::ServiceBenchConfig labeled = cfg;
    labeled.label = name + " (raw)";
    ServiceComparison comparison;
    comparison.raw = service::run_open_loop_raw(make_queue, labeled);
    labeled.label = name + " (service)";
    comparison.service = service::run_open_loop_service(make_queue, labeled);
    return comparison;
  };
  return spec;
}

std::vector<QueueSpec> build_registry() {
  std::vector<QueueSpec> registry;

  registry.push_back(make_spec(
      "glock", "sequential binary heap + global lock (baseline)",
      /*strict=*/true, /*in_paper=*/true,
      [](unsigned threads, std::uint64_t seed, const BenchConfig& cfg) {
        (void)seed;
        return std::make_unique<GlobalLockQueue<K, V>>(threads, cfg.prefill);
      }));

  registry.push_back(make_spec(
      "fc", "flat-combining sequential heap (strict, single combiner)",
      /*strict=*/true, /*in_paper=*/false,
      [](unsigned threads, std::uint64_t seed, const BenchConfig& cfg) {
        return std::make_unique<FcPriorityQueue<K, V>>(
            threads, cfg.prefill == 0 ? 1024 : cfg.prefill, seed);
      }));

  registry.push_back(make_spec(
      "linden", "Linden-Jonsson lock-free skiplist PQ (strict)",
      /*strict=*/true, /*in_paper=*/true,
      [](unsigned threads, std::uint64_t seed, const BenchConfig&) {
        return std::make_unique<LindenQueue<K, V>>(threads, 32, seed);
      }));

  registry.push_back(make_spec(
      "spray", "SprayList relaxed skiplist PQ",
      /*strict=*/false, /*in_paper=*/true,
      [](unsigned threads, std::uint64_t seed, const BenchConfig&) {
        return std::make_unique<SprayList<K, V>>(threads, 1, seed);
      }));

  registry.push_back(make_spec(
      "mq", "MultiQueue, c=4, binary-heap backed",
      /*strict=*/false, /*in_paper=*/true,
      [](unsigned threads, std::uint64_t seed, const BenchConfig&) {
        return std::make_unique<MultiQueue<K, V>>(threads, 4, seed);
      }));
  // The MultiQueue's rank error is O(cP) only in expectation — soft bound,
  // self-reported by the queue (queue_traits.hpp RelaxationSelfReporting),
  // shown by the live estimator for context, never a violation.
  registry.back().rank_bound = [](unsigned threads) {
    return MultiQueue<K, V>(1, 4).soft_rank_bound(threads);
  };
  registry.back().rank_bound_hard = false;

  for (const std::uint64_t k : {128ULL, 256ULL, 4096ULL}) {
    registry.push_back(make_spec(
        "klsm" + std::to_string(k),
        "k-LSM relaxed PQ, k=" + std::to_string(k),
        /*strict=*/false, /*in_paper=*/true,
        [k](unsigned threads, std::uint64_t seed, const BenchConfig&) {
          return std::make_unique<KLsmQueue<K, V>>(threads, k, seed);
        }));
    // Worst-case kP guarantee from the k-LSM paper — hard bound.
    registry.back().rank_bound = [k](unsigned threads) {
      return static_cast<double>(k) * threads;
    };
    registry.back().rank_bound_hard = true;
  }

  // ---- extensions (not part of the paper's roster) ----------------------

  registry.push_back(make_spec(
      "hunt", "Hunt et al. fine-grained locked heap (appendix D)",
      /*strict=*/true, /*in_paper=*/false,
      [](unsigned threads, std::uint64_t seed, const BenchConfig& cfg) {
        (void)seed;
        // Size generously: prefill plus room for the worst split-workload
        // drift during a measurement window.
        const std::size_t capacity = cfg.prefill * 2 + (1u << 22);
        return std::make_unique<HuntHeap<K, V>>(threads, capacity);
      }));

  registry.push_back(make_spec(
      "dlsm", "standalone distributed LSM (thread-local + spy)",
      /*strict=*/false, /*in_paper=*/false,
      [](unsigned threads, std::uint64_t seed, const BenchConfig&) {
        return std::make_unique<DlsmQueue<K, V>>(threads, seed);
      }));

  registry.push_back(make_spec(
      "slsm256", "standalone shared LSM, k=256",
      /*strict=*/false, /*in_paper=*/false,
      [](unsigned threads, std::uint64_t seed, const BenchConfig&) {
        return std::make_unique<SlsmQueue<K, V>>(threads, 256, seed);
      }));
  registry.back().rank_bound = [](unsigned threads) {
    return 256.0 * threads;
  };
  registry.back().rank_bound_hard = true;

  registry.push_back(make_spec(
      "mq-pairing", "MultiQueue, c=4, pairing-heap backed",
      /*strict=*/false, /*in_paper=*/false,
      [](unsigned threads, std::uint64_t seed, const BenchConfig&) {
        return std::make_unique<
            MultiQueue<K, V, seq::PairingHeap<K, V>>>(threads, 4, seed);
      }));
  registry.back().rank_bound = [](unsigned threads) {
    return 4.0 * threads;
  };

  registry.push_back(make_spec(
      "mq-dary", "MultiQueue, c=4, 4-ary-heap backed",
      /*strict=*/false, /*in_paper=*/false,
      [](unsigned threads, std::uint64_t seed, const BenchConfig&) {
        return std::make_unique<
            MultiQueue<K, V, seq::DaryHeap<K, V, 4>>>(threads, 4, seed);
      }));
  registry.back().rank_bound = [](unsigned threads) {
    return 4.0 * threads;
  };

  // Engineered MultiQueues (Williams & Sanders, arXiv:2504.11652): the
  // post-paper generation. All three trade rank error for locality, so the
  // armed bound widens with the configured stickiness/buffers — read live
  // from the queue's own soft_rank_bound at cell start, never hard.
  registry.push_back(make_spec(
      "mq-buf", "engineered MultiQueue: insertion+deletion buffers",
      /*strict=*/false, /*in_paper=*/false,
      [](unsigned threads, std::uint64_t seed, const BenchConfig&) {
        return std::make_unique<EngMultiQueue<K, V>>(
            threads, eng_config(/*sticky=*/false, /*buffered=*/true), seed);
      }));
  registry.back().rank_bound = [](unsigned threads) {
    return EngMultiQueue<K, V>::soft_rank_bound(
        eng_config(/*sticky=*/false, /*buffered=*/true), threads);
  };
  registry.back().rank_bound_hard = false;

  registry.push_back(make_spec(
      "mq-sticky", "engineered MultiQueue: sticky rounds (s ops per draw)",
      /*strict=*/false, /*in_paper=*/false,
      [](unsigned threads, std::uint64_t seed, const BenchConfig&) {
        return std::make_unique<EngMultiQueue<K, V>>(
            threads, eng_config(/*sticky=*/true, /*buffered=*/false), seed);
      }));
  registry.back().rank_bound = [](unsigned threads) {
    return EngMultiQueue<K, V>::soft_rank_bound(
        eng_config(/*sticky=*/true, /*buffered=*/false), threads);
  };
  registry.back().rank_bound_hard = false;

  registry.push_back(make_spec(
      "mq-eng", "engineered MultiQueue: buffers + sticky rounds",
      /*strict=*/false, /*in_paper=*/false,
      [](unsigned threads, std::uint64_t seed, const BenchConfig&) {
        return std::make_unique<EngMultiQueue<K, V>>(
            threads, eng_config(/*sticky=*/true, /*buffered=*/true), seed);
      }));
  registry.back().rank_bound = [](unsigned threads) {
    return EngMultiQueue<K, V>::soft_rank_bound(
        eng_config(/*sticky=*/true, /*buffered=*/true), threads);
  };
  registry.back().rank_bound_hard = false;

  registry.push_back(make_spec(
      "slotan", "Shavit-Lotan-style skiplist PQ, eager physical delete",
      /*strict=*/true, /*in_paper=*/false,
      [](unsigned threads, std::uint64_t seed, const BenchConfig&) {
        return std::make_unique<ShavitLotanQueue<K, V>>(threads, seed);
      }));

  registry.push_back(make_spec(
      "sundell", "Sundell-Tsigas-style skiplist PQ, cooperative cleanup",
      /*strict=*/true, /*in_paper=*/false,
      [](unsigned threads, std::uint64_t seed, const BenchConfig&) {
        return std::make_unique<SundellTsigasQueue<K, V>>(threads, seed);
      }));

  registry.push_back(make_spec(
      "mound", "Liu-Spear mound, lock-based (appendix D)",
      /*strict=*/true, /*in_paper=*/false,
      [](unsigned threads, std::uint64_t seed, const BenchConfig&) {
        return std::make_unique<Mound<K, V>>(threads, seed);
      }));

  registry.push_back(make_spec(
      "cbpq", "Braginsky chunk-based PQ, FAA deletes (appendix D)",
      /*strict=*/true, /*in_paper=*/false,
      [](unsigned threads, std::uint64_t seed, const BenchConfig&) {
        (void)seed;
        return std::make_unique<ChunkBasedQueue<K, V>>(threads);
      }));

  return registry;
}

}  // namespace

MqTuning& mq_tuning() {
  static MqTuning tuning;
  return tuning;
}

const std::vector<QueueSpec>& queue_registry() {
  static const std::vector<QueueSpec> registry = build_registry();
  return registry;
}

const std::vector<BenchModeSpec>& bench_mode_registry() {
  static const std::vector<BenchModeSpec> modes = {
      {"throughput", "fixed-duration MOps/s sweep (paper Figs. 1-4)"},
      {"quality", "rank-error replay, mean/stddev (paper Tables 1-5)"},
      {"latency", "per-operation percentiles, p50/p99 ns (paper §F)"},
      {"sort", "Larkin-Sen-Tarjan insert-all/delete-all phases (§F)"},
      {"service", "open-loop Poisson task dispatch, raw vs PriorityService"},
  };
  return modes;
}

const BenchModeSpec* find_bench_mode(std::string_view name) {
  for (const BenchModeSpec& mode : bench_mode_registry()) {
    if (mode.name == name) return &mode;
  }
  return nullptr;
}

const QueueSpec* find_queue(std::string_view name) {
  for (const QueueSpec& spec : queue_registry()) {
    if (spec.name == name) return &spec;
  }
  return nullptr;
}

std::vector<const QueueSpec*> paper_roster() {
  std::vector<const QueueSpec*> roster;
  for (const QueueSpec& spec : queue_registry()) {
    if (spec.in_paper) roster.push_back(&spec);
  }
  return roster;
}

std::vector<const QueueSpec*> resolve_roster(std::string_view names) {
  if (names.empty()) return paper_roster();
  std::vector<const QueueSpec*> roster;
  std::size_t start = 0;
  while (start <= names.size()) {
    std::size_t comma = names.find(',', start);
    if (comma == std::string_view::npos) comma = names.size();
    const std::string_view name = names.substr(start, comma - start);
    if (!name.empty()) {
      if (const QueueSpec* spec = find_queue(name)) roster.push_back(spec);
    }
    start = comma + 1;
  }
  return roster;
}

}  // namespace cpq::bench
