#include "bench_framework/table.hpp"

#include <cstdio>
#include <cstdlib>
#include <utility>

namespace cpq::bench {

Table::Table(std::string title, std::string row_header,
             std::vector<std::string> columns)
    : title_(std::move(title)),
      row_header_(std::move(row_header)),
      columns_(std::move(columns)) {}

void Table::add_row(const std::string& row_label,
                    std::vector<std::string> cells) {
  rows_.emplace_back(row_label, std::move(cells));
}

std::string Table::format_mean_ci(double mean, double ci) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.2f±%.2f", mean, ci);
  return buf;
}

std::string Table::format_mean_std(double mean, double stddev) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.1f (σ %.1f)", mean, stddev);
  return buf;
}

void Table::print() const {
  std::printf("\n== %s ==\n", title_.c_str());
  // Column widths.
  std::size_t label_width = row_header_.size();
  for (const auto& [label, cells] : rows_) {
    if (label.size() > label_width) label_width = label.size();
  }
  std::vector<std::size_t> widths(columns_.size());
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    widths[c] = columns_[c].size();
    for (const auto& [label, cells] : rows_) {
      if (c < cells.size() && cells[c].size() > widths[c]) {
        widths[c] = cells[c].size();
      }
    }
  }
  std::printf("%-*s", static_cast<int>(label_width + 2), row_header_.c_str());
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    std::printf("%*s", static_cast<int>(widths[c] + 2), columns_[c].c_str());
  }
  std::printf("\n");
  for (const auto& [label, cells] : rows_) {
    std::printf("%-*s", static_cast<int>(label_width + 2), label.c_str());
    for (std::size_t c = 0; c < columns_.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : std::string("-");
      std::printf("%*s", static_cast<int>(widths[c] + 2), cell.c_str());
    }
    std::printf("\n");
  }

  if (const char* csv = std::getenv("CPQ_CSV"); csv && csv[0] == '1') {
    std::printf("csv,title,%s\n", title_.c_str());
    std::printf("csv,%s", row_header_.c_str());
    for (const auto& column : columns_) std::printf(",%s", column.c_str());
    std::printf("\n");
    for (const auto& [label, cells] : rows_) {
      std::printf("csv,%s", label.c_str());
      for (const auto& cell : cells) std::printf(",%s", cell.c_str());
      std::printf("\n");
    }
  }
  std::fflush(stdout);
}

}  // namespace cpq::bench
