// Key generators for the configurable benchmark (paper §2/§F).
//
// Key distributions:
//   * uniform  — keys uniformly at random from a 32-, 16-, or 8-bit range;
//   * ascending / descending — a uniformly chosen base key from a small
//     range, shifted up (down) by the thread's operation number, modelling
//     monotone workloads such as event times in a simulation;
//   * hold — the next key is the last *deleted* key plus a random increment
//     (the classic hold model of Jones 1986, the paper's §F "key dependency
//     switch"); used by the DES example and the extended benchmark.
//
// Each thread owns one generator instance seeded from (base seed,
// thread id), so runs are reproducible and streams are independent.
#pragma once

#include <cstdint>
#include <string>

#include "platform/rng.hpp"

namespace cpq::bench {

enum class KeyDistribution : std::uint8_t {
  kUniform,
  kAscending,
  kDescending,
  kHold,
};

struct KeyConfig {
  KeyDistribution distribution = KeyDistribution::kUniform;
  // Width of the uniform range (32, 16 or 8 in the paper) or of the random
  // base component for ascending/descending/hold.
  unsigned bits = 32;

  static KeyConfig uniform(unsigned bits = 32) {
    return {KeyDistribution::kUniform, bits};
  }
  static KeyConfig ascending(unsigned base_bits = 10) {
    return {KeyDistribution::kAscending, base_bits};
  }
  static KeyConfig descending(unsigned base_bits = 10) {
    return {KeyDistribution::kDescending, base_bits};
  }
  static KeyConfig hold(unsigned base_bits = 10) {
    return {KeyDistribution::kHold, base_bits};
  }

  std::string name() const {
    switch (distribution) {
      case KeyDistribution::kUniform:
        return "uniform" + std::to_string(bits);
      case KeyDistribution::kAscending:
        return "ascending";
      case KeyDistribution::kDescending:
        return "descending";
      case KeyDistribution::kHold:
        return "hold";
    }
    return "?";
  }
};

class KeyGenerator {
 public:
  // Descending keys start from this offset and move downward; large enough
  // that realistic run lengths never underflow.
  static constexpr std::uint64_t kDescendingStart = std::uint64_t{1} << 42;

  KeyGenerator(const KeyConfig& config, std::uint64_t base_seed,
               unsigned thread_id)
      : config_(config),
        rng_(thread_seed(base_seed, thread_id)),
        mask_(config.bits >= 64 ? ~std::uint64_t{0}
                                : (std::uint64_t{1} << config.bits) - 1) {}

  std::uint64_t next() {
    const std::uint64_t base = rng_.next() & mask_;
    switch (config_.distribution) {
      case KeyDistribution::kUniform:
        return base;
      case KeyDistribution::kAscending:
        return base + op_counter_++;
      case KeyDistribution::kDescending: {
        const std::uint64_t shift = op_counter_++;
        const std::uint64_t down =
            shift < kDescendingStart ? kDescendingStart - shift : 0;
        return down + base;
      }
      case KeyDistribution::kHold:
        return last_deleted_ + base;
    }
    return base;
  }

  // Feedback for the hold model; harmless to call for other distributions.
  void observe_deleted(std::uint64_t key) { last_deleted_ = key; }

  // Advance the per-thread operation counter without drawing from the RNG,
  // as if `ops` keys had already been generated. Lets tests exercise the
  // descending distribution's underflow clamp at kDescendingStart without
  // iterating 2^42 times.
  void skip(std::uint64_t ops) { op_counter_ += ops; }

  Xoroshiro128& rng() { return rng_; }

 private:
  KeyConfig config_;
  Xoroshiro128 rng_;
  std::uint64_t mask_;
  std::uint64_t op_counter_ = 0;
  std::uint64_t last_deleted_ = 0;
};

}  // namespace cpq::bench
