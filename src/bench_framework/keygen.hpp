// Compatibility shim: key generation moved to the workloads subsystem
// (src/workloads/keyspace.hpp) when the adversarial distributions landed.
// Existing bench_framework call sites keep the cpq::bench spellings.
#pragma once

#include "workloads/keyspace.hpp"

namespace cpq::bench {

using workloads::KeyConfig;
using workloads::KeyDistribution;
using workloads::KeyGenerator;

}  // namespace cpq::bench
