#include "bench_framework/options.hpp"

#include <cstdlib>
#include <string>

namespace cpq::bench {

namespace {

const char* env(const char* name) { return std::getenv(name); }

std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* value = env(name);
  if (!value || !*value) return fallback;
  return std::strtoull(value, nullptr, 10);
}

}  // namespace

std::vector<unsigned> parse_thread_ladder(const char* text) {
  std::vector<unsigned> ladder;
  unsigned current = 0;
  bool have_digit = false;
  for (const char* p = text;; ++p) {
    if (*p >= '0' && *p <= '9') {
      current = current * 10 + static_cast<unsigned>(*p - '0');
      have_digit = true;
    } else {
      if (have_digit && current > 0) ladder.push_back(current);
      current = 0;
      have_digit = false;
      if (*p == '\0') break;
    }
  }
  return ladder;
}

Options options_from_env() {
  Options options;
  if (const char* ladder = env("CPQ_THREADS"); ladder && *ladder) {
    options.thread_ladder = parse_thread_ladder(ladder);
  }
  if (options.thread_ladder.empty()) {
    options.thread_ladder = {1, 2, 4, 8};
  }
  options.duration_s =
      static_cast<double>(env_u64("CPQ_BENCH_MS", 60)) / 1000.0;
  options.repetitions =
      static_cast<unsigned>(env_u64("CPQ_BENCH_REPS", 3));
  options.prefill = static_cast<std::size_t>(env_u64("CPQ_PREFILL", 100'000));
  options.quality_ops = env_u64("CPQ_QOPS", 20'000);
  options.seed = env_u64("CPQ_SEED", 42);
  if (options.repetitions == 0) options.repetitions = 1;
  return options;
}

BenchConfig base_config(const Options& options) {
  BenchConfig config;
  config.duration_s = options.duration_s;
  config.repetitions = options.repetitions;
  config.prefill = options.prefill;
  config.ops_per_thread = options.quality_ops;
  config.seed = options.seed;
  return config;
}

}  // namespace cpq::bench
