#include "bench_framework/json_out.hpp"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <utility>

namespace cpq::bench {

namespace {

std::mutex sink_mutex;

void append_escaped(std::string& out, const std::string& text) {
  out += '"';
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void append_double(std::string& out, double value) {
  char buf[64];
  // %.17g round-trips every finite double exactly.
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  out += buf;
}

// --- minimal parser for the flat records this module emits ----------------

struct Cursor {
  const char* p;

  void skip_ws() {
    while (*p == ' ' || *p == '\t' || *p == '\n' || *p == '\r') ++p;
  }

  bool consume(char c) {
    skip_ws();
    if (*p != c) return false;
    ++p;
    return true;
  }
};

bool parse_string(Cursor& cur, std::string& out) {
  if (!cur.consume('"')) return false;
  out.clear();
  while (*cur.p != '"') {
    if (*cur.p == '\0') return false;
    if (*cur.p == '\\') {
      ++cur.p;
      switch (*cur.p) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            ++cur.p;
            const char c = *cur.p;
            code <<= 4;
            if (c >= '0' && c <= '9') code |= static_cast<unsigned>(c - '0');
            else if (c >= 'a' && c <= 'f') code |= static_cast<unsigned>(c - 'a' + 10);
            else if (c >= 'A' && c <= 'F') code |= static_cast<unsigned>(c - 'A' + 10);
            else return false;
          }
          if (code > 0x7F) return false;  // emitter only escapes ASCII controls
          out += static_cast<char>(code);
          break;
        }
        default: return false;
      }
      ++cur.p;
    } else {
      out += *cur.p++;
    }
  }
  ++cur.p;  // closing quote
  return true;
}

bool parse_number(Cursor& cur, double& out) {
  cur.skip_ws();
  char* end = nullptr;
  out = std::strtod(cur.p, &end);
  if (end == cur.p) return false;
  cur.p = end;
  return true;
}

}  // namespace

std::string to_json_line(const JsonRecord& record) {
  std::string out = "{\"schema_version\":";
  out += std::to_string(record.schema_version);
  out += ",\"experiment\":";
  append_escaped(out, record.experiment);
  out += ",\"threads\":";
  out += std::to_string(record.threads);
  out += ",\"queue\":";
  append_escaped(out, record.queue);
  out += ",\"metric\":";
  append_escaped(out, record.metric);
  out += ",\"mean\":";
  if (record.mean_is_null) {
    out += "null";
  } else {
    append_double(out, record.mean);
  }
  out += ",\"ci95\":";
  append_double(out, record.ci95);
  out += ",\"reps\":";
  out += std::to_string(record.reps);
  out += ",\"status\":";
  append_escaped(out, record.status);
  out += '}';
  return out;
}

bool parse_json_record(const std::string& line, JsonRecord& out) {
  out = JsonRecord{};
  out.schema_version = 1;  // absent key = pre-versioning files
  Cursor cur{line.c_str()};
  if (!cur.consume('{')) return false;
  bool seen[7] = {};
  bool seen_status = false;
  bool seen_version = false;
  for (;;) {
    std::string key;
    if (!parse_string(cur, key)) return false;
    if (!cur.consume(':')) return false;
    if (key == "schema_version") {
      double v = 0;
      if (seen_version || !parse_number(cur, v)) return false;
      if (v < 1 || v > kJsonSchemaVersion) return false;
      out.schema_version = static_cast<unsigned>(v);
      seen_version = true;
    } else if (key == "experiment") {
      if (seen[0] || !parse_string(cur, out.experiment)) return false;
      seen[0] = true;
    } else if (key == "threads") {
      double v = 0;
      if (seen[1] || !parse_number(cur, v) || v < 0) return false;
      out.threads = static_cast<unsigned>(v);
      seen[1] = true;
    } else if (key == "queue") {
      if (seen[2] || !parse_string(cur, out.queue)) return false;
      seen[2] = true;
    } else if (key == "metric") {
      if (seen[3] || !parse_string(cur, out.metric)) return false;
      seen[3] = true;
    } else if (key == "mean") {
      if (seen[4]) return false;
      cur.skip_ws();
      if (std::strncmp(cur.p, "null", 4) == 0) {
        // Schema v2: metric unavailable in this environment.
        cur.p += 4;
        out.mean = 0.0;
        out.mean_is_null = true;
      } else if (!parse_number(cur, out.mean)) {
        return false;
      }
      seen[4] = true;
    } else if (key == "ci95") {
      if (seen[5] || !parse_number(cur, out.ci95)) return false;
      seen[5] = true;
    } else if (key == "reps") {
      double v = 0;
      if (seen[6] || !parse_number(cur, v) || v < 0) return false;
      out.reps = static_cast<unsigned>(v);
      seen[6] = true;
    } else if (key == "status") {
      // Optional (pre-status files omit it; JsonRecord defaults to "ok").
      if (seen_status || !parse_string(cur, out.status)) return false;
      if (out.status != "ok" && out.status != "failed") return false;
      seen_status = true;
    } else {
      return false;  // schema drift: unknown key
    }
    if (cur.consume(',')) continue;
    break;
  }
  if (!cur.consume('}')) return false;
  cur.skip_ws();
  if (*cur.p != '\0') return false;
  for (const bool s : seen) {
    if (!s) return false;
  }
  return true;
}

JsonSink& JsonSink::instance() {
  static JsonSink sink;
  return sink;
}

JsonSink::JsonSink() {
  if (const char* path = std::getenv("CPQ_JSON"); path && *path) {
    path_ = path;
  }
}

void JsonSink::set_path(std::string path) {
  std::lock_guard<std::mutex> lock(sink_mutex);
  path_ = std::move(path);
}

bool JsonSink::enabled() const { return !path_.empty(); }

void JsonSink::record(const JsonRecord& record) {
  std::lock_guard<std::mutex> lock(sink_mutex);
  if (path_.empty()) return;
  const std::string line = to_json_line(record);
  if (path_ == "-") {
    std::printf("%s\n", line.c_str());
    std::fflush(stdout);
    return;
  }
  if (std::FILE* f = std::fopen(path_.c_str(), "a")) {
    std::fprintf(f, "%s\n", line.c_str());
    std::fclose(f);
  } else {
    static bool warned = false;
    if (!warned) {
      warned = true;
      std::fprintf(stderr, "[cpq] CPQ_JSON: cannot append to '%s'\n",
                   path_.c_str());
    }
  }
}

}  // namespace cpq::bench
