// Latency measurement mode — the paper's "throughput/latency switch" (§F):
// "Alternatively, a number of queue operations could be prescribed, and the
// time (latency) for this number and mix of operations measured."
//
// Every thread executes a fixed number of operations and timestamps each
// one individually (RDTSC, calibrated against the wall clock per
// repetition). Per-operation latencies are split by operation type and
// summarized as percentiles — throughput hides convoying and tail effects
// (e.g. a GlobalLock queue can post decent throughput while its p99
// explodes), which is precisely why the paper proposes the switch.
#pragma once

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

#include "bench_framework/harness.hpp"
#include "platform/thread_util.hpp"
#include "platform/timing.hpp"

namespace cpq::bench {

struct LatencyPercentiles {
  double p50_ns = 0;
  double p90_ns = 0;
  double p99_ns = 0;
  double max_ns = 0;
  std::uint64_t samples = 0;
};

struct LatencyResult {
  LatencyPercentiles insert;
  LatencyPercentiles delete_min;
};

// Destructive percentile extraction (nth_element reorders `samples_ns`).
inline LatencyPercentiles percentiles_of(std::vector<double>& samples_ns) {
  LatencyPercentiles result;
  result.samples = samples_ns.size();
  if (samples_ns.empty()) return result;
  auto at = [&](double q) {
    const std::size_t index = static_cast<std::size_t>(
        q * static_cast<double>(samples_ns.size() - 1));
    std::nth_element(samples_ns.begin(), samples_ns.begin() + index,
                     samples_ns.end());
    return samples_ns[index];
  };
  result.p50_ns = at(0.50);
  result.p90_ns = at(0.90);
  result.p99_ns = at(0.99);
  result.max_ns = *std::max_element(samples_ns.begin(), samples_ns.end());
  return result;
}

// Run `cfg.repetitions` latency repetitions; `cfg.ops_per_thread` operations
// per thread per repetition, workload/key distribution as configured.
template <typename Factory>
LatencyResult run_latency(Factory&& make_queue, const BenchConfig& cfg) {
  std::vector<double> insert_ns;
  std::vector<double> delete_ns;

  for (unsigned rep = 0; rep < cfg.repetitions; ++rep) {
    const std::uint64_t seed = cfg.seed + 31337ULL * rep;
    auto queue = make_queue(cfg.threads, seed);
    prefill_queue(*queue, cfg, seed, nullptr);

    // Calibrate fast_timestamp ticks against wall time for this rep.
    const std::uint64_t tsc0 = fast_timestamp();
    Stopwatch calibration;

    std::vector<std::vector<std::uint64_t>> ins(cfg.threads);
    std::vector<std::vector<std::uint64_t>> del(cfg.threads);
    SpinBarrier barrier(cfg.threads);
    run_team(cfg.threads, [&](unsigned tid) {
      auto handle = queue->get_handle(tid);
      KeyGenerator gen(cfg.keys, seed, tid);
      OpChooser chooser(cfg.workload, tid, cfg.threads, seed,
                        cfg.insert_fraction, cfg.batch_size);
      auto& my_ins = ins[tid];
      auto& my_del = del[tid];
      my_ins.reserve(cfg.ops_per_thread);
      my_del.reserve(cfg.ops_per_thread);
      std::uint64_t counter = 0;
      barrier.arrive_and_wait();
      for (std::uint64_t op = 0; op < cfg.ops_per_thread; ++op) {
        if (chooser.next_is_insert()) {
          const std::uint64_t key = gen.next();
          const std::uint64_t start = fast_timestamp();
          handle.insert(key, detail::item_id(tid, counter++));
          my_ins.push_back(fast_timestamp() - start);
        } else {
          std::uint64_t key;
          std::uint64_t value;
          const std::uint64_t start = fast_timestamp();
          const bool ok = handle.delete_min(key, value);
          my_del.push_back(fast_timestamp() - start);
          if (ok) gen.observe_deleted(key);
        }
      }
    }, cfg.pin_threads);

    const double ns_per_tick =
        static_cast<double>(calibration.elapsed_ns()) /
        static_cast<double>(fast_timestamp() - tsc0);
    for (unsigned tid = 0; tid < cfg.threads; ++tid) {
      for (std::uint64_t ticks : ins[tid]) {
        insert_ns.push_back(static_cast<double>(ticks) * ns_per_tick);
      }
      for (std::uint64_t ticks : del[tid]) {
        delete_ns.push_back(static_cast<double>(ticks) * ns_per_tick);
      }
    }
  }

  LatencyResult result;
  result.insert = percentiles_of(insert_ns);
  result.delete_min = percentiles_of(delete_ns);
  return result;
}

// Sorting phases (Larkin–Sen–Tarjan; paper §F "large batches"): all threads
// insert their share of cfg.prefill random items (phase 1, timed), then
// delete until the queue drains (phase 2, timed). Fixed work, not fixed
// time, so a fast queue cannot inflate its number on a drained queue.
// Returns {insert MOps/s, delete MOps/s} averaged over repetitions.
template <typename Factory>
std::pair<double, double> run_sort_phases(Factory&& make_queue,
                                          const BenchConfig& cfg) {
  double insert_mops = 0;
  double delete_mops = 0;
  for (unsigned rep = 0; rep < cfg.repetitions; ++rep) {
    const std::uint64_t seed = cfg.seed + 7331ULL * rep;
    auto queue = make_queue(cfg.threads, seed);
    const std::uint64_t per_thread =
        (cfg.prefill + cfg.threads - 1) / cfg.threads;
    const std::uint64_t total = per_thread * cfg.threads;

    // Each worker records its own phase-boundary timestamps; the phase
    // duration is max(end) - min(start) over the team. (A coordinator
    // thread reading the clock around barrier crossings can be descheduled
    // for a whole phase when threads outnumber cores, measuring ~0.)
    auto now_ns = [] {
      return std::chrono::duration_cast<std::chrono::nanoseconds>(
                 std::chrono::steady_clock::now().time_since_epoch())
          .count();
    };
    struct PhaseStamp {
      std::int64_t insert_start, insert_end, delete_start, delete_end;
    };
    std::vector<CacheAligned<PhaseStamp>> stamps(cfg.threads);

    SpinBarrier barrier(cfg.threads);
    std::atomic<std::uint64_t> remaining{total};
    run_team(cfg.threads, [&](unsigned tid) {
      auto handle = queue->get_handle(tid);
      KeyGenerator gen(cfg.keys, seed, tid);
      barrier.arrive_and_wait();
      stamps[tid].value.insert_start = now_ns();
      for (std::uint64_t i = 0; i < per_thread; ++i) {
        handle.insert(gen.next(), detail::item_id(tid, i));
      }
      stamps[tid].value.insert_end = now_ns();
      barrier.arrive_and_wait();
      stamps[tid].value.delete_start = now_ns();
      std::uint64_t key;
      std::uint64_t value;
      unsigned misses = 0;
      while (remaining.load(std::memory_order_relaxed) > 0 &&
             misses < 1024) {
        if (handle.delete_min(key, value)) {
          remaining.fetch_sub(1, std::memory_order_relaxed);
          misses = 0;
        } else {
          ++misses;
        }
      }
      stamps[tid].value.delete_end = now_ns();
    }, cfg.pin_threads);

    std::int64_t ins_start = stamps[0].value.insert_start;
    std::int64_t ins_end = stamps[0].value.insert_end;
    std::int64_t del_start = stamps[0].value.delete_start;
    std::int64_t del_end = stamps[0].value.delete_end;
    for (unsigned tid = 1; tid < cfg.threads; ++tid) {
      ins_start = std::min(ins_start, stamps[tid].value.insert_start);
      ins_end = std::max(ins_end, stamps[tid].value.insert_end);
      del_start = std::min(del_start, stamps[tid].value.delete_start);
      del_end = std::max(del_end, stamps[tid].value.delete_end);
    }
    insert_mops += static_cast<double>(total) /
                   static_cast<double>(ins_end - ins_start) * 1e3;
    delete_mops += static_cast<double>(total) /
                   static_cast<double>(del_end - del_start) * 1e3;
  }
  return {insert_mops / cfg.repetitions, delete_mops / cfg.repetitions};
}

}  // namespace cpq::bench
