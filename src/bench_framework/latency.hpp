// Latency measurement mode — the paper's "throughput/latency switch" (§F):
// "Alternatively, a number of queue operations could be prescribed, and the
// time (latency) for this number and mix of operations measured."
//
// Every thread executes a fixed number of operations and timestamps each
// one individually (RDTSCP, calibrated against the wall clock per
// repetition). Per-operation latencies are recorded into per-thread
// log-linear histograms (src/obs/histogram.hpp) — O(1) memory per
// operation, so the mode runs in bounded memory at any operation count —
// and split by operation type. Percentiles summarize the merged
// histograms: throughput hides convoying and tail effects (e.g. a
// GlobalLock queue can post decent throughput while its p99 explodes),
// which is precisely why the paper proposes the switch.
#pragma once

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <thread>
#include <vector>

#include "bench_framework/harness.hpp"
#include "obs/histogram.hpp"
#include "platform/thread_util.hpp"
#include "platform/timing.hpp"

namespace cpq::bench {

struct LatencyPercentiles {
  double p50_ns = 0;
  double p90_ns = 0;
  double p99_ns = 0;
  double max_ns = 0;
  std::uint64_t samples = 0;
};

struct LatencyResult {
  LatencyPercentiles insert;
  LatencyPercentiles delete_min;
  // Merged over all threads and completed repetitions, in nanoseconds.
  obs::LogHistogram insert_ns;
  obs::LogHistogram delete_ns;
  unsigned completed_reps = 0;
  unsigned failed_reps = 0;
  bool failed() const { return completed_reps == 0; }
};

// Destructive percentile extraction (sorts `samples_ns` in place).
//
// Nearest-rank indexing: the q-quantile of n sorted samples is element
// ceil(q*n) (1-based). The previous floor(q*(n-1)) indexing under-reported
// the tail — with 10 samples "p99" read the 9th value instead of the max.
inline LatencyPercentiles percentiles_of(std::vector<double>& samples_ns) {
  LatencyPercentiles result;
  result.samples = samples_ns.size();
  if (samples_ns.empty()) return result;
  std::sort(samples_ns.begin(), samples_ns.end());
  auto at = [&](double q) {
    const double rank = std::ceil(q * static_cast<double>(samples_ns.size()));
    std::size_t index =
        rank <= 1.0 ? 0 : static_cast<std::size_t>(rank) - 1;
    index = std::min(index, samples_ns.size() - 1);
    return samples_ns[index];
  };
  result.p50_ns = at(0.50);
  result.p90_ns = at(0.90);
  result.p99_ns = at(0.99);
  result.max_ns = samples_ns.back();
  return result;
}

// Percentiles from a (nanosecond-domain) histogram; same nearest-rank
// convention, quantized to the histogram's ~3% relative bucket width
// (max is exact).
inline LatencyPercentiles percentiles_of(const obs::LogHistogram& hist) {
  LatencyPercentiles result;
  result.samples = hist.count();
  if (result.samples == 0) return result;
  result.p50_ns = static_cast<double>(hist.quantile(0.50));
  result.p90_ns = static_cast<double>(hist.quantile(0.90));
  result.p99_ns = static_cast<double>(hist.quantile(0.99));
  result.max_ns = static_cast<double>(hist.max_value());
  return result;
}

// Run `cfg.repetitions` latency repetitions; `cfg.ops_per_thread` operations
// per thread per repetition, workload/key distribution as configured.
// A failed repetition (bad_alloc, a queue-reported error) is reported and
// skipped, mirroring run_throughput; callers check result.failed().
template <typename Factory>
LatencyResult run_latency(Factory&& make_queue, const BenchConfig& cfg) {
  LatencyResult result;

  for (unsigned rep = 0; rep < cfg.repetitions; ++rep) {
    const std::uint64_t seed = cfg.seed + 31337ULL * rep;
    try {
      auto queue = make_queue(cfg.threads, seed);
      prefill_queue(*queue, cfg, seed, nullptr);

      // Calibrate fast_timestamp ticks against wall time for this rep.
      const std::uint64_t tsc0 = fast_timestamp();
      Stopwatch calibration;

      // Tick-domain recordings, one histogram pair per thread (single
      // writer); scaled into the nanosecond accumulators after the join.
      std::vector<obs::LogHistogram> ins(cfg.threads);
      std::vector<obs::LogHistogram> del(cfg.threads);
      SpinBarrier barrier(cfg.threads);
      run_team(cfg.threads, [&](unsigned tid) {
        auto handle = queue->get_handle(tid);
        KeyGenerator gen(cfg.keys, seed, tid);
        OpChooser chooser(cfg.workload, tid, cfg.threads, seed,
                          cfg.insert_fraction, cfg.batch_size,
                          cfg.producer_fraction);
        auto& my_ins = ins[tid];
        auto& my_del = del[tid];
        std::uint64_t counter = 0;
        barrier.arrive_and_wait();
        for (std::uint64_t op = 0; op < cfg.ops_per_thread; ++op) {
          if (chooser.next_is_insert()) {
            const std::uint64_t key = gen.next();
            const std::uint64_t start = fast_timestamp();
            handle.insert(key, detail::item_id(tid, counter++));
            my_ins.record(fast_timestamp() - start);
            CPQ_TRACE_OP(op + 1, ::cpq::obs::TraceOp::kInsert, key);
          } else {
            std::uint64_t key = 0;
            std::uint64_t value;
            const std::uint64_t start = fast_timestamp();
            const bool ok = handle.delete_min(key, value);
            my_del.record(fast_timestamp() - start);
            if (ok) gen.observe_deleted(key);
            CPQ_TRACE_OP(op + 1,
                         ok ? ::cpq::obs::TraceOp::kDeleteHit
                            : ::cpq::obs::TraceOp::kDeleteEmpty,
                         key);
          }
        }
      }, cfg.pin_threads);

      const double ns_per_tick =
          static_cast<double>(calibration.elapsed_ns()) /
          static_cast<double>(fast_timestamp() - tsc0);
      for (unsigned tid = 0; tid < cfg.threads; ++tid) {
        result.insert_ns.add_scaled(ins[tid], ns_per_tick);
        result.delete_ns.add_scaled(del[tid], ns_per_tick);
      }
      obs::MetricsRegistry::global().add_cell_ops(
          static_cast<std::uint64_t>(cfg.threads) * cfg.ops_per_thread);
      ++result.completed_reps;
    } catch (const std::exception& e) {
      ++result.failed_reps;
      std::fprintf(stderr,
                   "[cpq] %s: latency repetition %u/%u failed: %s\n",
                   cfg.label.empty() ? "queue" : cfg.label.c_str(), rep + 1,
                   cfg.repetitions, e.what());
    }
  }
  if (result.failed() && cfg.repetitions > 0) {
    std::fprintf(stderr, "[cpq] %s: every latency repetition failed\n",
                 cfg.label.empty() ? "queue" : cfg.label.c_str());
  }

  result.insert = percentiles_of(result.insert_ns);
  result.delete_min = percentiles_of(result.delete_ns);
  return result;
}

// Sorting phases (Larkin–Sen–Tarjan; paper §F "large batches"): all threads
// insert their share of cfg.prefill random items (phase 1, timed), then
// delete until the queue drains (phase 2, timed). Fixed work, not fixed
// time, so a fast queue cannot inflate its number on a drained queue.
// Returns {insert MOps/s, delete MOps/s} averaged over repetitions.
template <typename Factory>
std::pair<double, double> run_sort_phases(Factory&& make_queue,
                                          const BenchConfig& cfg) {
  double insert_mops = 0;
  double delete_mops = 0;
  for (unsigned rep = 0; rep < cfg.repetitions; ++rep) {
    const std::uint64_t seed = cfg.seed + 7331ULL * rep;
    auto queue = make_queue(cfg.threads, seed);
    const std::uint64_t per_thread =
        (cfg.prefill + cfg.threads - 1) / cfg.threads;
    const std::uint64_t total = per_thread * cfg.threads;

    // Each worker records its own phase-boundary timestamps; the phase
    // duration is max(end) - min(start) over the team. (A coordinator
    // thread reading the clock around barrier crossings can be descheduled
    // for a whole phase when threads outnumber cores, measuring ~0.)
    auto now_ns = [] {
      return std::chrono::duration_cast<std::chrono::nanoseconds>(
                 std::chrono::steady_clock::now().time_since_epoch())
          .count();
    };
    struct PhaseStamp {
      std::int64_t insert_start, insert_end, delete_start, delete_end;
    };
    std::vector<CacheAligned<PhaseStamp>> stamps(cfg.threads);

    SpinBarrier barrier(cfg.threads);
    std::atomic<std::uint64_t> remaining{total};
    run_team(cfg.threads, [&](unsigned tid) {
      auto handle = queue->get_handle(tid);
      KeyGenerator gen(cfg.keys, seed, tid);
      barrier.arrive_and_wait();
      stamps[tid].value.insert_start = now_ns();
      for (std::uint64_t i = 0; i < per_thread; ++i) {
        handle.insert(gen.next(), detail::item_id(tid, i));
      }
      stamps[tid].value.insert_end = now_ns();
      barrier.arrive_and_wait();
      stamps[tid].value.delete_start = now_ns();
      std::uint64_t key;
      std::uint64_t value;
      unsigned misses = 0;
      while (remaining.load(std::memory_order_relaxed) > 0 &&
             misses < 1024) {
        if (handle.delete_min(key, value)) {
          remaining.fetch_sub(1, std::memory_order_relaxed);
          misses = 0;
        } else {
          ++misses;
        }
      }
      stamps[tid].value.delete_end = now_ns();
    }, cfg.pin_threads);

    std::int64_t ins_start = stamps[0].value.insert_start;
    std::int64_t ins_end = stamps[0].value.insert_end;
    std::int64_t del_start = stamps[0].value.delete_start;
    std::int64_t del_end = stamps[0].value.delete_end;
    for (unsigned tid = 1; tid < cfg.threads; ++tid) {
      ins_start = std::min(ins_start, stamps[tid].value.insert_start);
      ins_end = std::max(ins_end, stamps[tid].value.insert_end);
      del_start = std::min(del_start, stamps[tid].value.delete_start);
      del_end = std::max(del_end, stamps[tid].value.delete_end);
    }
    insert_mops += static_cast<double>(total) /
                   static_cast<double>(ins_end - ins_start) * 1e3;
    delete_mops += static_cast<double>(total) /
                   static_cast<double>(del_end - del_start) * 1e3;
  }
  return {insert_mops / cfg.repetitions, delete_mops / cfg.repetitions};
}

}  // namespace cpq::bench
