// Machine-readable benchmark results: one JSON object per line ("JSON
// Lines"), one line per (experiment, threads, queue, metric) cell.
//
// The ASCII tables are for humans; perf-trajectory tooling needs something
// it can parse without scraping column widths. Setting the environment
// variable CPQ_JSON=<path> (or passing --json[=path] to cpq_bench_cli)
// makes every table-producing helper additionally append records of the
// form
//
//   {"experiment":"fig1","threads":4,"queue":"mq",
//    "metric":"throughput_mops","mean":12.34,"ci95":0.56,"reps":3}
//
// to <path> ("-" writes to stdout). Appending (not truncating) lets one
// sweep over several bench binaries accumulate into a single BENCH_*.json
// trajectory file. The writer and the parser below round-trip exactly
// (tests/bench_framework_test.cpp), so downstream tooling can rely on the
// schema.
#pragma once

#include <string>

namespace cpq::bench {

// Schema version emitted with every record. History:
//   1 — implicit (no schema_version key): the original 7-key cell schema.
//   2 — adds "schema_version" itself, allows "mean":null for metrics that
//       are structurally unavailable (e.g. perf counters the container
//       denies — distinct from both a measured 0 and a failed cell), and
//       introduces the rank_est_* / perf_*_per_op metric names.
//   3 — introduces the layout_* (layout-sensitivity spread from interleaved
//       runs) and burst_* (open-loop MMPP arrival diagnostics) metric
//       families emitted by the workloads subsystem. Both are
//       informational: bench_compare.py never treats them as regressions.
//   4 — the telemetry plane: introduces the ts_* (time-series sampler
//       totals) and slo_* (SLO burn/breach accounting) informational metric
//       families, and is shared with the standalone telemetry time-series
//       JSONL export (obs/timeseries.hpp writes "kind":"telemetry" lines
//       stamped with the same schema_version).
inline constexpr unsigned kJsonSchemaVersion = 4;

struct JsonRecord {
  std::string experiment;  // e.g. "fig1_uniform_uniform"
  std::string queue;       // registry name, e.g. "klsm256"
  std::string metric;      // e.g. "throughput_mops", "rank_error_mean"
  unsigned threads = 0;
  double mean = 0.0;
  double ci95 = 0.0;
  unsigned reps = 0;
  // "ok" or "failed". A failed cell (every repetition threw) zeroes mean
  // and ci95; the explicit status keeps it distinguishable from a real
  // measurement of 0. Always emitted; optional on parse (older files
  // without the key read back as "ok").
  std::string status = "ok";
  // Fields below are appended so existing aggregate-initialized literals
  // keep their meaning.
  unsigned schema_version = kJsonSchemaVersion;  // 1 when parsed from old files
  // True renders "mean":null (and mean is ignored): the metric could not be
  // measured in this environment at all.
  bool mean_is_null = false;

  bool operator==(const JsonRecord&) const = default;
};

// Serialize to a single JSON object line (no trailing newline). Strings are
// escaped per RFC 8259 (quote, backslash, control characters).
std::string to_json_line(const JsonRecord& record);

// Parse a line produced by to_json_line (tolerating whitespace between
// tokens and any key order). Returns false on malformed input or missing
// keys; unknown keys are rejected so schema drift fails loudly in tests.
bool parse_json_record(const std::string& line, JsonRecord& out);

// Process-wide sink. Disabled unless CPQ_JSON is set or set_path() is
// called; record() is thread-safe and appends one line per call.
class JsonSink {
 public:
  static JsonSink& instance();

  // Override the destination: "" disables, "-" writes to stdout, anything
  // else appends to that file. Takes precedence over CPQ_JSON.
  void set_path(std::string path);

  bool enabled() const;
  void record(const JsonRecord& record);

 private:
  JsonSink();

  std::string path_;
};

}  // namespace cpq::bench
