// Sequential Log-Structured Merge priority queue.
//
// The LSM is the building block of the k-LSM (paper §B): a logarithmic
// number of sorted arrays ("blocks") with distinct power-of-two capacities;
// a block of capacity C holds more than C/2 and at most C items. Insertion
// adds a singleton block and merges equal-capacity blocks until capacities
// are distinct again; delete_min removes the smallest front item across
// blocks. Both operations are O(log n) amortized.
//
// This sequential variant is used (a) standalone as a benchmarkable
// sequential queue, (b) as the reference semantics for the DLSM/SLSM tests,
// and (c) to document the merge/shrink rules in one concurrent-free place.
#pragma once

#include <cassert>
#include <cstddef>
#include <utility>
#include <vector>

namespace cpq::seq {

template <typename Key, typename Value>
class SeqLsm {
 public:
  using key_type = Key;
  using value_type = Value;

  bool empty() const noexcept { return size_ == 0; }
  std::size_t size() const noexcept { return size_; }

  void clear() noexcept {
    blocks_.clear();
    size_ = 0;
  }

  void insert(Key key, Value value) {
    Block singleton;
    singleton.items.emplace_back(std::move(key), std::move(value));
    singleton.capacity = 1;
    blocks_.push_back(std::move(singleton));
    ++size_;
    merge_cascade();
  }

  // Peek the global minimum. Returns false when empty.
  bool peek_min(Key& key_out, Value& value_out) const {
    const Block* best = find_min_block();
    if (!best) return false;
    key_out = best->front().first;
    value_out = best->front().second;
    return true;
  }

  bool delete_min(Key& key_out, Value& value_out) {
    Block* best = find_min_block();
    if (!best) return false;
    key_out = std::move(best->items[best->head].first);
    value_out = std::move(best->items[best->head].second);
    ++best->head;
    --size_;
    shrink_if_sparse(best);
    return true;
  }

  std::size_t block_count() const noexcept { return blocks_.size(); }

  // Invariant checks used by the test suite.
  bool invariants_hold() const {
    std::size_t total = 0;
    for (std::size_t i = 0; i < blocks_.size(); ++i) {
      const Block& b = blocks_[i];
      if (b.size() == 0) return false;                      // no empty blocks
      if ((b.capacity & (b.capacity - 1)) != 0) return false;  // power of two
      if (b.size() > b.capacity) return false;
      if (b.capacity > 1 && b.size() * 2 <= b.capacity) return false;
      for (std::size_t j = b.head + 1; j < b.items.size(); ++j) {
        if (b.items[j].first < b.items[j - 1].first) return false;  // sorted
      }
      // Capacities strictly decreasing => distinct.
      if (i > 0 && blocks_[i - 1].capacity <= b.capacity) return false;
      total += b.size();
    }
    return total == size_;
  }

 private:
  struct Block {
    std::vector<std::pair<Key, Value>> items;  // sorted ascending by key
    std::size_t head = 0;                      // logical front
    std::size_t capacity = 1;

    std::size_t size() const noexcept { return items.size() - head; }
    const std::pair<Key, Value>& front() const noexcept {
      return items[head];
    }
  };

  static std::size_t capacity_for(std::size_t n) noexcept {
    std::size_t c = 1;
    while (c < n) c <<= 1;
    return c;
  }

  // Merge the two live portions into a fresh sorted block.
  static Block merge_blocks(Block& a, Block& b) {
    Block out;
    out.items.reserve(a.size() + b.size());
    std::size_t i = a.head;
    std::size_t j = b.head;
    while (i < a.items.size() && j < b.items.size()) {
      if (b.items[j].first < a.items[i].first) {
        out.items.push_back(std::move(b.items[j++]));
      } else {
        out.items.push_back(std::move(a.items[i++]));
      }
    }
    while (i < a.items.size()) out.items.push_back(std::move(a.items[i++]));
    while (j < b.items.size()) out.items.push_back(std::move(b.items[j++]));
    out.capacity = capacity_for(out.items.size());
    return out;
  }

  // Restore the "distinct capacities, sorted descending" invariant by
  // merging from the tail (smallest capacities live at the back).
  void merge_cascade() {
    while (blocks_.size() >= 2) {
      Block& last = blocks_[blocks_.size() - 1];
      Block& prev = blocks_[blocks_.size() - 2];
      if (prev.capacity > last.capacity) break;
      Block merged = merge_blocks(prev, last);
      blocks_.pop_back();
      blocks_.back() = std::move(merged);
      // The merged block can still equal its new predecessor's capacity;
      // the loop continues until capacities are strictly decreasing.
    }
  }

  Block* find_min_block() noexcept {
    Block* best = nullptr;
    for (Block& b : blocks_) {
      if (b.size() == 0) continue;
      if (!best || b.front().first < best->front().first) best = &b;
    }
    return best;
  }

  const Block* find_min_block() const noexcept {
    return const_cast<SeqLsm*>(this)->find_min_block();
  }

  // After a deletion, a block whose live portion fell to half its capacity
  // or below is compacted to a tighter capacity, which may enable merges.
  void shrink_if_sparse(Block* block) {
    if (block->size() == 0) {
      blocks_.erase(blocks_.begin() + (block - blocks_.data()));
      return;
    }
    if (block->capacity == 1 || block->size() * 2 > block->capacity) return;
    Block compact;
    compact.items.reserve(block->size());
    for (std::size_t i = block->head; i < block->items.size(); ++i) {
      compact.items.push_back(std::move(block->items[i]));
    }
    compact.capacity = capacity_for(compact.items.size());
    *block = std::move(compact);
    resort_and_merge();
  }

  // Compaction can break the descending-capacity order; restore it by a
  // simple stable pass (block counts are logarithmic, so this is cheap).
  void resort_and_merge() {
    for (std::size_t i = 1; i < blocks_.size(); ++i) {
      std::size_t j = i;
      while (j > 0 && blocks_[j - 1].capacity < blocks_[j].capacity) {
        std::swap(blocks_[j - 1], blocks_[j]);
        --j;
      }
    }
    // Merge any equal-capacity neighbours (scan from the back).
    bool merged = true;
    while (merged) {
      merged = false;
      for (std::size_t i = blocks_.size(); i-- > 1;) {
        if (blocks_[i - 1].capacity == blocks_[i].capacity) {
          Block m = merge_blocks(blocks_[i - 1], blocks_[i]);
          blocks_.erase(blocks_.begin() + i);
          blocks_[i - 1] = std::move(m);
          merged = true;
          break;
        }
      }
      if (merged) {
        for (std::size_t i = 1; i < blocks_.size(); ++i) {
          std::size_t j = i;
          while (j > 0 && blocks_[j - 1].capacity < blocks_[j].capacity) {
            std::swap(blocks_[j - 1], blocks_[j]);
            --j;
          }
        }
      }
    }
  }

  std::vector<Block> blocks_;  // capacities strictly decreasing
  std::size_t size_ = 0;
};

}  // namespace cpq::seq
