// Sequential pairing heap.
//
// The paper's wish list for a parameterized benchmark cites Larkin, Sen &
// Tarjan's back-to-basics study, where the pairing heap is the strongest
// pointer-based sequential contender. We provide it as an alternative
// backing queue for the MultiQueue (bench_ablation_multiqueue_c compares
// binary-heap-backed vs pairing-heap-backed MultiQueues) and as a sequential
// baseline in bench_components.
//
// Standard two-pass (pairing) delete-min; O(1) insert; amortized O(log n)
// delete_min.
#pragma once

#include <cassert>
#include <cstddef>
#include <utility>
#include <vector>

namespace cpq::seq {

template <typename Key, typename Value>
class PairingHeap {
 public:
  using key_type = Key;
  using value_type = Value;

  PairingHeap() = default;

  ~PairingHeap() { clear(); }

  PairingHeap(const PairingHeap&) = delete;
  PairingHeap& operator=(const PairingHeap&) = delete;

  PairingHeap(PairingHeap&& other) noexcept
      : root_(other.root_), size_(other.size_) {
    other.root_ = nullptr;
    other.size_ = 0;
  }

  PairingHeap& operator=(PairingHeap&& other) noexcept {
    if (this != &other) {
      clear();
      root_ = other.root_;
      size_ = other.size_;
      other.root_ = nullptr;
      other.size_ = 0;
    }
    return *this;
  }

  bool empty() const noexcept { return root_ == nullptr; }
  std::size_t size() const noexcept { return size_; }

  void clear() noexcept {
    // Iterative destruction to avoid recursion depth on long child lists.
    std::vector<Node*> stack;
    if (root_) stack.push_back(root_);
    while (!stack.empty()) {
      Node* n = stack.back();
      stack.pop_back();
      if (n->child) stack.push_back(n->child);
      if (n->sibling) stack.push_back(n->sibling);
      delete n;
    }
    root_ = nullptr;
    size_ = 0;
  }

  void insert(Key key, Value value) {
    Node* node = new Node{std::move(key), std::move(value), nullptr, nullptr};
    root_ = root_ ? meld(root_, node) : node;
    ++size_;
  }

  const Key& min_key() const noexcept {
    assert(!empty());
    return root_->key;
  }

  const Value& min_value() const noexcept {
    assert(!empty());
    return root_->value;
  }

  bool delete_min(Key& key_out, Value& value_out) {
    if (!root_) return false;
    Node* old_root = root_;
    key_out = std::move(old_root->key);
    value_out = std::move(old_root->value);
    root_ = merge_pairs(old_root->child);
    delete old_root;
    --size_;
    return true;
  }

 private:
  struct Node {
    Key key;
    Value value;
    Node* child;
    Node* sibling;
  };

  static Node* meld(Node* a, Node* b) noexcept {
    if (b->key < a->key) std::swap(a, b);
    // b becomes the first child of a.
    b->sibling = a->child;
    a->child = b;
    return a;
  }

  // Two-pass pairing: left-to-right pairwise meld, then right-to-left fold.
  // Iterative to bound stack depth.
  static Node* merge_pairs(Node* first) noexcept {
    if (!first) return nullptr;
    std::vector<Node*> pairs;
    while (first) {
      Node* a = first;
      Node* b = a->sibling;
      first = b ? b->sibling : nullptr;
      a->sibling = nullptr;
      if (b) {
        b->sibling = nullptr;
        pairs.push_back(meld(a, b));
      } else {
        pairs.push_back(a);
      }
    }
    Node* result = pairs.back();
    for (std::size_t i = pairs.size() - 1; i-- > 0;) {
      result = meld(pairs[i], result);
    }
    return result;
  }

  Node* root_ = nullptr;
  std::size_t size_ = 0;
};

}  // namespace cpq::seq
