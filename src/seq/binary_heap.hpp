// Sequential binary min-heap.
//
// This is the "simple priority queue implementation provided by the C++
// Standard Library" role from the paper (std::priority_queue): it backs the
// GlobalLock baseline and the MultiQueue's per-queue instances. We implement
// it ourselves (a) so the repository is self-contained, and (b) so the heap
// stores key/value pairs with a min-heap order without comparator adapters.
#pragma once

#include <cassert>
#include <cstddef>
#include <utility>
#include <vector>

namespace cpq::seq {

template <typename Key, typename Value>
class BinaryHeap {
 public:
  using key_type = Key;
  using value_type = Value;

  BinaryHeap() = default;

  explicit BinaryHeap(std::size_t initial_capacity) {
    items_.reserve(initial_capacity);
  }

  bool empty() const noexcept { return items_.empty(); }
  std::size_t size() const noexcept { return items_.size(); }

  void clear() noexcept { items_.clear(); }

  void reserve(std::size_t n) { items_.reserve(n); }

  void insert(Key key, Value value) {
    items_.emplace_back(std::move(key), std::move(value));
    sift_up(items_.size() - 1);
  }

  // Smallest key currently stored. Precondition: !empty().
  const Key& min_key() const noexcept {
    assert(!empty());
    return items_.front().first;
  }

  const Value& min_value() const noexcept {
    assert(!empty());
    return items_.front().second;
  }

  // Remove the minimum; returns false when empty.
  bool delete_min(Key& key_out, Value& value_out) {
    if (items_.empty()) return false;
    key_out = std::move(items_.front().first);
    value_out = std::move(items_.front().second);
    items_.front() = std::move(items_.back());
    items_.pop_back();
    if (!items_.empty()) sift_down(0);
    return true;
  }

  // Heap property check for tests.
  bool is_valid_heap() const noexcept {
    for (std::size_t i = 1; i < items_.size(); ++i) {
      if (items_[i].first < items_[parent(i)].first) return false;
    }
    return true;
  }

 private:
  static constexpr std::size_t parent(std::size_t i) noexcept {
    return (i - 1) / 2;
  }

  void sift_up(std::size_t i) noexcept {
    auto item = std::move(items_[i]);
    while (i > 0 && item.first < items_[parent(i)].first) {
      items_[i] = std::move(items_[parent(i)]);
      i = parent(i);
    }
    items_[i] = std::move(item);
  }

  void sift_down(std::size_t i) noexcept {
    const std::size_t n = items_.size();
    auto item = std::move(items_[i]);
    for (;;) {
      std::size_t smallest = 2 * i + 1;
      if (smallest >= n) break;
      if (smallest + 1 < n &&
          items_[smallest + 1].first < items_[smallest].first) {
        ++smallest;
      }
      if (!(items_[smallest].first < item.first)) break;
      items_[i] = std::move(items_[smallest]);
      i = smallest;
    }
    items_[i] = std::move(item);
  }

  std::vector<std::pair<Key, Value>> items_;
};

}  // namespace cpq::seq
