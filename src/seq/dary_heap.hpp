// Sequential d-ary implicit min-heap.
//
// Larkin, Sen & Tarjan's back-to-basics study (cited by the paper as the
// natural sorting-benchmark baseline) finds implicit d-ary heaps with d in
// {4, 8} the strongest sequential priority queues in practice: the wider
// node trades comparisons for a shallower tree and much better cache
// behaviour on the sift-down path. Provided as an alternative MultiQueue
// backing store (bench_ablation_multiqueue_c) and a bench_components
// subject.
#pragma once

#include <cassert>
#include <cstddef>
#include <utility>
#include <vector>

namespace cpq::seq {

template <typename Key, typename Value, unsigned Arity = 4>
class DaryHeap {
  static_assert(Arity >= 2, "a heap needs at least two children per node");

 public:
  using key_type = Key;
  using value_type = Value;

  DaryHeap() = default;

  explicit DaryHeap(std::size_t initial_capacity) {
    items_.reserve(initial_capacity);
  }

  bool empty() const noexcept { return items_.empty(); }
  std::size_t size() const noexcept { return items_.size(); }
  void clear() noexcept { items_.clear(); }
  void reserve(std::size_t n) { items_.reserve(n); }

  void insert(Key key, Value value) {
    items_.emplace_back(std::move(key), std::move(value));
    sift_up(items_.size() - 1);
  }

  const Key& min_key() const noexcept {
    assert(!empty());
    return items_.front().first;
  }

  const Value& min_value() const noexcept {
    assert(!empty());
    return items_.front().second;
  }

  bool delete_min(Key& key_out, Value& value_out) {
    if (items_.empty()) return false;
    key_out = std::move(items_.front().first);
    value_out = std::move(items_.front().second);
    items_.front() = std::move(items_.back());
    items_.pop_back();
    if (!items_.empty()) sift_down(0);
    return true;
  }

  bool is_valid_heap() const noexcept {
    for (std::size_t i = 1; i < items_.size(); ++i) {
      if (items_[i].first < items_[(i - 1) / Arity].first) return false;
    }
    return true;
  }

 private:
  void sift_up(std::size_t i) noexcept {
    auto item = std::move(items_[i]);
    while (i > 0) {
      const std::size_t parent = (i - 1) / Arity;
      if (!(item.first < items_[parent].first)) break;
      items_[i] = std::move(items_[parent]);
      i = parent;
    }
    items_[i] = std::move(item);
  }

  void sift_down(std::size_t i) noexcept {
    const std::size_t n = items_.size();
    auto item = std::move(items_[i]);
    for (;;) {
      const std::size_t first_child = Arity * i + 1;
      if (first_child >= n) break;
      const std::size_t last_child =
          first_child + Arity <= n ? first_child + Arity : n;
      std::size_t smallest = first_child;
      for (std::size_t c = first_child + 1; c < last_child; ++c) {
        if (items_[c].first < items_[smallest].first) smallest = c;
      }
      if (!(items_[smallest].first < item.first)) break;
      items_[i] = std::move(items_[smallest]);
      i = smallest;
    }
    items_[i] = std::move(item);
  }

  std::vector<std::pair<Key, Value>> items_;
};

}  // namespace cpq::seq
