// Order-statistic treap: the rank-replay engine of the quality benchmark.
//
// The paper's rank-error benchmark (§F) reconstructs a global linear
// sequence of all logged operations and replays it against "a specialized
// sequential priority queue ... to efficiently determine the rank of all
// deleted items". That specialized structure must support:
//   * insert(key, id)                 — id makes every item unique
//   * erase(key, id) -> rank          — 1-based position among stored items
// in O(log n). A treap augmented with subtree sizes does exactly this.
//
// Items are ordered by (key, id). Ordering duplicates by id makes the
// reported rank "pessimistic" for duplicate keys, exactly as the paper
// describes its own quality benchmark.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <utility>

#include "platform/rng.hpp"

namespace cpq::seq {

template <typename Key>
class OrderStatisticTree {
 public:
  OrderStatisticTree() : rng_(0x05717e5eedULL) {}

  explicit OrderStatisticTree(std::uint64_t seed) : rng_(seed) {}

  ~OrderStatisticTree() { destroy(root_); }

  OrderStatisticTree(const OrderStatisticTree&) = delete;
  OrderStatisticTree& operator=(const OrderStatisticTree&) = delete;

  std::size_t size() const noexcept { return count(root_); }
  bool empty() const noexcept { return root_ == nullptr; }

  void insert(Key key, std::uint64_t id) {
    Node* node = new Node{std::move(key), id, rng_.next(), 1, nullptr, nullptr};
    root_ = insert_node(root_, node);
  }

  // Erase the item (key, id); returns its 1-based rank, or 0 if not found.
  std::size_t erase(const Key& key, std::uint64_t id) {
    std::size_t rank = 0;
    bool found = false;
    root_ = erase_node(root_, key, id, rank, found);
    return found ? rank + 1 : 0;
  }

  // 1-based rank the item would have; 0 if absent. For tests.
  std::size_t rank_of(const Key& key, std::uint64_t id) const {
    const Node* node = root_;
    std::size_t before = 0;
    while (node) {
      if (less(key, id, *node)) {
        node = node->left;
      } else if (less(*node, key, id)) {
        before += count(node->left) + 1;
        node = node->right;
      } else {
        return before + count(node->left) + 1;
      }
    }
    return 0;
  }

  // Smallest stored key (for sanity checks); precondition: !empty().
  const Key& min_key() const noexcept {
    assert(root_);
    const Node* node = root_;
    while (node->left) node = node->left;
    return node->key;
  }

 private:
  struct Node {
    Key key;
    std::uint64_t id;
    std::uint64_t priority;
    std::size_t size;
    Node* left;
    Node* right;
  };

  static std::size_t count(const Node* n) noexcept { return n ? n->size : 0; }

  static void update(Node* n) noexcept {
    n->size = 1 + count(n->left) + count(n->right);
  }

  static bool less(const Key& key, std::uint64_t id, const Node& n) noexcept {
    return key < n.key || (!(n.key < key) && id < n.id);
  }

  static bool less(const Node& n, const Key& key, std::uint64_t id) noexcept {
    return n.key < key || (!(key < n.key) && n.id < id);
  }

  static Node* rotate_right(Node* n) noexcept {
    Node* l = n->left;
    n->left = l->right;
    l->right = n;
    update(n);
    update(l);
    return l;
  }

  static Node* rotate_left(Node* n) noexcept {
    Node* r = n->right;
    n->right = r->left;
    r->left = n;
    update(n);
    update(r);
    return r;
  }

  static Node* insert_node(Node* root, Node* node) {
    if (!root) return node;
    if (less(node->key, node->id, *root)) {
      root->left = insert_node(root->left, node);
      update(root);
      if (root->left->priority < root->priority) root = rotate_right(root);
    } else {
      root->right = insert_node(root->right, node);
      update(root);
      if (root->right->priority < root->priority) root = rotate_left(root);
    }
    return root;
  }

  static Node* erase_node(Node* root, const Key& key, std::uint64_t id,
                          std::size_t& items_before, bool& found) {
    if (!root) return nullptr;
    if (less(key, id, *root)) {
      root->left = erase_node(root->left, key, id, items_before, found);
    } else if (less(*root, key, id)) {
      items_before += count(root->left) + 1;
      root->right = erase_node(root->right, key, id, items_before, found);
    } else {
      found = true;
      items_before += count(root->left);
      root = remove_root(root);
      return root;
    }
    if (found) update(root);
    return root;
  }

  // Rotate the doomed node down to a leaf (choosing the child with the
  // smaller priority as the new subtree root), then delete it.
  static Node* remove_root(Node* n) {
    if (!n->left && !n->right) {
      delete n;
      return nullptr;
    }
    if (!n->left || (n->right && n->right->priority < n->left->priority)) {
      Node* r = rotate_left(n);
      r->left = remove_root(n);
      update(r);
      return r;
    }
    Node* l = rotate_right(n);
    l->right = remove_root(n);
    update(l);
    return l;
  }

  static void destroy(Node* n) noexcept {
    if (!n) return;
    destroy(n->left);
    destroy(n->right);
    delete n;
  }

  Node* root_ = nullptr;
  Xoroshiro128 rng_;
};

}  // namespace cpq::seq
