// MultiQueue (Rihani, Sanders & Dementiev, SPAA 2015) — paper's "mq".
//
// c*P sequential priority queues, each protected by its own lock. insert
// pushes into a uniformly random queue; delete_min reads the minima of two
// uniformly random queues and pops from the one with the smaller minimum
// ("power of two choices"). The tuning parameter c is 4 in the paper's
// benchmarks. No hard bound on the rank of deleted items is known, but the
// observed rank error grows only linearly with the thread count (paper
// Tables 1-5, reproduced by bench_table1_rank_error).
//
// The per-queue minimum is mirrored into an atomic so that the two-choice
// comparison does not need to take locks; it is refreshed by whoever holds
// the lock. The locked-queue cell (lock + mirrors + sequential heap) is
// shared with the engineered generation in multiqueue_eng.hpp.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <mutex>
#include <vector>

#include "obs/metrics.hpp"
#include "platform/cache.hpp"
#include "platform/rng.hpp"
#include "platform/spinlock.hpp"
#include "queues/queue_traits.hpp"
#include "seq/binary_heap.hpp"

namespace cpq {

namespace detail {

// One spinlocked sequential queue with lock-free selection mirrors — the
// building block of every MultiQueue variant (classic and engineered).
template <typename Key, typename Value, typename SeqQueue>
struct MqLocalQueue {
  // Sentinel mirrored for empty queues; insertions of this exact key still
  // work (the mirror is a heuristic for queue selection only).
  static constexpr Key kEmptyKey = std::numeric_limits<Key>::max();

  Spinlock lock;
  std::atomic<Key> min_mirror{kEmptyKey};
  // Exact size mirror: the min mirror alone cannot distinguish "empty"
  // from "holds an item with the maximal key".
  std::atomic<std::size_t> count{0};
  SeqQueue pq;

  // Caller holds `lock`.
  void refresh_min() {
    min_mirror.store(pq.empty() ? kEmptyKey : pq.min_key(),
                     std::memory_order_release);
    count.store(pq.size(), std::memory_order_release);
  }
};

}  // namespace detail

template <typename Key, typename Value,
          typename SeqQueue = seq::BinaryHeap<Key, Value>>
class MultiQueue {
 public:
  using key_type = Key;
  using value_type = Value;

  static constexpr Key kEmptyKey =
      detail::MqLocalQueue<Key, Value, SeqQueue>::kEmptyKey;

  explicit MultiQueue(unsigned max_threads, unsigned c = 4,
                      std::uint64_t seed = 1)
      : queues_(static_cast<std::size_t>(c == 0 ? 1 : c) *
                (max_threads == 0 ? 1 : max_threads)),
        c_(c == 0 ? 1 : c),
        seed_(seed) {}

  // Expected-case relaxation self-report (queue_traits.hpp concept): the
  // classic MultiQueue's observed rank error grows like c*P. Soft — no
  // worst-case guarantee exists.
  double soft_rank_bound(unsigned threads) const {
    return static_cast<double>(c_) * threads;
  }

  class Handle {
   public:
    Handle(MultiQueue& queue, unsigned thread_id)
        : queue_(&queue), rng_(thread_seed(queue.seed_, thread_id)) {}

    void insert(Key key, Value value) {
      auto& queues = queue_->queues_;
      for (;;) {
        LocalQueue& q = queues[rng_.next_below(queues.size())].value;
        // try_lock keeps inserters from convoying on a hot queue; a failed
        // attempt simply redraws.
        if (!q.lock.try_lock()) {
          CPQ_COUNT(kLockRetry);
          continue;
        }
        q.pq.insert(key, value);
        q.refresh_min();
        q.lock.unlock();
        return;
      }
    }

    bool delete_min(Key& key_out, Value& value_out) {
      auto& queues = queue_->queues_;
      const std::size_t n = queues.size();
      for (unsigned attempt = 0; attempt < kMaxAttempts; ++attempt) {
        const std::size_t i = rng_.next_below(n);
        std::size_t j = rng_.next_below(n);
        const Key ki = queues[i].value.min_mirror.load(std::memory_order_acquire);
        const Key kj = queues[j].value.min_mirror.load(std::memory_order_acquire);
        std::size_t pick = (kj < ki) ? j : i;
        if (ki == kEmptyKey && kj == kEmptyKey) {
          // Both mirrors look empty — either truly empty, or they hold
          // maximal-key items. Check the exact counts; if items exist
          // somewhere, pop from the first non-empty queue found.
          if (all_empty()) return false;
          bool found = false;
          for (std::size_t probe = 0; probe < n; ++probe) {
            const std::size_t candidate = (i + probe) % n;
            if (queues[candidate].value.count.load(
                    std::memory_order_acquire) > 0) {
              pick = candidate;
              found = true;
              break;
            }
          }
          if (!found) continue;
        }
        LocalQueue& q = queues[pick].value;
        if (!q.lock.try_lock()) {
          CPQ_COUNT(kLockRetry);
          continue;
        }
        const bool ok = q.pq.delete_min(key_out, value_out);
        q.refresh_min();
        q.lock.unlock();
        if (ok) return true;
      }
      // Contention exhausted the attempt budget; report empty-looking.
      return false;
    }

   private:
    static constexpr unsigned kMaxAttempts = 64;

    bool all_empty() const {
      for (const auto& q : queue_->queues_) {
        if (q.value.count.load(std::memory_order_acquire) > 0) return false;
      }
      return true;
    }

    MultiQueue* queue_;
    Xoroshiro128 rng_;
  };

  Handle get_handle(unsigned thread_id) { return Handle(*this, thread_id); }

  std::size_t queue_count() const noexcept { return queues_.size(); }

  // Sum of per-queue sizes; only meaningful when quiescent.
  std::size_t unsafe_size() const {
    std::size_t total = 0;
    for (const auto& q : queues_) total += q.value.pq.size();
    return total;
  }

 private:
  using LocalQueue = detail::MqLocalQueue<Key, Value, SeqQueue>;

  std::vector<CacheAligned<LocalQueue>> queues_;
  unsigned c_;
  std::uint64_t seed_;

  friend class Handle;
};

}  // namespace cpq
