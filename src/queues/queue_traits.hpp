// Common conventions for all concurrent priority queues in this library.
//
// Every queue Q provides:
//
//   using key_type   = ...;   // totally ordered, trivially copyable
//   using value_type = ...;   // trivially copyable payload
//   using handle_type = Q::Handle;
//
//   Q(unsigned max_threads, ...queue-specific parameters...);
//   Handle get_handle(unsigned thread_id);   // thread_id in [0, max_threads)
//
// and Handle provides:
//
//   void insert(key_type key, value_type value);
//   bool delete_min(key_type& key_out, value_type& value_out);
//
// A handle is owned by exactly one thread and holds that thread's state
// (RNG stream, pointer to its thread-local LSM, ...). Handles are cheap to
// create; benchmark workers create one at startup. delete_min returns false
// when the queue appears empty (for relaxed queues this is best-effort, as
// in the paper's benchmark, where a failed deletion still counts as one
// completed operation).
//
// Strictness levels (paper §A):
//   * strict:  delete_min returns a minimal item in linearization order
//              (GlobalLock, Linden, HuntHeap).
//   * relaxed: delete_min returns one of the rho smallest items, where
//              rho = kP + 1 for klsm, O(P log^3 P) for SprayList, and
//              unbounded-but-well-behaved for MultiQueue.
#pragma once

#include <concepts>
#include <cstdint>
#include <type_traits>

namespace cpq {

// Default key/value types used by the benchmark (matching the paper's
// integer keys; values are opaque 64-bit payloads used as item ids by the
// quality benchmark).
using bench_key = std::uint64_t;
using bench_value = std::uint64_t;

// insert() is void for plain queues; admission-controlled engines
// (PriorityService) return bool to report acceptance. Both satisfy the
// handle concept — callers that care probe the return type with requires.
template <typename H, typename K, typename V>
concept PriorityQueueHandle = requires(H h, K k, V v, K& kr, V& vr) {
  requires(requires {
            { h.insert(k, v) } -> std::same_as<void>;
          } ||
           requires {
             { h.insert(k, v) } -> std::same_as<bool>;
           });
  { h.delete_min(kr, vr) } -> std::same_as<bool>;
};

template <typename Q>
concept ConcurrentPriorityQueue = requires(Q q, unsigned tid) {
  typename Q::key_type;
  typename Q::value_type;
  requires std::is_trivially_copyable_v<typename Q::key_type>;
  requires std::is_trivially_copyable_v<typename Q::value_type>;
  { q.get_handle(tid) };
  requires PriorityQueueHandle<decltype(q.get_handle(tid)),
                               typename Q::key_type,
                               typename Q::value_type>;
};

// Relaxed queues whose rank-error bound depends on runtime tuning (the
// MultiQueue family: c, stickiness, buffer capacities) self-report it as an
// instance method. The benchmark registry arms the live RankEstimator from
// this instead of a hard-coded formula, so the reported bound always
// matches the queue actually constructed (soft unless the queue also has a
// published worst-case guarantee).
template <typename Q>
concept RelaxationSelfReporting = requires(const Q& q, unsigned threads) {
  { q.soft_rank_bound(threads) } -> std::convertible_to<double>;
};

}  // namespace cpq
