// Chunk-Based Priority Queue (Braginsky et al.) — appendix-D extension
// ("cbpq").
//
// The appendix singles out two ideas: "the chunk linked list replaces
// Skiplists and heaps as the backing data structure, and use of the more
// efficient Fetch-And-Add (FAA) instruction is preferred over
// Compare-And-Swap". Both are implemented here:
//
//   * The queue is a linked list of chunks, each covering a key range
//     (chunk->max_key is the inclusive upper bound; the last chunk is
//     unbounded). The *first* chunk holds a sorted, immutable array and an
//     atomic deletion index: delete_min is one FAA on the hot path.
//   * Non-first chunks are append-only insert buffers: an insert reserves a
//     slot with FAA and publishes it with a single slot-state CAS
//     (EMPTY -> WRITTEN). A full chunk is frozen — every remaining EMPTY
//     slot is CASed to FROZEN so no late writer can sneak in, exactly
//     Braginsky's freezing protocol — then sorted and split in two.
//   * Inserts whose key falls into the first chunk's range go to the first
//     chunk's overflow buffer (a Treiber list whose head carries a freeze
//     tag bit). delete_min compares the buffer minimum against the sorted
//     array's current head and claims the smaller, so the queue stays
//     strict (linearizable).
//   * When the first chunk's array is exhausted (or its buffer grows past a
//     threshold), one thread rebuilds: it freeze-steals the buffer with a
//     single fetch_or, jumps the deletion index past the end so concurrent
//     FAAs cannot claim anything (every FAA ticket is either < count and
//     uniquely owned by a deleter, or >= count and void — no ambiguity),
//     freezes and absorbs the successor chunk if needed, sorts, and
//     publishes a fresh first chunk with a head CAS.
//
// Chunks are reclaimed through EBR; buffer cells through claim flags plus
// chunk-lifetime ownership. The appendix reports the CBPQ "clearly
// outperforms the other queues in mixed workloads and deletion workloads";
// bench_appendix_queues measures that claim against this implementation.
#pragma once

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cstdint>
#include <limits>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "mm/epoch.hpp"
#include "platform/backoff.hpp"
#include "platform/cache.hpp"
#include "platform/rng.hpp"
#include "platform/spinlock.hpp"
#include "queues/queue_traits.hpp"

namespace cpq {

template <typename Key, typename Value>
class ChunkBasedQueue {
 public:
  using key_type = Key;
  using value_type = Value;

  static constexpr std::uint32_t kChunkCapacity = 256;
  static constexpr std::uint32_t kBufferRebuildThreshold = 64;
  static constexpr Key kMaxKey = std::numeric_limits<Key>::max();

  explicit ChunkBasedQueue(unsigned max_threads = 0, std::uint64_t seed = 1) {
    (void)max_threads;
    (void)seed;
    std::vector<std::pair<Key, Value>> empty;
    head_.store(Chunk::create_first(std::move(empty), kMaxKey, nullptr),
                std::memory_order_release);
  }

  ~ChunkBasedQueue() {
    Chunk* chunk = head_.load(std::memory_order_relaxed);
    while (chunk) {
      Chunk* next = chunk->next.load(std::memory_order_relaxed);
      Chunk::destroy(chunk);
      chunk = next;
    }
    delete index_.load(std::memory_order_relaxed);
  }

  ChunkBasedQueue(const ChunkBasedQueue&) = delete;
  ChunkBasedQueue& operator=(const ChunkBasedQueue&) = delete;

  class Handle {
   public:
    Handle(ChunkBasedQueue& queue, unsigned thread_id) : queue_(&queue) {
      (void)thread_id;
    }

    void insert(Key key, Value value) { queue_->insert_item(key, value); }

    bool delete_min(Key& key_out, Value& value_out) {
      return queue_->delete_min_item(key_out, value_out);
    }

   private:
    ChunkBasedQueue* queue_;
  };

  Handle get_handle(unsigned thread_id) { return Handle(*this, thread_id); }

  // Quiescent-only total item count (sorted remainder + buffers + insert
  // chunks).
  std::size_t unsafe_size() const {
    std::size_t total = 0;
    const Chunk* chunk = head_.load(std::memory_order_acquire);
    bool first = true;
    while (chunk) {
      if (first) {
        const std::uint32_t idx = std::min<std::uint64_t>(
            chunk->del_idx.load(std::memory_order_acquire), chunk->count);
        total += chunk->count - idx;
        for (BufferNode* node = untag(
                 chunk->buffer.load(std::memory_order_acquire));
             node; node = node->next) {
          total += !node->claimed.load(std::memory_order_acquire);
        }
      } else {
        for (std::uint32_t i = 0; i < kChunkCapacity; ++i) {
          total += chunk->slots[i].state.load(std::memory_order_acquire) ==
                   SlotState::kWritten;
        }
      }
      first = false;
      chunk = chunk->next.load(std::memory_order_acquire);
    }
    return total;
  }

 private:
  friend class Handle;

  enum class SlotState : std::uint8_t { kEmpty, kWritten, kFrozen };

  struct Slot {
    Key key;
    Value value;
    std::atomic<SlotState> state{SlotState::kEmpty};
  };

  struct BufferNode {
    Key key;
    Value value;
    BufferNode* next;
    std::atomic<bool> claimed{false};
  };

  struct Chunk {
    // ---- first-chunk fields ----
    // Sorted immutable items [0, count); del_idx hands out tickets by FAA.
    std::vector<std::pair<Key, Value>> sorted;
    std::uint32_t count = 0;
    alignas(kCacheLineSize) std::atomic<std::uint64_t> del_idx{0};
    // Overflow buffer; bit 0 of the pointer is the freeze tag.
    alignas(kCacheLineSize) std::atomic<std::uintptr_t> buffer{0};
    std::atomic<std::uint32_t> buffer_len{0};

    // ---- insert-chunk fields ----
    alignas(kCacheLineSize) std::atomic<std::uint32_t> ins_idx{0};
    std::unique_ptr<Slot[]> slots;

    // ---- common ----
    Key max_key = kMaxKey;  // inclusive upper bound; last chunk unbounded
    bool is_first = false;
    std::atomic<bool> frozen{false};
    std::atomic<Chunk*> next{nullptr};

    static Chunk* create_first(std::vector<std::pair<Key, Value>>&& items,
                               Key max_key, Chunk* next_chunk) {
      Chunk* chunk = new Chunk();
      chunk->sorted = std::move(items);
      chunk->count = static_cast<std::uint32_t>(chunk->sorted.size());
      chunk->max_key = max_key;
      chunk->is_first = true;
      chunk->next.store(next_chunk, std::memory_order_relaxed);
      return chunk;
    }

    static Chunk* create_insert(Key max_key, Chunk* next_chunk) {
      Chunk* chunk = new Chunk();
      chunk->slots = std::make_unique<Slot[]>(kChunkCapacity);
      chunk->max_key = max_key;
      chunk->next.store(next_chunk, std::memory_order_relaxed);
      return chunk;
    }

    static void destroy(Chunk* chunk) {
      BufferNode* node = untag(chunk->buffer.load(std::memory_order_relaxed));
      while (node) {
        BufferNode* next = node->next;
        delete node;
        node = next;
      }
      delete chunk;
    }

    static void ebr_deleter(void* p) { destroy(static_cast<Chunk*>(p)); }
  };

  static BufferNode* untag(std::uintptr_t word) {
    return reinterpret_cast<BufferNode*>(word & ~std::uintptr_t{1});
  }
  static bool tagged(std::uintptr_t word) { return word & 1; }

  // Jump index over the chunk list (the role of the chunk skiplist in the
  // original CBPQ): sorted (max_key, chunk) pairs, rebuilt under the
  // restructure lock whenever the list changes and published through an
  // EBR-protected pointer. Jump targets are chunks whose max_key is
  // strictly below the searched key; max_key is immutable per chunk and a
  // replaced chunk's next pointer always rejoins the list further on, so a
  // stale index can make the walk start early but never skip the target.
  struct ChunkIndex {
    std::vector<std::pair<Key, Chunk*>> entries;  // ascending max_key

    static void ebr_deleter(void* p) { delete static_cast<ChunkIndex*>(p); }
  };

  // Called with restructure_lock_ held, after head_/next updates.
  void rebuild_index() {
    auto* fresh = new ChunkIndex();
    Chunk* chunk = head_.load(std::memory_order_acquire);
    while (chunk) {
      Chunk* next = chunk->next.load(std::memory_order_acquire);
      if (next) fresh->entries.emplace_back(chunk->max_key, chunk);
      chunk = next;
    }
    ChunkIndex* old = index_.exchange(fresh, std::memory_order_acq_rel);
    if (old) {
      mm::EbrDomain::global().retire(static_cast<void*>(old),
                                     &ChunkIndex::ebr_deleter);
    }
  }

  // Last chunk with max_key < key, or the head. Caller holds an EBR guard.
  Chunk* jump_target(Key key) {
    const ChunkIndex* index = index_.load(std::memory_order_acquire);
    if (!index || index->entries.empty()) {
      return head_.load(std::memory_order_acquire);
    }
    const auto& entries = index->entries;
    std::size_t lo = 0;
    std::size_t hi = entries.size();
    while (lo < hi) {
      const std::size_t mid = lo + (hi - lo) / 2;
      if (entries[mid].first < key) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo == 0 ? head_.load(std::memory_order_acquire)
                   : entries[lo - 1].second;
  }

  // ---- insert ------------------------------------------------------------

  void insert_item(Key key, Value value) {
    mm::EbrDomain::Guard guard;
    Backoff backoff(reinterpret_cast<std::uintptr_t>(this) ^ key);
    for (;;) {
      Chunk* first = head_.load(std::memory_order_acquire);
      if (key <= effective_max(first)) {
        if (push_buffer(first, key, value)) return;
        backoff.pause();
        continue;  // first chunk frozen; re-read head
      }
      // Walk to the covering insert chunk, starting from the index's jump
      // target (every skipped chunk has max_key < key, so the target is
      // never overshot; a stale target is frozen and rejected below).
      Chunk* start = jump_target(key);
      Chunk* chunk = start == first
                         ? first->next.load(std::memory_order_acquire)
                         : start;
      while (chunk && key > effective_max(chunk)) {
        chunk = chunk->next.load(std::memory_order_acquire);
      }
      if (!chunk) continue;  // list mutated under us; restart
      const std::uint32_t slot_index =
          chunk->ins_idx.fetch_add(1, std::memory_order_acq_rel);
      if (slot_index >= kChunkCapacity) {
        split_insert_chunk(chunk);
        continue;
      }
      Slot& slot = chunk->slots[slot_index];
      slot.key = key;
      slot.value = value;
      SlotState expected = SlotState::kEmpty;
      if (slot.state.compare_exchange_strong(expected, SlotState::kWritten,
                                             std::memory_order_acq_rel)) {
        return;
      }
      // The chunk was frozen before we published; retry from the top.
      backoff.pause();
    }
  }

  // Push onto the first chunk's buffer; fails iff the buffer is frozen.
  bool push_buffer(Chunk* first, Key key, Value value) {
    BufferNode* node = new BufferNode{key, value, nullptr};
    std::uintptr_t head = first->buffer.load(std::memory_order_acquire);
    for (;;) {
      if (tagged(head)) {
        delete node;
        return false;
      }
      node->next = untag(head);
      if (first->buffer.compare_exchange_weak(
              head, reinterpret_cast<std::uintptr_t>(node),
              std::memory_order_acq_rel, std::memory_order_acquire)) {
        first->buffer_len.fetch_add(1, std::memory_order_relaxed);
        return true;
      }
    }
  }

  // ---- delete_min ----------------------------------------------------------

  bool delete_min_item(Key& key_out, Value& value_out) {
    mm::EbrDomain::Guard guard;
    for (;;) {
      Chunk* first = head_.load(std::memory_order_acquire);
      // A bloated buffer makes the strict compare expensive; fold it in.
      if (first->buffer_len.load(std::memory_order_relaxed) >
          kBufferRebuildThreshold) {
        rebuild_first(first);
        continue;
      }
      // Current sorted-array head (racy peek; FAA below is authoritative).
      const std::uint64_t cur =
          first->del_idx.load(std::memory_order_acquire);
      const bool array_has =
          cur < first->count;
      const Key array_key = array_has ? first->sorted[cur].first : Key{};
      // Smallest unclaimed buffer entry.
      BufferNode* best_node = nullptr;
      for (BufferNode* node =
               untag(first->buffer.load(std::memory_order_acquire));
           node; node = node->next) {
        if (node->claimed.load(std::memory_order_acquire)) continue;
        if (!best_node || node->key < best_node->key) best_node = node;
      }
      if (best_node && (!array_has || best_node->key < array_key)) {
        if (!best_node->claimed.exchange(true, std::memory_order_acq_rel)) {
          key_out = best_node->key;
          value_out = best_node->value;
          first->buffer_len.fetch_sub(1, std::memory_order_relaxed);
          return true;
        }
        continue;  // lost the buffer entry; rescan
      }
      if (array_has) {
        const std::uint64_t ticket =
            first->del_idx.fetch_add(1, std::memory_order_acq_rel);
        if (ticket < first->count) {
          key_out = first->sorted[ticket].first;
          value_out = first->sorted[ticket].second;
          return true;
        }
        // Exhausted between peek and FAA; fall through to rebuild.
      }
      // Array exhausted. If nothing is buffered and no successor exists,
      // the queue is empty.
      if (!buffer_has_live(first) &&
          first->next.load(std::memory_order_acquire) == nullptr &&
          first->del_idx.load(std::memory_order_acquire) >= first->count) {
        if (head_.load(std::memory_order_acquire) == first) return false;
        continue;
      }
      rebuild_first(first);
    }
  }

  bool buffer_has_live(Chunk* first) const {
    for (BufferNode* node =
             untag(first->buffer.load(std::memory_order_acquire));
         node; node = node->next) {
      if (!node->claimed.load(std::memory_order_acquire)) return true;
    }
    return false;
  }

  // ---- restructuring -------------------------------------------------------

  static Key effective_max(const Chunk* chunk) {
    return chunk->next.load(std::memory_order_acquire) == nullptr
               ? kMaxKey
               : chunk->max_key;
  }

  // Freeze every EMPTY slot so no late writer can publish, then collect the
  // WRITTEN items.
  static void freeze_and_collect(Chunk* chunk,
                                 std::vector<std::pair<Key, Value>>& out) {
    for (std::uint32_t i = 0; i < kChunkCapacity; ++i) {
      Slot& slot = chunk->slots[i];
      SlotState state = slot.state.load(std::memory_order_acquire);
      if (state == SlotState::kEmpty) {
        if (slot.state.compare_exchange_strong(state, SlotState::kFrozen,
                                               std::memory_order_acq_rel)) {
          continue;
        }
        state = slot.state.load(std::memory_order_acquire);
      }
      if (state == SlotState::kWritten) {
        out.emplace_back(slot.key, slot.value);
      }
    }
  }

  // Rebuild the first chunk: steal its buffer, void its deletion counter,
  // absorb the successor if the remainder is small, sort, publish.
  //
  // Restructuring (rebuild + split) is serialized by restructure_lock_: two
  // concurrent splits of adjacent chunks can otherwise lose a replacement
  // through the classic unlink-next race, and Braginsky's full recovery
  // protocol is out of scope here. The FAA deletion ticket, the slot-CAS
  // insert publication, and the buffer push — the hot paths the CBPQ is
  // about — remain lock-free; only the amortized-rare restructuring takes
  // the lock (DESIGN.md §4 records the substitution).
  void rebuild_first(Chunk* first) {
    std::lock_guard<Spinlock> lock(restructure_lock_.value);
    if (head_.load(std::memory_order_acquire) != first) {
      return;  // someone rebuilt while we waited
    }
    first->frozen.store(true, std::memory_order_release);
    // 1. Freeze-steal the buffer: after the fetch_or, every push CAS fails.
    const std::uintptr_t stolen =
        first->buffer.fetch_or(1, std::memory_order_acq_rel);
    // 2. Void the deletion counter: tickets handed out before the jump and
    //    below count stay uniquely owned; everything after is invalid.
    const std::uint64_t consumed = std::min<std::uint64_t>(
        first->del_idx.fetch_add(first->count + 1,
                                 std::memory_order_acq_rel),
        first->count);

    std::vector<std::pair<Key, Value>> items;
    for (std::uint64_t i = consumed; i < first->count; ++i) {
      items.push_back(first->sorted[i]);
    }
    for (BufferNode* node = untag(stolen); node; node = node->next) {
      if (!node->claimed.exchange(true, std::memory_order_acq_rel)) {
        items.emplace_back(node->key, node->value);
      }
    }

    // 3. Absorb the successor insert chunk when the remainder is small, so
    //    delete-heavy phases keep making progress. We hold the restructure
    //    lock, so the successor cannot be mid-split.
    Chunk* successor = first->next.load(std::memory_order_acquire);
    Chunk* tail = successor;
    Key absorbed_max = first->max_key;
    if (successor && items.size() < kChunkCapacity / 2) {
      successor->frozen.store(true, std::memory_order_release);
      freeze_and_collect(successor, items);
      absorbed_max = successor->max_key;
      tail = successor->next.load(std::memory_order_acquire);
    } else {
      successor = nullptr;  // not absorbed
    }

    std::sort(items.begin(), items.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });

    // 4. Distribute: the first kChunkCapacity items form the new sorted
    //    first chunk; any overflow (a bloated buffer, an absorbed chunk)
    //    becomes a chain of half-full insert chunks. Key-range bounds are
    //    taken from the item split points so that routing stays exact —
    //    this is what keeps the queue strict: the first chunk always covers
    //    a key range below every other chunk.
    std::vector<std::pair<Key, Value>> head_items;
    const std::size_t head_take =
        std::min<std::size_t>(items.size(), kChunkCapacity);
    head_items.assign(items.begin(), items.begin() + head_take);

    Chunk* new_next = tail;
    Key running_max = absorbed_max;  // max of the last range built so far
    // Build overflow chunks back-to-front so each links to its successor.
    std::size_t overflow_end = items.size();
    while (overflow_end > head_take) {
      const std::size_t begin =
          overflow_end - std::min<std::size_t>(overflow_end - head_take,
                                               kChunkCapacity / 2);
      // This chunk covers keys up to the last item it holds, except the
      // final overflow chunk, which inherits the absorbed upper bound.
      const Key chunk_max = (overflow_end == items.size())
                                ? running_max
                                : items[overflow_end - 1].first;
      Chunk* overflow = Chunk::create_insert(chunk_max, new_next);
      for (std::size_t i = begin; i < overflow_end; ++i) {
        fill_slot(overflow, i - begin, items[i]);
      }
      overflow->ins_idx.store(
          static_cast<std::uint32_t>(overflow_end - begin),
          std::memory_order_release);
      new_next = overflow;
      overflow_end = begin;
    }
    const Key first_max = (new_next == tail)
                              ? absorbed_max
                              : head_items.empty()
                                    ? Key{}
                                    : head_items.back().first;
    Chunk* fresh =
        Chunk::create_first(std::move(head_items), first_max, new_next);

    head_.store(fresh, std::memory_order_release);
    rebuild_index();
    mm::EbrDomain::global().retire(static_cast<void*>(first),
                                   &Chunk::ebr_deleter);
    if (successor) {
      mm::EbrDomain::global().retire(static_cast<void*>(successor),
                                     &Chunk::ebr_deleter);
    }
  }

  // Split a full insert chunk into two halves (serialized with rebuilds by
  // restructure_lock_; see rebuild_first for the rationale).
  void split_insert_chunk(Chunk* chunk) {
    std::lock_guard<Spinlock> lock(restructure_lock_.value);
    if (chunk->frozen.load(std::memory_order_acquire)) {
      return;  // already split or absorbed while we waited for the lock
    }
    // Under the lock the list is structurally stable: find the predecessor
    // first — if the chunk is no longer reachable it was already replaced.
    Chunk* pred = head_.load(std::memory_order_acquire);
    Chunk* cursor = pred->next.load(std::memory_order_acquire);
    while (cursor && cursor != chunk) {
      pred = cursor;
      cursor = cursor->next.load(std::memory_order_acquire);
    }
    if (!cursor) return;

    chunk->frozen.store(true, std::memory_order_release);
    std::vector<std::pair<Key, Value>> items;
    freeze_and_collect(chunk, items);
    std::sort(items.begin(), items.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });

    Chunk* tail = chunk->next.load(std::memory_order_acquire);
    Chunk* replacement;
    if (items.size() <= kChunkCapacity / 2) {
      // Racing deleters (via rebuild) cannot have drained it — only a
      // rebuild absorbs, and rebuilds hold this lock — but items can be
      // few if racing writers lost their slot CAS to the freeze. One chunk
      // suffices.
      replacement = Chunk::create_insert(chunk->max_key, tail);
      for (std::size_t i = 0; i < items.size(); ++i) {
        fill_slot(replacement, i, items[i]);
      }
      replacement->ins_idx.store(static_cast<std::uint32_t>(items.size()),
                                 std::memory_order_release);
    } else {
      const std::size_t half = items.size() / 2;
      const Key low_max = items[half - 1].first;
      Chunk* high = Chunk::create_insert(chunk->max_key, tail);
      Chunk* low = Chunk::create_insert(low_max, high);
      for (std::size_t i = 0; i < half; ++i) fill_slot(low, i, items[i]);
      low->ins_idx.store(static_cast<std::uint32_t>(half),
                         std::memory_order_release);
      for (std::size_t i = half; i < items.size(); ++i) {
        fill_slot(high, i - half, items[i]);
      }
      high->ins_idx.store(static_cast<std::uint32_t>(items.size() - half),
                          std::memory_order_release);
      replacement = low;
    }
    pred->next.store(replacement, std::memory_order_release);
    rebuild_index();
    mm::EbrDomain::global().retire(static_cast<void*>(chunk),
                                   &Chunk::ebr_deleter);
  }

  static void fill_slot(Chunk* chunk, std::size_t index,
                        const std::pair<Key, Value>& item) {
    chunk->slots[index].key = item.first;
    chunk->slots[index].value = item.second;
    chunk->slots[index].state.store(SlotState::kWritten,
                                    std::memory_order_release);
  }

  std::atomic<Chunk*> head_{nullptr};
  std::atomic<ChunkIndex*> index_{nullptr};
  CacheAligned<Spinlock> restructure_lock_;
};

static_assert(ConcurrentPriorityQueue<ChunkBasedQueue<bench_key, bench_value>>);

}  // namespace cpq
