// Engineered MultiQueue (Williams & Sanders, "Engineering MultiQueues",
// arXiv:2504.11652) — the post-paper generation of the SPAA'15 MultiQueue,
// built on the same spinlocked-local-queue cell as multiqueue.hpp.
//
// Three orthogonal refinements over the classic two-choice scheme, each
// aimed at one hot-path cost the perf counters can measure directly:
//
//   * insertion buffers — each handle stages up to `ins_buffer` items in a
//     small sorted thread-local array and flushes them into ONE locked
//     queue in ONE lock acquisition, amortizing the lock hand-off (and its
//     cache-line ping-pong) across the whole batch;
//   * deletion buffers — delete_min pops up to `del_buffer` minima from the
//     two-choice winner under ONE lock acquisition and serves subsequent
//     calls from the thread-local batch with no shared-memory traffic;
//   * sticky rounds — the queue indices used for insertion flushes and
//     deletion refills are redrawn only every `stickiness` uses (or on
//     try_lock failure), so consecutive operations hit cache-warm heaps
//     instead of spraying across c*P cache-cold ones.
//
// The price is relaxation: buffered items are invisible to other threads
// and batched minima skip ahead of globally smaller keys, so the expected
// rank error widens from O(c*P) to roughly (c*s + ins + del)*P —
// soft_rank_bound() self-reports exactly that (queue_traits.hpp concept),
// and the registry arms the live RankEstimator with it (always soft: no
// worst-case guarantee exists, violations are never counted).
//
// Conservation contract (CheckedQueue, harness drains): delete_min serves
// the handle's own staged insertions when the shared queues look empty and
// returns false ONLY when both thread-local buffers are empty — so a
// single-threaded drain through any one handle can always terminate without
// stranding items. Destroying a handle spills both buffers back into a
// shared queue under a blocking lock; the benchmark harnesses destroy every
// worker handle at join, before any reconcile()/drain() runs.
//
// Fault-injection seams (kDelay-safe; flush/refill are additionally
// kThrow-safe because they fire before the lock is taken and the buffers
// are only cleared after the locked work committed):
//   mq_eng.flush   — entry of an insertion-buffer flush
//   mq_eng.refill  — entry of a deletion-buffer refill
//   mq_eng.spill   — entry of the destructor spill (delay-only: a throw
//                    here would escape a destructor)
#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"
#include "platform/cache.hpp"
#include "platform/rng.hpp"
#include "platform/spinlock.hpp"
#include "queues/multiqueue.hpp"
#include "queues/queue_traits.hpp"
#include "seq/binary_heap.hpp"
#include "validation/fault_injection.hpp"

namespace cpq {

// Tuning for one EngMultiQueue instance. stickiness=1 and zero buffers
// degenerate to the classic MultiQueue's per-op redraw scheme.
struct MqEngConfig {
  unsigned c = 4;           // local queues per thread
  unsigned stickiness = 8;  // lock acquisitions per queue draw (>= 1)
  unsigned ins_buffer = 16; // staged insertions per flush (0 = unbuffered)
  unsigned del_buffer = 16; // minima popped per refill (0 = pop singly)
};

template <typename Key, typename Value,
          typename SeqQueue = seq::BinaryHeap<Key, Value>>
class EngMultiQueue {
 public:
  using key_type = Key;
  using value_type = Value;
  using Item = std::pair<Key, Value>;

  static constexpr Key kEmptyKey =
      detail::MqLocalQueue<Key, Value, SeqQueue>::kEmptyKey;

  explicit EngMultiQueue(unsigned max_threads, MqEngConfig cfg = {},
                         std::uint64_t seed = 1)
      : queues_(static_cast<std::size_t>(cfg.c == 0 ? 1 : cfg.c) *
                (max_threads == 0 ? 1 : max_threads)),
        cfg_(sanitize(cfg)),
        seed_(seed) {}

  // Expected-case relaxation: during a sticky round a thread keeps popping
  // from the same two-choice winner (c*s term), while up to ins+del items
  // per thread sit in buffers invisible to (or ahead of) the global order.
  static double soft_rank_bound(const MqEngConfig& cfg, unsigned threads) {
    const MqEngConfig s = sanitize(cfg);
    const double per_thread = static_cast<double>(s.c) * s.stickiness +
                              static_cast<double>(s.ins_buffer) +
                              static_cast<double>(s.del_buffer);
    return per_thread * threads;
  }

  double soft_rank_bound(unsigned threads) const {
    return soft_rank_bound(cfg_, threads);
  }

  const MqEngConfig& config() const noexcept { return cfg_; }

  class Handle {
   public:
    Handle(EngMultiQueue& queue, unsigned thread_id)
        : queue_(&queue), rng_(thread_seed(queue.seed_, thread_id)) {
      ins_buf_.reserve(queue.cfg_.ins_buffer);
      del_buf_.reserve(queue.cfg_.del_buffer == 0 ? 1 : queue.cfg_.del_buffer);
    }

    // Move-only: the destructor spills the thread-local buffers back into
    // the shared queues, so exactly one live handle may own them.
    Handle(Handle&& other) noexcept
        : queue_(other.queue_),
          rng_(other.rng_),
          ins_buf_(std::move(other.ins_buf_)),
          del_buf_(std::move(other.del_buf_)),
          del_pos_(other.del_pos_),
          ins_queue_(other.ins_queue_),
          ins_uses_(other.ins_uses_),
          del_queue_a_(other.del_queue_a_),
          del_queue_b_(other.del_queue_b_),
          del_uses_(other.del_uses_) {
      other.queue_ = nullptr;
    }

    Handle& operator=(Handle&& other) {
      if (this != &other) {
        spill();
        queue_ = other.queue_;
        rng_ = other.rng_;
        ins_buf_ = std::move(other.ins_buf_);
        del_buf_ = std::move(other.del_buf_);
        del_pos_ = other.del_pos_;
        ins_queue_ = other.ins_queue_;
        ins_uses_ = other.ins_uses_;
        del_queue_a_ = other.del_queue_a_;
        del_queue_b_ = other.del_queue_b_;
        del_uses_ = other.del_uses_;
        other.queue_ = nullptr;
      }
      return *this;
    }

    Handle(const Handle&) = delete;
    Handle& operator=(const Handle&) = delete;

    ~Handle() { spill(); }

    void insert(Key key, Value value) {
      const unsigned cap = queue_->cfg_.ins_buffer;
      if (cap == 0) {
        insert_direct(key, value);
        return;
      }
      // Kept sorted descending so the staged minimum is back(): delete_min
      // compares it against the deletion buffer's front in O(1).
      const auto pos = std::upper_bound(
          ins_buf_.begin(), ins_buf_.end(), key,
          [](Key k, const Item& item) { return k > item.first; });
      ins_buf_.insert(pos, Item{key, value});
      if (ins_buf_.size() >= cap) flush_ins_buffer();
    }

    bool delete_min(Key& key_out, Value& value_out) {
      if (del_pos_ >= del_buf_.size()) refill_del_buffer();
      const bool have_del = del_pos_ < del_buf_.size();
      const bool have_ins = !ins_buf_.empty();
      if (have_del &&
          (!have_ins || del_buf_[del_pos_].first <= ins_buf_.back().first)) {
        key_out = del_buf_[del_pos_].first;
        value_out = del_buf_[del_pos_].second;
        if (++del_pos_ >= del_buf_.size()) {
          del_buf_.clear();
          del_pos_ = 0;
        }
        return true;
      }
      if (have_ins) {
        // Shared queues look empty (or the staged item is the smaller
        // choice): serve the handle's own staging buffer so no item is
        // ever stranded behind an empty-looking report.
        key_out = ins_buf_.back().first;
        value_out = ins_buf_.back().second;
        ins_buf_.pop_back();
        return true;
      }
      return false;
    }

   private:
    friend class EngMultiQueue;
    using LocalQueue = detail::MqLocalQueue<Key, Value, SeqQueue>;
    static constexpr unsigned kMaxAttempts = 64;

    void insert_direct(Key key, Value value) {
      auto& queues = queue_->queues_;
      const std::size_t n = queues.size();
      for (;;) {
        if (ins_uses_ == 0) {
          ins_queue_ = rng_.next_below(n);
          ins_uses_ = queue_->cfg_.stickiness;
        }
        LocalQueue& q = queues[ins_queue_].value;
        if (!q.lock.try_lock()) {
          CPQ_COUNT(kLockRetry);
          ins_uses_ = 0;  // the sticky queue is hot — redraw
          continue;
        }
        q.pq.insert(key, value);
        q.refresh_min();
        q.lock.unlock();
        --ins_uses_;
        return;
      }
    }

    // One lock acquisition lands the whole staged batch. Fires the
    // injection seam before locking: a throw leaves the buffer intact for
    // the destructor spill, so conservation holds.
    void flush_ins_buffer() {
      CPQ_INJECT("mq_eng.flush");
      auto& queues = queue_->queues_;
      const std::size_t n = queues.size();
      for (;;) {
        if (ins_uses_ == 0) {
          ins_queue_ = rng_.next_below(n);
          ins_uses_ = queue_->cfg_.stickiness;
        }
        LocalQueue& q = queues[ins_queue_].value;
        if (!q.lock.try_lock()) {
          CPQ_COUNT(kLockRetry);
          ins_uses_ = 0;
          continue;
        }
        for (const Item& item : ins_buf_) q.pq.insert(item.first, item.second);
        q.refresh_min();
        q.lock.unlock();
        --ins_uses_;
        ins_buf_.clear();
        return;
      }
    }

    // Two-choice refill: pop up to del_buffer minima from the winner under
    // one lock. Leaves del_buf_ empty when every queue is (momentarily)
    // empty or the attempt budget is exhausted by contention.
    void refill_del_buffer() {
      CPQ_INJECT("mq_eng.refill");
      auto& queues = queue_->queues_;
      const std::size_t n = queues.size();
      const std::size_t batch =
          queue_->cfg_.del_buffer == 0 ? 1 : queue_->cfg_.del_buffer;
      for (unsigned attempt = 0; attempt < kMaxAttempts; ++attempt) {
        if (del_uses_ == 0) {
          del_queue_a_ = rng_.next_below(n);
          del_queue_b_ = rng_.next_below(n);
          del_uses_ = queue_->cfg_.stickiness;
        }
        const std::size_t i = del_queue_a_;
        const std::size_t j = del_queue_b_;
        const Key ki = queues[i].value.min_mirror.load(std::memory_order_acquire);
        const Key kj = queues[j].value.min_mirror.load(std::memory_order_acquire);
        std::size_t pick = (kj < ki) ? j : i;
        if (ki == kEmptyKey && kj == kEmptyKey) {
          del_uses_ = 0;  // the sticky pair went stale either way
          if (all_empty()) return;
          // Mirrors can hide maximal-key items; trust the exact counts.
          bool found = false;
          for (std::size_t probe = 0; probe < n; ++probe) {
            const std::size_t candidate = (i + probe) % n;
            if (queues[candidate].value.count.load(
                    std::memory_order_acquire) > 0) {
              pick = candidate;
              found = true;
              break;
            }
          }
          if (!found) continue;
        }
        LocalQueue& q = queues[pick].value;
        if (!q.lock.try_lock()) {
          CPQ_COUNT(kLockRetry);
          del_uses_ = 0;
          continue;
        }
        Key key;
        Value value;
        while (del_buf_.size() < batch && q.pq.delete_min(key, value)) {
          del_buf_.emplace_back(key, value);
        }
        q.refresh_min();
        q.lock.unlock();
        if (!del_buf_.empty()) {
          --del_uses_;
          return;
        }
        del_uses_ = 0;  // raced to empty under the lock — redraw
      }
    }

    // Return every buffered item to a shared queue under one blocking lock
    // (the spill must land even under contention — handle teardown is the
    // last chance before reconcile()/drain() diffs the multisets).
    void spill() {
      if (queue_ == nullptr) return;
      const bool have_ins = !ins_buf_.empty();
      const bool have_del = del_pos_ < del_buf_.size();
      if (!have_ins && !have_del) return;
      CPQ_INJECT("mq_eng.spill");
      auto& queues = queue_->queues_;
      LocalQueue& q = queues[rng_.next_below(queues.size())].value;
      q.lock.lock();
      for (const Item& item : ins_buf_) q.pq.insert(item.first, item.second);
      for (std::size_t p = del_pos_; p < del_buf_.size(); ++p) {
        q.pq.insert(del_buf_[p].first, del_buf_[p].second);
      }
      q.refresh_min();
      q.lock.unlock();
      ins_buf_.clear();
      del_buf_.clear();
      del_pos_ = 0;
    }

    bool all_empty() const {
      for (const auto& q : queue_->queues_) {
        if (q.value.count.load(std::memory_order_acquire) > 0) return false;
      }
      return true;
    }

    EngMultiQueue* queue_;
    Xoroshiro128 rng_;
    std::vector<Item> ins_buf_;  // sorted descending; min at back()
    std::vector<Item> del_buf_;  // ascending batch; served from del_pos_
    std::size_t del_pos_ = 0;
    std::size_t ins_queue_ = 0;  // sticky insertion target
    unsigned ins_uses_ = 0;      // flushes left before redrawing it
    std::size_t del_queue_a_ = 0;  // sticky deletion pair
    std::size_t del_queue_b_ = 0;
    unsigned del_uses_ = 0;      // refills left before redrawing it
  };

  Handle get_handle(unsigned thread_id) { return Handle(*this, thread_id); }

  std::size_t queue_count() const noexcept { return queues_.size(); }

  // Sum of per-queue sizes; only meaningful when quiescent, and excludes
  // items staged in live handles' buffers.
  std::size_t unsafe_size() const {
    std::size_t total = 0;
    for (const auto& q : queues_) total += q.value.pq.size();
    return total;
  }

 private:
  using LocalQueue = detail::MqLocalQueue<Key, Value, SeqQueue>;

  static MqEngConfig sanitize(MqEngConfig cfg) {
    if (cfg.c == 0) cfg.c = 1;
    if (cfg.stickiness == 0) cfg.stickiness = 1;
    return cfg;
  }

  std::vector<CacheAligned<LocalQueue>> queues_;
  MqEngConfig cfg_;
  std::uint64_t seed_;

  friend class Handle;
};

}  // namespace cpq
