// Sundell–Tsigas-style skiplist priority queue — extension ("sundell").
//
// Sundell and Tsigas built the first lock-free concurrent priority queue
// (2003), one of the three skiplist lineages the paper's §1 cites alongside
// Shavit–Lotan and Lindén–Jonsson. Its distinguishing trait, transplanted
// onto our shared substrate, is *cooperative* physical cleanup through
// helping: delete_min only claims the front node (one fetch_or, like
// Lindén) and does no restructuring of its own; logically deleted nodes are
// unlinked by whoever traverses past them — which in a priority queue means
// the inserters' searches (our SkiplistBase::search already snips marked
// nodes on its path, the Harris/Sundell helping rule).
//
// The three variants thus span the cleanup design space on one substrate:
//   * linden — deleters clean, lazily in batches (prefix restructure);
//   * slotan — deleters clean, eagerly per deletion;
//   * sundell — deleters never clean; traversals (inserts) help.
// bench-wise, sundell shifts the cleanup cost from the delete path to the
// insert path; under deletion-heavy phases the marked prefix grows until
// the next insert sweeps it, so a safety valve triggers a prefix
// restructure when the walked prefix exceeds a large bound.
#pragma once

#include <cstdint>

#include "platform/rng.hpp"
#include "queues/queue_traits.hpp"
#include "queues/skiplist_common.hpp"

namespace cpq {

template <typename Key, typename Value>
class SundellTsigasQueue : private detail::SkiplistBase<Key, Value> {
  using Base = detail::SkiplistBase<Key, Value>;
  using Node = typename Base::Node;

 public:
  using key_type = Key;
  using value_type = Value;

  explicit SundellTsigasQueue(unsigned max_threads = 0,
                              std::uint64_t seed = 1,
                              unsigned prefix_safety_bound = 1024)
      : Base(seed), prefix_safety_bound_(prefix_safety_bound) {
    (void)max_threads;
  }

  class Handle {
   public:
    Handle(SundellTsigasQueue& queue, unsigned thread_id)
        : queue_(&queue), rng_(thread_seed(queue.seed_, thread_id)) {}

    void insert(Key key, Value value) {
      // insert_node's search snips every marked node on its path — the
      // helping that keeps the structure tidy in this variant.
      queue_->insert_node(key, value, rng_);
    }

    bool delete_min(Key& key_out, Value& value_out) {
      SundellTsigasQueue& q = *queue_;
      unsigned walked = 0;
      Node* node =
          Base::unpack(q.head_->next[0].load(std::memory_order_acquire));
      while (node != q.tail_) {
        const std::uintptr_t old_word =
            node->next[0].fetch_or(1, std::memory_order_acq_rel);
        if (!Base::word_marked(old_word)) {
          key_out = node->key;
          value_out = node->value;
          q.push_retired(node);
          // Safety valve only: without inserts, nobody would ever clean.
          if (walked >= q.prefix_safety_bound_) q.clean_prefix();
          return true;
        }
        ++walked;
        node = Base::unpack(old_word);
      }
      if (walked >= q.prefix_safety_bound_) q.clean_prefix();
      return false;
    }

   private:
    SundellTsigasQueue* queue_;
    Xoroshiro128 rng_;
  };

  Handle get_handle(unsigned thread_id) { return Handle(*this, thread_id); }

  using Base::unsafe_purge;
  using Base::unsafe_size;

 private:
  friend class Handle;
  const unsigned prefix_safety_bound_;
};

static_assert(
    ConcurrentPriorityQueue<SundellTsigasQueue<bench_key, bench_value>>);

}  // namespace cpq
