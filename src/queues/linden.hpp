// Lindén–Jonsson concurrent priority queue (OPODIS 2013) — paper's "linden".
//
// A lock-free, linearizable skiplist priority queue with *strict* semantics
// and minimal memory contention: delete_min does not physically remove the
// minimum. Instead it walks the level-0 chain from the head over already
// logically deleted nodes and claims the first live one with a single
// fetch_or on that node's own next word. Only when the deleted prefix grows
// past a bound does one thread restructure the head pointers past the
// prefix. This batching is what lets the queue outperform earlier
// skiplist-based designs (Shavit–Lotan, Sundell–Tsigas) by up to 2x.
//
// Linearizability of delete_min: the fetch_or that first sets the mark bit
// is the linearization point, and the claimed node is the first unmarked
// node in level-0 order, i.e. the live minimum.
#pragma once

#include <cstdint>

#include "platform/rng.hpp"
#include "queues/queue_traits.hpp"
#include "queues/skiplist_common.hpp"

namespace cpq {

template <typename Key, typename Value>
class LindenQueue : private detail::SkiplistBase<Key, Value> {
  using Base = detail::SkiplistBase<Key, Value>;
  using Node = typename Base::Node;

 public:
  using key_type = Key;
  using value_type = Value;

  // `prefix_bound` is Lindén's BoundOffset: the deleted-prefix length that
  // triggers physical restructuring.
  explicit LindenQueue(unsigned max_threads = 0, unsigned prefix_bound = 32,
                       std::uint64_t seed = 1)
      : Base(seed), prefix_bound_(prefix_bound) {
    (void)max_threads;
  }

  class Handle {
   public:
    Handle(LindenQueue& queue, unsigned thread_id)
        : queue_(&queue), rng_(thread_seed(queue.seed_, thread_id)) {}

    void insert(Key key, Value value) {
      queue_->insert_node(key, value, rng_);
    }

    bool delete_min(Key& key_out, Value& value_out) {
      LindenQueue& q = *queue_;
      unsigned deleted_prefix = 0;
      Node* node = Base::unpack(
          q.head_->next[0].load(std::memory_order_acquire));
      while (node != q.tail_) {
        const std::uintptr_t old_word =
            node->next[0].fetch_or(1, std::memory_order_acq_rel);
        if (!Base::word_marked(old_word)) {
          key_out = node->key;
          value_out = node->value;
          q.push_retired(node);
          if (deleted_prefix >= q.prefix_bound_) q.clean_prefix();
          return true;
        }
        ++deleted_prefix;
        node = Base::unpack(old_word);
      }
      // Every node between head and tail was already claimed: empty in the
      // observed window. Tidy the prefix so the next caller starts closer.
      if (deleted_prefix >= q.prefix_bound_) q.clean_prefix();
      return false;
    }

   private:
    LindenQueue* queue_;
    Xoroshiro128 rng_;
  };

  Handle get_handle(unsigned thread_id) { return Handle(*this, thread_id); }

  using Base::unsafe_purge;
  using Base::unsafe_size;

 private:
  friend class Handle;
  const unsigned prefix_bound_;
};

static_assert(ConcurrentPriorityQueue<LindenQueue<bench_key, bench_value>>);

}  // namespace cpq
