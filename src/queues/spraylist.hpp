// SprayList (Alistarh, Kopinsky, Li, Shavit; PPoPP 2015) — paper's "spray".
//
// A relaxed priority queue over a Fraser-style lock-free skiplist.
// delete_min performs a "spray": a random walk that starts a few levels up
// and takes a uniformly random number of steps at each level before
// descending, landing on (approximately) a uniformly random element among
// the O(P log^3 P) smallest. The landed-on element is claimed by marking,
// exactly as in our Lindén implementation. With small probability a deleter
// becomes a "cleaner" that behaves like Lindén's delete_min and
// restructures the deleted prefix.
//
// The spray parameters follow the shape of the published algorithm:
// starting height ~ log2(P)+1 and per-level jump lengths uniform in
// [0, M*(log2(P)+1)] with M configurable (the constants only shift the
// relaxation/contention trade-off; the paper under reproduction reports the
// SprayList's *measured* behaviour, which our bench harness regenerates).
//
// The paper notes the original SprayList code "was not stable and it was
// not possible to gather results" outside uniform workloads/keys; this
// implementation is stable in all configurations, so EXPERIMENTS.md reports
// data where the paper has gaps.
#pragma once

#include <bit>
#include <cstdint>

#include "platform/rng.hpp"
#include "queues/queue_traits.hpp"
#include "queues/skiplist_common.hpp"

namespace cpq {

template <typename Key, typename Value>
class SprayList : private detail::SkiplistBase<Key, Value> {
  using Base = detail::SkiplistBase<Key, Value>;
  using Node = typename Base::Node;

 public:
  using key_type = Key;
  using value_type = Value;

  explicit SprayList(unsigned max_threads, unsigned spray_m = 1,
                     std::uint64_t seed = 1)
      : Base(seed),
        threads_(max_threads == 0 ? 1 : max_threads),
        log_p_(std::bit_width(static_cast<unsigned>(
                   threads_ <= 1 ? 1u : threads_ - 1)) +
               1),
        spray_m_(spray_m == 0 ? 1 : spray_m) {}

  class Handle {
   public:
    Handle(SprayList& queue, unsigned thread_id)
        : queue_(&queue), rng_(thread_seed(queue.seed_, thread_id)) {}

    void insert(Key key, Value value) {
      queue_->insert_node(key, value, rng_);
    }

    bool delete_min(Key& key_out, Value& value_out) {
      SprayList& q = *queue_;
      // ~1/P of deleters act as cleaners: take the true front element and
      // restructure the prefix, so sprayed-over minima cannot linger.
      if (rng_.next_below(q.threads_) == 0) {
        return linden_style_pop(key_out, value_out);
      }
      for (unsigned attempt = 0; attempt < kSprayAttempts; ++attempt) {
        Node* node = spray();
        // Walk forward from the landing point to the first live node.
        unsigned scan = 0;
        while (node != q.tail_ && scan < kScanBound) {
          const std::uintptr_t word =
              node->next[0].load(std::memory_order_acquire);
          if (!Base::word_marked(word)) {
            const std::uintptr_t old_word =
                node->next[0].fetch_or(1, std::memory_order_acq_rel);
            if (!Base::word_marked(old_word)) {
              key_out = node->key;
              value_out = node->value;
              q.push_retired(node);
              return true;
            }
          }
          node = Base::unpack(word);
          ++scan;
        }
      }
      // Sprays kept colliding; fall back to a deterministic front pop that
      // can also detect emptiness.
      return linden_style_pop(key_out, value_out);
    }

   private:
    static constexpr unsigned kSprayAttempts = 2;
    static constexpr unsigned kScanBound = 64;

    // Random descent: uniform jumps of [0, M*(log2 P + 1)] per level
    // starting at height log2(P)+1. Returns the landing node (may be head_).
    Node* spray() {
      SprayList& q = *queue_;
      const unsigned start_level =
          q.log_p_ < Base::kMaxHeight ? q.log_p_ : Base::kMaxHeight - 1;
      const std::uint64_t max_jump =
          static_cast<std::uint64_t>(q.spray_m_) * (q.log_p_ + 1);
      Node* node = q.head_;
      for (unsigned level = start_level + 1; level-- > 0;) {
        std::uint64_t jump = rng_.next_below(max_jump + 1);
        while (jump-- > 0) {
          Node* next = Base::unpack(
              node->next[level].load(std::memory_order_acquire));
          if (next == q.tail_) break;
          node = next;
        }
        if (level == 0) break;
      }
      if (node == q.head_) {
        node = Base::unpack(q.head_->next[0].load(std::memory_order_acquire));
      }
      return node;
    }

    bool linden_style_pop(Key& key_out, Value& value_out) {
      SprayList& q = *queue_;
      unsigned deleted_prefix = 0;
      Node* node =
          Base::unpack(q.head_->next[0].load(std::memory_order_acquire));
      while (node != q.tail_) {
        const std::uintptr_t old_word =
            node->next[0].fetch_or(1, std::memory_order_acq_rel);
        if (!Base::word_marked(old_word)) {
          key_out = node->key;
          value_out = node->value;
          q.push_retired(node);
          if (deleted_prefix >= kPrefixBound) q.clean_prefix();
          return true;
        }
        ++deleted_prefix;
        node = Base::unpack(old_word);
      }
      if (deleted_prefix >= kPrefixBound) q.clean_prefix();
      return false;
    }

    static constexpr unsigned kPrefixBound = 32;

    SprayList* queue_;
    Xoroshiro128 rng_;
  };

  Handle get_handle(unsigned thread_id) { return Handle(*this, thread_id); }

  using Base::unsafe_purge;
  using Base::unsafe_size;

 private:
  friend class Handle;
  const unsigned threads_;
  const unsigned log_p_;
  const unsigned spray_m_;
};

static_assert(ConcurrentPriorityQueue<SprayList<bench_key, bench_value>>);

}  // namespace cpq
