// Flat-combining priority queue (Hendler, Incze, Shavit, Tzafrir, SPAA
// 2010) — roster name "fc".
//
// One sequential binary heap, no lock-free cleverness: each thread
// publishes its operation into a per-thread publication record and spins;
// whichever thread holds (or grabs) the combiner lock batch-executes every
// pending record against the heap. Compared with the plain global lock
// ("glock") the lock is acquired once per *batch* instead of once per
// operation, and the heap's cache lines stay hot in the single combiner's
// core instead of bouncing between every contender — the flat-combining
// paper's pitch, and the reason this entry serves as the contention-proof
// baseline for the adversarial workloads: its throughput should *hold*
// under contention where CAS-based structures start burning retries.
//
// Strict semantics: operations take effect at the moment the combiner
// applies them to the heap (the combining session is the linearization
// point), so delete_min returns the true minimum of all applied operations
// — rank error 0, like glock/linden/hunt.
//
// Conservation contract (CheckedQueue): an insert is visible to deleters
// only after the combiner applies it; the publication record handshake
// (release-store kInsertPending → combiner applies → release-store kIdle)
// delivers each published operation to the heap exactly once, and a
// requester never reuses its record before observing completion.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>

#include "platform/backoff.hpp"
#include "platform/cache.hpp"
#include "platform/spinlock.hpp"
#include "queues/queue_traits.hpp"
#include "seq/binary_heap.hpp"
#include "validation/fault_injection.hpp"

namespace cpq {

template <typename Key, typename Value>
class FcPriorityQueue {
 public:
  using key_type = Key;
  using value_type = Value;

  explicit FcPriorityQueue(unsigned max_threads,
                           std::size_t initial_capacity = 1024,
                           std::uint64_t /*seed*/ = 1)
      : max_threads_(max_threads == 0 ? 1 : max_threads),
        records_(std::make_unique<CacheAligned<Record>[]>(max_threads_)),
        heap_(initial_capacity) {}

  FcPriorityQueue(const FcPriorityQueue&) = delete;
  FcPriorityQueue& operator=(const FcPriorityQueue&) = delete;

 private:
  enum : std::uint32_t {
    kIdle = 0,
    kInsertPending = 1,
    kDeletePending = 2,
    kDone = 3,  // delete executed, result waiting in the record
  };

  struct Record {
    std::atomic<std::uint32_t> state{kIdle};
    Key key{};
    Value value{};
    bool hit = false;
  };

 public:
  class Handle {
   public:
    Handle(FcPriorityQueue& queue, unsigned thread_id)
        : queue_(&queue), tid_(thread_id % queue.max_threads_) {}

    void insert(Key key, Value value) {
      Record& record = queue_->record(tid_);
      record.key = key;
      record.value = value;
      // Fault injection: stall between writing the payload and publishing
      // the request — a combiner must never read a half-written record.
      CPQ_INJECT("fc.publish");
      record.state.store(kInsertPending, std::memory_order_release);
      await(record, kIdle);
    }

    bool delete_min(Key& key_out, Value& value_out) {
      Record& record = queue_->record(tid_);
      CPQ_INJECT("fc.publish");
      record.state.store(kDeletePending, std::memory_order_release);
      await(record, kDone);
      const bool hit = record.hit;
      if (hit) {
        key_out = record.key;
        value_out = record.value;
      }
      // Returning the record to kIdle is what allows its reuse; the
      // combiner never touches a non-pending record, so relaxed is enough.
      record.state.store(kIdle, std::memory_order_relaxed);
      return hit;
    }

   private:
    // Spin until our record reaches `completed`, volunteering as combiner
    // whenever the lock is free. A requester that fails the try_lock knows
    // an active combiner exists, and that combiner must observe our
    // published record in one of its scan passes or finish and release the
    // lock, letting us combine ourselves — no lost wakeups.
    void await(Record& record, std::uint32_t completed) {
      Backoff backoff(reinterpret_cast<std::uintptr_t>(&record));
      for (;;) {
        if (record.state.load(std::memory_order_acquire) == completed) return;
        if (queue_->combiner_lock_.value.try_lock()) {
          queue_->combine();
          queue_->combiner_lock_.value.unlock();
          if (record.state.load(std::memory_order_acquire) == completed) {
            return;
          }
        }
        backoff.pause();
      }
    }

    FcPriorityQueue* queue_;
    unsigned tid_;
  };

  Handle get_handle(unsigned thread_id) { return Handle(*this, thread_id); }

  // Quiescent-only; pending-but-uncombined operations are not counted.
  std::uint64_t unsafe_size() const { return heap_.size(); }

 private:
  Record& record(unsigned tid) { return records_[tid].value; }

  // Execute every pending publication record against the heap. Two scan
  // passes per session: the second batches requesters that published while
  // the first pass was running, amortizing the lock hold the way the flat
  // combining paper prescribes.
  void combine() {
    // Fault injection: stretch the combining session before any record is
    // touched — requesters must tolerate an arbitrarily slow combiner.
    CPQ_INJECT("fc.combine");
    for (unsigned pass = 0; pass < 2; ++pass) {
      for (unsigned t = 0; t < max_threads_; ++t) {
        Record& record = records_[t].value;
        const std::uint32_t state =
            record.state.load(std::memory_order_acquire);
        if (state == kInsertPending) {
          heap_.insert(record.key, record.value);
          record.state.store(kIdle, std::memory_order_release);
        } else if (state == kDeletePending) {
          record.hit = heap_.delete_min(record.key, record.value);
          record.state.store(kDone, std::memory_order_release);
        }
      }
    }
  }

  const unsigned max_threads_;
  std::unique_ptr<CacheAligned<Record>[]> records_;
  CacheAligned<Spinlock> combiner_lock_;
  seq::BinaryHeap<Key, Value> heap_;
};

static_assert(ConcurrentPriorityQueue<FcPriorityQueue<bench_key, bench_value>>);

}  // namespace cpq
