// Lock-free skiplist substrate shared by the Lindén–Jonsson queue and the
// SprayList.
//
// Design notes
// ------------
// * Nodes are ordered by (key, node address); the address tiebreak makes the
//   order total, so duplicate keys need no special cases.
// * A node is logically deleted when bit 0 of its next[0] word is set. The
//   deleter claims the node with fetch_or — exactly one thread observes the
//   unmarked previous value and owns the item. This is the Lindén–Jonsson
//   "minimal memory contention" trick: deletions do not modify any other
//   node, so concurrent delete_min operations only contend on the marked
//   word itself.
// * Physical unlinking ("snipping") is best-effort and may be performed by
//   any traversal; inserts never link a new node after a logically deleted
//   predecessor (the link CAS requires the unmarked word), which rules out
//   losing live nodes to concurrent snips.
// * Memory reclamation is deferred: claimed nodes are pushed onto a Treiber
//   retired stack and freed only at destruction or at an explicitly
//   quiescent unsafe_purge(). The original Lindén and SprayList benchmark
//   codes equally never return nodes mid-run (custom pools); deferring makes
//   every racy unlink trivially memory-safe and is the honest cost model for
//   a throughput benchmark. Bounded-memory operation with EBR is
//   demonstrated by the k-LSM (src/queues/klsm/), which frees aggressively.
#pragma once

#include <atomic>
#include <bit>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <new>

#include "obs/metrics.hpp"
#include "platform/cache.hpp"
#include "platform/rng.hpp"

namespace cpq::detail {

template <typename Key, typename Value>
class SkiplistBase {
 public:
  static constexpr unsigned kMaxHeight = 20;

  explicit SkiplistBase(std::uint64_t seed)
      : head_(new_node(std::numeric_limits<Key>::min(), Value{}, kMaxHeight)),
        tail_(new_node(std::numeric_limits<Key>::max(), Value{}, kMaxHeight)),
        seed_(seed) {
    for (unsigned level = 0; level < kMaxHeight; ++level) {
      head_->next[level].store(pack(tail_, false), std::memory_order_relaxed);
      tail_->next[level].store(pack(nullptr, false), std::memory_order_relaxed);
    }
  }

  ~SkiplistBase() {
    // Free the whole level-0 chain except nodes owned by the retired stack
    // (i.e. marked nodes — their claimant pushed them there), then the
    // retired stack itself. Each node is freed exactly once.
    Node* node = head_;
    while (node) {
      Node* next = unpack(node->next[0].load(std::memory_order_relaxed));
      if (node == head_ || node == tail_ || !is_marked(node)) {
        delete_node(node);
      }
      node = next;
    }
    Node* retired = retired_head_.load(std::memory_order_relaxed);
    while (retired) {
      Node* next = retired->retired_next;
      delete_node(retired);
      retired = next;
    }
  }

  SkiplistBase(const SkiplistBase&) = delete;
  SkiplistBase& operator=(const SkiplistBase&) = delete;

  // Reclaim all logically deleted nodes. ONLY safe when no other thread is
  // operating on the skiplist (e.g. between benchmark repetitions).
  void unsafe_purge() {
    // Rebuild every level over live nodes only.
    Node* preds[kMaxHeight];
    for (unsigned level = 0; level < kMaxHeight; ++level) preds[level] = head_;
    Node* node = unpack(head_->next[0].load(std::memory_order_relaxed));
    while (node != tail_) {
      Node* next = unpack(node->next[0].load(std::memory_order_relaxed));
      if (!is_marked(node)) {
        // All surviving nodes are live, so every rebuilt link is unmarked.
        for (unsigned level = 0; level < node->height; ++level) {
          preds[level]->next[level].store(pack(node, false),
                                          std::memory_order_relaxed);
          preds[level] = node;
        }
      }
      node = next;
    }
    for (unsigned level = 0; level < kMaxHeight; ++level) {
      preds[level]->next[level].store(pack(tail_, false),
                                      std::memory_order_relaxed);
    }
    Node* retired =
        retired_head_.exchange(nullptr, std::memory_order_relaxed);
    while (retired) {
      Node* next = retired->retired_next;
      delete_node(retired);
      retired = next;
    }
  }

  // Number of live (unmarked) nodes; linear scan, quiescent use only.
  std::size_t unsafe_size() const {
    std::size_t n = 0;
    const Node* node = unpack(head_->next[0].load(std::memory_order_relaxed));
    while (node != tail_) {
      if (!is_marked(node)) ++n;
      node = unpack(node->next[0].load(std::memory_order_relaxed));
    }
    return n;
  }

 protected:
  struct Node {
    Key key;
    Value value;
    unsigned height;
    Node* retired_next = nullptr;  // Treiber link for deferred reclamation
    // next[0] bit 0 set <=> this node is logically deleted.
    std::atomic<std::uintptr_t> next[1];  // trailing array, length = height
  };

  static Node* new_node(Key key, Value value, unsigned height) {
    const std::size_t bytes =
        sizeof(Node) + (height - 1) * sizeof(std::atomic<std::uintptr_t>);
    void* mem = ::operator new(bytes, std::align_val_t{kCacheLineSize});
    Node* node = static_cast<Node*>(mem);
    node->key = key;
    node->value = value;
    node->height = height;
    node->retired_next = nullptr;
    for (unsigned level = 0; level < height; ++level) {
      new (&node->next[level]) std::atomic<std::uintptr_t>(0);
    }
    return node;
  }

  static void delete_node(Node* node) {
    ::operator delete(node, std::align_val_t{kCacheLineSize});
  }

  static std::uintptr_t pack(Node* node, bool mark) noexcept {
    return reinterpret_cast<std::uintptr_t>(node) |
           static_cast<std::uintptr_t>(mark);
  }

  static Node* unpack(std::uintptr_t word) noexcept {
    return reinterpret_cast<Node*>(word & ~std::uintptr_t{1});
  }

  static bool word_marked(std::uintptr_t word) noexcept { return word & 1; }

  // A node is logically deleted iff its own next[0] word is marked.
  static bool is_marked(const Node* node) noexcept {
    return word_marked(node->next[0].load(std::memory_order_acquire));
  }

  // Total order: (key, address). The address tiebreak gives duplicates a
  // stable order and makes searches exact.
  static bool node_less(const Node* node, Key key, const Node* ref) noexcept {
    if (node->key < key) return true;
    if (key < node->key) return false;
    return ref != nullptr && node < ref;
  }

  // Geometric height from the caller's RNG (p = 1/2), capped.
  static unsigned random_height(Xoroshiro128& rng) noexcept {
    const std::uint64_t r = rng.next() | (1ULL << (kMaxHeight - 1));
    return static_cast<unsigned>(std::countr_zero(r)) + 1;
  }

  // Find preds[l]/succs[l] such that preds[l] < (key, ref) <= succs[l] at
  // every level, snipping logically deleted nodes out of the traversed
  // chains along the way (best effort). Returns the level-0 successor.
  // `ref == nullptr` targets the position before all nodes with `key`.
  Node* search(Key key, const Node* ref, Node** preds, Node** succs) {
    Node* pred = head_;
    for (unsigned level = kMaxHeight; level-- > 0;) {
      std::uintptr_t pred_word = pred->next[level].load(std::memory_order_acquire);
      Node* curr = unpack(pred_word);
      for (;;) {
        if (curr == tail_) break;
        const std::uintptr_t curr_word =
            curr->next[level].load(std::memory_order_acquire);
        Node* next = unpack(curr_word);
        // Start pulling the successor while we compare/snip curr: the
        // traversal is a dependent-load chain, and the next hop's header
        // line is the one miss we can overlap with this iteration.
        if (next != nullptr) prefetch_read(next);
        if (is_marked(curr)) {
          // Snip curr out of this level (preserving pred's own level-0 mark
          // bit). Failure means pred's chain changed; reload and continue.
          const std::uintptr_t desired = pack(next, word_marked(pred_word));
          if (pred->next[level].compare_exchange_weak(
                  pred_word, desired, std::memory_order_acq_rel,
                  std::memory_order_acquire)) {
            pred_word = desired;
          }
          curr = unpack(pred_word);
          continue;
        }
        if (!node_less(curr, key, ref)) break;
        pred = curr;
        pred_word = curr_word;
        curr = next;
      }
      if (preds) preds[level] = pred;
      if (succs) succs[level] = curr;
      if (level == 0) return curr;
    }
    return nullptr;  // unreachable
  }

  // Lock-free insert shared by Linden and SprayList.
  void insert_node(Key key, Value value, Xoroshiro128& rng) {
    const unsigned height = random_height(rng);
    Node* node = new_node(key, value, height);
    Node* preds[kMaxHeight];
    Node* succs[kMaxHeight];
    for (;;) {
      search(key, node, preds, succs);
      // Prepare all level pointers before publishing at level 0.
      for (unsigned level = 0; level < height; ++level) {
        node->next[level].store(pack(succs[level], false),
                                std::memory_order_relaxed);
      }
      // Publish: the expected word must be unmarked — never attach a live
      // node to a logically deleted predecessor.
      std::uintptr_t expected = pack(succs[0], false);
      if (preds[0]->next[0].compare_exchange_strong(
              expected, pack(node, false), std::memory_order_acq_rel,
              std::memory_order_acquire)) {
        break;
      }
      // Lost the race; re-search and retry.
      CPQ_COUNT(kCasRetry);
    }
    // Link the upper levels (best effort: a failed level is re-searched a
    // bounded number of times, then abandoned — the node just stays
    // shorter, which only affects search cost, not correctness).
    for (unsigned level = 1; level < height; ++level) {
      unsigned attempts = 0;
      for (;;) {
        if (is_marked(node)) return;  // already claimed; stop linking
        std::uintptr_t expected = pack(succs[level], false);
        if (preds[level]->next[level].compare_exchange_strong(
                expected, pack(node, false), std::memory_order_acq_rel,
                std::memory_order_acquire)) {
          break;
        }
        if (++attempts > kLinkAttempts) return;
        search(key, node, preds, succs);
        if (succs[level] == node) break;  // already reachable at this level
        node->next[level].store(pack(succs[level], false),
                                std::memory_order_relaxed);
      }
    }
  }

  // Claim `node`: set its mark bit; true iff this thread won. The winner
  // owns the item and must push the node onto the retired stack.
  bool claim(Node* node) noexcept {
    const std::uintptr_t old =
        node->next[0].fetch_or(1, std::memory_order_acq_rel);
    return !word_marked(old);
  }

  void push_retired(Node* node) noexcept {
    Node* head = retired_head_.load(std::memory_order_relaxed);
    do {
      node->retired_next = head;
    } while (!retired_head_.compare_exchange_weak(
        head, node, std::memory_order_release, std::memory_order_relaxed));
  }

  // Detach logically deleted nodes from the head chains (the "deleted
  // prefix" restructure of Lindén–Jonsson). Nodes are NOT freed here.
  void clean_prefix() {
    for (unsigned level = kMaxHeight; level-- > 0;) {
      for (;;) {
        std::uintptr_t word = head_->next[level].load(std::memory_order_acquire);
        Node* first = unpack(word);
        if (first == tail_ || !is_marked(first)) break;
        const std::uintptr_t bypass =
            pack(unpack(first->next[level].load(std::memory_order_acquire)),
                 false);
        if (!head_->next[level].compare_exchange_strong(
                word, bypass, std::memory_order_acq_rel,
                std::memory_order_acquire)) {
          break;  // contention on head; leave it to the next cleaner
        }
      }
    }
  }

  static constexpr unsigned kLinkAttempts = 4;

  Node* const head_;
  Node* const tail_;
  std::atomic<Node*> retired_head_{nullptr};
  std::uint64_t seed_;
};

}  // namespace cpq::detail
