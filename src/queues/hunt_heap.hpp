// Hunt, Michael, Parthasarathy & Scott (1996) concurrent heap — appendix-D
// extension queue ("hunt").
//
// A fixed-capacity array binary heap with one lock per node plus a global
// heap lock that serializes only size changes and slot assignment. The three
// signature techniques of the paper are implemented:
//   (a) per-node locks, so sift operations of different threads overlap;
//   (b) bit-reversed slot assignment, spreading consecutive insertions over
//       different subtrees to reduce lock collisions on the sift-up paths;
//   (c) insertions traverse bottom-up while deletions traverse top-down,
//       with tags reconciling the two: an in-flight inserted item carries
//       its owner's tag, deleters may swap such items upward, and the owner
//       re-finds its item by walking up (or learns at the root that a
//       deleter consumed it, in which case the insert is already complete).
//
// Lock order is strictly by array index (parent before child; the heap lock
// is never held while waiting for a node lock that is held across a heap
// lock acquisition), so the protocol is deadlock-free.
//
// The heap is strict and linearizable. As the paper's appendix D notes, it
// is "easily outperformed by more modern designs" — bench_components and
// the throughput benches reproduce that relation.
#pragma once

#include <bit>
#include <cassert>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>

#include "obs/metrics.hpp"
#include "platform/backoff.hpp"
#include "platform/cache.hpp"
#include "platform/spinlock.hpp"
#include "queues/queue_traits.hpp"
#include "validation/fault_injection.hpp"

namespace cpq {

template <typename Key, typename Value>
class HuntHeap {
 public:
  using key_type = Key;
  using value_type = Value;

  explicit HuntHeap(unsigned max_threads = 0,
                    std::size_t capacity = std::size_t{1} << 20)
      : capacity_(capacity), nodes_(std::make_unique<Node[]>(capacity + 1)) {
    (void)max_threads;
  }

  class Handle {
   public:
    Handle(HuntHeap& heap, unsigned thread_id)
        : heap_(&heap), tag_(kFirstThreadTag + thread_id) {}

    // Inserts are dropped (returning silently) when the heap is full; the
    // benchmark sizes the capacity so this does not occur. try_insert
    // reports the condition for callers that care.
    void insert(Key key, Value value) { (void)try_insert(key, value); }

    bool try_insert(Key key, Value value) {
      HuntHeap& h = *heap_;
      h.heap_lock_.value.lock();
      if (h.size_ >= h.capacity_) {
        h.heap_lock_.value.unlock();
        return false;
      }
      const std::size_t target = h.slot_for(++h.size_);
      Node& node = h.nodes_[target];
      node.lock.lock();
      h.heap_lock_.value.unlock();
      node.key = key;
      node.value = value;
      node.tag = tag_;
      node.lock.unlock();
      // The item is now visible in-transit (tagged) but not yet sifted; this
      // is the window where deleters may claim or swap it.
      CPQ_INJECT("hunt.insert_staged");

      sift_up(target);
      return true;
    }

    bool delete_min(Key& key_out, Value& value_out) {
      HuntHeap& h = *heap_;
      h.heap_lock_.value.lock();
      if (h.size_ == 0) {
        h.heap_lock_.value.unlock();
        return false;
      }
      const std::size_t last = h.slot_for(h.size_--);
      Node& last_node = h.nodes_[last];
      last_node.lock.lock();
      h.heap_lock_.value.unlock();
      // Claim the moving item; if it was in transit, its owner will discover
      // the consumption at the root (see sift_up).
      Key moving_key = last_node.key;
      Value moving_value = last_node.value;
      last_node.tag = kEmpty;
      last_node.lock.unlock();
      // Claimed-but-not-yet-at-root window: the moving item exists only in
      // this thread's locals while concurrent sifts rearrange the array.
      CPQ_INJECT("hunt.claimed_last");

      if (last == kRoot) {
        key_out = moving_key;
        value_out = moving_value;
        return true;
      }

      Node& root = h.nodes_[kRoot];
      root.lock.lock();
      if (root.tag == kEmpty) {
        // Defensive: the level-filling invariant keeps the root occupied
        // whenever size >= 1 was observed, so this should be unreachable;
        // if it ever fires, the moving item itself is a correct result.
        root.lock.unlock();
        key_out = moving_key;
        value_out = moving_value;
        return true;
      }
      key_out = root.key;
      value_out = root.value;
      root.key = moving_key;
      root.value = moving_value;
      root.tag = kAvailable;
      sift_down(kRoot);  // releases root lock
      return true;
    }

   private:
    // Restore heap order below `i`; caller holds nodes_[i].lock, which is
    // released before returning.
    void sift_down(std::size_t i) {
      HuntHeap& h = *heap_;
      for (;;) {
        const std::size_t left = 2 * i;
        const std::size_t right = 2 * i + 1;
        std::size_t smallest = i;
        if (left <= h.capacity_) {
          h.nodes_[left].lock.lock();
          if (h.nodes_[left].tag != kEmpty &&
              h.nodes_[left].key < h.nodes_[smallest].key) {
            smallest = left;
          }
          if (right <= h.capacity_) {
            h.nodes_[right].lock.lock();
            if (h.nodes_[right].tag != kEmpty &&
                h.nodes_[right].key < h.nodes_[smallest].key) {
              smallest = right;
            }
            if (smallest != right) h.nodes_[right].lock.unlock();
          }
          if (smallest != left) h.nodes_[left].lock.unlock();
        }
        if (smallest == i) {
          h.nodes_[i].lock.unlock();
          return;
        }
        swap_items(h.nodes_[i], h.nodes_[smallest]);
        h.nodes_[i].lock.unlock();
        i = smallest;
      }
    }

    // Walk our tagged item up to its heap position. No locks held between
    // iterations; pairs are acquired parent-then-child (ascending index).
    void sift_up(std::size_t start) {
      HuntHeap& h = *heap_;
      std::size_t i = start;
      Backoff backoff(reinterpret_cast<std::uintptr_t>(this) + start);
      unsigned stalled_rounds = 0;
      while (i > kRoot) {
        const std::size_t parent = i / 2;
        h.nodes_[parent].lock.lock();
        h.nodes_[i].lock.lock();
        Node& p = h.nodes_[parent];
        Node& n = h.nodes_[i];
        if (p.tag == kAvailable && n.tag == tag_) {
          if (n.key < p.key) {
            swap_items(p, n);
            n.lock.unlock();
            p.lock.unlock();
            i = parent;
          } else {
            n.tag = kAvailable;  // settled
            n.lock.unlock();
            p.lock.unlock();
            return;
          }
        } else if (n.tag != tag_) {
          // Our item was swapped upward by a deleter (or consumed); chase it.
          n.lock.unlock();
          p.lock.unlock();
          CPQ_INJECT("hunt.sift_chase");
          i = parent;
        } else {
          // Parent is empty or in transit; only the parent item's owner can
          // resolve that, so release both locks and back off before
          // retrying. Without the backoff this loop re-acquires the parent
          // lock so quickly that it monopolizes it (every other preemption
          // point sits inside the critical section), and on a loaded or
          // single-core machine the owner chasing its in-transit item can
          // starve on that very lock — a livelock the fault injector
          // reproduces reliably.
          n.lock.unlock();
          p.lock.unlock();
          CPQ_INJECT("hunt.sift_retry");
          CPQ_COUNT(kCasRetry);
          if (++stalled_rounds < 16) {
            backoff.pause();
          } else {
            std::this_thread::yield();
          }
        }
      }
      // At the root: either our item rests here, or it was consumed by a
      // delete_min — both mean the insert is complete.
      Node& root = h.nodes_[kRoot];
      root.lock.lock();
      if (root.tag == tag_) root.tag = kAvailable;
      root.lock.unlock();
    }

    HuntHeap* heap_;
    const std::uint32_t tag_;
  };

  Handle get_handle(unsigned thread_id) { return Handle(*this, thread_id); }

  std::size_t unsafe_size() const { return size_; }
  std::size_t capacity() const { return capacity_; }

  // Heap-order check over occupied slots; quiescent use only.
  bool unsafe_is_valid_heap() const {
    for (std::size_t i = 2; i <= capacity_; ++i) {
      if (nodes_[i].tag == kEmpty) continue;
      if (nodes_[i / 2].tag == kEmpty) return false;
      if (nodes_[i].key < nodes_[i / 2].key) return false;
    }
    return true;
  }

 private:
  friend class Handle;

  static constexpr std::size_t kRoot = 1;
  static constexpr std::uint32_t kEmpty = 0;
  static constexpr std::uint32_t kAvailable = 1;
  static constexpr std::uint32_t kFirstThreadTag = 2;

  struct Node {
    Spinlock lock;
    std::uint32_t tag = kEmpty;
    Key key{};
    Value value{};
  };

  static void swap_items(Node& a, Node& b) noexcept {
    std::swap(a.key, b.key);
    std::swap(a.value, b.value);
    std::swap(a.tag, b.tag);
  }

  // The n-th occupied slot (1-based): fill each level left-to-right in
  // bit-reversed order so consecutive inserts take disjoint sift-up paths.
  std::size_t slot_for(std::size_t n) const noexcept {
    const unsigned level = std::bit_width(n) - 1;
    const std::size_t base = std::size_t{1} << level;
    const std::size_t offset = n - base;
    std::size_t reversed = 0;
    for (unsigned b = 0; b < level; ++b) {
      reversed |= ((offset >> b) & 1) << (level - 1 - b);
    }
    return base + reversed;
  }

  const std::size_t capacity_;
  CacheAligned<Spinlock> heap_lock_;
  std::size_t size_ = 0;
  std::unique_ptr<Node[]> nodes_;
};

static_assert(ConcurrentPriorityQueue<HuntHeap<bench_key, bench_value>>);

}  // namespace cpq
