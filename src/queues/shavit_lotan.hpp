// Shavit–Lotan-style skiplist priority queue — appendix-D extension
// ("slotan").
//
// Shavit and Lotan were the first to build priority queues on skiplists;
// the lock-free formulation (Herlihy & Shavit) deletes by (1) finding the
// first non-deleted node from the head, (2) logically deleting it by
// marking, and (3) *eagerly* unlinking it at every level before returning.
// Step (3) is the structural difference from Lindén–Jonsson, which defers
// physical removal until a whole prefix has accumulated: the eager unlink
// CASes the head's (hot) forward pointers on every single deletion, which
// is precisely the memory contention the Lindén design eliminates —
// benchmarks here reproduce the up-to-2x gap the Lindén paper reports.
//
// Insertion and node reclamation are shared with the other skiplist queues
// (queues/skiplist_common.hpp).
#pragma once

#include <cstdint>

#include "platform/rng.hpp"
#include "queues/queue_traits.hpp"
#include "queues/skiplist_common.hpp"

namespace cpq {

template <typename Key, typename Value>
class ShavitLotanQueue : private detail::SkiplistBase<Key, Value> {
  using Base = detail::SkiplistBase<Key, Value>;
  using Node = typename Base::Node;

 public:
  using key_type = Key;
  using value_type = Value;

  explicit ShavitLotanQueue(unsigned max_threads = 0, std::uint64_t seed = 1)
      : Base(seed) {
    (void)max_threads;
  }

  class Handle {
   public:
    Handle(ShavitLotanQueue& queue, unsigned thread_id)
        : queue_(&queue), rng_(thread_seed(queue.seed_, thread_id)) {}

    void insert(Key key, Value value) {
      queue_->insert_node(key, value, rng_);
    }

    bool delete_min(Key& key_out, Value& value_out) {
      ShavitLotanQueue& q = *queue_;
      Node* node =
          Base::unpack(q.head_->next[0].load(std::memory_order_acquire));
      while (node != q.tail_) {
        const std::uintptr_t old_word =
            node->next[0].fetch_or(1, std::memory_order_acq_rel);
        if (!Base::word_marked(old_word)) {
          key_out = node->key;
          value_out = node->value;
          // Eager physical removal: a search for the claimed node snips it
          // (and any other marked node on the way) out of every level.
          q.search(node->key, node, nullptr, nullptr);
          q.push_retired(node);
          return true;
        }
        node = Base::unpack(old_word);
      }
      return false;
    }

   private:
    ShavitLotanQueue* queue_;
    Xoroshiro128 rng_;
  };

  Handle get_handle(unsigned thread_id) { return Handle(*this, thread_id); }

  using Base::unsafe_purge;
  using Base::unsafe_size;

 private:
  friend class Handle;
};

static_assert(ConcurrentPriorityQueue<ShavitLotanQueue<bench_key, bench_value>>);

}  // namespace cpq
