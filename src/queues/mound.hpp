// Mound priority queue (Liu & Spear, ICPP 2012) — appendix-D extension
// ("mound", lock-based variant).
//
// A mound is a binary tree of sorted lists with the heap invariant on the
// list heads: val(node) <= val(child), where val is the head key (infinity
// for an empty list). The two signature operations:
//
//   * insert(k): choose a random leaf and binary-search the root-to-leaf
//     path for the highest node with val >= k whose parent has val <= k;
//     push k onto that node's list head. Expected O(log log n) val probes
//     per attempt on a tree of depth log n — inserts never restructure the
//     tree, which is what makes mounds attractive for concurrency.
//   * delete_min: pop the root's list head, then "moundify": while the
//     node's val exceeds the smaller child's, swap the two nodes' entire
//     lists and recurse into that child.
//
// Concurrency: one spinlock per tree node; moundify locks parent before
// children (ascending index order, the same global lock order as HuntHeap),
// inserts lock the (parent, node) pair and revalidate before pushing.
// List cells are reclaimed at destruction/purge only, so racy unlocked
// val() probes during the binary search are always memory-safe (stale reads
// are caught by the locked revalidation). The tree grows a level at a time
// under a dedicated lock.
//
// The appendix notes the lock-free variant needs DCAS, "not available
// natively on most current processors" — hence, like Liu & Spear's own
// evaluation of that variant, we implement the lock-based mound.
#pragma once

#include <atomic>
#include <bit>
#include <cassert>
#include <cstdint>
#include <limits>
#include <memory>
#include <mutex>
#include <vector>

#include "platform/cache.hpp"
#include "platform/rng.hpp"
#include "platform/spinlock.hpp"
#include "queues/queue_traits.hpp"

namespace cpq {

template <typename Key, typename Value>
class Mound {
 public:
  using key_type = Key;
  using value_type = Value;

  static constexpr unsigned kMaxDepth = 28;  // up to ~2^28 tree nodes

  explicit Mound(unsigned max_threads = 0, std::uint64_t seed = 1,
                 unsigned initial_depth = 4)
      : seed_(seed) {
    (void)max_threads;
    levels_.resize(kMaxDepth + 1);
    for (unsigned level = 0; level <= initial_depth; ++level) {
      levels_[level] = std::make_unique<TreeNode[]>(std::size_t{1} << level);
    }
    depth_.store(initial_depth, std::memory_order_release);
  }

  ~Mound() {
    const unsigned depth = depth_.load(std::memory_order_acquire);
    for (unsigned level = 0; level <= depth; ++level) {
      const std::size_t width = std::size_t{1} << level;
      for (std::size_t i = 0; i < width; ++i) {
        ListNode* cell = levels_[level][i].head.load(std::memory_order_relaxed);
        while (cell) {
          ListNode* next = cell->next;
          delete cell;
          cell = next;
        }
      }
    }
    ListNode* retired = retired_.load(std::memory_order_relaxed);
    while (retired) {
      ListNode* next = retired->next;
      delete retired;
      retired = next;
    }
  }

  Mound(const Mound&) = delete;
  Mound& operator=(const Mound&) = delete;

  class Handle {
   public:
    Handle(Mound& mound, unsigned thread_id)
        : mound_(&mound), rng_(thread_seed(mound.seed_, thread_id)) {}

    void insert(Key key, Value value) {
      Mound& m = *mound_;
      for (;;) {
        const unsigned depth = m.depth_.load(std::memory_order_acquire);
        // Random leaf — its index bits encode the root-to-leaf path.
        const std::uint64_t leaf =
            (std::uint64_t{1} << depth) + m_rng_below(std::uint64_t{1} << depth);
        // Binary search the path for the highest node with val >= key.
        // Path node at path-depth d is (leaf >> (depth - d)).
        unsigned lo = 0;
        unsigned hi = depth;
        unsigned candidate_depth = depth + 1;  // "not found"
        while (lo <= hi) {
          const unsigned mid = lo + (hi - lo) / 2;
          const std::uint64_t index = leaf >> (depth - mid);
          if (!(m.val(index) < key)) {
            candidate_depth = mid;
            if (mid == 0) break;
            hi = mid - 1;
          } else {
            if (mid == hi) break;
            lo = mid + 1;
          }
        }
        if (candidate_depth > depth) {
          // Even the leaf's val is < key: the key belongs below the current
          // leaves; grow the tree and retry.
          m.grow(depth);
          continue;
        }
        const std::uint64_t index = leaf >> (depth - candidate_depth);
        if (m.try_push(index, key, value)) return;
        // Validation failed (a race changed the vals); retry with a fresh
        // random path.
      }
    }

    bool delete_min(Key& key_out, Value& value_out) {
      Mound& m = *mound_;
      TreeNode& root = m.node(1);
      root.lock.lock();
      ListNode* popped = root.head.load(std::memory_order_relaxed);
      if (!popped) {
        // Root empty means the whole mound is empty (heap invariant).
        root.lock.unlock();
        return false;
      }
      root.head.store(popped->next, std::memory_order_release);
      key_out = popped->key;
      value_out = popped->value;
      m.retire(popped);
      m.moundify(1);  // releases the root lock
      return true;
    }

   private:
    std::uint64_t m_rng_below(std::uint64_t bound) {
      return rng_.next_below(bound);
    }

    Mound* mound_;
    Xoroshiro128 rng_;
  };

  Handle get_handle(unsigned thread_id) { return Handle(*this, thread_id); }

  // Quiescent-only: total stored items.
  std::size_t unsafe_size() const {
    std::size_t total = 0;
    const unsigned depth = depth_.load(std::memory_order_acquire);
    for (unsigned level = 0; level <= depth; ++level) {
      const std::size_t width = std::size_t{1} << level;
      for (std::size_t i = 0; i < width; ++i) {
        for (ListNode* cell =
                 levels_[level][i].head.load(std::memory_order_relaxed);
             cell; cell = cell->next) {
          ++total;
        }
      }
    }
    return total;
  }

  // Quiescent-only: heap invariant on heads + sortedness of each list.
  bool unsafe_invariants_hold() const {
    const unsigned depth = depth_.load(std::memory_order_acquire);
    const std::uint64_t max_index = (std::uint64_t{2} << depth) - 1;
    for (std::uint64_t i = 1; i <= max_index; ++i) {
      const TreeNode& n = const_cast<Mound*>(this)->node(i);
      ListNode* nh = n.head.load(std::memory_order_relaxed);
      for (ListNode* cell = nh; cell && cell->next; cell = cell->next) {
        if (cell->next->key < cell->key) return false;
      }
      if (i > 1) {
        const TreeNode& parent = const_cast<Mound*>(this)->node(i / 2);
        ListNode* ph = parent.head.load(std::memory_order_relaxed);
        if (nh && !ph) return false;
        if (nh && ph && nh->key < ph->key) return false;
      }
    }
    return true;
  }

 private:
  friend class Handle;

  struct ListNode {
    Key key;
    Value value;
    ListNode* next;
  };

  struct alignas(kCacheLineSize) TreeNode {
    Spinlock lock;
    // Atomic because val() probes it without the lock (the probe result is
    // revalidated under locks, but the load itself must be race-free).
    std::atomic<ListNode*> head{nullptr};
  };

  static constexpr Key kInfinity = std::numeric_limits<Key>::max();

  TreeNode& node(std::uint64_t index) {
    const unsigned level = std::bit_width(index) - 1;
    return levels_[level][index - (std::uint64_t{1} << level)];
  }

  // Racy probe of a node's head key (infinity when empty). Memory-safe
  // because list cells are only reclaimed at quiescence; correctness is
  // ensured by locked revalidation in try_push.
  Key val(std::uint64_t index) {
    const ListNode* head = node(index).head.load(std::memory_order_acquire);
    // A racing pop can retire the cell right after this load, but cells are
    // only reclaimed at quiescence, so reading a stale key is safe.
    return head ? head->key : kInfinity;
  }

  // Lock parent and node (in index order), revalidate the insertion
  // condition val(parent) <= key <= val(node), push on success.
  bool try_push(std::uint64_t index, Key key, Value value) {
    TreeNode* parent = index > 1 ? &node(index / 2) : nullptr;
    TreeNode& target = node(index);
    if (parent) parent->lock.lock();
    target.lock.lock();
    ListNode* parent_head =
        parent ? parent->head.load(std::memory_order_relaxed) : nullptr;
    ListNode* target_head = target.head.load(std::memory_order_relaxed);
    const Key parent_val =
        parent ? (parent_head ? parent_head->key : kInfinity) : Key{};
    const Key target_val = target_head ? target_head->key : kInfinity;
    const bool parent_ok = !parent || !(key < parent_val);
    const bool target_ok = !(target_val < key);
    if (parent_ok && target_ok) {
      target.head.store(new ListNode{key, value, target_head},
                        std::memory_order_release);
      target.lock.unlock();
      if (parent) parent->lock.unlock();
      return true;
    }
    target.lock.unlock();
    if (parent) parent->lock.unlock();
    return false;
  }

  // Restore the heap invariant below `index`; caller holds its lock, which
  // is released before returning. Locks travel strictly downward.
  void moundify(std::uint64_t index) {
    for (;;) {
      const unsigned depth = depth_.load(std::memory_order_acquire);
      const std::uint64_t left = 2 * index;
      if ((left >> (depth + 1)) != 0) {
        // `index` is a leaf at the current depth.
        node(index).lock.unlock();
        return;
      }
      TreeNode& n = node(index);
      TreeNode& l = node(left);
      TreeNode& r = node(left + 1);
      l.lock.lock();
      r.lock.lock();
      ListNode* nh = n.head.load(std::memory_order_relaxed);
      ListNode* lh = l.head.load(std::memory_order_relaxed);
      ListNode* rh = r.head.load(std::memory_order_relaxed);
      const Key nv = nh ? nh->key : kInfinity;
      const Key lv = lh ? lh->key : kInfinity;
      const Key rv = rh ? rh->key : kInfinity;
      TreeNode* smallest_child = nullptr;
      std::uint64_t smallest_index = 0;
      if (lv < nv || rv < nv) {
        if (rv < lv) {
          smallest_child = &r;
          smallest_index = left + 1;
          l.lock.unlock();
        } else {
          smallest_child = &l;
          smallest_index = left;
          r.lock.unlock();
        }
      }
      if (!smallest_child) {
        r.lock.unlock();
        l.lock.unlock();
        n.lock.unlock();
        return;
      }
      // Swap the two lists (both locks held; relaxed suffices within, the
      // unlocks publish).
      ListNode* mine = n.head.load(std::memory_order_relaxed);
      n.head.store(smallest_child->head.load(std::memory_order_relaxed),
                   std::memory_order_release);
      smallest_child->head.store(mine, std::memory_order_release);
      n.lock.unlock();
      index = smallest_index;  // continue holding smallest_child's lock
    }
  }

  // Add one tree level. Threads that lost the race simply observe the new
  // depth.
  void grow(unsigned observed_depth) {
    std::lock_guard<Spinlock> lock(grow_lock_.value);
    const unsigned depth = depth_.load(std::memory_order_acquire);
    if (depth != observed_depth) return;  // someone already grew
    if (depth + 1 > kMaxDepth) {
      assert(!"Mound: maximum depth exceeded");
      return;
    }
    levels_[depth + 1] =
        std::make_unique<TreeNode[]>(std::size_t{1} << (depth + 1));
    depth_.store(depth + 1, std::memory_order_release);
  }

  void retire(ListNode* cell) {
    ListNode* head = retired_.load(std::memory_order_relaxed);
    do {
      cell->next = head;
    } while (!retired_.compare_exchange_weak(head, cell,
                                             std::memory_order_release,
                                             std::memory_order_relaxed));
  }

  const std::uint64_t seed_;
  std::vector<std::unique_ptr<TreeNode[]>> levels_;
  std::atomic<unsigned> depth_{0};
  CacheAligned<Spinlock> grow_lock_;
  std::atomic<ListNode*> retired_{nullptr};
};

static_assert(ConcurrentPriorityQueue<Mound<bench_key, bench_value>>);

}  // namespace cpq
