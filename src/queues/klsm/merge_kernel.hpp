// Merge kernels for the k-LSM block cascade.
//
// Merging two sorted blocks is the k-LSM's dominant structural cost: every
// insert that collides with an equal-capacity block walks the cascade, and
// each cascade step is a two-way merge of sorted (key, value) runs. The
// baseline claim-and-compare loop in claim_merge interleaved slot claiming
// with comparison, so every iteration carried an unpredictable branch
// (which block wins?) plus atomic traffic. The restructured path drains the
// claimable slots first and then merges plain arrays with one of the
// kernels below.
//
// Three implementations, one contract (stable two-finger merge: ties take
// from `a` first, matching the original claim_merge tie-break):
//
//   merge_sorted_scalar     – textbook loop; the oracle the tests fuzz
//                             the fast kernels against.
//   merge_sorted_branchfree – replaces the take-a/take-b branch with a
//                             pointer select + boolean index bump, which
//                             GCC/Clang compile to cmov; unrolled x4 so the
//                             selects pipeline instead of serializing on a
//                             mispredicted branch per element.
//   merge_sorted_simd       – SSE4.2 variant for the benchmark-shaped
//                             uint64_t/uint64_t items: a 16-byte pair is one
//                             vector, the winner is picked with a 64-bit
//                             compare + blend, and the cursor advance is a
//                             movemask bit. Compiled with a per-function
//                             target attribute (the build has no -march
//                             flags) and dispatched behind a cached
//                             __builtin_cpu_supports check.
//
// merge_sorted() picks the best kernel for the instantiated item type.
#pragma once

#include <cstddef>
#include <cstdint>
#include <type_traits>
#include <utility>

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define CPQ_MERGE_HAVE_SSE42_TARGET 1
#include <immintrin.h>
#else
#define CPQ_MERGE_HAVE_SSE42_TARGET 0
#endif

namespace cpq::klsm_detail {

// Reference kernel and correctness oracle. Ties prefer `a` (stability
// across the cascade: older block first, as in the original claim_merge).
template <typename Item>
inline std::size_t merge_sorted_scalar(const Item* a, std::size_t na,
                                       const Item* b, std::size_t nb,
                                       Item* out) {
  std::size_t i = 0, j = 0, k = 0;
  while (i < na && j < nb) {
    if (b[j].first < a[i].first) {
      out[k++] = b[j++];
    } else {
      out[k++] = a[i++];
    }
  }
  while (i < na) out[k++] = a[i++];
  while (j < nb) out[k++] = b[j++];
  return k;
}

// Branch-free core step: load BOTH candidate elements unconditionally so
// the loads issue before the comparison resolves, then pick the winner with
// per-member register selects (cmov) and advance exactly one cursor via
// boolean arithmetic. No data-dependent branch, so throughput does not
// collapse on key interleavings the branch predictor has never seen — the
// k-LSM cascade merges a fresh pattern every time. Two codegen traps this
// shape avoids: a ternary on the whole 16-byte pair, which GCC lowers back
// into a branch, and a ternary on the *pointers*, whose cmov chains the
// winning load behind the compare and serializes the loop on that latency.
template <typename Item>
inline std::size_t merge_sorted_branchfree(const Item* a, std::size_t na,
                                           const Item* b, std::size_t nb,
                                           Item* out) {
  std::size_t i = 0, j = 0, k = 0;
  // Unrolled x4 while both runs have at least 4 elements left: each step
  // consumes exactly one element total, so 4 steps need 4 per side at most.
  while (na - i >= 4 && nb - j >= 4) {
#define CPQ_MERGE_STEP()                              \
  do {                                                \
    const auto ka = a[i].first;                       \
    const auto va = a[i].second;                      \
    const auto kb = b[j].first;                       \
    const auto vb = b[j].second;                      \
    const bool take_b = kb < ka;                      \
    out[k].first = take_b ? kb : ka;                  \
    out[k].second = take_b ? vb : va;                 \
    ++k;                                              \
    i += !take_b;                                     \
    j += take_b;                                      \
  } while (0)
    CPQ_MERGE_STEP();
    CPQ_MERGE_STEP();
    CPQ_MERGE_STEP();
    CPQ_MERGE_STEP();
  }
  while (i < na && j < nb) {
    CPQ_MERGE_STEP();
  }
#undef CPQ_MERGE_STEP
  while (i < na) out[k++] = a[i++];
  while (j < nb) out[k++] = b[j++];
  return k;
}

#if CPQ_MERGE_HAVE_SSE42_TARGET

using U64Item = std::pair<std::uint64_t, std::uint64_t>;
static_assert(sizeof(U64Item) == 16,
              "SIMD kernel assumes a 16-byte (key, value) pair");

// True once at process start if the CPU has SSE4.2 (for PCMPGTQ). The
// build targets baseline x86-64, so this must be a runtime decision.
inline bool merge_simd_available() noexcept {
  static const bool available = __builtin_cpu_supports("sse4.2");
  return available;
}

// SSE4.2 merge for uint64_t/uint64_t items (bench_key/bench_value — the
// shape every roster queue instantiates). One item is one XMM register;
// the signed PCMPGTQ becomes an unsigned compare by flipping the key sign
// bits first; the compare result for lane 0 (the key) is broadcast over
// the whole register so a single blend moves the winning pair.
__attribute__((target("sse4.2"))) inline std::size_t merge_sorted_simd(
    const U64Item* a, std::size_t na, const U64Item* b, std::size_t nb,
    U64Item* out) {
  std::size_t i = 0, j = 0, k = 0;
  const __m128i sign = _mm_set1_epi64x(static_cast<long long>(0x8000000000000000ULL));
  while (i < na && j < nb) {
    const __m128i va =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(&a[i]));
    const __m128i vb =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(&b[j]));
    // take_b  <=>  b.key < a.key  <=>  signed (a.key^sign) > (b.key^sign).
    const __m128i gt =
        _mm_cmpgt_epi64(_mm_xor_si128(va, sign), _mm_xor_si128(vb, sign));
    const __m128i take_b = _mm_shuffle_epi32(gt, _MM_SHUFFLE(1, 0, 1, 0));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(&out[k]),
                     _mm_blendv_epi8(va, vb, take_b));
    const std::size_t adv_b =
        static_cast<std::size_t>(_mm_movemask_epi8(take_b) & 1);
    ++k;
    i += 1 - adv_b;
    j += adv_b;
  }
  while (i < na) out[k++] = a[i++];
  while (j < nb) out[k++] = b[j++];
  return k;
}

#endif  // CPQ_MERGE_HAVE_SSE42_TARGET

// Dispatcher. The branch-free kernel is the default: on varied random
// interleavings (BM_MergeKernel's rotating-input mode — the cascade's real
// regime) it sustains ~225M items/s against ~146M for the branchy loop and
// ~153M for the SSE4.2 variant, whose one-element-per-iteration blend
// serializes on the same compare latency the cmov does while adding shuffle
// and movemask work. Define CPQ_MERGE_PREFER_SIMD to dispatch uint64 pairs
// to the vector kernel instead (behind the runtime feature check) on
// microarchitectures where it measures faster. All kernels produce
// byte-identical output.
template <typename Item>
inline std::size_t merge_sorted(const Item* a, std::size_t na, const Item* b,
                                std::size_t nb, Item* out) {
#if CPQ_MERGE_HAVE_SSE42_TARGET && defined(CPQ_MERGE_PREFER_SIMD)
  if constexpr (std::is_same_v<Item, U64Item>) {
    if (merge_simd_available()) {
      return merge_sorted_simd(a, na, b, nb, out);
    }
  }
#endif
  return merge_sorted_branchfree(a, na, b, nb, out);
}

}  // namespace cpq::klsm_detail
