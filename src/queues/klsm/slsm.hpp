// Shared LSM (SLSM): the global, relaxed component of the k-LSM.
//
// One global BlockArray is published through an atomic pointer. delete_min
// picks a uniformly random live slot from the *pivot range* — per block, the
// slots whose keys are <= a threshold X chosen such that the number of slots
// with key <= X was at most k+1 at computation time. Because membership is
// defined by a key threshold and items only ever get claimed (never added to
// a published array), a pivot entry can never become unsafe; it is refreshed
// when the range drains (DESIGN.md §4). Deletions therefore skip at most k
// items, the SLSM half of the k-LSM's kP bound.
//
// Structural inserts (batches arriving from DLSM overflows) are serialized
// by a spinlock. The original k-LSM publishes block arrays lock-free from a
// versioned block pool; with our claim-move semantics a failed optimistic
// publication cannot be rolled back without losing items, so we trade
// lock-freedom of the (already batched, amortized-rare) insert path for a
// much simpler proof. delete_min remains lock-free. The benchmark shape is
// preserved: SLSM inserts are the k-LSM's slow path either way, and the
// paper's split-workload collapse (Fig. 2) reproduces (EXPERIMENTS.md).
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <utility>
#include <vector>

#include "mm/epoch.hpp"
#include "platform/cache.hpp"
#include "platform/rng.hpp"
#include "platform/spinlock.hpp"
#include "queues/klsm/block.hpp"
#include "validation/fault_injection.hpp"

namespace cpq::klsm_detail {

template <typename Key, typename Value>
class Slsm {
 public:
  using BlockT = Block<Key, Value>;
  using ArrayT = BlockArray<Key, Value>;

  explicit Slsm(std::uint64_t relaxation_k) : k_(relaxation_k) {}

  ~Slsm() {
    ArrayT* array = published_.load(std::memory_order_relaxed);
    if (array) ArrayT::destroy(array);
  }

  Slsm(const Slsm&) = delete;
  Slsm& operator=(const Slsm&) = delete;

  std::uint64_t relaxation() const noexcept { return k_; }

  // Single-item structural insert: builds the one-slot block straight from
  // the stack — no one-element std::vector heap round-trip per op.
  void insert(Key key, Value value) {
    const std::pair<Key, Value> one[1] = {{key, value}};
    publish_fresh(BlockT::create(one, 1));
  }

  // Insert a sorted batch as one block, merge the cascade, recompute pivots
  // and publish. Serialized against other inserters.
  void insert_batch(std::vector<std::pair<Key, Value>>&& sorted_items) {
    if (sorted_items.empty()) return;
    publish_fresh(BlockT::create(sorted_items.data(),
                                 static_cast<std::uint32_t>(sorted_items.size())));
  }
  // Carry the live blocks of the published array plus `fresh` into a new
  // array, merge, recompute pivots, publish, retire the old snapshot.
  // Shared by insert() and insert_batch(); serialized by the insert lock.
  void publish_fresh(BlockT* fresh) {
    std::lock_guard<Spinlock> lock(insert_lock_.value);
    ArrayT* old_array = published_.load(std::memory_order_relaxed);
    ArrayT* next = ArrayT::create();
    if (old_array) {
      for (std::uint32_t i = 0; i < old_array->count; ++i) {
        BlockT* block = old_array->blocks[i];
        if (block->first_live() >= block->slot_count()) continue;
        block->ref();
        next->blocks[next->count++] = block;
      }
    }
    next->blocks[next->count++] = fresh;
    merge_cascade(*next);
    compute_pivots(*next, k_);
    // Fault injection: delay publication — deleters keep hammering the old
    // array while the replacement (holding the same blocks) is in flight.
    CPQ_INJECT("slsm.publish");
    published_.store(next, std::memory_order_release);
    if (old_array) {
      mm::EbrDomain::Guard guard;
      mm::EbrDomain::global().retire(static_cast<void*>(old_array),
                                     &ArrayT::ebr_deleter);
    }
  }

  // Claim a uniformly random item from the pivot range. Lock-free.
  // Returns false only when the SLSM appears empty.
  bool delete_min(Key& key_out, Value& value_out, Xoroshiro128& rng) {
    mm::EbrDomain::Guard guard;
    for (unsigned round = 0; round < kMaxRounds; ++round) {
      ArrayT* array = published_.load(std::memory_order_acquire);
      if (!array || array->count == 0) return false;
      // Fault injection: hold the snapshot before claiming so a concurrent
      // insert_batch can retire the array under our feet (EBR must protect).
      CPQ_INJECT("slsm.delete_min");
      if (try_claim_from_pivot(*array, key_out, value_out, rng)) return true;
      // Pivot range drained: recompute from the current heads. If even the
      // refreshed range is empty, the array holds no live items.
      if (!refresh_pivots(*array, k_)) {
        // Re-check that the array was not replaced underneath us before
        // declaring emptiness.
        if (published_.load(std::memory_order_acquire) == array) return false;
      }
    }
    return false;
  }

  // Peek the smallest live key (strict front, not a random candidate).
  // Racy by design; used by tests and the standalone SLSM's diagnostics.
  bool peek_min(std::uint32_t& block_out, std::uint32_t& slot_out,
                Key& key_out) const {
    const ArrayT* array = published_.load(std::memory_order_acquire);
    if (!array) return false;
    return array->find_min(block_out, slot_out, key_out);
  }

  // A uniformly random pivot-range candidate for the k-LSM's "peek both,
  // take the smaller" deletion (paper §B): the k-LSM compares its local
  // minimum against this *candidate* (one of the k+1 smallest SLSM items),
  // which is what yields the composed kP bound. The caller must hold an EBR
  // guard across peek and claim; the candidate pins (array, block, slot).
  struct Candidate {
    ArrayT* array = nullptr;
    std::uint32_t block = 0;
    std::uint32_t slot = 0;
    Key key{};
  };

  bool peek_random_candidate(Candidate& out, Xoroshiro128& rng) {
    for (unsigned round = 0; round < kMaxRounds; ++round) {
      ArrayT* array = published_.load(std::memory_order_acquire);
      if (!array || array->count == 0) return false;
      std::uint64_t total = 0;
      std::uint32_t starts[ArrayT::kMaxBlocks];
      std::uint32_t ends[ArrayT::kMaxBlocks];
      for (std::uint32_t i = 0; i < array->count; ++i) {
        const std::uint32_t first = array->blocks[i]->first_live();
        const std::uint32_t end =
            array->pivot_end[i].load(std::memory_order_acquire);
        starts[i] = first;
        ends[i] = end > first ? end : first;
        total += ends[i] - starts[i];
      }
      if (total == 0) {
        if (!refresh_pivots(*array, k_) &&
            published_.load(std::memory_order_acquire) == array) {
          return false;
        }
        continue;
      }
      std::uint64_t pick = rng.next_below(total);
      for (std::uint32_t i = 0; i < array->count; ++i) {
        const std::uint64_t span = ends[i] - starts[i];
        if (pick >= span) {
          pick -= span;
          continue;
        }
        // Scan forward from the picked slot, wrapping to the range start
        // (starts[i] is the first *live* slot, so a wrap finds a candidate
        // unless a racing deleter claimed the whole range meanwhile).
        BlockT& block = *array->blocks[i];
        const std::uint32_t from =
            starts[i] + static_cast<std::uint32_t>(pick);
        for (std::uint32_t probe = 0; probe < ends[i] - starts[i]; ++probe) {
          std::uint32_t s = from + probe;
          if (s >= ends[i]) s -= ends[i] - starts[i];
          if (!block.slot(s).taken.load(std::memory_order_acquire)) {
            out.array = array;
            out.block = i;
            out.slot = s;
            out.key = block.slot(s).key;
            return true;
          }
        }
        break;  // whole range drained; re-snapshot
      }
    }
    return false;
  }

  bool claim_candidate(const Candidate& candidate, Key& key_out,
                       Value& value_out) {
    BlockT& block = *candidate.array->blocks[candidate.block];
    if (!block.claim(candidate.slot)) return false;
    key_out = block.slot(candidate.slot).key;
    value_out = block.slot(candidate.slot).value;
    return true;
  }

  std::uint32_t live_estimate() const {
    const ArrayT* array = published_.load(std::memory_order_acquire);
    return array ? array->live_estimate() : 0;
  }

  // Current published array (EBR guard required). Exposed for the k-LSM's
  // combined deletion and for whitebox tests.
  ArrayT* current_array() const {
    return published_.load(std::memory_order_acquire);
  }

 private:
  static constexpr unsigned kMaxRounds = 16;
  static constexpr unsigned kClaimProbes = 8;

  static void merge_cascade(ArrayT& array) {
    // Reused merge scratch: the cascade runs under the insert lock but the
    // buffer is thread-local, so capacity survives across cascades and the
    // steady-state merge allocates only the pooled result block.
    thread_local std::vector<std::pair<Key, Value>> merged_items;
    while (array.count >= 2) {
      BlockT* last = array.blocks[array.count - 1];
      BlockT* prev = array.blocks[array.count - 2];
      if (prev->capacity() > last->capacity()) break;
      claim_merge_into(*prev, *last, merged_items);
      prev->unref();
      last->unref();
      array.count -= 2;
      if (!merged_items.empty()) {
        array.blocks[array.count++] = BlockT::create(
            merged_items.data(),
            static_cast<std::uint32_t>(merged_items.size()));
      }
    }
  }

  // Locate the (up to) k+1 smallest *live* items by a multi-way merge over
  // the blocks' live cursors and set each block's pivot_end just past the
  // last live item it contributed. The resulting ranges contain exactly the
  // k+1 smallest live items (plus claimed holes, which deletion probes skip
  // harmlessly), so the "one of the k+1 smallest" guarantee is exact even
  // with heavy key duplication, and the range always exposes a live
  // candidate while any exists. Returns false iff the array is drained.
  //
  // Claims racing with the computation only remove items, which can only
  // shrink the set the range denotes — a stale pivot therefore never
  // violates the bound (DESIGN.md §4).
  static bool compute_pivots(ArrayT& array, std::uint64_t k) {
    std::uint32_t cursor[ArrayT::kMaxBlocks];
    std::uint32_t end[ArrayT::kMaxBlocks];
    for (std::uint32_t i = 0; i < array.count; ++i) {
      cursor[i] = array.blocks[i]->first_live();
      end[i] = cursor[i];
    }
    bool any = false;
    for (std::uint64_t picked = 0; picked <= k; ++picked) {
      // Select the block whose cursor holds the smallest live key.
      std::uint32_t best_block = ArrayT::kMaxBlocks;
      Key best_key{};
      for (std::uint32_t i = 0; i < array.count; ++i) {
        BlockT& block = *array.blocks[i];
        // Advance this block's cursor over claimed holes.
        std::uint32_t c = cursor[i];
        while (c < block.slot_count() &&
               block.slot(c).taken.load(std::memory_order_acquire)) {
          ++c;
        }
        cursor[i] = c;
        if (c >= block.slot_count()) continue;
        const Key key = block.slot(c).key;
        if (best_block == ArrayT::kMaxBlocks || key < best_key) {
          best_block = i;
          best_key = key;
        }
      }
      if (best_block == ArrayT::kMaxBlocks) break;  // fewer than k+1 live
      end[best_block] = cursor[best_block] + 1;
      ++cursor[best_block];
      any = true;
    }
    for (std::uint32_t i = 0; i < array.count; ++i) {
      array.pivot_end[i].store(end[i], std::memory_order_release);
    }
    return any;
  }

  static bool refresh_pivots(ArrayT& array, std::uint64_t k) {
    return compute_pivots(array, k);
  }

  bool try_claim_from_pivot(ArrayT& array, Key& key_out, Value& value_out,
                            Xoroshiro128& rng) {
    for (unsigned probe = 0; probe < kClaimProbes; ++probe) {
      // Total candidate count across blocks (racy snapshot).
      std::uint64_t total = 0;
      std::uint32_t starts[ArrayT::kMaxBlocks];
      std::uint32_t ends[ArrayT::kMaxBlocks];
      for (std::uint32_t i = 0; i < array.count; ++i) {
        const std::uint32_t first = array.blocks[i]->first_live();
        const std::uint32_t end =
            array.pivot_end[i].load(std::memory_order_acquire);
        starts[i] = first;
        ends[i] = end > first ? end : first;
        total += ends[i] - starts[i];
      }
      if (total == 0) return false;
      std::uint64_t pick = rng.next_below(total);
      for (std::uint32_t i = 0; i < array.count; ++i) {
        const std::uint64_t span = ends[i] - starts[i];
        if (pick >= span) {
          pick -= span;
          continue;
        }
        BlockT& block = *array.blocks[i];
        // Probe within the candidate range from the picked slot, wrapping
        // to the range start (which first_live() guarantees was live).
        const std::uint32_t from =
            starts[i] + static_cast<std::uint32_t>(pick);
        for (std::uint32_t probe = 0; probe < ends[i] - starts[i]; ++probe) {
          std::uint32_t s = from + probe;
          if (s >= ends[i]) s -= ends[i] - starts[i];
          if (block.claim(s)) {
            key_out = block.slot(s).key;
            value_out = block.slot(s).value;
            return true;
          }
        }
        break;  // whole range drained; re-snapshot
      }
    }
    return false;
  }

  const std::uint64_t k_;
  CacheAligned<Spinlock> insert_lock_;
  std::atomic<ArrayT*> published_{nullptr};
};

}  // namespace cpq::klsm_detail
