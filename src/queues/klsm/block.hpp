// k-LSM building blocks: sorted item blocks and versioned block arrays.
//
// A Block is a write-once sorted array of (key, value) slots, each with an
// atomic `taken` flag. After construction only the flags mutate, so readers
// may dereference keys/values of any slot at any time; ownership of an item
// is transferred by exchange(true) on its flag — exactly one claimant wins.
// Items *move* between blocks by being claimed out of the source block and
// re-materialized (still exactly once) in the destination block, which is
// how merges, DLSM->SLSM overflow batches, and spy() stealing all avoid
// duplicate delivery without the original k-LSM's pooled item-version tags.
//
// A BlockArray is an immutable snapshot of a LSM's block list (capacities
// strictly decreasing), published through a single atomic pointer and
// reclaimed via EBR. Blocks are shared between array versions (and between a
// victim's array and a spy) through an intrusive refcount: each array owns
// one reference per contained block, and the EBR deleter of a retired array
// drops them.
//
// SLSM arrays additionally carry the pivot range: per block, an index
// `pivot_end[i]` such that every slot below it has a key <= a threshold X
// with count(keys <= X) <= k+1 at computation time. Because candidate
// membership is defined by a key threshold and items only ever leave,
// a published pivot entry never becomes unsafe (DESIGN.md §4).
#pragma once

#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <utility>
#include <vector>

#include "mm/arena.hpp"
#include "obs/metrics.hpp"
#include "platform/cache.hpp"
#include "queues/klsm/merge_kernel.hpp"
#include "validation/fault_injection.hpp"

namespace cpq::klsm_detail {

template <typename Key, typename Value>
class Block {
 public:
  struct Slot {
    Key key;
    Value value;
    std::atomic<bool> taken;
  };

  // Build a block from already-sorted items. refs starts at 1: the caller
  // places the block into exactly one array (or drops it with unref()).
  //
  // Header and slot array live in ONE pooled chunk (mm::pool_alloc), so the
  // merge cascade's block churn is a magazine pop/push instead of two
  // malloc/free round-trips per block version.
  static Block* create(const std::pair<Key, Value>* sorted_items,
                       std::uint32_t n) {
    void* raw = mm::pool_alloc(storage_bytes(n));
    return new (raw) Block(sorted_items, n);
  }

  static Block* create(std::vector<std::pair<Key, Value>>&& sorted_items) {
    return create(sorted_items.data(),
                  static_cast<std::uint32_t>(sorted_items.size()));
  }

  void ref() noexcept { refs_.fetch_add(1, std::memory_order_relaxed); }

  void unref() noexcept {
    if (refs_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      const std::size_t bytes = storage_bytes(count_);
      this->~Block();
      mm::pool_free(this, bytes);
    }
  }

  std::uint32_t slot_count() const noexcept { return count_; }
  std::uint32_t capacity() const noexcept { return capacity_; }

  const Slot& slot(std::uint32_t i) const noexcept {
    assert(i < count_);
    return slots_[i];
  }

  // First slot index not yet claimed, starting from the head hint; advances
  // the hint (monotonically in effect — the hint may transiently regress
  // under races, which only costs a few extra flag reads).
  std::uint32_t first_live() const noexcept {
    std::uint32_t i = head_hint_.load(std::memory_order_relaxed);
    while (i < count_ && slots_[i].taken.load(std::memory_order_acquire)) ++i;
    if (i != head_hint_.load(std::memory_order_relaxed)) {
      head_hint_.store(i, std::memory_order_relaxed);
    }
    return i;
  }

  // Upper bound on live items (counts claimed-but-not-yet-skipped slots).
  std::uint32_t live_estimate() const noexcept {
    const std::uint32_t head = head_hint_.load(std::memory_order_relaxed);
    return count_ - (head < count_ ? head : count_);
  }

  // Claim slot i. True iff this caller took ownership of the item.
  bool claim(std::uint32_t i) noexcept {
    assert(i < count_);
    // Fault injection: widen the peek-to-claim window, the seam where a
    // racing claimant must lose exactly one of the two exchanges.
    CPQ_INJECT("block.claim");
    const bool won = !slots_[i].taken.exchange(true, std::memory_order_acq_rel);
    if (!won) CPQ_COUNT(kCasRetry);
    return won;
  }

  // Index of the first slot with key > threshold (binary search over all
  // slots; claimed slots only make the result an overestimate of the live
  // candidate count, which is the safe direction for pivots).
  std::uint32_t upper_bound(Key threshold) const noexcept {
    std::uint32_t lo = 0;
    std::uint32_t hi = count_;
    while (lo < hi) {
      const std::uint32_t mid = lo + (hi - lo) / 2;
      if (threshold < slots_[mid].key) {
        hi = mid;
      } else {
        lo = mid + 1;
      }
    }
    return lo;
  }

  // Claim-move every still-live item into `out`, preserving sort order.
  void drain_into(std::vector<std::pair<Key, Value>>& out) {
    for (std::uint32_t i = first_live(); i < count_; ++i) {
      // Fault injection: a drain (merge / spy / overflow) racing deleters
      // item by item is the k-LSM's busiest ownership-transfer seam.
      CPQ_INJECT("block.drain");
      if (!slots_[i].taken.load(std::memory_order_acquire) && claim(i)) {
        out.emplace_back(slots_[i].key, slots_[i].value);
      }
    }
  }

 private:
  Block(const std::pair<Key, Value>* sorted_items, std::uint32_t n)
      : count_(n),
        capacity_(capacity_for(n)),
        slots_(reinterpret_cast<Slot*>(reinterpret_cast<char*>(this) +
                                       slots_offset())) {
    for (std::uint32_t i = 0; i < count_; ++i) {
      new (&slots_[i])
          Slot{sorted_items[i].first, sorted_items[i].second, {false}};
#ifndef NDEBUG
      assert(i == 0 || !(sorted_items[i].first < sorted_items[i - 1].first));
#endif
    }
  }

  ~Block() = default;
  static_assert(std::is_trivially_destructible_v<Key> &&
                    std::is_trivially_destructible_v<Value>,
                "pooled slots are not individually destroyed");

  // Byte offset of the trailing slot array and total chunk size for a block
  // of n slots. unref() recomputes the size from count_ for pool_free.
  static constexpr std::size_t slots_offset() noexcept {
    return (sizeof(Block) + alignof(Slot) - 1) & ~(alignof(Slot) - 1);
  }
  static constexpr std::size_t storage_bytes(std::uint32_t n) noexcept {
    return slots_offset() + std::size_t{n} * sizeof(Slot);
  }

  static std::uint32_t capacity_for(std::uint32_t n) noexcept {
    std::uint32_t c = 1;
    while (c < n) c <<= 1;
    return c;
  }

  const std::uint32_t count_;
  const std::uint32_t capacity_;
  Slot* const slots_;
  mutable std::atomic<std::uint32_t> head_hint_{0};
  std::atomic<std::uint32_t> refs_{1};
};

// Claim-merge two blocks (stable two-way step of the LSM merge cascade).
// Items lost to racing claimants are simply skipped.
//
// Drain-then-merge: each block's still-live items are first claimed out in
// order into per-thread scratch runs, then the runs are combined with the
// branch-free / SIMD kernel (merge_kernel.hpp). Compared to the old
// interleaved claim-and-compare loop this (a) removes the per-element
// mispredicted winner branch from the comparison loop, and (b) sizes the
// result exactly — the old `reserve(a.live_estimate() + b.live_estimate())`
// counted slots racing claimants had already taken, so the hot path
// routinely allocated far more than it filled. The scratch reserves use
// live_estimate() (a true upper bound on what drain_into can emit) and the
// scratch capacity persists across merges, so steady state does no
// allocation at all beyond the exact-size result.
//
// Ordering note: claims happen run-by-run (all of `a`, then all of `b`)
// instead of interleaved by key. Per-slot exactly-once transfer is
// unaffected — it relies only on the claim exchange, not claim order.
template <typename Key, typename Value>
void claim_merge_into(Block<Key, Value>& a, Block<Key, Value>& b,
                      std::vector<std::pair<Key, Value>>& merged) {
  using Item = std::pair<Key, Value>;
  thread_local std::vector<Item> run_a;
  thread_local std::vector<Item> run_b;
  run_a.clear();
  run_b.clear();
  run_a.reserve(a.live_estimate());
  run_b.reserve(b.live_estimate());
  a.drain_into(run_a);
  b.drain_into(run_b);
  merged.resize(run_a.size() + run_b.size());
  merge_sorted(run_a.data(), run_a.size(), run_b.data(), run_b.size(),
               merged.data());
}

template <typename Key, typename Value>
std::vector<std::pair<Key, Value>> claim_merge(Block<Key, Value>& a,
                                               Block<Key, Value>& b) {
  std::vector<std::pair<Key, Value>> merged;
  claim_merge_into(a, b, merged);
  return merged;
}

template <typename Key, typename Value>
struct BlockArray {
  static constexpr std::uint32_t kMaxBlocks = 48;

  std::uint32_t count = 0;
  Block<Key, Value>* blocks[kMaxBlocks] = {};
  // SLSM pivot range: candidates of block i are slots [first_live, pivot_end).
  std::atomic<std::uint32_t> pivot_end[kMaxBlocks] = {};

  // The array takes over the caller's reference for each block pointer it
  // stores (callers ref() blocks they also keep).
  static BlockArray* create() { return new BlockArray(); }

  static void destroy(BlockArray* array) {
    for (std::uint32_t i = 0; i < array->count; ++i) {
      array->blocks[i]->unref();
    }
    delete array;
  }

  // Type-erased deleter for EBR retirement.
  static void ebr_deleter(void* p) { destroy(static_cast<BlockArray*>(p)); }

  std::uint32_t live_estimate() const noexcept {
    std::uint32_t total = 0;
    for (std::uint32_t i = 0; i < count; ++i) {
      total += blocks[i]->live_estimate();
    }
    return total;
  }

  // Locate the live slot with the globally smallest key. Returns false when
  // every slot is claimed. On success, (block_index, slot_index, key) of the
  // current minimum candidate (racy: the slot may be claimed by the time the
  // caller acts, in which case the caller rescans).
  bool find_min(std::uint32_t& block_out, std::uint32_t& slot_out,
                Key& key_out) const noexcept {
    bool found = false;
    Key best_key{};
    for (std::uint32_t i = 0; i < count; ++i) {
      const std::uint32_t first = blocks[i]->first_live();
      if (first >= blocks[i]->slot_count()) continue;
      const Key key = blocks[i]->slot(first).key;
      if (!found || key < best_key) {
        found = true;
        block_out = i;
        slot_out = first;
        best_key = key;
      }
    }
    if (found) key_out = best_key;
    return found;
  }
};

}  // namespace cpq::klsm_detail
