// k-LSM building blocks: sorted item blocks and versioned block arrays.
//
// A Block is a write-once sorted array of (key, value) slots, each with an
// atomic `taken` flag. After construction only the flags mutate, so readers
// may dereference keys/values of any slot at any time; ownership of an item
// is transferred by exchange(true) on its flag — exactly one claimant wins.
// Items *move* between blocks by being claimed out of the source block and
// re-materialized (still exactly once) in the destination block, which is
// how merges, DLSM->SLSM overflow batches, and spy() stealing all avoid
// duplicate delivery without the original k-LSM's pooled item-version tags.
//
// A BlockArray is an immutable snapshot of a LSM's block list (capacities
// strictly decreasing), published through a single atomic pointer and
// reclaimed via EBR. Blocks are shared between array versions (and between a
// victim's array and a spy) through an intrusive refcount: each array owns
// one reference per contained block, and the EBR deleter of a retired array
// drops them.
//
// SLSM arrays additionally carry the pivot range: per block, an index
// `pivot_end[i]` such that every slot below it has a key <= a threshold X
// with count(keys <= X) <= k+1 at computation time. Because candidate
// membership is defined by a key threshold and items only ever leave,
// a published pivot entry never becomes unsafe (DESIGN.md §4).
#pragma once

#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"
#include "platform/cache.hpp"
#include "validation/fault_injection.hpp"

namespace cpq::klsm_detail {

template <typename Key, typename Value>
class Block {
 public:
  struct Slot {
    Key key;
    Value value;
    std::atomic<bool> taken;
  };

  // Build a block from already-sorted items. refs starts at 1: the caller
  // places the block into exactly one array (or drops it with unref()).
  static Block* create(std::vector<std::pair<Key, Value>>&& sorted_items) {
    return new Block(std::move(sorted_items));
  }

  void ref() noexcept { refs_.fetch_add(1, std::memory_order_relaxed); }

  void unref() noexcept {
    if (refs_.fetch_sub(1, std::memory_order_acq_rel) == 1) delete this;
  }

  std::uint32_t slot_count() const noexcept { return count_; }
  std::uint32_t capacity() const noexcept { return capacity_; }

  const Slot& slot(std::uint32_t i) const noexcept {
    assert(i < count_);
    return slots_[i];
  }

  // First slot index not yet claimed, starting from the head hint; advances
  // the hint (monotonically in effect — the hint may transiently regress
  // under races, which only costs a few extra flag reads).
  std::uint32_t first_live() const noexcept {
    std::uint32_t i = head_hint_.load(std::memory_order_relaxed);
    while (i < count_ && slots_[i].taken.load(std::memory_order_acquire)) ++i;
    if (i != head_hint_.load(std::memory_order_relaxed)) {
      head_hint_.store(i, std::memory_order_relaxed);
    }
    return i;
  }

  // Upper bound on live items (counts claimed-but-not-yet-skipped slots).
  std::uint32_t live_estimate() const noexcept {
    const std::uint32_t head = head_hint_.load(std::memory_order_relaxed);
    return count_ - (head < count_ ? head : count_);
  }

  // Claim slot i. True iff this caller took ownership of the item.
  bool claim(std::uint32_t i) noexcept {
    assert(i < count_);
    // Fault injection: widen the peek-to-claim window, the seam where a
    // racing claimant must lose exactly one of the two exchanges.
    CPQ_INJECT("block.claim");
    const bool won = !slots_[i].taken.exchange(true, std::memory_order_acq_rel);
    if (!won) CPQ_COUNT(kCasRetry);
    return won;
  }

  // Index of the first slot with key > threshold (binary search over all
  // slots; claimed slots only make the result an overestimate of the live
  // candidate count, which is the safe direction for pivots).
  std::uint32_t upper_bound(Key threshold) const noexcept {
    std::uint32_t lo = 0;
    std::uint32_t hi = count_;
    while (lo < hi) {
      const std::uint32_t mid = lo + (hi - lo) / 2;
      if (threshold < slots_[mid].key) {
        hi = mid;
      } else {
        lo = mid + 1;
      }
    }
    return lo;
  }

  // Claim-move every still-live item into `out`, preserving sort order.
  void drain_into(std::vector<std::pair<Key, Value>>& out) {
    for (std::uint32_t i = first_live(); i < count_; ++i) {
      // Fault injection: a drain (merge / spy / overflow) racing deleters
      // item by item is the k-LSM's busiest ownership-transfer seam.
      CPQ_INJECT("block.drain");
      if (!slots_[i].taken.load(std::memory_order_acquire) && claim(i)) {
        out.emplace_back(slots_[i].key, slots_[i].value);
      }
    }
  }

 private:
  explicit Block(std::vector<std::pair<Key, Value>>&& sorted_items)
      : count_(static_cast<std::uint32_t>(sorted_items.size())),
        capacity_(capacity_for(count_)),
        slots_(std::make_unique<Slot[]>(count_)) {
    for (std::uint32_t i = 0; i < count_; ++i) {
      slots_[i].key = sorted_items[i].first;
      slots_[i].value = sorted_items[i].second;
      slots_[i].taken.store(false, std::memory_order_relaxed);
#ifndef NDEBUG
      assert(i == 0 || !(sorted_items[i].first < sorted_items[i - 1].first));
#endif
    }
  }

  ~Block() = default;

  static std::uint32_t capacity_for(std::uint32_t n) noexcept {
    std::uint32_t c = 1;
    while (c < n) c <<= 1;
    return c;
  }

  const std::uint32_t count_;
  const std::uint32_t capacity_;
  std::unique_ptr<Slot[]> slots_;
  mutable std::atomic<std::uint32_t> head_hint_{0};
  std::atomic<std::uint32_t> refs_{1};
};

// Claim-merge two blocks into one freshly sorted item vector (stable k-way
// step of the LSM merge cascade). Items lost to racing claimants are simply
// skipped.
template <typename Key, typename Value>
std::vector<std::pair<Key, Value>> claim_merge(Block<Key, Value>& a,
                                               Block<Key, Value>& b) {
  std::vector<std::pair<Key, Value>> merged;
  merged.reserve(a.live_estimate() + b.live_estimate());
  std::uint32_t i = a.first_live();
  std::uint32_t j = b.first_live();
  while (i < a.slot_count() && j < b.slot_count()) {
    if (b.slot(j).key < a.slot(i).key) {
      if (b.claim(j)) merged.emplace_back(b.slot(j).key, b.slot(j).value);
      ++j;
    } else {
      if (a.claim(i)) merged.emplace_back(a.slot(i).key, a.slot(i).value);
      ++i;
    }
  }
  for (; i < a.slot_count(); ++i) {
    if (a.claim(i)) merged.emplace_back(a.slot(i).key, a.slot(i).value);
  }
  for (; j < b.slot_count(); ++j) {
    if (b.claim(j)) merged.emplace_back(b.slot(j).key, b.slot(j).value);
  }
  return merged;
}

template <typename Key, typename Value>
struct BlockArray {
  static constexpr std::uint32_t kMaxBlocks = 48;

  std::uint32_t count = 0;
  Block<Key, Value>* blocks[kMaxBlocks] = {};
  // SLSM pivot range: candidates of block i are slots [first_live, pivot_end).
  std::atomic<std::uint32_t> pivot_end[kMaxBlocks] = {};

  // The array takes over the caller's reference for each block pointer it
  // stores (callers ref() blocks they also keep).
  static BlockArray* create() { return new BlockArray(); }

  static void destroy(BlockArray* array) {
    for (std::uint32_t i = 0; i < array->count; ++i) {
      array->blocks[i]->unref();
    }
    delete array;
  }

  // Type-erased deleter for EBR retirement.
  static void ebr_deleter(void* p) { destroy(static_cast<BlockArray*>(p)); }

  std::uint32_t live_estimate() const noexcept {
    std::uint32_t total = 0;
    for (std::uint32_t i = 0; i < count; ++i) {
      total += blocks[i]->live_estimate();
    }
    return total;
  }

  // Locate the live slot with the globally smallest key. Returns false when
  // every slot is claimed. On success, (block_index, slot_index, key) of the
  // current minimum candidate (racy: the slot may be claimed by the time the
  // caller acts, in which case the caller rescans).
  bool find_min(std::uint32_t& block_out, std::uint32_t& slot_out,
                Key& key_out) const noexcept {
    bool found = false;
    Key best_key{};
    for (std::uint32_t i = 0; i < count; ++i) {
      const std::uint32_t first = blocks[i]->first_live();
      if (first >= blocks[i]->slot_count()) continue;
      const Key key = blocks[i]->slot(first).key;
      if (!found || key < best_key) {
        found = true;
        block_out = i;
        slot_out = first;
        best_key = key;
      }
    }
    if (found) key_out = best_key;
    return found;
  }
};

}  // namespace cpq::klsm_detail
