// Standalone DLSM and SLSM queues.
//
// The paper notes (§B) that "both the SLSM and the DLSM may be used as
// standalone priority queues, but have complementary advantages and
// disadvantages which can be balanced against each other by their
// composition". These wrappers expose each component through the common
// queue interface so bench_ablation_klsm_components can demonstrate exactly
// that: the DLSM scales embarrassingly but gives only thread-local ordering,
// the SLSM gives the global k+1 guarantee but centralizes contention, and
// the k-LSM sits between them depending on which component carries the load
// (the paper's §G explanation for the k-LSM's sensitivity).
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <vector>

#include "mm/epoch.hpp"
#include "platform/cache.hpp"
#include "platform/rng.hpp"
#include "queues/klsm/dlsm.hpp"
#include "queues/klsm/slsm.hpp"
#include "queues/queue_traits.hpp"

namespace cpq {

// DLSM-only queue: thread-local LSMs with spy-based stealing, no shared
// component and no global relaxation bound (returned items are minimal on
// the deleting thread only).
template <typename Key, typename Value>
class DlsmQueue {
  using Local = klsm_detail::ThreadLocalLsm<Key, Value>;

 public:
  using key_type = Key;
  using value_type = Value;

  explicit DlsmQueue(unsigned max_threads, std::uint64_t seed = 1)
      : max_threads_(max_threads == 0 ? 1 : max_threads),
        seed_(seed),
        locals_(std::make_unique<CacheAligned<Local>[]>(max_threads_)) {}

  class Handle {
   public:
    Handle(DlsmQueue& queue, unsigned thread_id)
        : queue_(&queue),
          tid_(thread_id % queue.max_threads_),
          rng_(thread_seed(queue.seed_, thread_id)) {}

    void insert(Key key, Value value) {
      queue_->locals_[tid_].value.insert(key, value);
    }

    bool delete_min(Key& key_out, Value& value_out) {
      Local& local = queue_->locals_[tid_].value;
      if (local.delete_local_min(key_out, value_out)) return true;
      if (!spy()) return false;
      return local.delete_local_min(key_out, value_out);
    }

   private:
    // Reuses the handle-owned scratch buffer across spy() calls, exactly
    // like the composed k-LSM's handle.
    bool spy() {
      DlsmQueue& q = *queue_;
      if (q.max_threads_ <= 1) return false;
      std::vector<std::pair<Key, Value>>& stolen = spy_scratch_;
      stolen.clear();
      {
        mm::EbrDomain::Guard guard;
        const unsigned start =
            static_cast<unsigned>(rng_.next_below(q.max_threads_));
        for (unsigned i = 0; i < q.max_threads_ && stolen.empty(); ++i) {
          const unsigned victim = (start + i) % q.max_threads_;
          if (victim == tid_) continue;
          auto* array = q.locals_[victim].value.spy_array();
          if (array) Local::steal_all(array, stolen);
          q.locals_[victim].value.steal_staging(stolen);
        }
      }
      if (stolen.empty()) return false;
      std::sort(stolen.begin(), stolen.end(),
                [](const auto& a, const auto& b) { return a.first < b.first; });
      queue_->locals_[tid_].value.insert_sorted(
          stolen.data(), static_cast<std::uint32_t>(stolen.size()));
      return true;
    }

    DlsmQueue* queue_;
    unsigned tid_;
    Xoroshiro128 rng_;
    std::vector<std::pair<Key, Value>> spy_scratch_;
  };

  Handle get_handle(unsigned thread_id) { return Handle(*this, thread_id); }

  std::uint64_t unsafe_size() const {
    std::uint64_t total = 0;
    for (unsigned t = 0; t < max_threads_; ++t) {
      total += locals_[t].value.live_estimate();
    }
    return total;
  }

 private:
  friend class Handle;
  const unsigned max_threads_;
  const std::uint64_t seed_;
  std::unique_ptr<CacheAligned<Local>[]> locals_;
};

// SLSM-only queue: every insert is a (serialized) one-item batch into the
// shared LSM; delete_min claims a random pivot candidate (one of the k+1
// smallest).
template <typename Key, typename Value>
class SlsmQueue {
  using SlsmT = klsm_detail::Slsm<Key, Value>;

 public:
  using key_type = Key;
  using value_type = Value;

  explicit SlsmQueue(unsigned max_threads, std::uint64_t relaxation_k = 256,
                     std::uint64_t seed = 1)
      : seed_(seed), slsm_(relaxation_k) {
    (void)max_threads;
  }

  class Handle {
   public:
    Handle(SlsmQueue& queue, unsigned thread_id)
        : queue_(&queue), rng_(thread_seed(queue.seed_, thread_id)) {}

    void insert(Key key, Value value) { queue_->slsm_.insert(key, value); }

    bool delete_min(Key& key_out, Value& value_out) {
      return queue_->slsm_.delete_min(key_out, value_out, rng_);
    }

   private:
    SlsmQueue* queue_;
    Xoroshiro128 rng_;
  };

  Handle get_handle(unsigned thread_id) { return Handle(*this, thread_id); }

  std::uint64_t unsafe_size() const { return slsm_.live_estimate(); }

 private:
  friend class Handle;
  const std::uint64_t seed_;
  SlsmT slsm_;
};

static_assert(ConcurrentPriorityQueue<DlsmQueue<bench_key, bench_value>>);
static_assert(ConcurrentPriorityQueue<SlsmQueue<bench_key, bench_value>>);

}  // namespace cpq
