// k-LSM relaxed priority queue (Wimmer et al., PPoPP 2015) — the paper's
// primary subject ("klsm128", "klsm256", "klsm4096").
//
// Composition (paper §B): a DLSM limited to at most k items per thread, and
// an SLSM whose pivot range covers at most k+1 of its smallest items.
// Inserts go to the local DLSM; when it overflows, its largest block is
// batch-inserted into the SLSM. delete_min peeks both components and claims
// the smaller candidate. DLSM deletions skip at most k(P-1) items and SLSM
// deletions at most k, so delete_min returns one of the kP+1 smallest items.
//
// The relaxation parameter k is a runtime constructor argument; the paper's
// variants are k = 128, 256, 4096 (k = 16 behaves like the strict Lindén
// queue and is exercised in bench_ablation_klsm_k).
#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>
#include <memory>
#include <vector>

#include "mm/epoch.hpp"
#include "platform/cache.hpp"
#include "platform/rng.hpp"
#include "queues/klsm/dlsm.hpp"
#include "queues/klsm/slsm.hpp"
#include "queues/queue_traits.hpp"

namespace cpq {

template <typename Key, typename Value>
class KLsmQueue {
  using Local = klsm_detail::ThreadLocalLsm<Key, Value>;
  using SlsmT = klsm_detail::Slsm<Key, Value>;

 public:
  using key_type = Key;
  using value_type = Value;

  explicit KLsmQueue(unsigned max_threads, std::uint64_t relaxation_k = 256,
                     std::uint64_t seed = 1)
      : max_threads_(max_threads == 0 ? 1 : max_threads),
        k_(relaxation_k),
        seed_(seed),
        locals_(std::make_unique<CacheAligned<Local>[]>(max_threads_)),
        slsm_(relaxation_k) {}

  std::uint64_t relaxation() const noexcept { return k_; }

  class Handle {
   public:
    Handle(KLsmQueue& queue, unsigned thread_id)
        : queue_(&queue),
          tid_(thread_id % queue.max_threads_),
          rng_(thread_seed(queue.seed_, thread_id)) {}

    void insert(Key key, Value value) {
      Local& local = queue_->local(tid_);
      local.insert(key, value);
      if (local.live_estimate() > queue_->k_) {
        auto batch = local.extract_largest_block();
        queue_->slsm_.insert_batch(std::move(batch));
      }
    }

    bool delete_min(Key& key_out, Value& value_out) {
      KLsmQueue& q = *queue_;
      Local& local = q.local(tid_);
      for (unsigned round = 0; round < kMaxRounds; ++round) {
        // Peek both components (paper §B): the local minimum and a random
        // SLSM pivot candidate — one of the k+1 smallest shared items.
        // Claim the smaller of the two; on a lost race, rescan. Comparing
        // against the *candidate* (not the SLSM front) is what composes the
        // k(P-1) local and k shared skips into the kP bound.
        typename Local::PeekResult local_peek;
        const bool have_local = local.peek_local_min(local_peek);

        mm::EbrDomain::Guard guard;
        typename SlsmT::Candidate candidate;
        const bool have_shared =
            q.slsm_.peek_random_candidate(candidate, rng_);

        if (have_local &&
            (!have_shared || !(candidate.key < local_peek.key))) {
          if (local.claim_peeked(local_peek, key_out, value_out)) {
            return true;
          }
          continue;  // lost the local item to a spy or merge
        }
        if (have_shared) {
          if (q.slsm_.claim_candidate(candidate, key_out, value_out)) {
            return true;
          }
          continue;  // candidate taken by a racing deleter
        }
        // Both components empty: adopt another thread's items, then give
        // the loop one more chance before reporting emptiness.
        if (!spy() && round > 0) return false;
      }
      return false;
    }

   private:
    static constexpr unsigned kMaxRounds = 8;

    // Claim-move the items of a random victim's DLSM into our own. The
    // scratch buffer is a handle member: spy() fires on every empty-looking
    // delete_min, and reusing the capacity keeps that path allocation-free.
    bool spy() {
      KLsmQueue& q = *queue_;
      if (q.max_threads_ <= 1) return false;
      std::vector<std::pair<Key, Value>>& stolen = spy_scratch_;
      stolen.clear();
      {
        mm::EbrDomain::Guard guard;
        const unsigned start = static_cast<unsigned>(
            rng_.next_below(q.max_threads_));
        for (unsigned i = 0; i < q.max_threads_ && stolen.empty(); ++i) {
          const unsigned victim = (start + i) % q.max_threads_;
          if (victim == tid_) continue;
          auto* array = q.local(victim).spy_array();
          if (array) Local::steal_all(array, stolen);
          q.local(victim).steal_staging(stolen);
        }
      }
      if (stolen.empty()) return false;
      std::sort(stolen.begin(), stolen.end(),
                [](const auto& a, const auto& b) { return a.first < b.first; });
      queue_->local(tid_).insert_sorted(
          stolen.data(), static_cast<std::uint32_t>(stolen.size()));
      return true;
    }

    KLsmQueue* queue_;
    unsigned tid_;
    Xoroshiro128 rng_;
    std::vector<std::pair<Key, Value>> spy_scratch_;
  };

  Handle get_handle(unsigned thread_id) { return Handle(*this, thread_id); }

  // Quiescent-only live-item estimate across all components.
  std::uint64_t unsafe_size() const {
    std::uint64_t total = slsm_.live_estimate();
    for (unsigned t = 0; t < max_threads_; ++t) {
      total += locals_[t].value.live_estimate();
    }
    return total;
  }

 private:
  friend class Handle;

  Local& local(unsigned tid) { return locals_[tid].value; }

  const unsigned max_threads_;
  const std::uint64_t k_;
  const std::uint64_t seed_;
  std::unique_ptr<CacheAligned<Local>[]> locals_;
  SlsmT slsm_;
};

static_assert(ConcurrentPriorityQueue<KLsmQueue<bench_key, bench_value>>);

}  // namespace cpq
